// Quickstart: build a near-additive spanner of a random graph, inspect
// the parameter schedule, and verify the stretch guarantee.
package main

import (
	"fmt"
	"log"

	"nearspan"
)

func main() {
	// A dense-ish random graph: 400 vertices, ~4000 edges.
	g := nearspan.GNP(400, 0.05, 7, true)
	fmt.Printf("input graph: n=%d m=%d\n", g.N(), g.M())

	// Inspect the schedule before building: kappa controls size, rho the
	// round budget, eps the distance scale.
	p, err := nearspan.NewParams(1.0/3, 3, 0.49, g.N())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %d phases, deg=%v delta=%v beta=%d\n",
		p.L+1, p.Deg, p.Delta, p.BetaInt())

	// Build (centralized reference mode — identical output to the
	// distributed mode, see the roadgrid example for round counting).
	res, err := nearspan.BuildSpanner(g, nearspan.Config{Eps: 1.0 / 3, Kappa: 3, Rho: 0.49})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spanner: kept %d of %d edges (%.1f%%)\n",
		res.EdgeCount(), g.M(), 100*float64(res.EdgeCount())/float64(g.M()))

	// Verify the paper's guarantee d_H <= (1+eps')*d_G + beta over all
	// vertex pairs.
	rep := nearspan.VerifyStretch(g, res.Spanner, 1+res.Params.EpsPrime(), res.Params.BetaInt())
	fmt.Printf("guarantee (1+%.2f)d+%d holds: %v\n", res.Params.EpsPrime(), res.Params.BetaInt(), rep.OK())
	fmt.Printf("measured: worst additive error %d, worst ratio %.2f, mean ratio %.3f\n",
		rep.WorstAdditive, rep.WorstRatio, rep.MeanRatio)
}

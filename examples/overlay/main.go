// Overlay: sparsify a peer-to-peer overlay while preserving routing
// quality, comparing the deterministic construction against the
// randomized EN17 baseline it derandomizes.
//
// Scale-free overlays (preferential attachment) have hub structure that
// makes popularity detection interesting: hubs are popular immediately
// and seed superclusters, while the fringe interconnects.
package main

import (
	"fmt"
	"log"

	"nearspan"
)

func main() {
	overlay, err := nearspan.PreferentialAttachment(800, 6, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: %d peers, %d connections, max degree %d\n",
		overlay.N(), overlay.M(), overlay.MaxDegree())

	eps, kappa, rho := 1.0/3, 3, 0.49

	// Deterministic (this paper), built on the real CONGEST protocol
	// stack with the parallel engine.
	det, err := nearspan.BuildSpanner(overlay, nearspan.Config{
		Eps: eps, Kappa: kappa, Rho: rho,
		Mode: nearspan.DistributedMode, Engine: nearspan.EngineParallel,
	})
	if err != nil {
		log.Fatal(err)
	}
	repDet := nearspan.VerifyStretch(overlay, det.Spanner, 1, 0)
	fmt.Printf("deterministic:   %4d connections, worst +%d hops, mean ratio %.3f (%d CONGEST rounds)\n",
		det.EdgeCount(), repDet.WorstAdditive, repDet.MeanRatio, det.TotalRounds)

	// Randomized EN17 across seeds: same ballpark, but the result (and
	// even the size) depends on coin flips — the reproducibility gap the
	// paper closes.
	sizes := map[int]bool{}
	for seed := uint64(1); seed <= 3; seed++ {
		en, err := nearspan.BuildEN17(overlay, eps, kappa, rho, seed)
		if err != nil {
			log.Fatal(err)
		}
		rep := nearspan.VerifyStretch(overlay, en.Spanner, 1, 0)
		fmt.Printf("EN17 seed %d:     %4d connections, worst +%d hops, mean ratio %.3f\n",
			seed, en.Spanner.M(), rep.WorstAdditive, rep.MeanRatio)
		sizes[en.Spanner.M()] = true
	}
	fmt.Printf("EN17 produced %d distinct sizes across 3 seeds; the deterministic run is always identical\n",
		len(sizes))

	// Determinism check: two deterministic builds agree edge-for-edge
	// (the rebuild uses the fast centralized mode — same spanner).
	det2, err := nearspan.BuildSpanner(overlay, nearspan.Config{Eps: eps, Kappa: kappa, Rho: rho})
	if err != nil {
		log.Fatal(err)
	}
	same := det.EdgeCount() == det2.EdgeCount() && nearspan.IsSubgraph(det.Spanner, det2.Spanner)
	fmt.Printf("deterministic rebuild identical: %v\n", same)
}

// Sensornet: sparsify a wireless sensor mesh into a communication
// backbone.
//
// A sensor field is a random geometric graph: every node hears all
// neighbors within radio range, which in dense deployments wastes energy
// on redundant links. A near-additive spanner keeps a subgraph where any
// route is longer by at most a (1+eps) factor plus a constant number of
// extra hops — the right trade for multi-hop radio, where hop count is
// latency and kept links are energy.
package main

import (
	"fmt"
	"log"

	"nearspan"
)

func main() {
	// 500 sensors in a unit square, 0.09 radio range: ~11 neighbors each.
	field := nearspan.RandomGeometric(500, 0.09, 2024, true)
	fmt.Printf("sensor field: %d nodes, %d radio links (avg degree %.1f)\n",
		field.N(), field.M(), 2*float64(field.M())/float64(field.N()))

	res, err := nearspan.BuildSpanner(field, nearspan.Config{
		Eps: 1.0 / 3, Kappa: 3, Rho: 0.49,
	})
	if err != nil {
		log.Fatal(err)
	}
	backbone := res.Spanner
	saved := 100 * (1 - float64(backbone.M())/float64(field.M()))
	fmt.Printf("backbone: %d links kept, %.1f%% of links powered down\n", backbone.M(), saved)

	// Latency impact: per-route extra hops across all pairs.
	rep := nearspan.VerifyStretch(field, backbone, 1, 0)
	fmt.Printf("route impact: worst +%d hops, mean route ratio %.3f (over %d pairs)\n",
		rep.WorstAdditive, rep.MeanRatio, rep.Pairs)

	// Compare with a multiplicative spanner at the same kappa: classic
	// alternative backbone.
	mult, err := nearspan.BuildBaswanaSen(field, 3, 99)
	if err != nil {
		log.Fatal(err)
	}
	repM := nearspan.VerifyStretch(field, mult, 1, 0)
	fmt.Printf("baswana-sen 5-mult backbone: %d links, worst +%d hops, mean ratio %.3f\n",
		mult.M(), repM.WorstAdditive, repM.MeanRatio)

	// The near-additive guarantee: extra hops bounded by eps'*d + beta
	// regardless of route length. (At demo-scale parameters eps' is
	// large; measured routes above are far inside the bound.)
	fmt.Printf("near-additive guarantee: extra hops <= %.0f*d + %d; measured worst was +%d\n",
		res.Params.EpsPrime(), res.Params.BetaInt(), rep.WorstAdditive)
}

// Distoracle: answer approximate shortest-path queries through the
// spanner instead of the full graph — the application that motivated
// near-additive spanners (almost-shortest-paths computation).
//
// The oracle preprocesses the graph once; each query then runs BFS over
// the sparse spanner, traversing a fraction of the edges, and the answer
// carries the (1+eps', beta) guarantee. The spanner is immutable after
// the build, so the query tier (OraclePool) fans concurrent queries
// over lock-free read replicas.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"nearspan"
)

func main() {
	// A dense social-ish graph: 1500 vertices, ~45k edges.
	g := nearspan.GNP(1500, 0.04, 77, true)
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())

	// Preprocess on the real CONGEST protocol stack, with the parallel
	// engine driving the simulator across all cores.
	start := time.Now()
	o, err := nearspan.NewDistanceOracle(g, nearspan.OracleOptions{
		Eps: 1.0 / 3, Kappa: 3, Rho: 0.49, CacheSources: 64,
		Mode: nearspan.DistributedMode, Engine: nearspan.EngineParallel,
	})
	if err != nil {
		log.Fatal(err)
	}
	alpha, beta := o.Guarantee()
	fmt.Printf("preprocessing: %v; spanner %d edges (saves %d per full-graph BFS); guarantee (%.1f, %d)\n",
		time.Since(start).Round(time.Millisecond), o.Spanner().M(), o.EdgeSavings(), alpha, beta)

	// The concurrent query tier: replicas share the immutable spanner,
	// hot sources are cached once and read lock-free, point queries run
	// a bidirectional BFS in a preallocated workspace.
	pool := nearspan.NewOraclePool(o.Spanner(), nearspan.OraclePoolOptions{CacheSources: 64})

	// Batch queries through the pool: 16 hot sources, so the grouped
	// path answers each group from one shared BFS and admits the sources
	// to the cache for the point queries below.
	queries := make([][2]int, 0, 1000)
	for i := 0; i < 1000; i++ {
		queries = append(queries, [2]int{(i % 16) * 90, (i*53 + 11) % g.N()})
	}
	start = time.Now()
	answers := pool.PairsBatch(queries)
	elapsed := time.Since(start)

	// Measure the answers' real error on a sample.
	worstAdd, checked := int32(0), 0
	for i := 0; i < len(queries); i += 25 {
		exact := g.Distance(queries[i][0], queries[i][1])
		if add := answers[i] - exact; add > worstAdd {
			worstAdd = add
		}
		checked++
	}
	fmt.Printf("1000 queries in %v; sampled %d against exact BFS: worst additive error %d\n",
		elapsed.Round(time.Microsecond), checked, worstAdd)
	fmt.Printf("example answers: d(%d,%d)=%d, d(%d,%d)=%d\n",
		queries[0][0], queries[0][1], answers[0], queries[1][0], queries[1][1], answers[1])

	// Concurrent point queries: 8 goroutines hammer the shared pool; the
	// answers are exact spanner distances regardless of which replica or
	// cache path served them.
	start = time.Now()
	var total int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				pool.Dist((w*997+i*37)%g.N(), (i*53+w)%g.N())
			}
		}(w)
	}
	wg.Wait()
	total = 8 * 2000
	st := pool.Stats()
	fmt.Printf("%d concurrent point queries in %v (%d replicas, %d cached sources, %d bidi misses)\n",
		total, time.Since(start).Round(time.Microsecond), pool.Replicas(), st.CachedSources, st.Misses)
}

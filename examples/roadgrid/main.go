// Roadgrid: run the construction as an actual distributed protocol and
// account for CONGEST rounds.
//
// The workload is a torus "road network": every intersection is a
// processor that can only talk to adjacent intersections, one O(1)-word
// message per road per round. The example runs the full protocol stack
// on the simulator three times — the sequential round loop, the sharded
// parallel worker pool, and a goroutine per intersection — and shows all
// engines produce the identical spanner with the identical round count.
package main

import (
	"fmt"
	"log"
	"time"

	"nearspan"
)

func main() {
	roads := nearspan.Torus(20, 20)
	fmt.Printf("road grid: %d intersections, %d segments, diameter %d\n",
		roads.N(), roads.M(), roads.Diameter())

	for _, engine := range []nearspan.Engine{
		nearspan.EngineSequential,
		nearspan.EngineParallel,
		nearspan.EngineGoroutine,
	} {
		start := time.Now()
		res, err := nearspan.BuildSpanner(roads, nearspan.Config{
			Eps: 0.5, Kappa: 4, Rho: 0.45,
			Mode:   nearspan.DistributedMode,
			Engine: engine,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s engine: %d edges, %d CONGEST rounds, %d messages (wall clock %v)\n",
			engine, res.EdgeCount(), res.TotalRounds, res.Messages,
			time.Since(start).Round(time.Millisecond))
		for _, ph := range res.Phases {
			fmt.Printf("  phase %d: deg=%d delta=%d rounds: NN=%d RS=%d SC=%d IC=%d\n",
				ph.Index, ph.Deg, ph.Delta, ph.RoundsNN, ph.RoundsRS, ph.RoundsSC, ph.RoundsIC)
		}
	}

	// On a sparse bounded-degree graph the spanner keeps everything —
	// the construction's size bound exceeds m, and that is the correct
	// outcome: sparse graphs are their own best spanners.
	res, err := nearspan.BuildSpanner(roads, nearspan.Config{Eps: 0.5, Kappa: 4, Rho: 0.45})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("torus keeps %d/%d segments: sparse inputs are their own spanners\n",
		res.EdgeCount(), roads.M())
}

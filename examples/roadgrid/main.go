// Roadgrid: run the construction as an actual distributed protocol and
// account for CONGEST rounds.
//
// The workload is a torus "road network": every intersection is a
// processor that can only talk to adjacent intersections, one O(1)-word
// message per road per round. The example runs the full protocol stack
// on the simulator three times — the sequential round loop, the shared
// sharded runtime, and a goroutine per intersection — and shows all
// engines produce the identical spanner with the identical round count.
// It then sweeps a parameter grid with BuildBatch: the sweep's builds
// run concurrently on one bounded worker pool.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"nearspan"
)

func main() {
	roads := nearspan.Torus(20, 20)
	fmt.Printf("road grid: %d intersections, %d segments, diameter %d\n",
		roads.N(), roads.M(), roads.Diameter())

	for _, engine := range []nearspan.Engine{
		nearspan.EngineSequential,
		nearspan.EngineParallel,
		nearspan.EngineGoroutine,
	} {
		start := time.Now()
		res, err := nearspan.BuildSpanner(roads, nearspan.Config{
			Eps: 0.5, Kappa: 4, Rho: 0.45,
			Mode:   nearspan.DistributedMode,
			Engine: engine,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s engine: %d edges, %d CONGEST rounds, %d messages (wall clock %v)\n",
			engine, res.EdgeCount(), res.TotalRounds, res.Messages,
			time.Since(start).Round(time.Millisecond))
		for _, ph := range res.Phases {
			fmt.Printf("  phase %d: deg=%d delta=%d rounds: NN=%d RS=%d SC=%d IC=%d\n",
				ph.Index, ph.Deg, ph.Delta, ph.RoundsNN, ph.RoundsRS, ph.RoundsSC, ph.RoundsIC)
		}
	}

	// Parameter sweep on the shared batch runtime: every (eps, kappa)
	// candidate builds concurrently on one bounded worker pool, and each
	// outcome is bit-identical to building it alone.
	var jobs []nearspan.BuildJob
	for _, eps := range []float64{0.25, 0.5, 1.0} {
		for _, kappa := range []int{3, 4} {
			jobs = append(jobs, nearspan.BuildJob{
				Name:  fmt.Sprintf("eps=%.2f kappa=%d", eps, kappa),
				Graph: roads,
				Config: nearspan.Config{
					Eps: eps, Kappa: kappa, Rho: 0.45,
					Mode: nearspan.DistributedMode, Engine: nearspan.EngineParallel,
				},
			})
		}
	}
	start := time.Now()
	outs, err := nearspan.BuildBatch(context.Background(), jobs, nearspan.BatchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parameter sweep: %d concurrent distributed builds in %v\n",
		len(jobs), time.Since(start).Round(time.Millisecond))
	for i, out := range outs {
		if out.Err != nil {
			log.Fatal(out.Err)
		}
		fmt.Printf("  %-20s %d edges, %d rounds, guarantee (1+%.2f)d + %d\n",
			jobs[i].Name, out.Result.EdgeCount(), out.Result.TotalRounds,
			out.Result.Params.EpsPrime(), out.Result.Params.BetaInt())
	}

	// On a sparse bounded-degree graph the spanner keeps everything —
	// the construction's size bound exceeds m, and that is the correct
	// outcome: sparse graphs are their own best spanners.
	res, err := nearspan.BuildSpanner(roads, nearspan.Config{Eps: 0.5, Kappa: 4, Rho: 0.45})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("torus keeps %d/%d segments: sparse inputs are their own spanners\n",
		res.EdgeCount(), roads.M())
}

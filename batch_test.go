package nearspan_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"nearspan"
)

func batchJobs() []nearspan.BuildJob {
	mk := func(name string, g *nearspan.Graph, cfg nearspan.Config) nearspan.BuildJob {
		return nearspan.BuildJob{Name: name, Graph: g, Config: cfg}
	}
	dist := nearspan.Config{Eps: 1.0 / 3, Kappa: 3, Rho: 0.49,
		Mode: nearspan.DistributedMode, Engine: nearspan.EngineParallel}
	cent := nearspan.Config{Eps: 0.5, Kappa: 4, Rho: 0.45}
	return []nearspan.BuildJob{
		mk("grid", nearspan.Grid(9, 9), dist),
		mk("gnp", nearspan.GNP(90, 0.12, 7, true), dist),
		mk("torus", nearspan.Torus(8, 8), cent),
		mk("comm", nearspan.Communities(4, 20, 0.4, 0.01, 3), dist),
		mk("hypercube", nearspan.Hypercube(6), dist),
		mk("pa", mustPA(128, 3, 9), cent),
		mk("cycle", nearspan.Cycle(100), dist),
		mk("tree", nearspan.RandomTree(120, 5), dist),
	}
}

func mustPA(n, m int, seed uint64) *nearspan.Graph {
	g, err := nearspan.PreferentialAttachment(n, m, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// BuildBatch over 8 heterogeneous jobs must be bit-identical to a
// sequential BuildSpanner loop — the public face of the shared-runtime
// determinism guarantee (run under -race in CI).
func TestConcurrentBatchBuildMatchesSequential(t *testing.T) {
	jobs := batchJobs()
	if len(jobs) < 8 {
		t.Fatalf("want >= 8 jobs, have %d", len(jobs))
	}

	seq := make([]*nearspan.Result, len(jobs))
	for i, j := range jobs {
		res, err := nearspan.BuildSpanner(j.Graph, j.Config)
		if err != nil {
			t.Fatalf("sequential %s: %v", j.Name, err)
		}
		seq[i] = res
	}

	outs, err := nearspan.BuildBatch(context.Background(), jobs, nearspan.BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(jobs) {
		t.Fatalf("%d outcomes for %d jobs", len(outs), len(jobs))
	}
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("job %s: %v", jobs[i].Name, out.Err)
		}
		s, b := seq[i], out.Result
		if s.EdgeCount() != b.EdgeCount() || s.TotalRounds != b.TotalRounds || s.Messages != b.Messages {
			t.Errorf("job %s: batch (m=%d,r=%d,msg=%d) vs sequential (m=%d,r=%d,msg=%d)",
				jobs[i].Name, b.EdgeCount(), b.TotalRounds, b.Messages,
				s.EdgeCount(), s.TotalRounds, s.Messages)
		}
		same := true
		s.Spanner.Edges(func(u, v int) {
			if !b.Spanner.HasEdge(u, v) {
				same = false
			}
		})
		if !same {
			t.Errorf("job %s: batch spanner differs from sequential", jobs[i].Name)
		}
	}
}

// A cancelled batch marks every unfinished job with ctx.Err() and
// returns it; finished work is never silently discarded and no partial
// spanner ever escapes.
func TestBatchBuildCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs, err := nearspan.BuildBatch(ctx, batchJobs(), nearspan.BatchOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildBatch = %v, want context.Canceled", err)
	}
	for i, out := range outs {
		if out.Result != nil {
			t.Errorf("job %d returned a result despite pre-cancelled context", i)
		}
		if !errors.Is(out.Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, out.Err)
		}
	}
}

// Per-job OnStep callbacks stream every job's step metrics, tagged with
// the right job index, and per job they arrive in execution order.
func TestBatchBuildOnStepProgress(t *testing.T) {
	jobs := batchJobs()[:4]
	var mu sync.Mutex
	perJob := make(map[int][]nearspan.StepMetrics)
	outs, err := nearspan.BuildBatch(context.Background(), jobs, nearspan.BatchOptions{
		OnStep: func(job int, sm nearspan.StepMetrics) {
			mu.Lock()
			perJob[job] = append(perJob[job], sm)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("job %s: %v", jobs[i].Name, out.Err)
		}
		got := perJob[i]
		if len(got) != len(out.Result.Steps) {
			t.Fatalf("job %s: %d callbacks for %d steps", jobs[i].Name, len(got), len(out.Result.Steps))
		}
		for s := range got {
			if got[s] != out.Result.Steps[s] {
				t.Errorf("job %s step %d: callback %+v vs result %+v",
					jobs[i].Name, s, got[s], out.Result.Steps[s])
			}
		}
	}
}

// The reusable builder serves several batches and reclaims every
// scheduler goroutine on Close.
func TestBatchBuilderReuse(t *testing.T) {
	base := runtime.NumGoroutine()
	b := nearspan.NewBatchBuilder(nearspan.BatchOptions{Workers: 2, Parallel: 2})
	jobs := batchJobs()[:3]
	var first []*nearspan.Result
	for round := 0; round < 2; round++ {
		outs, err := b.BuildBatch(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i, out := range outs {
			if out.Err != nil {
				t.Fatalf("round %d job %s: %v", round, jobs[i].Name, out.Err)
			}
			if round == 0 {
				first = append(first, out.Result)
			} else if out.Result.EdgeCount() != first[i].EdgeCount() {
				t.Errorf("job %s: round 1 spanner differs from round 0", jobs[i].Name)
			}
		}
	}
	b.Close()
	deadline := time.Now().Add(5 * time.Second)
	got := runtime.NumGoroutine()
	for got > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		got = runtime.NumGoroutine()
	}
	if got > base {
		t.Errorf("Close leaked goroutines: base %d, after %d", base, got)
	}
}

// Command figures renders the reproductions of the paper's Figures 1–8:
// each illustrative figure becomes a verified structural experiment plus
// an ASCII rendering on a grid workload (see DESIGN.md §3.2).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"nearspan"
	"nearspan/internal/experiments"
)

func main() {
	def := experiments.DefaultFigureConfig()
	var (
		rows    = flag.Int("rows", def.Rows, "grid rows")
		cols    = flag.Int("cols", def.Cols, "grid cols")
		tails   = flag.Int("tails", def.Tails, "number of tails (unpopular fringes)")
		tailLen = flag.Int("taillen", def.TailLen, "tail length")
		eps     = flag.Float64("eps", def.Eps, "internal epsilon")
		kappa   = flag.Int("kappa", def.Kappa, "kappa")
		rho     = flag.Float64("rho", def.Rho, "rho")
		engine  = flag.String("engine", "", "run the figure build distributedly on this CONGEST engine (sequential|parallel|goroutine); empty = fast centralized build")
		timeout = flag.Duration("timeout", 0, "abort the figure build after this duration (0 = no limit)")
	)
	flag.Parse()
	fc := experiments.FigureConfig{
		Rows: *rows, Cols: *cols, Tails: *tails, TailLen: *tailLen,
		Eps: *eps, Kappa: *kappa, Rho: *rho,
	}
	if *engine != "" {
		eng, err := nearspan.ParseEngine(*engine)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		fc.Engine = eng
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := experiments.Figures(ctx, os.Stdout, fc); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "figures: interrupted (%v) — no figure output was truncated mid-section\n", err)
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}

// Command spannerd is the long-running spanner build service: it
// accepts build jobs over HTTP, executes them concurrently on the
// shared CONGEST runtime, streams per-step progress, and drains
// gracefully on SIGTERM — in-flight builds finish or are cancelled at a
// simulated round boundary, never emitting a partial spanner.
//
// Quick start:
//
//	spannerd -addr :8080 &
//	curl -s localhost:8080/v1/jobs -d '{
//	  "graph": {"type": "gnp", "n": 256, "p": 0.0625, "seed": 256, "connected": true},
//	  "eps": 0.3333333333333333, "kappa": 3, "rho": 0.49,
//	  "mode": "distributed", "engine": "parallel"
//	}'
//	curl -s localhost:8080/v1/jobs/j000001          # status + result
//	curl -sN localhost:8080/v1/jobs/j000001/events  # NDJSON step stream
//	curl -s 'localhost:8080/v1/jobs/j000001/query?u=0&v=9'   # one distance
//	printf '{"u":0,"v":9}\n{"u":3,"v":7}\n' |
//	  curl -s localhost:8080/v1/jobs/j000001/query --data-binary @-  # batch
//	curl -s localhost:8080/metrics                  # Prometheus text
//
// With -data-dir the daemon is crash-safe: job lifecycle events are
// journaled and completed spanners snapshotted under the directory, and
// a restart replays them — finished jobs come back with bit-identical
// spanners (and answer queries again), interrupted jobs re-run to the
// same result. Gate traffic on /readyz, which stays 503 until the
// replay finishes:
//
//	spannerd -addr :8080 -data-dir /var/lib/spannerd &
//	kill -9 $!                                      # crash, mid-build or not
//	spannerd -addr :8080 -data-dir /var/lib/spannerd &
//	curl -s localhost:8080/readyz                   # "ready" once recovered
//	curl -s localhost:8080/v1/jobs/j000001          # same job, same fingerprint
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nearspan/internal/service"
	"nearspan/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "spannerd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		queue        = flag.Int("queue", 64, "bounded job queue depth (submissions beyond it get 429)")
		builds       = flag.Int("builds", 2, "concurrent builds")
		schedWorkers = flag.Int("sched-workers", 0, "private scheduler workers (0 = share the process-wide pool)")
		jobTimeout   = flag.Duration("job-timeout", 0, "default per-job wall-clock limit (0 = none)")
		maxTimeout   = flag.Duration("max-job-timeout", 0, "cap on requested per-job timeouts (0 = no cap)")
		drainGrace   = flag.Duration("drain-grace", 10*time.Second, "how long in-flight builds get on SIGTERM before cancellation at a round boundary")
		queryReps    = flag.Int("query-replicas", 0, "query-tier BFS workspaces per finished job (0 = GOMAXPROCS)")
		queryCache   = flag.Int("query-cache", 0, "cached sources per finished job, 4n bytes each (0 = default 64, negative = disabled)")
		dataDir      = flag.String("data-dir", "", "durable state directory: job journal + spanner snapshots, replayed on restart (empty = in-memory only)")
		fsyncMode    = flag.String("fsync", "always", "fsync policy for durable writes: always|never (never trades crash safety for speed)")
	)
	flag.Parse()

	var st *store.Store
	if *dataDir != "" {
		policy, err := store.ParseFsync(*fsyncMode)
		if err != nil {
			return err
		}
		st, err = store.Open(store.Options{Dir: *dataDir, Fsync: policy})
		if err != nil {
			return err
		}
		defer st.Close()
		if damage := st.TailDamage(); damage != nil {
			// A torn tail is the expected signature of a crash mid-append;
			// the intact prefix was recovered and the tear truncated away.
			log.Printf("spannerd: journal tail damage truncated: %v", damage)
		}
		log.Printf("spannerd: durable state in %s (%d journal records, fsync=%s)",
			*dataDir, len(st.Recovered()), *fsyncMode)
	}

	srv := service.New(service.Options{
		QueueDepth:        *queue,
		Builds:            *builds,
		SchedWorkers:      *schedWorkers,
		DefaultTimeout:    *jobTimeout,
		MaxTimeout:        *maxTimeout,
		DrainGrace:        *drainGrace,
		QueryReplicas:     *queryReps,
		QueryCacheSources: *queryCache,
		Store:             st,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("spannerd: listening on %s (queue %d, builds %d, drain grace %s)",
		l.Addr(), *queue, *builds, *drainGrace)

	// SIGTERM/SIGINT starts the drain: shed new work, finish or cancel
	// in-flight builds at a round boundary, release the pools, exit 0.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	if err := service.Run(ctx, srv, l); err != nil {
		return err
	}
	log.Printf("spannerd: drained cleanly")
	return nil
}

// Command spanner builds a near-additive spanner of a generated workload
// graph, verifies its guarantees, and prints the per-phase statistics —
// the CLI face of the library.
//
// Examples:
//
//	spanner -graph gnp -n 600 -p 0.03 -eps 0.33 -kappa 3 -rho 0.49
//	spanner -graph torus -n 576 -mode distributed -csv
//	spanner -graph gnp -n 2000 -mode distributed -engine parallel
//	spanner -graph communities -n 500 -verify=false
//	spanner -graph grid -n 400 -query "0:399,0:210,5:86"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nearspan"
	"nearspan/internal/delta"
	"nearspan/internal/graph"
	"nearspan/internal/stats"
	"nearspan/internal/trace"
)

func main() {
	if err := run(); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "spanner: interrupted (%v) — no partial spanner is ever emitted\n", err)
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "spanner: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family  = flag.String("graph", "gnp", "workload family: gnp|grid|torus|communities|regular|pa|hypercube|path")
		input   = flag.String("input", "", "read the graph from an edge-list file instead of generating (header 'n m', one 'u v' per line)")
		n       = flag.Int("n", 400, "number of vertices (rounded to the family's shape)")
		p       = flag.Float64("p", 0.03, "edge probability for gnp")
		seed    = flag.Uint64("seed", 1, "workload seed")
		eps     = flag.Float64("eps", 1.0/3, "internal epsilon (0 < eps <= 1)")
		kappa   = flag.Int("kappa", 3, "size exponent kappa (>= 2)")
		rho     = flag.Float64("rho", 0.49, "round exponent rho (1/kappa <= rho < 1/2)")
		mode    = flag.String("mode", "centralized", "execution mode: centralized|distributed (goroutine is a deprecated alias for distributed -engine goroutine)")
		engine  = flag.String("engine", "sequential", "CONGEST engine for distributed mode: sequential|parallel|goroutine")
		verify  = flag.Bool("verify", true, "verify the stretch bound exactly (O(n(m_G+m_H)))")
		csv     = flag.Bool("csv", false, "emit phase table as CSV")
		phases  = flag.Bool("phases", false, "print the per-phase protocol-step breakdown (rounds, messages, peak round traffic)")
		timeout = flag.Duration("timeout", 0, "abort the build after this duration (0 = no limit); cancellation lands at a round boundary")
		query   = flag.String("query", "", "comma-separated u:v pairs answered from the built spanner (batched through the query pool)")
		deltaK  = flag.Int("delta", 0, "after the build, apply a random edge delta of this many delete+insert pairs through the incremental rebuild and report its cost against a from-scratch build of the patched graph")
	)
	flag.Parse()

	// SIGINT cancels the build at the next simulated round boundary —
	// the construction aborts cleanly instead of dying mid-round.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var g *nearspan.Graph
	var err error
	if *input != "" {
		g, err = readGraphFile(*input)
	} else {
		g, err = makeGraph(*family, *n, *p, *seed)
	}
	if err != nil {
		return err
	}
	engineSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "engine" {
			engineSet = true
		}
	})
	cfg := nearspan.Config{Eps: *eps, Kappa: *kappa, Rho: *rho, KeepClusters: false,
		KeepRebuildState: *deltaK > 0}
	cfg.Engine, err = nearspan.ParseEngine(*engine)
	if err != nil {
		return err
	}
	switch *mode {
	case "centralized":
		cfg.Mode = nearspan.CentralizedMode
	case "distributed":
		cfg.Mode = nearspan.DistributedMode
	case "goroutine": // deprecated alias, kept for old invocations
		if engineSet && cfg.Engine != nearspan.EngineGoroutine {
			return fmt.Errorf("-mode goroutine conflicts with -engine %s; use -mode distributed -engine %s",
				cfg.Engine, cfg.Engine)
		}
		cfg.Mode = nearspan.DistributedMode
		cfg.Engine = nearspan.EngineGoroutine
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	buildStart := time.Now()
	res, err := nearspan.BuildSpannerContext(ctx, g, cfg)
	if err != nil {
		return err
	}
	buildDur := time.Since(buildStart)
	pp := res.Params
	source := *family
	if *input != "" {
		source = *input
	}
	fmt.Printf("graph: %s n=%d m=%d\n", source, g.N(), g.M())
	fmt.Printf("params: %s\n", pp)
	fmt.Printf("spanner: %d edges (%.1f%% of G), guarantee (1+%.3f)d + %d\n",
		res.EdgeCount(), 100*float64(res.EdgeCount())/math.Max(1, float64(g.M())),
		pp.EpsPrime(), pp.BetaInt())
	if cfg.Mode == nearspan.DistributedMode {
		fmt.Printf("CONGEST: %d rounds, %d messages (%s engine)\n",
			res.TotalRounds, res.Messages, cfg.Engine)
	}

	t := stats.NewTable("phases", "i", "deg_i", "delta_i", "|P_i|", "|W_i|", "|RS_i|", "|U_i|",
		"edges SC", "edges IC", "rounds")
	for _, ph := range res.Phases {
		t.Add(stats.Itoa(ph.Index), stats.Itoa(ph.Deg), stats.Itoa(int(ph.Delta)),
			stats.Itoa(ph.Clusters), stats.Itoa(ph.Popular), stats.Itoa(ph.RulingSet),
			stats.Itoa(ph.Unclustered), stats.Itoa(ph.EdgesSC), stats.Itoa(ph.EdgesIC),
			stats.Itoa(ph.Rounds()))
	}
	if *csv {
		t.CSV(os.Stdout)
	} else {
		t.Render(os.Stdout)
	}

	if *phases {
		fmt.Printf("\nper-phase protocol steps")
		if cfg.Mode != nearspan.DistributedMode {
			fmt.Printf(" (centralized mode: schedule budgets, no messages)")
		}
		fmt.Println(":")
		fmt.Print(trace.StepTable(res.Steps))
	}

	if *verify {
		rep := nearspan.VerifyStretch(g, res.Spanner, 1+pp.EpsPrime(), pp.BetaInt())
		fmt.Printf("verification: %s\n", rep)
		if !rep.OK() {
			return fmt.Errorf("stretch bound violated")
		}
	}

	if *query != "" {
		pairs, err := parseQueries(*query, g.N())
		if err != nil {
			return err
		}
		pool := nearspan.NewOraclePool(res.Spanner, nearspan.OraclePoolOptions{})
		dists := pool.PairsBatch(pairs)
		for i, q := range pairs {
			if d := dists[i]; d == nearspan.Infinity {
				fmt.Printf("query %d:%d -> unreachable\n", q[0], q[1])
			} else {
				fmt.Printf("query %d:%d -> %d\n", q[0], q[1], d)
			}
		}
	}

	if *deltaK > 0 {
		return runDelta(ctx, res, cfg, *deltaK, *seed, buildDur)
	}
	return nil
}

// runDelta applies one random edge delta through the incremental
// rebuild, reports its cost against the initial build, and proves the
// tentpole guarantee on the spot: the rebuilt spanner's fingerprint is
// required to be bit-identical to a from-scratch build of the patched
// graph.
func runDelta(ctx context.Context, prev *nearspan.Result, cfg nearspan.Config, k int, seed uint64, buildDur time.Duration) error {
	batch := delta.RandomBatch(prev.Rebuild.Graph, k, seed^0xD317A)
	t0 := time.Now()
	res, err := nearspan.RebuildSpannerContext(ctx, prev, batch, cfg)
	if err != nil {
		return err
	}
	rebuildDur := time.Since(t0)
	mode := "incremental"
	if !res.Incremental {
		mode = "full-build fallback"
	}
	fmt.Printf("delta: %d ops (%d delete, %d insert) -> %s, %d vertices replayed\n",
		batch.Size(), len(batch.Delete), len(batch.Insert), mode, res.Tracked)
	fmt.Printf("delta: rebuild %v vs build %v (%.1fx)\n",
		rebuildDur.Round(time.Microsecond), buildDur.Round(time.Microsecond),
		float64(buildDur)/float64(rebuildDur))

	scratch, err := nearspan.BuildSpannerContext(ctx, res.Rebuild.Graph, cfg)
	if err != nil {
		return err
	}
	m1, fp1 := graph.Fingerprint(res.Spanner)
	m2, fp2 := graph.Fingerprint(scratch.Spanner)
	if m1 != m2 || fp1 != fp2 {
		return fmt.Errorf("delta rebuild diverged from from-scratch build: %s (%d edges) vs %s (%d edges)",
			fp1, m1, fp2, m2)
	}
	fmt.Printf("delta: verified bit-identical to from-scratch build of the patched graph (%s)\n", fp1)
	return nil
}

// parseQueries parses "u:v,u:v" into pairs, validating against n.
func parseQueries(s string, n int) ([][2]int, error) {
	parts := strings.Split(s, ",")
	pairs := make([][2]int, 0, len(parts))
	for _, part := range parts {
		uv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(uv) != 2 {
			return nil, fmt.Errorf("query %q: want u:v", part)
		}
		u, err := strconv.Atoi(uv[0])
		if err != nil {
			return nil, fmt.Errorf("query %q: %v", part, err)
		}
		v, err := strconv.Atoi(uv[1])
		if err != nil {
			return nil, fmt.Errorf("query %q: %v", part, err)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("query %q: vertex out of range [0,%d)", part, n)
		}
		pairs = append(pairs, [2]int{u, v})
	}
	return pairs, nil
}

func makeGraph(family string, n int, p float64, seed uint64) (*nearspan.Graph, error) {
	switch family {
	case "gnp":
		return nearspan.GNP(n, p, seed, true), nil
	case "grid":
		side := intSqrt(n)
		return nearspan.Grid(side, side), nil
	case "torus":
		side := intSqrt(n)
		return nearspan.Torus(side, side), nil
	case "communities":
		k := n / 50
		if k < 2 {
			k = 2
		}
		return nearspan.Communities(k, n/k, 0.3, 0.002, seed), nil
	case "regular":
		d := 8
		if n*d%2 != 0 {
			d = 7
		}
		return nearspan.RandomRegular(n, d, seed)
	case "pa":
		return nearspan.PreferentialAttachment(n, 3, seed)
	case "hypercube":
		d := 0
		for 1<<d < n {
			d++
		}
		return nearspan.Hypercube(d), nil
	case "path":
		return nearspan.Path(n), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", family)
	}
}

func readGraphFile(path string) (*nearspan.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return nearspan.ReadEdgeList(f)
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

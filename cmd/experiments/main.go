// Command experiments runs the full reproduction suite: Table 1, Table 2,
// the Figure 1-8 structural experiments, the quantitative per-lemma
// claims, and the ablations. The output of this command is the content
// recorded in EXPERIMENTS.md.
//
// The suite fans its configuration grids over the shared execution
// runtime, so distributed builds for independent workloads run
// concurrently. Interrupting with SIGINT (or exceeding -timeout) cancels
// the in-flight builds at a round boundary; every section already
// written to stdout is complete and valid — partial results are never
// lost to an interrupt.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"nearspan/internal/congest"
	"nearspan/internal/experiments"
)

// gate compares the fresh report at freshPath against the committed
// baseline at basePath and fails on a >25% ns/op regression in any
// gated benchmark family (experiments.GatedPrefixes).
func gate(freshPath, basePath string) error {
	load := func(path string) (experiments.BenchReport, error) {
		f, err := os.Open(path)
		if err != nil {
			return experiments.BenchReport{}, err
		}
		defer f.Close()
		return experiments.LoadBenchReport(f)
	}
	baseline, err := load(basePath)
	if err != nil {
		return err
	}
	fresh, err := load(freshPath)
	if err != nil {
		return err
	}
	if regressions := experiments.BenchGate(baseline, fresh, 0.25); len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "perf gate: %s\n", r)
		}
		return fmt.Errorf("perf gate: %d benchmark(s) regressed vs %s", len(regressions), basePath)
	}
	fmt.Printf("perf gate passed vs %s\n", basePath)
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "run the reduced workload suite")
	engine := flag.String("engine", "parallel",
		"CONGEST engine for distributed builds: sequential|parallel|goroutine (wall clock only; measurements are engine-independent)")
	timeout := flag.Duration("timeout", 0, "abort the suite after this duration (0 = no limit); sections already printed stay valid")
	benchJSON := flag.String("bench-json", "",
		"instead of the suite, run the assembly + engine + frontier benchmarks and write the machine-readable perf baseline (ns/op, B/op, allocs/op) to this path")
	cpu := flag.Int("cpu", runtime.GOMAXPROCS(0),
		"GOMAXPROCS for the -bench-json run; the value actually used is recorded as go_maxprocs in the report")
	benchGate := flag.String("bench-gate", "",
		"with -bench-json: compare the fresh report against this baseline and exit nonzero on a >25% ns/op regression in any gated benchmark family")
	scale := flag.Int("scale", 0,
		"instead of the suite, run one scale-regime workload near this many edges (streamed GNP through the full distributed build with a lazy arena) and print its memory/time report; try 1000000 locally, 10000000 for the full smoke")
	scaleVerify := flag.Int("scale-verify", 0,
		"with -scale: run a sampled stretch verification from this many BFS sources after the build")
	deltaChurn := flag.Int("delta-churn", 0,
		"instead of the suite, run this many incremental-rebuild churn steps (random edge deltas chained through core.Rebuild) on a streamed GNP workload and print the per-step speedup report")
	deltaEdges := flag.Int("delta-edges", 0,
		"with -delta-churn: approximate edge count of the churn workload (default 250000)")
	deltaOps := flag.Int("delta-ops", 0,
		"with -delta-churn: delete+insert pairs per churn batch (default 8)")
	deltaVerify := flag.Bool("delta-verify", true,
		"with -delta-churn: rebuild the final patched graph from scratch and require a bit-identical fingerprint")
	flag.Parse()
	eng, err := congest.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	if *benchGate != "" && *benchJSON == "" {
		fmt.Fprintln(os.Stderr, "experiments: -bench-gate requires -bench-json (nothing would be gated)")
		os.Exit(1)
	}
	if *benchJSON != "" {
		if *cpu > 0 {
			runtime.GOMAXPROCS(*cpu)
		}
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		err = experiments.BenchJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote perf baseline to %s (GOMAXPROCS %d)\n", *benchJSON, runtime.GOMAXPROCS(0))
		if *benchGate != "" {
			if err := gate(*benchJSON, *benchGate); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	if *deltaChurn > 0 {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		res, err := experiments.DeltaChurnRun(ctx, experiments.DeltaChurnSpec{
			TargetEdges: *deltaEdges,
			Steps:       *deltaChurn,
			Ops:         *deltaOps,
			Verify:      *deltaVerify,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		experiments.WriteDeltaChurnReport(os.Stdout, res)
		return
	}
	if *scale > 0 {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		res, err := experiments.ScaleRun(ctx, experiments.ScaleSpec{
			TargetEdges:   *scale,
			Engine:        eng,
			VerifySamples: *scaleVerify,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		experiments.WriteScaleReport(os.Stdout, res)
		return
	}

	cfgs := experiments.DefaultConfigs()
	if *quick {
		cfgs = experiments.QuickConfigs()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := experiments.Suite(ctx, os.Stdout, cfgs, eng); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "experiments: interrupted (%v) — sections above are complete; the in-flight section was abandoned\n", err)
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

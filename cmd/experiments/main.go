// Command experiments runs the full reproduction suite: Table 1, Table 2,
// the Figure 1-8 structural experiments, the quantitative per-lemma
// claims, and the ablations. The output of this command is the content
// recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"nearspan/internal/congest"
	"nearspan/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced workload suite")
	engine := flag.String("engine", "parallel",
		"CONGEST engine for distributed builds: sequential|parallel|goroutine (wall clock only; measurements are engine-independent)")
	flag.Parse()
	eng, err := congest.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	cfgs := experiments.DefaultConfigs()
	if *quick {
		cfgs = experiments.QuickConfigs()
	}
	if err := experiments.Suite(os.Stdout, cfgs, eng); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

package nearspan_test

import (
	"testing"

	"nearspan/internal/experiments"
)

// BenchmarkSpannerAssembly compares the two spanner-assembly data
// planes on the 500k-edge workload: "map-plane" is the pre-columnar
// pipeline (map[Edge]bool accumulation, global key sort, re-deduping
// graph.Builder, per-vertex CSR sorts) preserved as the reference;
// "columnar" is the edgeset.Set plane (bucketed sorted-run dedupe,
// direct CSR emission). Both produce the identical graph (asserted
// below). The shared workload and plane implementations live in
// internal/experiments so `cmd/experiments -bench-json` records exactly
// these measurements in the BENCH_core.json perf-trajectory artifact.
func BenchmarkSpannerAssembly(b *testing.B) {
	const n = 100_000
	const m = 500_000
	stream := experiments.AssemblyWorkload(n, m)

	b.Run("map-plane/500k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.AssembleMapPlane(n, stream)
		}
	})
	b.Run("columnar/500k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.AssembleColumnar(n, stream)
		}
	})
}

// TestAssemblyPlanesAgree pins what the benchmark assumes: both planes
// produce the identical CSR graph from the identical stream.
func TestAssemblyPlanesAgree(t *testing.T) {
	const n = 2000
	stream := experiments.AssemblyWorkload(n, 10_000)
	want := experiments.AssembleMapPlane(n, stream)
	got := experiments.AssembleColumnar(n, stream)
	if got.M() != want.M() {
		t.Fatalf("edge counts differ: columnar %d, map %d", got.M(), want.M())
	}
	want.Edges(func(u, v int) {
		if !got.HasEdge(u, v) {
			t.Errorf("columnar plane missing edge {%d,%d}", u, v)
		}
	})
}

//go:build scale

package nearspan_test

import (
	"context"
	"testing"
	"time"

	"nearspan/internal/congest"
	"nearspan/internal/experiments"
)

// TestScaleSmoke10M is the 10⁷-edge end-to-end smoke: stream-generate a
// GNP graph at n = 65536, run the full distributed construction on the
// parallel engine with a fully lazy arena, and verify the scale-regime
// acceptance criteria — the build completes, the measured arena sits at
// least 4× below the worst-case preallocation it replaced, and a
// sampled stretch check passes. Gated behind the `scale` build tag (CI
// runs it in its own job under GOMEMLIMIT):
//
//	go test -tags scale -run TestScaleSmoke10M -timeout 30m .
func TestScaleSmoke10M(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Minute)
	defer cancel()
	res, err := experiments.ScaleRun(ctx, experiments.ScaleSpec{
		TargetEdges:   10_000_000,
		Engine:        congest.EngineParallel,
		VerifySamples: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("n=%d m=%d gen=%.1fs build=%.1fs rounds=%d messages=%d spanner=%d",
		res.N, res.M, res.GenSeconds, res.BuildSeconds, res.TotalRounds, res.Messages, res.SpannerEdges)
	t.Logf("arena=%.1f MiB vs worst-case %.1f MiB, process Sys=%.1f MiB, hash=%s",
		float64(res.ArenaBytes)/(1<<20), float64(res.ArenaWorstCase)/(1<<20),
		float64(res.SysBytes)/(1<<20), res.SampledHash)

	if res.M < 9_000_000 || res.M > 11_000_000 {
		t.Errorf("realized edge count %d, want ~10⁷", res.M)
	}
	if res.ArenaBytes <= 0 {
		t.Fatalf("no arena measurement: ArenaBytes = %d", res.ArenaBytes)
	}
	// The tentpole criterion: the measured arena stays ≥ 4× below what
	// the legacy worst-case preallocation would have pinned. (The true
	// pre-scale-up footprint was larger still — it also carried 8 bytes
	// per slot of destination tables the slot-identity layout removed.)
	if 4*res.ArenaBytes > res.ArenaWorstCase {
		t.Errorf("arena headroom %.1fx, want >= 4x (measured %d, worst case %d)",
			float64(res.ArenaWorstCase)/float64(res.ArenaBytes), res.ArenaBytes, res.ArenaWorstCase)
	}
	if res.SampledHash == "" {
		t.Error("empty sampled spanner fingerprint")
	}
	if !res.Verified || !res.StretchOK {
		t.Errorf("sampled stretch verification failed (verified=%v ok=%v)", res.Verified, res.StretchOK)
	}
}

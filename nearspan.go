// Package nearspan constructs sparse (1+ε, β) near-additive spanners of
// unweighted undirected graphs with the deterministic CONGEST-model
// algorithm of Elkin & Matar (PODC 2019), together with the randomized
// and centralized baselines it is compared against, a full CONGEST round
// simulator, and verification tooling.
//
// # Quick start
//
//	g := nearspan.Grid(32, 32)
//	res, err := nearspan.BuildSpanner(g, nearspan.Config{
//		Eps: 0.5, Kappa: 4, Rho: 0.45,
//	})
//	if err != nil { ... }
//	fmt.Println(res.EdgeCount(), "of", g.M(), "edges kept")
//	rep := nearspan.VerifyStretch(g, res.Spanner,
//		1+res.Params.EpsPrime(), res.Params.BetaInt())
//	fmt.Println("stretch ok:", rep.OK())
//
// The spanner satisfies d_H(u,v) <= (1+ε')·d_G(u,v) + β for every vertex
// pair, with ε' and β as in the paper's Corollary 2.18; res.TotalRounds
// reports the CONGEST rounds consumed when built in DistributedMode.
//
// The deeper layers are exposed for experimentation: the CONGEST
// simulator and node programs live in internal packages and surface
// through the spanner construction modes; graph generators and stretch
// verification are re-exported here.
package nearspan

import (
	"context"
	"fmt"
	"io"

	"nearspan/internal/baseline"
	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/delta"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/oracle"
	"nearspan/internal/params"
	"nearspan/internal/protocols"
	"nearspan/internal/verify"
)

// Graph is an immutable simple undirected graph in CSR form. Build one
// with NewBuilder or the generators below.
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// Params is the validated parameter set and derived phase schedule.
type Params = params.Params

// Result is the outcome of a spanner construction.
type Result = core.Result

// PhaseStats records one phase's measurements.
type PhaseStats = core.PhaseStats

// StepMetrics records one protocol session's rounds, messages, and peak
// round traffic on the persistent network; Result.Steps holds the
// stream, one entry per protocol step in execution order.
type StepMetrics = protocols.StepMetrics

// StretchReport summarizes a stretch verification.
type StretchReport = verify.StretchReport

// Mode selects how the construction executes.
type Mode = core.Mode

// Execution modes: CentralizedMode runs the fast reference
// implementation; DistributedMode runs the full CONGEST protocol stack
// and measures rounds. Both produce the identical spanner.
const (
	CentralizedMode = core.ModeCentralized
	DistributedMode = core.ModeDistributed
)

// Engine selects the CONGEST simulator execution engine used by
// DistributedMode. All engines are deterministic and produce the
// bit-identical spanner, round count, and message count; they differ
// only in wall-clock speed.
type Engine = congest.Engine

// The available engines:
//
//   - EngineSequential: single-threaded round loop (the default).
//   - EngineParallel: vertex shards fanned out to a fixed worker pool
//     sized to GOMAXPROCS — the engine for large graphs on multi-core
//     hardware.
//   - EngineGoroutine: one goroutine per graph vertex — the literal
//     message-passing-processors rendering, for model-fidelity
//     cross-checks; impractical beyond small graphs.
const (
	EngineSequential = congest.EngineSequential
	EngineParallel   = congest.EngineParallel
	EngineGoroutine  = congest.EngineGoroutine
)

// ParseEngine parses an engine name ("sequential", "parallel",
// "goroutine") as printed by Engine.String — for CLI flags.
func ParseEngine(name string) (Engine, error) { return congest.ParseEngine(name) }

// Config configures BuildSpanner.
type Config struct {
	// Eps is the paper's internal ε (0 < ε <= 1): the phase distance
	// scale. Smaller ε gives better multiplicative stretch and a larger
	// additive term β = ε^{-ℓ}. If TargetEpsPrime is set, Eps is derived
	// instead.
	Eps float64
	// TargetEpsPrime, when positive, requests a final multiplicative
	// stretch of 1+TargetEpsPrime and derives ε by the paper's §2.4.4
	// rescaling.
	TargetEpsPrime float64
	// Kappa (κ >= 2) controls spanner size: O(β·n^{1+1/κ}) edges.
	Kappa int
	// Rho (1/κ <= ρ < 1/2) controls the round budget: O(β·n^ρ/ρ).
	Rho float64
	// Mode selects the execution backend (default CentralizedMode).
	Mode Mode
	// Engine selects the CONGEST simulator engine in DistributedMode:
	// EngineSequential (default), EngineParallel, or EngineGoroutine.
	Engine Engine
	// GoroutineEngine runs the distributed mode with one goroutine per
	// vertex instead of the sequential round loop.
	//
	// Deprecated: set Engine to EngineGoroutine instead. Ignored when
	// Engine is non-zero.
	GoroutineEngine bool
	// KeepClusters retains per-phase cluster collections in the result.
	KeepClusters bool
	// OnStep, when set, receives each protocol step's metrics as it
	// completes — a progress stream for long builds. It is called
	// synchronously on the building goroutine, in execution order, in
	// both modes (centralized steps report their schedule budgets with
	// zero messages).
	OnStep func(StepMetrics)
	// RoundBudget, when positive, bounds the build's total simulated
	// rounds: a construction that would exceed it aborts — at a round
	// boundary, never yielding a partial spanner — with an error whose
	// chain carries a *congest.ErrBudgetExhausted (the in-flight message
	// histogram at the cut, in DistributedMode). This is the per-job
	// round cap of the build service.
	RoundBudget int
	// KeepRebuildState retains the per-phase state (center sets,
	// near-neighbors tables, forward transcripts) that RebuildSpanner
	// replays against. Costs memory proportional to the stored tables;
	// required on a result before it can seed a delta rebuild.
	KeepRebuildState bool
	// MaxAffectedFraction bounds a delta rebuild's dirty frontier as a
	// fraction of the vertex count: past it, RebuildSpanner abandons the
	// incremental path and falls back to a full build of the patched
	// graph. 0 means the default (0.25); values >= 1 never fall back.
	MaxAffectedFraction float64
	// ArenaFraction controls how much of the CONGEST simulator's
	// worst-case message arena DistributedMode preallocates. The arena
	// grows lazily in pages as protocol traffic touches slots; this knob
	// only trades first-touch latency against idle memory. 0 (the
	// default) preallocates a small reserve, negative values allocate
	// nothing up front — the right setting for 10⁷-edge-and-up builds —
	// and values >= 1 restore the legacy full worst-case preallocation.
	// The spanner, rounds, messages, and reported ArenaBytes are
	// bit-identical for every setting.
	ArenaFraction float64
}

// BuildSpanner constructs a (1+ε', β)-spanner of g.
func BuildSpanner(g *Graph, cfg Config) (*Result, error) {
	return BuildSpannerContext(context.Background(), g, cfg)
}

// BuildSpannerContext is BuildSpanner with cancellation: the context is
// checked at every simulated round boundary (DistributedMode) and every
// protocol step (CentralizedMode), so a cancelled or expired context
// aborts the construction promptly and returns the context's error
// (errors.Is-matchable). A cancelled build never yields a partial
// spanner. For building many graphs concurrently, see BuildBatch.
func BuildSpannerContext(ctx context.Context, g *Graph, cfg Config) (*Result, error) {
	p, err := cfg.params(g.N())
	if err != nil {
		return nil, err
	}
	return core.Build(ctx, g, p, cfg.options())
}

// options renders the configuration as core build options.
func (cfg Config) options() core.Options {
	return core.Options{
		Mode:                cfg.Mode,
		Engine:              cfg.engine(),
		KeepClusters:        cfg.KeepClusters,
		OnStep:              cfg.OnStep,
		RoundBudget:         cfg.RoundBudget,
		ArenaFraction:       cfg.ArenaFraction,
		KeepRebuildState:    cfg.KeepRebuildState,
		MaxAffectedFraction: cfg.MaxAffectedFraction,
	}
}

// DeltaEdge is one undirected edge of a delta batch.
type DeltaEdge = delta.Edge

// DeltaBatch is an edge delta — insertions and deletions applied
// atomically to a previously built graph by RebuildSpanner.
type DeltaBatch = delta.Batch

// RebuildSpanner constructs the spanner of prev's graph patched by
// batch, reusing prev's retained state (Config.KeepRebuildState): the
// near-neighbors tables — the dominant build cost — are recomputed only
// on the dirty frontier the delta perturbs, and the cheap steps re-run
// on the patched graph. The result is bit-identical to BuildSpanner on
// the patched graph; Result.Incremental reports whether the incremental
// path was taken (false after a fallback, see Config.MaxAffectedFraction)
// and Result.Tracked how many vertices were replayed. Rebuild results
// retain state themselves, so rebuilds chain across a churn sequence.
func RebuildSpanner(prev *Result, batch *DeltaBatch, cfg Config) (*Result, error) {
	return RebuildSpannerContext(context.Background(), prev, batch, cfg)
}

// RebuildSpannerContext is RebuildSpanner with cancellation, observed at
// the same boundaries as BuildSpannerContext.
func RebuildSpannerContext(ctx context.Context, prev *Result, batch *DeltaBatch, cfg Config) (*Result, error) {
	return core.Rebuild(ctx, prev, batch, cfg.options())
}

// params resolves the parameter schedule from the configuration.
func (cfg Config) params(n int) (*Params, error) {
	switch {
	case cfg.TargetEpsPrime > 0:
		return params.FromTarget(cfg.TargetEpsPrime, cfg.Kappa, cfg.Rho, n)
	case cfg.Eps > 0:
		return params.New(cfg.Eps, cfg.Kappa, cfg.Rho, n)
	default:
		return nil, fmt.Errorf("nearspan: set Config.Eps or Config.TargetEpsPrime")
	}
}

// engine resolves the Engine selection, honoring the deprecated
// GoroutineEngine flag when Engine is unset.
func (cfg Config) engine() Engine {
	if cfg.Engine != 0 {
		return cfg.Engine
	}
	if cfg.GoroutineEngine {
		return EngineGoroutine
	}
	return EngineSequential
}

// NewParams exposes the parameter derivation for callers that want to
// inspect the schedule (ℓ, deg_i, δ_i, β) before building.
func NewParams(eps float64, kappa int, rho float64, n int) (*Params, error) {
	return params.New(eps, kappa, rho, n)
}

// NewParamsWithEstimate derives the schedule when vertices know only an
// estimate ñ >= n of the vertex count (paper §1.3.1); pass the result to
// core building via BuildSpannerWithParams.
func NewParamsWithEstimate(eps float64, kappa int, rho float64, n, nTilde int) (*Params, error) {
	return params.NewWithEstimate(eps, kappa, rho, n, nTilde)
}

// BuildSpannerWithParams constructs a spanner under an explicit
// parameter schedule (e.g. one built with NewParamsWithEstimate).
func BuildSpannerWithParams(g *Graph, p *Params, mode Mode, engine Engine, keepClusters bool) (*Result, error) {
	return core.Build(context.Background(), g, p, core.Options{
		Mode:         mode,
		Engine:       engine,
		KeepClusters: keepClusters,
	})
}

// VerifyStretch measures the (alpha, beta) stretch of h against g
// exactly, over all connected pairs.
func VerifyStretch(g, h *Graph, alpha float64, beta int32) StretchReport {
	return verify.Stretch(g, h, alpha, beta)
}

// VerifyStretchSampled measures stretch from a deterministic sample of
// BFS sources, for graphs too large for the exact check.
func VerifyStretchSampled(g, h *Graph, alpha float64, beta int32, samples int, seed uint64) StretchReport {
	return verify.StretchSampled(g, h, alpha, beta, samples, seed)
}

// IsSubgraph reports whether h's edges all exist in g.
func IsSubgraph(h, g *Graph) bool { return verify.Subgraph(h, g) }

// Baseline constructions, for comparison studies. See the experiments
// binary for the full Table 1 / Table 2 harness.

// BuildEN17 constructs the randomized Elkin–Neiman (SODA 2017) spanner.
func BuildEN17(g *Graph, eps float64, kappa int, rho float64, seed uint64) (*baseline.EN17Result, error) {
	p, err := baseline.NewEN17Params(eps, kappa, rho, g.N())
	if err != nil {
		return nil, err
	}
	return baseline.BuildEN17(g, p, seed)
}

// BuildEP01 constructs the centralized Elkin–Peleg (STOC 2001) spanner.
func BuildEP01(g *Graph, eps float64, kappa int, rho float64) (*baseline.EP01Result, error) {
	p, err := baseline.NewEP01Params(eps, kappa, rho, g.N())
	if err != nil {
		return nil, err
	}
	return baseline.BuildEP01(g, p)
}

// BuildBaswanaSen constructs a (2κ−1)-multiplicative spanner.
func BuildBaswanaSen(g *Graph, kappa int, seed uint64) (*Graph, error) {
	return baseline.BuildBaswanaSen(g, kappa, seed)
}

// BuildGreedy constructs the greedy (2κ−1)-multiplicative spanner.
func BuildGreedy(g *Graph, kappa int) (*Graph, error) {
	return baseline.BuildGreedy(g, kappa)
}

// DistanceOracle answers approximate distance queries over a
// preprocessed spanner with the (1+ε', β) guarantee.
type DistanceOracle = oracle.Oracle

// OracleOptions configure NewDistanceOracle.
type OracleOptions = oracle.Options

// NewDistanceOracle preprocesses g into an approximate distance oracle:
// queries traverse the spanner (O(β·n^{1+1/κ}) edges) instead of g.
func NewDistanceOracle(g *Graph, opts OracleOptions) (*DistanceOracle, error) {
	return oracle.New(g, opts)
}

// OracleFromResult wraps an already-built spanner in a distance oracle.
func OracleFromResult(g *Graph, res *Result, cacheSources int) (*DistanceOracle, error) {
	return oracle.FromSpanner(g, res, cacheSources)
}

// Infinity is the distance returned for disconnected vertex pairs.
const Infinity = graph.Infinity

// OraclePool is the concurrent high-QPS query tier over an immutable
// spanner: N lock-free read replicas with preallocated BFS workspaces,
// a shared once-filled source cache, a bidirectional fast path for
// point queries, and a batch API that groups queries by source. All
// methods are safe for concurrent use and answers are exact spanner
// distances, bit-identical across replica counts and query paths.
type OraclePool = oracle.Pool

// OraclePoolOptions configure NewOraclePool.
type OraclePoolOptions = oracle.PoolOptions

// OraclePoolStats is a snapshot of a pool's counters.
type OraclePoolStats = oracle.PoolStats

// NewOraclePool builds a query pool over a spanner (for example
// Result.Spanner). The spanner must not be mutated afterwards.
func NewOraclePool(spanner *Graph, opts OraclePoolOptions) *OraclePool {
	return oracle.NewPool(spanner, opts)
}

// Graph generators (deterministic given their seeds).

// Path returns the n-vertex path graph.
func Path(n int) *Graph { return gen.Path(n) }

// Cycle returns the n-vertex cycle graph.
func Cycle(n int) *Graph { return gen.Cycle(n) }

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph { return gen.Grid(rows, cols) }

// Torus returns the rows×cols torus graph.
func Torus(rows, cols int) *Graph { return gen.Torus(rows, cols) }

// Hypercube returns the d-dimensional hypercube graph.
func Hypercube(d int) *Graph { return gen.Hypercube(d) }

// GNP returns an Erdős–Rényi G(n, p) graph.
func GNP(n int, p float64, seed uint64, ensureConnected bool) *Graph {
	return gen.GNP(n, p, seed, ensureConnected)
}

// RandomRegular returns a (near-)d-regular graph.
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	return gen.RandomRegular(n, d, seed)
}

// PreferentialAttachment returns a Barabási–Albert-style graph.
func PreferentialAttachment(n, m int, seed uint64) (*Graph, error) {
	return gen.PreferentialAttachment(n, m, seed)
}

// Communities returns a planted-partition graph with k communities of
// commSize vertices.
func Communities(k, commSize int, pIn, pOut float64, seed uint64) *Graph {
	return gen.Communities(k, commSize, pIn, pOut, seed)
}

// RandomTree returns a uniform random attachment tree.
func RandomTree(n int, seed uint64) *Graph { return gen.RandomTree(n, seed) }

// RandomGeometric returns a random geometric graph on n points in the
// unit square with the given connection radius.
func RandomGeometric(n int, radius float64, seed uint64, ensureConnected bool) *Graph {
	return gen.RandomGeometric(n, radius, seed, ensureConnected)
}

// ReadEdgeList parses the whitespace edge-list format (header "n m",
// one "u v" line per edge; '#' comments allowed).
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// Streaming generators, for graphs too large to hold as an edge buffer.
// An EdgeStream knows the exact vertex count, edge count, and degree
// sequence of its graph before any edge is materialized, and replays its
// sorted edge sequence as many times as asked; EdgeStream.Graph builds
// the CSR in a single allocation and a single fill pass. A streamed
// generator yields the bit-identical graph to its materialized
// counterpart with the same parameters.

// EdgeStream is a replayable sorted edge sequence with known counts.
type EdgeStream = gen.EdgeStream

// StreamGNP is the streaming form of GNP.
func StreamGNP(n int, p float64, seed uint64, ensureConnected bool) *EdgeStream {
	return gen.StreamGNP(n, p, seed, ensureConnected)
}

// StreamGrid is the streaming form of Grid.
func StreamGrid(rows, cols int) *EdgeStream { return gen.StreamGrid(rows, cols) }

// StreamTorus is the streaming form of Torus.
func StreamTorus(rows, cols int) *EdgeStream { return gen.StreamTorus(rows, cols) }

// StreamCommunities is the streaming form of Communities.
func StreamCommunities(k, commSize int, pIn, pOut float64, seed uint64) *EdgeStream {
	return gen.StreamCommunities(k, commSize, pIn, pOut, seed)
}

// Fingerprint returns a graph's edge count and a canonical digest of
// its exact edge set — equal fingerprints on equal-order graphs mean
// equal graphs, the cheap cross-engine and cross-generator identity
// check.
func Fingerprint(g *Graph) (m int, hash string) { return graph.Fingerprint(g) }

// FingerprintSampled digests the edges incident to a deterministic
// pseudo-random sample of vertices — the verification mode for graphs
// too large to fingerprint in full. With samples >= g.N() it equals
// Fingerprint.
func FingerprintSampled(g *Graph, samples int, seed uint64) (m int, hash string) {
	return graph.FingerprintSampled(g, samples, seed)
}

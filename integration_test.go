package nearspan_test

import (
	"strings"
	"testing"

	"nearspan"
)

// TestEndToEndPipeline exercises the full public surface as a downstream
// user would: serialize a workload, reload it, build the spanner
// distributedly, wrap it in a distance oracle, and verify every layer's
// guarantees against the original graph.
func TestEndToEndPipeline(t *testing.T) {
	original := nearspan.Communities(5, 30, 0.3, 0.01, 99)

	// Round-trip through the edge-list format.
	var sb strings.Builder
	if err := original.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	g, err := nearspan.ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != original.N() || g.M() != original.M() {
		t.Fatalf("round trip changed the graph: %d/%d vs %d/%d",
			g.N(), g.M(), original.N(), original.M())
	}

	// Distributed construction with the parallel sharded engine.
	res, err := nearspan.BuildSpanner(g, nearspan.Config{
		Eps: 1.0 / 3, Kappa: 3, Rho: 0.49,
		Mode: nearspan.DistributedMode, Engine: nearspan.EngineParallel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRounds <= 0 {
		t.Error("no rounds measured")
	}
	if !nearspan.IsSubgraph(res.Spanner, g) {
		t.Error("spanner not a subgraph")
	}

	// Stretch guarantee against the ORIGINAL graph (not the reloaded
	// copy) — the formats and construction must compose transparently.
	alpha, beta := 1+res.Params.EpsPrime(), res.Params.BetaInt()
	rep := nearspan.VerifyStretch(original, res.Spanner, alpha, beta)
	if !rep.OK() {
		t.Errorf("stretch violated: %v", rep)
	}

	// Oracle over the distributed result.
	o, err := nearspan.OracleFromResult(g, res, 8)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u += 17 {
		for v := 0; v < g.N(); v += 23 {
			exact := original.Distance(u, v)
			got := o.Dist(u, v)
			if got < exact {
				t.Fatalf("oracle underestimates %d-%d", u, v)
			}
			if float64(got) > alpha*float64(exact)+float64(beta) {
				t.Fatalf("oracle answer %d beyond guarantee for exact %d", got, exact)
			}
		}
	}

	// The whole pipeline is deterministic end to end.
	res2, err := nearspan.BuildSpanner(g, nearspan.Config{
		Eps: 1.0 / 3, Kappa: 3, Rho: 0.49,
		Mode: nearspan.DistributedMode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.EdgeCount() != res.EdgeCount() || !nearspan.IsSubgraph(res2.Spanner, res.Spanner) {
		t.Error("sequential engine rebuild differs from parallel engine build")
	}
}

// TestDeprecatedGoroutineEngineAlias exercises the deprecated boolean
// and the mixed alias+enum config end to end through the public API.
// (Which engine each config resolves to is pinned by the white-box
// TestConfigEngineResolution — outputs alone cannot distinguish
// engines, by design.)
func TestDeprecatedGoroutineEngineAlias(t *testing.T) {
	g := nearspan.Grid(8, 8)
	build := func(cfg nearspan.Config) *nearspan.Result {
		cfg.Eps, cfg.Kappa, cfg.Rho = 0.5, 4, 0.45
		cfg.Mode = nearspan.DistributedMode
		res, err := nearspan.BuildSpanner(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	old := build(nearspan.Config{GoroutineEngine: true})
	enum := build(nearspan.Config{Engine: nearspan.EngineGoroutine})
	both := build(nearspan.Config{Engine: nearspan.EngineParallel, GoroutineEngine: true})
	if old.EdgeCount() != enum.EdgeCount() || old.TotalRounds != enum.TotalRounds {
		t.Error("deprecated GoroutineEngine alias diverges from Engine: EngineGoroutine")
	}
	if both.EdgeCount() != enum.EdgeCount() || both.TotalRounds != enum.TotalRounds {
		t.Error("engines disagree on output — determinism contract broken")
	}
}

// TestCrossAlgorithmComparison pins the qualitative relationships the
// paper's tables assert, as an executable integration check.
func TestCrossAlgorithmComparison(t *testing.T) {
	g := nearspan.GNP(250, 0.08, 31, true)
	eps, kappa, rho := 1.0/3, 3, 0.49

	det, err := nearspan.BuildSpanner(g, nearspan.Config{Eps: eps, Kappa: kappa, Rho: rho})
	if err != nil {
		t.Fatal(err)
	}
	en, err := nearspan.BuildEN17(g, eps, kappa, rho, 5)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := nearspan.BuildEP01(g, eps, kappa, rho)
	if err != nil {
		t.Fatal(err)
	}

	// The schedules' additive terms are ordered: EP01 = EN17 radii are
	// tighter than the ruling-set radii (the derandomization price).
	if det.Params.BetaInt() < en.Beta {
		t.Errorf("deterministic beta %d below EN17's %d — ordering inverted",
			det.Params.BetaInt(), en.Beta)
	}
	if en.Beta != ep.Beta {
		t.Errorf("EN17 and EP01 share the radius recurrence: %d vs %d", en.Beta, ep.Beta)
	}

	// All three sparsify this dense graph.
	for name, m := range map[string]int{
		"det": det.EdgeCount(), "en17": en.Spanner.M(), "ep01": ep.Spanner.M(),
	} {
		if m >= g.M() {
			t.Errorf("%s did not sparsify: %d >= %d", name, m, g.M())
		}
	}
}

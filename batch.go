package nearspan

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"nearspan/internal/core"
	"nearspan/internal/protocols"
	"nearspan/internal/sched"
)

// BuildJob is one graph/configuration pair in a batch build.
type BuildJob struct {
	// Name optionally labels the job in errors; it is never required.
	Name   string
	Graph  *Graph
	Config Config
}

// BuildOutcome is the per-job result of a batch build: exactly one of
// Result and Err is non-nil. Outcomes are positional — outcome i belongs
// to job i — so a batch with failures still identifies every success.
type BuildOutcome struct {
	Result *Result
	Err    error
}

// BatchOptions configure a BatchBuilder.
type BatchOptions struct {
	// Workers sizes the batch's private CONGEST scheduler: the bounded
	// worker pool that every distributed build in the batch multiplexes
	// its simulator rounds onto (<= 0 means GOMAXPROCS). N concurrent
	// builds share these workers instead of stacking N private pools.
	Workers int
	// Parallel bounds the number of in-flight builds (<= 0 means
	// GOMAXPROCS). Each in-flight build costs one coordinating goroutine
	// plus its graph-sized simulator arenas; the CPU parallelism is
	// governed by Workers.
	Parallel int
	// OnStep, when set, receives every protocol step metric as it
	// completes, tagged with the job's index in the batch. Callbacks for
	// different jobs arrive concurrently (guard shared state); within one
	// job they arrive in execution order.
	OnStep func(job int, step StepMetrics)
}

// BatchBuilder builds many spanners concurrently on one shared
// execution runtime. Construction is cheap (workers start lazily);
// Close releases the runtime's goroutines — always call it. The
// builder is safe for concurrent use, and every build is bit-identical
// to the same build run alone (construction is deterministic and
// builds share no mutable state, only the scheduler).
type BatchBuilder struct {
	rt       *sched.Runtime
	parallel int
	onStep   func(int, StepMetrics)
}

// NewBatchBuilder returns a builder whose batches share one bounded
// scheduler.
func NewBatchBuilder(opts BatchOptions) *BatchBuilder {
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &BatchBuilder{
		rt:       sched.New(opts.Workers),
		parallel: parallel,
		onStep:   opts.OnStep,
	}
}

// Close releases the builder's scheduler goroutines. It must not be
// called while a batch is in flight.
func (b *BatchBuilder) Close() { b.rt.Close() }

// BuildBatch builds all jobs, running up to the configured Parallel
// limit concurrently on the shared runtime, and returns one outcome per
// job in job order. Outputs are bit-identical to a sequential
// BuildSpanner loop over the same jobs.
//
// Cancelling the context aborts in-flight builds within one simulated
// round and marks not-yet-started jobs with ctx.Err(); the returned
// error is then ctx.Err() as well. Otherwise the returned error is nil
// even if individual jobs failed — per-job errors live in the outcomes.
func (b *BatchBuilder) BuildBatch(ctx context.Context, jobs []BuildJob) ([]BuildOutcome, error) {
	out := make([]BuildOutcome, len(jobs))
	sem := make(chan struct{}, b.parallel)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = b.buildJob(ctx, i, jobs[i])
		}(i)
	}
	wg.Wait()
	return out, ctx.Err()
}

func (b *BatchBuilder) buildJob(ctx context.Context, i int, job BuildJob) BuildOutcome {
	fail := func(err error) BuildOutcome {
		if job.Name != "" {
			err = fmt.Errorf("nearspan: job %d (%s): %w", i, job.Name, err)
		} else {
			err = fmt.Errorf("nearspan: job %d: %w", i, err)
		}
		return BuildOutcome{Err: err}
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	cfg := job.Config
	p, err := cfg.params(job.Graph.N())
	if err != nil {
		return fail(err)
	}
	opts := core.Options{
		Mode:         cfg.Mode,
		Engine:       cfg.engine(),
		KeepClusters: cfg.KeepClusters,
		Runtime:      b.rt,
		RoundBudget:  cfg.RoundBudget,
		OnStep:       cfg.OnStep,
	}
	if b.onStep != nil {
		// The per-job OnStep slot is a single function; fan it out so the
		// job's own callback and the batch-level callback are independent
		// subscribers instead of a hand-merged closure (and so further
		// consumers — e.g. a service's /events streams — can attach and
		// detach race-free mid-build).
		var fan protocols.StepFanout
		if cfg.OnStep != nil {
			fan.Subscribe(cfg.OnStep)
		}
		fan.Subscribe(func(sm StepMetrics) { b.onStep(i, sm) })
		opts.OnStep = fan.Emit
	}
	res, err := core.Build(ctx, job.Graph, p, opts)
	if err != nil {
		return fail(err)
	}
	return BuildOutcome{Result: res}
}

// BuildBatch builds all jobs concurrently on a temporary shared runtime
// (created for the call, released before returning) — the one-shot face
// of BatchBuilder. See BatchBuilder.BuildBatch for semantics.
func BuildBatch(ctx context.Context, jobs []BuildJob, opts BatchOptions) ([]BuildOutcome, error) {
	b := NewBatchBuilder(opts)
	defer b.Close()
	return b.BuildBatch(ctx, jobs)
}

package nearspan_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"nearspan/internal/baseline"
	"nearspan/internal/core"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/params"
)

// testdata/golden_spanners.json records FNV-1a fingerprints of the
// spanners the pre-columnar (map[Edge]bool) implementation produced for
// a matrix of graphs, parameter sets, and algorithms. The columnar data
// plane must reproduce every spanner bit for bit: the stores changed,
// the decisions must not. Regenerate the file only for a change that is
// *supposed* to alter spanner contents, and say so in the commit.

type goldenEntry struct {
	Name  string  `json:"name"`
	Algo  string  `json:"algo"`
	Eps   float64 `json:"eps"`
	Kappa int     `json:"kappa"`
	Rho   float64 `json:"rho"`
	Edges int     `json:"edges"`
	Hash  string  `json:"hash"`
}

// goldenFingerprint hashes the canonical (u, v ascending) edge list —
// the shared graph.Fingerprint, which the build service also reports.
func goldenFingerprint(g *graph.Graph) (int, string) {
	return graph.Fingerprint(g)
}

func goldenGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"gnp-256":     gen.GNP(256, 16.0/256, 256, true),
		"gnp-600":     gen.GNP(600, 20.0/600, 42, true),
		"grid-24x24":  gen.Grid(24, 24),
		"torus-16x16": gen.Torus(16, 16),
		"tree-300":    gen.RandomTree(300, 9),
		"communities": gen.Communities(6, 40, 0.3, 0.01, 5),
		"hypercube-8": gen.Hypercube(8),
	}
}

func TestGoldenSpannersMatchMapImplementation(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden_spanners.json")
	if err != nil {
		t.Fatal(err)
	}
	var entries []goldenEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty golden file")
	}
	graphs := goldenGraphs(t)
	for _, e := range entries {
		g := graphs[e.Name]
		if g == nil {
			t.Fatalf("golden entry for unknown graph %q", e.Name)
		}
		var spanner *graph.Graph
		switch e.Algo {
		case "paper":
			p, err := params.New(e.Eps, e.Kappa, e.Rho, g.N())
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Build(context.Background(), g, p, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			spanner = res.Spanner
		case "en17":
			p, err := baseline.NewEN17Params(e.Eps, e.Kappa, e.Rho, g.N())
			if err != nil {
				t.Fatal(err)
			}
			res, err := baseline.BuildEN17(g, p, 7)
			if err != nil {
				t.Fatal(err)
			}
			spanner = res.Spanner
		case "ep01":
			p, err := baseline.NewEP01Params(e.Eps, e.Kappa, e.Rho, g.N())
			if err != nil {
				t.Fatal(err)
			}
			res, err := baseline.BuildEP01(g, p)
			if err != nil {
				t.Fatal(err)
			}
			spanner = res.Spanner
		case "baswana-sen":
			h, err := baseline.BuildBaswanaSen(g, e.Kappa, 11)
			if err != nil {
				t.Fatal(err)
			}
			spanner = h
		default:
			t.Fatalf("golden entry with unknown algo %q", e.Algo)
		}
		m, hash := goldenFingerprint(spanner)
		if m != e.Edges || hash != e.Hash {
			t.Errorf("%s/%s eps=%.4f kappa=%d rho=%.2f: spanner drifted from the map implementation: got (m=%d, %s), golden (m=%d, %s)",
				e.Name, e.Algo, e.Eps, e.Kappa, e.Rho, m, hash, e.Edges, e.Hash)
		}
	}
}

package nearspan_test

import (
	"context"
	"fmt"

	"nearspan"
)

// ExampleBuildSpanner mirrors the package quick start: build a
// (1+ε', β)-spanner of a grid and report how much of the graph was kept.
// The construction is deterministic, so the output is exact.
func ExampleBuildSpanner() {
	g := nearspan.Grid(32, 32)
	res, err := nearspan.BuildSpanner(g, nearspan.Config{
		Eps: 0.5, Kappa: 4, Rho: 0.45,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.EdgeCount(), "of", g.M(), "edges kept")
	// Output:
	// 1984 of 1984 edges kept
}

// ExampleBuildSpanner_distributed runs the same construction as an
// actual CONGEST protocol on the parallel sharded engine and reports the
// measured round count — the paper's "running time". Every engine
// produces the identical spanner and round count.
func ExampleBuildSpanner_distributed() {
	g := nearspan.GNP(300, 0.05, 41, true)
	res, err := nearspan.BuildSpanner(g, nearspan.Config{
		Eps: 1.0 / 3, Kappa: 3, Rho: 0.49,
		Mode:   nearspan.DistributedMode,
		Engine: nearspan.EngineParallel,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("sparsified:", res.EdgeCount() < g.M())
	fmt.Println("rounds measured:", res.TotalRounds > 0)
	// Output:
	// sparsified: true
	// rounds measured: true
}

// ExampleBuildBatch builds spanners for several workloads concurrently
// on one shared execution runtime: the builds multiplex onto a single
// bounded worker pool instead of stacking one pool per build, and the
// outcomes are bit-identical to building each graph alone. Cancellation
// (context deadline or SIGINT plumbing) aborts in-flight builds at a
// simulated round boundary.
func ExampleBuildBatch() {
	cfg := nearspan.Config{
		Eps: 0.5, Kappa: 4, Rho: 0.45,
		Mode:   nearspan.DistributedMode,
		Engine: nearspan.EngineParallel,
	}
	jobs := []nearspan.BuildJob{
		{Name: "grid", Graph: nearspan.Grid(16, 16), Config: cfg},
		{Name: "torus", Graph: nearspan.Torus(12, 12), Config: cfg},
		{Name: "hypercube", Graph: nearspan.Hypercube(7), Config: cfg},
	}
	outs, err := nearspan.BuildBatch(context.Background(), jobs, nearspan.BatchOptions{})
	if err != nil {
		panic(err)
	}
	for i, out := range outs {
		if out.Err != nil {
			panic(out.Err)
		}
		fmt.Printf("%s: %d of %d edges, %d rounds\n",
			jobs[i].Name, out.Result.EdgeCount(), jobs[i].Graph.M(), out.Result.TotalRounds)
	}
	// Output:
	// grid: 283 of 480 edges, 4082 rounds
	// torus: 147 of 288 edges, 3320 rounds
	// hypercube: 130 of 448 edges, 3099 rounds
}

// ExampleVerifyStretch checks the spanner's (1+ε', β) guarantee exactly,
// over all connected vertex pairs.
func ExampleVerifyStretch() {
	g := nearspan.GNP(200, 0.06, 7, true)
	res, err := nearspan.BuildSpanner(g, nearspan.Config{
		Eps: 1.0 / 3, Kappa: 3, Rho: 0.49,
	})
	if err != nil {
		panic(err)
	}
	rep := nearspan.VerifyStretch(g, res.Spanner,
		1+res.Params.EpsPrime(), res.Params.BetaInt())
	fmt.Println("stretch ok:", rep.OK())
	fmt.Println("subgraph:", nearspan.IsSubgraph(res.Spanner, g))
	// Output:
	// stretch ok: true
	// subgraph: true
}

// ExampleNewDistanceOracle preprocesses a graph into an approximate
// distance oracle: queries traverse the sparse spanner instead of the
// graph, and every answer carries the (1+ε', β) guarantee.
func ExampleNewDistanceOracle() {
	g := nearspan.Torus(16, 16)
	o, err := nearspan.NewDistanceOracle(g, nearspan.OracleOptions{
		Eps: 0.5, Kappa: 4, Rho: 0.45,
	})
	if err != nil {
		panic(err)
	}
	exact := g.Distance(0, 136)
	approx := o.Dist(0, 136)
	fmt.Println("exact:", exact)
	fmt.Println("approx within guarantee:", approx >= exact)
	// Output:
	// exact: 16
	// approx within guarantee: true
}

package nearspan_test

import (
	"testing"

	"nearspan"
)

func TestQuickstartFlow(t *testing.T) {
	g := nearspan.Grid(12, 12)
	res, err := nearspan.BuildSpanner(g, nearspan.Config{Eps: 0.5, Kappa: 4, Rho: 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if !nearspan.IsSubgraph(res.Spanner, g) {
		t.Error("spanner not a subgraph")
	}
	rep := nearspan.VerifyStretch(g, res.Spanner, 1+res.Params.EpsPrime(), res.Params.BetaInt())
	if !rep.OK() {
		t.Errorf("stretch violated: %v", rep)
	}
}

func TestBuildSpannerByTarget(t *testing.T) {
	g := nearspan.GNP(80, 0.1, 5, true)
	res, err := nearspan.BuildSpanner(g, nearspan.Config{TargetEpsPrime: 0.5, Kappa: 4, Rho: 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Params.EpsPrime(); got > 0.5+1e-9 {
		t.Errorf("EpsPrime %v exceeds target", got)
	}
	rep := nearspan.VerifyStretch(g, res.Spanner, 1.5, res.Params.BetaInt())
	if !rep.OK() {
		t.Errorf("target-mode stretch violated: %v", rep)
	}
}

func TestBuildSpannerNeedsEps(t *testing.T) {
	g := nearspan.Path(5)
	if _, err := nearspan.BuildSpanner(g, nearspan.Config{Kappa: 4, Rho: 0.45}); err == nil {
		t.Error("missing eps accepted")
	}
}

func TestDistributedMode(t *testing.T) {
	g := nearspan.Torus(6, 6)
	cfg := nearspan.Config{Eps: 0.5, Kappa: 4, Rho: 0.45, Mode: nearspan.DistributedMode}
	res, err := nearspan.BuildSpanner(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRounds <= 0 || res.Messages <= 0 {
		t.Errorf("distributed run reported rounds=%d messages=%d", res.TotalRounds, res.Messages)
	}
	cen, err := nearspan.BuildSpanner(g, nearspan.Config{Eps: 0.5, Kappa: 4, Rho: 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if cen.EdgeCount() != res.EdgeCount() {
		t.Errorf("modes disagree: %d vs %d edges", cen.EdgeCount(), res.EdgeCount())
	}
}

func TestBaselinesViaPublicAPI(t *testing.T) {
	g := nearspan.Communities(3, 20, 0.4, 0.02, 11)
	en, err := nearspan.BuildEN17(g, 0.5, 4, 0.45, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !nearspan.IsSubgraph(en.Spanner, g) {
		t.Error("EN17 not a subgraph")
	}
	ep, err := nearspan.BuildEP01(g, 0.5, 4, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if !nearspan.IsSubgraph(ep.Spanner, g) {
		t.Error("EP01 not a subgraph")
	}
	bs, err := nearspan.BuildBaswanaSen(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep := nearspan.VerifyStretch(g, bs, 5, 0); !rep.OK() {
		t.Errorf("BS stretch: %v", rep)
	}
	gr, err := nearspan.BuildGreedy(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep := nearspan.VerifyStretch(g, gr, 5, 0); !rep.OK() {
		t.Errorf("greedy stretch: %v", rep)
	}
}

func TestParamsInspection(t *testing.T) {
	p, err := nearspan.NewParams(0.05, 4, 0.45, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.L < 1 || len(p.Deg) != p.L+1 || len(p.Delta) != p.L+1 {
		t.Errorf("schedule malformed: %v", p)
	}
}

func TestSampledVerification(t *testing.T) {
	g := nearspan.GNP(150, 0.05, 9, true)
	res, err := nearspan.BuildSpanner(g, nearspan.Config{Eps: 0.5, Kappa: 4, Rho: 0.45})
	if err != nil {
		t.Fatal(err)
	}
	rep := nearspan.VerifyStretchSampled(g, res.Spanner,
		1+res.Params.EpsPrime(), res.Params.BetaInt(), 20, 7)
	if !rep.OK() {
		t.Errorf("sampled stretch violated: %v", rep)
	}
}

package nearspan

import "testing"

// The engine-resolution contract of the GoroutineEngine → Engine
// migration. This is deliberately white-box: every engine produces the
// identical spanner and round count by design, so no output-based test
// can distinguish a broken alias from a working one.
func TestConfigEngineResolution(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want Engine
	}{
		{"zero value", Config{}, EngineSequential},
		{"deprecated alias honored", Config{GoroutineEngine: true}, EngineGoroutine},
		{"enum selected", Config{Engine: EngineParallel}, EngineParallel},
		{"enum wins over alias", Config{Engine: EngineParallel, GoroutineEngine: true}, EngineParallel},
		{"explicit sequential wins over alias", Config{Engine: EngineSequential, GoroutineEngine: true}, EngineSequential},
	}
	for _, c := range cases {
		if got := c.cfg.engine(); got != c.want {
			t.Errorf("%s: engine() = %v, want %v", c.name, got, c.want)
		}
	}
}

package nearspan_test

import (
	"context"
	"testing"

	"nearspan"
	"nearspan/internal/core"
	"nearspan/internal/edgeset"
	"nearspan/internal/experiments"
	"nearspan/internal/gen"
	"nearspan/internal/params"
)

// Alloc-regression guards: pin allocation budgets for the columnar data
// plane's hot operations so a future change that quietly reintroduces
// per-edge boxing or map churn fails CI (the non-race job; the race
// detector changes allocation counts, so the guards skip under it).
// Budgets are ~1.5x the measured values — tight enough to catch a
// regression to the map plane (an order of magnitude above), loose
// enough to survive runtime version noise.

// Set.Add averages well under one allocation per edge (tail growth plus
// occasional run merges, amortized by the logarithmic method).
func TestAllocBudgetSetAdd(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	stream := experiments.AssemblyWorkload(5000, 40_000)
	avg := testing.AllocsPerRun(10, func() {
		s := edgeset.NewSet(5000)
		for _, e := range stream {
			s.Add(int(e[0]), int(e[1]))
		}
	})
	perAdd := avg / float64(len(stream))
	if perAdd > 0.6 {
		t.Errorf("Set.Add allocates %.3f allocs/edge (budget 0.6) — %v allocs for %d edges",
			perAdd, avg, len(stream))
	}
}

// Set.Graph emits the CSR in a constant number of allocations once the
// set is compacted: offsets, adjacency, fill cursor, and the iterator
// plumbing — independent of edge count.
func TestAllocBudgetSetGraph(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	s := edgeset.NewSet(5000)
	for _, e := range experiments.AssemblyWorkload(5000, 40_000) {
		s.Add(int(e[0]), int(e[1]))
	}
	s.Graph() // compact once; steady-state emission is what we pin
	avg := testing.AllocsPerRun(20, func() {
		s.Graph()
	})
	if avg > 12 {
		t.Errorf("Set.Graph allocates %v per emission (budget 12)", avg)
	}
}

// The centralized build inner loop (phases over Algorithm 1, merges,
// climbs, assembly) stays within a fixed budget on a reference workload.
// The map-plane implementation sat several times higher.
func TestAllocBudgetCentralizedBuild(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	g := gen.GNP(256, 16.0/256, 256, true)
	p, err := params.New(1.0/3, 3, 0.49, g.N())
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := core.Build(context.Background(), g, p, core.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 30_000
	if avg > budget {
		t.Errorf("centralized Build allocates %v per run (budget %d)", avg, budget)
	}
}

// Streaming generation emits a million-edge GNP in O(1) allocations per
// vertex: the degree pass and fill pass replay the RNG without buffering
// edges, and the CSR is cut in a single allocation per column. A
// regression to per-edge buffering (the Builder path's run directory)
// sits two orders of magnitude above this budget.
func TestAllocBudgetStreamGNP(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	if testing.Short() {
		t.Skip("million-edge generation is not a -short workload")
	}
	const n = 8192
	p := 2 * 1_000_000 / (float64(n) * float64(n-1))
	avg := testing.AllocsPerRun(3, func() {
		g := nearspan.StreamGNP(n, p, 7, true).Graph()
		if g.M() < 900_000 {
			t.Fatalf("stream produced %d edges, want ~1e6", g.M())
		}
	})
	perVertex := avg / n
	if perVertex > 1 {
		t.Errorf("StreamGNP+Graph allocates %.4f allocs/vertex (budget 1) — %v total for n=%d",
			perVertex, avg, n)
	}
}

// A warm point query on the oracle pool is allocation-free: cached
// sources answer with an atomic load plus an array read, and cache
// misses run the bidirectional BFS entirely in the replica's
// preallocated stamped workspace. Budget 2 covers incidental runtime
// noise; the pre-pool oracle sat far above it (map lookups, per-query
// level slices).
func TestAllocBudgetOracleWarmPointQuery(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	g := gen.GNP(600, 0.02, 9, true)
	pool := nearspan.NewOraclePool(g, nearspan.OraclePoolOptions{Replicas: 1, CacheSources: 4})
	pool.Sources(0)     // warm the cache slot for source 0
	pool.Dist(100, 200) // warm the replica's bidi workspace

	hit := testing.AllocsPerRun(200, func() { pool.Dist(0, 599) })
	if hit > 0 {
		t.Errorf("warm cached point query allocates %v per query (budget 0)", hit)
	}
	miss := testing.AllocsPerRun(200, func() { pool.Dist(100, 599) })
	if miss > 2 {
		t.Errorf("warm bidi point query allocates %v per query (budget 2)", miss)
	}
}

// Package rng provides a small, fast, deterministic pseudo-random number
// generator with stable output across Go releases and platforms.
//
// Experiments in this repository must be reproducible bit-for-bit: the same
// seed must generate the same graph and drive the randomized baselines to
// the same decisions on every run. The standard library's math/rand does
// not promise a stable stream across Go versions, so we implement
// SplitMix64 (Steele, Lea, Flood 2014), a well-studied 64-bit generator
// that passes BigCrush and is trivially portable.
package rng

// RNG is a SplitMix64 pseudo-random number generator.
//
// The zero value is a valid generator seeded with 0. RNG is not safe for
// concurrent use; give each goroutine its own generator (e.g. via Split).
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring
// math/rand's contract; callers always pass positive literals or validated
// sizes.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform boolean.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Split returns a new generator whose stream is independent of r's
// subsequent output. Deriving per-component generators via Split keeps
// experiments reproducible even when components consume differing amounts
// of randomness.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

package rng

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestKnownStream(t *testing.T) {
	// Locks the stream for seed 1234567 so that any change to the
	// generator (which would silently change every experiment) fails
	// loudly here.
	r := New(1234567)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("value %d: got %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	if r.Uint64() == r.Uint64() {
		t.Error("zero-value RNG produced identical consecutive values")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, samples = 10, 100000
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[r.Intn(n)]++
	}
	for v, c := range counts {
		// Expected 10000 per bucket; allow 10% slack.
		if c < 9000 || c > 11000 {
			t.Errorf("bucket %d: count %d far from expected %d", v, c, samples/n)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(11)
	child := r.Split()
	// The child stream must not equal the parent's subsequent stream.
	same := true
	for i := 0; i < 16; i++ {
		if r.Uint64() != child.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Error("Split produced a correlated stream")
	}
}

func TestMul64MatchesBits(t *testing.T) {
	f := func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		whi, wlo := bits.Mul64(x, y)
		return hi == whi && lo == wlo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(21)
	trues := 0
	const samples = 100000
	for i := 0; i < samples; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < samples/2-2000 || trues > samples/2+2000 {
		t.Errorf("Bool imbalance: %d/%d true", trues, samples)
	}
}

func TestShuffle(t *testing.T) {
	r := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	for _, v := range orig {
		if !seen[v] {
			t.Fatalf("Shuffle lost element %d: %v", v, xs)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

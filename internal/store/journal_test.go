package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		data, _ := json.Marshal(map[string]any{"seq": i, "blob": fmt.Sprintf("payload-%d", i)})
		recs[i] = Record{
			Type: []string{"accepted", "done", "delta", "failed"}[i%4],
			Job:  fmt.Sprintf("j%06d", i/4+1),
			Time: "2026-08-08T00:00:00Z",
			Data: data,
		}
	}
	return recs
}

func encodeAll(t *testing.T, recs []Record) ([]byte, []int64) {
	t.Helper()
	var buf []byte
	ends := make([]int64, len(recs)) // ends[i] = offset after record i
	for i, rec := range recs {
		var err error
		buf, err = appendFrame(buf, rec)
		if err != nil {
			t.Fatal(err)
		}
		ends[i] = int64(len(buf))
	}
	return buf, ends
}

// recordsBefore returns how many whole frames fit in the first n bytes.
func recordsBefore(ends []int64, n int64) int {
	k := 0
	for k < len(ends) && ends[k] <= n {
		k++
	}
	return k
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(25)
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if s.JournalBytes() == 0 {
		t.Fatal("JournalBytes stayed 0 after appends")
	}
	s.Close()

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.TailDamage() != nil {
		t.Fatalf("clean journal reports damage: %v", s2.TailDamage())
	}
	got := s2.Recovered()
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replay mismatch: got %d records, want %d (or contents differ)", len(got), len(recs))
	}
	// The reopened store keeps appending where the journal left off.
	if err := s2.Append(Record{Type: "done", Job: "late"}); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if n := len(s3.Recovered()); n != len(recs)+1 {
		t.Fatalf("after reopened append: %d records, want %d", n, len(recs)+1)
	}
}

// Every truncation point: the reader must recover exactly the records
// whose frames completed before the cut, report damage for a mid-frame
// cut, and never panic.
func TestJournalEveryTruncationPoint(t *testing.T) {
	recs := testRecords(8)
	full, ends := encodeAll(t, recs)
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		got, intact, damage := DecodeJournal(bytes.NewReader(full[:cut]))
		want := recordsBefore(ends, cut)
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), want)
		}
		wantIntact := int64(0)
		if want > 0 {
			wantIntact = ends[want-1]
		}
		if intact != wantIntact {
			t.Fatalf("cut %d: intact offset %d, want %d", cut, intact, wantIntact)
		}
		midFrame := cut != wantIntact
		if midFrame && damage == nil {
			t.Fatalf("cut %d: mid-frame truncation reported no damage", cut)
		}
		if !midFrame && damage != nil {
			t.Fatalf("cut %d: clean boundary reported damage: %v", cut, damage)
		}
	}
}

// Every single-bit flip: the reader recovers at least every record
// before the flipped frame, never panics, and never reports records
// past the first damage it detects out of order.
func TestJournalBitFlips(t *testing.T) {
	recs := testRecords(6)
	full, ends := encodeAll(t, recs)
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		i := rnd.Intn(len(full))
		corrupt := append([]byte(nil), full...)
		corrupt[i] ^= 1 << rnd.Intn(8)
		got, _, _ := DecodeJournal(bytes.NewReader(corrupt))
		// The flip lives in the frame that starts at the largest end
		// boundary <= i; every record before that frame must survive.
		mustHave := recordsBefore(ends, int64(i))
		if len(got) < mustHave {
			t.Fatalf("flip at byte %d lost record(s) before the damage: recovered %d, want >= %d",
				i, len(got), mustHave)
		}
		for k := 0; k < mustHave; k++ {
			if !reflect.DeepEqual(got[k], recs[k]) {
				t.Fatalf("flip at byte %d corrupted recovered record %d", i, k)
			}
		}
	}
}

// Interleaved damage: a torn tail appended on top of a bit-flipped
// record must still yield every record before the earlier damage.
func TestJournalTornTailAfterBitFlip(t *testing.T) {
	recs := testRecords(10)
	full, ends := encodeAll(t, recs)
	rnd := rand.New(rand.NewSource(23))
	for trial := 0; trial < 500; trial++ {
		flipAt := rnd.Intn(len(full))
		cut := flipAt + rnd.Intn(len(full)-flipAt) + 1
		corrupt := append([]byte(nil), full[:cut]...)
		corrupt[flipAt] ^= 1 << rnd.Intn(8)
		got, intact, _ := DecodeJournal(bytes.NewReader(corrupt))
		mustHave := recordsBefore(ends, int64(flipAt))
		if len(got) < mustHave {
			t.Fatalf("flip@%d cut@%d: recovered %d, want >= %d", flipAt, cut, len(got), mustHave)
		}
		if intact > int64(cut) {
			t.Fatalf("flip@%d cut@%d: intact offset %d beyond the input", flipAt, cut, intact)
		}
	}
}

// A torn write (disk fills mid-frame) leaves a journal the next Open
// truncates back to the last intact record and appends over.
func TestJournalTornWriteRecovery(t *testing.T) {
	recs := testRecords(5)
	oneFrame, err := appendFrame(nil, recs[0])
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(oneFrame)
	// Budget: three whole frames plus half of the fourth.
	budget := 3*frameLen + frameLen/2
	dir := t.TempDir()
	injected := errors.New("disk full")
	s, err := Open(Options{Dir: dir, WrapWriter: func(kind, name string, w io.Writer) io.Writer {
		if kind != "journal" {
			return w
		}
		return NewTearWriter(w, budget, injected)
	}})
	if err != nil {
		t.Fatal(err)
	}
	var appendErr error
	appended := 0
	for _, rec := range recs {
		if appendErr = s.Append(rec); appendErr != nil {
			break
		}
		appended++
	}
	if appendErr == nil || !errors.Is(appendErr, injected) {
		t.Fatalf("tear writer never failed an append (got %v after %d)", appendErr, appended)
	}
	if appended != 3 {
		t.Fatalf("appended %d records before the tear, want 3", appended)
	}
	// The store is now read-only, stickily.
	if err := s.Append(recs[4]); err == nil {
		t.Fatal("degraded store accepted an append")
	}
	if s.ReadOnly() == nil {
		t.Fatal("ReadOnly() nil after a failed append")
	}
	s.Close()

	// The torn half-frame is on disk; reopening recovers the intact
	// prefix, truncates the tear, and appends cleanly.
	fi, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= int64(3*frameLen) {
		t.Fatalf("expected a torn partial frame on disk, journal is %d bytes", fi.Size())
	}
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.TailDamage() == nil {
		t.Fatal("reopen after torn write reports no tail damage")
	}
	if got := s2.Recovered(); len(got) != 3 || !reflect.DeepEqual(got, recs[:3]) {
		t.Fatalf("recovered %d records after tear, want the 3 intact ones", len(got))
	}
	if err := s2.Append(recs[3]); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Recovered(); len(got) != 4 || s3.TailDamage() != nil {
		t.Fatalf("post-recovery journal: %d records, damage %v", len(got), s3.TailDamage())
	}
}

// FuzzJournalReader feeds arbitrary bytes to the frame reader: it must
// never panic, and whatever it decodes must re-encode to a journal that
// replays identically (the reader's output is always a valid history).
func FuzzJournalReader(f *testing.F) {
	full, _ := encodeAllF(f, testRecords(4))
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add([]byte{})
	f.Add([]byte("\xff\xff\xff\x7f garbage that is not a frame"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, intact, _ := DecodeJournal(bytes.NewReader(data))
		if intact < 0 || intact > int64(len(data)) {
			t.Fatalf("intact offset %d outside input of %d bytes", intact, len(data))
		}
		var reenc []byte
		var err error
		for _, rec := range recs {
			if reenc, err = appendFrame(reenc, rec); err != nil {
				t.Fatalf("decoded record fails to re-encode: %v", err)
			}
		}
		recs2, _, damage := DecodeJournal(bytes.NewReader(reenc))
		if damage != nil {
			t.Fatalf("re-encoded journal reports damage: %v", damage)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("re-encoded journal replays %d records, want %d", len(recs2), len(recs))
		}
	})
}

func encodeAllF(f *testing.F, recs []Record) ([]byte, []int64) {
	var buf []byte
	ends := make([]int64, len(recs))
	for i, rec := range recs {
		var err error
		buf, err = appendFrame(buf, rec)
		if err != nil {
			f.Fatal(err)
		}
		ends[i] = int64(len(buf))
	}
	return buf, ends
}

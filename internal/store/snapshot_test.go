package store

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"nearspan/internal/graph"
)

func snapTestGraph(t *testing.T, seed int64, n int) *graph.Graph {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(rnd.Intn(i), i) // random tree keeps it connected
	}
	for i := 0; i < 3*n; i++ {
		u, v := rnd.Intn(n), rnd.Intn(n)
		if u != v && !b.HasEdge(u, v) {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func TestSnapshotRoundTrip(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := snapTestGraph(t, 3, 120)
	_, fp := graph.Fingerprint(g)
	if err := s.WriteSnapshot("j000001", fp, g); err != nil {
		t.Fatal(err)
	}
	g2, err := s.LoadSnapshot("j000001", fp)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("loaded (n=%d m=%d), want (n=%d m=%d)", g2.N(), g2.M(), g.N(), g.M())
	}
	if _, fp2 := graph.Fingerprint(g2); fp2 != fp {
		t.Fatalf("loaded fingerprint %s, want %s", fp2, fp)
	}

	// Overwrite with a new state: the replace is atomic and the loaded
	// snapshot tracks the latest write.
	g3 := snapTestGraph(t, 4, 120)
	_, fp3 := graph.Fingerprint(g3)
	if err := s.WriteSnapshot("j000001", fp3, g3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSnapshot("j000001", fp); err == nil {
		t.Fatal("stale fingerprint expectation loaded without error")
	}
	if _, err := s.LoadSnapshot("j000001", fp3); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRejectsWrongExpectation(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := snapTestGraph(t, 5, 60)
	_, fp := graph.Fingerprint(g)
	if err := s.WriteSnapshot("j000002", fp, g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSnapshot("j000002", "0000000000000000"); err == nil {
		t.Fatal("mismatched fingerprint loaded without error")
	}
	if _, err := s.LoadSnapshot("j000009", fp); err == nil {
		t.Fatal("missing snapshot loaded without error")
	}
}

// Every single-byte corruption of a snapshot must fail verification:
// the CRC spans the whole file, so any flip is caught (a flip inside
// the trailing CRC itself breaks the match just the same).
func TestSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := snapTestGraph(t, 6, 40)
	_, fp := graph.Fingerprint(g)
	if err := s.WriteSnapshot("j000003", fp, g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "snapshots", "j000003.snap")
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		corrupt := append([]byte(nil), orig...)
		corrupt[rnd.Intn(len(corrupt))] ^= 1 << rnd.Intn(8)
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.LoadSnapshot("j000003", fp); err == nil {
			t.Fatalf("single-byte corruption (trial %d) loaded without error", trial)
		}
	}
	// Truncations fail too.
	for _, cut := range []int{0, 1, 7, 8, 11, len(orig) / 2, len(orig) - 1} {
		if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.LoadSnapshot("j000003", fp); err == nil {
			t.Fatalf("truncation at %d loaded without error", cut)
		}
	}
}

// A torn snapshot write never replaces the previous snapshot: the temp
// file is discarded, the old snapshot still loads, and the store
// degrades to read-only.
func TestSnapshotTornWriteKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	injected := errors.New("device gone")
	tearNext := false
	s, err := Open(Options{Dir: dir, WrapWriter: func(kind, name string, w io.Writer) io.Writer {
		if kind == "snapshot" && tearNext {
			return NewTearWriter(w, 64, injected)
		}
		return w
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := snapTestGraph(t, 7, 80)
	_, fp := graph.Fingerprint(g)
	if err := s.WriteSnapshot("j000004", fp, g); err != nil {
		t.Fatal(err)
	}

	tearNext = true
	g2 := snapTestGraph(t, 8, 80)
	_, fp2 := graph.Fingerprint(g2)
	if err := s.WriteSnapshot("j000004", fp2, g2); !errors.Is(err, injected) {
		t.Fatalf("torn snapshot write returned %v, want the injected error", err)
	}
	if s.ReadOnly() == nil {
		t.Fatal("store not degraded after snapshot write failure")
	}
	// Atomicity: the old snapshot is intact, no temp file lingers.
	if _, err := s.LoadSnapshot("j000004", fp); err != nil {
		t.Fatalf("previous snapshot lost after torn write: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshots", "j000004.snap.tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// Degraded store refuses further snapshot writes and appends.
	if err := s.WriteSnapshot("j000005", fp, g); err == nil {
		t.Fatal("degraded store wrote a snapshot")
	}
	if err := s.Append(Record{Type: "done"}); err == nil {
		t.Fatal("degraded store accepted an append")
	}
}

func TestSnapshotFsyncNever(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := snapTestGraph(t, 10, 50)
	_, fp := graph.Fingerprint(g)
	if err := s.WriteSnapshot("j000006", fp, g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSnapshot("j000006", fp); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Type: "accepted", Job: "j000006"}); err != nil {
		t.Fatal(err)
	}
}

func TestParseFsync(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{"always": FsyncAlways, "": FsyncAlways, "never": FsyncNever} {
		got, err := ParseFsync(in)
		if err != nil || got != want {
			t.Errorf("ParseFsync(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Error("ParseFsync accepted an unknown policy")
	}
}

// Package store is spannerd's durability layer: an append-only,
// length-framed, CRC32-checksummed job journal plus atomic per-job
// spanner snapshots, both under one data directory.
//
// The design leans on the construction's determinism: the journal
// records only job *inputs* (accepted specs, applied edge-delta
// batches) and terminal outcomes, because the Elkin–Matar pipeline
// rebuilds any spanner bit-identically from its inputs. Snapshots are
// therefore a cache, not the source of truth — a corrupt or missing
// snapshot costs a deterministic rebuild, never a lost result.
//
// Failure model: a crash may tear the journal's final record (the
// reader stops at the first damaged frame and Open truncates it away)
// and may leave a snapshot temp file (ignored; snapshots become visible
// only via rename). A persistence write error — disk full, dying device
// — flips the store into a sticky read-only mode: every subsequent
// append fails fast with the original error, and the service layer
// keeps serving in-memory state while shedding new durable work.
package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// Record is one journal entry. The store treats Data as opaque; the
// service layer defines the per-Type payloads. Time is RFC3339Nano.
type Record struct {
	Type string          `json:"type"`
	Job  string          `json:"job,omitempty"`
	Time string          `json:"time,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Journal frame layout: an 8-byte binary header — uint32 LE payload
// length, uint32 LE CRC32 (IEEE) of the payload — then the payload (one
// JSON object), then '\n'. The newline keeps the journal greppable
// (each record is one line of NDJSON after its 8 framing bytes); the
// length lets the reader skip exactly one frame without trusting the
// payload's bytes, and the CRC catches bit rot and torn writes that
// happen to preserve framing.
const frameHeaderLen = 8

// maxFramePayload bounds a single record. The largest legitimate
// payload is an accepted-job record embedding an uploaded edge list
// (the HTTP layer caps bodies at 64 MiB); anything past 128 MiB in a
// length field is corruption, not data.
const maxFramePayload = 128 << 20

// appendFrame encodes one record into its framed wire form.
func appendFrame(dst []byte, rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return dst, fmt.Errorf("store: marshal record: %w", err)
	}
	if len(payload) > maxFramePayload {
		return dst, fmt.Errorf("store: record payload %d bytes exceeds frame limit", len(payload))
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	return append(dst, '\n'), nil
}

// DecodeJournal reads frames from r until EOF or the first damage. It
// returns the records decoded before the damage, the byte offset at
// which the last intact frame ends (the safe truncate-and-append
// point), and a damage description — nil when the journal ended
// cleanly at a frame boundary.
//
// Damage never loses the records before it: a torn tail (partial
// header or payload), a corrupted length, a failed checksum, or
// unparseable payload JSON all stop the scan at the last intact frame.
// DecodeJournal never panics on any input.
func DecodeJournal(r io.Reader) (recs []Record, intact int64, damage error) {
	br := bufio.NewReaderSize(r, 1<<16)
	for {
		var hdr [frameHeaderLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return recs, intact, nil
			}
			return recs, intact, fmt.Errorf("store: torn frame header at offset %d: %w", intact, err)
		}
		l := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if l > maxFramePayload {
			return recs, intact, fmt.Errorf("store: implausible frame length %d at offset %d", l, intact)
		}
		payload := make([]byte, int(l)+1)
		if _, err := io.ReadFull(br, payload); err != nil {
			return recs, intact, fmt.Errorf("store: torn frame payload at offset %d: %w", intact, err)
		}
		if payload[l] != '\n' {
			return recs, intact, fmt.Errorf("store: missing frame terminator at offset %d", intact)
		}
		payload = payload[:l]
		if got := crc32.ChecksumIEEE(payload); got != want {
			return recs, intact, fmt.Errorf("store: checksum mismatch at offset %d: frame says %08x, payload hashes to %08x", intact, want, got)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, intact, fmt.Errorf("store: undecodable record at offset %d: %w", intact, err)
		}
		recs = append(recs, rec)
		intact += frameHeaderLen + int64(l) + 1
	}
}

package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"nearspan/internal/graph"
)

// Snapshot files hold one completed spanner per job:
//
//	magic "NSSNAP01" (8 bytes)
//	uint32 LE header length, then the header JSON
//	the spanner CSR (graph.EncodeBinary)
//	uint32 LE CRC32 (IEEE) of everything above
//
// A snapshot becomes visible only by atomic rename of a fully written
// temp file, so readers never observe a partial snapshot — a crash
// mid-write leaves either the previous snapshot or none. Verification
// at load is two layers: the CRC catches bit rot and truncation, and
// re-fingerprinting the decoded CSR catches a well-formed snapshot
// that belongs to a different state than the journal expects (e.g. a
// crash landed between a snapshot rename and its journal record).

var snapMagic = []byte("NSSNAP01")

// snapHeader is the snapshot's self-description.
type snapHeader struct {
	Job         string `json:"job"`
	Fingerprint string `json:"fingerprint"`
	N           int    `json:"n"`
	M           int    `json:"m"`
}

func (s *Store) snapPath(job string) string {
	return filepath.Join(s.dir, "snapshots", job+".snap")
}

// WriteSnapshot atomically installs the spanner snapshot for job:
// temp file, optional fsync, rename, optional directory fsync. A write
// error degrades the store to read-only (and removes the temp file);
// the previously installed snapshot, if any, is untouched either way.
func (s *Store) WriteSnapshot(job, fingerprint string, g *graph.Graph) error {
	if err := s.ReadOnly(); err != nil {
		return err
	}
	path := s.snapPath(job)
	tmp := path + ".tmp"
	err := s.writeSnapshotFile(tmp, job, fingerprint, g)
	if err == nil {
		if err = os.Rename(tmp, path); err == nil && s.fsync == FsyncAlways {
			err = syncDir(path)
		}
	}
	if err != nil {
		os.Remove(tmp)
		err = fmt.Errorf("store: snapshot %s: %w", job, err)
		s.degrade(err)
		return err
	}
	return nil
}

func (s *Store) writeSnapshotFile(tmp, job, fingerprint string, g *graph.Graph) error {
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(s.wrapWriter("snapshot", tmp, f), 1<<16)
	crc := crc32.NewIEEE()
	w := io.MultiWriter(bw, crc)

	hdr, err := json.Marshal(snapHeader{Job: job, Fingerprint: fingerprint, N: g.N(), M: g.M()})
	if err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(hdr)))
	for _, chunk := range [][]byte{snapMagic, lenBuf[:], hdr} {
		if _, err := w.Write(chunk); err != nil {
			return err
		}
	}
	if err := g.EncodeBinary(w); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(lenBuf[:], crc.Sum32())
	if _, err := bw.Write(lenBuf[:]); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if s.fsync == FsyncAlways {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return f.Close()
}

// LoadSnapshot reads, checksums, decodes, and fingerprint-verifies the
// snapshot for job. wantFingerprint is the journal's expectation; a
// snapshot that decodes cleanly but fingerprints differently is
// rejected like a corrupt one, because it describes some other state.
// Any error means "rebuild from the journaled inputs instead".
func (s *Store) LoadSnapshot(job, wantFingerprint string) (*graph.Graph, error) {
	data, err := os.ReadFile(s.snapPath(job))
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+8 {
		return nil, fmt.Errorf("store: snapshot %s: too short (%d bytes)", job, len(data))
	}
	if !bytes.Equal(data[:len(snapMagic)], snapMagic) {
		return nil, fmt.Errorf("store: snapshot %s: bad magic", job)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("store: snapshot %s: checksum mismatch (file says %08x, content hashes to %08x)", job, sum, got)
	}
	r := bytes.NewReader(body[len(snapMagic):])
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("store: snapshot %s: %w", job, err)
	}
	hdrLen := binary.LittleEndian.Uint32(lenBuf[:])
	if int64(hdrLen) > int64(r.Len()) {
		return nil, fmt.Errorf("store: snapshot %s: header length %d exceeds file", job, hdrLen)
	}
	hdrBytes := make([]byte, hdrLen)
	if _, err := io.ReadFull(r, hdrBytes); err != nil {
		return nil, fmt.Errorf("store: snapshot %s: %w", job, err)
	}
	var hdr snapHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, fmt.Errorf("store: snapshot %s: header: %w", job, err)
	}
	if hdr.Job != job {
		return nil, fmt.Errorf("store: snapshot %s: header names job %q", job, hdr.Job)
	}
	if hdr.Fingerprint != wantFingerprint {
		return nil, fmt.Errorf("store: snapshot %s: holds fingerprint %s, journal expects %s", job, hdr.Fingerprint, wantFingerprint)
	}
	g, err := graph.DecodeBinary(r)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot %s: %w", job, err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("store: snapshot %s: %d trailing bytes", job, r.Len())
	}
	if m, fp := graph.Fingerprint(g); fp != wantFingerprint || m != hdr.M {
		return nil, fmt.Errorf("store: snapshot %s: decoded spanner fingerprints to (m=%d, %s), journal expects (m=%d, %s)",
			job, m, fp, hdr.M, wantFingerprint)
	}
	return g, nil
}

package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// FsyncPolicy selects when the store forces written bytes to stable
// storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs the journal after every append and snapshots
	// (file and directory) around every rename — a crash loses at most
	// the record being written. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncNever leaves flushing to the OS. A crash can lose recent
	// records, but the torn-tail-tolerant reader still recovers every
	// record that reached the disk intact.
	FsyncNever
)

// ParseFsync maps the flag spelling to a policy.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always|never)", s)
}

// Options configure Open.
type Options struct {
	// Dir is the data directory; created if absent. The journal lives
	// at Dir/journal.nsj, snapshots under Dir/snapshots/.
	Dir string
	// Fsync is the durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// WrapWriter, when set (fault-injection tests), wraps every file
	// writer the store opens — journal appends (kind "journal") and
	// snapshot temp files (kind "snapshot") — so tests can fail or tear
	// writes at a chosen byte. Sync and rename still act on the
	// underlying file.
	WrapWriter func(kind, name string, w io.Writer) io.Writer
}

// Store is the durability layer: one open journal plus the snapshot
// directory. Safe for concurrent use. A write error flips it into a
// sticky read-only mode (see ReadOnly).
type Store struct {
	dir   string
	fsync FsyncPolicy
	wrap  func(kind, name string, w io.Writer) io.Writer

	mu     sync.Mutex // serializes journal appends
	jf     *os.File
	jw     io.Writer
	jbytes atomic.Int64

	roMu  sync.Mutex
	roErr error

	recovered []Record
	damage    error
}

const journalName = "journal.nsj"

// Open creates or opens the data directory, replays the existing
// journal (tolerating a damaged tail, which it truncates away so
// appends continue from the last intact record), and positions the
// store for appending. The replayed records are available via
// Recovered; any tail damage found is reported by TailDamage.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: empty data directory")
	}
	if err := os.MkdirAll(filepath.Join(opts.Dir, "snapshots"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	jf, err := os.OpenFile(filepath.Join(opts.Dir, journalName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	recs, intact, damage := DecodeJournal(jf)
	if fi, err := jf.Stat(); err == nil && fi.Size() > intact {
		// Damaged or torn tail: cut the journal back to the last intact
		// frame so the next append starts a clean record.
		if err := jf.Truncate(intact); err != nil {
			jf.Close()
			return nil, fmt.Errorf("store: truncate damaged tail: %w", err)
		}
	}
	if _, err := jf.Seek(intact, io.SeekStart); err != nil {
		jf.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:       opts.Dir,
		fsync:     opts.Fsync,
		wrap:      opts.WrapWriter,
		jf:        jf,
		recovered: recs,
		damage:    damage,
	}
	s.jw = s.wrapWriter("journal", journalName, jf)
	s.jbytes.Store(intact)
	return s, nil
}

func (s *Store) wrapWriter(kind, name string, w io.Writer) io.Writer {
	if s.wrap == nil {
		return w
	}
	return s.wrap(kind, name, w)
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Recovered returns the records replayed at Open, in journal order.
// The slice is read-only.
func (s *Store) Recovered() []Record { return s.recovered }

// TailDamage describes the journal damage found and truncated at Open,
// or nil when the journal ended cleanly.
func (s *Store) TailDamage() error { return s.damage }

// JournalBytes returns the journal's current size.
func (s *Store) JournalBytes() int64 { return s.jbytes.Load() }

// ReadOnly returns the write error that degraded the store, or nil
// while it accepts appends. Once degraded the store stays degraded:
// the journal on disk is a clean prefix of the intended history, and
// appending past a failed write would risk interleaving torn frames.
func (s *Store) ReadOnly() error {
	s.roMu.Lock()
	defer s.roMu.Unlock()
	return s.roErr
}

func (s *Store) degrade(err error) {
	s.roMu.Lock()
	if s.roErr == nil {
		s.roErr = err
	}
	s.roMu.Unlock()
}

// Append journals one record: a single framed write, synced under
// FsyncAlways. A write error degrades the store to read-only and is
// returned; the on-disk tail it may have torn is exactly what the
// reader tolerates.
func (s *Store) Append(rec Record) error {
	if err := s.ReadOnly(); err != nil {
		return err
	}
	frame, err := appendFrame(nil, rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ReadOnly(); err != nil {
		return err
	}
	if _, err := s.jw.Write(frame); err != nil {
		err = fmt.Errorf("store: journal append: %w", err)
		s.degrade(err)
		return err
	}
	if s.fsync == FsyncAlways {
		if err := s.jf.Sync(); err != nil {
			err = fmt.Errorf("store: journal sync: %w", err)
			s.degrade(err)
			return err
		}
	}
	s.jbytes.Add(int64(len(frame)))
	return nil
}

// Close releases the journal file handle. It does not sync; callers
// that need durability use FsyncAlways or crash-tolerate the tail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jf.Close()
}

// syncDir fsyncs the directory containing path, making a completed
// rename durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// TearWriter is the fault-injection writer: it passes writes through
// until budget bytes have been written, then fails every write (the
// write that crosses the budget is torn — its prefix reaches the
// underlying writer, the rest does not). Tests wrap journal or
// snapshot writers with it to simulate a disk filling up mid-record.
type TearWriter struct {
	W      io.Writer
	Budget int
	Err    error
}

// NewTearWriter tears writes at the nth byte, failing with err (or a
// default) from then on.
func NewTearWriter(w io.Writer, n int, err error) *TearWriter {
	if err == nil {
		err = errors.New("injected write failure")
	}
	return &TearWriter{W: w, Budget: n, Err: err}
}

func (t *TearWriter) Write(p []byte) (int, error) {
	if t.Budget <= 0 {
		return 0, t.Err
	}
	if len(p) <= t.Budget {
		n, err := t.W.Write(p)
		t.Budget -= n
		return n, err
	}
	n, err := t.W.Write(p[:t.Budget])
	t.Budget -= n
	if err != nil {
		return n, err
	}
	return n, t.Err
}

// Package verify checks spanner guarantees against ground truth: the
// subgraph property, the (α, β) stretch bound, and distance-error
// statistics. Exact verification runs n BFS pairs on both graphs;
// sampled verification bounds the cost on large instances.
package verify

import (
	"fmt"
	"math"

	"nearspan/internal/graph"
	"nearspan/internal/rng"
)

// StretchReport summarizes a stretch measurement of a spanner h against
// its base graph g under a claimed bound d_h <= alpha*d_g + beta.
type StretchReport struct {
	Alpha float64
	Beta  int32

	Pairs      int64 // ordered pairs measured (u < v, connected in g)
	Violations int64 // pairs with d_h > alpha*d_g + beta

	// WorstAdditive is max over pairs of d_h - d_g (the measured purely
	// additive error), with a witnessing pair.
	WorstAdditive     int32
	WorstAdditivePair [2]int

	// WorstRatio is max over pairs with d_g > 0 of d_h / d_g (the
	// measured purely multiplicative stretch), with a witnessing pair.
	WorstRatio     float64
	WorstRatioPair [2]int

	// WorstSlack is max over pairs of d_h - (alpha*d_g) — the additive
	// term needed for the claimed alpha; <= Beta iff no violations.
	WorstSlack float64

	// MeanRatio is the average of d_h/d_g over pairs with d_g > 0.
	MeanRatio float64
}

// OK reports whether the claimed bound held on every measured pair.
func (r StretchReport) OK() bool { return r.Violations == 0 }

func (r StretchReport) String() string {
	return fmt.Sprintf("pairs=%d violations=%d worst_add=%d worst_ratio=%.3f worst_slack=%.1f mean_ratio=%.4f",
		r.Pairs, r.Violations, r.WorstAdditive, r.WorstRatio, r.WorstSlack, r.MeanRatio)
}

// Subgraph reports whether h is a subgraph of g on the same vertex set.
func Subgraph(h, g *graph.Graph) bool { return graph.Subgraph(h, g) }

// Stretch measures the (alpha, beta) bound exactly, over all connected
// pairs, via one BFS per vertex on both graphs.
func Stretch(g, h *graph.Graph, alpha float64, beta int32) StretchReport {
	sources := make([]int, g.N())
	for v := range sources {
		sources[v] = v
	}
	return stretchFrom(g, h, alpha, beta, sources, true)
}

// StretchSampled measures the bound from `samples` BFS source vertices
// chosen deterministically from seed. Each source still checks its
// distance to every vertex, so coverage is samples*n pairs.
func StretchSampled(g, h *graph.Graph, alpha float64, beta int32, samples int, seed uint64) StretchReport {
	if samples >= g.N() {
		return Stretch(g, h, alpha, beta)
	}
	r := rng.New(seed)
	perm := r.Perm(g.N())
	return stretchFrom(g, h, alpha, beta, perm[:samples], false)
}

func stretchFrom(g, h *graph.Graph, alpha float64, beta int32, sources []int, halfPairs bool) StretchReport {
	rep := StretchReport{Alpha: alpha, Beta: beta, WorstRatio: 1}
	var ratioSum float64
	var ratioCount int64
	for _, u := range sources {
		dg := g.BFS(u)
		dh := h.BFS(u)
		for v := 0; v < g.N(); v++ {
			if v == u || dg[v] == graph.Infinity {
				continue
			}
			if halfPairs && v < u {
				continue
			}
			rep.Pairs++
			dgv, dhv := dg[v], dh[v]
			if dhv == graph.Infinity {
				// Disconnected in h: infinite violation.
				rep.Violations++
				rep.WorstAdditive = graph.Infinity
				rep.WorstAdditivePair = [2]int{u, v}
				rep.WorstSlack = math.Inf(1)
				continue
			}
			add := dhv - dgv
			if add > rep.WorstAdditive {
				rep.WorstAdditive = add
				rep.WorstAdditivePair = [2]int{u, v}
			}
			ratio := float64(dhv) / float64(dgv)
			ratioSum += ratio
			ratioCount++
			if ratio > rep.WorstRatio {
				rep.WorstRatio = ratio
				rep.WorstRatioPair = [2]int{u, v}
			}
			slack := float64(dhv) - alpha*float64(dgv)
			if slack > rep.WorstSlack {
				rep.WorstSlack = slack
			}
			if float64(dhv) > alpha*float64(dgv)+float64(beta)+1e-9 {
				rep.Violations++
			}
		}
	}
	if ratioCount > 0 {
		rep.MeanRatio = ratioSum / float64(ratioCount)
	}
	return rep
}

// SizeReport relates a spanner's edge count to a claimed bound.
type SizeReport struct {
	Edges      int
	GraphEdges int
	Bound      float64 // the claimed bound (without O-constant)
	Ratio      float64 // Edges / Bound
}

// Size evaluates |E_H| against the bound value.
func Size(g, h *graph.Graph, bound float64) SizeReport {
	rep := SizeReport{Edges: h.M(), GraphEdges: g.M(), Bound: bound}
	if bound > 0 {
		rep.Ratio = float64(h.M()) / bound
	}
	return rep
}

package verify

import (
	"testing"

	"nearspan/internal/gen"
	"nearspan/internal/graph"
)

func TestStretchIdenticalGraphs(t *testing.T) {
	g := gen.Grid(5, 5)
	rep := Stretch(g, g, 1, 0)
	if !rep.OK() {
		t.Errorf("identical graphs violate (1,0): %v", rep)
	}
	if rep.WorstAdditive != 0 || rep.WorstRatio != 1 {
		t.Errorf("identical graphs have nonzero error: %v", rep)
	}
	wantPairs := int64(25 * 24 / 2)
	if rep.Pairs != wantPairs {
		t.Errorf("Pairs=%d, want %d", rep.Pairs, wantPairs)
	}
}

func TestStretchDetectsViolation(t *testing.T) {
	// Cycle vs path: removing one cycle edge makes the endpoints'
	// distance n-1 instead of 1.
	g := gen.Cycle(10)
	b := graph.NewBuilder(10)
	for i := 0; i+1 < 10; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	h := b.Build()
	rep := Stretch(g, h, 1, 0)
	if rep.OK() {
		t.Fatal("violation not detected")
	}
	if rep.WorstAdditive != 8 {
		t.Errorf("WorstAdditive=%d, want 8", rep.WorstAdditive)
	}
	if rep.WorstRatio != 9 {
		t.Errorf("WorstRatio=%v, want 9", rep.WorstRatio)
	}
	// The same pair passes with beta = 8.
	rep8 := Stretch(g, h, 1, 8)
	if !rep8.OK() {
		t.Errorf("(1,8) should hold: %v", rep8)
	}
	// Or with alpha = 9.
	rep9 := Stretch(g, h, 9, 0)
	if !rep9.OK() {
		t.Errorf("(9,0) should hold: %v", rep9)
	}
}

func TestStretchDisconnectedSpanner(t *testing.T) {
	g := gen.Path(4)
	h := graph.NewBuilder(4).Build() // no edges
	rep := Stretch(g, h, 100, 100)
	if rep.OK() {
		t.Error("disconnected spanner must violate")
	}
	if rep.WorstAdditive != graph.Infinity {
		t.Errorf("WorstAdditive=%d, want Infinity", rep.WorstAdditive)
	}
}

func TestStretchSampled(t *testing.T) {
	g := gen.GNP(80, 0.1, 3, true)
	rep := StretchSampled(g, g, 1, 0, 10, 42)
	if !rep.OK() {
		t.Errorf("sampled identical check failed: %v", rep)
	}
	if rep.Pairs == 0 || rep.Pairs > int64(10*g.N()) {
		t.Errorf("sampled pair count %d out of range", rep.Pairs)
	}
	// Falls back to exact when samples >= n.
	repAll := StretchSampled(g, g, 1, 0, 100, 42)
	exact := Stretch(g, g, 1, 0)
	if repAll.Pairs != exact.Pairs {
		t.Errorf("fallback mismatch: %d vs %d", repAll.Pairs, exact.Pairs)
	}
}

func TestSubgraph(t *testing.T) {
	g := gen.Grid(4, 4)
	if !Subgraph(g, g) {
		t.Error("graph not subgraph of itself")
	}
	h := gen.Path(16)
	// Path 0-1-2-...-15 is NOT a subgraph of the 4x4 grid (3-4 not an
	// edge there).
	if Subgraph(h, g) {
		t.Error("path misdetected as grid subgraph")
	}
}

func TestSizeReport(t *testing.T) {
	g := gen.Complete(10)
	h := gen.Star(10)
	rep := Size(g, h, 18)
	if rep.Edges != 9 || rep.GraphEdges != 45 {
		t.Errorf("edges wrong: %+v", rep)
	}
	if rep.Ratio != 0.5 {
		t.Errorf("Ratio=%v, want 0.5", rep.Ratio)
	}
}

func TestMeanRatioWithinWorst(t *testing.T) {
	g := gen.Cycle(12)
	b := graph.NewBuilder(12)
	for i := 0; i+1 < 12; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	h := b.Build()
	rep := Stretch(g, h, 1, 100)
	if rep.MeanRatio > rep.WorstRatio || rep.MeanRatio < 1 {
		t.Errorf("MeanRatio=%v outside [1, WorstRatio=%v]", rep.MeanRatio, rep.WorstRatio)
	}
}

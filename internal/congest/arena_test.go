package congest

import (
	"errors"
	"fmt"
	"testing"

	"nearspan/internal/gen"
)

// TestBandwidthCapRejected pins the uint16 counter guard: a bandwidth
// that would wrap the per-slot counters must be rejected at
// construction, not silently truncated at scale.
func TestBandwidthCapRejected(t *testing.T) {
	g := gen.Path(3)
	progs := make([]Program, g.N())
	for v := range progs {
		progs[v] = &fzProg{}
	}
	if _, err := New(g, progs, Options{Bandwidth: MaxBandwidth + 1}); err == nil {
		t.Fatal("New accepted bandwidth 65536, which wraps the uint16 slot counters")
	}
	sim, err := New(g, progs, Options{Bandwidth: MaxBandwidth})
	if err != nil {
		t.Fatalf("New rejected bandwidth %d: %v", MaxBandwidth, err)
	}
	sim.Close()
}

// maxSender sends exactly MaxBandwidth messages on port 0 in round 1 and
// then one more: the counter must sit at its ceiling and the extra send
// must be a bandwidth violation, not a wraparound that re-opens the slot.
type maxSender struct {
	over error
}

func (p *maxSender) Init(env *Env) {}

func (p *maxSender) Round(env *Env, recv []Inbound) {
	if env.ID() != 0 || env.Round() != 1 {
		env.Halt()
		return
	}
	for i := 0; i < MaxBandwidth; i++ {
		if err := env.Send(0, Message{Kind: 1, Words: [MessageWords]int64{int64(i)}}); err != nil {
			p.over = fmt.Errorf("send %d: %w", i, err)
			return
		}
	}
	p.over = env.Send(0, Message{Kind: 1})
	env.Halt()
}

// TestCounterSaturationAtMaxBandwidth is the overflow regression test at
// the counter boundary: 65535 sends on one slot succeed and are all
// delivered; the 65536th is a violation.
func TestCounterSaturationAtMaxBandwidth(t *testing.T) {
	g := gen.Path(2)
	prog := &maxSender{}
	sink := &fzProg{cfg: fzConfig{horizon: 1}}
	sim, err := New(g, []Program{prog, sink}, Options{Bandwidth: MaxBandwidth})
	if err != nil {
		t.Fatal(err)
	}
	err = sim.Run(2)
	if !errors.Is(err, ErrBandwidth) {
		t.Fatalf("Run error = %v, want bandwidth violation from the 65536th send", err)
	}
	if !errors.Is(prog.over, ErrBandwidth) {
		t.Fatalf("overflow send error = %v, want ErrBandwidth", prog.over)
	}
	if got := sim.Metrics().Messages; got != MaxBandwidth {
		t.Fatalf("messages sent = %d, want %d (no wraparound loss)", got, MaxBandwidth)
	}
}

// localSender: only low-ID vertices send, so traffic concentrates in a
// few arena pages of a large slot space.
type localSender struct{ fzProg }

func (p *localSender) Init(env *Env) {
	if env.ID() < 32 && env.Degree() > 0 {
		_ = env.Send(0, Message{Kind: 1})
	} else {
		env.Halt()
	}
}

func (p *localSender) Round(env *Env, recv []Inbound) {
	if env.Round() < 5 && env.ID() < 32 && env.Degree() > 0 {
		_ = env.Send(env.Round()%env.Degree(), Message{Kind: 1, Words: [MessageWords]int64{int64(env.Round())}})
	} else {
		env.Halt()
	}
}

// TestArenaBytesMeasuredAndDeterministic: the arena footprint tracks
// traffic (a sparse protocol on a large graph stays far below the
// worst case), is identical across engines and ArenaFraction settings,
// and ArenaFraction >= 1 reproduces the full worst-case footprint.
func TestArenaBytesMeasuredAndDeterministic(t *testing.T) {
	g := gen.GNP(2048, 6.0/2048, 19, true)
	newProg := func(v int) Program { return &localSender{} }

	var want int64
	for i, opts := range []Options{
		{Engine: EngineSequential, ArenaFraction: -1},
		{Engine: EngineParallel, ArenaFraction: -1},
		{Engine: EngineGoroutine, ArenaFraction: -1},
	} {
		sim, err := NewUniform(g, newProg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunUntilQuiet(50); err != nil {
			t.Fatal(err)
		}
		if got := sim.pageBytes.Load(); got == 0 {
			t.Fatalf("%s: no pages allocated — weak test setup (no unicast traffic)", opts.Engine)
		}
		got := sim.ArenaBytes()
		if wc := sim.ArenaBytesWorstCase(); got >= wc {
			t.Errorf("%s: measured arena %d not below worst case %d on a sparse run",
				opts.Engine, got, wc)
		}
		if i == 0 {
			want = got
		} else if got != want {
			t.Errorf("%s (frac %v): ArenaBytes = %d, want %d (deterministic across engines and fractions)",
				opts.Engine, opts.ArenaFraction, got, want)
		}
		sim.Close()
	}

	// Full preallocation reproduces the legacy fixed footprint.
	sim, err := NewUniform(g, newProg, Options{ArenaFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, wc := sim.ArenaBytes(), sim.ArenaBytesWorstCase(); got != wc {
		t.Errorf("ArenaFraction 1: ArenaBytes = %d, want worst case %d", got, wc)
	}
}

// TestArenaFractionBitIdentical: preallocation policy must not leak into
// the execution.
func TestArenaFractionBitIdentical(t *testing.T) {
	g := gen.GNP(256, 8.0/256, 23, true)
	run := func(frac float64) (Metrics, string, []uint64) {
		sim, err := NewUniform(g, func(v int) Program {
			return &fzProg{cfg: fzConfig{seed: 5, mixed: true}}
		}, Options{Bandwidth: 2, ArenaFraction: frac})
		if err != nil {
			t.Fatal(err)
		}
		// Mixed broadcast/unicast traffic can legitimately violate; the
		// violation (if any) must also be preallocation-independent.
		violation := ""
		if err := sim.Run(10); err != nil {
			violation = err.Error()
		}
		tr := make([]uint64, g.N())
		for v := range tr {
			tr[v] = sim.Program(v).(*fzProg).transcript
		}
		return sim.Metrics(), violation, tr
	}
	wantM, wantV, wantT := run(0)
	for _, frac := range []float64{-1, 0.5, 1} {
		m, viol, tr := run(frac)
		if m != wantM || viol != wantV {
			t.Errorf("frac %v: metrics %+v violation %q, want %+v %q", frac, m, viol, wantM, wantV)
		}
		for v := range tr {
			if tr[v] != wantT[v] {
				t.Fatalf("frac %v: vertex %d transcript %x, want %x", frac, v, tr[v], wantT[v])
			}
		}
	}
}

// broadcastAll floods a broadcast from every vertex each round — the
// phase-0 announcement shape. With compact broadcasts the unicast arena
// should stay untouched: no message pages beyond the preallocation.
type broadcastAll struct{ rounds int }

func (p *broadcastAll) Init(env *Env) { _ = env.Broadcast(Message{Kind: 9}) }

func (p *broadcastAll) Round(env *Env, recv []Inbound) {
	if env.Round() >= p.rounds {
		env.Halt()
		return
	}
	_ = env.Broadcast(Message{Kind: 9, Words: [MessageWords]int64{int64(env.Round())}})
}

// TestBroadcastAllAllocatesNoPages: a pure-broadcast protocol — every
// vertex broadcasting every round — must not allocate a single lazy
// unicast page; its traffic lives in the O(n) compact arenas. This is
// the property that keeps a 10⁷-edge build's arena 4× under the
// worst-case formula even through dense announcement phases.
func TestBroadcastAllAllocatesNoPages(t *testing.T) {
	g := gen.GNP(512, 12.0/512, 31, true)
	sim, err := NewUniform(g, func(v int) Program { return &broadcastAll{rounds: 4} },
		Options{Engine: EngineParallel, ArenaFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := sim.RunUntilQuiet(10)
	if err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Fatal("protocol did not run")
	}
	if got := sim.pageBytes.Load(); got != 0 {
		t.Errorf("broadcast-only protocol allocated %d bytes of unicast pages, want 0", got)
	}
	wantMsgs := int64(0)
	for v := 0; v < g.N(); v++ {
		wantMsgs += int64(g.Degree(v)) * 4 // Init + rounds 1..3 (round 4 halts)
	}
	if m := sim.Metrics(); m.Messages != wantMsgs {
		t.Errorf("messages = %d, want %d (deg messages per broadcast)", m.Messages, wantMsgs)
	}
}

package congest

import (
	"context"
	"errors"
	"strings"
	"testing"

	"nearspan/internal/gen"
)

// chatterProg broadcasts every round and never halts — the stuck
// protocol shape: RunUntilQuiet can never quiesce on it.
type chatterProg struct{ kind uint8 }

func (p *chatterProg) Init(env *Env) { _ = env.Broadcast(Message{Kind: p.kind}) }
func (p *chatterProg) Round(env *Env, recv []Inbound) {
	_ = env.Broadcast(Message{Kind: p.kind})
}

// A pre-cancelled context aborts before Init: zero rounds run and the
// error is exactly ctx.Err().
func TestRunContextPreCancelled(t *testing.T) {
	g := gen.Path(6)
	sim, err := NewUniform(g, newFlood(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sim.RunContext(ctx, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if sim.Round() != 0 {
		t.Errorf("pre-cancelled run executed %d rounds", sim.Round())
	}
	if _, err := sim.RunUntilQuietContext(ctx, 10); !errors.Is(err, context.Canceled) {
		t.Error("RunUntilQuietContext ignored the cancelled context")
	}
}

// Cancellation mid-run lands at a round boundary: the round that
// observes the cancel completes, and not one more runs — on every
// engine, including the shared-runtime parallel one.
func TestRunContextCancelsWithinOneRound(t *testing.T) {
	g := gen.Grid(6, 6)
	for _, eng := range Engines() {
		t.Run(eng.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			const cancelRound = 5
			progs := make([]Program, g.N())
			for v := range progs {
				progs[v] = &cancelerProg{cancel: cancel, at: cancelRound, me: v == 0}
			}
			sim, err := New(g, progs, Options{Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			defer sim.Close()
			err = sim.RunContext(ctx, 100)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext = %v, want context.Canceled", err)
			}
			if got := sim.Round(); got != cancelRound {
				t.Errorf("cancelled at round %d but %d rounds ran — not within one round", cancelRound, got)
			}
			// Determinism after cancellation: the simulator resets cleanly.
			sim.ResetUniform(newFlood(0))
			if _, err := sim.RunUntilQuiet(10 * g.N()); err != nil {
				t.Errorf("simulator unusable after cancelled run: %v", err)
			}
		})
	}
}

// cancelerProg chats every round and cancels the build's context during
// round `at` (only vertex 0 cancels, so the trigger round is exact).
type cancelerProg struct {
	cancel context.CancelFunc
	at     int
	me     bool
}

func (p *cancelerProg) Init(env *Env) { _ = env.Broadcast(Message{Kind: 7}) }
func (p *cancelerProg) Round(env *Env, recv []Inbound) {
	if p.me && env.Round() == p.at {
		p.cancel()
	}
	_ = env.Broadcast(Message{Kind: 7})
}

// An exhausted RunUntilQuiet budget surfaces as a typed
// *ErrBudgetExhausted carrying the pending-kind histogram — the
// stuck-climb diagnosis without a debugger.
func TestRunUntilQuietBudgetExhausted(t *testing.T) {
	g := gen.Grid(4, 4)
	const kind = 9
	sim, err := NewUniform(g, func(v int) Program { return &chatterProg{kind: kind} }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := sim.RunUntilQuiet(3)
	if err == nil {
		t.Fatal("budget exhaustion not reported")
	}
	if rounds != 3 {
		t.Errorf("ran %d rounds, want the full budget 3", rounds)
	}
	var be *ErrBudgetExhausted
	if !errors.As(err, &be) {
		t.Fatalf("error %T is not *ErrBudgetExhausted: %v", err, err)
	}
	if be.MaxRounds != 3 {
		t.Errorf("MaxRounds = %d, want 3", be.MaxRounds)
	}
	// Every vertex broadcast in the final round: 2m messages pending,
	// all of the chatter kind, and every vertex still active.
	if be.Pending != 2*g.M() || be.ByKind[kind] != be.Pending {
		t.Errorf("histogram {total %d, kind %d: %d}, want all %d of kind %d",
			be.Pending, kind, be.ByKind[kind], 2*g.M(), kind)
	}
	if be.Active != g.N() {
		t.Errorf("Active = %d, want %d", be.Active, g.N())
	}
	for _, want := range []string{"budget 3 exhausted", "kind 9"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// A run that quiesces inside its budget still returns nil (the typed
// error fires only on genuine exhaustion).
func TestRunUntilQuietWithinBudgetStillNil(t *testing.T) {
	g := gen.Path(8)
	sim, err := NewUniform(g, newFlood(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunUntilQuiet(10 * g.N()); err != nil {
		t.Fatalf("quiescent run errored: %v", err)
	}
}

// Package congest simulates the synchronous CONGEST model of distributed
// computation (Peleg 2000; paper §1.3.1): one processor per graph vertex,
// communication with graph neighbors in synchronous rounds, and messages
// limited to O(1) words per edge per round.
//
// Three interchangeable engines execute node programs:
//
//   - EngineSequential: a single-threaded round loop — the reference
//     execution.
//   - EngineParallel: vertices partitioned into shards multiplexed onto
//     the shared execution runtime (package sched) each round — uses all
//     cores, the engine for large experiments; any number of concurrent
//     simulators share one bounded worker pool.
//   - EngineGoroutine: one goroutine per vertex with channel-based round
//     barriers — the natural Go rendering of message-passing processors,
//     used to demonstrate and cross-check model fidelity.
//
// All engines are deterministic and produce bit-identical executions for
// the same program (tested pairwise), so round counts measured on any of
// them are the paper's "running time". See parallel.go for the
// determinism argument.
//
// Bandwidth is enforced: a node may send at most Options.Bandwidth
// messages (default 1) of at most MessageWords words over each incident
// edge per round. Violations are reported as errors, never silently
// dropped, so an algorithm that would not be a valid CONGEST algorithm
// cannot produce a result that looks valid.
package congest

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"slices"
	"strings"
	"sync"
	"unsafe"

	"nearspan/internal/graph"
	"nearspan/internal/sched"
)

// MessageWords is the fixed number of payload words in a Message. Three
// words fit every protocol in this repository (e.g. center ID + distance),
// and keeping it a small constant is exactly the CONGEST "O(1) words"
// regime.
const MessageWords = 3

// Message is one CONGEST message: a kind tag plus MessageWords words.
type Message struct {
	Kind  uint8
	Words [MessageWords]int64
}

// Inbound is a received message together with the local port it arrived
// on. Port p of vertex v corresponds to v's p-th neighbor in sorted
// adjacency order (the standard port-numbering model).
type Inbound struct {
	Port int
	Msg  Message
}

// Program is the per-vertex state machine. Each vertex runs its own
// Program instance.
//
// Init is called once before round 1; messages sent from Init are
// delivered in round 1. Round is called once per round r >= 1 with the
// messages sent to this vertex in the previous round (or Init), sorted by
// arrival port. Messages sent during Round(r) are delivered at Round(r+1).
//
// The recv slice is reused between calls: programs must not retain it (or
// its elements by reference) past the return of Round.
type Program interface {
	Init(env *Env)
	Round(env *Env, recv []Inbound)
}

// Engine selects the execution strategy.
type Engine int

const (
	// EngineSequential runs all vertices in a single goroutine.
	EngineSequential Engine = iota + 1
	// EngineGoroutine runs one goroutine per vertex with round barriers.
	EngineGoroutine
	// EngineParallel runs vertex shards on the shared execution runtime
	// (see Options.Runtime), amortizing the per-goroutine overhead that
	// makes EngineGoroutine impractical at scale and letting concurrent
	// simulators share one bounded worker pool.
	EngineParallel
)

func (e Engine) String() string {
	switch e {
	case EngineSequential:
		return "sequential"
	case EngineGoroutine:
		return "goroutine"
	case EngineParallel:
		return "parallel"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Engines lists the available engines in display order.
func Engines() []Engine {
	return []Engine{EngineSequential, EngineParallel, EngineGoroutine}
}

// ParseEngine parses an engine name as printed by Engine.String.
func ParseEngine(name string) (Engine, error) {
	for _, e := range Engines() {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("congest: unknown engine %q (want sequential|parallel|goroutine)", name)
}

// DeliveryOrder controls the order in which a round's messages are
// presented to Program.Round. Correct CONGEST algorithms must not depend
// on arrival order within a round; running the test suite under
// DeliverPortDescending is a cheap adversarial-scheduling check.
type DeliveryOrder int

const (
	// DeliverPortAscending presents messages sorted by arrival port
	// (the default).
	DeliverPortAscending DeliveryOrder = iota
	// DeliverPortDescending presents messages in reverse port order.
	DeliverPortDescending
)

// Options configure a Simulator. The zero value selects the sequential
// engine with bandwidth 1 and ascending delivery.
type Options struct {
	Engine    Engine        // defaults to EngineSequential
	Bandwidth int           // messages per directed edge per round; defaults to 1
	Delivery  DeliveryOrder // defaults to DeliverPortAscending
	// Runtime is the shared execution runtime EngineParallel submits its
	// round batches to; it also hosts the per-runtime simulator counter.
	// Nil selects the process-wide sched.Default(). Supply a private
	// runtime (sched.New) to isolate pool lifecycle or counters — e.g.
	// batch builders that must release every goroutine on Close.
	Runtime *sched.Runtime
	// Workers bounds the per-round shard fan-out of EngineParallel;
	// defaults to the runtime's worker count. Any value produces the
	// identical execution — it only changes scheduling granularity.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Engine == 0 {
		o.Engine = EngineSequential
	}
	if o.Bandwidth <= 0 {
		o.Bandwidth = 1
	}
	if o.Runtime == nil {
		o.Runtime = sched.Default()
	}
	return o
}

// Metrics aggregates execution statistics. Rounds counts executed rounds
// (Init is not a round). Messages counts sent messages.
type Metrics struct {
	Rounds          int
	Messages        int64
	MaxRoundTraffic int64 // most messages sent in any single round
}

// ErrBandwidth is returned (wrapped) when a program exceeds the per-edge
// per-round message budget.
var ErrBandwidth = errors.New("congest: bandwidth exceeded")

// ErrPort is returned (wrapped) when a program sends on an invalid port.
var ErrPort = errors.New("congest: invalid port")

// ErrBudgetExhausted reports that RunUntilQuiet consumed its entire
// round budget without reaching quiescence. It carries the in-flight
// message histogram and the count of still-active vertices, so a stuck
// message-driven protocol (e.g. a path climb that never drains) can be
// diagnosed from the error alone instead of a debugger. Retrieve it with
// errors.As.
type ErrBudgetExhausted struct {
	MaxRounds int           // the exhausted budget
	Pending   int           // messages still in flight
	ByKind    map[uint8]int // pending messages by kind
	Active    int           // vertices that have not halted
}

func (e *ErrBudgetExhausted) Error() string {
	var kinds strings.Builder
	for i, k := range slices.Sorted(maps.Keys(e.ByKind)) {
		if i > 0 {
			kinds.WriteString(" ")
		}
		fmt.Fprintf(&kinds, "kind %d: %d", k, e.ByKind[k])
	}
	return fmt.Sprintf("congest: round budget %d exhausted before quiescence: %d message(s) in flight (%s), %d vertex(es) active",
		e.MaxRounds, e.Pending, kinds.String(), e.Active)
}

// Simulator executes one Program instance per vertex of a graph.
//
// Round execution is frontier-driven: the per-round cost is
// O(frontier + messages), not O(n + m). The simulator maintains a
// dirty-slot list (the directed-edge slots that carry messages) and an
// active list (the vertices that have not halted); each round it derives
// the frontier — active vertices plus the halted destinations of dirty
// slots — and only those vertices run. See docs/ARCHITECTURE.md,
// "Frontier scheduling", for the determinism argument.
type Simulator struct {
	g     *graph.Graph
	opts  Options
	progs []Program
	envs  []Env

	// twin[s] is the directed-edge slot of the reverse edge of slot s,
	// where slot slotBase[v]+p is the edge out of vertex v's port p
	// (each Env carries its vertex's slot base). destV[s] and destPort[s]
	// name the receiving side of slot s: the vertex the slot delivers to
	// and its local port there.
	twin     []int32
	destV    []int32
	destPort []int32

	// cur holds messages deliverable this round; next collects sends.
	// Slot s occupies entries [s*Bandwidth, s*Bandwidth+counts[s]).
	cur, next           []Message
	curCounts, nxCounts []uint16

	// curDirty/nxDirty list the slots with nonzero counts in cur/next, in
	// the deterministic order the sends were merged (ascending sender,
	// program send order within a sender). They are what makes flip,
	// Pending, and the per-round wake derivation O(activity) instead of
	// O(m·Bandwidth).
	curDirty, nxDirty []int32

	// active lists the not-halted vertices in ascending order — the exact
	// complement of the halted flags, maintained at round barriers.
	// frontier is the round's invocation list: active merged with the
	// woken mail destinations. mail lists this round's distinct mail
	// destinations (deduped via the mailStamp generation marks); inbox[v]
	// holds the ports on which v has deliverable messages, sorted before
	// dispatch.
	active    []int32
	frontier  []int32
	woken     []int32
	mail      []int32
	mailStamp []uint64
	stampGen  uint64
	inbox     [][]int32

	// roundSent accumulates the running round's sent-message count as the
	// per-vertex dirty sublists are merged; flip consumes it.
	roundSent  int64
	seqScratch []Inbound // sequential engine's gather buffer

	// denseGather flags a round where most slots are dirty: building and
	// sorting per-vertex inboxes would cost more than the dense port
	// probe, so gatherInbound probes ports directly instead. The flag is
	// a pure function of len(curDirty), hence identical on every engine,
	// and both gather paths produce the identical recv slice.
	denseGather bool

	metrics Metrics
	halted  []bool
	round   int

	// The first violation in (round, vertex) order. Keeping the
	// lexicographic minimum (rather than whichever write wins the race)
	// makes the reported error identical on every engine.
	violMu         sync.Mutex
	firstViolation error
	violRound      int
	violVertex     int

	workers *workerPool     // lazily started for EngineGoroutine
	par     *parallelShards // lazily built for EngineParallel
}

// New creates a simulator running progs[v] at vertex v. The construction
// is counted on the options' runtime (SimulatorsCreated), so tests can
// assert a caller reuses one simulator (via Reset) instead of
// constructing one per protocol step.
func New(g *graph.Graph, progs []Program, opts Options) (*Simulator, error) {
	if len(progs) != g.N() {
		return nil, fmt.Errorf("congest: %d programs for %d vertices", len(progs), g.N())
	}
	opts = opts.withDefaults()
	opts.Runtime.NoteSimulator()
	s := &Simulator{g: g, opts: opts, progs: progs}
	nSlots := 0
	slotBase := make([]int32, g.N()+1)
	for v := 0; v < g.N(); v++ {
		slotBase[v+1] = slotBase[v] + int32(g.Degree(v))
		nSlots += g.Degree(v)
	}
	s.twin = make([]int32, nSlots)
	s.destV = make([]int32, nSlots)
	s.destPort = make([]int32, nSlots)
	for v := 0; v < g.N(); v++ {
		for p := 0; p < g.Degree(v); p++ {
			w := g.Neighbor(v, p)
			q := g.PortOf(w, v)
			s.twin[slotBase[v]+int32(p)] = slotBase[w] + int32(q)
			s.destV[slotBase[v]+int32(p)] = int32(w)
			s.destPort[slotBase[v]+int32(p)] = int32(q)
		}
	}
	b := opts.Bandwidth
	s.cur = make([]Message, nSlots*b)
	s.next = make([]Message, nSlots*b)
	s.curCounts = make([]uint16, nSlots)
	s.nxCounts = make([]uint16, nSlots)
	s.halted = make([]bool, g.N())
	s.mailStamp = make([]uint64, g.N())
	s.inbox = make([][]int32, g.N())
	s.envs = make([]Env, g.N())
	for v := 0; v < g.N(); v++ {
		s.envs[v] = Env{sim: s, id: v, slotBase: int(slotBase[v])}
	}
	return s, nil
}

// NewUniform creates a simulator where every vertex runs factory(v).
func NewUniform(g *graph.Graph, factory func(v int) Program, opts Options) (*Simulator, error) {
	progs := make([]Program, g.N())
	for v := range progs {
		progs[v] = factory(v)
	}
	return New(g, progs, opts)
}

// Reset swaps in new per-vertex programs and rewinds the simulator to
// its pre-Init state while retaining every piece of graph-derived
// machinery: the twin table, the cur/next message arenas, the env
// slices, the shard layout, and — for the goroutine engine — the
// already-started per-vertex workers. A sequence of protocols on the
// same topology therefore pays the O(m·Bandwidth) construction and
// pool-start cost exactly once.
//
// Metrics, the round counter, the halted flags, any recorded violation,
// and any still-buffered messages are cleared: after Reset the
// simulator behaves exactly as a freshly constructed one (tested), so
// determinism is preserved — the new programs observe no trace of the
// previous run. Callers that must not lose in-flight messages silently
// should check Pending before resetting (protocols.Session does).
//
// Reset must not be called concurrently with Run; between runs the
// goroutine-engine workers are parked on their start channels and the
// shared runtime's workers hold no reference to this simulator, so the
// next round's batch submission orders Reset's writes before any worker
// reads them.
func (s *Simulator) Reset(progs []Program) error {
	if len(progs) != s.g.N() {
		return fmt.Errorf("congest: %d programs for %d vertices", len(progs), s.g.N())
	}
	copy(s.progs, progs)
	s.reset()
	return nil
}

// ResetUniform is Reset with every vertex running factory(v). It writes
// into the retained program slice, so a reset allocates no per-vertex
// bookkeeping beyond the programs themselves.
func (s *Simulator) ResetUniform(factory func(v int) Program) {
	for v := range s.progs {
		s.progs[v] = factory(v)
	}
	s.reset()
}

func (s *Simulator) reset() {
	s.round = 0
	s.metrics = Metrics{}
	s.roundSent = 0
	s.denseGather = false
	// A dense rewind, deliberately: a panicking round can abort before
	// the barrier-time dirty merge, leaving per-vertex sublists and inbox
	// state the incremental paths never observed. Reset is per-protocol,
	// not per-round, so O(n + m·Bandwidth) here buys unconditional
	// correctness. (stampGen is monotonic across resets so stale
	// mailStamp marks can never collide with a future round's
	// generation.)
	clear(s.halted)
	clear(s.curCounts)
	clear(s.nxCounts)
	s.curDirty = s.curDirty[:0]
	s.nxDirty = s.nxDirty[:0]
	s.active = s.active[:0]
	s.frontier = s.frontier[:0]
	s.woken = s.woken[:0]
	s.mail = s.mail[:0]
	for v := range s.envs {
		s.envs[v].dirty = s.envs[v].dirty[:0]
		s.inbox[v] = s.inbox[v][:0]
	}
	s.violMu.Lock()
	s.firstViolation = nil
	s.violRound, s.violVertex = 0, 0
	s.violMu.Unlock()
	if s.par != nil {
		s.par.panicMu.Lock()
		s.par.panicked = nil
		s.par.panicVertex = 0
		s.par.panicMu.Unlock()
	}
}

// Pending returns the number of messages currently buffered for
// delivery in the next round, broken down by message kind. After a
// protocol has consumed its full round schedule this should be zero: a
// nonzero count means the schedule was under-budgeted (kinds owned by
// the protocol) or a previous run on a reused simulator leaked traffic
// (foreign kinds). The map is nil when nothing is pending.
func (s *Simulator) Pending() (total int, byKind map[uint8]int) {
	b := s.opts.Bandwidth
	for _, slot := range s.curDirty {
		if byKind == nil {
			byKind = make(map[uint8]int)
		}
		for k := 0; k < int(s.curCounts[slot]); k++ {
			byKind[s.cur[int(slot)*b+k].Kind]++
			total++
		}
	}
	return total, byKind
}

// Metrics returns execution statistics since construction or the last
// Reset.
func (s *Simulator) Metrics() Metrics { return s.metrics }

// Round returns the number of rounds executed so far.
func (s *Simulator) Round() int { return s.round }

// Active returns the number of vertices that have not halted.
func (s *Simulator) Active() int { return len(s.active) }

// ArenaBytes returns the retained size of the simulator's per-topology
// machinery: the cur/next message arenas, their slot counters, and the
// slot tables (twin and destination columns). The value is a pure
// function of the topology and bandwidth — it does not vary with
// traffic — so long-running services use it as the per-build arena
// footprint when tracking high-water memory across heterogeneous jobs.
func (s *Simulator) ArenaBytes() int64 {
	const msgBytes = int64(unsafe.Sizeof(Message{}))
	arenas := int64(len(s.cur)+len(s.next)) * msgBytes
	counts := int64(len(s.curCounts)+len(s.nxCounts)) * 2
	tables := int64(len(s.twin)+len(s.destV)+len(s.destPort)) * 4
	return arenas + counts + tables
}

// Graph returns the underlying topology (read-only).
func (s *Simulator) Graph() *graph.Graph { return s.g }

// Program returns the program instance at vertex v, for extracting local
// results after a run.
func (s *Simulator) Program(v int) Program { return s.progs[v] }

// Env is a vertex's handle to the simulator: identity, the topology
// access permitted by the model, and message sending. An Env is only
// valid inside the Program callbacks it is passed to.
type Env struct {
	sim      *Simulator
	id       int
	slotBase int

	// dirty is this vertex's per-round dirty-slot sublist: the outbound
	// slots that received their first message this round, in program send
	// order. Only the goroutine running this vertex's callback appends
	// (a vertex's outbound slots are written by no one else), and the
	// coordinator merges the sublists in ascending vertex order at the
	// round barrier — so the global dirty list is deterministic on every
	// engine without any synchronization on the send path.
	dirty []int32
}

// ID returns this vertex's identifier in [0, n).
func (e *Env) ID() int { return e.id }

// N returns the number of vertices (known to all vertices; paper §1.3.1).
func (e *Env) N() int { return e.sim.g.N() }

// Degree returns this vertex's degree.
func (e *Env) Degree() int { return e.sim.g.Degree(e.id) }

// NeighborID returns the ID of the neighbor on the given port. In CONGEST
// neighbors can exchange IDs in a single round; exposing them directly is
// the standard assumption and costs the algorithms nothing.
func (e *Env) NeighborID(port int) int { return e.sim.g.Neighbor(e.id, port) }

// Round returns the current round number (0 during Init).
func (e *Env) Round() int { return e.sim.round }

// Send transmits m over the given port; it is delivered next round. Send
// reports a violation error if the port is out of range or the per-edge
// bandwidth for this round is exhausted; the message is then dropped and
// the violation also fails the enclosing Run.
func (e *Env) Send(port int, m Message) error {
	if port < 0 || port >= e.Degree() {
		err := fmt.Errorf("%w: vertex %d port %d (degree %d)", ErrPort, e.id, port, e.Degree())
		e.sim.recordViolation(e.id, err)
		return err
	}
	s := e.slotBase + port
	b := e.sim.opts.Bandwidth
	if int(e.sim.nxCounts[s]) >= b {
		err := fmt.Errorf("%w: vertex %d port %d round %d (bandwidth %d)",
			ErrBandwidth, e.id, port, e.sim.round, b)
		e.sim.recordViolation(e.id, err)
		return err
	}
	if e.sim.nxCounts[s] == 0 {
		e.dirty = append(e.dirty, int32(s))
	}
	e.sim.next[s*b+int(e.sim.nxCounts[s])] = m
	e.sim.nxCounts[s]++
	return nil
}

// Broadcast sends m over every incident edge (one message per edge, which
// always fits a bandwidth-1 budget if nothing else is sent that round).
func (e *Env) Broadcast(m Message) error {
	for p := 0; p < e.Degree(); p++ {
		if err := e.Send(p, m); err != nil {
			return err
		}
	}
	return nil
}

// Halt marks this vertex as idle: its Round method is not invoked again
// until a message arrives. Used for message-driven quiescence.
func (e *Env) Halt() { e.sim.halted[e.id] = true }

// recordViolation keeps the violation with the lowest (round, vertex);
// concurrent engines then report the same error the sequential engine
// would. Run returns at the end of the first violating round, so only
// violations of a single round (plus Init) ever compete.
func (s *Simulator) recordViolation(v int, err error) {
	s.violMu.Lock()
	if s.firstViolation == nil || s.round < s.violRound ||
		(s.round == s.violRound && v < s.violVertex) {
		s.firstViolation = err
		s.violRound, s.violVertex = s.round, v
	}
	s.violMu.Unlock()
}

func (s *Simulator) violation() error {
	s.violMu.Lock()
	defer s.violMu.Unlock()
	return s.firstViolation
}

// Run executes exactly rounds additional rounds (calling Init first if no
// round has run yet) and returns the first model violation, if any.
func (s *Simulator) Run(rounds int) error {
	return s.RunContext(context.Background(), rounds)
}

// RunContext is Run with cancellation: the context is checked at every
// round boundary, so a cancelled or expired context aborts the execution
// within one simulated round and returns ctx.Err(). Determinism is
// preserved by construction — rounds are atomic (a round either fully
// executes on every vertex or not at all), so cancellation can truncate
// an execution but never corrupt one. A cancelled simulator may be Reset
// and reused.
func (s *Simulator) RunContext(ctx context.Context, rounds int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.round == 0 {
		s.runInit()
	}
	for i := 0; i < rounds; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.step()
		if err := s.violation(); err != nil {
			return err
		}
	}
	return s.violation()
}

// RunUntilQuiet executes rounds until no messages are in flight and every
// vertex has halted, up to maxRounds. It returns the number of rounds
// executed and the first violation, if any. If the budget runs out
// before quiescence the error is a *ErrBudgetExhausted carrying the
// pending-message histogram.
//
// Quiescence here is the message-driven kind: a protocol that acts on a
// precomputed round schedule must use Run with its schedule length.
func (s *Simulator) RunUntilQuiet(maxRounds int) (int, error) {
	return s.RunUntilQuietContext(context.Background(), maxRounds)
}

// RunUntilQuietContext is RunUntilQuiet with cancellation checked at
// every round boundary (see RunContext).
func (s *Simulator) RunUntilQuietContext(ctx context.Context, maxRounds int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if s.round == 0 {
		s.runInit()
	}
	start := s.round
	for i := 0; i < maxRounds; i++ {
		if s.quiet() {
			return s.round - start, s.violation()
		}
		if err := ctx.Err(); err != nil {
			return s.round - start, err
		}
		s.step()
		if err := s.violation(); err != nil {
			return s.round - start, err
		}
	}
	if err := s.violation(); err != nil {
		return s.round - start, err
	}
	if !s.quiet() {
		total, byKind := s.Pending()
		return s.round - start, &ErrBudgetExhausted{
			MaxRounds: maxRounds, Pending: total, ByKind: byKind, Active: len(s.active),
		}
	}
	return s.round - start, nil
}

// quiet is O(1): the dirty list is empty exactly when no message is
// buffered, and the active list is empty exactly when every vertex has
// halted.
func (s *Simulator) quiet() bool {
	return len(s.curDirty) == 0 && len(s.active) == 0
}

func (s *Simulator) runInit() {
	for v := 0; v < s.g.N(); v++ {
		s.progs[v].Init(&s.envs[v])
	}
	for v := range s.envs {
		s.collectDirty(&s.envs[v])
	}
	s.active = s.active[:0]
	for v := 0; v < s.g.N(); v++ {
		if !s.halted[v] {
			s.active = append(s.active, int32(v))
		}
	}
	s.flip()
}

// step executes one round on the configured engine: derive the frontier
// from the dirty slots and the active list, dispatch Round over exactly
// those vertices, then merge the per-vertex outbound sublists and
// compact the active list at the barrier. Total cost is
// O(frontier + messages), independent of n and m.
func (s *Simulator) step() {
	s.round++
	s.buildFrontier()
	switch s.opts.Engine {
	case EngineGoroutine:
		s.stepGoroutine()
	case EngineParallel:
		s.stepParallel()
	default:
		s.stepSequential()
	}
	s.finishRound()
	s.flip()
}

// buildFrontier derives the round's invocation list. Every dirty slot
// names its destination vertex and port (destV/destPort); destinations
// are deduped with a generation stamp into the mail list, their inboxes
// filled with the hit ports (sorted — the per-vertex hits are few), and
// halted destinations are woken. The frontier is the merge of the two
// ascending disjoint lists: still-active vertices and the woken.
//
// When at least half the slots are dirty the round is effectively
// dense: the inboxes are skipped (gatherInbound probes ports directly)
// and only the wake/mail derivation runs, so dense workloads pay the
// same per-round cost as a dense stepper.
func (s *Simulator) buildFrontier() {
	s.stampGen++
	s.denseGather = 2*len(s.curDirty) >= len(s.twin)
	for _, slot := range s.curDirty {
		d := s.destV[slot]
		if s.mailStamp[d] != s.stampGen {
			s.mailStamp[d] = s.stampGen
			s.mail = append(s.mail, d)
		}
		if !s.denseGather {
			s.inbox[d] = append(s.inbox[d], s.destPort[slot])
		}
	}
	s.woken = s.woken[:0]
	for _, d := range s.mail {
		if !s.denseGather {
			slices.Sort(s.inbox[d])
		}
		if s.halted[d] {
			s.halted[d] = false
			s.woken = append(s.woken, d)
		}
	}
	slices.Sort(s.woken)
	s.frontier = s.frontier[:0]
	i, j := 0, 0
	for i < len(s.active) && j < len(s.woken) {
		if s.active[i] < s.woken[j] {
			s.frontier = append(s.frontier, s.active[i])
			i++
		} else {
			s.frontier = append(s.frontier, s.woken[j])
			j++
		}
	}
	s.frontier = append(s.frontier, s.active[i:]...)
	s.frontier = append(s.frontier, s.woken[j:]...)
}

// collectDirty appends one vertex's outbound sublist to the global
// next-round dirty list and charges its messages to the round's traffic.
func (s *Simulator) collectDirty(env *Env) {
	if len(env.dirty) == 0 {
		return
	}
	for _, slot := range env.dirty {
		s.roundSent += int64(s.nxCounts[slot])
	}
	s.nxDirty = append(s.nxDirty, env.dirty...)
	env.dirty = env.dirty[:0]
}

// finishRound runs on the coordinator after the round barrier: merge the
// per-vertex dirty sublists in ascending frontier order (the engines all
// produce the same sublists, so the merged list is engine-independent),
// drop the vertices that halted during the round from the active list,
// and clear the round's inbox state — each step O(activity).
func (s *Simulator) finishRound() {
	for _, v := range s.frontier {
		s.collectDirty(&s.envs[v])
	}
	s.active = s.active[:0]
	for _, v := range s.frontier {
		if !s.halted[v] {
			s.active = append(s.active, v)
		}
	}
	if !s.denseGather {
		for _, d := range s.mail {
			s.inbox[d] = s.inbox[d][:0]
		}
	}
	s.mail = s.mail[:0]
}

// flip swaps the message buffers after a round: what was sent becomes
// deliverable, and the previous round's delivered slots — exactly the
// ones the outgoing dirty list names — are cleared. Metrics are updated
// here, from the traffic counter the dirty merge maintained, so all
// engines share the accounting.
func (s *Simulator) flip() {
	sent := s.roundSent
	s.roundSent = 0
	s.metrics.Messages += sent
	if sent > s.metrics.MaxRoundTraffic {
		s.metrics.MaxRoundTraffic = sent
	}
	s.metrics.Rounds = s.round
	s.cur, s.next = s.next, s.cur
	s.curCounts, s.nxCounts = s.nxCounts, s.curCounts
	s.curDirty, s.nxDirty = s.nxDirty, s.curDirty
	for _, slot := range s.nxDirty {
		s.nxCounts[slot] = 0
	}
	s.nxDirty = s.nxDirty[:0]
}

// gatherInbound collects vertex v's deliverable messages in the
// configured delivery order, driven by v's inbox — the ports the dirty
// slots hit, pre-sorted by buildFrontier — rather than probing every
// port. In dense rounds (denseGather) the inboxes were skipped and the
// ports are probed directly; both paths yield the identical slice,
// since a probed port without messages contributes nothing. scratch is
// reused across calls to avoid per-round allocation.
func (s *Simulator) gatherInbound(v int, scratch []Inbound) []Inbound {
	recv := scratch[:0]
	b := s.opts.Bandwidth
	base := s.envs[v].slotBase
	appendPort := func(p int) {
		src := s.twin[base+p] // slot of the edge (neighbor -> v)
		for k := 0; k < int(s.curCounts[src]); k++ {
			recv = append(recv, Inbound{Port: p, Msg: s.cur[int(src)*b+k]})
		}
	}
	if s.denseGather {
		deg := s.g.Degree(v)
		if s.opts.Delivery == DeliverPortDescending {
			for p := deg - 1; p >= 0; p-- {
				appendPort(p)
			}
		} else {
			for p := 0; p < deg; p++ {
				appendPort(p)
			}
		}
		return recv
	}
	ports := s.inbox[v]
	if s.opts.Delivery == DeliverPortDescending {
		for i := len(ports) - 1; i >= 0; i-- {
			appendPort(int(ports[i]))
		}
	} else {
		for _, p := range ports {
			appendPort(int(p))
		}
	}
	return recv
}

func (s *Simulator) stepSequential() {
	scratch := s.seqScratch
	for _, v := range s.frontier {
		recv := s.gatherInbound(int(v), scratch)
		s.progs[v].Round(&s.envs[v], recv)
		scratch = recv[:0]
	}
	s.seqScratch = scratch
}

// Package congest simulates the synchronous CONGEST model of distributed
// computation (Peleg 2000; paper §1.3.1): one processor per graph vertex,
// communication with graph neighbors in synchronous rounds, and messages
// limited to O(1) words per edge per round.
//
// Three interchangeable engines execute node programs:
//
//   - EngineSequential: a single-threaded round loop — the reference
//     execution.
//   - EngineParallel: vertices partitioned into shards multiplexed onto
//     the shared execution runtime (package sched) each round — uses all
//     cores, the engine for large experiments; any number of concurrent
//     simulators share one bounded worker pool.
//   - EngineGoroutine: one goroutine per vertex with channel-based round
//     barriers — the natural Go rendering of message-passing processors,
//     used to demonstrate and cross-check model fidelity.
//
// All engines are deterministic and produce bit-identical executions for
// the same program (tested pairwise), so round counts measured on any of
// them are the paper's "running time". See parallel.go for the
// determinism argument.
//
// Bandwidth is enforced: a node may send at most Options.Bandwidth
// messages (default 1) of at most MessageWords words over each incident
// edge per round. Violations are reported as errors, never silently
// dropped, so an algorithm that would not be a valid CONGEST algorithm
// cannot produce a result that looks valid.
package congest

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"math"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"

	"nearspan/internal/graph"
	"nearspan/internal/sched"
)

// MessageWords is the fixed number of payload words in a Message. Three
// words fit every protocol in this repository (e.g. center ID + distance),
// and keeping it a small constant is exactly the CONGEST "O(1) words"
// regime.
const MessageWords = 3

// Message is one CONGEST message: a kind tag plus MessageWords words.
type Message struct {
	Kind  uint8
	Words [MessageWords]int64
}

// Inbound is a received message together with the local port it arrived
// on. Port p of vertex v corresponds to v's p-th neighbor in sorted
// adjacency order (the standard port-numbering model).
type Inbound struct {
	Port int
	Msg  Message
}

// Program is the per-vertex state machine. Each vertex runs its own
// Program instance.
//
// Init is called once before round 1; messages sent from Init are
// delivered in round 1. Round is called once per round r >= 1 with the
// messages sent to this vertex in the previous round (or Init), sorted by
// arrival port. Messages sent during Round(r) are delivered at Round(r+1).
//
// The recv slice is reused between calls: programs must not retain it (or
// its elements by reference) past the return of Round.
type Program interface {
	Init(env *Env)
	Round(env *Env, recv []Inbound)
}

// Engine selects the execution strategy.
type Engine int

const (
	// EngineSequential runs all vertices in a single goroutine.
	EngineSequential Engine = iota + 1
	// EngineGoroutine runs one goroutine per vertex with round barriers.
	EngineGoroutine
	// EngineParallel runs vertex shards on the shared execution runtime
	// (see Options.Runtime), amortizing the per-goroutine overhead that
	// makes EngineGoroutine impractical at scale and letting concurrent
	// simulators share one bounded worker pool.
	EngineParallel
)

func (e Engine) String() string {
	switch e {
	case EngineSequential:
		return "sequential"
	case EngineGoroutine:
		return "goroutine"
	case EngineParallel:
		return "parallel"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Engines lists the available engines in display order.
func Engines() []Engine {
	return []Engine{EngineSequential, EngineParallel, EngineGoroutine}
}

// ParseEngine parses an engine name as printed by Engine.String.
func ParseEngine(name string) (Engine, error) {
	for _, e := range Engines() {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("congest: unknown engine %q (want sequential|parallel|goroutine)", name)
}

// DeliveryOrder controls the order in which a round's messages are
// presented to Program.Round. Correct CONGEST algorithms must not depend
// on arrival order within a round; running the test suite under
// DeliverPortDescending is a cheap adversarial-scheduling check.
type DeliveryOrder int

const (
	// DeliverPortAscending presents messages sorted by arrival port
	// (the default).
	DeliverPortAscending DeliveryOrder = iota
	// DeliverPortDescending presents messages in reverse port order.
	DeliverPortDescending
)

// MaxBandwidth is the largest accepted Options.Bandwidth: per-slot
// message counters are uint16, so the per-edge per-round budget must fit
// one. Every CONGEST protocol in this repository uses single-digit
// bandwidth; the cap exists so the counter width is an enforced
// invariant rather than a silent wraparound at adversarial settings.
const MaxBandwidth = math.MaxUint16

// Options configure a Simulator. The zero value selects the sequential
// engine with bandwidth 1 and ascending delivery.
type Options struct {
	Engine    Engine        // defaults to EngineSequential
	Bandwidth int           // messages per directed edge per round; defaults to 1, max MaxBandwidth
	Delivery  DeliveryOrder // defaults to DeliverPortAscending
	// Runtime is the shared execution runtime EngineParallel submits its
	// round batches to; it also hosts the per-runtime simulator counter.
	// Nil selects the process-wide sched.Default(). Supply a private
	// runtime (sched.New) to isolate pool lifecycle or counters — e.g.
	// batch builders that must release every goroutine on Close.
	Runtime *sched.Runtime
	// Workers bounds the per-round shard fan-out of EngineParallel;
	// defaults to the runtime's worker count. Any value produces the
	// identical execution — it only changes scheduling granularity.
	Workers int
	// ArenaFraction controls how much of the worst-case unicast message
	// arena is preallocated at construction. The arena is paged: pages
	// not preallocated are acquired on first touch and retained (a
	// monotone high-water), so the resident arena tracks measured
	// traffic instead of the nSlots×Bandwidth worst case. 0 selects the
	// default (1/64 of the pages); values >= 1 preallocate the full
	// worst-case arena (the pre-scale-up behavior); negative values
	// preallocate nothing. The setting never affects the execution —
	// only when pages are allocated — so all values produce bit-identical
	// runs (and identical final ArenaBytes, since the touched-page set is
	// deterministic).
	ArenaFraction float64
}

func (o Options) withDefaults() Options {
	if o.Engine == 0 {
		o.Engine = EngineSequential
	}
	if o.Bandwidth <= 0 {
		o.Bandwidth = 1
	}
	if o.Runtime == nil {
		o.Runtime = sched.Default()
	}
	return o
}

// Metrics aggregates execution statistics. Rounds counts executed rounds
// (Init is not a round). Messages counts sent messages.
type Metrics struct {
	Rounds          int
	Messages        int64
	MaxRoundTraffic int64 // most messages sent in any single round
}

// ErrBandwidth is returned (wrapped) when a program exceeds the per-edge
// per-round message budget.
var ErrBandwidth = errors.New("congest: bandwidth exceeded")

// ErrPort is returned (wrapped) when a program sends on an invalid port.
var ErrPort = errors.New("congest: invalid port")

// ErrBudgetExhausted reports that RunUntilQuiet consumed its entire
// round budget without reaching quiescence. It carries the in-flight
// message histogram and the count of still-active vertices, so a stuck
// message-driven protocol (e.g. a path climb that never drains) can be
// diagnosed from the error alone instead of a debugger. Retrieve it with
// errors.As.
type ErrBudgetExhausted struct {
	MaxRounds int           // the exhausted budget
	Pending   int           // messages still in flight
	ByKind    map[uint8]int // pending messages by kind
	Active    int           // vertices that have not halted
}

func (e *ErrBudgetExhausted) Error() string {
	var kinds strings.Builder
	for i, k := range slices.Sorted(maps.Keys(e.ByKind)) {
		if i > 0 {
			kinds.WriteString(" ")
		}
		fmt.Fprintf(&kinds, "kind %d: %d", k, e.ByKind[k])
	}
	return fmt.Sprintf("congest: round budget %d exhausted before quiescence: %d message(s) in flight (%s), %d vertex(es) active",
		e.MaxRounds, e.Pending, kinds.String(), e.Active)
}

// msgBytes is the in-memory size of one Message.
const msgBytes = int64(unsafe.Sizeof(Message{}))

const (
	// maxPageShift sizes unicast arena pages at 2^6 = 64 slots (2 KiB of
	// messages at bandwidth 1). Pages this fine matter: a climb round's
	// senders each touch one slot scattered across the whole arena, so
	// the round's live footprint is pages × page-size — with 4096-slot
	// pages a few thousand scattered senders pin the entire worst-case
	// arena, with 64-slot pages they pin ~2 KiB each. The page-pointer
	// table costs 1 pointer per 64 slots (0.4% of the full arena).
	maxPageShift = 6
	// minPageShift keeps pages from degenerating on tiny topologies
	// (the geometry loop shrinks pages until a graph has at least ~8 of
	// them, which also keeps high-bandwidth test rigs on small graphs
	// from allocating huge pages).
	minPageShift = 1
)

// sendLog collects one execution scope's outbound effects for the round:
// the slots that received their first unicast (in program send order) and
// the vertices that issued compact broadcasts. Each engine gives every
// concurrently-running scope its own log — the sequential engine one
// (merged after every vertex), the parallel engine one per shard, the
// goroutine engine one per vertex — so the send path needs no
// synchronization, and the coordinator merges logs in ascending frontier
// order at the barrier, making the global lists engine-independent.
type sendLog struct {
	dirty []int32 // slots first-touched by a unicast this round
	bcast []int32 // vertices with pending compact broadcasts
}

func (l *sendLog) reset() {
	l.dirty = l.dirty[:0]
	l.bcast = l.bcast[:0]
}

// Simulator executes one Program instance per vertex of a graph.
//
// Round execution is frontier-driven: the per-round cost is
// O(frontier + messages), not O(n + m). The simulator maintains a
// dirty-slot list (the directed-edge slots that carry messages), a
// broadcaster list (vertices whose round output is a whole-neighborhood
// broadcast, stored once instead of once per edge), and an active list
// (the vertices that have not halted); each round it derives the
// frontier — active vertices plus the halted destinations of dirty slots
// and broadcasts — and only those vertices run. See docs/ARCHITECTURE.md,
// "Frontier scheduling", for the determinism argument.
type Simulator struct {
	g     *graph.Graph
	opts  Options
	progs []Program

	// twin[s] is the directed-edge slot of the reverse edge of slot s,
	// where slot g.Offset(v)+p is the edge out of vertex v's port p —
	// the slot index range of v is exactly v's CSR adjacency range, so
	// the destination vertex of slot s is g.AdjAt(s) and its port there
	// is twin[s]-g.Offset(g.AdjAt(s)). The twin table is the only
	// per-slot topology column the simulator stores.
	twin []int32

	// cur holds unicast messages deliverable this round; next collects
	// sends. Slot s occupies entries [(s&pageMask)*Bandwidth, …+counts[s])
	// of page s>>pageShift. Pages are allocated on first touch and
	// recycled through pagePool once their round is consumed (flip), so
	// the live page set tracks the two-round working set — O(activity)
	// memory, not O(m) — and pageBytes is its high-water: a fresh
	// allocation happens only when demand exceeds every page ever
	// allocated. Recycled pages are not zeroed; the slot counts gate
	// every read, so stale content is unreachable. See
	// Options.ArenaFraction.
	cur, next           []atomic.Pointer[[]Message]
	curCounts, nxCounts []uint16
	pageShift           uint
	pageMask            int
	pageBytes           atomic.Int64 // high-water bytes of simultaneously live pages
	poolMu              sync.Mutex
	pagePool            []*[]Message // recycled pages free for reuse

	// Compact broadcast arenas: a vertex whose sends this round are
	// exclusively Broadcast calls stores them once here (slot v*Bandwidth
	// + k) instead of deg(v) times in the unicast arena. The invariant —
	// at every round barrier a vertex has either compact broadcasts or
	// unicast slots, never both (Env.Send materializes pending compacts
	// first) — is what lets the gather and frontier paths treat the two
	// stores as disjoint. This is the difference between O(n) and O(m)
	// memory traffic for the broadcast-heavy phases (e.g. the phase-0
	// center announcement, where every vertex broadcasts at once).
	curBcast, nxBcast   []Message
	curBcastN, nxBcastN []uint16
	curBcastL, nxBcastL []int32
	curBcastSlots       int // sum of deg over curBcastL, for the dense test
	nxBcastSlots        int

	// curDirty/nxDirty list the slots with nonzero counts in cur/next, in
	// the deterministic order the sends were merged (ascending sender,
	// program send order within a sender). They are what makes flip,
	// Pending, and the per-round wake derivation O(activity) instead of
	// O(m·Bandwidth).
	curDirty, nxDirty []int32

	// active lists the not-halted vertices in ascending order — the exact
	// complement of the halted flags, maintained at round barriers.
	// frontier is the round's invocation list: active merged with the
	// woken mail destinations. mail lists this round's distinct mail
	// destinations (deduped via the mailStamp generation marks); inbox[v]
	// holds the ports on which v has deliverable messages, sorted before
	// dispatch.
	active    []int32
	frontier  []int32
	woken     []int32
	mail      []int32
	mailStamp []uint64
	stampGen  uint64
	inbox     [][]int32

	// roundSent accumulates the running round's sent-message count as the
	// per-scope send logs are merged; flip consumes it.
	roundSent  int64
	seqLog     sendLog   // sequential engine's (and Init's) send log
	seqEnv     Env       // sequential engine's reused vertex handle
	seqScratch []Inbound // sequential engine's gather buffer
	glogs      []sendLog // goroutine engine's per-vertex send logs

	// denseGather flags a round where most slots carry messages: building
	// and sorting per-vertex inboxes would cost more than the dense port
	// probe, so gatherInbound probes ports directly instead. The flag is
	// a pure function of len(curDirty) and the broadcast slot total,
	// hence identical on every engine, and both gather paths produce the
	// identical recv slice.
	denseGather bool

	metrics Metrics
	halted  []bool
	round   int

	// The first violation in (round, vertex) order. Keeping the
	// lexicographic minimum (rather than whichever write wins the race)
	// makes the reported error identical on every engine.
	violMu         sync.Mutex
	firstViolation error
	violRound      int
	violVertex     int

	workers *workerPool     // lazily started for EngineGoroutine
	par     *parallelShards // lazily built for EngineParallel
}

// New creates a simulator running progs[v] at vertex v. The construction
// is counted on the options' runtime (SimulatorsCreated), so tests can
// assert a caller reuses one simulator (via Reset) instead of
// constructing one per protocol step.
func New(g *graph.Graph, progs []Program, opts Options) (*Simulator, error) {
	if len(progs) != g.N() {
		return nil, fmt.Errorf("congest: %d programs for %d vertices", len(progs), g.N())
	}
	if opts.Bandwidth > MaxBandwidth {
		return nil, fmt.Errorf("congest: bandwidth %d exceeds maximum %d (per-slot counters are uint16)",
			opts.Bandwidth, MaxBandwidth)
	}
	opts = opts.withDefaults()
	opts.Runtime.NoteSimulator()
	s := &Simulator{g: g, opts: opts, progs: progs}
	n := g.N()
	nSlots := int(g.Offset(n))
	s.twin = make([]int32, nSlots)
	for v := 0; v < n; v++ {
		base := g.Offset(v)
		for p := 0; p < g.Degree(v); p++ {
			w := g.Neighbor(v, p)
			q := g.PortOf(w, v)
			s.twin[base+int32(p)] = g.Offset(w) + int32(q)
		}
	}
	b := opts.Bandwidth

	// Page geometry: 2^maxPageShift slots per page, shrunk on small
	// topologies so lazy allocation still has granularity to work with.
	shift := uint(maxPageShift)
	for shift > minPageShift && nSlots>>shift < 8 {
		shift--
	}
	s.pageShift = shift
	s.pageMask = 1<<shift - 1
	nPages := (nSlots + s.pageMask) >> shift
	s.cur = make([]atomic.Pointer[[]Message], nPages)
	s.next = make([]atomic.Pointer[[]Message], nPages)
	frac := opts.ArenaFraction
	if frac == 0 {
		frac = 1.0 / 64
	}
	if frac > 1 {
		frac = 1
	}
	if frac > 0 {
		pre := int(math.Ceil(frac * float64(nPages)))
		for i := 0; i < pre; i++ {
			s.allocPage(&s.cur[i])
			s.allocPage(&s.next[i])
		}
	}
	s.curCounts = make([]uint16, nSlots)
	s.nxCounts = make([]uint16, nSlots)
	s.curBcast = make([]Message, n*b)
	s.nxBcast = make([]Message, n*b)
	s.curBcastN = make([]uint16, n)
	s.nxBcastN = make([]uint16, n)
	s.halted = make([]bool, n)
	s.mailStamp = make([]uint64, n)
	s.inbox = make([][]int32, n)
	return s, nil
}

// NewUniform creates a simulator where every vertex runs factory(v).
func NewUniform(g *graph.Graph, factory func(v int) Program, opts Options) (*Simulator, error) {
	progs := make([]Program, g.N())
	for v := range progs {
		progs[v] = factory(v)
	}
	return New(g, progs, opts)
}

// allocPage installs a page at pp, reusing a recycled page when the
// pool has one and allocating fresh otherwise. First touches serialize
// on the pool lock — they are rare (at most one per newly touched page
// per round), so racing shard workers of different senders landing in
// one page agree on a single installation and a single accounting
// charge. A fresh page is made only when the pool is empty, which makes
// pageBytes the high-water of simultaneously live pages; the touched
// page set of every round and the pool level at every round boundary
// are pure functions of the execution, so the high-water — and thus
// ArenaBytes — is deterministic across engines and runs even though
// which worker allocates is racy. Recycled pages are not zeroed: slot
// counts gate every read, so stale content is unreachable.
func (s *Simulator) allocPage(pp *atomic.Pointer[[]Message]) *[]Message {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if pg := pp.Load(); pg != nil {
		return pg // another worker installed it while we waited
	}
	var pg *[]Message
	if n := len(s.pagePool); n > 0 {
		pg = s.pagePool[n-1]
		s.pagePool[n-1] = nil
		s.pagePool = s.pagePool[:n-1]
	} else {
		fresh := make([]Message, (s.pageMask+1)*s.opts.Bandwidth)
		pg = &fresh
		s.pageBytes.Add(int64(len(fresh)) * msgBytes)
	}
	pp.Store(pg)
	return pg
}

// writeNext stores m as the k-th message of slot in the next-round arena.
func (s *Simulator) writeNext(slot, k int, m Message) {
	pp := &s.next[slot>>s.pageShift]
	pg := pp.Load()
	if pg == nil {
		pg = s.allocPage(pp)
	}
	(*pg)[(slot&s.pageMask)*s.opts.Bandwidth+k] = m
}

// curSlot returns the deliverable messages of slot (count from curCounts).
func (s *Simulator) curSlot(slot int) []Message {
	pg := s.cur[slot>>s.pageShift].Load()
	off := (slot & s.pageMask) * s.opts.Bandwidth
	return (*pg)[off : off+int(s.curCounts[slot])]
}

// Reset swaps in new per-vertex programs and rewinds the simulator to
// its pre-Init state while retaining every piece of graph-derived
// machinery: the twin table, the message arenas (including every lazily
// allocated page — the high-water is monotone), the shard layout, and —
// for the goroutine engine — the already-started per-vertex workers. A
// sequence of protocols on the same topology therefore pays the
// construction and pool-start cost exactly once.
//
// Metrics, the round counter, the halted flags, any recorded violation,
// and any still-buffered messages are cleared: after Reset the
// simulator behaves exactly as a freshly constructed one (tested), so
// determinism is preserved — the new programs observe no trace of the
// previous run. Callers that must not lose in-flight messages silently
// should check Pending before resetting (protocols.Session does).
//
// Reset must not be called concurrently with Run; between runs the
// goroutine-engine workers are parked on their start channels and the
// shared runtime's workers hold no reference to this simulator, so the
// next round's batch submission orders Reset's writes before any worker
// reads them.
func (s *Simulator) Reset(progs []Program) error {
	if len(progs) != s.g.N() {
		return fmt.Errorf("congest: %d programs for %d vertices", len(progs), s.g.N())
	}
	copy(s.progs, progs)
	s.reset()
	return nil
}

// ResetUniform is Reset with every vertex running factory(v). It writes
// into the retained program slice, so a reset allocates no per-vertex
// bookkeeping beyond the programs themselves.
func (s *Simulator) ResetUniform(factory func(v int) Program) {
	for v := range s.progs {
		s.progs[v] = factory(v)
	}
	s.reset()
}

func (s *Simulator) reset() {
	s.round = 0
	s.metrics = Metrics{}
	s.roundSent = 0
	s.denseGather = false
	// A dense rewind, deliberately: a panicking round can abort before
	// the barrier-time log merge, leaving send logs and inbox state the
	// incremental paths never observed. Reset is per-protocol, not
	// per-round, so O(n + slots) here buys unconditional correctness.
	// (stampGen is monotonic across resets so stale mailStamp marks can
	// never collide with a future round's generation. Retained pages are
	// not zeroed: a slot's messages are unreachable once its count is.)
	clear(s.halted)
	clear(s.curCounts)
	clear(s.nxCounts)
	clear(s.curBcastN)
	clear(s.nxBcastN)
	s.curBcastL = s.curBcastL[:0]
	s.nxBcastL = s.nxBcastL[:0]
	s.curBcastSlots, s.nxBcastSlots = 0, 0
	s.curDirty = s.curDirty[:0]
	s.nxDirty = s.nxDirty[:0]
	s.active = s.active[:0]
	s.frontier = s.frontier[:0]
	s.woken = s.woken[:0]
	s.mail = s.mail[:0]
	s.seqLog.reset()
	for i := range s.glogs {
		s.glogs[i].reset()
	}
	if s.par != nil {
		for _, st := range s.par.shards {
			st.log.reset()
		}
	}
	for v := range s.inbox {
		s.inbox[v] = s.inbox[v][:0]
	}
	s.violMu.Lock()
	s.firstViolation = nil
	s.violRound, s.violVertex = 0, 0
	s.violMu.Unlock()
	if s.par != nil {
		s.par.panicMu.Lock()
		s.par.panicked = nil
		s.par.panicVertex = 0
		s.par.panicMu.Unlock()
	}
}

// Pending returns the number of messages currently buffered for
// delivery in the next round, broken down by message kind. A compact
// broadcast counts once per incident edge, exactly as if it had been
// sent per port. After a protocol has consumed its full round schedule
// this should be zero: a nonzero count means the schedule was
// under-budgeted (kinds owned by the protocol) or a previous run on a
// reused simulator leaked traffic (foreign kinds). The map is nil when
// nothing is pending.
func (s *Simulator) Pending() (total int, byKind map[uint8]int) {
	for _, slot := range s.curDirty {
		if byKind == nil {
			byKind = make(map[uint8]int)
		}
		for _, m := range s.curSlot(int(slot)) {
			byKind[m.Kind]++
			total++
		}
	}
	b := s.opts.Bandwidth
	for _, u := range s.curBcastL {
		if byKind == nil {
			byKind = make(map[uint8]int)
		}
		deg := s.g.Degree(int(u))
		for k := 0; k < int(s.curBcastN[u]); k++ {
			byKind[s.curBcast[int(u)*b+k].Kind] += deg
			total += deg
		}
	}
	return total, byKind
}

// Metrics returns execution statistics since construction or the last
// Reset.
func (s *Simulator) Metrics() Metrics { return s.metrics }

// Round returns the number of rounds executed so far.
func (s *Simulator) Round() int { return s.round }

// Active returns the number of vertices that have not halted.
func (s *Simulator) Active() int { return len(s.active) }

// ArenaBytes returns the retained size of the simulator's message
// machinery: the allocated unicast arena pages, the compact broadcast
// arenas, the slot counters, and the twin table. Pages are allocated on
// first touch and retained, so the value is a measured high-water of
// actual traffic — it starts near the ArenaFraction preallocation and
// grows monotonically toward (but on sparse protocols far below) the
// worst-case nSlots×Bandwidth arena. The touched-slot set is a pure
// function of the execution, so the value is deterministic across
// engines and runs; long-running services use it as the per-build arena
// footprint when tracking high-water memory across heterogeneous jobs.
func (s *Simulator) ArenaBytes() int64 {
	arenas := s.pageBytes.Load()
	bcast := int64(len(s.curBcast)+len(s.nxBcast))*msgBytes +
		int64(len(s.curBcastN)+len(s.nxBcastN))*2
	counts := int64(len(s.curCounts)+len(s.nxCounts)) * 2
	tables := int64(len(s.twin)) * 4
	return arenas + bcast + counts + tables
}

// ArenaBytesWorstCase returns what ArenaBytes would be if every unicast
// arena page were allocated — the pre-scale-up fixed footprint
// (ArenaFraction >= 1 reproduces it). The measured-vs-worst-case ratio
// is the scale smoke test's acceptance criterion.
func (s *Simulator) ArenaBytesWorstCase() int64 {
	pages := int64(len(s.cur)+len(s.next)) * int64((s.pageMask+1)*s.opts.Bandwidth) * msgBytes
	return pages + s.ArenaBytes() - s.pageBytes.Load()
}

// Graph returns the underlying topology (read-only).
func (s *Simulator) Graph() *graph.Graph { return s.g }

// Program returns the program instance at vertex v, for extracting local
// results after a run.
func (s *Simulator) Program(v int) Program { return s.progs[v] }

// Env is a vertex's handle to the simulator: identity, the topology
// access permitted by the model, and message sending. An Env is only
// valid inside the Program callbacks it is passed to. Envs are owned by
// execution scopes (one per shard on the parallel engine, one per worker
// on the goroutine engine, one total on the sequential engine), not by
// vertices: the engine points the Env at the current vertex before each
// callback, so n vertices cost O(scopes) handle state, and each scope's
// handle plus send log live on their own cache lines.
type Env struct {
	sim     *Simulator
	out     *sendLog // the owning scope's send log
	id      int
	base    int  // == g.Offset(id): first outbound slot
	sentUni bool // a unicast was sent in the current callback
}

// ID returns this vertex's identifier in [0, n).
func (e *Env) ID() int { return e.id }

// N returns the number of vertices (known to all vertices; paper §1.3.1).
func (e *Env) N() int { return e.sim.g.N() }

// Degree returns this vertex's degree.
func (e *Env) Degree() int { return e.sim.g.Degree(e.id) }

// NeighborID returns the ID of the neighbor on the given port. In CONGEST
// neighbors can exchange IDs in a single round; exposing them directly is
// the standard assumption and costs the algorithms nothing.
func (e *Env) NeighborID(port int) int { return e.sim.g.Neighbor(e.id, port) }

// Round returns the current round number (0 during Init).
func (e *Env) Round() int { return e.sim.round }

// Send transmits m over the given port; it is delivered next round. Send
// reports a violation error if the port is out of range or the per-edge
// bandwidth for this round is exhausted; the message is then dropped and
// the violation also fails the enclosing Run.
func (e *Env) Send(port int, m Message) error {
	if port < 0 || port >= e.Degree() {
		err := fmt.Errorf("%w: vertex %d port %d (degree %d)", ErrPort, e.id, port, e.Degree())
		e.sim.recordViolation(e.id, err)
		return err
	}
	s := e.sim
	if s.nxBcastN[e.id] > 0 {
		e.materializeBcast()
	}
	e.sentUni = true
	slot := e.base + port
	b := s.opts.Bandwidth
	if int(s.nxCounts[slot]) >= b {
		err := fmt.Errorf("%w: vertex %d port %d round %d (bandwidth %d)",
			ErrBandwidth, e.id, port, s.round, b)
		s.recordViolation(e.id, err)
		return err
	}
	if s.nxCounts[slot] == 0 {
		e.out.dirty = append(e.out.dirty, int32(slot))
	}
	s.writeNext(slot, int(s.nxCounts[slot]), m)
	s.nxCounts[slot]++
	return nil
}

// Broadcast sends m over every incident edge (one message per edge, which
// always fits a bandwidth-1 budget if nothing else is sent that round).
//
// A round whose sends are exclusively broadcasts — by far the dominant
// pattern in the protocols here — stores the message once per vertex in
// the compact broadcast arena rather than once per edge in the unicast
// arena: O(n) space and time instead of O(m) for a broadcast-all round.
// Mixing Send and Broadcast in one callback falls back to per-port
// expansion (in either order: a Send after a compact Broadcast first
// materializes it into the unicast slots), so the observable execution
// is identical to sending on every port individually — same delivery
// order, same bandwidth accounting, same violation errors.
func (e *Env) Broadcast(m Message) error {
	deg := e.Degree()
	if deg == 0 {
		return nil
	}
	s := e.sim
	if e.sentUni {
		for p := 0; p < deg; p++ {
			if err := e.Send(p, m); err != nil {
				return err
			}
		}
		return nil
	}
	b := s.opts.Bandwidth
	n := int(s.nxBcastN[e.id])
	if n >= b {
		// The per-port expansion would have tripped the bandwidth check
		// at port 0; report the identical violation.
		err := fmt.Errorf("%w: vertex %d port %d round %d (bandwidth %d)",
			ErrBandwidth, e.id, 0, s.round, b)
		s.recordViolation(e.id, err)
		return err
	}
	if n == 0 {
		e.out.bcast = append(e.out.bcast, int32(e.id))
	}
	s.nxBcast[e.id*b+n] = m
	s.nxBcastN[e.id]++
	return nil
}

// materializeBcast expands this vertex's pending compact broadcasts into
// its unicast slots, preserving send order (broadcasts were issued before
// the unicast that triggered the expansion). The slots are necessarily
// empty — compact broadcasts are only accepted while no unicast has been
// sent — and the vertex is necessarily the last entry of its scope's
// bcast log (it appended itself during this same callback, and only the
// scope running this callback appends to this log), so it is popped in
// O(1). Messages are charged at merge time via the dirty slots, exactly
// as if they had been per-port sends all along.
func (e *Env) materializeBcast() {
	s := e.sim
	cnt := int(s.nxBcastN[e.id])
	s.nxBcastN[e.id] = 0
	e.out.bcast = e.out.bcast[:len(e.out.bcast)-1]
	b := s.opts.Bandwidth
	deg := e.Degree()
	for p := 0; p < deg; p++ {
		slot := e.base + p
		e.out.dirty = append(e.out.dirty, int32(slot))
		for k := 0; k < cnt; k++ {
			s.writeNext(slot, k, s.nxBcast[e.id*b+k])
		}
		s.nxCounts[slot] = uint16(cnt)
	}
}

// Halt marks this vertex as idle: its Round method is not invoked again
// until a message arrives. Used for message-driven quiescence.
func (e *Env) Halt() { e.sim.halted[e.id] = true }

// recordViolation keeps the violation with the lowest (round, vertex);
// concurrent engines then report the same error the sequential engine
// would. Run returns at the end of the first violating round, so only
// violations of a single round (plus Init) ever compete.
func (s *Simulator) recordViolation(v int, err error) {
	s.violMu.Lock()
	if s.firstViolation == nil || s.round < s.violRound ||
		(s.round == s.violRound && v < s.violVertex) {
		s.firstViolation = err
		s.violRound, s.violVertex = s.round, v
	}
	s.violMu.Unlock()
}

func (s *Simulator) violation() error {
	s.violMu.Lock()
	defer s.violMu.Unlock()
	return s.firstViolation
}

// Run executes exactly rounds additional rounds (calling Init first if no
// round has run yet) and returns the first model violation, if any.
func (s *Simulator) Run(rounds int) error {
	return s.RunContext(context.Background(), rounds)
}

// RunContext is Run with cancellation: the context is checked at every
// round boundary, so a cancelled or expired context aborts the execution
// within one simulated round and returns ctx.Err(). Determinism is
// preserved by construction — rounds are atomic (a round either fully
// executes on every vertex or not at all), so cancellation can truncate
// an execution but never corrupt one. A cancelled simulator may be Reset
// and reused.
func (s *Simulator) RunContext(ctx context.Context, rounds int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.round == 0 {
		s.runInit()
	}
	for i := 0; i < rounds; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.step()
		if err := s.violation(); err != nil {
			return err
		}
	}
	return s.violation()
}

// RunUntilQuiet executes rounds until no messages are in flight and every
// vertex has halted, up to maxRounds. It returns the number of rounds
// executed and the first violation, if any. If the budget runs out
// before quiescence the error is a *ErrBudgetExhausted carrying the
// pending-message histogram.
//
// Quiescence here is the message-driven kind: a protocol that acts on a
// precomputed round schedule must use Run with its schedule length.
func (s *Simulator) RunUntilQuiet(maxRounds int) (int, error) {
	return s.RunUntilQuietContext(context.Background(), maxRounds)
}

// RunUntilQuietContext is RunUntilQuiet with cancellation checked at
// every round boundary (see RunContext).
func (s *Simulator) RunUntilQuietContext(ctx context.Context, maxRounds int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if s.round == 0 {
		s.runInit()
	}
	start := s.round
	for i := 0; i < maxRounds; i++ {
		if s.quiet() {
			return s.round - start, s.violation()
		}
		if err := ctx.Err(); err != nil {
			return s.round - start, err
		}
		s.step()
		if err := s.violation(); err != nil {
			return s.round - start, err
		}
	}
	if err := s.violation(); err != nil {
		return s.round - start, err
	}
	if !s.quiet() {
		total, byKind := s.Pending()
		return s.round - start, &ErrBudgetExhausted{
			MaxRounds: maxRounds, Pending: total, ByKind: byKind, Active: len(s.active),
		}
	}
	return s.round - start, nil
}

// quiet is O(1): the dirty and broadcaster lists are empty exactly when
// no message is buffered, and the active list is empty exactly when
// every vertex has halted.
func (s *Simulator) quiet() bool {
	return len(s.curDirty) == 0 && len(s.curBcastL) == 0 && len(s.active) == 0
}

func (s *Simulator) runInit() {
	env := &s.seqEnv
	*env = Env{sim: s, out: &s.seqLog}
	for v := 0; v < s.g.N(); v++ {
		env.id = v
		env.base = int(s.g.Offset(v))
		env.sentUni = false
		s.progs[v].Init(env)
		s.collectLog(&s.seqLog)
	}
	s.active = s.active[:0]
	for v := 0; v < s.g.N(); v++ {
		if !s.halted[v] {
			s.active = append(s.active, int32(v))
		}
	}
	s.flip()
}

// step executes one round on the configured engine: derive the frontier
// from the buffered messages and the active list, dispatch Round over
// exactly those vertices, then merge the per-scope send logs and compact
// the active list at the barrier. Total cost is O(frontier + messages),
// independent of n and m.
func (s *Simulator) step() {
	s.round++
	s.buildFrontier()
	switch s.opts.Engine {
	case EngineGoroutine:
		s.stepGoroutine()
	case EngineParallel:
		s.stepParallel()
	default:
		s.stepSequential()
	}
	s.finishRound()
	s.flip()
}

// buildFrontier derives the round's invocation list. Every dirty slot
// names its destination vertex (the CSR adjacency entry at the slot
// index) and port (its twin's offset); every compact broadcaster's
// adjacency range does the same for its neighbors. Destinations are
// deduped with a generation stamp into the mail list, their inboxes
// filled with the hit ports (sorted — the per-vertex hits are few), and
// halted destinations are woken. The broadcast-or-unicast invariant
// guarantees the two walks never hit the same port, so no cross-walk
// dedupe is needed. The frontier is the merge of the two ascending
// disjoint lists: still-active vertices and the woken.
//
// When at least half the slots carry messages the round is effectively
// dense: the inboxes are skipped (gatherInbound probes ports directly)
// and only the wake/mail derivation runs, so dense workloads pay the
// same per-round cost as a dense stepper.
func (s *Simulator) buildFrontier() {
	s.stampGen++
	s.denseGather = 2*(len(s.curDirty)+s.curBcastSlots) >= len(s.twin)
	for _, slot := range s.curDirty {
		d := s.g.AdjAt(int(slot))
		if s.mailStamp[d] != s.stampGen {
			s.mailStamp[d] = s.stampGen
			s.mail = append(s.mail, d)
		}
		if !s.denseGather {
			s.inbox[d] = append(s.inbox[d], s.twin[slot]-s.g.Offset(int(d)))
		}
	}
	for _, u := range s.curBcastL {
		base := int(s.g.Offset(int(u)))
		for i, deg := 0, s.g.Degree(int(u)); i < deg; i++ {
			d := s.g.AdjAt(base + i)
			if s.mailStamp[d] != s.stampGen {
				s.mailStamp[d] = s.stampGen
				s.mail = append(s.mail, d)
			}
			if !s.denseGather {
				s.inbox[d] = append(s.inbox[d], s.twin[base+i]-s.g.Offset(int(d)))
			}
		}
	}
	s.woken = s.woken[:0]
	for _, d := range s.mail {
		if !s.denseGather {
			slices.Sort(s.inbox[d])
		}
		if s.halted[d] {
			s.halted[d] = false
			s.woken = append(s.woken, d)
		}
	}
	slices.Sort(s.woken)
	s.frontier = s.frontier[:0]
	i, j := 0, 0
	for i < len(s.active) && j < len(s.woken) {
		if s.active[i] < s.woken[j] {
			s.frontier = append(s.frontier, s.active[i])
			i++
		} else {
			s.frontier = append(s.frontier, s.woken[j])
			j++
		}
	}
	s.frontier = append(s.frontier, s.active[i:]...)
	s.frontier = append(s.frontier, s.woken[j:]...)
}

// collectLog appends one scope's send log to the global next-round lists
// and charges its messages to the round's traffic (a compact broadcast
// counts deg messages per copy, identical to its per-port expansion).
// The engines call it in ascending frontier order, so the merged lists
// are engine-independent.
func (s *Simulator) collectLog(l *sendLog) {
	if len(l.dirty) > 0 {
		for _, slot := range l.dirty {
			s.roundSent += int64(s.nxCounts[slot])
		}
		s.nxDirty = append(s.nxDirty, l.dirty...)
		l.dirty = l.dirty[:0]
	}
	if len(l.bcast) > 0 {
		for _, u := range l.bcast {
			deg := s.g.Degree(int(u))
			s.roundSent += int64(deg) * int64(s.nxBcastN[u])
			s.nxBcastSlots += deg
		}
		s.nxBcastL = append(s.nxBcastL, l.bcast...)
		l.bcast = l.bcast[:0]
	}
}

// finishRound runs on the coordinator after the round barrier and the
// engine's log merge: drop the vertices that halted during the round
// from the active list and clear the round's inbox state — each step
// O(activity).
func (s *Simulator) finishRound() {
	s.active = s.active[:0]
	for _, v := range s.frontier {
		if !s.halted[v] {
			s.active = append(s.active, v)
		}
	}
	if !s.denseGather {
		for _, d := range s.mail {
			s.inbox[d] = s.inbox[d][:0]
		}
	}
	s.mail = s.mail[:0]
}

// flip swaps the message buffers after a round: what was sent becomes
// deliverable, and the previous round's delivered slots and broadcasters
// — exactly the ones the outgoing lists name — are cleared. Metrics are
// updated here, from the traffic counter the log merge maintained, so
// all engines share the accounting.
func (s *Simulator) flip() {
	sent := s.roundSent
	s.roundSent = 0
	s.metrics.Messages += sent
	if sent > s.metrics.MaxRoundTraffic {
		s.metrics.MaxRoundTraffic = sent
	}
	s.metrics.Rounds = s.round
	s.cur, s.next = s.next, s.cur
	s.curCounts, s.nxCounts = s.nxCounts, s.curCounts
	s.curDirty, s.nxDirty = s.nxDirty, s.curDirty
	s.curBcast, s.nxBcast = s.nxBcast, s.curBcast
	s.curBcastN, s.nxBcastN = s.nxBcastN, s.curBcastN
	s.curBcastL, s.nxBcastL = s.nxBcastL, s.curBcastL
	s.curBcastSlots, s.nxBcastSlots = s.nxBcastSlots, 0
	// The consumed arena's touched pages go back to the pool: the live
	// page set stays proportional to the two-round working set instead
	// of accumulating the whole run's touched-slot union. The pool lock
	// is uncontended here (no round is executing during flip); it only
	// orders these writes against the next round's first touches.
	s.poolMu.Lock()
	for _, slot := range s.nxDirty {
		s.nxCounts[slot] = 0
		pp := &s.next[int(slot)>>s.pageShift]
		if pg := pp.Load(); pg != nil {
			s.pagePool = append(s.pagePool, pg)
			pp.Store(nil)
		}
	}
	s.poolMu.Unlock()
	s.nxDirty = s.nxDirty[:0]
	for _, u := range s.nxBcastL {
		s.nxBcastN[u] = 0
	}
	s.nxBcastL = s.nxBcastL[:0]
}

// gatherInbound collects vertex v's deliverable messages in the
// configured delivery order, driven by v's inbox — the ports the dirty
// slots and broadcasts hit, pre-sorted by buildFrontier — rather than
// probing every port. In dense rounds (denseGather) the inboxes were
// skipped and the ports are probed directly; both paths yield the
// identical slice, since a probed port without messages contributes
// nothing. Per port, the sender's compact broadcasts and the slot's
// unicasts are mutually exclusive (the materialization invariant), so
// the compact store is checked first and the slot only read on miss.
// scratch is reused across calls to avoid per-round allocation.
func (s *Simulator) gatherInbound(v int, scratch []Inbound) []Inbound {
	recv := scratch[:0]
	b := s.opts.Bandwidth
	base := int(s.g.Offset(v))
	appendPort := func(p int) {
		if u := int(s.g.AdjAt(base + p)); s.curBcastN[u] > 0 {
			for k := 0; k < int(s.curBcastN[u]); k++ {
				recv = append(recv, Inbound{Port: p, Msg: s.curBcast[u*b+k]})
			}
			return
		}
		src := int(s.twin[base+p]) // slot of the edge (neighbor -> v)
		if s.curCounts[src] > 0 {
			for _, m := range s.curSlot(src) {
				recv = append(recv, Inbound{Port: p, Msg: m})
			}
		}
	}
	if s.denseGather {
		deg := s.g.Degree(v)
		if s.opts.Delivery == DeliverPortDescending {
			for p := deg - 1; p >= 0; p-- {
				appendPort(p)
			}
		} else {
			for p := 0; p < deg; p++ {
				appendPort(p)
			}
		}
		return recv
	}
	ports := s.inbox[v]
	if s.opts.Delivery == DeliverPortDescending {
		for i := len(ports) - 1; i >= 0; i-- {
			appendPort(int(ports[i]))
		}
	} else {
		for _, p := range ports {
			appendPort(int(p))
		}
	}
	return recv
}

func (s *Simulator) stepSequential() {
	scratch := s.seqScratch
	env := &s.seqEnv
	*env = Env{sim: s, out: &s.seqLog}
	for _, v := range s.frontier {
		recv := s.gatherInbound(int(v), scratch)
		env.id = int(v)
		env.base = int(s.g.Offset(int(v)))
		env.sentUni = false
		s.progs[v].Round(env, recv)
		scratch = recv[:0]
		s.collectLog(&s.seqLog)
	}
	s.seqScratch = scratch
}

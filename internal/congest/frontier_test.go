package congest

import (
	"errors"
	"fmt"
	"testing"

	"nearspan/internal/gen"
	"nearspan/internal/graph"
)

// This file pins the frontier-driven stepper to the dense CONGEST
// semantics with randomized programs: every vertex decides each round —
// via a pure function of (seed, vertex, round, received messages) — which
// ports to send on, whether to halt, and (in violent mode) whether to
// break the model. The same decision function drives both a congest
// Program and denseRef, an independent dense stepper written directly
// from the model definition (probe every port, visit every vertex, wake
// on mail). Identical per-vertex transcripts, metrics, quiescence
// rounds, and violation reports across all engines and the reference
// mean the O(activity) machinery is observationally invisible.

func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fzSend is one decided send; port may be invalid or duplicated in
// violent mode. A broadcast send ignores port and goes out on every
// incident edge — on the Simulator side via Env.Broadcast, so the sweep
// exercises the compact broadcast store, its materialization when a
// unicast follows, and the per-port fallback when one precedes.
type fzSend struct {
	port      int
	kind      uint8
	word      int64
	broadcast bool
}

// fzDecision is what a vertex does in one round.
type fzDecision struct {
	sends []fzSend
	halt  bool
}

// fzConfig shapes the random behavior.
type fzConfig struct {
	seed    uint64
	violent bool // emit invalid-port / over-bandwidth sends
	mixed   bool // mix unicasts before/after broadcasts (legal only at bandwidth >= 2)
	horizon int  // if > 0: no sends and forced halt from this round on (guarantees quiescence)
}

// fzBehavior is the shared pure decision function. round 0 is Init
// (recvHash 0). Sends are a random subset of ports in ascending order
// (each a distinct port, so a bandwidth-1 budget is respected), plus —
// in violent mode, rarely — a duplicate or out-of-range send.
func fzBehavior(cfg fzConfig, v, round int, recvHash uint64, deg int) fzDecision {
	r := splitmix(cfg.seed ^ splitmix(uint64(v)+1) ^ splitmix(uint64(round)+0x5151) ^ recvHash)
	var d fzDecision
	if cfg.horizon > 0 && round >= cfg.horizon {
		d.halt = true
		return d
	}
	send := round == 0 || r%8 != 0 // Init always kickstarts; later rounds mostly send
	if send {
		mask := splitmix(r)
		w := splitmix(mask)
		if mask%5 == 0 { // ~1/5 of sending rounds broadcast instead of unicasting
			w = splitmix(w)
			if cfg.mixed && deg > 0 && (mask>>3)&3 == 0 {
				// A unicast first forces Broadcast down the per-port path.
				d.sends = append(d.sends, fzSend{port: int(mask>>7) % deg, kind: 3, word: int64(w % 512)})
			}
			d.sends = append(d.sends, fzSend{broadcast: true, kind: 1 + uint8(w%3), word: int64(w % 1024)})
			if cfg.mixed && deg > 0 && (mask>>5)&3 == 0 {
				// A unicast after materializes the compact broadcast.
				d.sends = append(d.sends, fzSend{port: int(mask>>9) % deg, kind: 2, word: int64(w % 256)})
			}
		} else {
			for p := 0; p < deg && p < 32; p++ {
				if mask>>(2*p)&3 == 0 { // ~1/4 of ports
					w = splitmix(w)
					d.sends = append(d.sends, fzSend{port: p, kind: 1 + uint8(w%3), word: int64(w % 1024)})
				}
			}
		}
	}
	if cfg.violent && deg > 0 {
		switch x := splitmix(r + 7); x % 97 {
		case 0: // invalid port
			d.sends = append(d.sends, fzSend{port: deg, kind: 1})
		case 1: // duplicate port: a bandwidth violation when Bandwidth == 1
			d.sends = append(d.sends, fzSend{port: int(x>>8) % deg, kind: 1, word: 7})
		}
	}
	d.halt = (r>>9)&1 == 0
	return d
}

// fzHash folds a delivered message list into the order-sensitive hash
// both sides feed back into fzBehavior.
func fzHash(msgs []Inbound) uint64 {
	h := uint64(0x811C9DC5)
	for _, in := range msgs {
		h = splitmix(h ^ uint64(in.Port)<<40 ^ uint64(in.Msg.Kind)<<32 ^ uint64(in.Msg.Words[0]))
	}
	return h
}

// fzProg is the congest-side face of fzBehavior.
type fzProg struct {
	cfg        fzConfig
	transcript uint64
	invoked    int
}

func (p *fzProg) Init(env *Env) {
	p.apply(env, fzBehavior(p.cfg, env.ID(), 0, 0, env.Degree()))
}

func (p *fzProg) Round(env *Env, recv []Inbound) {
	h := fzHash(recv)
	p.transcript = splitmix(p.transcript ^ h ^ uint64(env.Round()))
	p.invoked++
	p.apply(env, fzBehavior(p.cfg, env.ID(), env.Round(), h, env.Degree()))
}

func (p *fzProg) apply(env *Env, d fzDecision) {
	for _, snd := range d.sends {
		m := Message{Kind: snd.kind, Words: [MessageWords]int64{snd.word}}
		if snd.broadcast {
			_ = env.Broadcast(m)
		} else {
			_ = env.Send(snd.port, m)
		}
	}
	if d.halt {
		env.Halt()
	}
}

// denseRef is the reference stepper: a from-scratch dense implementation
// of the synchronous model — per-vertex per-port inboxes, every port
// probed in delivery order, every vertex visited every round, wake on
// mail — sharing no code with the Simulator.
type denseRef struct {
	g        *graph.Graph
	cfg      fzConfig
	bw       int
	delivery DeliveryOrder

	cur, next  [][][]Message // [vertex][port] -> delivered messages
	sentOnPort []int         // per-port send counts of the sending vertex this round
	halted     []bool
	transcript []uint64
	invoked    []int

	round    int
	messages int64
	maxRound int64

	hasViol              bool
	violRound, violVert  int
	violBandwidth        bool // else invalid port
	violPort, violDegree int
}

func newDenseRef(g *graph.Graph, cfg fzConfig, bw int, delivery DeliveryOrder) *denseRef {
	r := &denseRef{g: g, cfg: cfg, bw: bw, delivery: delivery,
		halted:     make([]bool, g.N()),
		transcript: make([]uint64, g.N()),
		invoked:    make([]int, g.N()),
	}
	r.cur = make([][][]Message, g.N())
	r.next = make([][][]Message, g.N())
	for v := 0; v < g.N(); v++ {
		r.cur[v] = make([][]Message, g.Degree(v))
		r.next[v] = make([][]Message, g.Degree(v))
	}
	return r
}

// noteViolation keeps the lowest (round, vertex) violation.
func (r *denseRef) noteViolation(v int, bandwidth bool, port int) {
	if r.hasViol && (r.violRound < r.round || (r.violRound == r.round && r.violVert <= v)) {
		return
	}
	r.hasViol = true
	r.violRound, r.violVert = r.round, v
	r.violBandwidth = bandwidth
	r.violPort, r.violDegree = port, r.g.Degree(v)
}

func (r *denseRef) apply(v int, d fzDecision) {
	deg := r.g.Degree(v)
	r.sentOnPort = r.sentOnPort[:0]
	for p := 0; p < deg; p++ {
		r.sentOnPort = append(r.sentOnPort, 0)
	}
	for _, snd := range d.sends {
		if snd.broadcast {
			// Broadcast is per-port expansion that stops at the first
			// violating port, exactly as Env.Broadcast does.
			for p := 0; p < deg; p++ {
				if r.sentOnPort[p] >= r.bw {
					r.noteViolation(v, true, p)
					break
				}
				r.sentOnPort[p]++
				w := r.g.Neighbor(v, p)
				q := r.g.PortOf(w, v)
				r.next[w][q] = append(r.next[w][q],
					Message{Kind: snd.kind, Words: [MessageWords]int64{snd.word}})
				r.messages++
			}
			continue
		}
		if snd.port < 0 || snd.port >= deg {
			r.noteViolation(v, false, snd.port)
			continue
		}
		if r.sentOnPort[snd.port] >= r.bw {
			r.noteViolation(v, true, snd.port)
			continue
		}
		r.sentOnPort[snd.port]++
		w := r.g.Neighbor(v, snd.port)
		q := r.g.PortOf(w, v)
		r.next[w][q] = append(r.next[w][q],
			Message{Kind: snd.kind, Words: [MessageWords]int64{snd.word}})
		r.messages++
	}
	if d.halt {
		r.halted[v] = true
	}
}

func (r *denseRef) flip() {
	var sent int64
	for v := range r.next {
		for p := range r.next[v] {
			sent += int64(len(r.next[v][p]))
		}
	}
	if sent > r.maxRound {
		r.maxRound = sent
	}
	r.cur, r.next = r.next, r.cur
	for v := range r.next {
		for p := range r.next[v] {
			r.next[v][p] = r.next[v][p][:0]
		}
	}
}

func (r *denseRef) init() {
	for v := 0; v < r.g.N(); v++ {
		r.apply(v, fzBehavior(r.cfg, v, 0, 0, r.g.Degree(v)))
	}
	r.flip()
}

func (r *denseRef) gather(v int) []Inbound {
	var recv []Inbound
	appendPort := func(p int) {
		for _, m := range r.cur[v][p] {
			recv = append(recv, Inbound{Port: p, Msg: m})
		}
	}
	if r.delivery == DeliverPortDescending {
		for p := r.g.Degree(v) - 1; p >= 0; p-- {
			appendPort(p)
		}
	} else {
		for p := 0; p < r.g.Degree(v); p++ {
			appendPort(p)
		}
	}
	return recv
}

func (r *denseRef) step() {
	r.round++
	for v := 0; v < r.g.N(); v++ {
		recv := r.gather(v)
		if len(recv) > 0 {
			r.halted[v] = false
		}
		if r.halted[v] {
			continue
		}
		h := fzHash(recv)
		r.transcript[v] = splitmix(r.transcript[v] ^ h ^ uint64(r.round))
		r.invoked[v]++
		r.apply(v, fzBehavior(r.cfg, v, r.round, h, r.g.Degree(v)))
	}
	r.flip()
}

func (r *denseRef) quiet() bool {
	for v := range r.cur {
		for p := range r.cur[v] {
			if len(r.cur[v][p]) > 0 {
				return false
			}
		}
	}
	for _, h := range r.halted {
		if !h {
			return false
		}
	}
	return true
}

// run mirrors Simulator.Run: Init, then up to maxRounds rounds, stopping
// at the end of the round in which the first violation occurred (an Init
// violation still executes round 1, as Run does). Returns executed
// rounds.
func (r *denseRef) run(maxRounds int) int {
	r.init()
	for i := 0; i < maxRounds; i++ {
		r.step()
		if r.hasViol && r.violRound <= r.round {
			break
		}
	}
	return r.round
}

// runUntilQuiet mirrors Simulator.RunUntilQuiet.
func (r *denseRef) runUntilQuiet(maxRounds int) int {
	r.init()
	for i := 0; i < maxRounds; i++ {
		if r.quiet() {
			break
		}
		r.step()
		if r.hasViol && r.violRound <= r.round {
			break
		}
	}
	return r.round
}

// wantViolation reproduces the exact violation error string the
// Simulator reports, so reference and engines can be compared verbatim.
func (r *denseRef) wantViolation() string {
	if !r.hasViol {
		return ""
	}
	if r.violBandwidth {
		return fmt.Sprintf("%v: vertex %d port %d round %d (bandwidth %d)",
			ErrBandwidth, r.violVert, r.violPort, r.violRound, r.bw)
	}
	return fmt.Sprintf("%v: vertex %d port %d (degree %d)",
		ErrPort, r.violVert, r.violPort, r.violDegree)
}

// fzGraphs are the comparison topologies: a hub (port fan-in), a path
// (long quiet tails), a grid, and a random graph.
func fzGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"star":  gen.Star(9),
		"path":  gen.Path(17),
		"grid":  gen.Grid(6, 7),
		"gnp":   gen.GNP(48, 0.12, 5, true),
		"torus": gen.Torus(5, 5),
	}
}

func fzEngines() map[string]Options {
	return map[string]Options{
		"sequential":  {Engine: EngineSequential},
		"parallel":    {Engine: EngineParallel},
		"parallel-w5": {Engine: EngineParallel, Workers: 5},
		"goroutine":   {Engine: EngineGoroutine},
	}
}

// compareRun executes the fuzz program on one engine and checks every
// observable against the dense reference.
func compareRun(t *testing.T, g *graph.Graph, cfg fzConfig, opts Options, label string,
	untilQuiet bool, maxRounds int) (violated bool) {
	t.Helper()
	ref := newDenseRef(g, cfg, max(opts.Bandwidth, 1), opts.Delivery)
	var wantRounds int
	if untilQuiet {
		wantRounds = ref.runUntilQuiet(maxRounds)
	} else {
		wantRounds = ref.run(maxRounds)
	}

	sim, err := NewUniform(g, func(v int) Program { return &fzProg{cfg: cfg} }, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	var runErr error
	if untilQuiet {
		_, runErr = sim.RunUntilQuiet(maxRounds)
	} else {
		runErr = sim.Run(maxRounds)
	}

	if want := ref.wantViolation(); want != "" {
		if runErr == nil || runErr.Error() != want {
			t.Errorf("%s: violation = %v, reference %q", label, runErr, want)
		}
	} else if runErr != nil {
		var be *ErrBudgetExhausted
		if !untilQuiet || !errors.As(runErr, &be) {
			t.Errorf("%s: unexpected error %v", label, runErr)
		}
	}
	if got := sim.Round(); got != wantRounds {
		t.Errorf("%s: executed %d rounds, reference %d", label, got, wantRounds)
	}
	m := sim.Metrics()
	if m.Messages != ref.messages || m.MaxRoundTraffic != ref.maxRound || m.Rounds != ref.round {
		t.Errorf("%s: metrics %+v, reference {Rounds:%d Messages:%d MaxRoundTraffic:%d}",
			label, m, ref.round, ref.messages, ref.maxRound)
	}
	for v := 0; v < g.N(); v++ {
		p := sim.Program(v).(*fzProg)
		if p.invoked != ref.invoked[v] {
			t.Errorf("%s vertex %d: invoked %d rounds, reference %d", label, v, p.invoked, ref.invoked[v])
		}
		if p.transcript != ref.transcript[v] {
			t.Errorf("%s vertex %d: transcript %x, reference %x", label, v, p.transcript, ref.transcript[v])
		}
	}
	return ref.hasViol
}

// TestFrontierMatchesDenseReference is the property test: randomized
// Halt/wake/send programs produce identical executions on the frontier
// stepper (all engines, both delivery orders, bandwidth 1 and 2) and the
// dense reference.
func TestFrontierMatchesDenseReference(t *testing.T) {
	for gname, g := range fzGraphs() {
		for ename, opts := range fzEngines() {
			for seed := uint64(1); seed <= 5; seed++ {
				cfg := fzConfig{seed: seed}
				label := fmt.Sprintf("%s/%s/seed%d", gname, ename, seed)
				compareRun(t, g, cfg, opts, label, false, 12)
			}
		}
	}
}

// TestFrontierMatchesDenseReferenceViolent checks that model violations
// from random rounds — the one place the engines race — are reported
// with the identical canonical error, and that the run stops at the
// reference round.
func TestFrontierMatchesDenseReferenceViolent(t *testing.T) {
	violations := 0
	for gname, g := range fzGraphs() {
		for ename, opts := range fzEngines() {
			for seed := uint64(1); seed <= 6; seed++ {
				cfg := fzConfig{seed: seed, violent: true}
				label := fmt.Sprintf("%s/%s/seed%d", gname, ename, seed)
				if compareRun(t, g, cfg, opts, label, false, 10) {
					violations++
				}
			}
		}
	}
	// The sweep must actually exercise the violation path, or the
	// canonical-error comparison above is vacuous.
	if violations == 0 {
		t.Error("no violent seed produced a model violation — widen the sweep")
	}
}

// TestFrontierQuiescenceMatchesDenseReference winds the traffic down at
// a horizon and checks RunUntilQuiet agrees with the reference on the
// exact quiescence round — the O(1) quiet() against the dense scan.
func TestFrontierQuiescenceMatchesDenseReference(t *testing.T) {
	for gname, g := range fzGraphs() {
		for ename, opts := range fzEngines() {
			for seed := uint64(1); seed <= 4; seed++ {
				cfg := fzConfig{seed: seed, horizon: 7}
				label := fmt.Sprintf("%s/%s/seed%d", gname, ename, seed)
				compareRun(t, g, cfg, opts, label, true, 200)
			}
		}
	}
}

// TestFrontierDeliveryAndBandwidthVariants covers the delivery-order and
// bandwidth dimensions against the reference (sequential engine; the
// engine dimension is covered above).
func TestFrontierDeliveryAndBandwidthVariants(t *testing.T) {
	g := gen.GNP(40, 0.15, 11, true)
	variants := map[string]Options{
		"descending":   {Delivery: DeliverPortDescending},
		"bandwidth2":   {Bandwidth: 2},
		"desc-bw2-par": {Delivery: DeliverPortDescending, Bandwidth: 2, Engine: EngineParallel},
		"mixed-bw1":    {}, // broadcast+unicast mixes violate at bandwidth 1
	}
	for vname, opts := range variants {
		for seed := uint64(1); seed <= 4; seed++ {
			cfg := fzConfig{seed: seed, violent: vname == "bandwidth2", mixed: vname != "descending"}
			compareRun(t, g, cfg, opts, fmt.Sprintf("%s/seed%d", vname, seed), false, 12)
		}
	}
}

// FuzzFrontierVsDense lets the fuzzer drive the seed, topology, and mode
// through the same comparison.
func FuzzFrontierVsDense(f *testing.F) {
	f.Add(uint64(42), uint8(0), uint8(0))
	f.Add(uint64(7), uint8(1), uint8(1))
	f.Add(uint64(0xDEAD), uint8(2), uint8(2))
	graphs := []*graph.Graph{
		gen.Star(8), gen.Path(13), gen.Grid(4, 5), gen.GNP(32, 0.15, 3, true),
	}
	f.Fuzz(func(t *testing.T, seed uint64, mode, gpick uint8) {
		g := graphs[int(gpick)%len(graphs)]
		cfg := fzConfig{seed: seed, violent: mode%3 == 1}
		if mode%3 == 2 {
			cfg.horizon = 6
		}
		for ename, opts := range fzEngines() {
			if ename == "goroutine" && testing.Short() {
				continue
			}
			compareRun(t, g, cfg, opts, ename, cfg.horizon > 0, 12)
		}
	})
}

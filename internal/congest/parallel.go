package congest

import (
	"fmt"
	"sync"
)

const (
	// minShardVertices keeps shards coarse enough that the per-shard
	// dispatch cost (one atomic increment on the work cursor) stays
	// negligible next to the program work inside the shard.
	minShardVertices = 16
	// shardsPerWorker oversubscribes shards relative to workers so the
	// work-stealing cursor can rebalance uneven shard costs (e.g.
	// degree-skewed graphs where a few shards hold the hubs).
	shardsPerWorker = 4
)

// inlineFrontierCutoff is the frontier size below which the round runs
// as a single shard on the coordinating goroutine instead of being
// submitted to the runtime: for small frontiers the batch dispatch and
// barrier cost more than the round's program work, and on small graphs
// (~10³ vertices) that overhead made EngineParallel slower than
// EngineSequential. The inline path is the shards=1 execution with the
// Runtime.Do round-trip removed, so the output is bit-identical. A var
// only so tests can force either path.
var inlineFrontierCutoff = 2048

// shardState is one shard's private mutable state for a round: its send
// log, its gather scratch buffer, and its reusable vertex handle. Each
// shardState is a separate heap allocation padded past a cache line, so
// two workers appending to adjacent shards' logs or rewriting adjacent
// shards' Envs never contend on a line — the shard-affine layout that
// keeps large dense rounds from false-sharing. (Before this layout the
// per-vertex Env array interleaved every shard's dirty-list headers.)
type shardState struct {
	log     sendLog
	scratch []Inbound
	env     Env
	_       [64]byte
}

// parallelShards is EngineParallel's per-simulator state. Execution
// happens on the shared runtime (Options.Runtime): each round the
// coordinator submits one batch of shards via sched.Runtime.Do, and
// whichever runtime workers are free — plus the coordinating goroutine
// itself — claim shards off the batch cursor. The simulator therefore
// owns no goroutines of its own; any number of concurrent simulators
// share the runtime's bounded pool.
//
// Shards are frontier-sized: each round the frontier list is cut into
// contiguous index ranges, so a round with f active vertices submits
// O(f/shardSize) shards regardless of n. The shard layout is a pure
// function of len(frontier) and the worker bound, hence deterministic.
//
// Determinism of the execution itself is structural, not scheduled: a
// message's position in the next-round buffer is a pure function of its
// sender vertex and port (the CSR slot layout), so each shard writes a
// disjoint, pre-reserved region of the outbound buffer, and each
// shard's send log is appended only by the worker running that shard.
// The coordinator merges the shard logs in ascending shard order at the
// round barrier — shards cover ascending frontier ranges and run their
// vertices in order, so the merged lists equal a sequential round's no
// matter which workers ran which shards. (Arena pages allocated on
// first touch use compare-and-swap: which worker allocates a shared
// page is racy, but the touched-page set is deterministic, so the
// resulting arena is too.) The remaining order-sensitive observables
// are canonicalized to the lowest (round, vertex): the reported
// violation error matches EngineSequential's exactly, and the re-raised
// panic names the vertex the sequential engine would have hit first
// (wrapped in a formatted value — the sequential engine propagates the
// program's raw panic value and stops mid-round, which a shared pool
// cannot reproduce).
type parallelShards struct {
	workers int           // resolved shard fan-out bound, fixed per simulator
	shards  []*shardState // per-shard state, grown on demand

	panicMu     sync.Mutex
	panicVertex int
	panicked    any
}

func (ps *parallelShards) recordPanic(v int, r any) {
	ps.panicMu.Lock()
	if ps.panicked == nil || v < ps.panicVertex {
		ps.panicked = fmt.Sprintf("vertex %d: %v", v, r)
		ps.panicVertex = v
	}
	ps.panicMu.Unlock()
}

func (s *Simulator) initShards() {
	workers := s.opts.Workers
	if workers <= 0 {
		workers = s.opts.Runtime.Workers()
	}
	if workers < 1 {
		workers = 1
	}
	s.par = &parallelShards{workers: workers}
}

// runShard executes one round for every frontier vertex in index range
// [lo, hi), in frontier (ascending vertex) order. A panicking vertex
// aborts its shard (the coordinator re-raises the lowest panicking
// vertex after the round barrier, so nothing downstream observes the
// partial state).
func (s *Simulator) runShard(ps *parallelShards, lo, hi int, st *shardState) {
	v := int(s.frontier[lo])
	defer func() {
		if r := recover(); r != nil {
			ps.recordPanic(v, r)
		}
	}()
	env := &st.env
	*env = Env{sim: s, out: &st.log}
	scratch := st.scratch
	for j := lo; j < hi; j++ {
		v = int(s.frontier[j])
		recv := s.gatherInbound(v, scratch)
		env.id = v
		env.base = int(s.g.Offset(v))
		env.sentUni = false
		s.progs[v].Round(env, recv)
		scratch = recv[:0]
	}
	st.scratch = scratch
}

func (s *Simulator) stepParallel() {
	if s.par == nil {
		s.initShards()
	}
	ps := s.par
	n := len(s.frontier)
	if n == 0 {
		return
	}
	if n <= inlineFrontierCutoff {
		if len(ps.shards) == 0 {
			ps.shards = append(ps.shards, &shardState{})
		}
		s.runShard(ps, 0, n, ps.shards[0])
		if ps.panicked != nil { // inline: no other writers, no lock needed
			s.Close()
			panic(ps.panicked)
		}
		s.collectLog(&ps.shards[0].log)
		return
	}
	workers := ps.workers
	if workers > n {
		workers = n
	}
	size := (n + workers*shardsPerWorker - 1) / (workers * shardsPerWorker)
	if size < minShardVertices {
		size = minShardVertices
	}
	shards := (n + size - 1) / size
	for len(ps.shards) < shards {
		ps.shards = append(ps.shards, &shardState{})
	}
	s.opts.Runtime.Do(shards, func(i int) {
		lo := i * size
		hi := min(lo+size, n)
		s.runShard(ps, lo, hi, ps.shards[i])
	})
	ps.panicMu.Lock()
	p := ps.panicked
	ps.panicMu.Unlock()
	if p != nil {
		s.Close()
		panic(p) // re-raise program panics on the coordinating goroutine
	}
	// Merge in shard order = ascending frontier order: bit-identical to
	// the sequential engine's per-vertex merge.
	for i := 0; i < shards; i++ {
		s.collectLog(&ps.shards[i].log)
	}
}

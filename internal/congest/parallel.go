package congest

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

const (
	// minShardVertices keeps shards coarse enough that the per-shard
	// dispatch cost (one atomic increment on the work cursor) stays
	// negligible next to the program work inside the shard.
	minShardVertices = 16
	// shardsPerWorker oversubscribes shards relative to workers so the
	// work-stealing cursor can rebalance uneven shard costs (e.g.
	// degree-skewed graphs where a few shards hold the hubs).
	shardsPerWorker = 4
)

// shardPool hosts the fixed worker set of EngineParallel. Vertices are
// partitioned into contiguous shards; each round the coordinator resets
// the shard cursor, releases every worker, and waits on the barrier while
// workers claim shards off the cursor and run their vertices.
//
// Determinism is structural, not scheduled: a message's position in the
// next-round buffer is a pure function of its sender vertex and port (the
// CSR slot layout), so each shard writes a disjoint, pre-reserved region
// of the outbound buffer — the per-shard outbound buffers of the design
// are merged at the round barrier by construction, with zero copying.
// Whatever order the scheduler runs shards in, the buffer contents after
// the barrier are bit-identical to a sequential round. The remaining
// order-sensitive observables are canonicalized to the lowest (round,
// vertex): the reported violation error matches EngineSequential's
// exactly, and the re-raised panic names the vertex the sequential
// engine would have hit first (wrapped in a formatted value — the
// sequential engine propagates the program's raw panic value and stops
// mid-round, which a worker pool cannot reproduce).
type shardPool struct {
	shards [][2]int32 // [lo, hi) vertex ranges, in vertex order
	cursor atomic.Int64

	start     []chan struct{} // one per worker
	barrier   sync.WaitGroup  // round completion
	lifetime  sync.WaitGroup  // worker shutdown
	closeOnce sync.Once

	panicMu     sync.Mutex
	panicVertex int
	panicked    any
}

func (sp *shardPool) recordPanic(v int, r any) {
	sp.panicMu.Lock()
	if sp.panicked == nil || v < sp.panicVertex {
		sp.panicked = fmt.Sprintf("vertex %d: %v", v, r)
		sp.panicVertex = v
	}
	sp.panicMu.Unlock()
}

func (s *Simulator) startShardPool() {
	n := s.g.N()
	workers := s.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	size := (n + workers*shardsPerWorker - 1) / (workers * shardsPerWorker)
	if size < minShardVertices {
		size = minShardVertices
	}
	sp := &shardPool{start: make([]chan struct{}, workers)}
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		sp.shards = append(sp.shards, [2]int32{int32(lo), int32(hi)})
	}
	for w := range sp.start {
		sp.start[w] = make(chan struct{})
	}
	sp.lifetime.Add(workers)
	for w := 0; w < workers; w++ {
		go s.shardWorker(sp, w)
	}
	s.pool = sp
}

func (s *Simulator) shardWorker(sp *shardPool, w int) {
	defer sp.lifetime.Done()
	scratch := make([]Inbound, 0, 64)
	for range sp.start[w] {
		for {
			i := int(sp.cursor.Add(1)) - 1
			if i >= len(sp.shards) {
				break
			}
			scratch = s.runShard(sp, sp.shards[i], scratch)
		}
		sp.barrier.Done()
	}
}

// runShard executes one round for every vertex of the shard, in vertex
// order. A panicking vertex aborts its shard (the pool re-raises the
// lowest panicking vertex at the barrier, so nothing downstream observes
// the partial state).
func (s *Simulator) runShard(sp *shardPool, sh [2]int32, scratch []Inbound) []Inbound {
	v := int(sh[0])
	defer func() {
		if r := recover(); r != nil {
			sp.recordPanic(v, r)
		}
	}()
	for ; v < int(sh[1]); v++ {
		recv := s.gatherInbound(v, scratch)
		if len(recv) > 0 {
			s.halted[v] = false
		}
		if !s.halted[v] {
			s.progs[v].Round(&s.envs[v], recv)
		}
		scratch = recv[:0]
	}
	return scratch
}

func (s *Simulator) stepParallel() {
	if s.pool == nil {
		s.startShardPool()
	}
	sp := s.pool
	sp.cursor.Store(0)
	sp.barrier.Add(len(sp.start))
	for _, ch := range sp.start {
		ch <- struct{}{}
	}
	sp.barrier.Wait()
	sp.panicMu.Lock()
	p := sp.panicked
	sp.panicMu.Unlock()
	if p != nil {
		s.Close()
		panic(p) // re-raise program panics on the coordinating goroutine
	}
}

func (sp *shardPool) close() {
	sp.closeOnce.Do(func() {
		for _, ch := range sp.start {
			close(ch)
		}
		sp.lifetime.Wait()
	})
}

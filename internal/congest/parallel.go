package congest

import (
	"fmt"
	"sync"
)

const (
	// minShardVertices keeps shards coarse enough that the per-shard
	// dispatch cost (one atomic increment on the work cursor) stays
	// negligible next to the program work inside the shard.
	minShardVertices = 16
	// shardsPerWorker oversubscribes shards relative to workers so the
	// work-stealing cursor can rebalance uneven shard costs (e.g.
	// degree-skewed graphs where a few shards hold the hubs).
	shardsPerWorker = 4
)

// parallelShards is EngineParallel's per-simulator state. Execution
// happens on the shared runtime (Options.Runtime): each round the
// coordinator submits one batch of shards via sched.Runtime.Do, and
// whichever runtime workers are free — plus the coordinating goroutine
// itself — claim shards off the batch cursor. The simulator therefore
// owns no goroutines of its own; any number of concurrent simulators
// share the runtime's bounded pool.
//
// Shards are frontier-sized: each round the frontier list is cut into
// contiguous index ranges, so a round with f active vertices submits
// O(f/shardSize) shards regardless of n. The shard layout is a pure
// function of len(frontier) and the worker bound, hence deterministic.
//
// Determinism of the execution itself is structural, not scheduled: a
// message's position in the next-round buffer is a pure function of its
// sender vertex and port (the CSR slot layout), so each shard writes a
// disjoint, pre-reserved region of the outbound buffer, and each
// vertex's dirty sublist is appended only by the worker running that
// vertex. The coordinator merges the per-vertex sublists in ascending
// frontier order at the round barrier, so the merged dirty list is
// bit-identical to a sequential round no matter which workers ran which
// shards. The remaining order-sensitive observables are canonicalized to
// the lowest (round, vertex): the reported violation error matches
// EngineSequential's exactly, and the re-raised panic names the vertex
// the sequential engine would have hit first (wrapped in a formatted
// value — the sequential engine propagates the program's raw panic value
// and stops mid-round, which a shared pool cannot reproduce).
type parallelShards struct {
	workers int         // resolved shard fan-out bound, fixed per simulator
	scratch [][]Inbound // per-shard gather buffers, grown on demand

	panicMu     sync.Mutex
	panicVertex int
	panicked    any
}

func (ps *parallelShards) recordPanic(v int, r any) {
	ps.panicMu.Lock()
	if ps.panicked == nil || v < ps.panicVertex {
		ps.panicked = fmt.Sprintf("vertex %d: %v", v, r)
		ps.panicVertex = v
	}
	ps.panicMu.Unlock()
}

func (s *Simulator) initShards() {
	workers := s.opts.Workers
	if workers <= 0 {
		workers = s.opts.Runtime.Workers()
	}
	if workers < 1 {
		workers = 1
	}
	s.par = &parallelShards{workers: workers}
}

// runShard executes one round for every frontier vertex in index range
// [lo, hi), in frontier (ascending vertex) order. A panicking vertex
// aborts its shard (the coordinator re-raises the lowest panicking
// vertex after the round barrier, so nothing downstream observes the
// partial state).
func (s *Simulator) runShard(ps *parallelShards, lo, hi int, scratch []Inbound) []Inbound {
	v := int(s.frontier[lo])
	defer func() {
		if r := recover(); r != nil {
			ps.recordPanic(v, r)
		}
	}()
	for j := lo; j < hi; j++ {
		v = int(s.frontier[j])
		recv := s.gatherInbound(v, scratch)
		s.progs[v].Round(&s.envs[v], recv)
		scratch = recv[:0]
	}
	return scratch
}

func (s *Simulator) stepParallel() {
	if s.par == nil {
		s.initShards()
	}
	ps := s.par
	n := len(s.frontier)
	if n == 0 {
		return
	}
	workers := ps.workers
	if workers > n {
		workers = n
	}
	size := (n + workers*shardsPerWorker - 1) / (workers * shardsPerWorker)
	if size < minShardVertices {
		size = minShardVertices
	}
	shards := (n + size - 1) / size
	for len(ps.scratch) < shards {
		ps.scratch = append(ps.scratch, nil)
	}
	s.opts.Runtime.Do(shards, func(i int) {
		lo := i * size
		hi := min(lo+size, n)
		ps.scratch[i] = s.runShard(ps, lo, hi, ps.scratch[i])
	})
	ps.panicMu.Lock()
	p := ps.panicked
	ps.panicMu.Unlock()
	if p != nil {
		s.Close()
		panic(p) // re-raise program panics on the coordinating goroutine
	}
}

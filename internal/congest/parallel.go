package congest

import (
	"fmt"
	"sync"
)

const (
	// minShardVertices keeps shards coarse enough that the per-shard
	// dispatch cost (one atomic increment on the work cursor) stays
	// negligible next to the program work inside the shard.
	minShardVertices = 16
	// shardsPerWorker oversubscribes shards relative to workers so the
	// work-stealing cursor can rebalance uneven shard costs (e.g.
	// degree-skewed graphs where a few shards hold the hubs).
	shardsPerWorker = 4
)

// parallelShards is EngineParallel's per-simulator state. Execution
// happens on the shared runtime (Options.Runtime): each round the
// coordinator submits one batch of shards via sched.Runtime.Do, and
// whichever runtime workers are free — plus the coordinating goroutine
// itself — claim shards off the batch cursor. The simulator therefore
// owns no goroutines of its own; any number of concurrent simulators
// share the runtime's bounded pool.
//
// Determinism is structural, not scheduled: a message's position in the
// next-round buffer is a pure function of its sender vertex and port (the
// CSR slot layout), so each shard writes a disjoint, pre-reserved region
// of the outbound buffer — the per-shard outbound buffers of the design
// are merged at the round barrier by construction, with zero copying.
// Whatever order the runtime runs shards in, the buffer contents after
// the barrier are bit-identical to a sequential round. The remaining
// order-sensitive observables are canonicalized to the lowest (round,
// vertex): the reported violation error matches EngineSequential's
// exactly, and the re-raised panic names the vertex the sequential
// engine would have hit first (wrapped in a formatted value — the
// sequential engine propagates the program's raw panic value and stops
// mid-round, which a shared pool cannot reproduce).
type parallelShards struct {
	shards  [][2]int32  // [lo, hi) vertex ranges, in vertex order
	scratch [][]Inbound // per-shard gather buffers, reused across rounds

	panicMu     sync.Mutex
	panicVertex int
	panicked    any
}

func (ps *parallelShards) recordPanic(v int, r any) {
	ps.panicMu.Lock()
	if ps.panicked == nil || v < ps.panicVertex {
		ps.panicked = fmt.Sprintf("vertex %d: %v", v, r)
		ps.panicVertex = v
	}
	ps.panicMu.Unlock()
}

func (s *Simulator) initShards() {
	n := s.g.N()
	workers := s.opts.Workers
	if workers <= 0 {
		workers = s.opts.Runtime.Workers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	size := (n + workers*shardsPerWorker - 1) / (workers * shardsPerWorker)
	if size < minShardVertices {
		size = minShardVertices
	}
	ps := &parallelShards{}
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		ps.shards = append(ps.shards, [2]int32{int32(lo), int32(hi)})
	}
	ps.scratch = make([][]Inbound, len(ps.shards))
	s.par = ps
}

// runShard executes one round for every vertex of the shard, in vertex
// order. A panicking vertex aborts its shard (the coordinator re-raises
// the lowest panicking vertex after the round barrier, so nothing
// downstream observes the partial state).
func (s *Simulator) runShard(ps *parallelShards, sh [2]int32, scratch []Inbound) []Inbound {
	v := int(sh[0])
	defer func() {
		if r := recover(); r != nil {
			ps.recordPanic(v, r)
		}
	}()
	for ; v < int(sh[1]); v++ {
		recv := s.gatherInbound(v, scratch)
		if len(recv) > 0 {
			s.halted[v] = false
		}
		if !s.halted[v] {
			s.progs[v].Round(&s.envs[v], recv)
		}
		scratch = recv[:0]
	}
	return scratch
}

func (s *Simulator) stepParallel() {
	if s.par == nil {
		s.initShards()
	}
	ps := s.par
	s.opts.Runtime.Do(len(ps.shards), func(i int) {
		ps.scratch[i] = s.runShard(ps, ps.shards[i], ps.scratch[i])
	})
	ps.panicMu.Lock()
	p := ps.panicked
	ps.panicMu.Unlock()
	if p != nil {
		s.Close()
		panic(p) // re-raise program panics on the coordinating goroutine
	}
}

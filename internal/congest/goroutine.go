package congest

import (
	"fmt"
	"sync"
)

// workerPool hosts one long-lived goroutine per vertex. Each round the
// coordinator releases only the frontier's workers through their start
// channels and waits on the barrier — a round costs O(frontier) channel
// operations, not O(n); workers of halted, mail-less vertices stay
// parked. Workers process their vertex's inbound messages and report
// back. Memory safety without locks follows from disjoint write sets:
// worker v writes only v's outbound slots, send log (glogs[v]), halted
// flag, and program state, and reads the (frozen) cur buffer and inbox;
// the coordinator merges the logs in frontier order after the barrier.
type workerPool struct {
	start     []chan struct{}
	barrier   sync.WaitGroup // round completion
	lifetime  sync.WaitGroup // worker shutdown
	closeOnce sync.Once

	panicMu     sync.Mutex
	panicVertex int
	panicked    any
}

// recordPanic keeps the panic of the lowest vertex — the one the
// sequential engine would hit first — so the re-raised value is
// deterministic when several vertices panic in one round.
func (wp *workerPool) recordPanic(v int, r any) {
	wp.panicMu.Lock()
	if wp.panicked == nil || v < wp.panicVertex {
		wp.panicked = fmt.Sprintf("vertex %d: %v", v, r)
		wp.panicVertex = v
	}
	wp.panicMu.Unlock()
}

func (s *Simulator) startWorkers() {
	wp := &workerPool{start: make([]chan struct{}, s.g.N())}
	for v := 0; v < s.g.N(); v++ {
		wp.start[v] = make(chan struct{})
	}
	s.glogs = make([]sendLog, s.g.N())
	wp.lifetime.Add(s.g.N())
	for v := 0; v < s.g.N(); v++ {
		go s.worker(wp, v)
	}
	s.workers = wp
}

func (s *Simulator) worker(wp *workerPool, v int) {
	defer wp.lifetime.Done()
	scratch := make([]Inbound, 0, 16)
	env := Env{sim: s, out: &s.glogs[v], id: v, base: int(s.g.Offset(v))}
	for range wp.start[v] {
		func() {
			defer func() {
				if r := recover(); r != nil {
					wp.recordPanic(v, r)
				}
				wp.barrier.Done()
			}()
			// Being released means this vertex is in the frontier: the
			// coordinator already handled waking, so the worker just runs.
			recv := s.gatherInbound(v, scratch)
			env.sentUni = false
			s.progs[v].Round(&env, recv)
			scratch = recv[:0]
		}()
	}
}

func (s *Simulator) stepGoroutine() {
	if s.workers == nil {
		s.startWorkers()
	}
	wp := s.workers
	wp.barrier.Add(len(s.frontier))
	for _, v := range s.frontier {
		wp.start[v] <- struct{}{}
	}
	wp.barrier.Wait()
	wp.panicMu.Lock()
	p := wp.panicked
	wp.panicMu.Unlock()
	if p != nil {
		s.Close()
		panic(p) // re-raise program panics on the coordinating goroutine
	}
	for _, v := range s.frontier {
		s.collectLog(&s.glogs[v])
	}
}

// Close releases the per-vertex worker goroutines of the goroutine
// engine. It is safe to call multiple times and is a no-op for the
// other engines: the sequential engine owns no goroutines, and the
// parallel engine executes on the shared runtime (whose lifecycle
// belongs to sched.Runtime.Close, not to any one simulator). A closed
// goroutine-engine simulator must not be run (or Reset and run) again:
// its workers are gone for good.
func (s *Simulator) Close() {
	if s.workers != nil {
		s.workers.closeOnce.Do(func() {
			for _, ch := range s.workers.start {
				close(ch)
			}
			s.workers.lifetime.Wait()
		})
	}
}

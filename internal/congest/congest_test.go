package congest

import (
	"errors"
	"testing"

	"nearspan/internal/gen"
	"nearspan/internal/graph"
)

// floodProg broadcasts a token from a source; every vertex forwards it the
// round after first hearing it, then halts. dist records the round of
// first receipt, which equals graph distance from the source.
type floodProg struct {
	src  bool
	dist int
}

const kindToken = 1

func (f *floodProg) Init(env *Env) {
	if f.src {
		f.dist = 0
		_ = env.Broadcast(Message{Kind: kindToken})
	} else {
		f.dist = -1
	}
	env.Halt()
}

func (f *floodProg) Round(env *Env, recv []Inbound) {
	if f.dist < 0 && len(recv) > 0 {
		f.dist = env.Round()
		_ = env.Broadcast(Message{Kind: kindToken})
	}
	env.Halt()
}

func newFlood(src int) func(v int) Program {
	return func(v int) Program { return &floodProg{src: v == src} }
}

func runFlood(t *testing.T, g *graph.Graph, src int, opts Options) (*Simulator, []int) {
	t.Helper()
	sim, err := NewUniform(g, newFlood(src), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if _, err := sim.RunUntilQuiet(10 * g.N()); err != nil {
		t.Fatal(err)
	}
	dists := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		dists[v] = sim.Program(v).(*floodProg).dist
	}
	return sim, dists
}

func TestFloodComputesBFSDistances(t *testing.T) {
	g := gen.Grid(6, 7)
	_, dists := runFlood(t, g, 0, Options{})
	want := g.BFS(0)
	for v := 0; v < g.N(); v++ {
		if int32(dists[v]) != want[v] {
			t.Errorf("vertex %d: flood dist %d, BFS dist %d", v, dists[v], want[v])
		}
	}
}

func TestFloodQuiescesAtEccentricity(t *testing.T) {
	g := gen.Path(15)
	sim, _ := runFlood(t, g, 0, Options{})
	// Last receipt at round 14; it forwards in round 14 (delivered 15);
	// round 15 processes and halts; quiescence check then stops.
	if got := sim.Round(); got < 14 || got > 16 {
		t.Errorf("flood on path took %d rounds, want ~15", got)
	}
}

// idExchangeProg sends this vertex's ID on every port and verifies that
// the arrival ports match the simulator's NeighborID map — this pins the
// twin-slot (reverse edge) wiring.
type idExchangeProg struct {
	ok       bool
	received int
}

func (p *idExchangeProg) Init(env *Env) {
	p.ok = true
	_ = env.Broadcast(Message{Kind: 2, Words: [MessageWords]int64{int64(env.ID())}})
}

func (p *idExchangeProg) Round(env *Env, recv []Inbound) {
	for _, in := range recv {
		p.received++
		if int(in.Msg.Words[0]) != env.NeighborID(in.Port) {
			p.ok = false
		}
	}
	env.Halt()
}

func TestPortWiring(t *testing.T) {
	g := gen.GNP(40, 0.15, 5, true)
	sim, err := NewUniform(g, func(v int) Program { return &idExchangeProg{} }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(1); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		p := sim.Program(v).(*idExchangeProg)
		if !p.ok {
			t.Errorf("vertex %d: ID arrived on wrong port", v)
		}
		if p.received != g.Degree(v) {
			t.Errorf("vertex %d: received %d messages, degree %d", v, p.received, g.Degree(v))
		}
	}
}

// overSender violates bandwidth by sending two messages on port 0.
type overSender struct{ errs []error }

func (p *overSender) Init(env *Env) {
	if env.Degree() > 0 {
		p.errs = append(p.errs, env.Send(0, Message{Kind: 3}))
		p.errs = append(p.errs, env.Send(0, Message{Kind: 3}))
	}
}
func (p *overSender) Round(env *Env, recv []Inbound) { env.Halt() }

func TestBandwidthViolation(t *testing.T) {
	g := gen.Path(2)
	sim, err := NewUniform(g, func(v int) Program { return &overSender{} }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = sim.Run(1)
	if !errors.Is(err, ErrBandwidth) {
		t.Fatalf("Run error = %v, want ErrBandwidth", err)
	}
	p := sim.Program(0).(*overSender)
	if p.errs[0] != nil {
		t.Error("first send should succeed")
	}
	if !errors.Is(p.errs[1], ErrBandwidth) {
		t.Error("second send should report ErrBandwidth to the sender")
	}
}

func TestBandwidthOptionAllowsMore(t *testing.T) {
	g := gen.Path(2)
	sim, err := NewUniform(g, func(v int) Program { return &overSender{} }, Options{Bandwidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(1); err != nil {
		t.Fatalf("bandwidth-2 run failed: %v", err)
	}
}

// badPortSender sends on a port beyond its degree.
type badPortSender struct{}

func (p *badPortSender) Init(env *Env) {
	_ = env.Send(env.Degree(), Message{})
}
func (p *badPortSender) Round(env *Env, recv []Inbound) { env.Halt() }

func TestInvalidPort(t *testing.T) {
	g := gen.Path(3)
	sim, err := NewUniform(g, func(v int) Program { return &badPortSender{} }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(1); !errors.Is(err, ErrPort) {
		t.Fatalf("Run error = %v, want ErrPort", err)
	}
}

func TestProgramCountMismatch(t *testing.T) {
	g := gen.Path(3)
	if _, err := New(g, make([]Program, 2), Options{}); err == nil {
		t.Error("mismatched program count accepted")
	}
}

// gossipProg exercises heavier traffic: each vertex relays the max ID it
// has seen every round for a fixed horizon. Deterministic and stateful,
// good for engine-equivalence testing.
type gossipProg struct {
	maxSeen int64
	horizon int
	history []int64
}

func (p *gossipProg) Init(env *Env) {
	p.maxSeen = int64(env.ID())
	_ = env.Broadcast(Message{Kind: 4, Words: [MessageWords]int64{p.maxSeen}})
}

func (p *gossipProg) Round(env *Env, recv []Inbound) {
	for _, in := range recv {
		if in.Msg.Words[0] > p.maxSeen {
			p.maxSeen = in.Msg.Words[0]
		}
	}
	p.history = append(p.history, p.maxSeen)
	if env.Round() < p.horizon {
		_ = env.Broadcast(Message{Kind: 4, Words: [MessageWords]int64{p.maxSeen}})
	}
}

func runGossip(t *testing.T, g *graph.Graph, opts Options, horizon int) ([][]int64, Metrics) {
	t.Helper()
	sim, err := NewUniform(g, func(v int) Program { return &gossipProg{horizon: horizon} }, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(horizon + 1); err != nil {
		t.Fatal(err)
	}
	out := make([][]int64, g.N())
	for v := 0; v < g.N(); v++ {
		out[v] = sim.Program(v).(*gossipProg).history
	}
	return out, sim.Metrics()
}

// TestEnginesProduceIdenticalExecutions checks all engine pairs for
// bit-identical per-round histories and metrics, on workloads with
// nontrivial traffic. The parallel engine additionally runs with a
// worker count far above GOMAXPROCS: determinism must not depend on how
// shards map onto hardware.
func TestEnginesProduceIdenticalExecutions(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid":  gen.Grid(5, 8),
		"gnp":   gen.GNP(60, 0.08, 11, true),
		"torus": gen.Torus(6, 6),
	}
	engines := map[string]Options{
		"sequential":  {Engine: EngineSequential},
		"goroutine":   {Engine: EngineGoroutine},
		"parallel":    {Engine: EngineParallel},
		"parallel-w7": {Engine: EngineParallel, Workers: 7},
	}
	for name, g := range graphs {
		type run struct {
			label string
			hist  [][]int64
			m     Metrics
		}
		var runs []run
		for label, opts := range engines {
			hist, m := runGossip(t, g, opts, 12)
			runs = append(runs, run{label, hist, m})
		}
		// The parallel engine has two execution paths — inline for small
		// frontiers, runtime dispatch above the cutoff. These graphs are
		// all below the default cutoff, so force the dispatch path too.
		func() {
			defer func(c int) { inlineFrontierCutoff = c }(inlineFrontierCutoff)
			inlineFrontierCutoff = 0
			hist, m := runGossip(t, g, Options{Engine: EngineParallel}, 12)
			runs = append(runs, run{"parallel-dispatch", hist, m})
		}()
		for i := 0; i < len(runs); i++ {
			for j := i + 1; j < len(runs); j++ {
				a, b := runs[i], runs[j]
				if a.m != b.m {
					t.Errorf("%s: metrics differ: %s=%+v %s=%+v", name, a.label, a.m, b.label, b.m)
				}
				for v := range a.hist {
					if len(a.hist[v]) != len(b.hist[v]) {
						t.Fatalf("%s vertex %d: history lengths differ (%s vs %s)",
							name, v, a.label, b.label)
					}
					for r := range a.hist[v] {
						if a.hist[v][r] != b.hist[v][r] {
							t.Errorf("%s vertex %d round %d: %s=%d %s=%d",
								name, v, r, a.label, a.hist[v][r], b.label, b.hist[v][r])
						}
					}
				}
			}
		}
	}
}

func TestGossipConverges(t *testing.T) {
	g := gen.Grid(4, 4)
	horizon := int(g.Diameter()) + 1
	hist, _ := runGossip(t, g, Options{}, horizon)
	for v := range hist {
		final := hist[v][len(hist[v])-1]
		if final != int64(g.N()-1) {
			t.Errorf("vertex %d: max-ID gossip converged to %d, want %d", v, final, g.N()-1)
		}
	}
}

func TestMetricsCountMessages(t *testing.T) {
	g := gen.Path(4) // edges: 3, directed slots: 6
	sim, err := NewUniform(g, newFlood(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunUntilQuiet(100); err != nil {
		t.Fatal(err)
	}
	m := sim.Metrics()
	// Each vertex broadcasts exactly once: total messages = sum of degrees = 2m = 6.
	if m.Messages != 6 {
		t.Errorf("Messages=%d, want 6", m.Messages)
	}
	if m.MaxRoundTraffic < 1 || m.MaxRoundTraffic > 3 {
		t.Errorf("MaxRoundTraffic=%d out of expected range", m.MaxRoundTraffic)
	}
}

func TestConcurrentEnginesOnFlood(t *testing.T) {
	g := gen.GNP(50, 0.1, 3, true)
	_, seqD := runFlood(t, g, 7, Options{Engine: EngineSequential})
	for _, eng := range []Engine{EngineGoroutine, EngineParallel} {
		_, d := runFlood(t, g, 7, Options{Engine: eng})
		for v := range seqD {
			if seqD[v] != d[v] {
				t.Errorf("vertex %d: seq dist %d, %s dist %d", v, seqD[v], eng, d[v])
			}
		}
	}
}

func TestRecvSortedByPort(t *testing.T) {
	g := gen.Star(6)
	sim, err := NewUniform(g, func(v int) Program { return &portOrderProg{} }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(1); err != nil {
		t.Fatal(err)
	}
	hub := sim.Program(0).(*portOrderProg)
	if !hub.sorted {
		t.Error("hub received messages out of port order")
	}
	if hub.count != 5 {
		t.Errorf("hub received %d messages, want 5", hub.count)
	}
}

type portOrderProg struct {
	sorted bool
	count  int
}

func (p *portOrderProg) Init(env *Env) {
	_ = env.Broadcast(Message{Kind: 5})
}

func (p *portOrderProg) Round(env *Env, recv []Inbound) {
	p.sorted = true
	for i := 1; i < len(recv); i++ {
		if recv[i].Port < recv[i-1].Port {
			p.sorted = false
		}
	}
	p.count = len(recv)
	env.Halt()
}

func TestEngineString(t *testing.T) {
	if EngineSequential.String() != "sequential" || EngineGoroutine.String() != "goroutine" ||
		EngineParallel.String() != "parallel" {
		t.Error("Engine.String broken")
	}
	if Engine(99).String() != "Engine(99)" {
		t.Error("unknown engine string broken")
	}
}

func TestParseEngine(t *testing.T) {
	for _, e := range Engines() {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEngine("quantum"); err == nil {
		t.Error("unknown engine name accepted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	for _, eng := range []Engine{EngineGoroutine, EngineParallel} {
		g := gen.Path(4)
		sim, err := NewUniform(g, newFlood(0), Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(3); err != nil {
			t.Fatal(err)
		}
		sim.Close()
		sim.Close() // must not panic or deadlock
	}
}

func TestDeliveryOrderDescending(t *testing.T) {
	g := gen.Star(6)
	sim, err := congestNewDescending(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(1); err != nil {
		t.Fatal(err)
	}
	hub := sim.Program(0).(*portOrderProg)
	if hub.sorted {
		t.Error("descending delivery should present reverse port order")
	}
	if hub.count != 5 {
		t.Errorf("hub received %d messages, want 5", hub.count)
	}
}

func congestNewDescending(g *graph.Graph) (*Simulator, error) {
	return NewUniform(g, func(v int) Program { return &portOrderProg{} },
		Options{Delivery: DeliverPortDescending})
}

// Flood (a correct, order-independent protocol) must compute identical
// results under adversarial delivery order.
func TestFloodOrderIndependent(t *testing.T) {
	g := gen.GNP(60, 0.08, 19, true)
	_, asc := runFlood(t, g, 3, Options{})
	_, desc := runFlood(t, g, 3, Options{Delivery: DeliverPortDescending})
	for v := range asc {
		if asc[v] != desc[v] {
			t.Errorf("vertex %d: delivery order changed the result: %d vs %d", v, asc[v], desc[v])
		}
	}
}

// panicProg panics at round 2 on one vertex; the goroutine engine must
// re-raise the panic on the coordinating goroutine (not deadlock or
// swallow it).
type panicProg struct{ boom bool }

func (p *panicProg) Init(env *Env) { _ = env.Broadcast(Message{Kind: 9}) }
func (p *panicProg) Round(env *Env, recv []Inbound) {
	if p.boom && env.Round() == 2 {
		panic("intentional test panic")
	}
	_ = env.Broadcast(Message{Kind: 9})
}

func TestConcurrentEnginesRepropagatePanic(t *testing.T) {
	for _, eng := range []Engine{EngineGoroutine, EngineParallel} {
		t.Run(eng.String(), func(t *testing.T) {
			g := gen.Path(4)
			sim, err := NewUniform(g, func(v int) Program { return &panicProg{boom: v == 2} },
				Options{Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if recover() == nil {
					t.Error("panic in a vertex program was swallowed")
				}
			}()
			_ = sim.Run(5)
		})
	}
}

// roundOverSender wakes every vertex in round 1 (via the Init
// broadcast) and then over-sends on port 0 — so the violations happen
// inside the engines' concurrent round execution, not in Init (which
// always runs on the coordinator).
type roundOverSender struct{}

func (p *roundOverSender) Init(env *Env) { _ = env.Broadcast(Message{Kind: 3}) }
func (p *roundOverSender) Round(env *Env, recv []Inbound) {
	if env.Round() == 1 && env.Degree() > 0 {
		_ = env.Send(0, Message{Kind: 3})
		_ = env.Send(0, Message{Kind: 3})
	}
	env.Halt()
}

// The reported model violation must be identical on every engine: the
// lowest-(round, vertex) violation wins, not whichever worker's write
// races in first. Covered for both places a program can violate —
// during Init (coordinator) and during a concurrently executed round,
// where many vertices violate at once across shards/goroutines.
func TestViolationDeterministicAcrossEngines(t *testing.T) {
	progs := map[string]func(v int) Program{
		"init-violation":  func(v int) Program { return &overSender{} },
		"round-violation": func(v int) Program { return &roundOverSender{} },
	}
	for name, factory := range progs {
		var want string
		for _, opts := range []Options{
			{Engine: EngineSequential},
			{Engine: EngineGoroutine},
			{Engine: EngineParallel},
			{Engine: EngineParallel, Workers: 5},
		} {
			g := gen.GNP(60, 0.1, 13, true)
			sim, err := NewUniform(g, factory, opts)
			if err != nil {
				t.Fatal(err)
			}
			err = sim.Run(2)
			sim.Close()
			if !errors.Is(err, ErrBandwidth) {
				t.Fatalf("%s/%s: Run error = %v, want ErrBandwidth", name, opts.Engine, err)
			}
			if want == "" {
				want = err.Error()
			} else if err.Error() != want {
				t.Errorf("%s/%s: violation %q, sequential reported %q", name, opts.Engine, err, want)
			}
		}
	}
}

func TestHaltedVertexWakesOnMessage(t *testing.T) {
	// Vertex 2 on a path halts immediately; the flood must still wake it.
	g := gen.Path(5)
	_, dists := runFlood(t, g, 0, Options{})
	if dists[4] != 4 {
		t.Errorf("halted vertices not woken: dist[4]=%d", dists[4])
	}
}

package congest

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"nearspan/internal/gen"
	"nearspan/internal/sched"
)

// A reused simulator must be indistinguishable from a fresh one: after
// Reset, a different protocol on the same topology produces bit-identical
// histories and metrics on every engine.
func TestResetMatchesFreshRun(t *testing.T) {
	g := gen.GNP(60, 0.08, 11, true)
	for _, opts := range []Options{
		{Engine: EngineSequential},
		{Engine: EngineGoroutine},
		{Engine: EngineParallel},
		{Engine: EngineParallel, Workers: 3},
	} {
		fresh, freshM := runGossip(t, g, opts, 12)

		sim, err := NewUniform(g, newFlood(0), opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunUntilQuiet(10 * g.N()); err != nil {
			t.Fatal(err)
		}
		sim.ResetUniform(func(v int) Program { return &gossipProg{horizon: 12} })
		if err := sim.Run(13); err != nil {
			t.Fatal(err)
		}
		if sim.Metrics() != freshM {
			t.Errorf("%s: reused metrics %+v, fresh %+v", opts.Engine, sim.Metrics(), freshM)
		}
		for v := 0; v < g.N(); v++ {
			got := sim.Program(v).(*gossipProg).history
			for r := range fresh[v] {
				if got[r] != fresh[v][r] {
					t.Errorf("%s vertex %d round %d: reused %d, fresh %d",
						opts.Engine, v, r, got[r], fresh[v][r])
				}
			}
		}
		sim.Close()
	}
}

// Reset must also rewind a run that ended with a recorded violation and
// with messages still in flight.
func TestResetClearsViolationAndPending(t *testing.T) {
	g := gen.Path(4)
	sim, err := NewUniform(g, func(v int) Program { return &overSender{} }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(1); err == nil {
		t.Fatal("over-sender should violate bandwidth")
	}
	sim.ResetUniform(newFlood(0))
	// Interrupt the flood mid-flight: messages remain pending.
	if err := sim.Run(1); err != nil {
		t.Fatal(err)
	}
	if total, byKind := sim.Pending(); total == 0 || byKind[kindToken] != total {
		t.Fatalf("expected pending flood tokens, got total=%d byKind=%v", total, byKind)
	}
	sim.ResetUniform(newFlood(0))
	if total, _ := sim.Pending(); total != 0 {
		t.Fatalf("Reset left %d messages pending", total)
	}
	if _, err := sim.RunUntilQuiet(100); err != nil {
		t.Fatal(err)
	}
	want := g.BFS(0)
	for v := 0; v < g.N(); v++ {
		if int32(sim.Program(v).(*floodProg).dist) != want[v] {
			t.Errorf("vertex %d: dist %d after reset, want %d",
				v, sim.Program(v).(*floodProg).dist, want[v])
		}
	}
}

// Reset must also clear a recorded program panic on the parallel
// engine: a caller that recovered the re-raised panic and Reset the
// simulator gets a clean run, not the previous run's panic replayed.
func TestResetClearsRecordedPanicParallel(t *testing.T) {
	g := gen.Grid(5, 5)
	sim, err := NewUniform(g, func(v int) Program { return &panicProg{boom: v == 2} },
		Options{Engine: EngineParallel})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("program panic was not re-raised")
			}
		}()
		_ = sim.Run(5)
	}()
	sim.ResetUniform(newFlood(0))
	if _, err := sim.RunUntilQuiet(10 * g.N()); err != nil {
		t.Fatalf("reset-after-panic run failed: %v", err)
	}
	want := g.BFS(0)
	for v := 0; v < g.N(); v++ {
		if int32(sim.Program(v).(*floodProg).dist) != want[v] {
			t.Errorf("vertex %d: dist %d after panic+reset, want %d",
				v, sim.Program(v).(*floodProg).dist, want[v])
		}
	}
}

// Reset must rewind the frontier machinery itself: the dirty-slot lists,
// the per-vertex outbound sublists, the inbox/mail state, and the active
// list all return to their pre-Init emptiness, so a reused simulator's
// O(activity) bookkeeping cannot leak traffic or wakes into the next
// protocol — and a rerun after the rewind is bit-identical to a fresh
// simulator's.
func TestResetRewindsDirtyLists(t *testing.T) {
	g := gen.GNP(40, 0.12, 9, true)
	newProg := func(v int) Program { return &fzProg{cfg: fzConfig{seed: 3}} }
	for _, opts := range []Options{
		{Engine: EngineSequential},
		{Engine: EngineParallel},
		{Engine: EngineGoroutine},
	} {
		// Fresh run for the comparison target.
		fresh, err := NewUniform(g, newProg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Run(8); err != nil {
			t.Fatal(err)
		}

		// Interrupt a run mid-flight so the dirty machinery is loaded.
		sim, err := NewUniform(g, newProg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(3); err != nil {
			t.Fatal(err)
		}
		if len(sim.curDirty) == 0 && len(sim.curBcastL) == 0 {
			t.Fatalf("%s: workload left no messages in flight — weak test setup", opts.Engine)
		}
		sim.ResetUniform(newProg)
		if len(sim.curDirty) != 0 || len(sim.nxDirty) != 0 {
			t.Errorf("%s: Reset left dirty lists: cur %d, next %d",
				opts.Engine, len(sim.curDirty), len(sim.nxDirty))
		}
		if len(sim.active) != 0 || len(sim.frontier) != 0 || len(sim.mail) != 0 || len(sim.woken) != 0 {
			t.Errorf("%s: Reset left scheduling state: active %d frontier %d mail %d woken %d",
				opts.Engine, len(sim.active), len(sim.frontier), len(sim.mail), len(sim.woken))
		}
		if len(sim.curBcastL) != 0 || len(sim.nxBcastL) != 0 {
			t.Errorf("%s: Reset left broadcaster lists: cur %d, next %d",
				opts.Engine, len(sim.curBcastL), len(sim.nxBcastL))
		}
		logs := map[string]*sendLog{"seq": &sim.seqLog}
		for i := range sim.glogs {
			logs[fmt.Sprintf("goroutine-%d", i)] = &sim.glogs[i]
		}
		if sim.par != nil {
			for i, st := range sim.par.shards {
				logs[fmt.Sprintf("shard-%d", i)] = &st.log
			}
		}
		for name, l := range logs {
			if len(l.dirty) != 0 || len(l.bcast) != 0 {
				t.Errorf("%s: Reset left %s send log (%d dirty, %d bcast)",
					opts.Engine, name, len(l.dirty), len(l.bcast))
			}
		}
		for v := range sim.inbox {
			if len(sim.inbox[v]) != 0 {
				t.Errorf("%s: Reset left vertex %d inbox (%d ports)", opts.Engine, v, len(sim.inbox[v]))
			}
		}
		if total, _ := sim.Pending(); total != 0 {
			t.Errorf("%s: Pending after Reset = %d", opts.Engine, total)
		}

		// The rewound simulator replays the fresh execution exactly.
		if err := sim.Run(8); err != nil {
			t.Fatal(err)
		}
		if sim.Metrics() != fresh.Metrics() {
			t.Errorf("%s: reused metrics %+v, fresh %+v", opts.Engine, sim.Metrics(), fresh.Metrics())
		}
		for v := 0; v < g.N(); v++ {
			got := sim.Program(v).(*fzProg)
			want := fresh.Program(v).(*fzProg)
			if got.transcript != want.transcript || got.invoked != want.invoked {
				t.Errorf("%s vertex %d: reused transcript %x/%d, fresh %x/%d",
					opts.Engine, v, got.transcript, got.invoked, want.transcript, want.invoked)
			}
		}
		sim.Close()
		fresh.Close()
	}
}

func TestResetProgramCountMismatch(t *testing.T) {
	g := gen.Path(3)
	sim, err := NewUniform(g, newFlood(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Reset(make([]Program, 2)); err == nil {
		t.Error("mismatched program count accepted by Reset")
	}
}

// Simulator constructions are counted per runtime, so concurrent
// batches and parallel tests on other runtimes cannot perturb an
// assertion made against a private one.
func TestSimulatorsCreatedPerRuntime(t *testing.T) {
	rtA, rtB := sched.New(1), sched.New(1)
	defer rtA.Close()
	defer rtB.Close()
	if _, err := NewUniform(gen.Path(3), newFlood(0), Options{Runtime: rtA}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewUniform(gen.Path(3), newFlood(0), Options{Runtime: rtA}); err != nil {
		t.Fatal(err)
	}
	if got := rtA.SimulatorsCreated(); got != 2 {
		t.Errorf("runtime A counted %d simulators, want 2", got)
	}
	if got := rtB.SimulatorsCreated(); got != 0 {
		t.Errorf("runtime B counted %d simulators, want 0", got)
	}
}

// goroutinesSettle polls until the process goroutine count drops to at
// most want, tolerating unrelated runtime goroutines that exit
// asynchronously.
func goroutinesSettle(t *testing.T, want int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// The goroutine-engine worker pool must be started once, survive any
// number of Resets without spawning replacements, and be fully torn
// down by Close — the goroutine-leak regression guard for the
// persistent-network runtime.
func TestPoolsNotLeakedAcrossResetAndClose(t *testing.T) {
	g := gen.Grid(5, 5)
	base := runtime.NumGoroutine()
	sim, err := NewUniform(g, newFlood(0), Options{Engine: EngineGoroutine})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunUntilQuiet(10 * g.N()); err != nil {
		t.Fatal(err)
	}
	running := runtime.NumGoroutine()
	if running <= base {
		t.Fatalf("no pool goroutines observed (base %d, running %d)", base, running)
	}
	for i := 0; i < 5; i++ {
		sim.ResetUniform(newFlood(i))
		if _, err := sim.RunUntilQuiet(10 * g.N()); err != nil {
			t.Fatal(err)
		}
	}
	// Reset must reuse the pool, not stack new goroutines on top.
	if after := runtime.NumGoroutine(); after > running {
		t.Errorf("goroutines grew across Resets: %d -> %d", running, after)
	}
	sim.Close()
	if after := goroutinesSettle(t, base); after > base {
		t.Errorf("Close leaked goroutines: base %d, after close %d", base, after)
	}
}

// EngineParallel owns no goroutines: its rounds execute on the shared
// scheduler, which starts its workers once, survives any number of
// simulators and Resets, and dies with sched.Runtime.Close — the
// scheduler-lifecycle extension of the goroutine-leak regression guard.
func TestSchedulerLifecycleAcrossSimulators(t *testing.T) {
	// Force every round through the scheduler — the inline small-frontier
	// path never dispatches, so the workers would not be observable.
	defer func(c int) { inlineFrontierCutoff = c }(inlineFrontierCutoff)
	inlineFrontierCutoff = 0
	g := gen.Grid(5, 5)
	base := runtime.NumGoroutine()
	rt := sched.New(3)
	runSim := func() {
		sim, err := NewUniform(g, newFlood(0), Options{Engine: EngineParallel, Runtime: rt})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunUntilQuiet(10 * g.N()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			sim.ResetUniform(newFlood(i))
			if _, err := sim.RunUntilQuiet(10 * g.N()); err != nil {
				t.Fatal(err)
			}
		}
		sim.Close() // a no-op for the parallel engine; the pool is the runtime's
	}
	runSim()
	running := goroutinesSettle(t, base+3)
	if running <= base {
		t.Errorf("scheduler workers not observed: base %d, running %d", base, running)
	}
	if running > base+3 {
		t.Errorf("scheduler added more than its 3 workers: base %d, running %d", base, running)
	}
	// Many more simulators on the same runtime must not grow the pool.
	for i := 0; i < 4; i++ {
		runSim()
	}
	if after := goroutinesSettle(t, running); after > running {
		t.Errorf("goroutines grew across simulators on one runtime: %d -> %d", running, after)
	}
	rt.Close()
	if after := goroutinesSettle(t, base); after > base {
		t.Errorf("runtime Close leaked goroutines: base %d, after close %d", base, after)
	}
}

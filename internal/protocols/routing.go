package protocols

import "slices"

// Routing is the flat, port-keyed routing plane shared by the climb
// protocols: for each vertex, a run of (key, port) entries sorted
// ascending by key, stored in three parallel slices indexed through a
// CSR-style offset array. A key's port points toward that key's target
// (the next hop of the recorded path).
//
// It replaces the per-vertex map[int64]int tables the climbs used to
// route over: lookups are binary searches in a vertex's run, iteration
// is canonical by construction, and building one table for the whole
// graph costs three allocations instead of n maps. Algorithm 1's output
// (NNResult) embeds a Routing directly, so interconnection climbs route
// over the very arrays the near-neighbors extraction produced — the map
// round-trip between the two protocols is gone.
type Routing struct {
	off   []int32 // len N()+1
	keys  []int64 // sorted ascending within each vertex's run
	ports []int32
}

// N returns the number of vertices the table covers.
func (r *Routing) N() int { return len(r.off) - 1 }

// Count returns the number of routing entries at v.
func (r *Routing) Count(v int) int { return int(r.off[v+1] - r.off[v]) }

// At returns v's keys and ports as parallel slices, sorted ascending by
// key. The slices alias the table; callers must not modify them.
func (r *Routing) At(v int) (keys []int64, ports []int32) {
	lo, hi := r.off[v], r.off[v+1]
	return r.keys[lo:hi], r.ports[lo:hi]
}

// Port returns the port v routes key k through, if any.
func (r *Routing) Port(v int, k int64) (int, bool) {
	keys, ports := r.At(v)
	if i, ok := slices.BinarySearch(keys, k); ok {
		return int(ports[i]), true
	}
	return -1, false
}

// Index returns the global entry index of (v, k), if v routes k. Entry
// indices address NewMarks flags and PortAt.
func (r *Routing) Index(v int, k int64) (int, bool) {
	keys, _ := r.At(v)
	if i, ok := slices.BinarySearch(keys, k); ok {
		return int(r.off[v]) + i, true
	}
	return -1, false
}

// PortAt returns the port of the entry at the given global index.
func (r *Routing) PortAt(idx int) int32 { return r.ports[idx] }

// NewMarks returns a fresh flag per routing entry — the flat
// (vertex, key) visited set the centralized climb uses to reproduce the
// distributed forward-once dedupe without per-key hash maps.
func (r *Routing) NewMarks() []bool { return make([]bool, len(r.keys)) }

// NewForestRouting builds the single-key routing plane of a forest
// climb: every vertex with a parent routes key toward its parent port.
// This is how superclustering turns a BFSForest result into climb
// routing — one key suffices because every vertex has one forest parent,
// so climbs toward different roots share the dedupe (see core).
func NewForestRouting(parentPort []int, key int64) *Routing {
	n := len(parentPort)
	off := make([]int32, n+1)
	total := int32(0)
	for v := 0; v < n; v++ {
		if parentPort[v] >= 0 {
			total++
		}
		off[v+1] = total
	}
	keys := make([]int64, total)
	ports := make([]int32, total)
	i := 0
	for v := 0; v < n; v++ {
		if parentPort[v] >= 0 {
			keys[i] = key
			ports[i] = int32(parentPort[v])
			i++
		}
	}
	return &Routing{off: off, keys: keys, ports: ports}
}

package protocols

import (
	"slices"
	"sync"
)

// StepFanout fans one OnStep metrics stream out to a dynamic set of
// subscribers. It exists because a build's OnStep hook is a single
// function slot: before the fan-out, every consumer beyond the first
// (a batch progress bar, an HTTP /events stream, a metrics counter) had
// to be merged by hand into one closure, and consumers could not attach
// or detach while the build ran. A StepFanout is that merge point, made
// race-safe:
//
//   - Emit delivers to every current subscriber in subscription order,
//     holding the fan-out lock, so delivery never tears: a subscriber
//     sees a prefix-free, gap-free suffix of the stream.
//   - Subscribe replays every previously emitted metric to the new
//     subscriber before it goes live, atomically with respect to Emit —
//     a late /events client sees the full history followed seamlessly
//     by the live stream, with no gap and no duplicate.
//   - After Unsubscribe returns, the callback is guaranteed not to be
//     invoked again (Unsubscribe waits out any in-flight Emit), so a
//     subscriber may safely release resources its callback uses.
//
// Callbacks run synchronously under the fan-out lock and must not call
// back into the same StepFanout (Subscribe/Unsubscribe/Emit would
// self-deadlock). The zero value is ready to use.
type StepFanout struct {
	mu      sync.Mutex
	subs    []fanoutSub
	nextID  int
	history []StepMetrics
}

type fanoutSub struct {
	id int
	fn func(StepMetrics)
}

// Subscribe registers fn, replays the metrics emitted so far in order,
// and returns the subscription id for Unsubscribe. fn then receives
// every future Emit until unsubscribed.
func (f *StepFanout) Subscribe(fn func(StepMetrics)) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := f.nextID
	f.nextID++
	for _, sm := range f.history {
		fn(sm)
	}
	f.subs = append(f.subs, fanoutSub{id: id, fn: fn})
	return id
}

// Unsubscribe removes the subscription. It is idempotent; once it
// returns, the callback will not be invoked again.
func (f *StepFanout) Unsubscribe(id int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.subs = slices.DeleteFunc(f.subs, func(s fanoutSub) bool { return s.id == id })
}

// Emit records sm in the history and delivers it to every subscriber in
// subscription order. It is safe for concurrent use, though a build
// emits from its one building goroutine.
func (f *StepFanout) Emit(sm StepMetrics) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.history = append(f.history, sm)
	for _, s := range f.subs {
		s.fn(sm)
	}
}

// Steps returns a copy of the emitted history.
func (f *StepFanout) Steps() []StepMetrics {
	f.mu.Lock()
	defer f.mu.Unlock()
	return slices.Clone(f.history)
}

// Len returns the number of live subscribers.
func (f *StepFanout) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

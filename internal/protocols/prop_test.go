package protocols

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nearspan/internal/graph"
)

func randomConnected(r *rand.Rand, maxN int) *graph.Graph {
	n := 4 + r.Intn(maxN-3)
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		if err := b.AddEdge(v, r.Intn(v)); err != nil {
			panic(err)
		}
	}
	extra := r.Intn(2 * n)
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !b.HasEdge(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return b.Build()
}

// Ruling set invariants hold for random graphs, member sets, and
// parameters (the central derandomization guarantee, Theorem 2.2).
func TestPropRulingSetInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnected(r, 36)
		var members []int
		for v := 0; v < g.N(); v++ {
			if r.Intn(2) == 0 {
				members = append(members, v)
			}
		}
		q := int32(1 + r.Intn(4))
		c := 2 + r.Intn(3)
		sel := CentralRulingSet(g, members, q, c, g.N())
		sepOK, domOK := VerifyRulingSet(g, members, sel, q, int32(c)*q)
		return sepOK && domOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Theorem 2.1(1) as a property: popularity detection matches the ground
// truth count for random graphs, center sets and thresholds.
func TestPropPopularityGroundTruth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnected(r, 30)
		var centers []int
		isC := make(map[int]bool)
		for v := 0; v < g.N(); v++ {
			if r.Intn(3) > 0 {
				centers = append(centers, v)
				isC[v] = true
			}
		}
		deg := 1 + r.Intn(5)
		delta := int32(1 + r.Intn(4))
		res := CentralNearNeighbors(g, centers, deg, delta)
		for _, c := range centers {
			dist := g.BFSBounded(c, delta)
			count := 0
			for v := 0; v < g.N(); v++ {
				if v != c && isC[v] && dist[v] <= delta {
					count++
				}
			}
			if res.Popular[c] != (count >= deg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Theorem 2.1(2) as a property: unpopular centers know every center
// within delta at exact distance.
func TestPropUnpopularExactness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnected(r, 28)
		var centers []int
		isC := make(map[int]bool)
		for v := 0; v < g.N(); v++ {
			if r.Intn(2) == 0 {
				centers = append(centers, v)
				isC[v] = true
			}
		}
		deg := 2 + r.Intn(4)
		delta := int32(2 + r.Intn(3))
		res := CentralNearNeighbors(g, centers, deg, delta)
		for _, c := range centers {
			if res.Popular[c] {
				continue
			}
			dist := g.BFSBounded(c, delta)
			for v := 0; v < g.N(); v++ {
				if v == c || !isC[v] || dist[v] > delta {
					continue
				}
				if got, ok := res.DistTo(c, int64(v)); !ok || got != dist[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Digit decomposition round-trips IDs for any base/position count that
// covers the ID space.
func TestPropDigitsRoundTrip(t *testing.T) {
	f := func(id uint16, cRaw uint8) bool {
		c := 1 + int(cRaw%4)
		b := DigitBase(1<<16, c)
		recon := int64(0)
		mul := int64(1)
		for pos := 0; pos < c; pos++ {
			recon += digit(int64(id), pos, b) * mul
			mul *= b
		}
		return recon == int64(id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

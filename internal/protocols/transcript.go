package protocols

import "slices"

// This file implements forward-transcript recording for the
// NearNeighbors protocol (Algorithm 1), the substrate of the delta
// rebuild engine (internal/delta). A transcript captures, per vertex and
// per protocol phase, the forward list the vertex selected — the only
// per-phase state a vertex exports to its neighbors. Given the previous
// build's transcript, an edge-delta rebuild can recompute hearings for a
// small dirty frontier while reading every clean neighbor's forwards
// straight from the transcript, never touching the rest of the graph.
//
// Transcripts are run-length encoded over phases: a vertex's forward
// list changes only while waves are still arriving (it is the smallest
// deg+1 center IDs heard that phase, and the heard set saturates within
// a few phases on the workloads we serve), so storing one segment per
// change keeps a delta-radius-225 transcript at a few segments per
// vertex instead of 225 dense rows.

// ForwardSeg is one run of a vertex's forward history: from protocol
// phase From (inclusive) until the next segment's From (exclusive, or
// forever), the vertex's selected forward list was IDs (ascending). An
// empty IDs means the vertex forwarded nothing during the run.
type ForwardSeg struct {
	From int32
	IDs  []int64
}

// NNTranscript is the recorded forward history of one NearNeighbors
// run. Segs[v] holds v's segments in ascending From order; a vertex with
// no segments never forwarded anything. Both execution modes record the
// same segments for the same run (the forward selections are
// bit-identical across modes, and the encoder below is shared).
type NNTranscript struct {
	Segs [][]ForwardSeg
}

// N returns the vertex count the transcript covers.
func (t *NNTranscript) N() int { return len(t.Segs) }

// ForwardsAt returns v's forward list during protocol phase p (phases
// are 1-based; forwards can exist only for phases 1..delta-1). The
// returned slice aliases the transcript.
func (t *NNTranscript) ForwardsAt(v int, p int32) []int64 {
	segs := t.Segs[v]
	// Find the last segment with From <= p.
	lo, hi := 0, len(segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if segs[mid].From <= p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return segs[lo-1].IDs
}

// Segments returns the total segment count — a size diagnostic.
func (t *NNTranscript) Segments() int {
	total := 0
	for _, s := range t.Segs {
		total += len(s)
	}
	return total
}

// TranscriptRecorder builds an NNTranscript incrementally. Set may be
// called sparsely: phases between two Set calls for the same vertex are
// implicitly empty-forward phases (the centralized oracle skips vertices
// with empty hearing buffers; the distributed program calls Set every
// phase — both call patterns encode to the same segments). Rows are
// per-vertex, so concurrent Set calls for distinct vertices are safe —
// the invariant the sharded simulator engines rely on.
type TranscriptRecorder struct {
	segs    [][]ForwardSeg
	cur     [][]int64 // last recorded list per vertex (aliases its segment)
	lastSet []int32
}

// NewTranscriptRecorder returns a recorder for n vertices.
func NewTranscriptRecorder(n int) *TranscriptRecorder {
	return &TranscriptRecorder{
		segs:    make([][]ForwardSeg, n),
		cur:     make([][]int64, n),
		lastSet: make([]int32, n),
	}
}

// Set records v's forward list for protocol phase p >= 1. Calls for one
// vertex must have ascending p; ids need not survive the call (it is
// cloned when a new segment is cut).
func (r *TranscriptRecorder) Set(v int, p int32, ids []int64) {
	if r.lastSet[v] < p-1 && len(r.cur[v]) > 0 {
		// Implicit empty phases since the last Set: close the run.
		r.segs[v] = append(r.segs[v], ForwardSeg{From: r.lastSet[v] + 1})
		r.cur[v] = nil
	}
	if !slices.Equal(r.cur[v], ids) {
		seg := ForwardSeg{From: p, IDs: slices.Clone(ids)}
		r.segs[v] = append(r.segs[v], seg)
		r.cur[v] = seg.IDs
	}
	r.lastSet[v] = p
}

// Finish closes trailing implicit-empty runs (a vertex last Set with a
// non-empty list before phase last forwarded nothing afterwards) and
// returns the transcript. The recorder must not be reused.
func (r *TranscriptRecorder) Finish(last int32) NNTranscript {
	for v := range r.segs {
		if r.lastSet[v] < last && len(r.cur[v]) > 0 {
			r.segs[v] = append(r.segs[v], ForwardSeg{From: r.lastSet[v] + 1})
			r.cur[v] = nil
		}
	}
	return NNTranscript{Segs: r.segs}
}

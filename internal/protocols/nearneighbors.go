package protocols

import (
	"slices"

	"nearspan/internal/congest"
)

// NearNeighbors is Algorithm 1 of the paper ("Number of near neighbors",
// Appendix A): a bandwidth-respecting multi-source exploration that lets
// every vertex learn up to Deg cluster centers within distance Delta,
// with exact distances and traceback pointers, in O(Deg·Delta) rounds.
//
// Protocol phases (the paper's "phases", distinct from the main
// algorithm's phases) have Deg+2 rounds each: Deg+1 send slots plus one
// drain round, so all of a phase's messages land inside the phase. Phase
// 0 is the single announcement round, as in the paper. Messages that
// traversed p edges are heard during phase p; at the start of phase p+1
// each vertex selects up to Deg+1 of the centers it heard during phase p
// — smallest IDs first, the deterministic refinement of the paper's
// "arbitrary degi of these messages" — and forwards them one per send
// slot. Centers heard for the first time are also stored, up to Deg
// stored entries in total (the paper's "first degi vertices it has
// learned about").
//
// Two reproduction findings are baked into the forwarding rule (both
// demonstrated by ablation A4 in internal/experiments):
//
//  1. Forwarding is NOT limited to newly stored centers: as in the
//     paper, a wave about an already-known center keeps flowing. The
//     seemingly equivalent "forward only on first learning" optimization
//     breaks Lemma A.1's counting guarantee (a vertex whose neighbor
//     re-learns centers along longer paths can be starved below its
//     min(deg, |Γ^δ∩S|) quota).
//
//  2. The forward budget is Deg+1, not the paper's Deg. With exactly Deg
//     forward slots, a center's own announcement can compete against the
//     other centers' on the links back to it: a vertex adjacent to
//     center u that hears u plus Deg other announcements in one phase
//     may forward u's instead of another's, leaving u one center short —
//     u then misclassifies itself as unpopular while missing a center
//     within Delta, violating Theorem 2.1(2) as used by Lemma 2.14. (We
//     found random graphs where the smallest-ID instantiation of the
//     paper's "arbitrarily choose deg_i of these messages" does exactly
//     this.) One extra slot absorbs the self-announcement; asymptotics
//     are unchanged.
//
// Guarantees used by the spanner construction (Theorem 2.1, tested):
//
//  1. A center is popular iff it stores >= Deg other centers.
//  2. An *unpopular* center stores every center within Delta with exact
//     distance, and the Via pointers trace a shortest path on which
//     every vertex also knows its exact distance to the traced center.
//     (If a vertex on a shortest path to an unpopular center had capped
//     — dropping the center's wave from its forward set or storage —
//     its >= Deg stored centers would all lie within Delta of the
//     downstream center, forcing it to be popular by Lemma A.1.)
type NearNeighbors struct {
	IsCenter bool
	Deg      int   // popularity threshold (paper deg_i)
	Delta    int32 // exploration radius (paper delta_i)

	// Known maps center ID -> distance from this vertex, for up to Deg
	// centers (own ID excluded). Distances are exact at unpopular
	// vertices (see above).
	Known map[int64]int32
	// Via maps center ID -> port toward the neighbor that announced it:
	// the next hop of the path the announcement travelled.
	Via map[int64]int

	buffer map[int64]hearing // centers heard during the current phase
	queue  []int64           // forward queue for the current phase
	qdist  int32             // distance carried by this phase's forwards

	// rec, when non-nil, receives this vertex's per-phase forward
	// selections (the delta-rebuild transcript). Each program instance
	// writes only its own vertex's row, so the shared recorder is safe
	// under the sharded engines.
	rec *TranscriptRecorder
}

// hearing records the best (smallest sender ID) announcement of a center
// during one phase. All announcements within a phase carry the same
// traversed distance.
type hearing struct {
	sender int
	port   int
}

var _ congest.Program = (*NearNeighbors)(nil)

// NewNearNeighbors returns the program factory for the given center set,
// popularity threshold deg, and radius delta.
func NewNearNeighbors(isCenter func(v int) bool, deg int, delta int32) func(v int) congest.Program {
	return NewNearNeighborsRec(isCenter, deg, delta, nil)
}

// NewNearNeighborsRec is NewNearNeighbors with optional forward-
// transcript recording (nil rec disables it).
func NewNearNeighborsRec(isCenter func(v int) bool, deg int, delta int32, rec *TranscriptRecorder) func(v int) congest.Program {
	return func(v int) congest.Program {
		return &NearNeighbors{IsCenter: isCenter(v), Deg: deg, Delta: delta, rec: rec}
	}
}

// NearNeighborsRounds is the exact round budget: one round for phase 0
// (the announcements, a single round as in the paper), Deg+2 rounds for
// each of the phases 1..Delta-1 (Deg+1 forward slots plus a drain
// round), and the finalization round of the last phase's hearings.
func NearNeighborsRounds(deg int, delta int32) int {
	if delta < 1 {
		return 1
	}
	return int(delta-1)*(deg+2) + 2
}

// forwardBudget is the per-phase forward allowance: Deg+1 (see the
// finding note on the type).
func (nn *NearNeighbors) forwardBudget() int { return nn.Deg + 1 }

// Popular reports whether this vertex detected itself as a popular
// center.
func (nn *NearNeighbors) Popular() bool {
	return nn.IsCenter && len(nn.Known) >= nn.Deg
}

// Init implements congest.Program.
func (nn *NearNeighbors) Init(env *congest.Env) {
	nn.Known = make(map[int64]int32)
	nn.Via = make(map[int64]int)
	nn.buffer = make(map[int64]hearing)
	if nn.IsCenter {
		// Announce <own ID, distance 0>; neighbors hear it in phase 0.
		_ = env.Broadcast(nnMsg(int64(env.ID()), 0))
	}
}

// Round implements congest.Program.
func (nn *NearNeighbors) Round(env *congest.Env, recv []congest.Inbound) {
	// Round 1 is the paper's single-round phase 0: announcements arrive
	// and are buffered; nothing is finalized or sent.
	sending := env.Round() >= 2
	phaseLen := nn.forwardBudget() + 1
	slot := 0
	if sending {
		slot = (env.Round() - 2) % phaseLen
	}

	// 1. Phase start: process the previous phase's hearings. Phase p
	// starts at round (p-1)*phaseLen+2, so the hearings carry distance p.
	if sending && slot == 0 {
		nn.finalize(env.ID(), int32((env.Round()-2)/phaseLen)+1)
	}

	// 2. Buffer this round's arrivals (all hearings of a phase carry the
	// same distance; keep the smallest sender ID per center).
	for _, in := range recv {
		if in.Msg.Kind != kindNN {
			continue
		}
		c := in.Msg.Words[0]
		if c == int64(env.ID()) {
			continue
		}
		sender := env.NeighborID(in.Port)
		h, buffered := nn.buffer[c]
		if !buffered || sender < h.sender {
			nn.buffer[c] = hearing{sender: sender, port: in.Port}
		}
	}

	// 3. Send slot: forward one selected center over every edge.
	if sending && slot < nn.forwardBudget() && slot < len(nn.queue) {
		_ = env.Broadcast(nnMsg(nn.queue[slot], nn.qdist))
	}
}

// finalize processes the hearings of the phase that just ended, whose
// traversed distance is dist: store first-heard centers smallest-ID-first
// up to the storage cap, and select up to Deg heard centers (known or
// not) as the next phase's forwards.
func (nn *NearNeighbors) finalize(v int, dist int32) {
	nn.queue = nn.queue[:0]
	if len(nn.buffer) > 0 {
		ids := make([]int64, 0, len(nn.buffer))
		for c := range nn.buffer {
			ids = append(ids, c)
		}
		slices.Sort(ids)
		for _, c := range ids {
			// Forward set: first Deg+1 heard, independent of storage.
			if len(nn.queue) < nn.forwardBudget() && dist < nn.Delta {
				nn.queue = append(nn.queue, c)
			}
			// Storage: first Deg ever learned.
			if _, known := nn.Known[c]; !known && len(nn.Known) < nn.Deg {
				h := nn.buffer[c]
				nn.Known[c] = dist
				nn.Via[c] = h.port
			}
		}
		nn.buffer = make(map[int64]hearing)
	}
	if nn.rec != nil && dist < nn.Delta {
		nn.rec.Set(v, dist, nn.queue)
	}
	nn.qdist = dist
}

func nnMsg(center int64, dist int32) congest.Message {
	return congest.Message{Kind: kindNN, Words: [congest.MessageWords]int64{center, int64(dist)}}
}

// NNResult is the aggregate outcome of a NearNeighbors run, stored
// columnar: the embedded Routing holds, per vertex, the run of known
// center IDs (sorted ascending) with the port toward each (the Via
// pointer), and Dist holds the exact distance parallel to those entries.
// Interconnection climbs route over the embedded table directly, and a
// vertex's start-key set is its key run — both without copying.
type NNResult struct {
	Routing
	// Dist is parallel to the routing entries: Dist[i] is the distance
	// from the run's vertex to center keys[i].
	Dist    []int32
	Popular []bool
}

// Known returns the centers v learned about (sorted ascending) and the
// distances to them, as parallel slices aliasing the table.
func (r *NNResult) Known(v int) (centers []int64, dist []int32) {
	lo, hi := r.off[v], r.off[v+1]
	return r.keys[lo:hi], r.Dist[lo:hi]
}

// Row returns v's full table row — known center IDs (ascending),
// distances, and Via ports as parallel slices aliasing the table. This
// is the read face of the delta-rebuild splice: clean vertices' rows are
// copied verbatim into the rebuilt table.
func (r *NNResult) Row(v int) (keys []int64, dist []int32, ports []int32) {
	lo, hi := r.off[v], r.off[v+1]
	return r.keys[lo:hi], r.Dist[lo:hi], r.ports[lo:hi]
}

// SpliceNNResult assembles an NNResult directly from flat columnar
// arrays (off is the n+1 CSR offset array; keys must be ascending within
// each vertex's run, dist and ports parallel to keys). It is the write
// face of the delta-rebuild splice; the arrays are adopted, not copied.
func SpliceNNResult(off []int32, keys []int64, dist []int32, ports []int32, popular []bool) NNResult {
	return NNResult{Routing: Routing{off: off, keys: keys, ports: ports}, Dist: dist, Popular: popular}
}

// DistTo returns v's stored distance to center c, if stored.
func (r *NNResult) DistTo(v int, c int64) (int32, bool) {
	keys, _ := r.At(v)
	if i, ok := slices.BinarySearch(keys, c); ok {
		return r.Dist[int(r.off[v])+i], true
	}
	return 0, false
}

// EmptyNNResult is the result of a run with no centers: nothing known,
// nobody popular.
func EmptyNNResult(n int) NNResult {
	return NNResult{
		Routing: Routing{off: make([]int32, n+1)},
		Popular: make([]bool, n),
	}
}

// buildNNResult flattens per-vertex known/via maps into the canonical
// columnar layout (each vertex's run sorted ascending by center ID).
// Shared by the distributed extraction and the centralized oracle, so
// both produce bit-identical tables when their decisions agree.
func buildNNResult(n int, known []map[int64]int32, via []map[int64]int, popular []bool) NNResult {
	off := make([]int32, n+1)
	total := 0
	for v := 0; v < n; v++ {
		total += len(known[v])
		off[v+1] = int32(total)
	}
	keys := make([]int64, total)
	dist := make([]int32, total)
	ports := make([]int32, total)
	for v := 0; v < n; v++ {
		run := keys[off[v]:off[v+1]]
		i := 0
		for c := range known[v] {
			run[i] = c
			i++
		}
		slices.Sort(run)
		for j, c := range run {
			dist[int(off[v])+j] = known[v][c]
			ports[int(off[v])+j] = int32(via[v][c])
		}
	}
	return NNResult{Routing: Routing{off: off, keys: keys, ports: ports}, Dist: dist, Popular: popular}
}

// ExtractNN collects results from a finished simulator whose programs
// are *NearNeighbors.
func ExtractNN(sim *congest.Simulator) NNResult {
	n := sim.Graph().N()
	known := make([]map[int64]int32, n)
	via := make([]map[int64]int, n)
	popular := make([]bool, n)
	for v := 0; v < n; v++ {
		p := sim.Program(v).(*NearNeighbors)
		known[v] = p.Known
		via[v] = p.Via
		popular[v] = p.Popular()
	}
	return buildNNResult(n, known, via, popular)
}

package protocols

import (
	"testing"

	"nearspan/internal/congest"
	"nearspan/internal/edgeset"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
)

// testGraphs is the shared workload set for protocol tests: shapes that
// stress depth (path), symmetry ties (torus, grid), density (GNP,
// communities) and degree skew (caterpillar, star-ish PA graph).
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	pa, err := gen.PreferentialAttachment(80, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"path":        gen.Path(40),
		"grid":        gen.Grid(6, 8),
		"torus":       gen.Torus(6, 6),
		"gnp":         gen.GNP(70, 0.07, 21, true),
		"communities": gen.Communities(3, 20, 0.25, 0.01, 5),
		"caterpillar": gen.Caterpillar(12, 3),
		"pa":          pa,
	}
}

func runSim(t *testing.T, g *graph.Graph, factory func(v int) congest.Program, rounds int, eng congest.Engine) *congest.Simulator {
	t.Helper()
	sim, err := congest.NewUniform(g, factory, congest.Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(rounds); err != nil {
		sim.Close()
		t.Fatalf("run: %v", err)
	}
	return sim
}

// --- BFSForest ---

func TestBFSForestMatchesMultiBFSOracle(t *testing.T) {
	for name, g := range testGraphs(t) {
		roots := []int{0, g.N() / 2, g.N() - 1}
		isRoot := func(v int) bool { return v == roots[0] || v == roots[1] || v == roots[2] }
		for _, depth := range []int32{0, 1, 3, 7, int32(g.N())} {
			sim := runSim(t, g, NewBFSForest(isRoot, depth), ForestRounds(depth), congest.EngineSequential)
			got := ExtractForest(sim)
			wantDist, wantRoot, wantParent := g.MultiBFS(roots, depth)
			for v := 0; v < g.N(); v++ {
				wd := wantDist[v]
				if wd == graph.Infinity {
					if got.Dist[v] != -1 {
						t.Errorf("%s depth %d v%d: reached at %d, oracle unreachable", name, depth, v, got.Dist[v])
					}
					continue
				}
				if got.Dist[v] != wd {
					t.Errorf("%s depth %d v%d: dist=%d want %d", name, depth, v, got.Dist[v], wd)
				}
				if got.Root[v] != int64(wantRoot[v]) {
					t.Errorf("%s depth %d v%d: root=%d want %d", name, depth, v, got.Root[v], wantRoot[v])
				}
				if wd > 0 {
					gotParent := g.Neighbor(v, got.ParentPort[v])
					if int32(gotParent) != wantParent[v] {
						t.Errorf("%s depth %d v%d: parent=%d want %d", name, depth, v, gotParent, wantParent[v])
					}
				} else if got.ParentPort[v] != -1 {
					t.Errorf("%s depth %d v%d: root has parent port %d", name, depth, v, got.ParentPort[v])
				}
			}
		}
	}
}

func TestBFSForestEnginesAgree(t *testing.T) {
	g := gen.GNP(60, 0.08, 7, true)
	isRoot := func(v int) bool { return v%11 == 0 }
	simSeq := runSim(t, g, NewBFSForest(isRoot, 6), ForestRounds(6), congest.EngineSequential)
	a := ExtractForest(simSeq)
	for _, eng := range []congest.Engine{congest.EngineGoroutine, congest.EngineParallel} {
		sim := runSim(t, g, NewBFSForest(isRoot, 6), ForestRounds(6), eng)
		b := ExtractForest(sim)
		sim.Close()
		for v := 0; v < g.N(); v++ {
			if a.Dist[v] != b.Dist[v] || a.Root[v] != b.Root[v] || a.ParentPort[v] != b.ParentPort[v] {
				t.Errorf("%s v%d: engines disagree: %+v vs %+v", eng,
					v, []any{a.Dist[v], a.Root[v], a.ParentPort[v]}, []any{b.Dist[v], b.Root[v], b.ParentPort[v]})
			}
		}
	}
}

func TestBFSForestNoRoots(t *testing.T) {
	g := gen.Path(10)
	sim := runSim(t, g, NewBFSForest(func(int) bool { return false }, 5), ForestRounds(5), congest.EngineSequential)
	res := ExtractForest(sim)
	for v := 0; v < g.N(); v++ {
		if res.Dist[v] != -1 || res.Root[v] != -1 {
			t.Errorf("v%d reached with no roots", v)
		}
	}
}

// --- NearNeighbors (Algorithm 1) ---

func nnCenters(g *graph.Graph, mod int) []int {
	var cs []int
	for v := 0; v < g.N(); v++ {
		if v%mod == 0 {
			cs = append(cs, v)
		}
	}
	return cs
}

func runNN(t *testing.T, g *graph.Graph, centers []int, deg int, delta int32, eng congest.Engine) NNResult {
	t.Helper()
	isC := make(map[int]bool, len(centers))
	for _, c := range centers {
		isC[c] = true
	}
	sim := runSim(t, g, NewNearNeighbors(func(v int) bool { return isC[v] }, deg, delta),
		NearNeighborsRounds(deg, delta), eng)
	defer sim.Close()
	return ExtractNN(sim)
}

func TestNearNeighborsMatchesCentralOracle(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, cfg := range []struct {
			mod, deg int
			delta    int32
		}{
			{1, 3, 2}, {3, 2, 4}, {5, 4, 6}, {2, 6, 3},
		} {
			centers := nnCenters(g, cfg.mod)
			dist := runNN(t, g, centers, cfg.deg, cfg.delta, congest.EngineSequential)
			central := CentralNearNeighbors(g, centers, cfg.deg, cfg.delta)
			for v := 0; v < g.N(); v++ {
				cKeys, cDist := central.Known(v)
				dKeys, dDist := dist.Known(v)
				if len(dKeys) != len(cKeys) {
					t.Fatalf("%s cfg%+v v%d: |known| distributed=%d central=%d",
						name, cfg, v, len(dKeys), len(cKeys))
				}
				for i, c := range cKeys {
					if dKeys[i] != c || dDist[i] != cDist[i] {
						t.Errorf("%s cfg%+v v%d entry %d: distributed (%d,%d), central (%d,%d)",
							name, cfg, v, i, dKeys[i], dDist[i], c, cDist[i])
					}
					dPort, _ := dist.Port(v, c)
					cPort, _ := central.Port(v, c)
					if dPort != cPort {
						t.Errorf("%s cfg%+v v%d center %d: via=%d central=%d",
							name, cfg, v, c, dPort, cPort)
					}
				}
				if dist.Popular[v] != central.Popular[v] {
					t.Errorf("%s cfg%+v v%d: popular=%v central=%v",
						name, cfg, v, dist.Popular[v], central.Popular[v])
				}
			}
		}
	}
}

func TestNearNeighborsEnginesAgree(t *testing.T) {
	g := gen.Grid(7, 7)
	centers := nnCenters(g, 3)
	a := runNN(t, g, centers, 3, 4, congest.EngineSequential)
	for _, eng := range []congest.Engine{congest.EngineGoroutine, congest.EngineParallel} {
		b := runNN(t, g, centers, 3, 4, eng)
		for v := 0; v < g.N(); v++ {
			aKeys, aDist := a.Known(v)
			bKeys, bDist := b.Known(v)
			if len(aKeys) != len(bKeys) || a.Popular[v] != b.Popular[v] {
				t.Fatalf("%s v%d: engines disagree", eng, v)
			}
			for i, c := range aKeys {
				aPort, _ := a.Port(v, c)
				bPort, _ := b.Port(v, c)
				if bKeys[i] != c || bDist[i] != aDist[i] || aPort != bPort {
					t.Errorf("%s v%d center %d: engines disagree", eng, v, c)
				}
			}
		}
	}
}

// Theorem 2.1(1): a center is detected popular exactly when it has >= deg
// other centers within delta.
func TestPopularityMatchesGroundTruth(t *testing.T) {
	for name, g := range testGraphs(t) {
		centers := nnCenters(g, 2)
		isC := make(map[int]bool)
		for _, c := range centers {
			isC[c] = true
		}
		deg, delta := 4, int32(3)
		res := runNN(t, g, centers, deg, delta, congest.EngineSequential)
		for _, c := range centers {
			dist := g.BFSBounded(c, delta)
			count := 0
			for v := 0; v < g.N(); v++ {
				if v != c && isC[v] && dist[v] <= delta {
					count++
				}
			}
			wantPopular := count >= deg
			if res.Popular[c] != wantPopular {
				t.Errorf("%s center %d: popular=%v, ground truth %v (count=%d)",
					name, c, res.Popular[c], wantPopular, count)
			}
		}
	}
}

// Theorem 2.1(2): an unpopular center knows every center within delta,
// with exact distances, and its traceback paths are shortest paths.
func TestUnpopularCentersKnowExactNeighborhood(t *testing.T) {
	for name, g := range testGraphs(t) {
		centers := nnCenters(g, 2)
		isC := make(map[int]bool)
		for _, c := range centers {
			isC[c] = true
		}
		deg, delta := 5, int32(4)
		res := runNN(t, g, centers, deg, delta, congest.EngineSequential)
		checked := 0
		for _, c := range centers {
			if res.Popular[c] {
				continue
			}
			dist := g.BFSBounded(c, delta)
			for v := 0; v < g.N(); v++ {
				if v == c || !isC[v] {
					continue
				}
				if dist[v] <= delta {
					got, ok := res.DistTo(c, int64(v))
					if !ok {
						t.Errorf("%s unpopular %d missing center %d at distance %d",
							name, c, v, dist[v])
						continue
					}
					if got != dist[v] {
						t.Errorf("%s unpopular %d center %d: stored %d, exact %d",
							name, c, v, got, dist[v])
					}
					checked++
				}
			}
			// Stored set contains nothing beyond delta.
			ccs, ds := res.Known(c)
			for i, cc := range ccs {
				if ds[i] > delta {
					t.Errorf("%s unpopular %d stores %d at distance %d > delta", name, c, cc, ds[i])
				}
			}
		}
		if checked == 0 {
			t.Logf("%s: no unpopular pairs checked (all popular)", name)
		}
	}
}

func TestTracePathsAreShortest(t *testing.T) {
	g := gen.Grid(8, 8)
	centers := nnCenters(g, 1)
	res := runNN(t, g, centers, 12, 3, congest.EngineSequential)
	traced := 0
	for _, c := range centers {
		if res.Popular[c] {
			continue
		}
		targets, dists := res.Known(c)
		for i, target := range targets {
			d := dists[i]
			path, ok := TracePath(g, res, c, target)
			if !ok {
				t.Fatalf("trace from %d to %d broke at %v", c, target, path)
			}
			if int32(len(path)-1) != d {
				t.Errorf("trace %d->%d: length %d, stored dist %d", c, target, len(path)-1, d)
			}
			if g.Distance(c, int(target)) != d {
				t.Errorf("trace %d->%d: stored dist %d is not exact (%d)",
					c, target, d, g.Distance(c, int(target)))
			}
			for i := 0; i+1 < len(path); i++ {
				if !g.HasEdge(path[i], path[i+1]) {
					t.Errorf("trace %d->%d: %d-%d not an edge", c, target, path[i], path[i+1])
				}
			}
			traced++
		}
	}
	if traced == 0 {
		t.Fatal("no traces exercised")
	}
}

// --- RulingSet ---

func runRulingSet(t *testing.T, g *graph.Graph, members []int, q int32, c int, eng congest.Engine) []int {
	t.Helper()
	isM := make(map[int]bool, len(members))
	for _, w := range members {
		isM[w] = true
	}
	sim := runSim(t, g, NewRulingSet(func(v int) bool { return isM[v] }, q, c, g.N()),
		RulingSetRounds(q, c, g.N()), eng)
	defer sim.Close()
	return ExtractRulingSet(sim)
}

func TestRulingSetInvariants(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, cfg := range []struct {
			mod int
			q   int32
			c   int
		}{
			{1, 2, 2}, {2, 3, 2}, {1, 4, 3}, {3, 2, 4},
		} {
			members := nnCenters(g, cfg.mod)
			sel := runRulingSet(t, g, members, cfg.q, cfg.c, congest.EngineSequential)
			sepOK, domOK := VerifyRulingSet(g, members, sel, cfg.q, int32(cfg.c)*cfg.q)
			if !sepOK {
				t.Errorf("%s cfg%+v: separation violated", name, cfg)
			}
			if !domOK {
				t.Errorf("%s cfg%+v: domination violated", name, cfg)
			}
			// Selected must be members.
			isM := make(map[int]bool)
			for _, w := range members {
				isM[w] = true
			}
			for _, s := range sel {
				if !isM[s] {
					t.Errorf("%s cfg%+v: non-member %d selected", name, cfg, s)
				}
			}
		}
	}
}

func TestRulingSetMatchesCentralOracle(t *testing.T) {
	for name, g := range testGraphs(t) {
		members := nnCenters(g, 2)
		for _, cfg := range []struct {
			q int32
			c int
		}{{2, 2}, {3, 3}} {
			sel := runRulingSet(t, g, members, cfg.q, cfg.c, congest.EngineSequential)
			want := CentralRulingSet(g, members, cfg.q, cfg.c, g.N())
			if len(sel) != len(want) {
				t.Fatalf("%s q=%d c=%d: |distributed|=%d |central|=%d (%v vs %v)",
					name, cfg.q, cfg.c, len(sel), len(want), sel, want)
			}
			for i := range sel {
				if sel[i] != want[i] {
					t.Errorf("%s q=%d c=%d: mismatch at %d: %v vs %v", name, cfg.q, cfg.c, i, sel, want)
				}
			}
		}
	}
}

func TestRulingSetEnginesAgree(t *testing.T) {
	g := gen.Torus(6, 6)
	members := nnCenters(g, 1)
	a := runRulingSet(t, g, members, 3, 2, congest.EngineSequential)
	for _, eng := range []congest.Engine{congest.EngineGoroutine, congest.EngineParallel} {
		b := runRulingSet(t, g, members, 3, 2, eng)
		if len(a) != len(b) {
			t.Fatalf("%s: engines disagree: %v vs %v", eng, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: engines disagree: %v vs %v", eng, a, b)
			}
		}
	}
}

func TestRulingSetEmptyMembers(t *testing.T) {
	g := gen.Path(10)
	sel := runRulingSet(t, g, nil, 2, 2, congest.EngineSequential)
	if len(sel) != 0 {
		t.Errorf("empty member set produced %v", sel)
	}
}

func TestRulingSetSingleMember(t *testing.T) {
	g := gen.Path(10)
	sel := runRulingSet(t, g, []int{4}, 2, 2, congest.EngineSequential)
	if len(sel) != 1 || sel[0] != 4 {
		t.Errorf("single member: got %v", sel)
	}
}

func TestDigitBase(t *testing.T) {
	cases := []struct {
		n, c int
		want int64
	}{
		{1, 2, 1}, {2, 1, 2}, {16, 2, 4}, {17, 2, 5}, {100, 2, 10},
		{101, 2, 11}, {1000, 3, 10}, {1024, 2, 32}, {5, 3, 2}, {8, 3, 2}, {9, 3, 3},
	}
	for _, c := range cases {
		if got := DigitBase(c.n, c.c); got != c.want {
			t.Errorf("DigitBase(%d,%d)=%d, want %d", c.n, c.c, got, c.want)
		}
	}
	// b^c >= n always.
	for n := 1; n < 200; n += 7 {
		for c := 1; c <= 4; c++ {
			b := DigitBase(n, c)
			p := int64(1)
			for i := 0; i < c; i++ {
				p *= b
			}
			if p < int64(n) {
				t.Errorf("DigitBase(%d,%d)=%d: b^c=%d < n", n, c, b, p)
			}
		}
	}
}

func TestDigits(t *testing.T) {
	// 123 base 5 = 443.
	if digit(123, 0, 5) != 3 || digit(123, 1, 5) != 4 || digit(123, 2, 5) != 4 {
		t.Errorf("digit extraction broken: %d %d %d",
			digit(123, 0, 5), digit(123, 1, 5), digit(123, 2, 5))
	}
}

// --- Climb ---

// buildRouting flattens per-vertex (key -> port) maps into a Routing —
// the test-side constructor for hand-written routing tables. It rides
// the production flatten (buildNNResult) with dummy distances, so the
// tests always exercise the same layout the extraction produces.
func buildRouting(n int, via []map[int64]int) Routing {
	known := make([]map[int64]int32, n)
	for v := range known {
		known[v] = make(map[int64]int32, len(via[v]))
		for k := range via[v] {
			known[v][k] = 0
		}
	}
	return buildNNResult(n, known, via, make([]bool, n)).Routing
}

func TestForestClimbMarksRootPaths(t *testing.T) {
	g := gen.Grid(7, 7)
	roots := map[int]bool{0: true, 24: true, 48: true}
	depth := int32(5)
	sim := runSim(t, g, NewBFSForest(func(v int) bool { return roots[v] }, depth),
		ForestRounds(depth), congest.EngineSequential)
	forest := ExtractForest(sim)

	// Starters: a few spanned vertices far from roots.
	const forestKey = int64(-7)
	rt := NewForestRouting(forest.ParentPort, forestKey)
	start := make([][]int64, g.N())
	var starters []int
	for v := 0; v < g.N(); v++ {
		if forest.Dist[v] == depth {
			start[v] = []int64{forestKey}
			starters = append(starters, v)
		}
	}
	if len(starters) == 0 {
		t.Fatal("no starters at full depth")
	}
	csim, err := congest.NewUniform(g, NewClimb(rt, start), congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := csim.RunUntilQuiet(ClimbMaxRounds(1, int(depth))); err != nil {
		t.Fatal(err)
	}
	edges := edgeset.NewSet(g.N())
	ExtractClimbEdges(csim, edges)
	// Every starter's full parent path must be marked.
	for _, s := range starters {
		v := s
		for forest.ParentPort[v] >= 0 {
			u := g.Neighbor(v, forest.ParentPort[v])
			if !edges.Contains(v, u) {
				t.Fatalf("edge %d-%d on %d's root path not marked", v, u, s)
			}
			v = u
		}
		if !roots[v] {
			t.Fatalf("starter %d's path ended at non-root %d", s, v)
		}
	}
	// No unrelated edges: every marked edge is a forest parent edge.
	for eu, ev := range edges.All() {
		u, v := int(eu), int(ev)
		okUV := forest.ParentPort[u] >= 0 && g.Neighbor(u, forest.ParentPort[u]) == v
		okVU := forest.ParentPort[v] >= 0 && g.Neighbor(v, forest.ParentPort[v]) == u
		if !okUV && !okVU {
			t.Errorf("marked edge %d-%d is not a forest edge", u, v)
		}
	}
}

func TestKeyedClimbTracesToCenters(t *testing.T) {
	g := gen.Grid(8, 8)
	centers := nnCenters(g, 1)
	res := runNN(t, g, centers, 12, 3, congest.EngineSequential)

	start := make([][]int64, g.N())
	var expect [][2]int // (from, to) pairs that must be connected
	for _, c := range centers {
		if res.Popular[c] {
			continue
		}
		targets, _ := res.Known(c)
		start[c] = targets
		for _, target := range targets {
			expect = append(expect, [2]int{c, int(target)})
		}
	}
	if len(expect) == 0 {
		t.Fatal("nothing to trace")
	}
	csim, err := congest.NewUniform(g, NewClimb(&res.Routing, start), congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := csim.RunUntilQuiet(ClimbMaxRounds(8, 10)); err != nil {
		t.Fatal(err)
	}
	edges := edgeset.NewSet(g.N())
	ExtractClimbEdges(csim, edges)
	// Build the marked subgraph and verify connectivity at exact distance.
	h := edges.Graph()
	for _, pair := range expect {
		want, _ := res.DistTo(pair[0], int64(pair[1]))
		if got := h.Distance(pair[0], pair[1]); got != want {
			t.Errorf("traced pair %v: distance in marked subgraph %d, want %d", pair, got, want)
		}
	}
}

func TestClimbRespectsBandwidth(t *testing.T) {
	// Many keys through one bottleneck vertex: queues must serialize
	// without violating bandwidth (Run returns error on violation).
	g := gen.Star(20)
	via := make([]map[int64]int, g.N())
	start := make([][]int64, g.N())
	// Leaves 1..9 each trace to leaf 19 via hub 0.
	hubPortTo19 := g.PortOf(0, 19)
	for leaf := 1; leaf < 10; leaf++ {
		via[leaf] = map[int64]int{19: g.PortOf(leaf, 0)}
		start[leaf] = []int64{19}
	}
	via[0] = map[int64]int{19: hubPortTo19}
	rt := buildRouting(g.N(), via)
	csim, err := congest.NewUniform(g, NewClimb(&rt, start), congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := csim.RunUntilQuiet(100); err != nil {
		t.Fatalf("climb violated bandwidth: %v", err)
	}
	edges := edgeset.NewSet(g.N())
	ExtractClimbEdges(csim, edges)
	if !edges.Contains(0, 19) {
		t.Error("hub-to-target edge not marked")
	}
	if edges.Len() != 10 {
		t.Errorf("marked %d edges, want 10", edges.Len())
	}
}

// --- Adversarial delivery order: protocol outputs must not depend on
// the order messages are presented within a round ---

func TestProtocolsOrderIndependent(t *testing.T) {
	g := gen.GNP(50, 0.12, 23, true)
	centers := nnCenters(g, 2)
	isC := make(map[int]bool)
	for _, c := range centers {
		isC[c] = true
	}
	deg, delta := 4, int32(3)

	runWith := func(delivery congest.DeliveryOrder) (NNResult, []int, ForestResult) {
		opts := congest.Options{Delivery: delivery}
		simNN, err := congest.NewUniform(g,
			NewNearNeighbors(func(v int) bool { return isC[v] }, deg, delta), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := simNN.Run(NearNeighborsRounds(deg, delta)); err != nil {
			t.Fatal(err)
		}
		nn := ExtractNN(simNN)

		simRS, err := congest.NewUniform(g,
			NewRulingSet(func(v int) bool { return isC[v] }, 3, 2, g.N()), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := simRS.Run(RulingSetRounds(3, 2, g.N())); err != nil {
			t.Fatal(err)
		}
		rs := ExtractRulingSet(simRS)

		simF, err := congest.NewUniform(g,
			NewBFSForest(func(v int) bool { return v%9 == 0 }, 5), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := simF.Run(ForestRounds(5)); err != nil {
			t.Fatal(err)
		}
		return nn, rs, ExtractForest(simF)
	}

	nnA, rsA, fA := runWith(congest.DeliverPortAscending)
	nnB, rsB, fB := runWith(congest.DeliverPortDescending)

	for v := 0; v < g.N(); v++ {
		aKeys, aDist := nnA.Known(v)
		bKeys, bDist := nnB.Known(v)
		if len(aKeys) != len(bKeys) || nnA.Popular[v] != nnB.Popular[v] {
			t.Fatalf("NN order-dependent at vertex %d", v)
		}
		for i, c := range aKeys {
			aPort, _ := nnA.Port(v, c)
			bPort, _ := nnB.Port(v, c)
			if bKeys[i] != c || bDist[i] != aDist[i] || bPort != aPort {
				t.Errorf("NN order-dependent at vertex %d center %d", v, c)
			}
		}
		if fA.Dist[v] != fB.Dist[v] || fA.Root[v] != fB.Root[v] || fA.ParentPort[v] != fB.ParentPort[v] {
			t.Errorf("forest order-dependent at vertex %d", v)
		}
	}
	if len(rsA) != len(rsB) {
		t.Fatalf("ruling set order-dependent: %v vs %v", rsA, rsB)
	}
	for i := range rsA {
		if rsA[i] != rsB[i] {
			t.Errorf("ruling set order-dependent: %v vs %v", rsA, rsB)
		}
	}
}

func TestClimbOrderIndependentEdges(t *testing.T) {
	g := gen.Grid(7, 7)
	centers := nnCenters(g, 1)
	res := runNN(t, g, centers, 10, 3, congest.EngineSequential)
	start := make([][]int64, g.N())
	for _, c := range centers {
		if res.Popular[c] {
			continue
		}
		targets, _ := res.Known(c)
		start[c] = targets
	}
	edgesFor := func(delivery congest.DeliveryOrder) *edgeset.Set {
		sim, err := congest.NewUniform(g, NewClimb(&res.Routing, start), congest.Options{Delivery: delivery})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunUntilQuiet(ClimbMaxRounds(10, 4)); err != nil {
			t.Fatal(err)
		}
		edges := edgeset.NewSet(g.N())
		ExtractClimbEdges(sim, edges)
		return edges
	}
	a := edgesFor(congest.DeliverPortAscending)
	b := edgesFor(congest.DeliverPortDescending)
	if a.Len() != b.Len() {
		t.Fatalf("climb edge sets differ in size: %d vs %d", a.Len(), b.Len())
	}
	for u, v := range a.All() {
		if !b.Contains(int(u), int(v)) {
			t.Errorf("climb edge {%d,%d} only under ascending delivery", u, v)
		}
	}
}

// --- Round budgets are tight enough: extra rounds change nothing ---

func TestNNRoundBudgetSufficient(t *testing.T) {
	g := gen.Grid(6, 6)
	centers := nnCenters(g, 2)
	isC := make(map[int]bool)
	for _, c := range centers {
		isC[c] = true
	}
	deg, delta := 3, int32(4)
	factory := NewNearNeighbors(func(v int) bool { return isC[v] }, deg, delta)

	exact := runSim(t, g, factory, NearNeighborsRounds(deg, delta), congest.EngineSequential)
	extra := runSim(t, g, factory, NearNeighborsRounds(deg, delta)+2*(deg+1), congest.EngineSequential)
	a, b := ExtractNN(exact), ExtractNN(extra)
	for v := 0; v < g.N(); v++ {
		if a.Count(v) != b.Count(v) {
			t.Errorf("v%d: budget run knows %d, longer run knows %d — budget too small",
				v, a.Count(v), b.Count(v))
		}
	}
}

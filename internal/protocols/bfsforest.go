// Package protocols implements the distributed building blocks of the
// spanner construction as CONGEST node programs:
//
//   - BFSForest: multi-source BFS forest growth to a bounded depth
//     (used by the superclustering step, paper §2.2).
//   - NearNeighbors: Algorithm 1 of the paper (Appendix A), the
//     bandwidth-respecting detection of popular cluster centers.
//   - RulingSet: the deterministic (q+1, cq)-ruling set computation of
//     Theorem 2.2 (Schneider–Elkin–Wattenhofer / Kuhn–Maus–Weidner
//     style digit competition).
//   - Climb: parent-pointer path tracing, used to add tree paths and
//     interconnection paths to the spanner.
//
// Every protocol is deterministic; ties are always broken toward smaller
// IDs, so repeated runs (and both simulator engines) produce identical
// results.
package protocols

import (
	"nearspan/internal/congest"
)

// Message kinds. Kept in one block so no two protocols share a kind; the
// core driver runs protocols back to back and distinct kinds make stray
// late messages detectable.
const (
	kindForest uint8 = iota + 1
	kindNN
	kindRulingWave
	kindClimb
)

// BFSForest grows a BFS forest of depth MaxDepth rooted at the root set.
// After Run(Rounds()) on a simulator, every vertex within distance
// MaxDepth of the root set knows its distance (Dist), the ID of its root
// (Root), and the port toward its parent (ParentPort; -1 at roots).
//
// Adoption ties are broken toward the smallest root ID, then the smallest
// parent ID — the same rule as graph.MultiBFS, which is the sequential
// oracle for this protocol.
type BFSForest struct {
	IsRoot   bool
	MaxDepth int32

	Dist       int32 // -1 if not reached
	Root       int64 // -1 if not reached
	ParentPort int   // -1 at roots and unreached vertices
}

var _ congest.Program = (*BFSForest)(nil)

// NewBFSForest returns the program factory for a forest rooted at roots
// (given as a membership predicate) with the given depth bound.
func NewBFSForest(isRoot func(v int) bool, maxDepth int32) func(v int) congest.Program {
	return func(v int) congest.Program {
		return &BFSForest{IsRoot: isRoot(v), MaxDepth: maxDepth}
	}
}

// ForestRounds is the round budget for a depth-d forest: layer k adopts
// at round k, for k = 1..d.
func ForestRounds(maxDepth int32) int { return int(maxDepth) }

// Init implements congest.Program.
func (b *BFSForest) Init(env *congest.Env) {
	b.Dist = -1
	b.Root = -1
	b.ParentPort = -1
	if b.IsRoot {
		b.Dist = 0
		b.Root = int64(env.ID())
		if b.MaxDepth > 0 {
			_ = env.Broadcast(forestMsg(b.Root, 0))
		}
	}
	env.Halt()
}

// Round implements congest.Program.
func (b *BFSForest) Round(env *congest.Env, recv []congest.Inbound) {
	defer env.Halt()
	if b.Dist >= 0 {
		return // already adopted; late messages carry larger distances
	}
	bestRoot := int64(-1)
	bestParent := -1
	bestPort := -1
	for _, in := range recv {
		if in.Msg.Kind != kindForest {
			continue
		}
		root := in.Msg.Words[0]
		sender := env.NeighborID(in.Port)
		if bestRoot < 0 || root < bestRoot || (root == bestRoot && sender < bestParent) {
			bestRoot = root
			bestParent = sender
			bestPort = in.Port
		}
	}
	if bestRoot < 0 {
		return
	}
	b.Dist = int32(env.Round())
	b.Root = bestRoot
	b.ParentPort = bestPort
	if b.Dist < b.MaxDepth {
		_ = env.Broadcast(forestMsg(b.Root, b.Dist))
	}
}

func forestMsg(root int64, dist int32) congest.Message {
	return congest.Message{Kind: kindForest, Words: [congest.MessageWords]int64{root, int64(dist)}}
}

// ForestResult is the per-vertex outcome of a BFSForest run.
type ForestResult struct {
	Dist       []int32
	Root       []int64
	ParentPort []int
}

// ExtractForest collects the per-vertex forest state from a finished
// simulator whose programs are *BFSForest.
func ExtractForest(sim *congest.Simulator) ForestResult {
	n := sim.Graph().N()
	res := ForestResult{
		Dist:       make([]int32, n),
		Root:       make([]int64, n),
		ParentPort: make([]int, n),
	}
	for v := 0; v < n; v++ {
		p := sim.Program(v).(*BFSForest)
		res.Dist[v] = p.Dist
		res.Root[v] = p.Root
		res.ParentPort[v] = p.ParentPort
	}
	return res
}

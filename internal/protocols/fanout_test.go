package protocols

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"nearspan/internal/congest"
	"nearspan/internal/gen"
)

// A subscriber attached after some emissions must see the full history
// replayed, then the live stream, with no gap and no duplicate.
func TestStepFanoutReplayThenLive(t *testing.T) {
	var fan StepFanout
	for i := 0; i < 5; i++ {
		fan.Emit(StepMetrics{Step: "pre", Rounds: i})
	}
	var got []StepMetrics
	fan.Subscribe(func(sm StepMetrics) { got = append(got, sm) })
	for i := 5; i < 10; i++ {
		fan.Emit(StepMetrics{Step: "post", Rounds: i})
	}
	if len(got) != 10 {
		t.Fatalf("subscriber saw %d metrics, want 10 (5 replayed + 5 live)", len(got))
	}
	for i, sm := range got {
		if sm.Rounds != i {
			t.Fatalf("position %d carries Rounds=%d: stream torn", i, sm.Rounds)
		}
	}
	if steps := fan.Steps(); len(steps) != 10 {
		t.Errorf("history holds %d entries, want 10", len(steps))
	}
}

// Once Unsubscribe returns the callback must never fire again, and
// unsubscribing an unknown or already-removed id is a no-op.
func TestStepFanoutUnsubscribeStopsDelivery(t *testing.T) {
	var fan StepFanout
	calls := 0
	id := fan.Subscribe(func(StepMetrics) { calls++ })
	fan.Emit(StepMetrics{Rounds: 0})
	fan.Unsubscribe(id)
	fan.Unsubscribe(id)
	fan.Unsubscribe(999)
	fan.Emit(StepMetrics{Rounds: 1})
	if calls != 1 {
		t.Fatalf("callback fired %d times, want 1 (one emit before unsubscribe)", calls)
	}
	if fan.Len() != 0 {
		t.Fatalf("fanout reports %d subscribers after unsubscribe", fan.Len())
	}
}

// Randomized subscribe/unsubscribe churn against a concurrent emitter,
// in the style of the frontier fuzz suite: whatever the interleaving,
// every subscriber must observe an exact prefix of the emitted stream
// (replay guarantees the start, the emit lock guarantees no tear, and
// Unsubscribe guarantees a clean cut). Run with -race this is also the
// data-race regression test for multi-consumer OnStep delivery.
func TestStepFanoutRandomizedSubscribeUnsubscribe(t *testing.T) {
	const (
		workers = 4
		emits   = 300
	)
	for seed := int64(0); seed < 10; seed++ {
		var fan StepFanout
		done := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed*100 + int64(w)))
				for {
					select {
					case <-done:
						return
					default:
					}
					// got is written only under the fanout lock (replay in
					// Subscribe, delivery in Emit) and read after Unsubscribe
					// returns, which orders the accesses.
					var got []StepMetrics
					id := fan.Subscribe(func(sm StepMetrics) { got = append(got, sm) })
					for i := rng.Intn(4); i > 0; i-- {
						runtime.Gosched()
					}
					fan.Unsubscribe(id)
					for i, sm := range got {
						if sm.Rounds != i {
							t.Errorf("seed %d worker %d: position %d carries Rounds=%d: not a prefix",
								seed, w, i, sm.Rounds)
							return
						}
					}
				}
			}(w)
		}
		for i := 0; i < emits; i++ {
			fan.Emit(StepMetrics{Step: "fuzz", Rounds: i})
			if i%16 == 0 {
				runtime.Gosched()
			}
		}
		close(done)
		wg.Wait()
	}
}

// The fan-out wired into a real network: sessions emit through the
// fan-out while subscribers churn, and a subscriber attached for the
// whole run must see exactly the network's recorded step stream. This is
// the regression test for the /events use case — consumers attaching and
// detaching mid-build.
func TestStepFanoutDuringNetworkSessions(t *testing.T) {
	g := gen.GNP(70, 0.1, 7, true)
	net, err := NewNetwork(g, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	var fan StepFanout
	net.SetOnStep(fan.Emit)

	var full []StepMetrics
	fan.Subscribe(func(sm StepMetrics) { full = append(full, sm) })

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var got []StepMetrics
				id := fan.Subscribe(func(sm StepMetrics) { got = append(got, sm) })
				runtime.Gosched()
				fan.Unsubscribe(id)
				for i := 1; i < len(got); i++ {
					if got[i-1] == got[i] {
						t.Errorf("worker %d: duplicate delivery %+v", w, got[i])
						return
					}
				}
			}
		}(w)
	}

	ctx := context.Background()
	for phase := 0; phase < 8; phase++ {
		if _, _, err := RunNearNeighbors(ctx, net, phase, func(int) bool { return true }, 3, 2); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	steps := net.Steps()
	if len(full) != len(steps) {
		t.Fatalf("persistent subscriber saw %d metrics, network recorded %d", len(full), len(steps))
	}
	for i := range steps {
		if full[i] != steps[i] {
			t.Errorf("step %d: subscriber %+v vs network %+v", i, full[i], steps[i])
		}
	}
}

package protocols

import (
	"sort"

	"nearspan/internal/congest"
)

// Climb traces paths through per-vertex routing pointers and records the
// edges traversed; the recorded edges are what the spanner construction
// adds to H.
//
// Each trace is identified by a key. A vertex that participates in a
// trace for key k looks up its outgoing port in Via[k] and forwards the
// trace exactly once per key, ever — traces for the same key from
// different initiators merge, which both bounds congestion and keeps the
// added edge set minimal (the pointers for one key form a tree directed
// toward the key's target, so one forwarding per vertex marks the whole
// root path).
//
// Two modes cover the paper's uses:
//
//   - Superclustering (Fig. 4): keys are root IDs and Via holds BFS-forest
//     parent ports; spanned cluster centers initiate, and the forest path
//     from each spanned center to its root lands in H.
//   - Interconnection (Fig. 5): keys are cluster-center IDs and Via holds
//     the ports recorded by Algorithm 1; an unpopular center initiates one
//     trace per nearby center, and a shortest path to each lands in H.
//
// Per round, a vertex sends at most one queued trace per port, so the
// protocol respects bandwidth 1. It is message-driven: run with
// RunUntilQuiet.
type Climb struct {
	// Via maps a key to the port toward that key's target. Missing keys
	// terminate the trace at this vertex (roots in forest mode).
	Via map[int64]int
	// Start lists keys whose traces this vertex initiates.
	Start []int64

	// MarkedPorts lists the ports whose edges this vertex added to H.
	MarkedPorts []int

	forwarded map[int64]bool
	queues    [][]int64
}

var _ congest.Program = (*Climb)(nil)

// NewClimb returns a factory over per-vertex routing tables and start
// sets. via[v] may be nil for vertices with no pointers; start[v] may be
// nil for non-initiators.
func NewClimb(via []map[int64]int, start [][]int64) func(v int) congest.Program {
	return func(v int) congest.Program {
		return &Climb{Via: via[v], Start: start[v]}
	}
}

// ClimbMaxRounds bounds the rounds a Climb can take: every vertex
// forwards at most keysPerVertex traces, each over a path of at most
// pathLen hops, and per-port queuing delays each hop by at most
// keysPerVertex rounds.
func ClimbMaxRounds(keysPerVertex, pathLen int) int {
	return (keysPerVertex+1)*(pathLen+1) + 2
}

// Init implements congest.Program.
func (c *Climb) Init(env *congest.Env) {
	c.forwarded = make(map[int64]bool, len(c.Start))
	c.queues = make([][]int64, env.Degree())
	// Deterministic initiation order: ascending key.
	keys := append([]int64(nil), c.Start...)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		c.accept(env, k)
	}
	c.pump(env)
}

// Round implements congest.Program.
func (c *Climb) Round(env *congest.Env, recv []congest.Inbound) {
	for _, in := range recv {
		if in.Msg.Kind != kindClimb {
			continue
		}
		c.accept(env, in.Msg.Words[0])
	}
	c.pump(env)
}

// accept handles participation in the trace for key k: mark the outgoing
// edge and enqueue the forward, once per key.
func (c *Climb) accept(env *congest.Env, k int64) {
	if c.forwarded[k] {
		return
	}
	c.forwarded[k] = true
	if int64(env.ID()) == k {
		return // reached the target
	}
	port, ok := c.Via[k]
	if !ok {
		return // root / no pointer: trace terminates here
	}
	c.MarkedPorts = append(c.MarkedPorts, port)
	c.queues[port] = append(c.queues[port], k)
}

// pump sends one queued trace per port, then halts if nothing is pending.
func (c *Climb) pump(env *congest.Env) {
	pending := false
	for p := range c.queues {
		if len(c.queues[p]) == 0 {
			continue
		}
		k := c.queues[p][0]
		c.queues[p] = c.queues[p][1:]
		_ = env.Send(p, congest.Message{Kind: kindClimb, Words: [congest.MessageWords]int64{k}})
		if len(c.queues[p]) > 0 {
			pending = true
		}
	}
	if !pending {
		env.Halt()
	}
}

// Edge is an undirected edge, normalized U < V.
type Edge struct{ U, V int32 }

// NormEdge normalizes an edge to U < V.
func NormEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: int32(u), V: int32(v)}
}

// ExtractClimbEdges collects the union of marked edges from a finished
// Climb simulation.
func ExtractClimbEdges(sim *congest.Simulator) map[Edge]bool {
	g := sim.Graph()
	out := make(map[Edge]bool)
	for v := 0; v < g.N(); v++ {
		p := sim.Program(v).(*Climb)
		for _, port := range p.MarkedPorts {
			out[NormEdge(v, g.Neighbor(v, port))] = true
		}
	}
	return out
}

package protocols

import (
	"slices"

	"nearspan/internal/congest"
	"nearspan/internal/edgeset"
)

// Climb traces paths through per-vertex routing pointers and records the
// edges traversed; the recorded edges are what the spanner construction
// adds to H.
//
// Each trace is identified by a key. A vertex that participates in a
// trace for key k looks up its outgoing port in the routing run and
// forwards the trace exactly once per key, ever — traces for the same
// key from different initiators merge, which both bounds congestion and
// keeps the added edge set minimal (the pointers for one key form a tree
// directed toward the key's target, so one forwarding per vertex marks
// the whole root path).
//
// Two modes cover the paper's uses:
//
//   - Superclustering (Fig. 4): keys are root IDs and the routing holds
//     BFS-forest parent ports; spanned cluster centers initiate, and the
//     forest path from each spanned center to its root lands in H.
//   - Interconnection (Fig. 5): keys are cluster-center IDs and the
//     routing holds the ports recorded by Algorithm 1; an unpopular
//     center initiates one trace per nearby center, and a shortest path
//     to each lands in H.
//
// Per round, a vertex sends at most one queued trace per port, so the
// protocol respects bandwidth 1. It is message-driven: run with
// RunUntilQuiet.
type Climb struct {
	// Keys and Ports are the vertex's routing run (Routing.At): for key
	// Keys[i], the trace forwards over port Ports[i]. Keys absent from
	// the run terminate the trace at this vertex (roots in forest mode).
	Keys  []int64
	Ports []int32
	// Start lists keys whose traces this vertex initiates, sorted
	// ascending (the deterministic initiation order; an unsorted slice is
	// cloned and sorted defensively).
	Start []int64

	// MarkedPorts lists the ports whose edges this vertex added to H.
	MarkedPorts []int32

	forwarded []bool // parallel to Keys: forwarded this key already
	queues    [][]int64
}

var _ congest.Program = (*Climb)(nil)

// NewClimb returns a factory over the routing plane and per-vertex start
// sets. start[v] may be nil for non-initiators; non-nil slices must be
// sorted ascending (NNResult runs and single-key forest starts are).
func NewClimb(rt *Routing, start [][]int64) func(v int) congest.Program {
	return func(v int) congest.Program {
		keys, ports := rt.At(v)
		return &Climb{Keys: keys, Ports: ports, Start: start[v]}
	}
}

// ClimbMaxRounds bounds the rounds a Climb can take: every vertex
// forwards at most keysPerVertex traces, each over a path of at most
// pathLen hops, and per-port queuing delays each hop by at most
// keysPerVertex rounds.
func ClimbMaxRounds(keysPerVertex, pathLen int) int {
	return (keysPerVertex+1)*(pathLen+1) + 2
}

// Init implements congest.Program.
func (c *Climb) Init(env *congest.Env) {
	c.forwarded = make([]bool, len(c.Keys))
	c.queues = make([][]int64, env.Degree())
	keys := c.Start
	if !slices.IsSorted(keys) {
		keys = slices.Clone(keys)
		slices.Sort(keys)
	}
	for _, k := range keys {
		c.accept(env, k)
	}
	c.pump(env)
}

// Round implements congest.Program.
func (c *Climb) Round(env *congest.Env, recv []congest.Inbound) {
	for _, in := range recv {
		if in.Msg.Kind != kindClimb {
			continue
		}
		c.accept(env, in.Msg.Words[0])
	}
	c.pump(env)
}

// accept handles participation in the trace for key k: mark the outgoing
// edge and enqueue the forward, once per key. Keys the vertex has no
// pointer for (or that target the vertex itself) terminate here; they
// need no dedupe because repeats have no effect.
func (c *Climb) accept(env *congest.Env, k int64) {
	if int64(env.ID()) == k {
		return // reached the target
	}
	i, ok := slices.BinarySearch(c.Keys, k)
	if !ok {
		return // root / no pointer: trace terminates here
	}
	if c.forwarded[i] {
		return
	}
	c.forwarded[i] = true
	port := c.Ports[i]
	c.MarkedPorts = append(c.MarkedPorts, port)
	c.queues[port] = append(c.queues[port], k)
}

// pump sends one queued trace per port, then halts if nothing is pending.
func (c *Climb) pump(env *congest.Env) {
	pending := false
	for p := range c.queues {
		if len(c.queues[p]) == 0 {
			continue
		}
		k := c.queues[p][0]
		c.queues[p] = c.queues[p][1:]
		_ = env.Send(p, congest.Message{Kind: kindClimb, Words: [congest.MessageWords]int64{k}})
		if len(c.queues[p]) > 0 {
			pending = true
		}
	}
	if !pending {
		env.Halt()
	}
}

// Edge is an undirected edge, normalized U < V.
type Edge struct{ U, V int32 }

// NormEdge normalizes an edge to U < V.
func NormEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: int32(u), V: int32(v)}
}

// ExtractClimbEdges adds the union of marked edges from a finished Climb
// simulation into the given set, returning how many were new to it. The
// construction passes the spanner accumulator H directly, so climb
// results land in the spanner without an intermediate edge map.
func ExtractClimbEdges(sim *congest.Simulator, into *edgeset.Set) int {
	g := sim.Graph()
	added := 0
	for v := 0; v < g.N(); v++ {
		p := sim.Program(v).(*Climb)
		for _, port := range p.MarkedPorts {
			if into.Add(v, g.Neighbor(v, int(port))) {
				added++
			}
		}
	}
	return added
}

package protocols

import (
	"slices"

	"nearspan/internal/graph"
)

// This file holds centralized counterparts of the distributed protocols.
// They compute the same outputs directly on the graph — same deterministic
// tie-breaking, no round machinery — and serve two purposes: oracles in
// the protocol tests, and the building blocks of the centralized
// reference implementation of the spanner construction (internal/core),
// whose output must be identical to the distributed one.

// CentralNearNeighbors is the phase-level simulation of Algorithm 1: it
// reproduces the distributed NearNeighbors protocol's Known/Via/Popular
// outputs exactly (tested), without the round machinery.
//
// Phase p delivers announcements that traversed p edges. Each vertex
// selects up to deg+1 of the phase's heard centers (smallest IDs first,
// known or not; see the forward-budget finding on NearNeighbors) as the
// next phase's forwards, and stores first-heard centers up to deg stored
// entries — the same rules, in the same order, as the distributed
// protocol.
func CentralNearNeighbors(g *graph.Graph, centers []int, deg int, delta int32) NNResult {
	nn, _ := CentralNearNeighborsRec(g, centers, deg, delta, nil)
	return nn
}

// CentralNearNeighborsRec is CentralNearNeighbors with optional forward-
// transcript recording: when rec is non-nil, every vertex's per-phase
// forward selections are recorded and the finished transcript returned
// (zero-value otherwise). The recorded segments are identical to those a
// distributed run with the same inputs records — the forward selections
// are bit-equal across modes, and the encoder is shared.
func CentralNearNeighborsRec(g *graph.Graph, centers []int, deg int, delta int32, rec *TranscriptRecorder) (NNResult, NNTranscript) {
	n := g.N()
	known := make([]map[int64]int32, n)
	via := make([]map[int64]int, n)
	popular := make([]bool, n)
	for v := 0; v < n; v++ {
		known[v] = make(map[int64]int32)
		via[v] = make(map[int64]int)
	}
	isCenter := make([]bool, n)
	for _, c := range centers {
		isCenter[c] = true
	}

	// buffer[v] holds this phase's hearings: center -> best sender.
	buffer := make([]map[int64]hearing, n)
	for v := range buffer {
		buffer[v] = make(map[int64]hearing)
	}
	hear := func(v int, c int64, sender int) {
		if c == int64(v) {
			return
		}
		h, ok := buffer[v][c]
		if !ok || sender < h.sender {
			buffer[v][c] = hearing{sender: sender, port: g.PortOf(v, sender)}
		}
	}

	// Phase 0: announcements.
	for _, c := range centers {
		for _, u := range g.Neighbors(c) {
			hear(int(u), int64(c), c)
		}
	}

	var scratch []int64 // one vertex's forward list, reused across vertices
	for p := int32(1); p <= delta; p++ {
		// Process phase-p hearings (distance p), then deliver forwards.
		type fwd struct {
			v int
			c int64
		}
		var forwards []fwd
		for v := 0; v < n; v++ {
			if len(buffer[v]) == 0 {
				continue
			}
			ids := make([]int64, 0, len(buffer[v]))
			for c := range buffer[v] {
				ids = append(ids, c)
			}
			slices.Sort(ids)
			scratch = scratch[:0]
			for _, c := range ids {
				if len(scratch) < deg+1 && p < delta {
					scratch = append(scratch, c)
				}
				if _, stored := known[v][c]; !stored && len(known[v]) < deg {
					h := buffer[v][c]
					known[v][c] = p
					via[v][c] = h.port
				}
			}
			for _, c := range scratch {
				forwards = append(forwards, fwd{v: v, c: c})
			}
			if rec != nil && p < delta {
				rec.Set(v, p, scratch)
			}
			buffer[v] = make(map[int64]hearing)
		}
		for _, f := range forwards {
			for _, u := range g.Neighbors(f.v) {
				hear(int(u), f.c, f.v)
			}
		}
		if len(forwards) == 0 {
			// No waves remain: later phases hear nothing. The distributed
			// schedule still ticks through them, but the knowledge state
			// is final, so the simulation can stop.
			break
		}
	}
	for v := 0; v < n; v++ {
		popular[v] = isCenter[v] && len(known[v]) >= deg
	}
	var tr NNTranscript
	if rec != nil {
		tr = rec.Finish(delta - 1)
	}
	return buildNNResult(n, known, via, popular), tr
}

// TracePath follows Via pointers from v toward center c using the
// NNResult routing state, returning the vertex sequence v, ..., c. It
// reports ok=false if the pointers do not lead to c (which the
// construction never encounters for its traced pairs; tested).
func TracePath(g *graph.Graph, nn NNResult, v int, c int64) (path []int, ok bool) {
	cur := v
	path = append(path, cur)
	for int64(cur) != c {
		port, exists := nn.Port(cur, c)
		if !exists || len(path) > g.N() {
			return path, false
		}
		cur = g.Neighbor(cur, port)
		path = append(path, cur)
	}
	return path, true
}

// CentralRulingSet runs the digit-competition ruling set centrally,
// reproducing the distributed protocol's output exactly: same digits,
// same window order, same kill radius q.
func CentralRulingSet(g *graph.Graph, members []int, q int32, c int, n int) []int {
	b := DigitBase(n, c)
	// Dense active flags over a sorted member list: the competition below
	// is order-independent (kills are a pure function of digits and
	// distances), and the ascending scan makes the output sorted for free.
	sorted := slices.Clone(members)
	slices.Sort(sorted)
	sorted = slices.Compact(sorted)
	active := make([]bool, g.N())
	for _, w := range sorted {
		active[w] = true
	}
	var firing []int
	for pos := c - 1; pos >= 0; pos-- {
		for value := b - 1; value >= 0; value-- {
			firing = firing[:0]
			for _, w := range sorted {
				if active[w] && digit(int64(w), pos, b) == value {
					firing = append(firing, w)
				}
			}
			if len(firing) == 0 {
				continue
			}
			// Kill active candidates with a smaller current digit within
			// distance q of any firing candidate.
			dist, _, _ := g.MultiBFS(firing, q)
			for _, w := range sorted {
				if active[w] && dist[w] <= q && digit(int64(w), pos, b) < value {
					active[w] = false
				}
			}
		}
	}
	out := make([]int, 0, len(sorted))
	for _, w := range sorted {
		if active[w] {
			out = append(out, w)
		}
	}
	return out
}

// VerifyRulingSet checks the two ruling-set guarantees and returns
// (separationOK, dominationOK). Separation: selected vertices pairwise at
// distance >= q+1. Domination: every member within domRadius of a
// selected vertex.
func VerifyRulingSet(g *graph.Graph, members, selected []int, q int32, domRadius int32) (sepOK, domOK bool) {
	sepOK = true
	sel := make(map[int]bool, len(selected))
	for _, s := range selected {
		sel[s] = true
	}
	for _, s := range selected {
		dist := g.BFSBounded(s, q)
		for v := 0; v < g.N(); v++ {
			if v != s && sel[v] && dist[v] <= q {
				sepOK = false
			}
		}
	}
	domOK = true
	if len(selected) > 0 {
		dist, _, _ := g.MultiBFS(selected, domRadius)
		for _, w := range members {
			if dist[w] > domRadius {
				domOK = false
			}
		}
	} else if len(members) > 0 {
		domOK = false
	}
	return sepOK, domOK
}

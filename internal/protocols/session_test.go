package protocols

import (
	"context"
	"strings"
	"testing"

	"nearspan/internal/congest"
	"nearspan/internal/gen"
)

// A full protocol pipeline run as sessions on one persistent network
// must produce the same results and per-step costs as fresh simulators,
// on every engine.
func TestSessionsMatchFreshSimulators(t *testing.T) {
	g := gen.GNP(70, 0.1, 7, true)
	isCenter := func(v int) bool { return true }
	deg, delta := 5, int32(3)
	q, c := int32(2), 3

	// Reference: one fresh simulator per step (the pre-session world).
	refSim, err := congest.NewUniform(g, NewNearNeighbors(isCenter, deg, delta), congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := refSim.Run(NearNeighborsRounds(deg, delta)); err != nil {
		t.Fatal(err)
	}
	refNN := ExtractNN(refSim)
	refNNMsgs := refSim.Metrics().Messages

	refSim2, err := congest.NewUniform(g, NewRulingSet(isCenter, q, c, g.N()), congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := refSim2.Run(RulingSetRounds(q, c, g.N())); err != nil {
		t.Fatal(err)
	}
	refRS := ExtractRulingSet(refSim2)

	for _, eng := range congest.Engines() {
		net, err := NewNetwork(g, congest.Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		nn, nnRounds, err := RunNearNeighbors(context.Background(), net, 0, isCenter, deg, delta)
		if err != nil {
			t.Fatal(err)
		}
		if nnRounds != NearNeighborsRounds(deg, delta) {
			t.Errorf("%s: NN rounds %d, want budget %d", eng, nnRounds, NearNeighborsRounds(deg, delta))
		}
		for v := 0; v < g.N(); v++ {
			if nn.Popular[v] != refNN.Popular[v] || nn.Count(v) != refNN.Count(v) {
				t.Fatalf("%s: NN result differs at vertex %d", eng, v)
			}
		}
		rs, _, err := RunRulingSet(context.Background(), net, 0, isCenter, q, c, g.N())
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != len(refRS) {
			t.Fatalf("%s: ruling set size %d, fresh %d", eng, len(rs), len(refRS))
		}
		for i := range rs {
			if rs[i] != refRS[i] {
				t.Fatalf("%s: ruling set differs at %d: %d vs %d", eng, i, rs[i], refRS[i])
			}
		}
		forest, _, err := RunForest(context.Background(), net, 0, func(v int) bool { return v == 0 }, 4)
		if err != nil {
			t.Fatal(err)
		}
		want := g.BFSBounded(0, 4)
		for v := 0; v < g.N(); v++ {
			if forest.Dist[v] >= 0 && forest.Dist[v] != want[v] {
				t.Errorf("%s: forest dist[%d]=%d, BFS %d", eng, v, forest.Dist[v], want[v])
			}
		}

		steps := net.Steps()
		if len(steps) != 3 {
			t.Fatalf("%s: %d step records, want 3", eng, len(steps))
		}
		if steps[0].Step != StepNearNeighbors || steps[0].Messages != refNNMsgs {
			t.Errorf("%s: NN step metrics %+v (fresh messages %d)", eng, steps[0], refNNMsgs)
		}
		if steps[1].Step != StepRulingSet || steps[2].Step != StepForest {
			t.Errorf("%s: step order wrong: %+v", eng, steps)
		}
		net.Close()
	}
}

// A session whose schedule ends with its own messages still in flight
// must report the under-budget instead of leaking late messages into
// the next session.
func TestSessionReportsUnderBudgetSchedule(t *testing.T) {
	g := gen.Path(10)
	net, err := NewNetwork(g, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A depth-8 forest needs 8 rounds; cut it off after 3 with the wave
	// still travelling.
	err = net.Session(0, StepForest, kindForest).Run(
		context.Background(), NewBFSForest(func(v int) bool { return v == 0 }, 8), 3)
	if err == nil {
		t.Fatal("under-budgeted session finished without a violation")
	}
	if !strings.Contains(err.Error(), "under-budgeted") || !strings.Contains(err.Error(), StepForest) {
		t.Errorf("violation does not name the under-budget: %v", err)
	}
	if len(net.Steps()) != 0 {
		t.Error("violating session still recorded metrics")
	}
	// The network remains usable: the next session starts clean.
	if _, _, err := RunForest(context.Background(), net, 1, func(v int) bool { return v == 0 }, 9); err != nil {
		t.Errorf("network unusable after a reported violation: %v", err)
	}
}

// foreignSender emits a message under a kind outside its session's
// namespace in the final round, so it is still in flight at the session
// boundary.
type foreignSender struct{ kind uint8 }

func (p *foreignSender) Init(env *congest.Env) {}
func (p *foreignSender) Round(env *congest.Env, recv []congest.Inbound) {
	if env.ID() == 0 && env.Degree() > 0 {
		_ = env.Send(0, congest.Message{Kind: p.kind})
	}
}

func TestSessionReportsForeignKindTraffic(t *testing.T) {
	g := gen.Path(4)
	net, err := NewNetwork(g, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = net.Session(2, StepRulingSet, kindRulingWave).Run(
		context.Background(), func(v int) congest.Program { return &foreignSender{kind: kindClimb} }, 2)
	if err == nil {
		t.Fatal("foreign-kind traffic not reported")
	}
	if !strings.Contains(err.Error(), "kind namespace") {
		t.Errorf("violation does not name the namespace breach: %v", err)
	}
}

func TestRecordIdle(t *testing.T) {
	net, err := NewNetwork(gen.Path(3), congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	net.RecordIdle(4, StepRulingSet, 17)
	steps := net.Steps()
	if len(steps) != 1 || steps[0] != (StepMetrics{Phase: 4, Step: StepRulingSet, Rounds: 17}) {
		t.Errorf("RecordIdle stored %+v", steps)
	}
}

package protocols

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"math"
	"slices"

	"nearspan/internal/congest"
	"nearspan/internal/edgeset"
	"nearspan/internal/graph"
)

// Step names, one per protocol step of the construction. They key the
// per-step metrics and identify sessions in violation reports.
const (
	StepNearNeighbors = "near-neighbors"
	StepRulingSet     = "ruling-set"
	StepForest        = "forest"
	StepForestPaths   = "forest-paths"
	StepInterconnect  = "interconnect"
)

// StepMetrics records one protocol session's execution on the shared
// network: which phase and step it was, and what it cost. Rounds for
// fixed-schedule protocols equal the protocol's budget; for
// message-driven climbs they are measured.
type StepMetrics struct {
	Phase           int
	Step            string
	Rounds          int
	Messages        int64
	MaxRoundTraffic int64

	// Replayed marks a step whose output the delta-rebuild engine
	// spliced from a previous build's state instead of re-running the
	// protocol. Replayed steps still report their schedule rounds (a
	// rebuilt job fits the same per-job round cap as a full build) but
	// moved no messages.
	Replayed bool
}

// Network is a persistent CONGEST runtime: one simulator constructed
// once per topology and reused — via congest.Reset — by every protocol
// session run on it. The paper's construction is a sequence of
// protocols on the same graph (ℓ phases × 4 steps); constructing a
// simulator per step would reallocate the O(m·Bandwidth) message
// arenas, the twin table, and restart the engine worker pools every
// time. A Network pays those costs once and additionally keeps the
// per-step metrics stream the per-phase accounting is built from.
//
// Close releases the goroutine engine's per-vertex workers; it is a
// no-op for the other engines (the parallel engine executes on the
// shared runtime, whose lifecycle is independent of any one network).
// Always call it when done with a goroutine-engine network.
type Network struct {
	sim    *congest.Simulator
	steps  []StepMetrics
	onStep func(StepMetrics)

	// budget, when positive, bounds the total simulated rounds executed
	// across every session on this network; used tracks consumption.
	// Idle records consume nothing — the budget is an execution bound,
	// not a schedule bound.
	budget int
	used   int
}

// idleProgram occupies vertices of a freshly created network before the
// first session attaches.
type idleProgram struct{}

func (idleProgram) Init(env *congest.Env)                          { env.Halt() }
func (idleProgram) Round(env *congest.Env, recv []congest.Inbound) { env.Halt() }

// NewNetwork constructs the persistent simulator for g.
func NewNetwork(g *graph.Graph, opts congest.Options) (*Network, error) {
	sim, err := congest.NewUniform(g, func(int) congest.Program { return idleProgram{} }, opts)
	if err != nil {
		return nil, err
	}
	return &Network{sim: sim}, nil
}

// Sim exposes the underlying simulator for result extraction between
// sessions. The programs it holds are those of the most recent session.
func (n *Network) Sim() *congest.Simulator { return n.sim }

// Graph returns the network topology.
func (n *Network) Graph() *graph.Graph { return n.sim.Graph() }

// Steps returns the metrics of every session run so far, in order.
func (n *Network) Steps() []StepMetrics { return n.steps }

// SetRoundBudget bounds the total simulated rounds the network may
// execute across all of its sessions; 0 (the default) means unlimited.
// A session whose schedule does not fit in the remaining budget runs
// only the remaining rounds and then fails with a wrapped
// *congest.ErrBudgetExhausted carrying the live pending-message
// histogram — the per-job round-budget enforcement point of the service
// layer. The cut lands at a round boundary, so an exhausted build can
// never emit a partial result (its error aborts the construction).
func (n *Network) SetRoundBudget(rounds int) { n.budget = rounds }

// RoundsUsed returns the simulated rounds executed so far across all
// sessions on this network.
func (n *Network) RoundsUsed() int { return n.used }

// remaining returns the rounds still executable under the budget, or
// math.MaxInt when no budget is set.
func (n *Network) remaining() int {
	if n.budget <= 0 {
		return math.MaxInt
	}
	if rem := n.budget - n.used; rem > 0 {
		return rem
	}
	return 0
}

// SetOnStep installs a progress callback invoked synchronously with each
// recorded step metric (including idle records), in execution order. It
// is the hook behind per-build progress reporting; the callback must not
// call back into the network.
func (n *Network) SetOnStep(fn func(StepMetrics)) { n.onStep = fn }

func (n *Network) record(sm StepMetrics) {
	n.steps = append(n.steps, sm)
	if n.onStep != nil {
		n.onStep(sm)
	}
}

// RecordIdle appends a zero-cost metrics entry for a step that was
// statically known to move no messages (e.g. an empty center set): the
// schedule still charges its round budget, but no simulation ran.
func (n *Network) RecordIdle(phase int, step string, rounds int) {
	n.record(StepMetrics{Phase: phase, Step: step, Rounds: rounds})
}

// RecordReplayed appends a metrics entry for a step whose output the
// delta rebuild spliced from a previous build. Unlike RecordIdle it
// charges the step's schedule rounds against the network's round budget
// — a rebuilt job must fit the same per-job round cap as a full build —
// and fails with *congest.ErrBudgetExhausted when they do not fit.
func (n *Network) RecordReplayed(phase int, step string, rounds int) error {
	if rem := n.remaining(); rounds > rem {
		n.used += rem
		return fmt.Errorf("protocols: %s step (phase %d, replayed): %w", step, phase,
			&congest.ErrBudgetExhausted{MaxRounds: n.budget})
	}
	n.used += rounds
	n.record(StepMetrics{Phase: phase, Step: step, Rounds: rounds, Replayed: true})
	return nil
}

// Close releases the simulator's goroutine-engine workers, if any (see
// the type comment).
func (n *Network) Close() { n.sim.Close() }

// Session is one protocol run attached to the network. Each session
// owns a message-kind namespace: after its rounds complete, any message
// still in flight is a model violation — its own kind means the
// protocol under-ran its schedule and would have leaked late messages
// into the next session, a foreign kind means the protocol sent traffic
// outside its namespace. Either way the session reports it at its own
// boundary instead of letting the next protocol silently misread stale
// messages (the next session's Reset would otherwise just drop them).
type Session struct {
	net   *Network
	phase int
	step  string
	kind  uint8
}

// Session starts a session for the given construction phase and step.
// kind is the message kind the step's protocol owns.
func (n *Network) Session(phase int, step string, kind uint8) *Session {
	return &Session{net: n, phase: phase, step: step, kind: kind}
}

// Run attaches factory's programs to the network and executes exactly
// rounds rounds, recording the step metrics. Cancelling the context
// aborts the session at a round boundary with ctx.Err() (wrapped); no
// metrics are recorded for an aborted session. If the network's round
// budget cannot cover the schedule, the session runs only the remaining
// rounds and fails with a wrapped *congest.ErrBudgetExhausted.
func (s *Session) Run(ctx context.Context, factory func(v int) congest.Program, rounds int) error {
	s.net.sim.ResetUniform(factory)
	rem := s.net.remaining()
	run := min(rounds, rem)
	err := s.net.sim.RunContext(ctx, run)
	s.net.used += s.net.sim.Metrics().Rounds
	if err != nil {
		return fmt.Errorf("protocols: %s session (phase %d): %w", s.step, s.phase, err)
	}
	if run < rounds {
		return fmt.Errorf("protocols: %s session (phase %d): %w", s.step, s.phase, s.budgetExhausted())
	}
	return s.finish()
}

// RunUntilQuiet attaches factory's programs and executes until
// quiescence (at most maxRounds, further capped by the network's round
// budget), returning the measured round count. An exhausted budget —
// the protocol's own or the network's — surfaces as a wrapped
// *congest.ErrBudgetExhausted carrying the pending-message histogram.
func (s *Session) RunUntilQuiet(ctx context.Context, factory func(v int) congest.Program, maxRounds int) (int, error) {
	s.net.sim.ResetUniform(factory)
	rem := s.net.remaining()
	capped := min(maxRounds, rem)
	rounds, err := s.net.sim.RunUntilQuietContext(ctx, capped)
	s.net.used += rounds
	if err != nil {
		var be *congest.ErrBudgetExhausted
		if errors.As(err, &be) && capped < maxRounds {
			// The network budget, not the protocol's own cap, cut the run.
			be.MaxRounds = s.net.budget
		}
		return rounds, fmt.Errorf("protocols: %s session (phase %d): %w", s.step, s.phase, err)
	}
	return rounds, s.finish()
}

// budgetExhausted builds the typed budget error from the simulator's
// live state: the in-flight histogram at the cut plus the still-active
// vertex count, attributed to the network's total budget.
func (s *Session) budgetExhausted() *congest.ErrBudgetExhausted {
	total, byKind := s.net.sim.Pending()
	return &congest.ErrBudgetExhausted{
		MaxRounds: s.net.budget,
		Pending:   total,
		ByKind:    byKind,
		Active:    s.net.sim.Active(),
	}
}

// finish verifies the session's kind namespace is clean and records its
// metrics.
func (s *Session) finish() error {
	if total, byKind := s.net.sim.Pending(); total > 0 {
		kinds := slices.Sorted(maps.Keys(byKind))
		own := byKind[s.kind]
		if foreign := total - own; foreign > 0 {
			return fmt.Errorf("protocols: %s session (phase %d): %d stray message(s) of kinds %v in flight after %d rounds — traffic outside the session's kind namespace (%d)",
				s.step, s.phase, foreign, kinds, s.net.sim.Round(), s.kind)
		}
		return fmt.Errorf("protocols: %s session (phase %d): %d message(s) of own kind %d still in flight after %d rounds — schedule under-budgeted",
			s.step, s.phase, own, s.kind, s.net.sim.Round())
	}
	m := s.net.sim.Metrics()
	s.net.record(StepMetrics{
		Phase:           s.phase,
		Step:            s.step,
		Rounds:          m.Rounds,
		Messages:        m.Messages,
		MaxRoundTraffic: m.MaxRoundTraffic,
	})
	return nil
}

// The per-step session runners below are the distributed faces of the
// construction's four protocol steps: each attaches its protocol to the
// persistent network as one session and extracts the result. They
// mirror the Central* oracles, which compute identical outputs without
// round machinery.

// RunNearNeighbors executes Algorithm 1 (popularity detection) as a
// session and returns the per-vertex result plus the consumed rounds.
func RunNearNeighbors(ctx context.Context, net *Network, phase int, isCenter func(v int) bool, deg int, delta int32) (NNResult, int, error) {
	return RunNearNeighborsRec(ctx, net, phase, isCenter, deg, delta, nil)
}

// RunNearNeighborsRec is RunNearNeighbors with optional forward-
// transcript recording: when rec is non-nil, every vertex's per-phase
// forward selections are recorded into it (the caller finishes the
// recorder). Recording does not change the protocol's traffic or result.
func RunNearNeighborsRec(ctx context.Context, net *Network, phase int, isCenter func(v int) bool, deg int, delta int32, rec *TranscriptRecorder) (NNResult, int, error) {
	rounds := NearNeighborsRounds(deg, delta)
	if err := net.Session(phase, StepNearNeighbors, kindNN).Run(ctx, NewNearNeighborsRec(isCenter, deg, delta, rec), rounds); err != nil {
		return NNResult{}, 0, err
	}
	return ExtractNN(net.sim), rounds, nil
}

// RunRulingSet executes the deterministic ruling-set protocol as a
// session and returns the selected set plus the consumed rounds.
func RunRulingSet(ctx context.Context, net *Network, phase int, isMember func(v int) bool, q int32, c, n int) ([]int, int, error) {
	rounds := RulingSetRounds(q, c, n)
	if err := net.Session(phase, StepRulingSet, kindRulingWave).Run(ctx, NewRulingSet(isMember, q, c, n), rounds); err != nil {
		return nil, 0, err
	}
	return ExtractRulingSet(net.sim), rounds, nil
}

// RunForest grows the bounded-depth BFS forest as a session and returns
// the per-vertex adoption state plus the consumed rounds.
func RunForest(ctx context.Context, net *Network, phase int, isRoot func(v int) bool, depth int32) (ForestResult, int, error) {
	rounds := ForestRounds(depth)
	if err := net.Session(phase, StepForest, kindForest).Run(ctx, NewBFSForest(isRoot, depth), rounds); err != nil {
		return ForestResult{}, 0, err
	}
	return ExtractForest(net.sim), rounds, nil
}

// RunClimb traces paths through the routing plane as a message-driven
// session (step names the use: forest paths or interconnection), adding
// the marked edges into the given set; it returns how many were new to
// the set plus the measured rounds. The construction passes the spanner
// accumulator directly, so the new-edge count is the step's contribution
// to |E_H|.
func RunClimb(ctx context.Context, net *Network, phase int, step string, rt *Routing, start [][]int64, keysPerVertex, pathLen int, into *edgeset.Set) (int, int, error) {
	rounds, err := net.Session(phase, step, kindClimb).RunUntilQuiet(
		ctx, NewClimb(rt, start), ClimbMaxRounds(keysPerVertex, pathLen))
	if err != nil {
		return 0, 0, err
	}
	return ExtractClimbEdges(net.sim, into), rounds, nil
}

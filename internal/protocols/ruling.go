package protocols

import (
	"nearspan/internal/congest"
)

// RulingSet deterministically computes a (q+1, c·q)-ruling set for a
// member set W in O(q·c·n^{1/c}) rounds (paper Theorem 2.2, in the style
// of Schneider–Elkin–Wattenhofer 2013 and Kuhn–Maus–Weidner 2018): the
// selected subset A ⊆ W satisfies
//
//   - separation: every two distinct selected vertices are at distance
//     >= q+1 in G;
//   - domination: every member of W is within distance c·q of a selected
//     vertex.
//
// The algorithm is a digit competition. Write each ID in base
// b = ceil(n^{1/c}) with c digits, most significant first. Process digit
// positions in order; within a position, process digit values v = b-1
// down to 0 in windows of q+1 rounds. In value-v's window, every still-
// active candidate whose current digit equals v fires a kill wave of
// radius q; active candidates with a smaller current digit that are hit
// become inactive. Two invariants give the guarantees:
//
//   - after a position is processed, active candidates within distance q
//     of each other agree on all processed digits — so after all c
//     positions, survivors within distance q would have equal IDs, i.e.
//     survivors are (q+1)-separated;
//   - a candidate deactivated in some window was within q of a candidate
//     that stays active for the rest of that position (only smaller
//     digits are ever killed afterwards), so deactivation chains make at
//     most one q-hop per position: domination c·q.
//
// Wave congestion is one message per edge per round: waves of a window
// are synchronized, and each vertex forwards at most one wave per window.
type RulingSet struct {
	Member bool
	Q      int32 // separation parameter (>= 1)
	C      int   // number of digit positions
	B      int64 // digit base, ceil(n^{1/c})

	Selected bool // output: member of the ruling set

	active       bool
	forwardedWin int // last window index in which a wave was forwarded
}

var _ congest.Program = (*RulingSet)(nil)

// NewRulingSet returns the program factory for computing a ruling set of
// the member set with parameters q and c on an n-vertex graph.
func NewRulingSet(isMember func(v int) bool, q int32, c int, n int) func(v int) congest.Program {
	b := DigitBase(n, c)
	return func(v int) congest.Program {
		return &RulingSet{Member: isMember(v), Q: q, C: c, B: b}
	}
}

// DigitBase returns ceil(n^{1/c}), the smallest base b with b^c >= n.
func DigitBase(n, c int) int64 {
	if n <= 1 {
		return 1
	}
	lo, hi := int64(1), int64(n)
	for lo < hi {
		mid := (lo + hi) / 2
		if powAtLeast(mid, c, int64(n)) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// powAtLeast reports whether b^c >= target without overflowing.
func powAtLeast(b int64, c int, target int64) bool {
	acc := int64(1)
	for i := 0; i < c; i++ {
		if acc >= target {
			return true
		}
		if b != 0 && acc > target/b+1 {
			return true
		}
		acc *= b
		if acc < 0 { // overflow: certainly large enough
			return true
		}
	}
	return acc >= target
}

// RulingSetRounds is the exact round budget: c positions × b values × a
// (q+1)-round wave window.
func RulingSetRounds(q int32, c int, n int) int {
	b := DigitBase(n, c)
	return c * int(b) * int(q+1)
}

// windowLen is q+1: one firing round plus q propagation rounds.
func (rs *RulingSet) windowLen() int { return int(rs.Q) + 1 }

// window returns the 0-based window index of 1-based round r, and the
// 0-based offset within the window.
func (rs *RulingSet) window(r int) (win, off int) {
	r0 := r - 1
	return r0 / rs.windowLen(), r0 % rs.windowLen()
}

// digitFor returns the digit examined in the given window, and the digit
// position. Windows run through positions c-1..0 (most significant
// first), values b-1..0.
func (rs *RulingSet) digitFor(win int) (pos int, value int64) {
	pos = rs.C - 1 - win/int(rs.B)
	value = rs.B - 1 - int64(win%int(rs.B))
	return pos, value
}

// digit extracts digit position pos (0 = least significant) of id in
// base b.
func digit(id int64, pos int, b int64) int64 {
	for i := 0; i < pos; i++ {
		id /= b
	}
	return id % b
}

// Init implements congest.Program.
func (rs *RulingSet) Init(env *congest.Env) {
	rs.active = rs.Member
	rs.forwardedWin = -1
}

// Round implements congest.Program.
func (rs *RulingSet) Round(env *congest.Env, recv []congest.Inbound) {
	win, off := rs.window(env.Round())
	pos, value := rs.digitFor(win)
	if pos < 0 {
		// Past the schedule: finalize (idempotent).
		rs.Selected = rs.Member && rs.active
		return
	}

	// Deliver wave hits: any wave in this window kills an active
	// candidate with a digit smaller than the window's value, and is
	// forwarded (once per window) while hops remain.
	maxHops := int64(-1)
	for _, in := range recv {
		if in.Msg.Kind != kindRulingWave {
			continue
		}
		if in.Msg.Words[0] > maxHops {
			maxHops = in.Msg.Words[0]
		}
	}
	if maxHops >= 0 {
		if rs.active && digit(int64(env.ID()), pos, rs.B) < value {
			rs.active = false
		}
		if maxHops > 0 && rs.forwardedWin != win {
			rs.forwardedWin = win
			_ = env.Broadcast(waveMsg(maxHops - 1))
		}
	}

	// Fire at window start.
	if off == 0 && rs.active && digit(int64(env.ID()), pos, rs.B) == value {
		rs.forwardedWin = win
		if rs.Q >= 1 {
			_ = env.Broadcast(waveMsg(int64(rs.Q - 1)))
		}
	}

	if win == rs.C*int(rs.B)-1 && off == rs.windowLen()-1 {
		rs.Selected = rs.Member && rs.active
	}
}

func waveMsg(hops int64) congest.Message {
	return congest.Message{Kind: kindRulingWave, Words: [congest.MessageWords]int64{hops}}
}

// ExtractRulingSet returns the selected vertex set from a finished
// simulator whose programs are *RulingSet.
func ExtractRulingSet(sim *congest.Simulator) []int {
	var out []int
	for v := 0; v < sim.Graph().N(); v++ {
		if sim.Program(v).(*RulingSet).Selected {
			out = append(out, v)
		}
	}
	return out
}

package core

import (
	"context"
	"errors"
	"fmt"

	"nearspan/internal/delta"
	"nearspan/internal/graph"
	"nearspan/internal/params"
	"nearspan/internal/protocols"
)

// RebuildState is the state a delta rebuild replays against: the source
// graph and, per construction phase, the center set, the near-neighbors
// table, and the forward transcript. Build retains it under
// Options.KeepRebuildState; Rebuild results always carry a fresh one, so
// rebuilds chain across an arbitrary churn sequence.
type RebuildState struct {
	Graph  *graph.Graph
	Params *params.Params
	Phases []RebuildPhase
}

// RebuildPhase is one phase's retained state.
type RebuildPhase struct {
	Centers    []int
	NN         protocols.NNResult
	Transcript protocols.NNTranscript
}

// DefaultMaxAffectedFraction is the fallback-to-full threshold used when
// Options.MaxAffectedFraction is zero: a dirty frontier past a quarter
// of the vertices no longer amortizes against a full build.
const DefaultMaxAffectedFraction = 0.25

// errAffectedTooLarge aborts the incremental path when a phase's dirty
// frontier exceeds the fallback threshold; Rebuild catches it and runs a
// full build on the patched graph instead.
var errAffectedTooLarge = errors.New("core: delta affected region exceeds fallback threshold")

// Rebuild constructs the spanner of prev's graph patched by batch,
// reusing prev's retained state: each phase's near-neighbors step — the
// dominant cost of a build — is recomputed only on the dirty frontier
// the delta actually perturbs (see delta.DiffNN), and the cheap steps
// (ruling sets, forests, climbs) re-run in full on the patched graph
// over the spliced tables. The result is bit-identical to Build on the
// patched graph — same spanner fingerprint, same table contents — in
// every mode and engine; only the work differs.
//
// prev must carry rebuild state (Options.KeepRebuildState, or itself a
// Rebuild result). opts selects the execution mode and engine of the
// re-run steps; a zero Mode inherits prev's. When a phase's dirty
// frontier exceeds MaxAffectedFraction of n, Rebuild falls back to a
// full Build of the patched graph (Result.Incremental reports which
// path produced the result). The fallback restarts the metrics stream:
// an OnStep consumer sees the partial incremental phases again as full
// ones.
func Rebuild(ctx context.Context, prev *Result, batch *delta.Batch, opts Options) (*Result, error) {
	if prev == nil || prev.Rebuild == nil {
		return nil, fmt.Errorf("core: Rebuild requires a result built with Options.KeepRebuildState")
	}
	st := prev.Rebuild
	g2, err := delta.Apply(st.Graph, batch)
	if err != nil {
		return nil, err
	}
	if opts.Mode == 0 {
		opts.Mode = prev.Mode
	}
	opts.KeepRebuildState = true
	p := st.Params

	frac := opts.MaxAffectedFraction
	if frac == 0 {
		frac = DefaultMaxAffectedFraction
	}
	maxTracked := 0 // unlimited
	if frac < 1 {
		maxTracked = int(frac * float64(g2.N()))
		if maxTracked < 1 {
			maxTracked = 1
		}
	}
	seeds := batch.Endpoints() // batch is normalized by Apply

	hook := func(ctx context.Context, phase int, centers []int) (protocols.NNResult, protocols.NNTranscript, int, bool, error) {
		if err := ctx.Err(); err != nil {
			return protocols.NNResult{}, protocols.NNTranscript{}, 0, false, err
		}
		if phase >= len(st.Phases) {
			// Same params, same n: the phase schedule cannot differ.
			return protocols.NNResult{}, protocols.NNTranscript{}, 0, false,
				fmt.Errorf("core: rebuild state has %d phases, build reached phase %d", len(st.Phases), phase)
		}
		pr := &st.Phases[phase]
		d, ok := delta.DiffNN(g2, &pr.NN, &pr.Transcript, centers, pr.Centers, seeds,
			p.Deg[phase], p.Delta[phase], maxTracked)
		if !ok {
			return protocols.NNResult{}, protocols.NNTranscript{}, 0, false, errAffectedTooLarge
		}
		return d.NN, d.Transcript, d.Tracked, true, nil
	}

	res, err := buildWith(ctx, g2, p, opts, hook)
	if err != nil {
		if !errors.Is(err, errAffectedTooLarge) {
			return nil, err
		}
		res, err = buildWith(ctx, g2, p, opts, nil)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	res.Incremental = true
	return res, nil
}

package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"nearspan/internal/congest"
	"nearspan/internal/params"
	"nearspan/internal/protocols"
	"nearspan/internal/sched"
)

// Eight distributed builds running concurrently on one shared runtime
// must be bit-identical — spanner, rounds, messages, step stream — to
// the same builds run sequentially. This is the batch runtime's core
// correctness claim, and under -race it also proves the scheduler
// multiplexes the simulators without data races.
func TestConcurrentBuildsBitIdenticalToSequential(t *testing.T) {
	cfgs := testConfigs(t)
	// Eight jobs cycling over four workloads, alternating engines so the
	// shared runtime multiplexes heterogeneous simulators.
	type job struct {
		c   testConfig
		eng congest.Engine
	}
	var jobs []job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, job{cfgs[i%4], congest.Engines()[i%3]})
	}

	sequential := make([]*Result, len(jobs))
	ps := make([]*params.Params, len(jobs))
	for i, j := range jobs {
		ps[i] = mustParams(t, j.c)
		sequential[i] = build(t, j.c, Options{Mode: ModeDistributed, Engine: j.eng})
	}

	rt := sched.New(4)
	defer rt.Close()
	concurrent := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := jobs[i]
			concurrent[i], errs[i] = Build(context.Background(), j.c.g, ps[i],
				Options{Mode: ModeDistributed, Engine: j.eng, Runtime: rt})
		}(i)
	}
	wg.Wait()

	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d (%s/%s): %v", i, jobs[i].c.name, jobs[i].eng, errs[i])
		}
		seq, con := sequential[i], concurrent[i]
		if !sameSpanner(seq.Spanner, con.Spanner) {
			t.Errorf("job %d (%s/%s): concurrent spanner differs (m=%d vs %d)",
				i, jobs[i].c.name, jobs[i].eng, con.EdgeCount(), seq.EdgeCount())
		}
		if seq.TotalRounds != con.TotalRounds || seq.Messages != con.Messages {
			t.Errorf("job %d: metrics differ: sequential (%d,%d) concurrent (%d,%d)",
				i, seq.TotalRounds, seq.Messages, con.TotalRounds, con.Messages)
		}
		if len(seq.Steps) != len(con.Steps) {
			t.Fatalf("job %d: step streams differ in length", i)
		}
		for s := range seq.Steps {
			if seq.Steps[s] != con.Steps[s] {
				t.Errorf("job %d step %d: %+v vs %+v", i, s, seq.Steps[s], con.Steps[s])
			}
		}
	}
	// All eight builds shared the one runtime: one simulator each.
	if got := rt.SimulatorsCreated(); got != int64(len(jobs)) {
		t.Errorf("runtime counted %d simulators for %d builds", got, len(jobs))
	}
}

// A cancelled context aborts the build and returns ctx.Err() (wrapped,
// errors.Is-matchable) with no partial spanner, in both modes.
func TestBuildCancelledReturnsCtxErr(t *testing.T) {
	c := testConfigs(t)[1]
	for _, mode := range []Mode{ModeCentralized, ModeDistributed} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := Build(ctx, c.g, mustParams(t, c), Options{Mode: mode})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", mode, err)
		}
		if res != nil {
			t.Errorf("%s: cancelled build returned a partial result", mode)
		}
	}
}

// Cancelling mid-build (from the step callback, so the cut lands inside
// the protocol pipeline) aborts promptly and cleanly.
func TestBuildCancelledMidConstruction(t *testing.T) {
	c := testConfigs(t)[1]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	steps := 0
	res, err := Build(ctx, c.g, mustParams(t, c), Options{
		Mode: ModeDistributed,
		OnStep: func(protocols.StepMetrics) {
			steps++
			if steps == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled build returned a partial result")
	}
	if steps > 3 {
		t.Errorf("build kept running after cancel: %d steps completed", steps)
	}
}

// The OnStep progress stream matches Result.Steps exactly, in order,
// in both modes.
func TestOnStepStreamsResultSteps(t *testing.T) {
	c := testConfigs(t)[0]
	for _, mode := range []Mode{ModeCentralized, ModeDistributed} {
		var seen []protocols.StepMetrics
		res, err := Build(context.Background(), c.g, mustParams(t, c), Options{
			Mode:   mode,
			OnStep: func(sm protocols.StepMetrics) { seen = append(seen, sm) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != len(res.Steps) {
			t.Fatalf("%s: OnStep fired %d times for %d steps", mode, len(seen), len(res.Steps))
		}
		for i := range seen {
			if seen[i] != res.Steps[i] {
				t.Errorf("%s step %d: callback %+v vs result %+v", mode, i, seen[i], res.Steps[i])
			}
		}
	}
}

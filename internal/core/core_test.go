package core

import (
	"context"
	"testing"

	"nearspan/internal/cluster"
	"nearspan/internal/congest"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/params"
	"nearspan/internal/protocols"
	"nearspan/internal/verify"
)

// testConfigs pairs workloads with parameter sets. Configurations marked
// guarantee satisfy the §2.4 preconditions (ε <= ρ̂/10); the others are
// demo-scale parameters that exercise nontrivial phase structure on
// small graphs.
type testConfig struct {
	name  string
	g     *graph.Graph
	eps   float64
	kappa int
	rho   float64
}

func testConfigs(t *testing.T) []testConfig {
	t.Helper()
	return []testConfig{
		{"grid-demo", gen.Grid(9, 9), 1.0 / 3, 3, 0.49},
		{"gnp-demo", gen.GNP(90, 0.12, 7, true), 1.0 / 3, 3, 0.49},
		{"communities-demo", gen.Communities(4, 20, 0.4, 0.01, 3), 0.5, 4, 0.45},
		{"torus-demo", gen.Torus(8, 8), 0.5, 4, 0.3},
		{"dense-kappa8", gen.GNP(70, 0.3, 9, true), 0.5, 8, 0.3},
		{"path-guarantee", gen.Path(120), 1.0 / 30, 3, 0.49},
	}
}

func mustParams(t *testing.T, c testConfig) *params.Params {
	t.Helper()
	p, err := params.New(c.eps, c.kappa, c.rho, c.g.N())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func build(t *testing.T, c testConfig, opts Options) *Result {
	t.Helper()
	res, err := Build(context.Background(), c.g, mustParams(t, c), opts)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	return res
}

func sameSpanner(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	same := true
	a.Edges(func(u, v int) {
		if !b.HasEdge(u, v) {
			same = false
		}
	})
	return same
}

// The centralized reference and the full CONGEST protocol stack must
// construct the identical spanner and agree on all per-phase counts.
func TestDistributedMatchesCentralized(t *testing.T) {
	for _, c := range testConfigs(t) {
		if c.name == "path-guarantee" {
			continue // large schedule; covered by TestGuaranteeParams
		}
		cRes := build(t, c, Options{Mode: ModeCentralized})
		dRes := build(t, c, Options{Mode: ModeDistributed})
		if !sameSpanner(cRes.Spanner, dRes.Spanner) {
			t.Errorf("%s: spanners differ: central m=%d distributed m=%d",
				c.name, cRes.EdgeCount(), dRes.EdgeCount())
		}
		if len(cRes.Phases) != len(dRes.Phases) {
			t.Fatalf("%s: phase counts differ", c.name)
		}
		for i := range cRes.Phases {
			cp, dp := cRes.Phases[i], dRes.Phases[i]
			if cp.Clusters != dp.Clusters || cp.Popular != dp.Popular ||
				cp.RulingSet != dp.RulingSet || cp.Unclustered != dp.Unclustered ||
				cp.EdgesSC != dp.EdgesSC || cp.EdgesIC != dp.EdgesIC {
				t.Errorf("%s phase %d: stats differ:\n central %+v\n distrib %+v",
					c.name, i, cp, dp)
			}
			if cp.RoundsNN != dp.RoundsNN || cp.RoundsRS != dp.RoundsRS {
				t.Errorf("%s phase %d: schedule rounds differ: central (%d,%d) distributed (%d,%d)",
					c.name, i, cp.RoundsNN, cp.RoundsRS, dp.RoundsNN, dp.RoundsRS)
			}
		}
	}
}

// Every CONGEST engine must drive the full construction to the identical
// spanner, round count, and message count.
func TestEnginesMatchOnFullConstruction(t *testing.T) {
	c := testConfigs(t)[1] // gnp-demo
	seq := build(t, c, Options{Mode: ModeDistributed})
	for _, eng := range []congest.Engine{congest.EngineGoroutine, congest.EngineParallel} {
		got := build(t, c, Options{Mode: ModeDistributed, Engine: eng})
		if !sameSpanner(seq.Spanner, got.Spanner) {
			t.Errorf("%s engine produced a different spanner", eng)
		}
		if seq.TotalRounds != got.TotalRounds || seq.Messages != got.Messages {
			t.Errorf("%s engine disagrees on metrics: (%d,%d) vs (%d,%d)",
				eng, seq.TotalRounds, seq.Messages, got.TotalRounds, got.Messages)
		}
	}
}

func TestDeterminism(t *testing.T) {
	c := testConfigs(t)[2]
	a := build(t, c, Options{Mode: ModeCentralized})
	b := build(t, c, Options{Mode: ModeCentralized})
	if !sameSpanner(a.Spanner, b.Spanner) {
		t.Error("two centralized runs differ")
	}
}

// The spanner is a subgraph of G and preserves connectivity.
func TestSpannerIsConnectedSubgraph(t *testing.T) {
	for _, c := range testConfigs(t) {
		res := build(t, c, Options{})
		if !verify.Subgraph(res.Spanner, c.g) {
			t.Errorf("%s: spanner is not a subgraph", c.name)
		}
		if c.g.Connected() && !res.Spanner.Connected() {
			t.Errorf("%s: spanner disconnected", c.name)
		}
	}
}

// Corollary 2.5: the U_i sets partition V.
func TestUSetsPartitionV(t *testing.T) {
	for _, c := range testConfigs(t) {
		res := build(t, c, Options{KeepClusters: true})
		if err := cluster.VerifyPartition(c.g.N(), res.U); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

// Lemma 2.3: Rad(P_i) <= R_i, measured in the final spanner H (distances
// in the final H lower-bound distances in the phase-i prefix of H, so
// this checks the bound's consequence; radii are realized by tree paths
// added before phase i, making the final-H measurement the right one for
// the stretch analysis).
func TestClusterRadiiWithinBound(t *testing.T) {
	for _, c := range testConfigs(t) {
		res := build(t, c, Options{KeepClusters: true})
		p := res.Params
		for i, col := range res.P {
			if col.Len() == 0 {
				continue
			}
			rad := cluster.MaxRadius(res.Spanner, col)
			if rad < 0 {
				t.Errorf("%s phase %d: cluster disconnected in H", c.name, i)
				continue
			}
			if rad > p.R[i] {
				t.Errorf("%s phase %d: Rad(P_i)=%d exceeds R_i=%d", c.name, i, rad, p.R[i])
			}
		}
	}
}

// Lemma 2.4: every popular center is superclustered (never lands in U_i).
func TestPopularCentersAreSuperclustered(t *testing.T) {
	for _, c := range testConfigs(t) {
		if c.name == "path-guarantee" {
			continue
		}
		res := build(t, c, Options{KeepClusters: true})
		p := res.Params
		for i := 0; i < p.L && i < len(res.P); i++ {
			col := res.P[i]
			if col.Len() == 0 {
				continue
			}
			nn := protocols.CentralNearNeighbors(c.g, col.Centers(), p.Deg[i], p.Delta[i])
			u := res.U[i]
			for _, cl := range u.Clusters {
				if nn.Popular[cl.Center] {
					t.Errorf("%s phase %d: popular center %d in U_i", c.name, i, cl.Center)
				}
			}
		}
	}
}

// Lemma 2.14: for every C in U_i and C' in P_i with d_G(r_C, r_C') <=
// delta_i, H contains a shortest path between the centers.
func TestInterconnectionCompleteness(t *testing.T) {
	for _, c := range testConfigs(t) {
		if c.name == "path-guarantee" {
			continue
		}
		res := build(t, c, Options{KeepClusters: true})
		p := res.Params
		for i := 0; i <= p.L && i < len(res.P); i++ {
			col := res.P[i]
			if col.Len() == 0 {
				continue
			}
			centers := col.Centers()
			isCenter := make(map[int]bool)
			for _, x := range centers {
				isCenter[x] = true
			}
			u := res.U[i]
			for _, cl := range u.Clusters {
				rc := cl.Center
				dist := c.g.BFSBounded(rc, p.Delta[i])
				distH := res.Spanner.BFS(rc)
				for _, other := range centers {
					if other == rc || dist[other] > p.Delta[i] {
						continue
					}
					if distH[other] != dist[other] {
						t.Errorf("%s phase %d: centers %d-%d at d_G=%d but d_H=%d",
							c.name, i, rc, other, dist[other], distH[other])
					}
				}
			}
		}
	}
}

// Corollary 2.18: the spanner satisfies (1+eps', beta) stretch. The bound
// is proven for guarantee-mode parameters; we assert it there and also
// record that it holds (with the loose constants) on the demo configs.
func TestStretchBound(t *testing.T) {
	for _, c := range testConfigs(t) {
		res := build(t, c, Options{})
		p := res.Params
		alpha := 1 + p.EpsPrime()
		beta := p.BetaInt()
		rep := verify.Stretch(c.g, res.Spanner, alpha, beta)
		if !rep.OK() {
			t.Errorf("%s: stretch (1+%.3f, %d) violated: %v", c.name, p.EpsPrime(), beta, rep)
		}
		// The spanner is distance-dominated by G (it is a subgraph).
		if rep.WorstRatio < 1 {
			t.Errorf("%s: impossible ratio %v", c.name, rep.WorstRatio)
		}
	}
}

// Edge stretch: for every edge of G, the spanner bound specializes to
// d_H(u,v) <= 1 + eps' + beta. This is the per-edge guarantee that makes
// H usable as a synchronizer skeleton, and a much tighter check than the
// all-pairs bound when the spanner drops edges aggressively.
func TestEdgeStretch(t *testing.T) {
	for _, c := range testConfigs(t) {
		res := build(t, c, Options{})
		p := res.Params
		limit := int32(1) + int32(p.EpsPrime()+1) + p.BetaInt()
		worst := int32(0)
		var worstEdge [2]int
		c.g.Edges(func(u, v int) {
			// One BFS per endpoint would be O(nm); restrict to dropped
			// edges, whose detours are the only nontrivial distances.
			if res.Spanner.HasEdge(u, v) {
				return
			}
			d := res.Spanner.Distance(u, v)
			if d > worst {
				worst = d
				worstEdge = [2]int{u, v}
			}
		})
		if worst > limit {
			t.Errorf("%s: edge %v stretched to %d > 1+eps'+beta = %d",
				c.name, worstEdge, worst, limit)
		}
	}
}

// Lemmas 2.10 and 2.11: cluster collections shrink at least at the
// prescribed rate (checked as |P_{i+1}| <= |W_i| <= |P_i| and the
// endgame |P_L| <= deg_L, which is what the concluding phase relies on).
func TestClusterDecay(t *testing.T) {
	for _, c := range testConfigs(t) {
		res := build(t, c, Options{})
		p := res.Params
		for i := 0; i+1 < len(res.Phases); i++ {
			ps := res.Phases[i]
			if ps.RulingSet > ps.Popular {
				t.Errorf("%s phase %d: |RS|=%d > |W|=%d", c.name, i, ps.RulingSet, ps.Popular)
			}
			if ps.Popular > ps.Clusters {
				t.Errorf("%s phase %d: |W|=%d > |P|=%d", c.name, i, ps.Popular, ps.Clusters)
			}
			if res.Phases[i+1].Clusters != ps.RulingSet {
				t.Errorf("%s phase %d: |P_{i+1}|=%d != |RS_i|=%d",
					c.name, i, res.Phases[i+1].Clusters, ps.RulingSet)
			}
		}
		last := res.Phases[len(res.Phases)-1]
		if last.Clusters > last.Deg {
			t.Errorf("%s: |P_L|=%d exceeds deg_L=%d — concluding phase premise violated",
				c.name, last.Clusters, last.Deg)
		}
		_ = p
	}
}

// Lemma 2.8 / Corollary 2.9 consequence: phase rounds are dominated by
// the ruling set + Algorithm 1 budgets, and the total stays within the
// predicted O(beta * n^rho / rho) up to a moderate constant.
func TestRoundBudget(t *testing.T) {
	c := testConfigs(t)[0]
	res := build(t, c, Options{Mode: ModeDistributed})
	p := res.Params
	if res.TotalRounds <= 0 {
		t.Fatal("no rounds measured")
	}
	// The constant below is generous; the experiment harness reports the
	// precise measured/predicted ratios.
	limit := 1000 * p.PredictedRounds()
	if float64(res.TotalRounds) > limit {
		t.Errorf("rounds %d beyond sanity bound %v", res.TotalRounds, limit)
	}
}

func TestBuildValidation(t *testing.T) {
	g := gen.Path(10)
	p, err := params.New(0.5, 4, 0.45, 99) // wrong n
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(context.Background(), g, p, Options{}); err == nil {
		t.Error("mismatched n accepted")
	}
	p2, err := params.New(0.5, 4, 0.45, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(context.Background(), g, p2, Options{Mode: Mode(99)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

// Guarantee-mode parameters on a long path: the schedule is large but the
// graph is trivial, validating the integer schedule end to end under the
// paper's preconditions.
func TestGuaranteeParams(t *testing.T) {
	c := testConfigs(t)[5]
	p := mustParams(t, c)
	if !p.GuaranteeOK() {
		t.Fatalf("expected guarantee-mode params, got %v", p)
	}
	res := build(t, c, Options{})
	rep := verify.Stretch(c.g, res.Spanner, 1+p.EpsPrime(), p.BetaInt())
	if !rep.OK() {
		t.Errorf("guarantee violated: %v", rep)
	}
	// A path spanner must be the path itself (no edge can be dropped
	// without infinite stretch... beta-bounded stretch tolerates drops
	// only if beta covers the detour, which on a path has no detour).
	if res.EdgeCount() != c.g.M() {
		t.Errorf("path spanner dropped edges: %d/%d", res.EdgeCount(), c.g.M())
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		g := gen.Path(n)
		p, err := params.New(0.5, 4, 0.45, n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Build(context.Background(), g, p, Options{Mode: ModeDistributed})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n > 1 && !res.Spanner.Connected() {
			t.Errorf("n=%d spanner disconnected", n)
		}
	}
}

// Paper §1.3.1: the construction works when vertices know only an
// estimate ñ of n (n <= ñ <= poly(n)). Over-estimation costs rounds but
// preserves every guarantee, and the two modes still agree.
func TestEstimatedN(t *testing.T) {
	g := gen.GNP(90, 0.12, 7, true)
	exactP, err := params.New(1.0/3, 3, 0.49, g.N())
	if err != nil {
		t.Fatal(err)
	}
	overP, err := params.NewWithEstimate(1.0/3, 3, 0.49, g.N(), g.N()*g.N())
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Build(context.Background(), g, exactP, Options{Mode: ModeDistributed})
	if err != nil {
		t.Fatal(err)
	}
	over, err := Build(context.Background(), g, overP, Options{Mode: ModeDistributed})
	if err != nil {
		t.Fatal(err)
	}
	// Stretch guarantee holds under the estimate's schedule.
	rep := verify.Stretch(g, over.Spanner, 1+overP.EpsPrime(), overP.BetaInt())
	if !rep.OK() {
		t.Errorf("stretch violated with over-estimate: %v", rep)
	}
	if !verify.Subgraph(over.Spanner, g) {
		t.Error("over-estimate spanner not a subgraph")
	}
	// Rounds grow (bigger deg thresholds, bigger ruling-set base).
	if over.TotalRounds <= exact.TotalRounds {
		t.Errorf("over-estimate did not cost rounds: %d vs %d",
			over.TotalRounds, exact.TotalRounds)
	}
	// Modes agree under the estimate too.
	overC, err := Build(context.Background(), g, overP, Options{Mode: ModeCentralized})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSpanner(over.Spanner, overC.Spanner) {
		t.Error("modes disagree under the estimate")
	}
}

func TestModeString(t *testing.T) {
	if ModeCentralized.String() != "centralized" || ModeDistributed.String() != "distributed" {
		t.Error("Mode.String broken")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string broken")
	}
}

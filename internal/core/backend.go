package core

import (
	"context"

	"nearspan/internal/congest"
	"nearspan/internal/edgeset"
	"nearspan/internal/graph"
	"nearspan/internal/protocols"
)

// distributedBackend executes each protocol step as a session on one
// persistent CONGEST network: the simulator (message arenas, twin
// table, shard layout) is constructed exactly once per Build and reused
// — via congest.Reset — across all phases and steps, with every round
// executing on the shared runtime. Round counts are measured;
// fixed-schedule protocols run for exactly their budget (all vertices
// know the schedule, §1.3.1), and path climbs run to quiescence.
type distributedBackend struct {
	g     *graph.Graph
	nEst  int // the vertex-count estimate known to the vertices
	net   *protocols.Network
	phase int
}

func newDistributedBackend(g *graph.Graph, nEst int, opts congest.Options) (*distributedBackend, error) {
	net, err := protocols.NewNetwork(g, opts)
	if err != nil {
		return nil, err
	}
	return &distributedBackend{g: g, nEst: nEst, net: net}, nil
}

func (d *distributedBackend) close() { d.net.Close() }

func (d *distributedBackend) beginPhase(i int) { d.phase = i }

func (d *distributedBackend) steps() []protocols.StepMetrics { return d.net.Steps() }

func (d *distributedBackend) arenaBytes() int64 { return d.net.Sim().ArenaBytes() }

func (d *distributedBackend) arenaWorstCase() int64 { return d.net.Sim().ArenaBytesWorstCase() }

func (d *distributedBackend) messages() int64 {
	var total int64
	for _, s := range d.net.Steps() {
		total += s.Messages
	}
	return total
}

func (d *distributedBackend) nearNeighbors(ctx context.Context, centers []int, deg int, delta int32, rec *protocols.TranscriptRecorder) (protocols.NNResult, int, error) {
	// The schedule always consumes its budget (vertices cannot detect
	// global emptiness), but with no centers not a single message flows,
	// so the simulation itself can be skipped.
	rounds := protocols.NearNeighborsRounds(deg, delta)
	if len(centers) == 0 {
		d.net.RecordIdle(d.phase, protocols.StepNearNeighbors, rounds)
		return protocols.EmptyNNResult(d.g.N()), rounds, nil
	}
	isC := membership(d.g.N(), centers)
	return protocols.RunNearNeighborsRec(ctx, d.net, d.phase, func(v int) bool { return isC[v] }, deg, delta, rec)
}

func (d *distributedBackend) recordReplayed(step string, rounds int) error {
	return d.net.RecordReplayed(d.phase, step, rounds)
}

func (d *distributedBackend) rulingSet(ctx context.Context, members []int, q int32, c int) ([]int, int, error) {
	rounds := protocols.RulingSetRounds(q, c, d.nEst)
	if len(members) == 0 {
		d.net.RecordIdle(d.phase, protocols.StepRulingSet, rounds)
		return nil, rounds, nil
	}
	isM := membership(d.g.N(), members)
	return protocols.RunRulingSet(ctx, d.net, d.phase, func(v int) bool { return isM[v] }, q, c, d.nEst)
}

func (d *distributedBackend) forest(ctx context.Context, roots []int, depth int32) (protocols.ForestResult, int, error) {
	rounds := protocols.ForestRounds(depth)
	if len(roots) == 0 {
		n := d.g.N()
		d.net.RecordIdle(d.phase, protocols.StepForest, rounds)
		res := protocols.ForestResult{
			Dist:       make([]int32, n),
			Root:       make([]int64, n),
			ParentPort: make([]int, n),
		}
		for v := 0; v < n; v++ {
			res.Dist[v] = -1
			res.Root[v] = -1
			res.ParentPort[v] = -1
		}
		return res, rounds, nil
	}
	isR := membership(d.g.N(), roots)
	return protocols.RunForest(ctx, d.net, d.phase, func(v int) bool { return isR[v] }, depth)
}

func (d *distributedBackend) climb(ctx context.Context, step string, rt *protocols.Routing, start [][]int64, keysPerVertex, pathLen int, h *edgeset.Set) (int, int, error) {
	any := false
	for _, s := range start {
		if len(s) > 0 {
			any = true
			break
		}
	}
	if !any {
		d.net.RecordIdle(d.phase, step, 0)
		return 0, 0, nil
	}
	return protocols.RunClimb(ctx, d.net, d.phase, step, rt, start, keysPerVertex, pathLen, h)
}

func membership(n int, xs []int) []bool {
	m := make([]bool, n)
	for _, x := range xs {
		m[x] = true
	}
	return m
}

// centralBackend computes the same outputs with the centralized
// oracles: identical deterministic decisions, no rounds. Fixed-schedule
// round budgets are still reported and recorded as step metrics (they
// are parameter functions, equal to the distributed measurements);
// climbs report zero rounds, and no step moves messages. Cancellation
// is observed between steps (the per-step oracles are fast and atomic).
type centralBackend struct {
	g      *graph.Graph
	nEst   int
	phase  int
	rec    []protocols.StepMetrics
	onStep func(protocols.StepMetrics)

	// budget, when positive, bounds the cumulative recorded step rounds
	// — the centralized rendering of Options.RoundBudget. There is no
	// simulator, so an exhausted budget carries no message histogram.
	budget int
	used   int
}

func (c *centralBackend) beginPhase(i int) { c.phase = i }

func (c *centralBackend) steps() []protocols.StepMetrics { return c.rec }

func (c *centralBackend) arenaBytes() int64 { return 0 }

func (c *centralBackend) arenaWorstCase() int64 { return 0 }

func (c *centralBackend) record(step string, rounds int) error {
	return c.recordMetric(protocols.StepMetrics{Phase: c.phase, Step: step, Rounds: rounds})
}

// recordReplayed records a delta-rebuild spliced step: schedule rounds
// charged (a rebuilt job fits the same round cap as a full build), no
// protocol ran.
func (c *centralBackend) recordReplayed(step string, rounds int) error {
	return c.recordMetric(protocols.StepMetrics{Phase: c.phase, Step: step, Rounds: rounds, Replayed: true})
}

func (c *centralBackend) recordMetric(sm protocols.StepMetrics) error {
	c.rec = append(c.rec, sm)
	if c.onStep != nil {
		c.onStep(sm)
	}
	c.used += sm.Rounds
	if c.budget > 0 && c.used > c.budget {
		return &congest.ErrBudgetExhausted{MaxRounds: c.budget}
	}
	return nil
}

func (c *centralBackend) messages() int64 { return 0 }

func (c *centralBackend) nearNeighbors(ctx context.Context, centers []int, deg int, delta int32, rec *protocols.TranscriptRecorder) (protocols.NNResult, int, error) {
	if err := ctx.Err(); err != nil {
		return protocols.NNResult{}, 0, err
	}
	rounds := protocols.NearNeighborsRounds(deg, delta)
	if err := c.record(protocols.StepNearNeighbors, rounds); err != nil {
		return protocols.NNResult{}, rounds, err
	}
	nn, _ := protocols.CentralNearNeighborsRec(c.g, centers, deg, delta, rec)
	return nn, rounds, nil
}

func (c *centralBackend) rulingSet(ctx context.Context, members []int, q int32, cc int) ([]int, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	rounds := protocols.RulingSetRounds(q, cc, c.nEst)
	if err := c.record(protocols.StepRulingSet, rounds); err != nil {
		return nil, rounds, err
	}
	return protocols.CentralRulingSet(c.g, members, q, cc, c.nEst), rounds, nil
}

func (c *centralBackend) forest(ctx context.Context, roots []int, depth int32) (protocols.ForestResult, int, error) {
	if err := ctx.Err(); err != nil {
		return protocols.ForestResult{}, 0, err
	}
	n := c.g.N()
	res := protocols.ForestResult{
		Dist:       make([]int32, n),
		Root:       make([]int64, n),
		ParentPort: make([]int, n),
	}
	dist, root, parent := c.g.MultiBFS(roots, depth)
	for v := 0; v < n; v++ {
		if dist[v] == graph.Infinity {
			res.Dist[v] = -1
			res.Root[v] = -1
			res.ParentPort[v] = -1
			continue
		}
		res.Dist[v] = dist[v]
		res.Root[v] = int64(root[v])
		if parent[v] >= 0 {
			res.ParentPort[v] = c.g.PortOf(v, int(parent[v]))
		} else {
			res.ParentPort[v] = -1
		}
	}
	rounds := protocols.ForestRounds(depth)
	if err := c.record(protocols.StepForest, rounds); err != nil {
		return protocols.ForestResult{}, rounds, err
	}
	return res, rounds, nil
}

// climb walks the pointer chains directly; the forwarded bitset —
// parallel to the routing entries, exactly as in the distributed Climb
// program — reproduces the protocol's forward-once-per-key dedupe, so
// the marked edge set is identical. The new-edge count is taken against
// h itself, matching the distributed extraction.
func (c *centralBackend) climb(ctx context.Context, step string, rt *protocols.Routing, start [][]int64, keysPerVertex, pathLen int, h *edgeset.Set) (int, int, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	added := 0
	forwarded := rt.NewMarks() // one flag per (vertex, key) routing entry
	for v := range start {
		for _, k := range start[v] {
			cur := v
			for int64(cur) != k {
				idx, ok := rt.Index(cur, k)
				if !ok {
					break // no pointer: trace terminates here
				}
				if forwarded[idx] {
					break // this vertex already forwarded k
				}
				forwarded[idx] = true
				next := c.g.Neighbor(cur, int(rt.PortAt(idx)))
				if h.Add(cur, next) {
					added++
				}
				cur = next
			}
		}
	}
	if err := c.record(step, 0); err != nil {
		return added, 0, err
	}
	return added, 0, nil
}

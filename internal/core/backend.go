package core

import (
	"nearspan/internal/congest"
	"nearspan/internal/graph"
	"nearspan/internal/protocols"
)

// distributedBackend executes each protocol step on the CONGEST
// simulator. Round counts are measured; fixed-schedule protocols run for
// exactly their budget (all vertices know the schedule, §1.3.1), and
// path climbs run to quiescence.
type distributedBackend struct {
	g      *graph.Graph
	nEst   int // the vertex-count estimate known to the vertices
	engine congest.Engine
	msgs   int64
}

func (d *distributedBackend) opts() congest.Options {
	// A zero engine falls through to congest's default (sequential).
	return congest.Options{Engine: d.engine}
}

func (d *distributedBackend) messages() int64 { return d.msgs }

func (d *distributedBackend) run(factory func(v int) congest.Program, rounds int) (*congest.Simulator, error) {
	sim, err := congest.NewUniform(d.g, factory, d.opts())
	if err != nil {
		return nil, err
	}
	if err := sim.Run(rounds); err != nil {
		sim.Close()
		return nil, err
	}
	d.msgs += sim.Metrics().Messages
	return sim, nil
}

func (d *distributedBackend) nearNeighbors(centers []int, deg int, delta int32) (protocols.NNResult, int, error) {
	// The schedule always consumes its budget (vertices cannot detect
	// global emptiness), but with no centers not a single message flows,
	// so the simulation itself can be skipped.
	rounds := protocols.NearNeighborsRounds(deg, delta)
	if len(centers) == 0 {
		n := d.g.N()
		return protocols.NNResult{
			Known:   make([]map[int64]int32, n),
			Via:     make([]map[int64]int, n),
			Popular: make([]bool, n),
		}, rounds, nil
	}
	isC := membership(d.g.N(), centers)
	sim, err := d.run(protocols.NewNearNeighbors(func(v int) bool { return isC[v] }, deg, delta), rounds)
	if err != nil {
		return protocols.NNResult{}, 0, err
	}
	defer sim.Close()
	return protocols.ExtractNN(sim), rounds, nil
}

func (d *distributedBackend) rulingSet(members []int, q int32, c int) ([]int, int, error) {
	rounds := protocols.RulingSetRounds(q, c, d.nEst)
	if len(members) == 0 {
		return nil, rounds, nil
	}
	isM := membership(d.g.N(), members)
	sim, err := d.run(protocols.NewRulingSet(func(v int) bool { return isM[v] }, q, c, d.nEst), rounds)
	if err != nil {
		return nil, 0, err
	}
	defer sim.Close()
	return protocols.ExtractRulingSet(sim), rounds, nil
}

func (d *distributedBackend) forest(roots []int, depth int32) (protocols.ForestResult, int, error) {
	rounds := protocols.ForestRounds(depth)
	if len(roots) == 0 {
		n := d.g.N()
		res := protocols.ForestResult{
			Dist:       make([]int32, n),
			Root:       make([]int64, n),
			ParentPort: make([]int, n),
		}
		for v := 0; v < n; v++ {
			res.Dist[v] = -1
			res.Root[v] = -1
			res.ParentPort[v] = -1
		}
		return res, rounds, nil
	}
	isR := membership(d.g.N(), roots)
	sim, err := d.run(protocols.NewBFSForest(func(v int) bool { return isR[v] }, depth), rounds)
	if err != nil {
		return protocols.ForestResult{}, 0, err
	}
	defer sim.Close()
	return protocols.ExtractForest(sim), rounds, nil
}

func (d *distributedBackend) climb(via []map[int64]int, start [][]int64, keysPerVertex, pathLen int) (map[protocols.Edge]bool, int, error) {
	any := false
	for _, s := range start {
		if len(s) > 0 {
			any = true
			break
		}
	}
	if !any {
		return map[protocols.Edge]bool{}, 0, nil
	}
	sim, err := congest.NewUniform(d.g, protocols.NewClimb(via, start), d.opts())
	if err != nil {
		return nil, 0, err
	}
	defer sim.Close()
	rounds, err := sim.RunUntilQuiet(protocols.ClimbMaxRounds(keysPerVertex, pathLen))
	if err != nil {
		return nil, 0, err
	}
	d.msgs += sim.Metrics().Messages
	return protocols.ExtractClimbEdges(sim), rounds, nil
}

func membership(n int, xs []int) []bool {
	m := make([]bool, n)
	for _, x := range xs {
		m[x] = true
	}
	return m
}

// centralBackend computes the same outputs with the centralized oracles:
// identical deterministic decisions, no rounds. Fixed-schedule round
// budgets are still reported (they are parameter functions, equal to the
// distributed measurements); climbs report zero rounds.
type centralBackend struct {
	g    *graph.Graph
	nEst int
}

func (c *centralBackend) messages() int64 { return 0 }

func (c *centralBackend) nearNeighbors(centers []int, deg int, delta int32) (protocols.NNResult, int, error) {
	return protocols.CentralNearNeighbors(c.g, centers, deg, delta),
		protocols.NearNeighborsRounds(deg, delta), nil
}

func (c *centralBackend) rulingSet(members []int, q int32, cc int) ([]int, int, error) {
	return protocols.CentralRulingSet(c.g, members, q, cc, c.nEst),
		protocols.RulingSetRounds(q, cc, c.nEst), nil
}

func (c *centralBackend) forest(roots []int, depth int32) (protocols.ForestResult, int, error) {
	n := c.g.N()
	res := protocols.ForestResult{
		Dist:       make([]int32, n),
		Root:       make([]int64, n),
		ParentPort: make([]int, n),
	}
	dist, root, parent := c.g.MultiBFS(roots, depth)
	for v := 0; v < n; v++ {
		if dist[v] == graph.Infinity {
			res.Dist[v] = -1
			res.Root[v] = -1
			res.ParentPort[v] = -1
			continue
		}
		res.Dist[v] = dist[v]
		res.Root[v] = int64(root[v])
		if parent[v] >= 0 {
			res.ParentPort[v] = c.g.PortOf(v, int(parent[v]))
		} else {
			res.ParentPort[v] = -1
		}
	}
	return res, protocols.ForestRounds(depth), nil
}

// climb walks the pointer chains directly; the per-key visited set
// reproduces the distributed protocol's forward-once dedupe, so the
// marked edge set is identical.
func (c *centralBackend) climb(via []map[int64]int, start [][]int64, keysPerVertex, pathLen int) (map[protocols.Edge]bool, int, error) {
	edges := make(map[protocols.Edge]bool)
	visited := make(map[int64]map[int]bool) // key -> vertices that forwarded
	for v := range start {
		for _, k := range start[v] {
			vis := visited[k]
			if vis == nil {
				vis = make(map[int]bool)
				visited[k] = vis
			}
			cur := v
			for !vis[cur] && int64(cur) != k {
				vis[cur] = true
				port, ok := via[cur][k]
				if !ok {
					break
				}
				next := c.g.Neighbor(cur, port)
				edges[protocols.NormEdge(cur, next)] = true
				cur = next
			}
		}
	}
	return edges, 0, nil
}

package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"nearspan/internal/cluster"
	"nearspan/internal/graph"
	"nearspan/internal/params"
	"nearspan/internal/verify"
)

func randomWorkload(r *rand.Rand) (*graph.Graph, *params.Params) {
	n := 20 + r.Intn(60)
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		if err := b.AddEdge(v, r.Intn(v)); err != nil {
			panic(err)
		}
	}
	extra := r.Intn(4 * n)
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !b.HasEdge(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	g := b.Build()

	// Random valid parameter triple. Resample until the schedule is
	// test-sized: demo parameters with small eps and many phases blow
	// delta_l up exponentially, which is correct but not useful to
	// exercise repeatedly.
	for {
		kappas := []int{3, 4, 6, 8}
		kappa := kappas[r.Intn(len(kappas))]
		rho := 1/float64(kappa) + r.Float64()*(0.499-1/float64(kappa))
		eps := 0.2 + r.Float64()*0.6
		p, err := params.New(eps, kappa, rho, n)
		if err != nil {
			panic(err)
		}
		if p.Delta[p.L] <= 3000 {
			return g, p
		}
	}
}

// The full construction maintains its contract for arbitrary graphs and
// valid parameters: subgraph, connected, stretch-bounded, U-partition.
func TestPropConstructionContract(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, p := randomWorkload(r)
		res, err := Build(context.Background(), g, p, Options{KeepClusters: true})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !verify.Subgraph(res.Spanner, g) {
			t.Logf("seed %d: not a subgraph", seed)
			return false
		}
		if !res.Spanner.Connected() {
			t.Logf("seed %d: disconnected", seed)
			return false
		}
		if err := cluster.VerifyPartition(g.N(), res.U); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		rep := verify.Stretch(g, res.Spanner, 1+p.EpsPrime(), p.BetaInt())
		if !rep.OK() {
			t.Logf("seed %d: stretch violated: %v (params %v)", seed, rep, p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Distributed and centralized modes agree on arbitrary inputs — the
// protocol stack is a faithful implementation of the reference.
func TestPropModeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, p := randomWorkload(r)
		if p.Delta[p.L] > 300 {
			// Keep the distributed schedule affordable inside quick.
			return true
		}
		a, err := Build(context.Background(), g, p, Options{Mode: ModeCentralized})
		if err != nil {
			return false
		}
		b, err := Build(context.Background(), g, p, Options{Mode: ModeDistributed})
		if err != nil {
			return false
		}
		if a.EdgeCount() != b.EdgeCount() {
			t.Logf("seed %d: %d vs %d edges", seed, a.EdgeCount(), b.EdgeCount())
			return false
		}
		same := true
		a.Spanner.Edges(func(u, v int) {
			if !b.Spanner.HasEdge(u, v) {
				same = false
			}
		})
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Cluster radii never exceed the schedule's R_i for arbitrary inputs
// (Lemma 2.3).
func TestPropRadiusBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, p := randomWorkload(r)
		res, err := Build(context.Background(), g, p, Options{KeepClusters: true})
		if err != nil {
			return false
		}
		for i, col := range res.P {
			if col.Len() == 0 {
				continue
			}
			rad := cluster.MaxRadius(res.Spanner, col)
			if rad < 0 || rad > p.R[i] {
				t.Logf("seed %d phase %d: rad %d > R %d", seed, i, rad, p.R[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

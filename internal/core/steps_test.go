package core

import (
	"testing"

	"nearspan/internal/congest"
	"nearspan/internal/protocols"
	"nearspan/internal/sched"
)

// The distributed backend must construct exactly one simulator per
// Build — the point of the persistent network runtime. The assertion
// counts on a private runtime, so concurrent builds elsewhere cannot
// interfere.
func TestDistributedBuildConstructsOneSimulator(t *testing.T) {
	for _, eng := range congest.Engines() {
		c := testConfigs(t)[1] // gnp-demo
		rt := sched.New(2)
		build(t, c, Options{Mode: ModeDistributed, Engine: eng, Runtime: rt})
		if got := rt.SimulatorsCreated(); got != 1 {
			t.Errorf("%s: Build constructed %d simulators, want 1", eng, got)
		}
		rt.Close()
	}
}

// The centralized backend constructs none.
func TestCentralizedBuildConstructsNoSimulator(t *testing.T) {
	c := testConfigs(t)[0]
	rt := sched.New(2)
	defer rt.Close()
	build(t, c, Options{Mode: ModeCentralized, Runtime: rt})
	if got := rt.SimulatorsCreated(); got != 0 {
		t.Errorf("centralized Build constructed %d simulators, want 0", got)
	}
}

// Adversarial within-round delivery order across the *full* phase
// pipeline: the construction must be delivery-order independent end to
// end, not just per protocol.
func TestDescendingDeliveryMatchesCentralized(t *testing.T) {
	for _, c := range testConfigs(t) {
		if c.name == "path-guarantee" {
			continue // large schedule; the shape is covered by the others
		}
		cRes := build(t, c, Options{Mode: ModeCentralized})
		dRes := build(t, c, Options{Mode: ModeDistributed, Delivery: congest.DeliverPortDescending})
		if !sameSpanner(cRes.Spanner, dRes.Spanner) {
			t.Errorf("%s: descending delivery changed the spanner: central m=%d distributed m=%d",
				c.name, cRes.EdgeCount(), dRes.EdgeCount())
		}
		aRes := build(t, c, Options{Mode: ModeDistributed})
		if aRes.TotalRounds != dRes.TotalRounds || aRes.Messages != dRes.Messages {
			t.Errorf("%s: delivery order changed metrics: (%d,%d) vs (%d,%d)",
				c.name, aRes.TotalRounds, aRes.Messages, dRes.TotalRounds, dRes.Messages)
		}
	}
}

// Per-step metrics must be internally consistent with the phase stats:
// within each phase the step rounds sum to the phase's rounds, step
// messages sum to the phase's messages, and the grand totals match the
// result's.
func TestStepMetricsConsistent(t *testing.T) {
	for _, mode := range []Mode{ModeCentralized, ModeDistributed} {
		c := testConfigs(t)[1]
		res := build(t, c, Options{Mode: mode})
		if len(res.Steps) == 0 {
			t.Fatalf("%s: no step metrics recorded", mode)
		}
		phaseRounds := make(map[int]int)
		phaseMsgs := make(map[int]int64)
		var totalRounds int
		var totalMsgs int64
		for _, s := range res.Steps {
			phaseRounds[s.Phase] += s.Rounds
			phaseMsgs[s.Phase] += s.Messages
			totalRounds += s.Rounds
			totalMsgs += s.Messages
		}
		for _, ps := range res.Phases {
			if phaseRounds[ps.Index] != ps.Rounds() {
				t.Errorf("%s phase %d: step rounds %d != phase rounds %d",
					mode, ps.Index, phaseRounds[ps.Index], ps.Rounds())
			}
			if phaseMsgs[ps.Index] != ps.Messages {
				t.Errorf("%s phase %d: step messages %d != phase messages %d",
					mode, ps.Index, phaseMsgs[ps.Index], ps.Messages)
			}
		}
		if totalRounds != res.TotalRounds {
			t.Errorf("%s: step rounds sum %d != TotalRounds %d", mode, totalRounds, res.TotalRounds)
		}
		if totalMsgs != res.Messages {
			t.Errorf("%s: step messages sum %d != Messages %d", mode, totalMsgs, res.Messages)
		}
		// Step names come from the fixed vocabulary.
		known := map[string]bool{
			protocols.StepNearNeighbors: true,
			protocols.StepRulingSet:     true,
			protocols.StepForest:        true,
			protocols.StepForestPaths:   true,
			protocols.StepInterconnect:  true,
		}
		for _, s := range res.Steps {
			if !known[s.Step] {
				t.Errorf("%s: unknown step name %q", mode, s.Step)
			}
		}
		// Centralized and distributed must agree on the schedule-budget
		// steps' rounds; this is implied by the phase comparison above but
		// stated here against the per-step stream.
		if mode == ModeDistributed {
			cRes := build(t, c, Options{Mode: ModeCentralized})
			if len(cRes.Steps) != len(res.Steps) {
				t.Fatalf("step streams differ in length: central %d distributed %d",
					len(cRes.Steps), len(res.Steps))
			}
			for i := range res.Steps {
				if cRes.Steps[i].Phase != res.Steps[i].Phase || cRes.Steps[i].Step != res.Steps[i].Step {
					t.Errorf("step %d: central (%d,%s) vs distributed (%d,%s)",
						i, cRes.Steps[i].Phase, cRes.Steps[i].Step, res.Steps[i].Phase, res.Steps[i].Step)
				}
			}
		}
	}
}

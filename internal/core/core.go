// Package core implements the paper's contribution: the deterministic
// CONGEST-model construction of (1+ε, β)-spanners (§2).
//
// The construction proceeds in phases over a shrinking collection of
// clusters. Each phase i runs:
//
//	superclustering (§2.2)
//	  1. Algorithm 1 detects popular cluster centers W_i
//	     (>= deg_i other centers within δ_i).
//	  2. A deterministic (2δ_i+1, (2/ρ̂)δ_i)-ruling set RS_i ⊆ W_i is
//	     computed (Theorem 2.2).
//	  3. A BFS forest of depth (2/ρ̂)δ_i grown from RS_i superclusters
//	     every spanned center's cluster into its root's supercluster
//	     (Lemma 2.4 guarantees all popular centers are spanned); the
//	     forest root paths are added to H.
//	interconnection (§2.3)
//	  4. Every center whose cluster was not superclustered (U_i) adds a
//	     shortest path to every center within δ_i, using the traceback
//	     pointers recorded by Algorithm 1.
//
// The final phase ℓ skips superclustering. The union of the added paths
// and forests is the spanner H.
//
// Build executes the construction either distributedly (on the CONGEST
// simulator, measuring rounds) or centrally (same deterministic
// decisions, no round machinery); the two modes produce the identical
// spanner (tested), so large-scale size/stretch experiments can use the
// fast mode while round measurements come from the real protocol stack.
package core

import (
	"context"
	"fmt"
	"slices"

	"nearspan/internal/cluster"
	"nearspan/internal/congest"
	"nearspan/internal/edgeset"
	"nearspan/internal/graph"
	"nearspan/internal/params"
	"nearspan/internal/protocols"
	"nearspan/internal/sched"
)

// Mode selects the execution backend.
type Mode int

const (
	// ModeCentralized runs the reference implementation.
	ModeCentralized Mode = iota + 1
	// ModeDistributed runs the CONGEST protocol stack.
	ModeDistributed
)

func (m Mode) String() string {
	switch m {
	case ModeCentralized:
		return "centralized"
	case ModeDistributed:
		return "distributed"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configure Build. The zero value selects the centralized
// backend.
type Options struct {
	Mode Mode
	// Engine selects the CONGEST simulator engine (ModeDistributed
	// only); the zero value means congest.EngineSequential. Every
	// engine produces the identical spanner and round count.
	Engine congest.Engine
	// Delivery selects the within-round message delivery order of the
	// simulator (ModeDistributed only). Correct protocols are
	// order-independent; running under DeliverPortDescending is an
	// adversarial-scheduling check of the full phase pipeline.
	Delivery congest.DeliveryOrder
	// KeepClusters retains the per-phase cluster collections in the
	// result for verification and figure rendering (memory-heavy on
	// large graphs).
	KeepClusters bool
	// Runtime is the shared execution runtime distributed builds submit
	// their simulator rounds to; nil selects the process-wide default.
	// Concurrent Builds given the same runtime share one bounded worker
	// pool instead of stacking private pools.
	Runtime *sched.Runtime
	// OnStep, when set, receives each protocol step's metrics as it
	// completes — the per-build progress stream. It is invoked
	// synchronously on the building goroutine, in execution order, in
	// both modes (centralized steps report their schedule budgets). Fan
	// one build out to several consumers with protocols.StepFanout.
	OnStep func(protocols.StepMetrics)
	// RoundBudget, when positive, bounds the build's total simulated
	// rounds: a construction that would exceed it aborts with a wrapped
	// *congest.ErrBudgetExhausted instead of running on — the service
	// layer's per-job round cap. Distributed builds count executed
	// rounds and surface the live pending-message histogram at the cut;
	// centralized builds count the recorded schedule budgets.
	RoundBudget int
	// ArenaFraction controls how much of the simulator's worst-case
	// message arena is preallocated in ModeDistributed (see
	// congest.Options.ArenaFraction): 0 means the small default reserve,
	// negative means fully lazy, and values >= 1 restore the legacy full
	// preallocation. Purely a memory/latency trade — the build result is
	// bit-identical for every setting.
	ArenaFraction float64
	// KeepRebuildState retains, in Result.Rebuild, the state a later
	// Rebuild replays against: the source graph, the per-phase center
	// sets, near-neighbors tables, and forward transcripts. Costs memory
	// proportional to the tables (the spanner pipeline's dominant state)
	// but makes edge-delta rebuilds frontier-scoped instead of
	// from-scratch. Rebuild results always retain it, so rebuilds chain.
	KeepRebuildState bool
	// MaxAffectedFraction bounds Rebuild's dirty frontier as a fraction
	// of n: a delta whose affected region grows past it abandons the
	// incremental path and falls back to a full build (correct either
	// way; the threshold only picks which is cheaper). 0 means the
	// default 0.25; values >= 1 never fall back.
	MaxAffectedFraction float64
}

// PhaseStats records one phase's measurements, aligned with the paper's
// per-phase quantities.
type PhaseStats struct {
	Index       int
	Deg         int   // deg_i
	Delta       int32 // δ_i
	Clusters    int   // |P_i|
	Popular     int   // |W_i|
	RulingSet   int   // |RS_i| = |P_{i+1}|
	Unclustered int   // |U_i|
	EdgesSC     int   // edges added by superclustering
	EdgesIC     int   // edges added by interconnection
	RoundsNN    int   // Algorithm 1 rounds
	RoundsRS    int   // ruling set rounds
	RoundsSC    int   // forest growth + forest-climb rounds
	RoundsIC    int   // interconnection trace rounds
	Messages    int64 // messages sent during this phase (distributed mode)
}

// Rounds returns the phase's total round count.
func (ps PhaseStats) Rounds() int {
	return ps.RoundsNN + ps.RoundsRS + ps.RoundsSC + ps.RoundsIC
}

// Result is the outcome of one spanner construction.
type Result struct {
	Spanner *graph.Graph
	Params  *params.Params
	Mode    Mode
	Phases  []PhaseStats

	// Steps is the per-step metrics stream, one entry per protocol
	// session in execution order (ℓ+1 phases × up to 5 steps). Within
	// each phase the step rounds sum to the phase's Rounds(). In
	// ModeCentralized the entries carry the schedule budgets with zero
	// messages.
	Steps []protocols.StepMetrics

	// ArenaBytes is the retained size of the simulator's message arenas
	// and slot tables in ModeDistributed (zero in ModeCentralized) —
	// the build's arena footprint, tracked as a high-water mark by the
	// service layer. Message pages are allocated lazily as traffic
	// touches them, so this is a measured quantity: it reflects the
	// slots the protocols actually used, not the worst-case topology
	// bound. It is still deterministic — the same build reports the
	// same ArenaBytes regardless of engine or Options.ArenaFraction.
	ArenaBytes int64

	// ArenaBytesWorstCase is what ArenaBytes would have been under the
	// legacy full worst-case preallocation (every message page of both
	// arenas allocated; what ArenaFraction >= 1 reproduces). The
	// measured/worst-case ratio is the scale regime's memory headroom.
	ArenaBytesWorstCase int64

	// TotalRounds is the measured CONGEST round count in
	// ModeDistributed. In ModeCentralized it counts only the
	// fixed-schedule protocol budgets (Algorithm 1, ruling sets, forest
	// growth), which are identical to the distributed ones by
	// construction; the message-driven path-tracing rounds are measured
	// only by the distributed mode.
	TotalRounds int
	// Messages is the total message count (ModeDistributed only).
	Messages int64

	// P[i] is the cluster collection entering phase i; U[i] the clusters
	// interconnected at phase i (only when Options.KeepClusters).
	P []*cluster.Collection
	U []*cluster.Collection

	// Rebuild is the retained delta-rebuild state (with
	// Options.KeepRebuildState, and always on Rebuild results).
	Rebuild *RebuildState

	// Incremental reports that this result came from Rebuild's
	// frontier-scoped path; false for full builds and for rebuilds that
	// fell back to a full build. Tracked is the total dirty-frontier
	// size across phases when Incremental.
	Incremental bool
	Tracked     int
}

// EdgeCount returns |E_H|.
func (r *Result) EdgeCount() int { return r.Spanner.M() }

// backend abstracts the two execution strategies. Round counts returned
// by the fixed-schedule steps (nearNeighbors, rulingSet, forest) are the
// protocol budgets in both modes; climb rounds are measured in
// distributed mode and zero centrally. climb adds the traced edges into
// h directly, returning how many were new (the step's contribution to
// |E_H|). beginPhase scopes the step metrics each call records; steps
// returns the accumulated stream.
type backend interface {
	beginPhase(i int)
	nearNeighbors(ctx context.Context, centers []int, deg int, delta int32, rec *protocols.TranscriptRecorder) (protocols.NNResult, int, error)
	rulingSet(ctx context.Context, members []int, q int32, c int) ([]int, int, error)
	forest(ctx context.Context, roots []int, depth int32) (protocols.ForestResult, int, error)
	climb(ctx context.Context, step string, rt *protocols.Routing, start [][]int64, keysPerVertex, pathLen int, h *edgeset.Set) (int, int, error)
	recordReplayed(step string, rounds int) error
	messages() int64
	steps() []protocols.StepMetrics
	arenaBytes() int64
	arenaWorstCase() int64
}

// nnHook lets Rebuild substitute the near-neighbors step of each phase
// with a transcript-diff splice. It returns handled = false to fall
// through to the real protocol, or an error to abort the build (the
// fallback-to-full signal surfaces this way).
type nnHook func(ctx context.Context, phase int, centers []int) (nn protocols.NNResult, tr protocols.NNTranscript, tracked int, handled bool, err error)

// Build constructs the spanner for g under p. Cancelling the context
// aborts the construction — within one simulated round in distributed
// mode, at the next protocol step centrally — and returns the context's
// error (wrapped); a cancelled Build never returns a partial spanner.
func Build(ctx context.Context, g *graph.Graph, p *params.Params, opts Options) (*Result, error) {
	return buildWith(ctx, g, p, opts, nil)
}

// build is the shared construction engine behind Build and Rebuild:
// hook, when non-nil, may substitute each phase's near-neighbors step
// with a spliced result (recorded as a replayed step).
func buildWith(ctx context.Context, g *graph.Graph, p *params.Params, opts Options, hook nnHook) (*Result, error) {
	if p.N != g.N() {
		return nil, fmt.Errorf("core: params for n=%d but graph has n=%d", p.N, g.N())
	}
	if opts.Mode == 0 {
		opts.Mode = ModeCentralized
	}
	var bk backend
	switch opts.Mode {
	case ModeCentralized:
		bk = &centralBackend{g: g, nEst: p.NEstimate, onStep: opts.OnStep, budget: opts.RoundBudget}
	case ModeDistributed:
		// One persistent network for the whole construction: every
		// phase's protocol steps attach to it as sessions, and every
		// round executes on the shared runtime.
		db, err := newDistributedBackend(g, p.NEstimate,
			congest.Options{Engine: opts.Engine, Delivery: opts.Delivery, Runtime: opts.Runtime,
				ArenaFraction: opts.ArenaFraction})
		if err != nil {
			return nil, err
		}
		db.net.SetOnStep(opts.OnStep)
		db.net.SetRoundBudget(opts.RoundBudget)
		defer db.close()
		bk = db
	default:
		return nil, fmt.Errorf("core: unknown mode %d", opts.Mode)
	}

	res := &Result{Params: p, Mode: opts.Mode}
	var state *RebuildState
	if opts.KeepRebuildState || hook != nil {
		state = &RebuildState{Graph: g, Params: p}
	}
	h := edgeset.NewSet(g.N())
	cur := cluster.Singletons(g.N())

	// superclustered flags this phase's absorbed centers; the assignment
	// maps absorbed old centers to their new supercluster centers. Both
	// are dense and reset per phase in O(1).
	superclustered := edgeset.NewAssignment(g.N())
	assignment := edgeset.NewAssignment(g.N())

	for i := 0; i <= p.L; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: phase %d: %w", i, err)
		}
		if opts.KeepClusters {
			res.P = append(res.P, cur)
		}
		bk.beginPhase(i)
		ps := PhaseStats{Index: i, Deg: p.Deg[i], Delta: p.Delta[i], Clusters: cur.Len()}
		msgsBefore := bk.messages()
		centers := cur.Centers()

		// Algorithm 1: popularity detection + neighborhood knowledge —
		// either the real protocol, or (under Rebuild's hook) a
		// transcript-diff splice recorded as a replayed step.
		var nn protocols.NNResult
		var tr protocols.NNTranscript
		var nnRounds int
		var err error
		handled := false
		if hook != nil {
			var tracked int
			nn, tr, tracked, handled, err = hook(ctx, i, centers)
			if err != nil {
				return nil, fmt.Errorf("core: phase %d near-neighbors: %w", i, err)
			}
			if handled {
				nnRounds = protocols.NearNeighborsRounds(p.Deg[i], p.Delta[i])
				if err := bk.recordReplayed(protocols.StepNearNeighbors, nnRounds); err != nil {
					return nil, fmt.Errorf("core: phase %d near-neighbors: %w", i, err)
				}
				res.Tracked += tracked
			}
		}
		if !handled {
			var rec *protocols.TranscriptRecorder
			if state != nil {
				rec = protocols.NewTranscriptRecorder(g.N())
			}
			nn, nnRounds, err = bk.nearNeighbors(ctx, centers, p.Deg[i], p.Delta[i], rec)
			if err != nil {
				return nil, fmt.Errorf("core: phase %d near-neighbors: %w", i, err)
			}
			if rec != nil {
				tr = rec.Finish(p.Delta[i] - 1)
			}
		}
		if state != nil {
			state.Phases = append(state.Phases, RebuildPhase{
				Centers: slices.Clone(centers), NN: nn, Transcript: tr,
			})
		}
		ps.RoundsNN = nnRounds

		superclustered.Reset()
		var next *cluster.Collection
		if i < p.L {
			assignment.Reset()
			next, err = superclusterPhase(ctx, bk, g, p, i, cur, nn, h, superclustered, assignment, &ps)
			if err != nil {
				return nil, err
			}
		}

		// Interconnection (all phases; phase ℓ has U_ℓ = P_ℓ).
		icEdges, icRounds, err := interconnect(ctx, bk, g, centers, nn, superclustered, p.Delta[i], h)
		if err != nil {
			return nil, fmt.Errorf("core: phase %d interconnect: %w", i, err)
		}
		ps.RoundsIC = icRounds
		ps.EdgesIC = icEdges

		ps.Unclustered = len(centers) - superclustered.Len()
		ps.Messages = bk.messages() - msgsBefore
		if opts.KeepClusters {
			u, err := cur.Subset(g.N(), func(center int) bool { return !superclustered.Has(center) })
			if err != nil {
				return nil, fmt.Errorf("core: phase %d U_i: %w", i, err)
			}
			res.U = append(res.U, u)
		}
		res.Phases = append(res.Phases, ps)
		if i < p.L {
			cur = next
		}
	}

	res.Spanner = h.Graph()
	res.Rebuild = state
	for _, ps := range res.Phases {
		res.TotalRounds += ps.Rounds()
	}
	res.Messages = bk.messages()
	res.Steps = bk.steps()
	res.ArenaBytes = bk.arenaBytes()
	res.ArenaBytesWorstCase = bk.arenaWorstCase()
	return res, nil
}

// superclusterPhase runs steps 2–3 of phase i and returns P_{i+1}.
// It fills the superclustered set and the old-center → new-center
// assignment, adds forest paths to h, and updates ps in place.
func superclusterPhase(ctx context.Context, bk backend, g *graph.Graph, p *params.Params, i int,
	cur *cluster.Collection, nn protocols.NNResult, h *edgeset.Set,
	superclustered, assignment *edgeset.Assignment, ps *PhaseStats) (*cluster.Collection, error) {

	centers := cur.Centers()
	var popular []int
	for _, c := range centers {
		if nn.Popular[c] {
			popular = append(popular, c)
		}
	}
	ps.Popular = len(popular)

	rs, rsRounds, err := bk.rulingSet(ctx, popular, p.RulingSetQ(i), p.C)
	if err != nil {
		return nil, fmt.Errorf("core: phase %d ruling set: %w", i, err)
	}
	ps.RoundsRS = rsRounds
	ps.RulingSet = len(rs)

	depth := p.SuperclusterDepth(i)
	forest, fRounds, err := bk.forest(ctx, rs, depth)
	if err != nil {
		return nil, fmt.Errorf("core: phase %d forest: %w", i, err)
	}

	// Spanned centers join their root's supercluster; their forest root
	// paths go to H via a merged climb (one key: every vertex has a
	// single forest parent, so climbs toward different roots share the
	// dedupe).
	const forestKey = int64(-1)
	rt := protocols.NewForestRouting(forest.ParentPort, forestKey)
	start := make([][]int64, g.N())
	startKey := []int64{forestKey} // shared read-only start set
	for _, c := range centers {
		if forest.Dist[c] >= 0 {
			assignment.Set(c, int32(forest.Root[c]))
			superclustered.Set(c, 1)
			if forest.Dist[c] > 0 {
				start[c] = startKey
			}
		}
	}
	scEdges, scRounds, err := bk.climb(ctx, protocols.StepForestPaths, rt, start, 1, int(depth), h)
	if err != nil {
		return nil, fmt.Errorf("core: phase %d supercluster paths: %w", i, err)
	}
	ps.RoundsSC = fRounds + scRounds
	ps.EdgesSC = scEdges

	next, err := cur.Merge(g.N(), assignment)
	if err != nil {
		return nil, fmt.Errorf("core: phase %d merge: %w", i, err)
	}
	return next, nil
}

// interconnect adds, for every center not superclustered this phase, a
// shortest path to every center it knows (all centers within δ_i, by
// Theorem 2.1(2)). The climb routes over Algorithm 1's own table, and
// each initiating center's start-key set is its key run in that table —
// no copies, already sorted.
func interconnect(ctx context.Context, bk backend, g *graph.Graph, centers []int, nn protocols.NNResult,
	superclustered *edgeset.Assignment, delta int32, h *edgeset.Set) (int, int, error) {

	start := make([][]int64, g.N())
	maxKeys := 0
	for _, c := range centers {
		if superclustered.Has(c) {
			continue
		}
		keys, _ := nn.Known(c)
		if len(keys) > 0 {
			start[c] = keys
		}
		if len(keys) > maxKeys {
			maxKeys = len(keys)
		}
	}
	return bk.climb(ctx, protocols.StepInterconnect, &nn.Routing, start, maxKeys, int(delta), h)
}

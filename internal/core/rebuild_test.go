package core

import (
	"context"
	"math/rand"
	"testing"

	"nearspan/internal/congest"
	"nearspan/internal/delta"
	"nearspan/internal/graph"
)

// churnBatch draws k random deletions and k random insertions against g.
func churnBatch(r *rand.Rand, g *graph.Graph, k int) *delta.Batch {
	var edges []delta.Edge
	g.Edges(func(u, v int) {
		edges = append(edges, delta.Edge{U: int32(u), V: int32(v)})
	})
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	if k > len(edges) {
		k = len(edges)
	}
	b := &delta.Batch{Delete: append([]delta.Edge(nil), edges[:k]...)}
	n := g.N()
	for len(b.Insert) < k {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u == v || g.HasEdge(int(u), int(v)) {
			continue
		}
		e := delta.Edge{U: min(u, v), V: max(u, v)}
		dup := false
		for _, x := range b.Insert {
			if x == e {
				dup = true
				break
			}
		}
		if !dup {
			b.Insert = append(b.Insert, e)
		}
	}
	return b
}

// requireSameResult asserts the rebuild invariant: identical spanner
// fingerprint and identical per-phase statistics against a from-scratch
// build of the patched graph.
func requireSameResult(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	gm, gh := graph.Fingerprint(got.Spanner)
	wm, wh := graph.Fingerprint(want.Spanner)
	if gm != wm || gh != wh {
		t.Fatalf("%s: spanner fingerprints differ: (%d,%s) vs (%d,%s)", tag, gm, gh, wm, wh)
	}
	if len(got.Phases) != len(want.Phases) {
		t.Fatalf("%s: phase counts differ", tag)
	}
	for i := range got.Phases {
		gp, wp := got.Phases[i], want.Phases[i]
		if gp.Clusters != wp.Clusters || gp.Popular != wp.Popular ||
			gp.RulingSet != wp.RulingSet || gp.Unclustered != wp.Unclustered ||
			gp.EdgesSC != wp.EdgesSC || gp.EdgesIC != wp.EdgesIC {
			t.Fatalf("%s phase %d: stats differ:\n rebuild %+v\n scratch %+v", tag, i, gp, wp)
		}
	}
	if got.TotalRounds != want.TotalRounds {
		t.Fatalf("%s: rounds differ: rebuild %d scratch %d", tag, got.TotalRounds, want.TotalRounds)
	}
}

// A delta rebuild must be indistinguishable — spanner fingerprint, phase
// stats, round counts — from a from-scratch build of the patched graph,
// in every mode and engine.
func TestRebuildMatchesFullBuild(t *testing.T) {
	modes := []struct {
		name string
		opts Options
	}{
		{"centralized", Options{Mode: ModeCentralized}},
		{"distributed", Options{Mode: ModeDistributed}},
		{"goroutine", Options{Mode: ModeDistributed, Engine: congest.EngineGoroutine}},
		{"parallel", Options{Mode: ModeDistributed, Engine: congest.EngineParallel}},
	}
	for _, c := range testConfigs(t) {
		if c.name == "path-guarantee" {
			continue // large schedule; rebuild covered by the other configs
		}
		for _, m := range modes {
			if m.name != "centralized" && c.name != "gnp-demo" {
				continue // engine sweep on one workload keeps the matrix tractable
			}
			opts := m.opts
			opts.KeepRebuildState = true
			// Demo graphs are small enough that a wave can legitimately
			// touch most vertices; the fallback policy has its own test.
			opts.MaxAffectedFraction = 1
			prev := build(t, c, opts)
			for seed := int64(1); seed <= 3; seed++ {
				r := rand.New(rand.NewSource(seed))
				b := churnBatch(r, c.g, 1+r.Intn(5))
				got, err := Rebuild(context.Background(), prev, b, opts)
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", c.name, m.name, seed, err)
				}
				if !got.Incremental {
					t.Fatalf("%s/%s seed %d: rebuild fell back to full build", c.name, m.name, seed)
				}
				if got.Tracked <= 0 {
					t.Fatalf("%s/%s seed %d: no tracked vertices reported", c.name, m.name, seed)
				}
				g2, err := delta.Apply(c.g, b)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Build(context.Background(), g2, mustParams(t, c), m.opts)
				if err != nil {
					t.Fatal(err)
				}
				requireSameResult(t, c.name+"/"+m.name, got, want)
			}
		}
	}
}

// Rebuilds must chain: each result carries fresh rebuild state, so a
// churn sequence applies batch after batch without a full build.
func TestRebuildChains(t *testing.T) {
	c := testConfigs(t)[1] // gnp-demo
	opts := Options{Mode: ModeCentralized, KeepRebuildState: true}
	cur := build(t, c, opts)
	g := c.g
	r := rand.New(rand.NewSource(77))
	for step := 0; step < 4; step++ {
		b := churnBatch(r, g, 1+r.Intn(4))
		next, err := Rebuild(context.Background(), cur, b, opts)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		g2, err := delta.Apply(g, b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Build(context.Background(), g2, mustParams(t, c), Options{Mode: ModeCentralized})
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "chain", next, want)
		cur, g = next, g2
	}
}

// Randomized churn chains must hold the rebuild invariant in every
// engine: delta.RandomBatch streams — the same generator the benchmarks
// and the CLI use — applied step after step, cross-checked against a
// from-scratch build of each patched graph.
func TestRebuildChurnEngines(t *testing.T) {
	c := testConfigs(t)[1] // gnp-demo
	modes := []struct {
		name string
		opts Options
	}{
		{"centralized", Options{Mode: ModeCentralized}},
		{"distributed", Options{Mode: ModeDistributed}},
		{"goroutine", Options{Mode: ModeDistributed, Engine: congest.EngineGoroutine}},
		{"parallel", Options{Mode: ModeDistributed, Engine: congest.EngineParallel}},
	}
	for _, m := range modes {
		for seed := uint64(1); seed <= 2; seed++ {
			opts := m.opts
			opts.KeepRebuildState = true
			opts.MaxAffectedFraction = 1 // demo-sized graph; fallback tested separately
			cur := build(t, c, opts)
			g := c.g
			for step := 0; step < 3; step++ {
				b := delta.RandomBatch(g, 3, seed*1000+uint64(step))
				next, err := Rebuild(context.Background(), cur, b, opts)
				if err != nil {
					t.Fatalf("%s seed %d step %d: %v", m.name, seed, step, err)
				}
				if !next.Incremental {
					t.Fatalf("%s seed %d step %d: fell back to full build", m.name, seed, step)
				}
				g2, err := delta.Apply(g, b)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Build(context.Background(), g2, mustParams(t, c), m.opts)
				if err != nil {
					t.Fatal(err)
				}
				requireSameResult(t, m.name, next, want)
				cur, g = next, g2
			}
		}
	}
}

// A tiny MaxAffectedFraction must trigger the fallback: the result is
// still correct, but produced by a full build (Incremental = false).
func TestRebuildFallback(t *testing.T) {
	c := testConfigs(t)[0] // grid-demo
	opts := Options{Mode: ModeCentralized, KeepRebuildState: true}
	prev := build(t, c, opts)
	r := rand.New(rand.NewSource(5))
	b := churnBatch(r, c.g, 6)
	small := opts
	small.MaxAffectedFraction = 1e-9
	got, err := Rebuild(context.Background(), prev, b, small)
	if err != nil {
		t.Fatal(err)
	}
	if got.Incremental {
		t.Fatal("rebuild did not fall back with MaxAffectedFraction ~ 0")
	}
	g2, err := delta.Apply(c.g, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Build(context.Background(), g2, mustParams(t, c), Options{Mode: ModeCentralized})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "fallback", got, want)
	if got.Rebuild == nil {
		t.Fatal("fallback result lost rebuild state")
	}
}

// Rebuild without retained state is a usage error.
func TestRebuildRequiresState(t *testing.T) {
	c := testConfigs(t)[0]
	prev := build(t, c, Options{Mode: ModeCentralized})
	if _, err := Rebuild(context.Background(), prev, &delta.Batch{}, Options{}); err == nil {
		t.Fatal("Rebuild accepted a result without rebuild state")
	}
}

// Replayed NN steps must appear in the metrics stream, marked, with the
// schedule budget charged.
func TestRebuildStepMetricsMarkReplayed(t *testing.T) {
	c := testConfigs(t)[1]
	opts := Options{Mode: ModeDistributed, KeepRebuildState: true}
	prev := build(t, c, opts)
	r := rand.New(rand.NewSource(9))
	b := churnBatch(r, c.g, 2)
	got, err := Rebuild(context.Background(), prev, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for _, s := range got.Steps {
		if s.Replayed {
			replayed++
			if s.Rounds <= 0 {
				t.Errorf("replayed step %s phase %d reports %d rounds", s.Step, s.Phase, s.Rounds)
			}
			if s.Messages != 0 {
				t.Errorf("replayed step %s phase %d moved %d messages", s.Step, s.Phase, s.Messages)
			}
		}
	}
	if replayed == 0 {
		t.Fatal("no replayed steps recorded in an incremental rebuild")
	}
	for _, s := range prev.Steps {
		if s.Replayed {
			t.Fatal("full build recorded a replayed step")
		}
	}
}

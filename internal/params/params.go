// Package params computes the phase schedule of the spanner construction:
// the number of phases, the stage boundaries, and the per-phase distance
// and degree thresholds (paper §2.1, eqs. 2–3), together with the derived
// quantities of §2.4 (radius bounds, β, rescaling).
//
// The paper states the schedule over the reals; execution needs integers.
// Every rounding here goes in the direction that preserves the paper's
// inequalities: thresholds round up (larger exploration radii and ruling
// set parameters only help coverage), so stretch guarantees survive
// integerization, at the cost of constant-factor round/size overhead.
package params

import (
	"fmt"
	"math"
)

// Params is the validated parameter set of one spanner construction.
type Params struct {
	// Eps is the paper's internal ε (before the §2.4.4 rescaling): it
	// controls the per-phase distance scale δ_i ≈ ε^{-i}.
	Eps float64
	// Kappa (κ >= 2) controls the spanner size exponent: O(β·n^{1+1/κ})
	// edges.
	Kappa int
	// Rho (1/κ <= ρ < 1/2) controls the round budget: O(β·n^ρ/ρ) rounds.
	Rho float64
	// N is the number of vertices.
	N int
	// NEstimate is the vertex count known to the vertices: the paper
	// (§1.3.1) only requires an estimate ñ with n <= ñ <= poly(n). All
	// thresholds (deg_i, the ruling-set digit base) derive from
	// NEstimate; guarantees survive over-estimation because every
	// inequality in the analysis uses the thresholds as upper bounds.
	// New sets NEstimate = N; NewWithEstimate overrides it.
	NEstimate int

	// Derived quantities (computed by New):

	// L is ℓ = ⌊log2(κρ)⌋ + ⌈(κ+1)/(κρ)⌉ − 1, the index of the last
	// phase.
	L int
	// I0 is the last phase of the exponential-growth stage,
	// ⌊log2(κρ)⌋.
	I0 int
	// C is the ruling-set locality parameter: ⌈1/ρ⌉ digit positions.
	// The effective ρ̂ = 1/C (≤ ρ) replaces ρ in all radius formulas so
	// that integer arithmetic never under-covers.
	C int
	// Deg[i] is the popularity threshold deg_i of phase i.
	Deg []int
	// Delta[i] is the distance threshold δ_i = ⌈ε^{-i}⌉ + 2·R[i].
	Delta []int32
	// R[i] is the integer radius bound: R_0 = 0,
	// R_{i+1} = ⌈(2/ρ̂)·ε^{-i}⌉ + (5·C)·R_i (eq. 2 with ρ̂ = 1/C).
	R []int32
}

// New validates (eps, kappa, rho) for an n-vertex graph and derives the
// schedule. Constraints follow Corollary 2.18: 0 < ε, κ >= 2,
// 1/κ <= ρ < 1/2. ε > ρ/10 is allowed (the algorithm runs and the
// measured stretch is still reported) but GuaranteeOK reports whether the
// analytic (1+ε', β) bound of §2.4 applies.
func New(eps float64, kappa int, rho float64, n int) (*Params, error) {
	return NewWithEstimate(eps, kappa, rho, n, n)
}

// NewWithEstimate derives the schedule when vertices know only an
// estimate nTilde of the vertex count, n <= nTilde (paper §1.3.1: the
// results apply for n <= ñ <= poly(n)). Larger estimates inflate the
// degree thresholds and the ruling-set schedule — costing rounds, never
// correctness.
func NewWithEstimate(eps float64, kappa int, rho float64, n, nTilde int) (*Params, error) {
	if n < 1 {
		return nil, fmt.Errorf("params: n = %d < 1", n)
	}
	if nTilde < n {
		return nil, fmt.Errorf("params: estimate %d below n = %d", nTilde, n)
	}
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("params: eps = %v out of (0, 1]", eps)
	}
	if kappa < 2 {
		return nil, fmt.Errorf("params: kappa = %d < 2", kappa)
	}
	if rho < 1/float64(kappa) || rho >= 0.5 {
		return nil, fmt.Errorf("params: rho = %v out of [1/kappa, 1/2) for kappa = %d", rho, kappa)
	}

	p := &Params{Eps: eps, Kappa: kappa, Rho: rho, N: n, NEstimate: nTilde}
	p.I0 = int(math.Floor(math.Log2(float64(kappa) * rho)))
	if p.I0 < 0 {
		// κρ >= 1 by the constraint ρ >= 1/κ, so log2(κρ) >= 0; guard
		// against floating-point dust at κρ == 1.
		p.I0 = 0
	}
	p.L = p.I0 + int(math.Ceil(float64(kappa+1)/(float64(kappa)*rho))) - 1
	p.C = int(math.Ceil(1 / rho))

	p.Deg = make([]int, p.L+1)
	for i := 0; i <= p.L; i++ {
		if i <= p.I0 {
			// Exponential growth stage: deg_i = n^{2^i/κ}.
			p.Deg[i] = ceilPow(nTilde, math.Exp2(float64(i))/float64(kappa))
		} else {
			// Fixed growth stage and the concluding phase: deg_i = n^ρ.
			p.Deg[i] = ceilPow(nTilde, rho)
		}
		if p.Deg[i] < 1 {
			p.Deg[i] = 1
		}
	}

	p.R = make([]int32, p.L+2)
	p.Delta = make([]int32, p.L+1)
	p.R[0] = 0
	for i := 0; i <= p.L; i++ {
		p.Delta[i] = int32(math.Ceil(invPow(eps, i))) + 2*p.R[i]
		// R_{i+1} = (2/ρ̂)·ε^{-i} + (5/ρ̂)·R_i with ρ̂ = 1/C, rounded up.
		p.R[i+1] = int32(math.Ceil(2*float64(p.C)*invPow(eps, i))) + int32(5*p.C)*p.R[i]
	}
	return p, nil
}

// ceilPow returns ⌈n^e⌉ computed with a correction loop so that float
// imprecision never rounds an exact power down or up spuriously.
func ceilPow(n int, e float64) int {
	v := math.Pow(float64(n), e)
	r := int(math.Ceil(v - 1e-9))
	if r < 0 {
		return 0
	}
	return r
}

// invPow returns ε^{-i}.
func invPow(eps float64, i int) float64 {
	return math.Pow(1/eps, float64(i))
}

// GuaranteeOK reports whether the parameters satisfy the preconditions of
// the stretch analysis (§2.4: ε <= 1/10 and ρ̂ >= 10ε, normalizing the
// paper's "ρ ≥ 10" typo; see DESIGN.md).
func (p *Params) GuaranteeOK() bool {
	rhoHat := 1 / float64(p.C)
	return p.Eps <= 0.1+1e-12 && rhoHat >= 10*p.Eps-1e-12
}

// Beta is the additive stretch term for the internal ε: β = ε^{-ℓ}
// (eq. 17).
func (p *Params) Beta() float64 {
	return invPow(p.Eps, p.L)
}

// BetaInt is β rounded up to an integer, as used in (1+ε', β) checks.
func (p *Params) BetaInt() int32 {
	return int32(math.Ceil(p.Beta() - 1e-9))
}

// EpsPrime is the rescaled ε' = 30·ε·ℓ/ρ̂ of §2.4.4: the multiplicative
// stretch of the final spanner is 1+ε'.
func (p *Params) EpsPrime() float64 {
	if p.L == 0 {
		// A single-phase schedule adds no multi-segment error; the
		// analysis degenerates to the phase-0 interconnection, which is
		// exact on each segment.
		return 0
	}
	return 30 * p.Eps * float64(p.L) / (1 / float64(p.C))
}

// FromTarget derives internal parameters from a target ε' (the final
// multiplicative slack the caller wants), inverting the §2.4.4
// rescaling: ε = ε'·ρ̂/(30ℓ). ℓ depends only on κ and ρ, so the
// inversion is exact.
func FromTarget(epsPrime float64, kappa int, rho float64, n int) (*Params, error) {
	if epsPrime <= 0 || epsPrime > 1 {
		return nil, fmt.Errorf("params: target eps' = %v out of (0, 1]", epsPrime)
	}
	// Probe with a valid ε to learn ℓ and C for (κ, ρ).
	probe, err := New(0.05, kappa, rho, n)
	if err != nil {
		return nil, err
	}
	if probe.L == 0 {
		return New(minf(epsPrime, 1), kappa, rho, n)
	}
	eps := epsPrime * (1 / float64(probe.C)) / (30 * float64(probe.L))
	return New(eps, kappa, rho, n)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// RulingSetQ returns the separation parameter q = 2·δ_i for phase i
// (§2.2: a (2δ_i+1, (2/ρ)·δ_i)-ruling set).
func (p *Params) RulingSetQ(i int) int32 { return 2 * p.Delta[i] }

// SuperclusterDepth returns the BFS-forest depth of phase i: the
// domination radius C·q = (2/ρ̂)·δ_i of the ruling set.
func (p *Params) SuperclusterDepth(i int) int32 {
	return int32(p.C) * p.RulingSetQ(i)
}

// PredictedRounds is the paper's round bound O(β·n^ρ·ρ⁻¹) evaluated
// without the O-constant: β·n^ρ/ρ. Experiments report measured/predicted
// ratios against it.
func (p *Params) PredictedRounds() float64 {
	return p.Beta() * math.Pow(float64(p.N), p.Rho) / p.Rho
}

// PredictedSize is the paper's size bound O(β·n^{1+1/κ}) without the
// O-constant: β·n^{1+1/κ}.
func (p *Params) PredictedSize() float64 {
	return p.Beta() * math.Pow(float64(p.N), 1+1/float64(p.Kappa))
}

// BetaFormula is the closed-form additive term of eq. (1)/(18) for the
// rescaled parameters: ((30·ℓ)/(ρ̂·ε'))^ℓ. It equals Beta() by eq. (17)
// up to floating-point error; both are exposed so tests can pin the
// identity.
func (p *Params) BetaFormula() float64 {
	if p.L == 0 {
		return 1
	}
	eprime := p.EpsPrime()
	rhoHat := 1 / float64(p.C)
	return math.Pow(30*float64(p.L)/(rhoHat*eprime), float64(p.L))
}

// String summarizes the schedule.
func (p *Params) String() string {
	return fmt.Sprintf("eps=%g kappa=%d rho=%g n=%d l=%d i0=%d c=%d deg=%v delta=%v beta=%g",
		p.Eps, p.Kappa, p.Rho, p.N, p.L, p.I0, p.C, p.Deg, p.Delta, p.Beta())
}

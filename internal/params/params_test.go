package params

import (
	"math"
	"testing"
)

func mustNew(t *testing.T, eps float64, kappa int, rho float64, n int) *Params {
	t.Helper()
	p, err := New(eps, kappa, rho, n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidation(t *testing.T) {
	cases := []struct {
		eps   float64
		kappa int
		rho   float64
		n     int
		ok    bool
	}{
		{0.1, 4, 0.3, 100, true},
		{0.0, 4, 0.3, 100, false},  // eps <= 0
		{1.5, 4, 0.3, 100, false},  // eps > 1
		{0.1, 1, 0.3, 100, false},  // kappa < 2
		{0.1, 4, 0.2, 100, false},  // rho < 1/kappa
		{0.1, 4, 0.5, 100, false},  // rho >= 1/2
		{0.1, 4, 0.25, 100, true},  // rho == 1/kappa boundary
		{0.1, 4, 0.3, 0, false},    // n < 1
		{0.1, 2, 0.499, 10, false}, // kappa=2 leaves [1/2, 1/2) empty
		{0.1, 3, 0.34, 100, true},  // minimal practical kappa
		{1.0, 16, 0.0625, 5, true}, // rho == 1/kappa, small n
	}
	for _, c := range cases {
		_, err := New(c.eps, c.kappa, c.rho, c.n)
		if (err == nil) != c.ok {
			t.Errorf("New(%v,%d,%v,%d): err=%v, want ok=%v", c.eps, c.kappa, c.rho, c.n, err, c.ok)
		}
	}
}

// ℓ = ⌊log2(κρ)⌋ + ⌈(κ+1)/(κρ)⌉ − 1 (paper §2.1).
func TestPhaseCount(t *testing.T) {
	cases := []struct {
		kappa  int
		rho    float64
		wantL  int
		wantI0 int
	}{
		// κρ = 1.8: i0 = 0, ⌈5/1.8⌉ = 3 → ℓ = 2.
		{4, 0.45, 2, 0},
		// κρ = 1.2: i0 = 0, ⌈5/1.2⌉ = 5 → ℓ = 4.
		{4, 0.3, 4, 0},
		// κρ = 2.4: i0 = 1, ⌈9/2.4⌉ = 4 → ℓ = 4.
		{8, 0.3, 4, 1},
	}
	for _, c := range cases {
		p := mustNew(t, 0.04, c.kappa, c.rho, 1000)
		if p.L != c.wantL || p.I0 != c.wantI0 {
			t.Errorf("kappa=%d rho=%v: L=%d I0=%d, want %d %d", c.kappa, c.rho, p.L, p.I0, c.wantL, c.wantI0)
		}
	}
	// κρ slightly above 1 keeps i0 = 0 and yields a valid plan.
	p := mustNew(t, 0.04, 3, 0.34, 1000)
	if p.I0 != 0 || p.L < 1 {
		t.Errorf("boundary: I0=%d L=%d", p.I0, p.L)
	}
}

// deg_i = n^{2^i/κ} in the exponential stage, n^ρ afterwards (§2.1), and
// deg_i <= n^ρ throughout.
func TestDegreeSchedule(t *testing.T) {
	n := 10000
	p := mustNew(t, 0.04, 8, 0.3, n)
	nRho := math.Pow(float64(n), p.Rho)
	for i, d := range p.Deg {
		if i <= p.I0 {
			want := math.Pow(float64(n), math.Exp2(float64(i))/float64(p.Kappa))
			if math.Abs(float64(d)-math.Ceil(want-1e-9)) > 0.5 {
				t.Errorf("deg[%d]=%d, want ceil(%v)", i, d, want)
			}
			if float64(d) > nRho+1 {
				t.Errorf("deg[%d]=%d exceeds n^rho=%v in exponential stage", i, d, nRho)
			}
		} else if float64(d) < nRho-1 || float64(d) > nRho+1 {
			t.Errorf("deg[%d]=%d, want ~n^rho=%v", i, d, nRho)
		}
	}
}

// R_i and δ_i satisfy the paper's recurrences and bounds.
func TestRadiusRecurrence(t *testing.T) {
	p := mustNew(t, 0.05, 4, 0.45, 1000)
	if p.R[0] != 0 {
		t.Fatalf("R[0]=%d", p.R[0])
	}
	for i := 0; i <= p.L; i++ {
		// δ_i = ⌈ε^{-i}⌉ + 2R_i (eq. 3, integerized).
		want := int32(math.Ceil(invPow(p.Eps, i))) + 2*p.R[i]
		if p.Delta[i] != want {
			t.Errorf("Delta[%d]=%d, want %d", i, p.Delta[i], want)
		}
		// Monotone growth.
		if i > 0 && p.Delta[i] <= p.Delta[i-1] {
			t.Errorf("Delta not increasing at %d: %v", i, p.Delta)
		}
	}
}

// Eq. (6): with ρ̂ >= 10ε, R_i <= (4/ρ̂)·ε^{-(i-1)} — the paper's bound
// with a +1-per-level slack for the integer ceilings.
func TestRadiusUpperBound(t *testing.T) {
	for _, cfg := range []struct {
		eps   float64
		kappa int
		rho   float64
	}{
		{0.02, 4, 0.45}, {0.01, 4, 0.3}, {0.03, 8, 0.34},
	} {
		p := mustNew(t, cfg.eps, cfg.kappa, cfg.rho, 100000)
		if !p.GuaranteeOK() {
			t.Fatalf("cfg %+v expected to satisfy guarantee preconditions", cfg)
		}
		rhoHat := 1 / float64(p.C)
		for i := 1; i <= p.L; i++ {
			bound := 4/rhoHat*invPow(p.Eps, i-1) + float64(i+1) // slack for ceilings
			if float64(p.R[i]) > bound {
				t.Errorf("cfg %+v: R[%d]=%d exceeds (4/rho_hat)eps^-(i-1)=%v",
					cfg, i, p.R[i], bound)
			}
		}
		// Eq. (8): δ_i = O(ε^{-i}); with the guarantee preconditions the
		// constant is at most 2 (+ceiling slack).
		for i := 0; i <= p.L; i++ {
			if float64(p.Delta[i]) > 2*invPow(p.Eps, i)+float64(2*i+2) {
				t.Errorf("cfg %+v: Delta[%d]=%d exceeds 2eps^-i", cfg, i, p.Delta[i])
			}
		}
	}
}

func TestGuaranteeOK(t *testing.T) {
	good := mustNew(t, 0.02, 4, 0.45, 1000) // C=3, rho_hat=1/3 >= 0.2, eps<=0.1
	if !good.GuaranteeOK() {
		t.Error("expected guarantee to hold")
	}
	bad := mustNew(t, 0.3, 4, 0.45, 1000) // eps > 1/10
	if bad.GuaranteeOK() {
		t.Error("eps=0.3 must not satisfy the guarantee preconditions")
	}
	bad2 := mustNew(t, 0.09, 4, 0.25, 1000) // C=4, rho_hat=0.25 < 0.9
	if bad2.GuaranteeOK() {
		t.Error("rho_hat < 10eps must not satisfy the guarantee preconditions")
	}
}

// Eq. (17): β = ε^{-ℓ} equals the closed form ((30ℓ)/(ρ̂ε'))^ℓ after
// rescaling.
func TestBetaIdentity(t *testing.T) {
	for _, cfg := range []struct {
		eps   float64
		kappa int
		rho   float64
	}{
		{0.02, 4, 0.45}, {0.05, 4, 0.3}, {0.01, 8, 0.26},
	} {
		p := mustNew(t, cfg.eps, cfg.kappa, cfg.rho, 1000)
		b1, b2 := p.Beta(), p.BetaFormula()
		if math.Abs(b1-b2)/b1 > 1e-9 {
			t.Errorf("cfg %+v: Beta()=%v BetaFormula()=%v", cfg, b1, b2)
		}
	}
}

func TestFromTargetInvertsRescaling(t *testing.T) {
	for _, target := range []float64{0.25, 0.5, 1.0} {
		p, err := FromTarget(target, 4, 0.45, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if p.L == 0 {
			continue
		}
		if math.Abs(p.EpsPrime()-target)/target > 1e-9 {
			t.Errorf("target %v: EpsPrime=%v", target, p.EpsPrime())
		}
	}
	if _, err := FromTarget(0, 4, 0.45, 100); err == nil {
		t.Error("target 0 accepted")
	}
}

func TestRulingSetParameters(t *testing.T) {
	p := mustNew(t, 0.05, 4, 0.45, 1000)
	for i := 0; i <= p.L; i++ {
		if p.RulingSetQ(i) != 2*p.Delta[i] {
			t.Errorf("q[%d]=%d, want 2*delta=%d", i, p.RulingSetQ(i), 2*p.Delta[i])
		}
		if p.SuperclusterDepth(i) != int32(p.C)*2*p.Delta[i] {
			t.Errorf("depth[%d]=%d, want c*q=%d", i, p.SuperclusterDepth(i), int32(p.C)*2*p.Delta[i])
		}
	}
}

func TestPredictedBoundsPositive(t *testing.T) {
	p := mustNew(t, 0.05, 4, 0.45, 1000)
	if p.PredictedRounds() <= 0 || p.PredictedSize() <= 0 {
		t.Error("predicted bounds must be positive")
	}
	if p.BetaInt() < 1 {
		t.Errorf("BetaInt=%d", p.BetaInt())
	}
}

func TestCeilPowExactness(t *testing.T) {
	// n^(1/2) for perfect squares must not round up.
	if got := ceilPow(10000, 0.5); got != 100 {
		t.Errorf("ceilPow(10000, 0.5)=%d, want 100", got)
	}
	if got := ceilPow(1024, 0.5); got != 32 {
		t.Errorf("ceilPow(1024, 0.5)=%d, want 32", got)
	}
	// Non-exact powers round up.
	if got := ceilPow(10, 0.5); got != 4 {
		t.Errorf("ceilPow(10, 0.5)=%d, want 4", got)
	}
}

func TestNewWithEstimate(t *testing.T) {
	exact := mustNew(t, 0.1, 4, 0.45, 100)
	over, err := NewWithEstimate(0.1, 4, 0.45, 100, 10000) // ñ = n^2
	if err != nil {
		t.Fatal(err)
	}
	if over.N != 100 || over.NEstimate != 10000 {
		t.Fatalf("fields: N=%d NEstimate=%d", over.N, over.NEstimate)
	}
	// Over-estimation only raises thresholds.
	for i := range exact.Deg {
		if over.Deg[i] < exact.Deg[i] {
			t.Errorf("deg[%d] shrank under over-estimation: %d < %d", i, over.Deg[i], exact.Deg[i])
		}
	}
	// The distance schedule is estimate-independent.
	for i := range exact.Delta {
		if over.Delta[i] != exact.Delta[i] {
			t.Errorf("delta[%d] depends on the estimate", i)
		}
	}
	// Under-estimates rejected.
	if _, err := NewWithEstimate(0.1, 4, 0.45, 100, 99); err == nil {
		t.Error("estimate below n accepted")
	}
}

func TestStringIsInformative(t *testing.T) {
	p := mustNew(t, 0.05, 4, 0.45, 1000)
	s := p.String()
	if len(s) == 0 {
		t.Error("empty String()")
	}
}

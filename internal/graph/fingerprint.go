package graph

import (
	"fmt"
	"hash/fnv"

	"nearspan/internal/rng"
)

// Fingerprint returns the edge count and the FNV-1a hash of the
// canonical (u, v ascending) edge list — the bit-identity witness used
// by the golden-spanner fixtures and reported by the build service, so
// a spanner built anywhere (any mode, any engine, any daemon) can be
// compared for exact equality by exchanging 16 hex characters instead
// of edge lists.
func Fingerprint(g *Graph) (m int, hash string) {
	h := fnv.New64a()
	buf := make([]byte, 8)
	g.Edges(func(u, v int) {
		writeEdge(h, buf, u, v)
	})
	return g.M(), fmt.Sprintf("%016x", h.Sum64())
}

// FingerprintSampled is the scale-regime fingerprint: it hashes only the
// edges incident to a deterministic sample of min(samples, n) vertices,
// in the same canonical (u, v ascending) order Fingerprint uses. Two
// graphs with equal sampled fingerprints (same samples, same seed) agree
// on every edge touching the sample — a witness sized O(sample volume)
// instead of O(m), for graphs too large for the full golden machinery.
//
// The sample is the first min(samples, n) entries of the seeded
// Fisher–Yates permutation of [0, n), so it is a pure function of
// (n, samples, seed): independent builders compare fingerprints without
// exchanging the sample. When samples >= n every vertex is sampled and
// the result equals Fingerprint exactly (tested), so the sampled mode
// degrades to the full witness rather than to a different hash.
func FingerprintSampled(g *Graph, samples int, seed uint64) (m int, hash string) {
	n := g.N()
	if samples > n {
		samples = n
	}
	if samples < 0 {
		samples = 0
	}
	perm := rng.New(seed).Perm(n)
	sampled := make([]bool, n)
	for _, v := range perm[:samples] {
		sampled[v] = true
	}
	h := fnv.New64a()
	buf := make([]byte, 8)
	g.Edges(func(u, v int) {
		if sampled[u] || sampled[v] {
			writeEdge(h, buf, u, v)
			m++
		}
	})
	return m, fmt.Sprintf("%016x", h.Sum64())
}

func writeEdge(h interface{ Write([]byte) (int, error) }, buf []byte, u, v int) {
	buf[0] = byte(u)
	buf[1] = byte(u >> 8)
	buf[2] = byte(u >> 16)
	buf[3] = byte(u >> 24)
	buf[4] = byte(v)
	buf[5] = byte(v >> 8)
	buf[6] = byte(v >> 16)
	buf[7] = byte(v >> 24)
	h.Write(buf)
}

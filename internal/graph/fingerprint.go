package graph

import (
	"fmt"
	"hash/fnv"
)

// Fingerprint returns the edge count and the FNV-1a hash of the
// canonical (u, v ascending) edge list — the bit-identity witness used
// by the golden-spanner fixtures and reported by the build service, so
// a spanner built anywhere (any mode, any engine, any daemon) can be
// compared for exact equality by exchanging 16 hex characters instead
// of edge lists.
func Fingerprint(g *Graph) (m int, hash string) {
	h := fnv.New64a()
	buf := make([]byte, 8)
	g.Edges(func(u, v int) {
		buf[0] = byte(u)
		buf[1] = byte(u >> 8)
		buf[2] = byte(u >> 16)
		buf[3] = byte(u >> 24)
		buf[4] = byte(v)
		buf[5] = byte(v >> 8)
		buf[6] = byte(v >> 16)
		buf[7] = byte(v >> 24)
		h.Write(buf)
	})
	return g.M(), fmt.Sprintf("%016x", h.Sum64())
}

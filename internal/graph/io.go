package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in the standard whitespace-separated
// edge-list format: a header line "n m", then one "u v" line per edge
// with u < v. The format round-trips through ReadEdgeList.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.n, g.m); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v int) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadEdgeList parses the edge-list format written by WriteEdgeList.
// Lines starting with '#' and blank lines are ignored; the first
// non-comment line must be the "n m" header. Duplicate edges, self
// loops, and out-of-range endpoints are rejected with the offending
// line number.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lineNo := 0
	var b *Builder
	wantEdges := -1
	edges := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want two integers, got %q", lineNo, line)
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		c, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if b == nil {
			if a < 0 || c < 0 {
				return nil, fmt.Errorf("graph: line %d: negative header values", lineNo)
			}
			b = NewBuilder(a)
			wantEdges = c
			continue
		}
		if err := b.AddEdge(a, c); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		edges++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	if wantEdges >= 0 && edges != wantEdges {
		return nil, fmt.Errorf("graph: header claims %d edges, found %d", wantEdges, edges)
	}
	return b.Build(), nil
}

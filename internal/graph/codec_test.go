package graph

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

func codecTestGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	rnd := rand.New(rand.NewSource(41))
	b := NewBuilder(64)
	for i := 0; i < 200; i++ {
		u, v := rnd.Intn(64), rnd.Intn(64)
		if u == v || b.HasEdge(u, v) {
			continue
		}
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	path := NewBuilder(9)
	for i := 0; i < 8; i++ {
		path.AddEdge(i, i+1)
	}
	return map[string]*Graph{
		"empty":    NewBuilder(0).Build(),
		"isolated": NewBuilder(5).Build(),
		"path":     path.Build(),
		"random":   b.Build(),
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for name, g := range codecTestGraphs(t) {
		var buf bytes.Buffer
		if err := g.EncodeBinary(&buf); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if int64(buf.Len()) != g.EncodedSize() {
			t.Errorf("%s: encoded %d bytes, EncodedSize says %d", name, buf.Len(), g.EncodedSize())
		}
		g2, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if g2.N() != g.N() || g2.M() != g.M() || g2.MaxDegree() != g.MaxDegree() {
			t.Fatalf("%s: decoded (n=%d m=%d deg=%d), want (n=%d m=%d deg=%d)",
				name, g2.N(), g2.M(), g2.MaxDegree(), g.N(), g.M(), g.MaxDegree())
		}
		_, fp := Fingerprint(g)
		_, fp2 := Fingerprint(g2)
		if fp != fp2 {
			t.Errorf("%s: fingerprint drifted through the codec: %s vs %s", name, fp, fp2)
		}
		// Bit-identical re-encode: the codec is deterministic.
		var buf2 bytes.Buffer
		if err := g2.EncodeBinary(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Errorf("%s: re-encoded bytes differ from the original encoding", name)
		}
	}
}

// Every truncation of a valid encoding must error cleanly, and every
// single-byte tampering must either error or leave the structural
// invariants intact (flips confined to adjacency values can decode as a
// different-but-valid graph; the snapshot layer's checksum catches
// those).
func TestCodecTruncationAndTamper(t *testing.T) {
	g := codecTestGraphs(t)["random"]
	var buf bytes.Buffer
	if err := g.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := DecodeBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		tampered := append([]byte(nil), full...)
		i := rnd.Intn(len(tampered))
		tampered[i] ^= 1 << rnd.Intn(8)
		g2, err := DecodeBinary(bytes.NewReader(tampered))
		if err != nil {
			continue
		}
		// A surviving decode must still be structurally sound.
		for v := 0; v < g2.N(); v++ {
			row := g2.Neighbors(v)
			for k, w := range row {
				if int(w) == v || int(w) >= g2.N() || w < 0 {
					t.Fatalf("tamper at byte %d decoded an invalid row for vertex %d", i, v)
				}
				if k > 0 && row[k-1] >= w {
					t.Fatalf("tamper at byte %d decoded an unsorted row for vertex %d", i, v)
				}
			}
		}
	}
}

func TestCodecRejectsImplausibleHeader(t *testing.T) {
	var buf bytes.Buffer
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], 1<<60) // absurd n
	binary.LittleEndian.PutUint64(hdr[8:16], 4)
	buf.Write(hdr[:])
	if _, err := DecodeBinary(&buf); err == nil {
		t.Fatal("implausible header decoded without error")
	}
}

package graph

import (
	"testing"
)

// Exercise the sorted-run machinery well past the buffer limit:
// duplicates must be rejected whether the original copy sits in the
// unsorted buffer, a small run, or a run that has been merged several
// times, and the built graph must contain exactly the accepted edges.
func TestBuilderDedupAcrossRunBoundaries(t *testing.T) {
	const n = 100
	b := NewBuilder(n)
	type edge struct{ u, v int }
	var added []edge
	// ~2000 edges in a scattered (non-sorted) insertion order: enough
	// for several flushes and run merges.
	for step := 1; step <= 45; step++ {
		for u := 0; u < n; u++ {
			v := (u + step) % n
			if u < v {
				if err := b.AddEdge(u, v); err != nil {
					t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
				}
				added = append(added, edge{u, v})
			}
		}
	}
	if b.NumEdges() != len(added) {
		t.Fatalf("NumEdges=%d, added %d", b.NumEdges(), len(added))
	}
	// Every added edge is a duplicate now, in both orientations.
	for _, e := range []edge{added[0], added[len(added)/2], added[len(added)-1]} {
		if err := b.AddEdge(e.u, e.v); err == nil {
			t.Errorf("duplicate {%d,%d} accepted", e.u, e.v)
		}
		if err := b.AddEdge(e.v, e.u); err == nil {
			t.Errorf("reversed duplicate {%d,%d} accepted", e.v, e.u)
		}
		if !b.HasEdge(e.u, e.v) || !b.HasEdge(e.v, e.u) {
			t.Errorf("HasEdge(%d,%d) false after add", e.u, e.v)
		}
	}
	// {0,99} only arises as (u=99, v=0), which the u<v filter skipped.
	if b.HasEdge(0, 99) {
		t.Error("HasEdge(0,99) true for never-added edge")
	}
	g := b.Build()
	if g.M() != len(added) {
		t.Fatalf("built graph has %d edges, want %d", g.M(), len(added))
	}
	for _, e := range added {
		if !g.HasEdge(e.u, e.v) {
			t.Fatalf("built graph missing {%d,%d}", e.u, e.v)
		}
	}
	// The builder stays usable after Build.
	if err := b.AddEdge(0, 99); err != nil {
		t.Errorf("post-Build AddEdge failed: %v", err)
	}
	if !b.HasEdge(0, 99) {
		t.Error("post-Build add not visible")
	}
}

// Package graph provides the unweighted undirected graph substrate used by
// every algorithm in this repository: a mutable edge-list builder, an
// immutable CSR (compressed sparse row) view for fast traversal, BFS-based
// exact distance computation, and structural queries (connectivity,
// diameter, degeneracy).
//
// Vertices are identified by integers 0..n-1, matching the paper's
// assumption that IDs lie in [n]. Graphs are simple: self-loops and
// parallel edges are rejected by the builder.
package graph

import (
	"fmt"
	"iter"
	"slices"
)

// Builder accumulates edges and produces an immutable Graph. The zero
// value is unusable; construct with NewBuilder.
//
// Duplicate detection is sort-based rather than hash-based: edges live
// in a short unsorted buffer plus a stack of sorted runs of roughly
// geometric sizes (the classic logarithmic method). Membership is a
// linear scan of the small buffer plus one binary search per run
// (O(log² m)), and runs are merged as the buffer flushes, for O(m log m)
// total build work. Compared to a map[[2]int32]bool seen-set this keeps
// peak memory at a few compact edge arrays — on million-edge generated
// workloads the dominant builder cost used to be the hash table.
type Builder struct {
	n    int
	m    int          // total edges added
	runs [][][2]int32 // sorted, duplicate-free runs; sizes shrink left to right
	buf  [][2]int32   // recent edges, unsorted, at most builderBufLimit

	// hi[i] is the largest key in runs[i] — the run directory. While the
	// runs' key ranges are pairwise disjoint and ascending (disjoint),
	// contains binary-searches the directory for the single run that can
	// hold a key instead of probing every run. Generators emit edges in
	// ascending order, which used to be the adversarial case: every flush
	// appended a run whose range sat above all earlier ones, so each
	// AddEdge paid one binary search per run for runs that could not
	// possibly contain the key. Out-of-order insertions break the
	// invariant (disjoint goes false) and probing falls back to scanning
	// the runs whose [lo, hi] range covers the key.
	lo, hi   [][2]int32
	disjoint bool
}

// builderBufLimit bounds the unsorted tail scanned linearly on every
// duplicate check; beyond it the buffer is sorted into a run.
const builderBufLimit = 256

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: n, disjoint: true}
}

// AddEdge inserts the undirected edge {u, v}. It returns an error if the
// edge is a self-loop, out of range, or already present.
func (b *Builder) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
	}
	key := normEdge(int32(u), int32(v))
	if b.contains(key) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	b.buf = append(b.buf, key)
	b.m++
	if len(b.buf) >= builderBufLimit {
		b.flush()
	}
	return nil
}

// HasEdge reports whether {u, v} has been added.
func (b *Builder) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= b.n || v >= b.n || u == v {
		return false
	}
	return b.contains(normEdge(int32(u), int32(v)))
}

func (b *Builder) contains(key [2]int32) bool {
	if slices.Contains(b.buf, key) {
		return true
	}
	if b.disjoint {
		// One binary search over the directory of run maxima finds the
		// only run whose range can hold the key.
		i, _ := slices.BinarySearchFunc(b.hi, key, cmpEdge)
		if i >= len(b.runs) || edgeLess(key, b.lo[i]) {
			return false
		}
		_, ok := slices.BinarySearchFunc(b.runs[i], key, cmpEdge)
		return ok
	}
	for i, run := range b.runs {
		if edgeLess(key, b.lo[i]) || edgeLess(b.hi[i], key) {
			continue
		}
		if _, ok := slices.BinarySearchFunc(run, key, cmpEdge); ok {
			return true
		}
	}
	return false
}

// flush turns the buffer into a sorted run and restores the geometric
// run-size invariant by merging the smallest runs. AddEdge already
// rejected duplicates, so merges need no dedupe pass. The run directory
// (lo/hi) tracks each run's key range; merging adjacent stack entries
// preserves the disjoint-and-ascending invariant when it held before.
func (b *Builder) flush() {
	if len(b.buf) == 0 {
		return
	}
	run := b.buf
	slices.SortFunc(run, cmpEdge)
	b.buf = make([][2]int32, 0, builderBufLimit)
	if n := len(b.runs); n > 0 && !edgeLess(b.hi[n-1], run[0]) {
		b.disjoint = false
	}
	b.runs = append(b.runs, run)
	b.lo = append(b.lo, run[0])
	b.hi = append(b.hi, run[len(run)-1])
	for len(b.runs) >= 2 {
		a, c := b.runs[len(b.runs)-2], b.runs[len(b.runs)-1]
		if len(a) > 2*len(c) {
			break
		}
		b.runs = b.runs[:len(b.runs)-2]
		b.runs = append(b.runs, mergeRuns(a, c))
		merged := b.runs[len(b.runs)-1]
		b.lo = b.lo[:len(b.lo)-1]
		b.hi = b.hi[:len(b.hi)-1]
		b.lo[len(b.lo)-1] = merged[0]
		b.hi[len(b.hi)-1] = merged[len(merged)-1]
	}
}

func mergeRuns(a, c [][2]int32) [][2]int32 {
	out := make([][2]int32, 0, len(a)+len(c))
	i, j := 0, 0
	for i < len(a) && j < len(c) {
		if edgeLess(a[i], c[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, c[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, c[j:]...)
}

func edgeLess(a, c [2]int32) bool {
	if a[0] != c[0] {
		return a[0] < c[0]
	}
	return a[1] < c[1]
}

func cmpEdge(a, c [2]int32) int {
	if a[0] != c[0] {
		return int(a[0]) - int(c[0])
	}
	return int(a[1]) - int(c[1])
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return b.m }

// Build freezes the builder into an immutable Graph. The builder remains
// usable afterwards (Build copies).
func (b *Builder) Build() *Graph {
	edges := make([][2]int32, 0, b.m)
	for _, run := range b.runs {
		edges = append(edges, run...)
	}
	edges = append(edges, b.buf...)
	return fromEdges(b.n, edges)
}

func normEdge(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

// Graph is an immutable simple undirected graph in CSR form.
type Graph struct {
	n      int
	m      int
	offs   []int32 // len n+1; adj[offs[v]:offs[v+1]] are v's neighbors
	adj    []int32 // sorted within each vertex's slice
	degMax int
}

// fromEdges builds the CSR arrays from a deduplicated edge list.
func fromEdges(n int, edges [][2]int32) *Graph {
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	offs := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offs[v+1] = offs[v] + deg[v]
	}
	adj := make([]int32, 2*len(edges))
	fill := make([]int32, n)
	copy(fill, offs[:n])
	for _, e := range edges {
		u, v := e[0], e[1]
		adj[fill[u]] = v
		fill[u]++
		adj[fill[v]] = u
		fill[v]++
	}
	degMax := 0
	for v := 0; v < n; v++ {
		lo, hi := offs[v], offs[v+1]
		slices.Sort(adj[lo:hi])
		if d := int(hi - lo); d > degMax {
			degMax = d
		}
	}
	return &Graph{n: n, m: len(edges), offs: offs, adj: adj, degMax: degMax}
}

// FromSortedEdgeSeq builds a CSR graph directly from a re-iterable
// stream of exactly m deduplicated edges, each normalized u < v and
// yielded in ascending (u, v) order. This is the emission path of
// edgeset.Set: because edges arrive sorted by the smaller endpoint, each
// vertex w receives first its smaller neighbors (from buckets a < w, in
// ascending a) and then its larger neighbors (from bucket w, in
// ascending v) — every adjacency list fills already sorted, so unlike
// Builder.Build no per-vertex sort and no duplicate probe is needed.
//
// The caller guarantees order, dedup, and range validity; violations
// corrupt the adjacency structure rather than erroring. seq must yield
// the same edges on both passes (degree count, then fill).
func FromSortedEdgeSeq(n, m int, seq iter.Seq2[int32, int32]) *Graph {
	offs := make([]int32, n+1)
	for u, v := range seq {
		offs[u+1]++
		offs[v+1]++
	}
	for v := 0; v < n; v++ {
		offs[v+1] += offs[v]
	}
	adj := make([]int32, 2*m)
	fill := make([]int32, n)
	copy(fill, offs[:n])
	for u, v := range seq {
		adj[fill[u]] = v
		fill[u]++
		adj[fill[v]] = u
		fill[v]++
	}
	degMax := 0
	for v := 0; v < n; v++ {
		if d := int(offs[v+1] - offs[v]); d > degMax {
			degMax = d
		}
	}
	return &Graph{n: n, m: m, offs: offs, adj: adj, degMax: degMax}
}

// FromDegreeEdgeSeq builds a CSR graph from a single pass over a sorted
// deduplicated edge stream whose per-vertex degrees are already known.
// It is FromSortedEdgeSeq minus the counting pass: streaming generators
// compute exact degrees during their one structural sweep, so the CSR
// arrays are allocated once, at exactly the right size, and the stream
// is replayed exactly once to fill them. The caller guarantees the same
// stream contract as FromSortedEdgeSeq (normalized u < v, ascending,
// in-range, duplicate-free) and that deg matches the stream; a degree
// mismatch is detected (the fill cursor diverges from the offsets) and
// panics rather than returning a corrupt graph.
func FromDegreeEdgeSeq(deg []int32, seq iter.Seq2[int32, int32]) *Graph {
	n := len(deg)
	offs := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offs[v+1] = offs[v] + deg[v]
	}
	adj := make([]int32, offs[n])
	fill := make([]int32, n)
	copy(fill, offs[:n])
	m := 0
	for u, v := range seq {
		adj[fill[u]] = v
		fill[u]++
		adj[fill[v]] = u
		fill[v]++
		m++
	}
	degMax := 0
	for v := 0; v < n; v++ {
		if fill[v] != offs[v+1] {
			panic(fmt.Sprintf("graph: FromDegreeEdgeSeq degree mismatch at vertex %d: declared %d, stream filled %d",
				v, deg[v], fill[v]-offs[v]))
		}
		if d := int(offs[v+1] - offs[v]); d > degMax {
			degMax = d
		}
	}
	return &Graph{n: n, m: m, offs: offs, adj: adj, degMax: degMax}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	return int(g.offs[v+1] - g.offs[v])
}

// MaxDegree returns the maximum degree over all vertices.
func (g *Graph) MaxDegree() int { return g.degMax }

// Neighbors returns v's neighbor slice, sorted ascending. The caller must
// not modify it; copy first if mutation is needed (see the style guide's
// "copy slices at boundaries" — this accessor is documented read-only and
// is on every hot path, so it intentionally exposes the backing array).
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offs[v]:g.offs[v+1]]
}

// Neighbor returns v's port-th neighbor (ports index the sorted adjacency
// list; this is the "port numbering" used by the CONGEST simulator).
func (g *Graph) Neighbor(v, port int) int {
	return int(g.adj[int(g.offs[v])+port])
}

// AdjAt returns the i-th entry of the flat adjacency array, where i is a
// global directed-edge index: entry Offset(v)+p is Neighbor(v, p). The
// CONGEST simulator's slot layout is exactly this indexing, so exposing
// the flat array lets it derive a slot's destination vertex without a
// per-slot table of its own (8 bytes per directed edge it no longer
// retains at scale).
func (g *Graph) AdjAt(i int) int32 { return g.adj[i] }

// Offset returns the index into the flat adjacency array where v's
// neighbors begin; Offset(n) is the array length (2m). See AdjAt.
func (g *Graph) Offset(v int) int32 { return g.offs[v] }

// PortOf returns the port p such that Neighbor(v, p) == u, or -1 if u is
// not adjacent to v.
func (g *Graph) PortOf(v, u int) int {
	s := g.Neighbors(v)
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(s[mid]) < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && int(s[lo]) == u {
		return lo
	}
	return -1
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	return g.PortOf(u, v) >= 0
}

// Edges calls fn once per undirected edge with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// EdgeList returns all edges as (u, v) pairs with u < v, in vertex order.
func (g *Graph) EdgeList() [][2]int32 {
	out := make([][2]int32, 0, g.m)
	g.Edges(func(u, v int) { out = append(out, [2]int32{int32(u), int32(v)}) })
	return out
}

// Subgraph reports whether h's edge set is a subset of g's and they have
// the same vertex count.
func Subgraph(h, g *Graph) bool {
	if h.N() != g.N() {
		return false
	}
	ok := true
	h.Edges(func(u, v int) {
		if !g.HasEdge(u, v) {
			ok = false
		}
	})
	return ok
}

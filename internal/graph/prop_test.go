package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a random connected graph from a quick-check seed.
func randomGraph(r *rand.Rand, maxN int) *Graph {
	n := 2 + r.Intn(maxN-1)
	b := NewBuilder(n)
	// Random spanning tree for connectivity.
	for v := 1; v < n; v++ {
		if err := b.AddEdge(v, r.Intn(v)); err != nil {
			panic(err)
		}
	}
	extra := r.Intn(2 * n)
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !b.HasEdge(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return b.Build()
}

// Distances form a metric: symmetric and triangle-inequality-consistent.
func TestPropDistanceMetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 40)
		d := g.AllPairs()
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if d[u][v] != d[v][u] {
					return false
				}
				if u == v && d[u][v] != 0 {
					return false
				}
			}
		}
		// Spot-check triangle inequality on random triples.
		for i := 0; i < 50; i++ {
			a, bb, c := r.Intn(g.N()), r.Intn(g.N()), r.Intn(g.N())
			if d[a][c] > d[a][bb]+d[bb][c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Edge relaxation: adjacent vertices differ by at most 1 in BFS distance.
func TestPropBFSLipschitz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 50)
		src := r.Intn(g.N())
		dist := g.BFS(src)
		ok := true
		g.Edges(func(u, v int) {
			du, dv := dist[u], dist[v]
			if du > dv+1 || dv > du+1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// MultiBFS equals the pointwise minimum of per-source BFS distances, and
// parents always step one layer down.
func TestPropMultiBFSMinimum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 40)
		k := 1 + r.Intn(4)
		srcs := make([]int, k)
		for i := range srcs {
			srcs[i] = r.Intn(g.N())
		}
		dist, root, parent := g.MultiBFS(srcs, -1)
		for v := 0; v < g.N(); v++ {
			want := Infinity
			for _, s := range srcs {
				if d := g.BFS(s)[v]; d < want {
					want = d
				}
			}
			if dist[v] != want {
				return false
			}
			if parent[v] >= 0 {
				if dist[parent[v]] != dist[v]-1 {
					return false
				}
				if root[parent[v]] != root[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Port numbering is a bijection consistent with the adjacency lists.
func TestPropPortBijection(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 40)
		for v := 0; v < g.N(); v++ {
			seen := make(map[int]bool)
			for p := 0; p < g.Degree(v); p++ {
				u := g.Neighbor(v, p)
				if seen[u] || g.PortOf(v, u) != p {
					return false
				}
				seen[u] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// BallSize is monotone in the radius and hits n at the eccentricity.
func TestPropBallMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 30)
		v := r.Intn(g.N())
		prev := 0
		for rad := int32(0); rad <= g.Eccentricity(v); rad++ {
			s := g.BallSize(v, rad)
			if s < prev {
				return false
			}
			prev = s
		}
		return prev == g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

package graph

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The binary CSR codec is the persistence form of a Graph: spanner
// snapshots serialize the exact offs/adj arrays, so a decoded graph is
// bit-identical to the encoded one — same port numbering, same
// fingerprint — without re-sorting or re-deduplicating anything.
//
// Layout (all little-endian):
//
//	uint64 n, uint64 m
//	int32 offs[n+1]
//	int32 adj[2m]
//
// The codec carries no checksum of its own; callers that persist it
// (internal/store snapshots) wrap it in a checksummed envelope.
// DecodeBinary still validates the structure fully — monotone offsets,
// in-range strictly-ascending adjacency rows, no self-loops — so a
// tampered payload that slips past an outer checksum decodes to an
// error, never to a Graph that corrupts a traversal.

// codecMaxN bounds the vertex and edge counts DecodeBinary accepts,
// comfortably above every workload in this repository while keeping a
// corrupt header from demanding an absurd allocation up front (reads
// are chunked, so memory grows with actual input, not the claim).
const codecMaxN = 1 << 34

// EncodeBinary writes the graph in the deterministic binary CSR layout
// above. The same graph always produces the same bytes.
func (g *Graph) EncodeBinary(w io.Writer) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.m))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeInt32s(w, g.offs); err != nil {
		return err
	}
	return writeInt32s(w, g.adj)
}

// EncodedSize returns the exact byte length EncodeBinary will write.
func (g *Graph) EncodedSize() int64 {
	return 16 + 4*int64(len(g.offs)) + 4*int64(len(g.adj))
}

// DecodeBinary parses the layout written by EncodeBinary and validates
// every structural invariant a Graph promises. Malformed or truncated
// input returns an error; it never panics and never returns a graph
// whose accessors could misbehave.
func DecodeBinary(r io.Reader) (*Graph, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: decode header: %w", err)
	}
	n64 := binary.LittleEndian.Uint64(hdr[0:8])
	m64 := binary.LittleEndian.Uint64(hdr[8:16])
	if n64 > codecMaxN || m64 > codecMaxN {
		return nil, fmt.Errorf("graph: decode: implausible sizes n=%d m=%d", n64, m64)
	}
	n, m := int(n64), int(m64)
	offs, err := readInt32s(r, n+1)
	if err != nil {
		return nil, fmt.Errorf("graph: decode offsets: %w", err)
	}
	if offs[0] != 0 {
		return nil, fmt.Errorf("graph: decode: offs[0] = %d, want 0", offs[0])
	}
	for v := 0; v < n; v++ {
		if offs[v+1] < offs[v] {
			return nil, fmt.Errorf("graph: decode: offsets not monotone at vertex %d", v)
		}
	}
	if int(offs[n]) != 2*m {
		return nil, fmt.Errorf("graph: decode: offs[n] = %d, want 2m = %d", offs[n], 2*m)
	}
	adj, err := readInt32s(r, 2*m)
	if err != nil {
		return nil, fmt.Errorf("graph: decode adjacency: %w", err)
	}
	degMax := 0
	for v := 0; v < n; v++ {
		row := adj[offs[v]:offs[v+1]]
		prev := int32(-1)
		for _, w := range row {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: decode: neighbor %d of vertex %d out of range [0,%d)", w, v, n)
			}
			if int(w) == v {
				return nil, fmt.Errorf("graph: decode: self-loop on vertex %d", v)
			}
			if w <= prev {
				return nil, fmt.Errorf("graph: decode: adjacency of vertex %d not strictly ascending", v)
			}
			prev = w
		}
		if d := len(row); d > degMax {
			degMax = d
		}
	}
	return &Graph{n: n, m: m, offs: offs, adj: adj, degMax: degMax}, nil
}

const codecChunk = 8192 // int32s per read/write syscall

func writeInt32s(w io.Writer, s []int32) error {
	buf := make([]byte, 4*codecChunk)
	for len(s) > 0 {
		k := min(len(s), codecChunk)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(s[i]))
		}
		if _, err := w.Write(buf[:4*k]); err != nil {
			return err
		}
		s = s[k:]
	}
	return nil
}

// readInt32s reads exactly count int32s in chunks, so the allocation
// grows with the bytes actually present — a corrupt header claiming a
// huge count fails at the first short read, not with a huge make().
func readInt32s(r io.Reader, count int) ([]int32, error) {
	out := make([]int32, 0, min(count, codecChunk))
	buf := make([]byte, 4*codecChunk)
	for len(out) < count {
		k := min(count-len(out), codecChunk)
		b := buf[:4*k]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := 0; i < k; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(b[4*i:])))
		}
	}
	return out, nil
}

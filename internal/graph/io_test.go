package graph

import (
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := mustBuild(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}, {1, 4}})
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d", back.N(), back.M(), g.N(), g.M())
	}
	g.Edges(func(u, v int) {
		if !back.HasEdge(u, v) {
			t.Errorf("edge %d-%d lost", u, v)
		}
	})
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# a graph\n\n3 2\n# edges follow\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "x y\n"},
		{"three fields", "3 1\n0 1 2\n"},
		{"self loop", "3 1\n1 1\n"},
		{"out of range", "3 1\n0 7\n"},
		{"duplicate", "3 2\n0 1\n1 0\n"},
		{"edge count mismatch", "3 5\n0 1\n"},
		{"negative header", "-1 0\n"},
		{"non-integer edge", "3 1\n0 z\n"},
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.in)
		}
	}
}

func TestWriteEdgeListEmptyGraph(t *testing.T) {
	g := NewBuilder(4).Build()
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 4 || back.M() != 0 {
		t.Errorf("n=%d m=%d", back.N(), back.M())
	}
}

package graph

import "testing"

// degSeq builds the (deg, seq) pair FromDegreeEdgeSeq expects from a
// literal edge list (already normalized u < v, ascending).
func degSeq(n int, edges [][2]int32) ([]int32, func(func(int32, int32) bool)) {
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	return deg, func(yield func(int32, int32) bool) {
		for _, e := range edges {
			if !yield(e[0], e[1]) {
				return
			}
		}
	}
}

func TestFromDegreeEdgeSeq(t *testing.T) {
	edges := [][2]int32{{0, 1}, {0, 3}, {1, 2}, {2, 3}}
	deg, seq := degSeq(4, edges)
	g := FromDegreeEdgeSeq(deg, seq)
	want := FromSortedEdgeSeq(4, len(edges), seq)
	gm, gh := Fingerprint(g)
	wm, wh := Fingerprint(want)
	if gm != wm || gh != wh {
		t.Fatalf("FromDegreeEdgeSeq fingerprint (%d, %s) != FromSortedEdgeSeq (%d, %s)", gm, gh, wm, wh)
	}
	if g.degMax != 2 {
		t.Fatalf("DegMax = %d, want 2", g.degMax)
	}
	for i := 0; i < 2*len(edges); i++ {
		if g.AdjAt(i) != want.AdjAt(i) {
			t.Fatalf("AdjAt(%d) = %d, want %d", i, g.AdjAt(i), want.AdjAt(i))
		}
	}
	for v := 0; v <= 4; v++ {
		if g.Offset(v) != want.Offset(v) {
			t.Fatalf("Offset(%d) = %d, want %d", v, g.Offset(v), want.Offset(v))
		}
	}
}

func TestFromDegreeEdgeSeqEmpty(t *testing.T) {
	deg, seq := degSeq(3, nil)
	g := FromDegreeEdgeSeq(deg, seq)
	if g.N() != 3 || g.M() != 0 || g.degMax != 0 {
		t.Fatalf("empty graph: n=%d m=%d degMax=%d", g.N(), g.M(), g.degMax)
	}
}

func TestFromDegreeEdgeSeqDegreeMismatchPanics(t *testing.T) {
	deg, _ := degSeq(3, [][2]int32{{0, 1}, {1, 2}})
	// The stream delivers one edge fewer than the degrees promise.
	short := func(yield func(int32, int32) bool) { yield(0, 1) }
	defer func() {
		if recover() == nil {
			t.Fatal("FromDegreeEdgeSeq did not panic on degree/stream mismatch")
		}
	}()
	FromDegreeEdgeSeq(deg, short)
}

// TestFingerprintSampledEquivalence: with samples >= n, the sampled
// fingerprint must equal the full one bit for bit — the sampled mode
// degrades to the full witness, not to a different hash.
func TestFingerprintSampledEquivalence(t *testing.T) {
	edges := [][2]int32{{0, 1}, {0, 2}, {1, 4}, {2, 3}, {3, 4}, {4, 5}}
	deg, seq := degSeq(6, edges)
	g := FromDegreeEdgeSeq(deg, seq)
	fm, fh := Fingerprint(g)
	for _, samples := range []int{6, 7, 1000} {
		for _, seed := range []uint64{0, 1, 99} {
			sm, sh := FingerprintSampled(g, samples, seed)
			if sm != fm || sh != fh {
				t.Fatalf("samples=%d seed=%d: sampled (%d, %s) != full (%d, %s)",
					samples, seed, sm, sh, fm, fh)
			}
		}
	}
}

// TestFingerprintSampledPartial: a proper sample is deterministic for a
// fixed (samples, seed), covers a subset of the edges, and distinguishes
// graphs that differ on an edge incident to the sample.
func TestFingerprintSampledPartial(t *testing.T) {
	edges := [][2]int32{{0, 1}, {0, 2}, {1, 4}, {2, 3}, {3, 4}, {4, 5}}
	deg, seq := degSeq(6, edges)
	g := FromDegreeEdgeSeq(deg, seq)
	m1, h1 := FingerprintSampled(g, 2, 7)
	m2, h2 := FingerprintSampled(g, 2, 7)
	if m1 != m2 || h1 != h2 {
		t.Fatalf("sampled fingerprint not deterministic: (%d, %s) vs (%d, %s)", m1, h1, m2, h2)
	}
	if m1 <= 0 || m1 > len(edges) {
		t.Fatalf("sampled edge count %d out of range (0, %d]", m1, len(edges))
	}
	if m0, _ := FingerprintSampled(g, 0, 7); m0 != 0 {
		t.Fatalf("samples=0 touched %d edges, want 0", m0)
	}
	// Perturb one edge; since every vertex has degree >= 1 and the change
	// moves an endpoint, some seed's 2-vertex sample must notice. Use the
	// same (samples, seed) and check at least one seed distinguishes.
	edges2 := [][2]int32{{0, 1}, {0, 2}, {1, 4}, {2, 3}, {3, 4}, {3, 5}}
	deg2, seq2 := degSeq(6, edges2)
	g2 := FromDegreeEdgeSeq(deg2, seq2)
	distinguished := false
	for seed := uint64(0); seed < 8; seed++ {
		_, a := FingerprintSampled(g, 2, seed)
		_, b := FingerprintSampled(g2, 2, seed)
		if a != b {
			distinguished = true
			break
		}
	}
	if !distinguished {
		t.Fatal("no 2-vertex sample distinguished graphs differing on edge {4,5} vs {3,5}")
	}
}

// BenchmarkBuilderInsert measures AddEdge across insertion orders. The
// "sorted" order is the adversarial case for the old linear run probe:
// every flush produces a run disjoint from (and after) all previous
// runs, so runs accumulate without merging and each contains() walked
// all of them. The run directory binary-search makes it O(log runs).
func BenchmarkBuilderInsert(b *testing.B) {
	const n = 1 << 14
	orders := map[string]func(add func(u, v int)){
		"sorted": func(add func(u, v int)) {
			for u := 0; u < n; u++ {
				for s := 1; s <= 8; s++ {
					if u+s < n {
						add(u, u+s)
					}
				}
			}
		},
		"scattered": func(add func(u, v int)) {
			for s := 1; s <= 8; s++ {
				for u := 0; u < n; u++ {
					if u+s < n {
						add(u, u+s)
					}
				}
			}
		},
	}
	for name, order := range orders {
		b.Run(name, func(b *testing.B) {
			var edges int
			order(func(u, v int) { edges++ })
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bl := NewBuilder(n)
				order(func(u, v int) {
					if err := bl.AddEdge(u, v); err != nil {
						b.Fatalf("AddEdge(%d,%d): %v", u, v, err)
					}
				})
				if bl.NumEdges() != edges {
					b.Fatalf("NumEdges=%d, want %d", bl.NumEdges(), edges)
				}
			}
		})
	}
}

// TestBuilderAdversarialSorted pins the directory fast path: fully
// sorted insertion keeps runs disjoint, and duplicate probes against
// old runs must still be caught (via the directory search, not the
// fallback scan).
func TestBuilderAdversarialSorted(t *testing.T) {
	const n = 2000
	b := NewBuilder(n)
	for u := 0; u < n-1; u++ {
		if err := b.AddEdge(u, u+1); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", u, u+1, err)
		}
		if u%3 == 0 && u+2 < n {
			if err := b.AddEdge(u, u+2); err != nil {
				t.Fatalf("AddEdge(%d,%d): %v", u, u+2, err)
			}
		}
	}
	for _, probe := range [][2]int{{0, 1}, {999, 1000}, {n - 2, n - 1}, {3, 5}} {
		if err := b.AddEdge(probe[0], probe[1]); err == nil {
			t.Fatalf("duplicate (%d,%d) accepted", probe[0], probe[1])
		}
	}
	g := b.Build()
	want := n - 1
	for u := 0; u < n-1; u++ {
		if u%3 == 0 && u+2 < n {
			want++
		}
	}
	if g.M() != want {
		t.Fatalf("built %d edges, want %d", g.M(), want)
	}
	for u := 0; u+2 < n; u += 3 {
		if !g.HasEdge(u, u+2) {
			t.Fatalf("missing edge {%d,%d}", u, u+2)
		}
	}
}

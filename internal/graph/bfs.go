package graph

// Infinity is the distance reported for unreachable vertices.
const Infinity = int32(1<<31 - 1)

// BFS computes single-source shortest-path distances from src. Unreachable
// vertices get Infinity.
func (g *Graph) BFS(src int) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = Infinity
	}
	queue := make([]int32, 0, g.n)
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] == Infinity {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// BFSBounded computes distances from src, exploring only up to depth
// maxDepth; vertices farther than maxDepth get Infinity.
func (g *Graph) BFSBounded(src int, maxDepth int32) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = Infinity
	}
	queue := make([]int32, 0)
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		if dv == maxDepth {
			continue
		}
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] == Infinity {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// MultiBFS computes, for every vertex, the distance to the nearest source
// and that source's identity. Ties are broken toward the smallest source
// ID, and within a source toward the smallest parent ID, matching the
// deterministic adoption rule used by the distributed BFS-forest protocol,
// so this function doubles as its oracle.
//
// A negative maxDepth means unbounded.
//
// Returned slices: dist[v], root[v] (-1 if unreachable), parent[v] (-1 for
// sources and unreachable vertices).
func (g *Graph) MultiBFS(sources []int, maxDepth int32) (dist []int32, root, parent []int32) {
	dist = make([]int32, g.n)
	root = make([]int32, g.n)
	parent = make([]int32, g.n)
	for i := range dist {
		dist[i] = Infinity
		root[i] = -1
		parent[i] = -1
	}
	// Seed in ascending source-ID order so that the first adopter wins
	// ties by smallest root ID.
	srcs := append([]int(nil), sources...)
	sortInts(srcs)
	queue := make([]int32, 0, len(srcs))
	for _, s := range srcs {
		if dist[s] == 0 && root[s] >= 0 {
			continue // duplicate source
		}
		dist[s] = 0
		root[s] = int32(s)
		queue = append(queue, int32(s))
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		if dv == maxDepth && maxDepth >= 0 {
			continue
		}
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] == Infinity {
				dist[w] = dv + 1
				root[w] = root[v]
				parent[w] = v
				queue = append(queue, w)
			} else if dist[w] == dv+1 {
				// Same layer: prefer smaller root, then smaller parent.
				if root[v] < root[w] || (root[v] == root[w] && v < parent[w]) {
					root[w] = root[v]
					parent[w] = v
				}
			}
		}
	}
	return dist, root, parent
}

// Distance returns the exact distance between u and v (Infinity if
// disconnected). It runs one BFS; use AllPairs for repeated queries on
// small graphs.
func (g *Graph) Distance(u, v int) int32 {
	return g.BFS(u)[v]
}

// AllPairs returns the full n×n distance matrix via n BFS runs. Intended
// for verification on small graphs (quadratic memory).
func (g *Graph) AllPairs() [][]int32 {
	d := make([][]int32, g.n)
	for v := 0; v < g.n; v++ {
		d[v] = g.BFS(v)
	}
	return d
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == Infinity {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum finite distance from v, or Infinity if
// some vertex is unreachable from v.
func (g *Graph) Eccentricity(v int) int32 {
	dist := g.BFS(v)
	ecc := int32(0)
	for _, d := range dist {
		if d == Infinity {
			return Infinity
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact diameter via n BFS runs (Infinity if
// disconnected). Quadratic; for verification-scale graphs.
func (g *Graph) Diameter() int32 {
	diam := int32(0)
	for v := 0; v < g.n; v++ {
		e := g.Eccentricity(v)
		if e == Infinity {
			return Infinity
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// ComponentCount returns the number of connected components.
func (g *Graph) ComponentCount() int {
	seen := make([]bool, g.n)
	count := 0
	queue := make([]int32, 0)
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		count++
		seen[s] = true
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Neighbors(int(v)) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return count
}

// BallSize returns |Γ^r(v)|: the number of vertices within distance r of
// v, including v itself.
func (g *Graph) BallSize(v int, r int32) int {
	dist := g.BFSBounded(v, r)
	count := 0
	for _, d := range dist {
		if d <= r {
			count++
		}
	}
	return count
}

func sortInts(xs []int) {
	// Insertion sort: source lists are small; avoids pulling in sort for
	// a hot internal helper... but clarity wins: delegate for larger n.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

package graph

import (
	"testing"
)

// mustBuild constructs a graph from an edge list, failing the test on error.
func mustBuild(t *testing.T, n int, edges [][2]int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", e[0], e[1], err)
		}
	}
	return b.Build()
}

func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	for _, e := range [][2]int{{-1, 0}, {0, 3}, {3, 0}, {0, -1}} {
		if err := b.AddEdge(e[0], e[1]); err == nil {
			t.Errorf("edge %v accepted", e)
		}
	}
}

func TestBuilderRejectsDuplicate(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0); err == nil {
		t.Error("duplicate edge (reversed) accepted")
	}
	if err := b.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestBuilderHasEdge(t *testing.T) {
	b := NewBuilder(4)
	_ = b.AddEdge(2, 3)
	if !b.HasEdge(3, 2) || !b.HasEdge(2, 3) {
		t.Error("HasEdge missed added edge")
	}
	if b.HasEdge(0, 1) {
		t.Error("HasEdge reported absent edge")
	}
	if b.HasEdge(2, 2) || b.HasEdge(-1, 0) {
		t.Error("HasEdge accepted invalid query")
	}
}

func TestCSRStructure(t *testing.T) {
	g := mustBuild(t, 5, [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {0, 4}})
	if g.N() != 5 || g.M() != 5 {
		t.Fatalf("N=%d M=%d, want 5 5", g.N(), g.M())
	}
	wantDeg := []int{3, 2, 2, 1, 2}
	for v, want := range wantDeg {
		if g.Degree(v) != want {
			t.Errorf("Degree(%d)=%d, want %d", v, g.Degree(v), want)
		}
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree=%d, want 3", g.MaxDegree())
	}
	// Neighbors are sorted.
	nb := g.Neighbors(0)
	want := []int32{1, 2, 4}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(0)=%v, want %v", nb, want)
		}
	}
}

func TestPortNumbering(t *testing.T) {
	g := mustBuild(t, 4, [][2]int{{1, 0}, {1, 2}, {1, 3}})
	for port := 0; port < g.Degree(1); port++ {
		u := g.Neighbor(1, port)
		if g.PortOf(1, u) != port {
			t.Errorf("PortOf(1,%d)=%d, want %d", u, g.PortOf(1, u), port)
		}
	}
	if g.PortOf(1, 1) != -1 {
		t.Error("PortOf to self should be -1")
	}
	if g.PortOf(0, 2) != -1 {
		t.Error("PortOf to non-neighbor should be -1")
	}
}

func TestHasEdge(t *testing.T) {
	g := mustBuild(t, 4, [][2]int{{0, 1}, {2, 3}})
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {2, 3, true},
		{0, 2, false}, {1, 3, false}, {0, 0, false}, {-1, 2, false}, {0, 4, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d)=%v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEdgesIteration(t *testing.T) {
	in := [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}}
	g := mustBuild(t, 5, in)
	got := g.EdgeList()
	if len(got) != len(in) {
		t.Fatalf("EdgeList has %d edges, want %d", len(got), len(in))
	}
	for _, e := range got {
		if e[0] >= e[1] {
			t.Errorf("edge %v not normalized u<v", e)
		}
	}
}

func TestBFSPath(t *testing.T) {
	g := pathGraph(t, 6)
	dist := g.BFS(0)
	for v := 0; v < 6; v++ {
		if dist[v] != int32(v) {
			t.Errorf("dist[%d]=%d, want %d", v, dist[v], v)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := mustBuild(t, 4, [][2]int{{0, 1}})
	dist := g.BFS(0)
	if dist[2] != Infinity || dist[3] != Infinity {
		t.Errorf("unreachable distances: %v", dist)
	}
}

func TestBFSBounded(t *testing.T) {
	g := pathGraph(t, 10)
	dist := g.BFSBounded(0, 3)
	for v := 0; v < 10; v++ {
		want := Infinity
		if v <= 3 {
			want = int32(v)
		}
		if dist[v] != want {
			t.Errorf("bounded dist[%d]=%d, want %d", v, dist[v], want)
		}
	}
}

func TestMultiBFSMatchesPerSourceBFS(t *testing.T) {
	g := mustBuild(t, 8, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}, {1, 5},
	})
	sources := []int{0, 4}
	dist, root, parent := g.MultiBFS(sources, -1)
	d0, d4 := g.BFS(0), g.BFS(4)
	for v := 0; v < 8; v++ {
		want := d0[v]
		if d4[v] < want {
			want = d4[v]
		}
		if dist[v] != want {
			t.Errorf("MultiBFS dist[%d]=%d, want %d", v, dist[v], want)
		}
		// Root must achieve the min distance; ties go to the smaller ID.
		if d0[v] == d4[v] {
			if root[v] != 0 {
				t.Errorf("tie at %d should resolve to root 0, got %d", v, root[v])
			}
		}
		if v != int(root[v]) && parent[v] >= 0 {
			if dist[parent[v]] != dist[v]-1 {
				t.Errorf("parent[%d]=%d not one layer up", v, parent[v])
			}
		}
	}
}

func TestMultiBFSDepthBound(t *testing.T) {
	g := pathGraph(t, 10)
	dist, root, _ := g.MultiBFS([]int{0}, 4)
	for v := 0; v < 10; v++ {
		if v <= 4 {
			if dist[v] != int32(v) || root[v] != 0 {
				t.Errorf("v=%d: dist=%d root=%d", v, dist[v], root[v])
			}
		} else if dist[v] != Infinity || root[v] != -1 {
			t.Errorf("v=%d beyond depth: dist=%d root=%d", v, dist[v], root[v])
		}
	}
}

func TestMultiBFSDuplicateSources(t *testing.T) {
	g := pathGraph(t, 4)
	dist, root, _ := g.MultiBFS([]int{2, 2}, -1)
	if dist[2] != 0 || root[2] != 2 {
		t.Errorf("duplicate sources mishandled: dist=%v root=%v", dist, root)
	}
}

func TestConnectedAndComponents(t *testing.T) {
	conn := pathGraph(t, 5)
	if !conn.Connected() || conn.ComponentCount() != 1 {
		t.Error("path graph should be connected")
	}
	disc := mustBuild(t, 5, [][2]int{{0, 1}, {2, 3}})
	if disc.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if got := disc.ComponentCount(); got != 3 {
		t.Errorf("ComponentCount=%d, want 3", got)
	}
	empty := NewBuilder(0).Build()
	if !empty.Connected() {
		t.Error("empty graph should be connected")
	}
}

func TestDiameterAndEccentricity(t *testing.T) {
	g := pathGraph(t, 7)
	if d := g.Diameter(); d != 6 {
		t.Errorf("Diameter=%d, want 6", d)
	}
	if e := g.Eccentricity(3); e != 3 {
		t.Errorf("Eccentricity(3)=%d, want 3", e)
	}
	disc := mustBuild(t, 3, [][2]int{{0, 1}})
	if disc.Diameter() != Infinity {
		t.Error("disconnected diameter should be Infinity")
	}
}

func TestAllPairsSymmetric(t *testing.T) {
	g := mustBuild(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {2, 4}, {4, 5}})
	d := g.AllPairs()
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			if d[u][v] != d[v][u] {
				t.Errorf("asymmetric distance d[%d][%d]=%d d[%d][%d]=%d",
					u, v, d[u][v], v, u, d[v][u])
			}
			if u == v && d[u][v] != 0 {
				t.Errorf("d[%d][%d]=%d, want 0", u, v, d[u][v])
			}
		}
	}
	// Triangle inequality.
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			for w := 0; w < 6; w++ {
				if d[u][v] > d[u][w]+d[w][v] {
					t.Errorf("triangle violation %d-%d-%d", u, w, v)
				}
			}
		}
	}
}

func TestBallSize(t *testing.T) {
	g := pathGraph(t, 9)
	if got := g.BallSize(4, 2); got != 5 {
		t.Errorf("BallSize(4,2)=%d, want 5", got)
	}
	if got := g.BallSize(0, 0); got != 1 {
		t.Errorf("BallSize(0,0)=%d, want 1", got)
	}
	if got := g.BallSize(0, 100); got != 9 {
		t.Errorf("BallSize(0,100)=%d, want 9", got)
	}
}

func TestSubgraph(t *testing.T) {
	g := mustBuild(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	h := mustBuild(t, 4, [][2]int{{0, 1}, {2, 3}})
	if !Subgraph(h, g) {
		t.Error("h should be a subgraph of g")
	}
	if Subgraph(g, h) {
		t.Error("g is not a subgraph of h")
	}
	other := mustBuild(t, 5, nil)
	if Subgraph(other, g) {
		t.Error("different vertex counts should not be subgraphs")
	}
}

func TestBuilderReusableAfterBuild(t *testing.T) {
	b := NewBuilder(3)
	_ = b.AddEdge(0, 1)
	g1 := b.Build()
	_ = b.AddEdge(1, 2)
	g2 := b.Build()
	if g1.M() != 1 || g2.M() != 2 {
		t.Errorf("builds share state: m1=%d m2=%d", g1.M(), g2.M())
	}
}

func TestEmptyAndSingletonGraphs(t *testing.T) {
	g0 := NewBuilder(0).Build()
	if g0.N() != 0 || g0.M() != 0 {
		t.Error("empty graph malformed")
	}
	g1 := NewBuilder(1).Build()
	if d := g1.BFS(0); d[0] != 0 {
		t.Error("singleton BFS wrong")
	}
	if g1.Diameter() != 0 {
		t.Error("singleton diameter should be 0")
	}
}

package cluster

import (
	"testing"

	"nearspan/internal/edgeset"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
)

// asg builds a dense Assignment from a literal old-center → new-center
// map, the test-friendly face of the columnar merge input.
func asg(n int, m map[int]int) *edgeset.Assignment {
	a := edgeset.NewAssignment(n)
	for k, v := range m {
		a.Set(k, int32(v))
	}
	return a
}

func TestSingletons(t *testing.T) {
	c := Singletons(5)
	if c.Len() != 5 {
		t.Fatalf("Len=%d", c.Len())
	}
	for v := 0; v < 5; v++ {
		if !c.IsCenter(v) {
			t.Errorf("vertex %d should be a center", v)
		}
		cl := c.ClusterOf(v)
		if cl.Center != v || len(cl.Members) != 1 {
			t.Errorf("cluster of %d malformed: %+v", v, cl)
		}
	}
	cs := c.Centers()
	for i, v := range cs {
		if v != i {
			t.Errorf("Centers()[%d]=%d", i, v)
		}
	}
}

func TestNewCollectionValidation(t *testing.T) {
	// Overlapping clusters rejected.
	_, err := NewCollection(4, []Cluster{
		{Center: 0, Members: []int32{0, 1}},
		{Center: 1, Members: []int32{1, 2}},
	})
	if err == nil {
		t.Error("overlap accepted")
	}
	// Center outside members rejected.
	_, err = NewCollection(4, []Cluster{{Center: 3, Members: []int32{0, 1}}})
	if err == nil {
		t.Error("center not in members accepted")
	}
	// Out-of-range member rejected.
	_, err = NewCollection(2, []Cluster{{Center: 0, Members: []int32{0, 5}}})
	if err == nil {
		t.Error("out-of-range member accepted")
	}
	// Partial cover is fine.
	c, err := NewCollection(4, []Cluster{{Center: 2, Members: []int32{2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if c.ClusterOf(0) != nil {
		t.Error("uncovered vertex has a cluster")
	}
	if c.IsCenter(3) {
		t.Error("member 3 reported as center")
	}
}

func TestMerge(t *testing.T) {
	base := Singletons(6)
	// Supercluster: 0 absorbs 1 and 2; 4 absorbs 5; 3 left out.
	next, err := base.Merge(6, asg(6, map[int]int{0: 0, 1: 0, 2: 0, 4: 4, 5: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if next.Len() != 2 {
		t.Fatalf("Len=%d, want 2", next.Len())
	}
	c0 := next.ClusterOf(1)
	if c0 == nil || c0.Center != 0 || len(c0.Members) != 3 {
		t.Errorf("cluster of 1: %+v", c0)
	}
	if next.ClusterOf(3) != nil {
		t.Error("vertex 3 should be unclustered")
	}
	// Merging a non-center errors.
	two, err := base.Merge(6, asg(6, map[int]int{0: 0, 1: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := two.Merge(6, asg(6, map[int]int{1: 1})); err == nil {
		t.Error("merging non-center accepted")
	}
}

func TestSubset(t *testing.T) {
	base := Singletons(6)
	odd, err := base.Subset(6, func(c int) bool { return c%2 == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if odd.Len() != 3 {
		t.Fatalf("Len=%d", odd.Len())
	}
	for _, cl := range odd.Clusters {
		if cl.Center%2 != 1 {
			t.Errorf("kept center %d", cl.Center)
		}
	}
}

func TestRadius(t *testing.T) {
	g := gen.Path(6)
	cl := Cluster{Center: 2, Members: []int32{0, 1, 2, 3}}
	if r := Radius(g, cl); r != 2 {
		t.Errorf("Radius=%d, want 2", r)
	}

	// A member unreachable from the center yields -1.
	b := graph.NewBuilder(6)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	disc := b.Build()
	if r := Radius(disc, Cluster{Center: 0, Members: []int32{0, 5}}); r != -1 {
		t.Errorf("Radius on disconnected cluster=%d, want -1", r)
	}
}

func TestMaxRadius(t *testing.T) {
	g := gen.Path(8)
	col, err := NewCollection(8, []Cluster{
		{Center: 1, Members: []int32{0, 1, 2}},
		{Center: 5, Members: []int32{4, 5, 6, 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := MaxRadius(g, col); r != 2 {
		t.Errorf("MaxRadius=%d, want 2", r)
	}
}

func TestVerifyPartition(t *testing.T) {
	a, err := NewCollection(6, []Cluster{
		{Center: 0, Members: []int32{0, 1}},
		{Center: 2, Members: []int32{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	bcol, err := NewCollection(6, []Cluster{
		{Center: 4, Members: []int32{3, 4, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPartition(6, []*Collection{a, bcol}); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	// Missing vertex 5.
	ccol, err := NewCollection(6, []Cluster{
		{Center: 4, Members: []int32{3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPartition(6, []*Collection{a, ccol}); err == nil {
		t.Error("incomplete cover accepted")
	}
	// Double cover.
	dcol, err := NewCollection(6, []Cluster{
		{Center: 1, Members: []int32{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPartition(6, []*Collection{a, bcol, dcol}); err == nil {
		t.Error("double cover accepted")
	}
}

package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomPartialClusters builds a random valid set of disjoint clusters
// over n vertices.
func randomPartialClusters(r *rand.Rand, n int) []Cluster {
	perm := r.Perm(n)
	var clusters []Cluster
	i := 0
	for i < n {
		size := 1 + r.Intn(4)
		if i+size > n {
			size = n - i
		}
		ms := make([]int32, 0, size)
		for j := 0; j < size; j++ {
			ms = append(ms, int32(perm[i+j]))
		}
		clusters = append(clusters, Cluster{Center: int(ms[r.Intn(len(ms))]), Members: ms})
		i += size
		if r.Intn(4) == 0 && i < n {
			i++ // leave a vertex unclustered
		}
	}
	return clusters
}

// Merge preserves the member multiset of the merged clusters: no vertex
// is lost or duplicated.
func TestPropMergePreservesMembers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(40)
		col, err := NewCollection(n, randomPartialClusters(r, n))
		if err != nil {
			t.Logf("setup: %v", err)
			return false
		}
		centers := col.Centers()
		if len(centers) < 2 {
			return true
		}
		// Assign a random subset of centers to random target centers.
		assignment := make(map[int]int)
		targets := centers[:1+r.Intn(len(centers))]
		for _, c := range centers {
			if r.Intn(2) == 0 {
				assignment[c] = targets[r.Intn(len(targets))]
			}
		}
		// Targets must assign to themselves if they appear as values.
		used := make(map[int]bool)
		for _, tgt := range assignment {
			used[tgt] = true
		}
		for tgt := range used {
			assignment[tgt] = tgt
		}
		var wantMembers int
		for c := range assignment {
			wantMembers += len(col.ClusterOf(c).Members)
		}
		next, err := col.Merge(n, asg(n, assignment))
		if err != nil {
			t.Logf("merge: %v", err)
			return false
		}
		got := 0
		seen := make(map[int32]bool)
		for _, cl := range next.Clusters {
			for _, m := range cl.Members {
				if seen[m] {
					t.Logf("duplicate member %d", m)
					return false
				}
				seen[m] = true
				got++
			}
		}
		return got == wantMembers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Subset plus its complement always partitions the original collection's
// vertex support.
func TestPropSubsetComplement(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(40)
		col, err := NewCollection(n, randomPartialClusters(r, n))
		if err != nil {
			return false
		}
		keepOdd := func(c int) bool { return c%2 == 1 }
		odd, err := col.Subset(n, keepOdd)
		if err != nil {
			return false
		}
		even, err := col.Subset(n, func(c int) bool { return !keepOdd(c) })
		if err != nil {
			return false
		}
		// Together they cover exactly the original support.
		covered := 0
		for _, c := range []*Collection{odd, even} {
			for _, cl := range c.Clusters {
				covered += len(cl.Members)
			}
		}
		orig := 0
		for _, cl := range col.Clusters {
			orig += len(cl.Members)
		}
		return covered == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Package cluster provides the cluster bookkeeping of the spanner
// construction: collections P_i of disjoint clusters with designated
// centers (paper §2.1), the per-phase partitions U_i of unsuperclustered
// clusters, and the invariant checks of Corollary 2.5 / Lemma 2.6.
package cluster

import (
	"fmt"
	"slices"

	"nearspan/internal/edgeset"
	"nearspan/internal/graph"
)

// Cluster is a set of vertices centered around Center. Members always
// contains the center and is kept sorted.
type Cluster struct {
	Center  int
	Members []int32
}

// Collection is a set of vertex-disjoint clusters, the paper's P_i.
type Collection struct {
	Clusters []Cluster
	// Of maps a vertex to its cluster index in Clusters, or -1.
	Of []int32
}

// Singletons returns P_0: every vertex is its own cluster.
func Singletons(n int) *Collection {
	col := &Collection{
		Clusters: make([]Cluster, n),
		Of:       make([]int32, n),
	}
	for v := 0; v < n; v++ {
		col.Clusters[v] = Cluster{Center: v, Members: []int32{int32(v)}}
		col.Of[v] = int32(v)
	}
	return col
}

// NewCollection builds a collection from explicit clusters, validating
// disjointness and center membership.
func NewCollection(n int, clusters []Cluster) (*Collection, error) {
	col := &Collection{Clusters: clusters, Of: make([]int32, n)}
	for i := range col.Of {
		col.Of[i] = -1
	}
	for ci, c := range clusters {
		centerSeen := false
		for _, m := range c.Members {
			if m < 0 || int(m) >= n {
				return nil, fmt.Errorf("cluster: member %d out of range", m)
			}
			if col.Of[m] != -1 {
				return nil, fmt.Errorf("cluster: vertex %d in two clusters", m)
			}
			col.Of[m] = int32(ci)
			if int(m) == c.Center {
				centerSeen = true
			}
		}
		if !centerSeen {
			return nil, fmt.Errorf("cluster: center %d not among its members", c.Center)
		}
	}
	return col, nil
}

// Centers returns the sorted list of cluster centers (the paper's S_i).
func (c *Collection) Centers() []int {
	out := make([]int, len(c.Clusters))
	for i, cl := range c.Clusters {
		out[i] = cl.Center
	}
	slices.Sort(out)
	return out
}

// Len returns the number of clusters.
func (c *Collection) Len() int { return len(c.Clusters) }

// ClusterOf returns the cluster containing v, or nil.
func (c *Collection) ClusterOf(v int) *Cluster {
	idx := c.Of[v]
	if idx < 0 {
		return nil
	}
	return &c.Clusters[idx]
}

// IsCenter reports whether v is a cluster center.
func (c *Collection) IsCenter(v int) bool {
	cl := c.ClusterOf(v)
	return cl != nil && cl.Center == v
}

// Merge builds the next collection P_{i+1} from superclustering
// decisions: for each new center r (a ruling-set member), the new
// supercluster's members are the union of the member sets of the old
// clusters whose centers were assigned to r (including r's own old
// cluster). assignment maps old-center -> new-center; old centers not
// assigned were not superclustered.
//
// The merge is fully columnar: one dense pass groups old clusters by new
// center, and a single ascending vertex scan fills every new member list
// already sorted — no intermediate map[int][]int32, no member sort, and
// disjointness holds by construction (each old cluster lands in exactly
// one supercluster), so no revalidation pass either.
func (c *Collection) Merge(n int, assignment *edgeset.Assignment) (*Collection, error) {
	// Reject assignments keyed by non-centers (same contract as before).
	for v := 0; v < n; v++ {
		if assignment.Has(v) && !c.IsCenter(v) {
			return nil, fmt.Errorf("cluster: %d is not a center", v)
		}
	}

	// newCenterOf[ci]: the new center old cluster ci merges into, or -1.
	newCenterOf := make([]int32, len(c.Clusters))
	var newCenters []int32
	isNew := make([]bool, n)
	for ci := range c.Clusters {
		nc, ok := assignment.Get(c.Clusters[ci].Center)
		if !ok {
			newCenterOf[ci] = -1
			continue
		}
		newCenterOf[ci] = nc
		if !isNew[nc] {
			isNew[nc] = true
			newCenters = append(newCenters, nc)
		}
	}
	slices.Sort(newCenters)

	// Index new clusters by their (sorted) centers and size them.
	idxOf := make([]int32, n)
	clusters := make([]Cluster, len(newCenters))
	for i, nc := range newCenters {
		idxOf[nc] = int32(i)
		clusters[i].Center = int(nc)
	}
	sizes := make([]int, len(newCenters))
	for ci := range c.Clusters {
		if nc := newCenterOf[ci]; nc >= 0 {
			sizes[idxOf[nc]] += len(c.Clusters[ci].Members)
		}
	}
	for i := range clusters {
		clusters[i].Members = make([]int32, 0, sizes[i])
	}

	// One ascending vertex scan fills each member list sorted for free.
	of := make([]int32, n)
	for i := range of {
		of[i] = -1
	}
	for v := 0; v < n; v++ {
		oldIdx := c.Of[v]
		if oldIdx < 0 {
			continue
		}
		nc := newCenterOf[oldIdx]
		if nc < 0 {
			continue
		}
		ni := idxOf[nc]
		clusters[ni].Members = append(clusters[ni].Members, int32(v))
		of[v] = ni
	}

	// Every new center must be among its own members (it is iff its own
	// old cluster was assigned to it) — the invariant NewCollection used
	// to enforce.
	for i := range clusters {
		if of[clusters[i].Center] != int32(i) {
			return nil, fmt.Errorf("cluster: center %d not among its members", clusters[i].Center)
		}
	}
	return &Collection{Clusters: clusters, Of: of}, nil
}

// Subset returns the sub-collection of clusters whose centers satisfy
// keep (the paper's U_i, with keep = "not superclustered").
func (c *Collection) Subset(n int, keep func(center int) bool) (*Collection, error) {
	var clusters []Cluster
	for _, cl := range c.Clusters {
		if keep(cl.Center) {
			clusters = append(clusters, cl)
		}
	}
	return NewCollection(n, clusters)
}

// Radius returns Rad(C) measured in the subgraph h: the maximum h-distance
// from the center to any member (paper §2.1 defines Rad in H). Returns -1
// if some member is unreachable from the center within h.
func Radius(h *graph.Graph, cl Cluster) int32 {
	dist := h.BFS(cl.Center)
	var rad int32
	for _, m := range cl.Members {
		d := dist[m]
		if d == graph.Infinity {
			return -1
		}
		if d > rad {
			rad = d
		}
	}
	return rad
}

// MaxRadius returns Rad(P) = max over clusters of Radius, or -1 if any
// cluster is disconnected in h.
func MaxRadius(h *graph.Graph, col *Collection) int32 {
	var rad int32
	for _, cl := range col.Clusters {
		r := Radius(h, cl)
		if r < 0 {
			return -1
		}
		if r > rad {
			rad = r
		}
	}
	return rad
}

// VerifyPartition checks that the given collections are mutually disjoint
// and together cover exactly the vertex set [0, n) — Corollary 2.5 for
// the U_0, ..., U_ℓ sequence.
func VerifyPartition(n int, cols []*Collection) error {
	seen := make([]int, n) // count of appearances
	for ci, col := range cols {
		for _, cl := range col.Clusters {
			for _, m := range cl.Members {
				if m < 0 || int(m) >= n {
					return fmt.Errorf("cluster: collection %d member %d out of range", ci, m)
				}
				seen[m]++
			}
		}
	}
	for v, k := range seen {
		if k != 1 {
			return fmt.Errorf("cluster: vertex %d covered %d times", v, k)
		}
	}
	return nil
}

// Package baseline implements the comparison algorithms of the paper's
// Tables 1 and 2 that admit a full implementation at laptop scale:
//
//   - EN17: the randomized CONGEST near-additive spanner of Elkin &
//     Neiman (SODA 2017) — the algorithm the paper derandomizes. Its
//     superclustering samples cluster centers instead of computing a
//     ruling set.
//   - EP01: the centralized deterministic superclustering-and-
//     interconnection construction of Elkin & Peleg (STOC 2001), with
//     exact sequential scans (no distributed overheads), giving the
//     existential β benchmark.
//   - Baswana–Sen: the classic randomized (2κ−1)-multiplicative spanner,
//     the traditional comparison point that near-additive spanners
//     improve on for long distances.
//   - Greedy: the Althöfer et al. greedy (2κ−1)-spanner, the size-
//     optimal multiplicative reference.
//
// The remaining rows of Table 2 (Elk05, EZ06, TZ06, DGP07, DGPV08,
// DGPV09, Pet09, Pet10, ABP17) are reported analytically by the
// experiment harness; see DESIGN.md §1.5 for the substitution rationale.
package baseline

import (
	"fmt"
	"math"

	"nearspan/internal/cluster"
	"nearspan/internal/edgeset"
	"nearspan/internal/graph"
	"nearspan/internal/params"
	"nearspan/internal/rng"
)

// EN17Result is the outcome of the EN17 construction.
type EN17Result struct {
	Spanner *graph.Graph
	// Phases records per-phase cluster counts (|P_i|, sampled, U_i).
	Phases []EN17Phase
	// ScheduledRounds charges EN17's protocol schedule: per phase, the
	// sampled-center BFS (δ_i rounds) plus the interconnection
	// exploration (deg_i·δ_i rounds, as in the randomized Bellman-Ford
	// step it replaces; EN17's extra log n factor shows up in the
	// exploration cap, see below).
	ScheduledRounds int
	// Beta is the additive term implied by EN17's (smaller) radius
	// growth: β_EN = ε^{-ℓ} over its own radius sequence.
	Beta int32
	// EpsPrime is the rescaled multiplicative slack for EN17's radii.
	EpsPrime float64
}

// EN17Phase mirrors core.PhaseStats for the randomized construction.
type EN17Phase struct {
	Index       int
	Deg         int
	Delta       int32
	Clusters    int
	Sampled     int
	Unclustered int
	EdgesSC     int
	EdgesIC     int
}

// EN17Params derives the EN17 phase schedule. The phase count and degree
// sequence match the deterministic algorithm (the paper keeps both "as
// in [EN17]"); the radius recurrence differs: a sampled center grows its
// supercluster by a BFS of depth δ_i directly, so
//
//	R_{i+1} = δ_i + R_i = ε^{-i} + 3R_i        (no 1/ρ̂ inflation)
//
// which is exactly why β_EN is smaller than the deterministic β — the
// quantity the paper calls "slightly inferior" (§2.1). The experiment
// harness reports the two β side by side (ablation A1).
type EN17Params struct {
	Eps   float64
	Kappa int
	Rho   float64
	N     int
	L     int
	I0    int
	Deg   []int
	Delta []int32
	R     []int32
}

// NewEN17Params validates and derives the schedule.
func NewEN17Params(eps float64, kappa int, rho float64, n int) (*EN17Params, error) {
	base, err := params.New(eps, kappa, rho, n)
	if err != nil {
		return nil, err
	}
	p := &EN17Params{Eps: eps, Kappa: kappa, Rho: rho, N: n, L: base.L, I0: base.I0, Deg: base.Deg}
	p.R = make([]int32, p.L+2)
	p.Delta = make([]int32, p.L+1)
	for i := 0; i <= p.L; i++ {
		p.Delta[i] = int32(math.Ceil(math.Pow(1/eps, float64(i)))) + 2*p.R[i]
		p.R[i+1] = p.Delta[i] + p.R[i]
	}
	return p, nil
}

// Beta is ε^{-ℓ} for EN17's schedule.
func (p *EN17Params) Beta() int32 {
	return int32(math.Ceil(math.Pow(1/p.Eps, float64(p.L)) - 1e-9))
}

// EpsPrime mirrors the §2.4.4 rescaling shape for EN17's radii: the
// segment analysis pays O(ε·i) per phase without the 1/ρ̂ factor.
func (p *EN17Params) EpsPrime() float64 {
	return 30 * p.Eps * float64(p.L)
}

// BuildEN17 constructs the EN17 spanner with the given seed. The
// construction is centralized but makes exactly the decisions of the
// distributed algorithm; ScheduledRounds charges its round budget.
func BuildEN17(g *graph.Graph, p *EN17Params, seed uint64) (*EN17Result, error) {
	if p.N != g.N() {
		return nil, fmt.Errorf("baseline: EN17 params n=%d, graph n=%d", p.N, g.N())
	}
	res := &EN17Result{Beta: p.Beta(), EpsPrime: p.EpsPrime()}
	h := edgeset.NewSet(g.N())
	cur := cluster.Singletons(g.N())
	superclustered := edgeset.NewAssignment(g.N())
	assignment := edgeset.NewAssignment(g.N())

	for i := 0; i <= p.L; i++ {
		ph := EN17Phase{Index: i, Deg: p.Deg[i], Delta: p.Delta[i], Clusters: cur.Len()}
		centers := cur.Centers()
		superclustered.Reset()
		var next *cluster.Collection

		if i < p.L && len(centers) > 0 {
			// Sample each center with probability 1/deg_i.
			prob := 1 / float64(p.Deg[i])
			var sampled []int
			for _, c := range centers {
				coin := rng.New(seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15) ^ (uint64(c+1) * 0xbf58476d1ce4e5b9))
				if coin.Float64() < prob {
					sampled = append(sampled, c)
				}
			}
			ph.Sampled = len(sampled)

			// Sampled centers grow superclusters by BFS to depth δ_i;
			// every spanned center joins its nearest sampled center.
			dist, root, parent := g.MultiBFS(sampled, p.Delta[i])
			assignment.Reset()
			for _, c := range centers {
				if dist[c] != graph.Infinity {
					assignment.Set(c, root[c])
					superclustered.Set(c, 1)
				}
			}
			// Forest root paths are added to H.
			ph.EdgesSC = h.AddSet(forestPaths(g, centers, dist, parent, superclustered))

			var err error
			next, err = cur.Merge(g.N(), assignment)
			if err != nil {
				return nil, fmt.Errorf("baseline: EN17 phase %d merge: %w", i, err)
			}
			// Charge the BFS + climb rounds.
			res.ScheduledRounds += 2 * int(p.Delta[i])
		}

		// Interconnection: unsuperclustered centers connect to every
		// center within δ_i (no popularity cap — EN17 bounds the count
		// in expectation via the sampling).
		icEdges, icPairs := en17Interconnect(g, centers, superclustered, p.Delta[i], h)
		_ = icPairs
		ph.EdgesIC = icEdges
		ph.Unclustered = len(centers) - superclustered.Len()
		// Charge the exploration schedule: deg_i·δ_i rounds, the
		// Bellman-Ford budget of the randomized interconnection.
		res.ScheduledRounds += p.Deg[i] * int(p.Delta[i])
		res.Phases = append(res.Phases, ph)
		if next != nil {
			cur = next
		}
	}
	res.Spanner = h.Graph()
	return res, nil
}

// en17Interconnect adds a shortest path from every unsuperclustered
// center to every center within delta directly into h, returning the
// number of new edges and the pair count.
func en17Interconnect(g *graph.Graph, centers []int, superclustered *edgeset.Assignment, delta int32, h *edgeset.Set) (added, pairs int) {
	isCenter := make([]bool, g.N())
	for _, c := range centers {
		isCenter[c] = true
	}
	for _, c := range centers {
		if superclustered.Has(c) {
			continue
		}
		dist, _, parent := g.MultiBFS([]int{c}, delta)
		for v := 0; v < g.N(); v++ {
			if v == c || !isCenter[v] || dist[v] == graph.Infinity {
				continue
			}
			pairs++
			// Walk the BFS parents back to c, adding the path.
			for x := v; x != c; {
				px := int(parent[x])
				if h.Add(x, px) {
					added++
				}
				x = px
			}
		}
	}
	return added, pairs
}

// forestPaths collects root paths for all spanned centers from a
// MultiBFS forest. The step-local set preserves the walk's early-exit
// semantics (stop once this step already marked the rest of the path);
// the caller merges it into H for the phase's new-edge count.
func forestPaths(g *graph.Graph, centers []int, dist []int32, parent []int32, spanned *edgeset.Assignment) *edgeset.Set {
	edges := edgeset.NewSet(g.N())
	for _, c := range centers {
		if !spanned.Has(c) || dist[c] == graph.Infinity {
			continue
		}
		for x := c; parent[x] >= 0; {
			px := int(parent[x])
			if !edges.Add(x, px) {
				break // the rest of the path is already marked
			}
			x = px
		}
	}
	return edges
}

package baseline

import (
	"math"
	"testing"

	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/verify"
)

func workloads(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"gnp":         gen.GNP(90, 0.12, 7, true),
		"grid":        gen.Grid(9, 9),
		"communities": gen.Communities(4, 20, 0.4, 0.01, 3),
		"torus":       gen.Torus(8, 8),
	}
}

// --- EN17 ---

func TestEN17StretchAndSubgraph(t *testing.T) {
	for name, g := range workloads(t) {
		p, err := NewEN17Params(1.0/3, 3, 0.49, g.N())
		if err != nil {
			t.Fatal(err)
		}
		res, err := BuildEN17(g, p, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !verify.Subgraph(res.Spanner, g) {
			t.Errorf("%s: EN17 spanner not a subgraph", name)
		}
		rep := verify.Stretch(g, res.Spanner, 1+res.EpsPrime, res.Beta)
		if !rep.OK() {
			t.Errorf("%s: EN17 stretch violated: %v", name, rep)
		}
		if res.ScheduledRounds <= 0 {
			t.Errorf("%s: EN17 scheduled rounds %d", name, res.ScheduledRounds)
		}
	}
}

func TestEN17Deterministic(t *testing.T) {
	g := gen.GNP(80, 0.15, 9, true)
	p, err := NewEN17Params(0.5, 4, 0.45, g.N())
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildEN17(g, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildEN17(g, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Spanner.M() != b.Spanner.M() {
		t.Error("same seed produced different spanners")
	}
	c, err := BuildEN17(g, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed may or may not differ; only determinism is asserted
}

func TestEN17RadiiTighterThanDeterministic(t *testing.T) {
	// The whole point of the paper's comparison: EN17's radius growth
	// (no ruling-set detour) is strictly tighter, so its delta and beta
	// are smaller for equal (eps, kappa, rho).
	pEN, err := NewEN17Params(0.25, 4, 0.45, 1000)
	if err != nil {
		t.Fatal(err)
	}
	pEP, err := NewEP01Params(0.25, 4, 0.45, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if pEN.L != pEP.L {
		t.Fatalf("phase counts differ: %d vs %d", pEN.L, pEP.L)
	}
	for i := 1; i <= pEN.L; i++ {
		if pEN.R[i] != pEP.R[i] {
			t.Errorf("EN17 and EP01 share the radius recurrence; R[%d]: %d vs %d",
				i, pEN.R[i], pEP.R[i])
		}
	}
}

// --- Baswana–Sen ---

func TestBaswanaSenStretch(t *testing.T) {
	for name, g := range workloads(t) {
		for _, kappa := range []int{2, 3} {
			h, err := BuildBaswanaSen(g, kappa, 21)
			if err != nil {
				t.Fatal(err)
			}
			if !verify.Subgraph(h, g) {
				t.Errorf("%s k=%d: not a subgraph", name, kappa)
			}
			rep := verify.Stretch(g, h, float64(2*kappa-1), 0)
			if !rep.OK() {
				t.Errorf("%s k=%d: multiplicative stretch violated: %v", name, kappa, rep)
			}
		}
	}
}

func TestBaswanaSenSparsifiesDenseGraphs(t *testing.T) {
	g := gen.GNP(120, 0.4, 5, true)
	h, err := BuildBaswanaSen(g, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if h.M() >= g.M() {
		t.Errorf("no sparsification: %d >= %d", h.M(), g.M())
	}
	// Expected size ~ kappa * n^{1+1/3}; allow a generous factor.
	bound := 3.0 * 4 * math.Pow(120, 1+1.0/3)
	if float64(h.M()) > bound {
		t.Errorf("size %d beyond expected bound %v", h.M(), bound)
	}
}

// --- Greedy ---

func TestGreedyStretchAndOptimality(t *testing.T) {
	for name, g := range workloads(t) {
		for _, kappa := range []int{2, 3} {
			h, err := BuildGreedy(g, kappa)
			if err != nil {
				t.Fatal(err)
			}
			if !verify.Subgraph(h, g) {
				t.Errorf("%s k=%d: not a subgraph", name, kappa)
			}
			rep := verify.Stretch(g, h, float64(2*kappa-1), 0)
			if !rep.OK() {
				t.Errorf("%s k=%d: greedy stretch violated: %v", name, kappa, rep)
			}
		}
	}
}

func TestGreedyNoRedundantEdges(t *testing.T) {
	// Greedy keeps an edge only if needed: removing any kept edge must
	// violate the stretch for its endpoints.
	g := gen.GNP(40, 0.3, 13, true)
	kappa := 2
	limit := int32(2*kappa - 1)
	h, err := BuildGreedy(g, kappa)
	if err != nil {
		t.Fatal(err)
	}
	// Girth property: greedy spanners have no cycle of length <= 2k, so
	// for every kept edge the alternative path exceeds 2k-1.
	h.Edges(func(u, v int) {
		d := distWithout(h, u, v)
		if d <= limit {
			t.Errorf("edge %d-%d redundant: alt path %d", u, v, d)
		}
	})
}

// distWithout returns d_{h-e}(u, v) for e = {u, v}.
func distWithout(h *graph.Graph, u, v int) int32 {
	b := graph.NewBuilder(h.N())
	h.Edges(func(x, y int) {
		if (x == u && y == v) || (x == v && y == u) {
			return
		}
		if err := b.AddEdge(x, y); err != nil {
			panic(err)
		}
	})
	return b.Build().Distance(u, v)
}

func TestGreedySmallerThanBaswanaSen(t *testing.T) {
	// Greedy is size-optimal; Baswana-Sen pays a kappa factor. On a
	// dense graph greedy should not be (much) larger.
	g := gen.GNP(100, 0.3, 17, true)
	gr, err := BuildGreedy(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := BuildBaswanaSen(g, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gr.M() > 2*bs.M() {
		t.Errorf("greedy %d much larger than Baswana-Sen %d", gr.M(), bs.M())
	}
}

// --- EP01 ---

func TestEP01StretchAndDecay(t *testing.T) {
	for name, g := range workloads(t) {
		p, err := NewEP01Params(1.0/3, 3, 0.49, g.N())
		if err != nil {
			t.Fatal(err)
		}
		res, err := BuildEP01(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if !verify.Subgraph(res.Spanner, g) {
			t.Errorf("%s: EP01 spanner not a subgraph", name)
		}
		rep := verify.Stretch(g, res.Spanner, 1+res.EpsPrime, res.Beta)
		if !rep.OK() {
			t.Errorf("%s: EP01 stretch violated: %v", name, rep)
		}
		// Decay: every supercluster absorbed > deg clusters.
		for i := 0; i+1 < len(res.Phases); i++ {
			ph := res.Phases[i]
			nextClusters := res.Phases[i+1].Clusters
			if nextClusters != ph.Superclst {
				t.Errorf("%s phase %d: |P_{i+1}|=%d != superclusters %d",
					name, i, nextClusters, ph.Superclst)
			}
			// Each supercluster absorbs >= deg+1 clusters, so their
			// count is bounded by |P_i|/(deg+1).
			if ph.Superclst > ph.Clusters/(ph.Deg+1) {
				t.Errorf("%s phase %d: %d superclusters from %d clusters at deg %d",
					name, i, ph.Superclst, ph.Clusters, ph.Deg)
			}
		}
	}
}

func TestEP01Deterministic(t *testing.T) {
	g := gen.Communities(3, 25, 0.35, 0.02, 9)
	p, err := NewEP01Params(0.5, 4, 0.45, g.N())
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildEP01(g, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildEP01(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Spanner.M() != b.Spanner.M() {
		t.Error("EP01 not deterministic")
	}
}

func TestParamValidation(t *testing.T) {
	if _, err := NewEN17Params(0, 4, 0.45, 10); err == nil {
		t.Error("EN17 eps=0 accepted")
	}
	if _, err := NewEP01Params(0.5, 1, 0.45, 10); err == nil {
		t.Error("EP01 kappa=1 accepted")
	}
	if _, err := BuildBaswanaSen(gen.Path(5), 0, 1); err == nil {
		t.Error("BS kappa=0 accepted")
	}
	if _, err := BuildGreedy(gen.Path(5), 0); err == nil {
		t.Error("greedy kappa=0 accepted")
	}
	g := gen.Path(5)
	p, err := NewEN17Params(0.5, 4, 0.45, 99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildEN17(g, p, 1); err == nil {
		t.Error("EN17 n mismatch accepted")
	}
	p2, err := NewEP01Params(0.5, 4, 0.45, 99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildEP01(g, p2); err == nil {
		t.Error("EP01 n mismatch accepted")
	}
}

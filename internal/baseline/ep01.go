package baseline

import (
	"fmt"
	"math"

	"nearspan/internal/cluster"
	"nearspan/internal/edgeset"
	"nearspan/internal/graph"
	"nearspan/internal/params"
)

// EP01Result is the outcome of the centralized Elkin–Peleg construction.
type EP01Result struct {
	Spanner *graph.Graph
	Phases  []EP01Phase
	Beta    int32
	// EpsPrime is the rescaled multiplicative slack for EP01's radii.
	EpsPrime float64
}

// EP01Phase mirrors the per-phase counters.
type EP01Phase struct {
	Index       int
	Deg         int
	Delta       int32
	Clusters    int
	Popular     int
	Superclst   int // superclusters formed
	Unclustered int
	EdgesSC     int
	EdgesIC     int
}

// EP01Params derives the schedule of the centralized construction. The
// sequential scans let a supercluster center absorb everything within
// δ_i directly, so the radius recurrence is the tightest of the three
// superclustering variants:
//
//	R_{i+1} = δ_i + R_i  with superclusters built around *popular
//	centers themselves* (not ruling-set survivors), one scan at a time.
//
// This is the existential benchmark: β_EP ≈ ε^{-ℓ} over these radii is
// what the distributed algorithms give away (EN17 a little, the
// deterministic CONGEST algorithm a (1/ρ̂) factor per phase).
type EP01Params struct {
	Eps   float64
	Kappa int
	Rho   float64 // used only for the shared phase count ℓ
	N     int
	L     int
	Deg   []int
	Delta []int32
	R     []int32
}

// NewEP01Params validates and derives the schedule.
func NewEP01Params(eps float64, kappa int, rho float64, n int) (*EP01Params, error) {
	base, err := params.New(eps, kappa, rho, n)
	if err != nil {
		return nil, err
	}
	p := &EP01Params{Eps: eps, Kappa: kappa, Rho: rho, N: n, L: base.L, Deg: base.Deg}
	p.R = make([]int32, p.L+2)
	p.Delta = make([]int32, p.L+1)
	for i := 0; i <= p.L; i++ {
		p.Delta[i] = int32(math.Ceil(math.Pow(1/eps, float64(i)))) + 2*p.R[i]
		p.R[i+1] = p.Delta[i] + p.R[i]
	}
	return p, nil
}

// Beta is ε^{-ℓ} for EP01's schedule.
func (p *EP01Params) Beta() int32 {
	return int32(math.Ceil(math.Pow(1/p.Eps, float64(p.L)) - 1e-9))
}

// EpsPrime mirrors the rescaling shape for EP01's radii.
func (p *EP01Params) EpsPrime() float64 {
	return 30 * p.Eps * float64(p.L)
}

// BuildEP01 runs the centralized deterministic superclustering-and-
// interconnection construction. Superclustering is by repeated exact
// scans over the *remaining* clusters: while some unassigned center has
// at least deg_i unassigned centers within δ_i, the smallest such center
// absorbs all unassigned clusters within δ_i. Every supercluster
// therefore absorbs > deg_i clusters, giving the |P_{i+1}| <=
// |P_i|/deg_i decay directly — the invariant the distributed algorithms
// must approximate with sampling or ruling sets.
func BuildEP01(g *graph.Graph, p *EP01Params) (*EP01Result, error) {
	if p.N != g.N() {
		return nil, fmt.Errorf("baseline: EP01 params n=%d, graph n=%d", p.N, g.N())
	}
	res := &EP01Result{Beta: p.Beta(), EpsPrime: p.EpsPrime()}
	h := edgeset.NewSet(g.N())
	cur := cluster.Singletons(g.N())
	superclustered := edgeset.NewAssignment(g.N())
	assignment := edgeset.NewAssignment(g.N())

	for i := 0; i <= p.L; i++ {
		ph := EP01Phase{Index: i, Deg: p.Deg[i], Delta: p.Delta[i], Clusters: cur.Len()}
		centers := cur.Centers()
		superclustered.Reset()
		var next *cluster.Collection

		if i < p.L && len(centers) > 0 {
			// Pairwise near-center lists, one bounded BFS per center.
			near := make([][]int, g.N())
			for _, c := range centers {
				dist := g.BFSBounded(c, p.Delta[i])
				for _, other := range centers {
					if other != c && dist[other] <= p.Delta[i] {
						near[c] = append(near[c], other)
					}
				}
				if len(near[c]) >= p.Deg[i] {
					ph.Popular++
				}
			}

			remainingNear := func(c int) int {
				k := 0
				for _, o := range near[c] {
					if !superclustered.Has(o) {
						k++
					}
				}
				return k
			}

			assignment.Reset()
			for {
				// Smallest unassigned center with >= deg_i unassigned
				// near centers.
				pick := -1
				for _, c := range centers {
					if !superclustered.Has(c) && remainingNear(c) >= p.Deg[i] {
						pick = c
						break
					}
				}
				if pick < 0 {
					break
				}
				ph.Superclst++
				dist, _, parent := g.MultiBFS([]int{pick}, p.Delta[i])
				assignment.Set(pick, int32(pick))
				superclustered.Set(pick, 1)
				for _, other := range near[pick] {
					if superclustered.Has(other) || dist[other] == graph.Infinity {
						continue
					}
					assignment.Set(other, int32(pick))
					superclustered.Set(other, 1)
					for x := other; x != pick; {
						px := int(parent[x])
						if h.Add(x, px) {
							ph.EdgesSC++
						}
						x = px
					}
				}
			}
			var err error
			next, err = cur.Merge(g.N(), assignment)
			if err != nil {
				return nil, fmt.Errorf("baseline: EP01 phase %d merge: %w", i, err)
			}
		}

		ph.EdgesIC, _ = en17Interconnect(g, centers, superclustered, p.Delta[i], h)
		ph.Unclustered = len(centers) - superclustered.Len()
		res.Phases = append(res.Phases, ph)
		if next != nil {
			cur = next
		}
	}
	res.Spanner = h.Graph()
	return res, nil
}

package baseline

import (
	"fmt"
	"math"
	"slices"

	"nearspan/internal/edgeset"
	"nearspan/internal/graph"
	"nearspan/internal/rng"
)

// BuildBaswanaSen constructs a (2κ−1)-multiplicative spanner with
// expected O(κ·n^{1+1/κ}) edges by the Baswana–Sen (2007) clustering
// algorithm, the classic randomized construction that near-additive
// spanners are compared against.
//
// The algorithm runs κ−1 clustering iterations followed by a
// vertex-cluster joining step. In every iteration, each surviving
// cluster is sampled with probability n^{-1/κ}; a vertex adjacent to a
// sampled cluster joins it through one edge, and a vertex adjacent to no
// sampled cluster adds one edge to every neighboring cluster and
// retires.
func BuildBaswanaSen(g *graph.Graph, kappa int, seed uint64) (*graph.Graph, error) {
	if kappa < 1 {
		return nil, fmt.Errorf("baseline: BaswanaSen kappa=%d < 1", kappa)
	}
	n := g.N()
	r := rng.New(seed)
	spanner := edgeset.NewSet(n)

	// clusterOf[v] is the center of v's cluster, or -1 once v retires.
	clusterOf := make([]int32, n)
	for v := range clusterOf {
		clusterOf[v] = int32(v)
	}
	prob := 1.0
	if kappa > 1 {
		prob = math.Pow(float64(n), -1.0/float64(kappa))
	}

	// seen is the per-vertex neighboring-cluster dedupe, cleared per
	// vertex in O(1) by generation bump.
	seen := edgeset.NewAssignment(n)

	for it := 0; it < kappa-1; it++ {
		// Sample surviving cluster centers (in sorted order, so the
		// seeded run is deterministic).
		isCenter := make([]bool, n)
		for _, c := range clusterOf {
			if c >= 0 {
				isCenter[c] = true
			}
		}
		var ids []int32
		for c := int32(0); c < int32(n); c++ {
			if isCenter[c] {
				ids = append(ids, c)
			}
		}
		sampled := make([]bool, n)
		for _, c := range ids {
			if r.Float64() < prob {
				sampled[c] = true
			}
		}

		next := slices.Clone(clusterOf)
		for v := 0; v < n; v++ {
			if clusterOf[v] < 0 || sampled[clusterOf[v]] {
				continue
			}
			// Join a neighboring sampled cluster if one exists.
			joined := false
			for _, w := range g.Neighbors(v) {
				cw := clusterOf[w]
				if cw >= 0 && sampled[cw] {
					spanner.Add(v, int(w))
					next[v] = cw
					joined = true
					break
				}
			}
			if joined {
				continue
			}
			// Otherwise add one edge per neighboring cluster and retire.
			seen.Reset()
			for _, w := range g.Neighbors(v) {
				cw := clusterOf[w]
				if cw < 0 || seen.Has(int(cw)) || cw == clusterOf[v] {
					continue
				}
				seen.Set(int(cw), 1)
				spanner.Add(v, int(w))
			}
			next[v] = -1
		}
		clusterOf = next
	}

	// Final joining: every surviving vertex adds one edge to each
	// neighboring surviving cluster.
	for v := 0; v < n; v++ {
		if clusterOf[v] < 0 {
			continue
		}
		seen.Reset()
		for _, w := range g.Neighbors(v) {
			cw := clusterOf[w]
			if cw < 0 || cw == clusterOf[v] || seen.Has(int(cw)) {
				continue
			}
			seen.Set(int(cw), 1)
			spanner.Add(v, int(w))
		}
	}
	return spanner.Graph(), nil
}

// BuildGreedy constructs the Althöfer et al. greedy (2κ−1)-spanner:
// scan edges in a fixed order and keep an edge iff the current spanner
// distance between its endpoints exceeds 2κ−1. Size O(n^{1+1/κ}) by the
// girth argument; O(m·(n+m)) time, intended for verification-scale
// graphs.
func BuildGreedy(g *graph.Graph, kappa int) (*graph.Graph, error) {
	if kappa < 1 {
		return nil, fmt.Errorf("baseline: Greedy kappa=%d < 1", kappa)
	}
	limit := int32(2*kappa - 1)
	n := g.N()
	adj := make([][]int32, n) // incremental spanner adjacency

	// Scratch for the bounded BFS.
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, n)
	within := func(u, v int) bool {
		// BFS from u in the partial spanner, bounded by limit.
		queue = queue[:0]
		queue = append(queue, int32(u))
		dist[u] = 0
		found := false
		for head := 0; head < len(queue) && !found; head++ {
			x := queue[head]
			dx := dist[x]
			if dx == limit {
				continue
			}
			for _, w := range adj[x] {
				if dist[w] < 0 {
					dist[w] = dx + 1
					queue = append(queue, w)
					if int(w) == v {
						found = true
					}
				}
			}
		}
		for _, x := range queue {
			dist[x] = -1
		}
		return found
	}

	b := graph.NewBuilder(n)
	g.Edges(func(u, v int) {
		if within(u, v) {
			return
		}
		if err := b.AddEdge(u, v); err != nil {
			panic("baseline: greedy internal error: " + err.Error())
		}
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
	})
	return b.Build(), nil
}

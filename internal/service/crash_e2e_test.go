package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"syscall"
	"testing"
	"time"

	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/params"
)

// crashSpec is the workload the crash test interrupts: big enough that
// a SIGKILL lands mid-build with high probability, small enough that
// the in-process reference build keeps the test fast.
var crashSpec = JobSpec{
	Name:  "crash-gnp-1024",
	Graph: GraphSpec{Type: "gnp", N: 1024, P: 16.0 / 1024, Seed: 1024, Connected: true},
	Eps:   1.0 / 3, Kappa: 3, Rho: 0.49,
	Mode: "distributed", Engine: "sequential",
}

// buildSpannerd compiles the real daemon binary once per test run.
func buildSpannerd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "spannerd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/spannerd")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/spannerd: %v\n%s", err, out)
	}
	return bin
}

// startSpannerd launches the binary on a random port with the given
// data dir and returns the process plus its base URL, parsed from the
// "listening on" log line.
func startSpannerd(t *testing.T, bin, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data-dir", dataDir, "-fsync", "never", "-builds", "1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("spannerd never logged its listen address")
		return nil, ""
	}
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil {
		json.NewDecoder(resp.Body).Decode(v)
	}
	return resp.StatusCode
}

// The crash e2e against the real binary: SIGKILL the daemon mid-build,
// restart it on the same data directory, and require the recovered
// job's spanner bit-identical to an in-process reference build — the
// whole point of journaling inputs for a deterministic construction.
// The restarted daemon must also answer ?path=1 queries from the
// recovered pool.
func TestServiceCrashSIGKILLRecoverBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process crash test skipped in -short mode")
	}
	bin := buildSpannerd(t)
	dataDir := t.TempDir()

	// Reference: the same deterministic build, in-process.
	g := gen.GNP(1024, 16.0/1024, 1024, true)
	p, err := params.New(1.0/3, 3, 0.49, g.N())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Build(context.Background(), g, p,
		core.Options{Mode: core.ModeDistributed, Engine: congest.EngineSequential})
	if err != nil {
		t.Fatal(err)
	}
	wantM, wantFP := graph.Fingerprint(ref.Spanner)

	// First life: submit, wait for the build to start, SIGKILL.
	cmd, url := startSpannerd(t, bin, dataDir)
	if resp, view := postJSON(t, url+"/v1/jobs", crashSpec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %+v", resp.StatusCode, view)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var view JobView
		getJSON(t, url+"/v1/jobs/j000001", &view)
		// Running is the interesting window; done is an acceptable race
		// (recovery then reloads the snapshot instead of re-building —
		// the fingerprint assertion is identical).
		if view.State == StateRunning || view.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %q)", view.State)
		}
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; exit status is the kill, not an error of the test

	// Second life: same data dir, fresh process.
	cmd2, url2 := startSpannerd(t, bin, dataDir)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			cmd2.Process.Kill()
			t.Error("restarted daemon did not exit on SIGTERM")
		}
	}()

	deadline = time.Now().Add(60 * time.Second)
	for getJSON(t, url2+"/readyz", nil) != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("restarted daemon never became ready")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The job is back under its original id and finishes (recovered
	// done, or re-enqueued and re-built) with the reference fingerprint.
	var view JobView
	deadline = time.Now().Add(120 * time.Second)
	for {
		if code := getJSON(t, url2+"/v1/jobs/j000001", &view); code != http.StatusOK {
			t.Fatalf("job status after restart: %d", code)
		}
		if view.State == StateDone || view.State == StateFailed || view.State == StateCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job never finished (state %q)", view.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if view.State != StateDone || view.Result == nil {
		t.Fatalf("recovered job: state %q, %+v", view.State, view.Error)
	}
	if view.Result.Fingerprint != wantFP || view.Result.Edges != wantM {
		t.Fatalf("recovered spanner (m=%d, %s), reference (m=%d, %s)",
			view.Result.Edges, view.Result.Fingerprint, wantM, wantFP)
	}

	// The recovered pool answers, path included, within the guarantee.
	var ans struct {
		Dist int32   `json:"dist"`
		Path []int32 `json:"path"`
	}
	if code := getJSON(t, url2+"/v1/jobs/j000001/query?u=0&v=9&path=1", &ans); code != http.StatusOK {
		t.Fatalf("query after restart: %d", code)
	}
	if ans.Dist < 0 {
		t.Fatal("recovered spanner disconnected 0 and 9 (input is connected)")
	}
	if len(ans.Path) != int(ans.Dist)+1 {
		t.Fatalf("path length %d for dist %d", len(ans.Path), ans.Dist)
	}
	for i := 0; i+1 < len(ans.Path); i++ {
		if !ref.Spanner.HasEdge(int(ans.Path[i]), int(ans.Path[i+1])) {
			t.Fatalf("recovered path hop {%d,%d} is not a spanner edge", ans.Path[i], ans.Path[i+1])
		}
	}

	// The survivor keeps accepting new work on the recovered id space.
	small := crashSpec
	small.Name = "post-crash"
	small.Graph = GraphSpec{Type: "gnp", N: 128, P: 12.0 / 128, Seed: 7, Connected: true}
	resp, view2 := postJSON(t, url2+"/v1/jobs?wait=1", small)
	if resp.StatusCode != http.StatusOK || view2.State != StateDone {
		t.Fatalf("post-crash submit: %d, state %q (%+v)", resp.StatusCode, view2.State, view2.Error)
	}
	if view2.ID != "j000002" {
		t.Fatalf("post-crash id %s, want j000002", view2.ID)
	}
}

package service

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// smallGNP is a fast-but-nontrivial distributed workload for lifecycle
// tests.
func smallGNP(name string) JobSpec {
	return JobSpec{
		Name:  name,
		Graph: GraphSpec{Type: "gnp", N: 90, P: 0.12, Seed: 7, Connected: true},
		Eps:   1.0 / 3, Kappa: 3, Rho: 0.49,
	}
}

func waitDraining(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
}

// A real SIGTERM during a build: the daemon must drain within its
// (deliberately tiny) grace, force-cancel the in-flight build at a
// round boundary, and leave the job cancelled with no result — never a
// partial spanner.
func TestServiceSIGTERMDrainForceCancelsBuild(t *testing.T) {
	started := make(chan struct{})
	proceed := make(chan struct{})
	s := New(Options{Builds: 1, SchedWorkers: 2, DrainGrace: 20 * time.Millisecond})
	s.beforeBuild = func(*Job) { close(started); <-proceed }

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	runDone := make(chan error, 1)
	go func() { runDone <- Run(ctx, s, l) }()
	url := "http://" + l.Addr().String()

	resp, view := postJSON(t, url+"/v1/jobs", smallGNP("sigterm-victim"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	<-started

	termAt := time.Now()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitDraining(t, s)
	// Let the grace expire so the force-cancel is already in effect when
	// the build is released; cancellation then lands at the first round
	// boundary.
	time.Sleep(100 * time.Millisecond)
	close(proceed)

	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s of SIGTERM")
	}
	if d := time.Since(termAt); d > 5*time.Second {
		t.Errorf("drain took %v, far beyond the 20ms grace", d)
	}

	job := s.Job(view.ID)
	if got := job.State(); got != StateCancelled {
		t.Fatalf("job state %q after forced drain, want cancelled", got)
	}
	v := job.View()
	if v.Result != nil {
		t.Errorf("force-cancelled job carries a result — a partial spanner escaped: %+v", v.Result)
	}
	if v.Error == nil || v.Error.Kind != "cancelled" {
		t.Errorf("job error %+v, want kind cancelled", v.Error)
	}
}

// Drain with a generous grace lets the in-flight build finish with a
// complete spanner, while queued-but-unstarted jobs are cancelled and
// further submissions are refused.
func TestServiceDrainLetsInFlightBuildFinish(t *testing.T) {
	started := make(chan struct{})
	proceed := make(chan struct{})
	s := New(Options{Builds: 1, QueueDepth: 4, SchedWorkers: 2, DrainGrace: 30 * time.Second})
	s.beforeBuild = func(*Job) { close(started); <-proceed }

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- Run(ctx, s, l) }()
	url := "http://" + l.Addr().String()

	resp1, inFlight := postJSON(t, url+"/v1/jobs", smallGNP("finishes"))
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: status %d", resp1.StatusCode)
	}
	<-started
	resp2, queued := postJSON(t, url+"/v1/jobs", smallGNP("never-starts"))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: status %d", resp2.StatusCode)
	}

	cancel()
	waitDraining(t, s)
	if _, err := s.Submit(smallGNP("too-late")); err != ErrDraining {
		t.Errorf("submit while draining: %v, want ErrDraining", err)
	}
	close(proceed)

	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain")
	}

	fv := s.Job(inFlight.ID).View()
	if fv.State != StateDone || fv.Result == nil || fv.Result.Edges == 0 {
		t.Errorf("in-flight job should have finished complete within the grace: %+v", fv)
	}
	qv := s.Job(queued.ID).View()
	if qv.State != StateCancelled || qv.Result != nil {
		t.Errorf("queued job should have been cancelled resultless: %+v", qv)
	}
}

// A full queue sheds load with 429 + Retry-After, counted in the
// rejected metric; once the queue moves again the accepted jobs finish
// normally.
func TestServiceQueueFullReturns429(t *testing.T) {
	started := make(chan string, 8)
	proceed := make(chan struct{})
	s := New(Options{Builds: 1, QueueDepth: 1, SchedWorkers: 2})
	s.beforeBuild = func(j *Job) { started <- j.ID; <-proceed }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()

	resp1, j1 := postJSON(t, ts.URL+"/v1/jobs", smallGNP("building"))
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: status %d", resp1.StatusCode)
	}
	<-started // worker holds j1; the queue slot is free again

	resp2, j2 := postJSON(t, ts.URL+"/v1/jobs", smallGNP("queued"))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: status %d", resp2.StatusCode)
	}

	// Queue full: the third submission is shed.
	body, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"graph":{"type":"path","n":16},"eps":0.5,"kappa":3,"rho":0.49}`))
	if err != nil {
		t.Fatal(err)
	}
	defer body.Body.Close()
	if body.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 3: status %d, want 429", body.StatusCode)
	}
	if body.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	close(proceed)
	for _, id := range []string{j1.ID, j2.ID} {
		select {
		case <-s.Job(id).Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("job %s never finished", id)
		}
		if got := s.Job(id).State(); got != StateDone {
			t.Errorf("job %s finished %q, want done", id, got)
		}
	}

	metResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metResp.Body.Close()
	raw, err := io.ReadAll(metResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`spannerd_jobs_total{state="done"} 2`,
		`spannerd_jobs_total{state="rejected"} 1`,
		"spannerd_rounds_total",
		"spannerd_arena_high_water_bytes",
		"spannerd_build_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// A per-job wall-clock timeout surfaces as a structured timeout
// failure: kind "timeout", HTTP 408 on the synchronous path, job state
// failed, no result.
func TestServiceJobTimeout(t *testing.T) {
	s := New(Options{SchedWorkers: 2})
	// The timeout clock starts before this hook, so sleeping past the
	// budget guarantees the deadline has expired when the build begins.
	s.beforeBuild = func(*Job) { time.Sleep(50 * time.Millisecond) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()

	spec := smallGNP("deadline")
	spec.TimeoutMS = 10
	resp, v := postJSON(t, ts.URL+"/v1/jobs?wait=1", spec)
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("wait status %d, want 408", resp.StatusCode)
	}
	if v.State != StateFailed || v.Error == nil || v.Error.Kind != "timeout" {
		t.Fatalf("timed-out job: %+v", v)
	}
	if v.Result != nil {
		t.Errorf("timed-out job carries a result: %+v", v.Result)
	}
}

// A round budget the build cannot fit in surfaces as the typed
// budget-exhausted failure — HTTP 422 with the exhausted budget and the
// live in-flight histogram at the cut.
func TestServiceRoundBudgetExhausted(t *testing.T) {
	s := New(Options{SchedWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()

	spec := smallGNP("starved")
	spec.MaxRounds = 3
	resp, v := postJSON(t, ts.URL+"/v1/jobs?wait=1", spec)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("wait status %d, want 422", resp.StatusCode)
	}
	if v.State != StateFailed || v.Error == nil || v.Error.Kind != "budget-exhausted" {
		t.Fatalf("starved job: %+v", v)
	}
	b := v.Error.Budget
	if b == nil {
		t.Fatal("budget-exhausted error carries no budget detail")
	}
	if b.MaxRounds != 3 {
		t.Errorf("budget max_rounds %d, want 3", b.MaxRounds)
	}
	if b.Pending <= 0 && b.Active <= 0 {
		t.Errorf("budget histogram is empty at the cut: %+v", b)
	}
	if v.Result != nil {
		t.Errorf("starved job carries a result: %+v", v.Result)
	}
}

// Cancelling a queued job via DELETE means its build never starts.
func TestServiceCancelQueuedJob(t *testing.T) {
	started := make(chan string, 8)
	proceed := make(chan struct{})
	s := New(Options{Builds: 1, QueueDepth: 4, SchedWorkers: 2})
	s.beforeBuild = func(j *Job) { started <- j.ID; <-proceed }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()

	_, j1 := postJSON(t, ts.URL+"/v1/jobs", smallGNP("blocker"))
	<-started
	_, j2 := postJSON(t, ts.URL+"/v1/jobs", smallGNP("doomed"))

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j2.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}

	close(proceed)
	for _, id := range []string{j1.ID, j2.ID} {
		select {
		case <-s.Job(id).Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("job %s never finished", id)
		}
	}
	if got := s.Job(j1.ID).State(); got != StateDone {
		t.Errorf("blocker finished %q, want done", got)
	}
	v := s.Job(j2.ID).View()
	if v.State != StateCancelled || v.Result != nil || len(v.Started) != 0 {
		t.Errorf("cancelled queued job should never have started: %+v", v)
	}
}

// tinyPath is the cheapest valid workload — for tests that hammer
// Submit and never care about the build itself.
func tinyPath(name string) JobSpec {
	return JobSpec{
		Name:  name,
		Graph: GraphSpec{Type: "path", N: 16},
		Eps:   0.5, Kappa: 3, Rho: 0.49,
	}
}

// Concurrent submissions against a full queue must leave the registry
// consistent: every id in the listing resolves to a job, and the
// listing length matches the number of accepted submissions.
// Regression: the queue-full rollback used to truncate the last element
// of the order slice, which under concurrency could drop another
// submission's id — or leave a dangling id whose nil job made every
// subsequent GET /v1/jobs panic.
func TestServiceConcurrentSubmitQueueFullRegistryConsistent(t *testing.T) {
	proceed := make(chan struct{})
	s := New(Options{Builds: 1, QueueDepth: 1, SchedWorkers: 2})
	s.beforeBuild = func(*Job) { <-proceed }
	defer func() {
		close(proceed)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()

	var accepted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 16; k++ {
				if _, err := s.Submit(tinyPath("stress")); err == nil {
					accepted.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	jobs := s.Jobs()
	if int64(len(jobs)) != accepted.Load() {
		t.Errorf("listing has %d jobs, %d submissions were accepted", len(jobs), accepted.Load())
	}
	for i, j := range jobs {
		if j == nil {
			t.Fatalf("Jobs()[%d] is nil — dangling id left in the order slice", i)
		}
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("GET /v1/jobs after queue-full stress: %d", rec.Code)
	}
}

// Submissions racing a drain must never strand a job: every accepted
// job is terminal by the time Drain returns — run, or cancelled by the
// queue flush — because the draining check + enqueue and the flag-flip
// + flush are mutually exclusive. Regression: a submission could
// previously slip into the queue after the flush and sit "queued"
// forever with no worker left to serve it.
func TestServiceSubmitDrainRaceNeverStrandsJob(t *testing.T) {
	for iter := 0; iter < 25; iter++ {
		s := New(Options{Builds: 1, QueueDepth: 4, SchedWorkers: 2})

		var (
			mu       sync.Mutex
			accepted []*Job
			wg       sync.WaitGroup
		)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < 6; k++ {
					if j, err := s.Submit(tinyPath("race")); err == nil {
						mu.Lock()
						accepted = append(accepted, j)
						mu.Unlock()
					}
				}
			}()
		}

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		s.Drain(ctx)
		cancel()
		wg.Wait()

		for _, j := range accepted {
			select {
			case <-j.Done():
			default:
				t.Fatalf("iter %d: job %s stranded in state %q after drain", iter, j.ID, j.State())
			}
		}
	}
}

// An oversized upload is rejected with an explicit 413, not silently
// truncated into a confusing parse error.
func TestServiceOversizedBodyRejected(t *testing.T) {
	s := New(Options{SchedWorkers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()

	body := io.LimitReader(zeroReader{}, maxBodyBytes+1)
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs?eps=0.5&kappa=3&rho=0.49", body)
	req.Header.Set("Content-Type", "text/plain")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d, want 413 (body: %s)", rec.Code, rec.Body.String())
	}
}

// zeroReader yields '0' bytes forever — an oversized body without the
// client-side allocation.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = '0'
	}
	return len(p), nil
}

// Health flips from 200 to 503 at drain.
func TestServiceHealthz(t *testing.T) {
	s := New(Options{SchedWorkers: 2})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz before drain: %d", rec.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Drain(ctx)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while drained: %d", rec.Code)
	}
}

// A full daemon lifecycle — builds on every engine, including the
// goroutine engine's pools, on a private scheduler — must return the
// process to its baseline goroutine count after drain: no leaked
// workers, simulators, or HTTP plumbing.
func TestServiceShutdownLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()

	_, url, shutdown := startDaemon(t, Options{Builds: 2, SchedWorkers: 4})
	var wg sync.WaitGroup
	for _, engine := range []string{"sequential", "parallel", "goroutine"} {
		wg.Add(1)
		go func(engine string) {
			defer wg.Done()
			spec := smallGNP("leakcheck-" + engine)
			spec.Engine = engine
			resp, v := postJSON(t, url+"/v1/jobs?wait=1", spec)
			if resp.StatusCode != http.StatusOK || v.State != StateDone {
				t.Errorf("%s job: status %d state %q", engine, resp.StatusCode, v.State)
			}
		}(engine)
	}
	wg.Wait()
	shutdown()
	http.DefaultClient.CloseIdleConnections()

	// Goroutine teardown is asynchronous; give it a bounded settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after drain: baseline %d, now %d\n%s",
				base, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

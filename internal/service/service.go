// Package service is the long-running face of the spanner builder: a
// job daemon that accepts build submissions over HTTP, executes them on
// the shared execution runtime, streams per-step progress, and exposes
// operational state (health, Prometheus-style metrics).
//
// The lifecycle is a queue → build → drain state machine:
//
//	submit ──▶ bounded queue ──▶ worker pool ──▶ core.Build on the
//	  │   full: 429                │                shared sched runtime
//	  │   draining: 503            │ per-job ctx: wall-clock timeout +
//	  │                            │ round budget + drain force-cancel
//	  ▼                            ▼
//	registry (status, /events fan-out)        done | failed | cancelled
//
// Drain (SIGTERM) never emits a partial spanner: new submissions are
// shed with 503, queued-but-unstarted jobs are marked cancelled, and
// in-flight builds get the drain grace to finish before their contexts
// are cancelled — which the construction observes at a simulated round
// boundary, discarding the build entirely (a core.Build either returns
// a complete spanner or an error, never a prefix). Determinism is
// untouched: cancellation truncates executions, it cannot corrupt them,
// so every job that does complete is bit-identical to the same build
// run anywhere else.
package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"nearspan/internal/core"
	"nearspan/internal/delta"
	"nearspan/internal/graph"
	"nearspan/internal/oracle"
	"nearspan/internal/protocols"
	"nearspan/internal/sched"
	"nearspan/internal/store"
)

// Options configure a Server. The zero value is usable: a queue of 64,
// 2 concurrent builds, the process-wide scheduler, no default timeout,
// and a 10-second drain grace.
type Options struct {
	// QueueDepth bounds the number of accepted-but-unstarted jobs;
	// submissions beyond it are shed with 429 (<= 0 means 64).
	QueueDepth int
	// Builds bounds the number of concurrently running builds
	// (<= 0 means 2). CPU parallelism is governed by the scheduler the
	// builds share, not by this knob.
	Builds int
	// SchedWorkers, when positive, gives the server a private sched
	// runtime with that many workers, closed at drain — the
	// configuration tests use to assert a leak-free shutdown. When
	// zero, builds share the process-wide sched.Default(), which is
	// never closed.
	SchedWorkers int
	// DefaultTimeout is the per-job wall-clock limit applied when a
	// submission carries none; 0 means no default.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested per-job timeout; 0 means no cap.
	MaxTimeout time.Duration
	// DrainGrace is how long Drain lets in-flight builds run before
	// cancelling them (<= 0 means 10s). Cancellation lands at a round
	// boundary, so the post-grace tail is one round, not one build.
	DrainGrace time.Duration
	// QueryReplicas sets the per-job query pool's replica count
	// (<= 0 means GOMAXPROCS). Replica workspaces allocate lazily on
	// first query, so idle done jobs cost only the spanner itself.
	QueryReplicas int
	// QueryCacheSources bounds each job's shared source-level cache
	// (0 means the oracle default of 64; negative disables caching).
	QueryCacheSources int
	// Store, when non-nil, makes the server crash-safe: job lifecycle
	// events are journaled, completed spanners are snapshotted, and New
	// replays the journal on boot (the server reports not-ready until
	// the replay finishes). Nil means fully in-memory, as before.
	Store *store.Store

	// recoverGate, when set (tests only), holds boot-time recovery until
	// the channel is closed, so tests can observe the not-ready window.
	recoverGate chan struct{}
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Builds <= 0 {
		o.Builds = 2
	}
	if o.DrainGrace <= 0 {
		o.DrainGrace = 10 * time.Second
	}
	return o
}

// Errors the submission path reports; the HTTP layer maps them to 429
// and 503.
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrDraining  = errors.New("service: server is draining")
	// ErrNotReady sheds submissions and patches while boot-time journal
	// replay is still running (persistent servers only).
	ErrNotReady = errors.New("service: server is recovering")
	// ErrPersistence sheds submissions once the store has degraded to
	// read-only: a job whose acceptance cannot be journaled would be
	// silently lost by the next restart, so it is refused up front.
	// Queries against already-built spanners keep working.
	ErrPersistence = errors.New("service: persistence unavailable")
)

// Server is the build daemon: a bounded job queue, a worker pool
// feeding core.Build on a shared scheduler, and the job registry the
// HTTP surface reads. Construct with New, serve its Handler, and shut
// down with Drain (or let Run orchestrate both).
type Server struct {
	opts  Options
	rt    *sched.Runtime
	ownRT bool

	queue chan *Job

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // insertion order, for listing
	nextID int

	draining  atomic.Bool
	drainCh   chan struct{} // closed when drain starts: workers stop picking up jobs
	drainOnce sync.Once

	// buildCtx parents every job's build context; buildCancel is the
	// drain deadline's force-cancel.
	buildCtx    context.Context
	buildCancel context.CancelFunc

	wg  sync.WaitGroup // worker goroutines
	bg  sync.WaitGroup // boot-time recovery goroutine
	met metrics

	// st is the durable journal + snapshot store (nil = in-memory only).
	st *store.Store

	// ready flips once boot-time recovery completes (immediately for
	// in-memory servers); readyCh closes at the same moment.
	ready     atomic.Bool
	readyCh   chan struct{}
	readyOnce sync.Once

	// beforeBuild, when set (tests only), runs on the worker goroutine
	// after a job leaves the queue and before its build starts.
	beforeBuild func(*Job)
	// recoverGate mirrors Options.recoverGate (tests only).
	recoverGate chan struct{}
}

// New constructs the server and starts its workers.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		queue:   make(chan *Job, opts.QueueDepth),
		jobs:    make(map[string]*Job),
		drainCh: make(chan struct{}),
		readyCh: make(chan struct{}),
		st:      opts.Store,
	}
	s.recoverGate = opts.recoverGate
	if opts.SchedWorkers > 0 {
		s.rt = sched.New(opts.SchedWorkers)
		s.ownRT = true
	} else {
		s.rt = sched.Default()
	}
	s.buildCtx, s.buildCancel = context.WithCancel(context.Background())
	s.wg.Add(opts.Builds)
	for i := 0; i < opts.Builds; i++ {
		go s.worker()
	}
	if s.st != nil {
		// Replay off the construction path: the HTTP listener comes up
		// immediately and /readyz gates traffic until recovery is done.
		s.bg.Add(1)
		go s.recoverLoop()
	} else {
		s.markReady()
	}
	return s
}

func (s *Server) markReady() {
	s.readyOnce.Do(func() {
		s.ready.Store(true)
		close(s.readyCh)
	})
}

// Ready reports whether boot-time recovery has completed (always true
// for in-memory servers). Not-ready servers shed submissions and
// patches but still answer health and status reads.
func (s *Server) Ready() bool { return s.ready.Load() }

// WaitReady blocks until the server is ready or ctx expires.
func (s *Server) WaitReady(ctx context.Context) error {
	select {
	case <-s.readyCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit validates the spec, registers the job, and enqueues it.
// Returns ErrNotReady while boot-time recovery runs, ErrDraining once
// Drain has started, ErrQueueFull when the queue is at capacity, and a
// wrapped ErrPersistence when the acceptance cannot be journaled (the
// caller sheds load in each case); spec errors are *BadRequestError.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	// The ready check also guarantees id allocation is stable: recovery
	// is the only other writer of nextID, and it finished before ready.
	if !s.ready.Load() {
		s.met.rejected.Add(1)
		return nil, ErrNotReady
	}
	if s.draining.Load() {
		s.met.rejected.Add(1)
		return nil, ErrDraining
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	s.mu.Unlock()

	job, err := newJob(id, spec, s.opts.DefaultTimeout, s.opts.MaxTimeout, time.Now())
	if err != nil {
		return nil, &BadRequestError{Err: err}
	}

	// The draining re-check, the journal append, the enqueue, and the
	// registration share one critical section with Drain's flag-flip +
	// queue flush: a job either lands in the queue before the flush
	// starts (and the flush cancels it) or is rejected here — never
	// enqueued after the flush, where no worker would ever pick it up.
	// The capacity check precedes the journal append so a shed
	// submission never leaves a ghost "accepted" record for the next
	// boot to resurrect; the append precedes the enqueue so a job is in
	// the queue only if it exists durably. The enqueue itself cannot
	// block: capacity was just verified under s.mu, and after ready the
	// only queue senders run under s.mu.
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		s.met.rejected.Add(1)
		return nil, ErrDraining
	}
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		s.met.rejected.Add(1)
		return nil, ErrQueueFull
	}
	if err := s.journalAccepted(job); err != nil {
		s.mu.Unlock()
		s.met.rejected.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrPersistence, err)
	}
	s.queue <- job
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.mu.Unlock()
	return job, nil
}

// BadRequestError marks a submission rejected for its content (HTTP
// 400), as opposed to server state (429/503).
type BadRequestError struct{ Err error }

func (e *BadRequestError) Error() string { return e.Err.Error() }
func (e *BadRequestError) Unwrap() error { return e.Err }

// Job returns the job with the given id, or nil.
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Jobs returns every registered job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// QueueDepth returns the number of accepted-but-unstarted jobs.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// The drain check comes first so a closed drainCh wins over a
		// non-empty queue (select would otherwise pick randomly).
		select {
		case <-s.drainCh:
			return
		default:
		}
		select {
		case <-s.drainCh:
			return
		case job := <-s.queue:
			if s.draining.Load() {
				s.finishCancelled(job, "cancelled: server draining before build started")
				continue
			}
			s.runJob(job)
		}
	}
}

// runJob executes one build under the job's limits and records the
// terminal state.
func (s *Server) runJob(job *Job) {
	ctx, cancel := context.WithCancel(s.buildCtx)
	defer cancel()
	if job.setRunning(cancel, time.Now()) {
		s.finishCancelled(job, "cancelled before build started")
		return
	}
	if job.timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, job.timeout)
		defer tcancel()
	}
	s.met.active.Add(1)
	start := time.Now()
	res, err := s.executeBuild(ctx, job)
	dur := time.Since(start)
	s.met.active.Add(-1)
	s.met.buildNanos.Add(int64(dur))
	s.met.builds.Add(1)

	if err != nil {
		s.finishFailed(job, classifyErr(err))
		return
	}
	m, fp := graph.Fingerprint(res.Spanner)
	s.met.highWater(res.ArenaBytes)
	// The spanner is immutable from here on: hand it to the query tier.
	result := &JobResult{
		Edges:       m,
		TotalRounds: res.TotalRounds,
		Messages:    res.Messages,
		Fingerprint: fp,
		ArenaBytes:  res.ArenaBytes,
		BuildMS:     dur.Milliseconds(),
	}
	job.finishOK(result, s.newPool(res), res, time.Now())
	s.met.done.Add(1)
	s.persistDone(job, result, res.Spanner)
}

// executeBuild runs one build, converting a worker panic into an
// ordinary error: one poisoned job must not take the daemon (and every
// other job's spanner) down with it. The panic value and stack land in
// the job's terminal record.
func (s *Server) executeBuild(ctx context.Context, job *Job) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &buildPanicError{val: r, stack: string(debug.Stack())}
		}
	}()
	if s.beforeBuild != nil {
		s.beforeBuild(job)
	}
	return core.Build(ctx, job.g, job.p, s.buildOptions(job))
}

// finishFailed records a terminal failure in memory, in the metrics,
// and in the journal.
func (s *Server) finishFailed(job *Job, jerr *JobError) {
	job.finishErr(jerr, time.Now())
	if jerr.Kind == "cancelled" {
		s.met.cancelled.Add(1)
	} else {
		s.met.failed.Add(1)
	}
	s.persistFailed(job, jerr)
}

// buildOptions is the one place job limits and the metrics fan-out turn
// into core.Options — builds and delta rebuilds must execute under the
// same runtime, budget, and step stream. KeepRebuildState retains the
// per-phase near-neighbors tables (memory comparable to the graph) so
// every done job accepts PATCH …/edges without re-running from scratch.
func (s *Server) buildOptions(job *Job) core.Options {
	return core.Options{
		Mode:             job.mode,
		Engine:           job.engine,
		Runtime:          s.rt,
		RoundBudget:      job.Spec.MaxRounds,
		KeepRebuildState: true,
		OnStep: func(sm protocols.StepMetrics) {
			s.met.steps.Add(1)
			s.met.rounds.Add(int64(sm.Rounds))
			s.met.messages.Add(sm.Messages)
			job.fan.Emit(sm)
		},
	}
}

func (s *Server) newPool(res *core.Result) *oracle.Pool {
	return s.poolFor(res.Spanner)
}

// poolFor builds the query tier over a spanner that arrived without a
// core.Result — a snapshot reload at recovery.
func (s *Server) poolFor(spanner *graph.Graph) *oracle.Pool {
	return oracle.NewPool(spanner, oracle.PoolOptions{
		Replicas:     s.opts.QueryReplicas,
		CacheSources: s.opts.QueryCacheSources,
	})
}

// RebuildJob applies one edge-delta batch to a done job: it rebuilds
// the spanner incrementally from the job's retained state (core.Rebuild
// — bit-identical to a from-scratch build of the patched graph) and
// atomically swaps in the patched graph, the updated result document,
// and a fresh query pool. Queries in flight during the rebuild answer
// from the old snapshot; queries that start after the swap see the new
// one. Batches serialize per job; concurrent PATCHes queue.
//
// The returned *JobError (nil on success) carries the HTTP status:
// 404 while the job has no spanner, 409 when the batch disagrees with
// the current graph, 400 when it is malformed, 503 while draining.
func (s *Server) RebuildJob(job *Job, b *delta.Batch) *JobError {
	if !s.ready.Load() {
		return &JobError{Kind: "not-ready", Message: ErrNotReady.Error(), HTTPStatus: 503}
	}
	if s.draining.Load() {
		return &JobError{Kind: "draining", Message: ErrDraining.Error(), HTTPStatus: 503}
	}
	// A delta that cannot be journaled would silently vanish at the next
	// restart (replay would rebuild the pre-delta spanner), so a degraded
	// store sheds patches like it sheds submissions.
	if s.st != nil {
		if err := s.st.ReadOnly(); err != nil {
			return &JobError{Kind: "persistence", Message: fmt.Sprintf("%v: %v", ErrPersistence, err), HTTPStatus: 503}
		}
	}
	job.patchMu.Lock()
	defer job.patchMu.Unlock()

	prev := job.rebuildBase()
	if prev == nil {
		// A job restored from a snapshot carries no retained rebuild
		// state (the snapshot holds only the spanner CSR). Its first
		// patch takes the full-build path — bit-identical to the
		// incremental one — and re-establishes the state every later
		// delta chains from.
		if job.State() == StateDone {
			return s.rebuildFromScratch(job, b)
		}
		return &JobError{Kind: "not-ready", Message: "job has no spanner to patch (not finished)", HTTPStatus: 404}
	}
	// Validate up front against the graph the delta claims to patch so a
	// disagreeing batch is a clean 409, not a failed build. patchMu makes
	// the check-then-rebuild atomic: nothing else swaps the graph under us.
	g := prev.Rebuild.Graph
	if jerr := validateBatch(g, b); jerr != nil {
		return jerr
	}

	// The rebuild runs under the drain umbrella (buildCancel aborts it at
	// a round boundary) and the job's wall-clock limit, like any build.
	ctx := s.buildCtx
	if job.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, job.timeout)
		defer cancel()
	}
	s.met.active.Add(1)
	start := time.Now()
	res, err := core.Rebuild(ctx, prev, b, s.buildOptions(job))
	dur := time.Since(start)
	s.met.active.Add(-1)
	s.met.buildNanos.Add(int64(dur))
	s.met.builds.Add(1)
	s.met.rebuilds.Add(1)
	if err != nil {
		// The job keeps its current spanner; only the patch fails.
		return classifyErr(err)
	}
	if !res.Incremental {
		s.met.rebuildFallbacks.Add(1)
	}

	m, fp := graph.Fingerprint(res.Spanner)
	s.met.highWater(res.ArenaBytes)
	job.mu.Lock()
	deltas := job.result.Deltas + 1
	job.mu.Unlock()
	result := &JobResult{
		Edges:       m,
		TotalRounds: res.TotalRounds,
		Messages:    res.Messages,
		Fingerprint: fp,
		ArenaBytes:  res.ArenaBytes,
		BuildMS:     dur.Milliseconds(),
		Deltas:      deltas,
		Incremental: res.Incremental,
	}
	job.swapSpanner(res.Rebuild.Graph, result, s.newPool(res), res)
	s.persistDelta(job, b, result, res.Spanner)
	return nil
}

// validateBatch pre-checks a normalized delta against the graph it
// claims to patch, so a disagreeing batch is a clean 409, not a failed
// build.
func validateBatch(g *graph.Graph, b *delta.Batch) *JobError {
	if err := b.Normalize(g.N()); err != nil {
		return &JobError{Kind: "bad-request", Message: err.Error(), HTTPStatus: 400}
	}
	for _, e := range b.Insert {
		if g.HasEdge(int(e.U), int(e.V)) {
			return &JobError{Kind: "conflict", Message: fmt.Sprintf("insert edge {%d,%d} already present", e.U, e.V), HTTPStatus: 409}
		}
	}
	for _, e := range b.Delete {
		if !g.HasEdge(int(e.U), int(e.V)) {
			return &JobError{Kind: "conflict", Message: fmt.Sprintf("delete edge {%d,%d} not present", e.U, e.V), HTTPStatus: 409}
		}
	}
	return nil
}

// rebuildFromScratch is the patch path for a job whose rebuild state
// was lost to a restart: apply the delta to the job graph and run a
// full build of the patched graph. Determinism makes the outcome
// bit-identical to the incremental path, and KeepRebuildState means the
// job's next patch is incremental again.
func (s *Server) rebuildFromScratch(job *Job, b *delta.Batch) *JobError {
	g := job.graphSnapshot()
	if jerr := validateBatch(g, b); jerr != nil {
		return jerr
	}
	patched, err := delta.Apply(g, b)
	if err != nil {
		return &JobError{Kind: "conflict", Message: err.Error(), HTTPStatus: 409}
	}

	ctx := s.buildCtx
	if job.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, job.timeout)
		defer cancel()
	}
	s.met.active.Add(1)
	start := time.Now()
	res, err := core.Build(ctx, patched, job.p, s.buildOptions(job))
	dur := time.Since(start)
	s.met.active.Add(-1)
	s.met.buildNanos.Add(int64(dur))
	s.met.builds.Add(1)
	s.met.rebuilds.Add(1)
	s.met.rebuildFallbacks.Add(1)
	if err != nil {
		return classifyErr(err)
	}

	m, fp := graph.Fingerprint(res.Spanner)
	s.met.highWater(res.ArenaBytes)
	job.mu.Lock()
	deltas := job.result.Deltas + 1
	job.mu.Unlock()
	result := &JobResult{
		Edges:       m,
		TotalRounds: res.TotalRounds,
		Messages:    res.Messages,
		Fingerprint: fp,
		ArenaBytes:  res.ArenaBytes,
		BuildMS:     dur.Milliseconds(),
		Deltas:      deltas,
	}
	job.swapSpanner(res.Rebuild.Graph, result, s.newPool(res), res)
	s.persistDelta(job, b, result, res.Spanner)
	return nil
}

// queryPoolStats aggregates the per-job query-pool counters for
// /metrics.
func (s *Server) queryPoolStats() (agg oracle.PoolStats) {
	for _, job := range s.Jobs() {
		if pool := job.QueryPool(); pool != nil {
			st := pool.Stats()
			agg.Misses += st.Misses
			agg.SourceRuns += st.SourceRuns
			agg.Batches += st.Batches
			agg.Paths += st.Paths
			agg.CacheFills += st.CacheFills
			agg.CachedSources += st.CachedSources
		}
	}
	return agg
}

func (s *Server) finishCancelled(job *Job, msg string) {
	s.finishFailed(job, &JobError{Kind: "cancelled", Message: msg, HTTPStatus: 409})
}

// Drain shuts the server down without ever emitting a partial spanner:
// it stops accepting submissions, cancels queued-but-unstarted jobs,
// and waits for in-flight builds — until ctx expires, at which point
// their contexts are cancelled and the builds abort at the next round
// boundary (their jobs finish cancelled, resultless). Drain returns
// when every worker has exited and, if the server owns its scheduler,
// its workers are released too. It is idempotent; concurrent calls
// share one drain.
func (s *Server) Drain(ctx context.Context) {
	s.drainOnce.Do(func() {
		// The flag-flip and queue flush hold s.mu so they are atomic
		// against Submit's draining-check + enqueue: every job Submit
		// accepted is in the queue before this flush runs, so none can
		// slip in afterwards and sit unserved forever.
		s.mu.Lock()
		s.draining.Store(true)
		close(s.drainCh)

		// Flush jobs still in the queue: no build ever starts for them.
		for {
			select {
			case job := <-s.queue:
				s.finishCancelled(job, "cancelled: server draining before build started")
				continue
			default:
			}
			break
		}
		s.mu.Unlock()

		workersDone := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(workersDone)
		}()
		select {
		case <-workersDone:
		case <-ctx.Done():
			// Grace expired: force in-flight builds to their next round
			// boundary.
			s.buildCancel()
			<-workersDone
		}
		s.buildCancel()
		// Boot-time recovery may still be rebuilding a spanner on the
		// shared runtime; buildCancel has aborted it at a round boundary,
		// so this wait is bounded — and it must precede rt.Close.
		s.bg.Wait()
		if s.ownRT {
			s.rt.Close()
		}
	})
	// Late or concurrent callers still wait for the drain to finish.
	s.wg.Wait()
	s.bg.Wait()
}

// Run serves s on l until ctx is cancelled (typically by SIGTERM via
// signal.NotifyContext), then drains with the configured grace and
// shuts the HTTP listener down. It is the whole daemon lifecycle in one
// call — cmd/spannerd is little more than flags + a listener + Run.
func Run(ctx context.Context, s *Server, l net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(l) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("service: serve: %w", err)
	case <-ctx.Done():
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainGrace)
	defer cancel()
	s.Drain(drainCtx)

	// Jobs are finished; event streams have ended with them. Give the
	// HTTP layer a moment to flush, then hard-close.
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil {
		hs.Close()
	}
	<-serveErr // always http.ErrServerClosed by now
	return nil
}

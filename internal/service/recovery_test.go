package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nearspan/internal/delta"
	"nearspan/internal/store"
)

// recoverySpec is a small, fast workload the recovery tests reuse; the
// sequential engine keeps single-test wall clock low and the result is
// bit-identical across engines anyway.
var recoverySpec = JobSpec{
	Name:  "recovery-gnp-128",
	Graph: GraphSpec{Type: "gnp", N: 128, P: 12.0 / 128, Seed: 7, Connected: true},
	Eps:   1.0 / 3, Kappa: 3, Rho: 0.49,
	Mode: "distributed", Engine: "sequential",
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Fsync: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.Drain(ctx)
}

func waitTerminal(t *testing.T, job *Job) {
	t.Helper()
	select {
	case <-job.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s not terminal within 60s (state %s)", job.ID, job.State())
	}
}

func waitReady(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatalf("server never became ready: %v", err)
	}
}

// The restart round-trip: a daemon builds a spanner, applies a delta,
// sees one job fail, and is replaced by a fresh process on the same
// data directory. The successor must present the identical job registry
// — same ids, same terminal states, bit-identical fingerprints — and
// its reloaded query pool must answer.
func TestServiceRecoveryRestartRestoresJobs(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	s1 := New(Options{Builds: 1, SchedWorkers: 2, Store: st, QueryReplicas: 1})
	waitReady(t, s1)

	// Job 1: build, then one delta patch.
	job1, err := s1.Submit(recoverySpec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job1)
	if job1.State() != StateDone {
		t.Fatalf("job1 finished %q", job1.State())
	}
	batch := sampleBatch(t, job1.graphSnapshot(), 3)
	if jerr := s1.RebuildJob(job1, batch); jerr != nil {
		t.Fatalf("patch: %+v", jerr)
	}
	v1 := job1.View()

	// Job 2: exhausts its round budget — a terminal failure.
	failSpec := recoverySpec
	failSpec.MaxRounds = 1
	job2, err := s1.Submit(failSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job2)
	if job2.State() != StateFailed {
		t.Fatalf("job2 finished %q, want failed", job2.State())
	}
	drainServer(t, s1)
	st.Close()

	// Simulate a crash mid-build: an accepted record with no terminal
	// record, exactly what a SIGKILL between enqueue and completion
	// leaves behind.
	st = openStore(t, dir)
	specJSON, _ := json.Marshal(acceptedData{Spec: recoverySpec})
	if err := st.Append(store.Record{
		Type: "accepted", Job: "j000003",
		Time: time.Now().UTC().Format(time.RFC3339Nano), Data: specJSON,
	}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// The successor process.
	st = openStore(t, dir)
	defer st.Close()
	s2 := New(Options{Builds: 1, SchedWorkers: 2, Store: st, QueryReplicas: 1})
	defer drainServer(t, s2)
	waitReady(t, s2)

	// Job 1 is done again, fingerprint and delta count intact, from the
	// snapshot (no rebuild).
	r1 := s2.Job("j000001")
	if r1 == nil || r1.State() != StateDone {
		t.Fatalf("job1 after restart: %+v", r1)
	}
	rv1 := r1.View()
	if rv1.Result.Fingerprint != v1.Result.Fingerprint || rv1.Result.Edges != v1.Result.Edges {
		t.Fatalf("job1 fingerprint after restart (m=%d, %s), want (m=%d, %s)",
			rv1.Result.Edges, rv1.Result.Fingerprint, v1.Result.Edges, v1.Result.Fingerprint)
	}
	if rv1.Result.Deltas != 1 {
		t.Fatalf("job1 lost its delta count: %d", rv1.Result.Deltas)
	}
	if s2.met.recoveredSnapshot.Load() != 1 {
		t.Fatalf("recoveredSnapshot = %d, want 1", s2.met.recoveredSnapshot.Load())
	}
	if pool := r1.QueryPool(); pool == nil {
		t.Fatal("job1 has no query pool after restart")
	} else if d := pool.Dist(0, 1); d < 0 {
		t.Fatalf("restored pool answered %d", d)
	}

	// Job 2 is failed again with the journaled error.
	r2 := s2.Job("j000002")
	if r2 == nil || r2.State() != StateFailed {
		t.Fatalf("job2 after restart: %v", r2)
	}
	if rv2 := r2.View(); rv2.Error == nil || rv2.Error.Kind != "budget-exhausted" {
		t.Fatalf("job2 error after restart: %+v", r2.View().Error)
	}

	// Job 3 — interrupted — was re-enqueued and runs to the same
	// spanner job 1 originally built (same spec, deterministic build).
	r3 := s2.Job("j000003")
	if r3 == nil {
		t.Fatal("interrupted job not restored")
	}
	waitTerminal(t, r3)
	if r3.State() != StateDone {
		t.Fatalf("recovered job finished %q (%+v)", r3.State(), r3.View().Error)
	}
	// Note job1's CURRENT fingerprint reflects the delta; job3 built the
	// un-patched spec, so compare against job1's pre-delta history is
	// not available — instead require determinism directly: a second
	// restart must reload job3 from its fresh snapshot.
	fp3 := r3.View().Result.Fingerprint

	// New submissions pick up ids after the recovered ones.
	job4, err := s2.Submit(recoverySpec)
	if err != nil {
		t.Fatal(err)
	}
	if job4.ID != "j000004" {
		t.Fatalf("post-recovery id %s, want j000004", job4.ID)
	}
	waitTerminal(t, job4)
	if got := job4.View().Result.Fingerprint; got != fp3 {
		t.Fatalf("same spec built %s before restart and %s after", fp3, got)
	}
}

// A corrupt snapshot must cost a rebuild, never a wrong answer: flip
// bytes in the snapshot file, restart, and require the job back with
// the bit-identical fingerprint via the rebuild path, the corruption
// counted, and the snapshot healed for the boot after that.
func TestServiceRecoveryCorruptSnapshotRebuilds(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	s1 := New(Options{Builds: 1, SchedWorkers: 2, Store: st})
	waitReady(t, s1)
	job, err := s1.Submit(recoverySpec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	want := job.View().Result.Fingerprint
	drainServer(t, s1)
	st.Close()

	snap := filepath.Join(dir, "snapshots", "j000001.snap")
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{len(raw) / 3, len(raw) / 2, 2 * len(raw) / 3} {
		raw[i] ^= 0x55
	}
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st = openStore(t, dir)
	s2 := New(Options{Builds: 1, SchedWorkers: 2, Store: st})
	waitReady(t, s2)
	r := s2.Job("j000001")
	if r == nil || r.State() != StateDone {
		t.Fatalf("job after corrupt-snapshot restart: %v", r)
	}
	if got := r.View().Result.Fingerprint; got != want {
		t.Fatalf("rebuilt fingerprint %s, want %s", got, want)
	}
	if s2.met.snapshotCorruptions.Load() != 1 || s2.met.recoveredRebuild.Load() != 1 {
		t.Fatalf("corruptions=%d rebuilds=%d, want 1/1",
			s2.met.snapshotCorruptions.Load(), s2.met.recoveredRebuild.Load())
	}
	drainServer(t, s2)
	st.Close()

	// The rebuild re-snapshotted: the third boot loads cleanly.
	st = openStore(t, dir)
	defer st.Close()
	s3 := New(Options{Builds: 1, SchedWorkers: 2, Store: st})
	defer drainServer(t, s3)
	waitReady(t, s3)
	if s3.met.recoveredSnapshot.Load() != 1 || s3.met.snapshotCorruptions.Load() != 0 {
		t.Fatalf("healed snapshot not used: snapshot=%d corruptions=%d",
			s3.met.recoveredSnapshot.Load(), s3.met.snapshotCorruptions.Load())
	}
	drainServer(t, s3)
}

// /readyz gates traffic while recovery runs: 503 "recovering" with
// /healthz already 200, submissions and patches shed with 503, then 200
// "ready" once the (gated) replay completes.
func TestServiceReadyzGatesUntilRecovered(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	gate := make(chan struct{})
	s, url, shutdown := startDaemon(t, Options{Builds: 1, Store: st, recoverGate: gate})
	defer shutdown()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "recovering") {
		t.Fatalf("/readyz while recovering: %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while recovering: %d", code)
	}
	if resp, _ := postJSON(t, url+"/v1/jobs", recoverySpec); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while recovering: %d", resp.StatusCode)
	}
	if jerr := s.RebuildJob(&Job{}, &delta.Batch{}); jerr == nil || jerr.HTTPStatus != 503 {
		t.Fatalf("patch while recovering: %+v", jerr)
	}

	close(gate)
	waitReady(t, s)
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz after recovery: %d %q", code, body)
	}
	job, err := s.Submit(recoverySpec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	if job.State() != StateDone {
		t.Fatalf("post-ready job finished %q", job.State())
	}
}

// failAfterWriter passes writes through until the flag flips, then
// fails every write — the moment the journal device "dies".
type failAfterWriter struct {
	w    io.Writer
	dead *atomic.Bool
	err  error
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.dead.Load() {
		return 0, f.err
	}
	return f.w.Write(p)
}

// When the journal device dies mid-flight the daemon degrades instead
// of dying: submissions and patches shed with 503 + reason, while
// queries against already-built spanners keep answering.
func TestServicePersistenceErrorDegradesToReadOnly(t *testing.T) {
	var dead atomic.Bool
	injected := errors.New("journal device gone")
	st, err := store.Open(store.Options{
		Dir: t.TempDir(), Fsync: store.FsyncNever,
		WrapWriter: func(kind, name string, w io.Writer) io.Writer {
			if kind != "journal" {
				return w
			}
			return &failAfterWriter{w: w, dead: &dead, err: injected}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Options{Builds: 1, SchedWorkers: 2, Store: st})
	defer drainServer(t, s)
	waitReady(t, s)

	job, err := s.Submit(recoverySpec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	if job.State() != StateDone {
		t.Fatalf("job finished %q", job.State())
	}

	dead.Store(true)
	if _, err := s.Submit(recoverySpec); !errors.Is(err, ErrPersistence) {
		t.Fatalf("submit on dead journal returned %v, want ErrPersistence", err)
	}
	// Sticky: the device "coming back" must not revive acceptance — the
	// journal may have torn.
	dead.Store(false)
	if _, err := s.Submit(recoverySpec); !errors.Is(err, ErrPersistence) {
		t.Fatalf("submit after degrade returned %v, want ErrPersistence", err)
	}
	if jerr := s.RebuildJob(job, sampleBatch(t, job.graphSnapshot(), 2)); jerr == nil || jerr.HTTPStatus != 503 {
		t.Fatalf("patch on degraded store: %+v", jerr)
	}
	// The query tier is untouched.
	if pool := job.QueryPool(); pool == nil || pool.Dist(0, 1) < 0 {
		t.Fatal("queries stopped answering after persistence degrade")
	}
	if !s.persistSnapshotStats().readOnly {
		t.Fatal("persistence stats do not report read-only")
	}
}

// A panicking build must fail its own job — panic text in the terminal
// record — and leave the daemon serving. With a store attached, the
// failure is durable: a restart restores the same terminal state
// instead of re-running the poisoned job.
func TestServiceBuildPanicFailsJobKeepsServing(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	s := New(Options{Builds: 1, SchedWorkers: 2, Store: st})
	waitReady(t, s)
	s.beforeBuild = func(j *Job) {
		if j.Spec.Name == "poisoned" {
			panic("synthetic build bug 0xdead")
		}
	}

	bad := recoverySpec
	bad.Name = "poisoned"
	job, err := s.Submit(bad)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	if job.State() != StateFailed {
		t.Fatalf("panicked job finished %q", job.State())
	}
	v := job.View()
	if v.Error == nil || v.Error.Kind != "panic" || !strings.Contains(v.Error.Message, "synthetic build bug 0xdead") {
		t.Fatalf("panicked job error: %+v", v.Error)
	}

	// The worker survived: the next job builds normally.
	ok, err := s.Submit(recoverySpec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, ok)
	if ok.State() != StateDone {
		t.Fatalf("job after panic finished %q (%+v)", ok.State(), ok.View().Error)
	}
	drainServer(t, s)
	st.Close()

	// Restart: the panic is a journaled terminal state, not a retry loop.
	st = openStore(t, dir)
	defer st.Close()
	s2 := New(Options{Builds: 1, SchedWorkers: 2, Store: st})
	defer drainServer(t, s2)
	waitReady(t, s2)
	r := s2.Job(job.ID)
	if r == nil || r.State() != StateFailed {
		t.Fatalf("panicked job after restart: %v", r)
	}
	if rv := r.View(); rv.Error == nil || !strings.Contains(rv.Error.Message, "synthetic build bug 0xdead") {
		t.Fatalf("panic text lost across restart: %+v", r.View().Error)
	}
}

// The recovery metrics surface in the exposition text.
func TestServiceMetricsExposeRecoveryCounters(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	s1 := New(Options{Builds: 1, SchedWorkers: 2, Store: st})
	waitReady(t, s1)
	job, err := s1.Submit(recoverySpec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	drainServer(t, s1)
	st.Close()

	st = openStore(t, dir)
	defer st.Close()
	_, url, shutdown := startDaemon(t, Options{Builds: 1, Store: st})
	defer shutdown()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`spannerd_recoveries_total{kind="snapshot"} 1`,
		"spannerd_snapshot_corruptions_total 0",
		"spannerd_journal_bytes",
		"spannerd_persistence_readonly 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

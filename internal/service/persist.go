package service

import (
	"encoding/json"
	"fmt"
	"time"

	"nearspan/internal/delta"
	"nearspan/internal/graph"
	"nearspan/internal/store"
)

// The journal records job lifecycle events, inputs-first: because every
// build is deterministic, the accepted spec plus the applied delta
// batches reproduce any spanner bit-identically, so terminal records
// and snapshots are acceleration, not truth. Record types:
//
//	accepted  the validated JobSpec, written in the Submit critical
//	          section (a job exists durably iff it was accepted)
//	done      the JobResult of the first completed build; the spanner
//	          snapshot is installed before this record is appended
//	delta     one applied edge-delta batch (normalized) plus the
//	          post-rebuild JobResult; the updated snapshot precedes it
//	failed    the terminal JobError of a failed or cancelled job
//
// Replay folds these per job: accepted alone → re-enqueue; +done
// (+deltas) → reload snapshot or deterministically rebuild; +failed →
// restore the terminal error.
const (
	recAccepted = "accepted"
	recDone     = "done"
	recDelta    = "delta"
	recFailed   = "failed"
)

type acceptedData struct {
	Spec JobSpec `json:"spec"`
}

type doneData struct {
	Result *JobResult `json:"result"`
}

type failedData struct {
	Error *JobError `json:"error"`
}

type deltaData struct {
	Seq    int        `json:"seq"`
	Insert [][2]int32 `json:"insert,omitempty"`
	Delete [][2]int32 `json:"delete,omitempty"`
	Result *JobResult `json:"result"`
}

func edgePairs(es []delta.Edge) [][2]int32 {
	if len(es) == 0 {
		return nil
	}
	out := make([][2]int32, len(es))
	for i, e := range es {
		out[i] = [2]int32{e.U, e.V}
	}
	return out
}

func edgeList(ps [][2]int32) []delta.Edge {
	if len(ps) == 0 {
		return nil
	}
	out := make([]delta.Edge, len(ps))
	for i, p := range ps {
		out[i] = delta.Edge{U: p[0], V: p[1]}
	}
	return out
}

func (s *Server) appendRecord(typ, job string, at time.Time, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("service: marshal %s record: %w", typ, err)
	}
	return s.st.Append(store.Record{
		Type: typ,
		Job:  job,
		Time: at.UTC().Format(time.RFC3339Nano),
		Data: data,
	})
}

// journalAccepted durably admits a job. It runs inside Submit's
// critical section, before the enqueue: a job is in the queue only if
// its acceptance is journaled, so a crash can orphan a record (replay
// re-enqueues it) but never a job.
func (s *Server) journalAccepted(job *Job) error {
	if s.st == nil {
		return nil
	}
	return s.appendRecord(recAccepted, job.ID, job.submitted, acceptedData{Spec: job.Spec})
}

// persistDone installs the spanner snapshot, then journals the done
// record. Snapshot-first means a done record always has a snapshot to
// point at; a crash between the two leaves an accepted-only job that
// replay re-runs (overwriting the orphaned snapshot). Persistence
// errors degrade the store (future submissions shed 503) but never
// un-finish the in-memory job.
func (s *Server) persistDone(job *Job, res *JobResult, spanner *graph.Graph) {
	if s.st == nil {
		return
	}
	if err := s.st.WriteSnapshot(job.ID, res.Fingerprint, spanner); err != nil {
		return
	}
	s.appendRecord(recDone, job.ID, time.Now(), doneData{Result: res})
}

// persistFailed journals a terminal error.
func (s *Server) persistFailed(job *Job, jerr *JobError) {
	if s.st == nil {
		return
	}
	s.appendRecord(recFailed, job.ID, time.Now(), failedData{Error: jerr})
}

// persistDelta journals one applied edge-delta batch (already
// normalized by the rebuild) with the post-rebuild result, after
// installing the updated snapshot. Either write can fail without
// un-applying the in-memory rebuild; replay's fingerprint check
// reconciles a snapshot/journal mismatch by rebuilding.
func (s *Server) persistDelta(job *Job, b *delta.Batch, res *JobResult, spanner *graph.Graph) {
	if s.st == nil {
		return
	}
	if err := s.st.WriteSnapshot(job.ID, res.Fingerprint, spanner); err != nil {
		return
	}
	s.appendRecord(recDelta, job.ID, time.Now(), deltaData{
		Seq:    res.Deltas,
		Insert: edgePairs(b.Insert),
		Delete: edgePairs(b.Delete),
		Result: res,
	})
}

// persistStats is the point-in-time persistence state /metrics renders.
type persistStats struct {
	enabled      bool
	journalBytes int64
	readOnly     bool
}

func (s *Server) persistSnapshotStats() persistStats {
	if s.st == nil {
		return persistStats{}
	}
	return persistStats{
		enabled:      true,
		journalBytes: s.st.JournalBytes(),
		readOnly:     s.st.ReadOnly() != nil,
	}
}

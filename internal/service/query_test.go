package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/gen"
	"nearspan/internal/params"
)

// gnp256Spec is the golden gnp-256 workload as a job submission.
var gnp256Spec = JobSpec{
	Name:  "query-gnp-256",
	Graph: GraphSpec{Type: "gnp", N: 256, P: 16.0 / 256, Seed: 256, Connected: true},
	Eps:   1.0 / 3, Kappa: 3, Rho: 0.49,
	Mode: "distributed", Engine: "sequential",
}

// gnp256GroundTruth builds the same spanner locally through core.Build
// and returns exact BFS levels from every vertex — the ground truth the
// HTTP answers are pinned against.
func gnp256GroundTruth(t *testing.T) [][]int32 {
	t.Helper()
	g := gen.GNP(256, 16.0/256, 256, true)
	p, err := params.New(1.0/3, 3, 0.49, g.N())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Build(context.Background(), g, p,
		core.Options{Mode: core.ModeDistributed, Engine: congest.EngineSequential})
	if err != nil {
		t.Fatal(err)
	}
	ref := make([][]int32, res.Spanner.N())
	for v := range ref {
		ref[v] = res.Spanner.BFS(v)
	}
	return ref
}

// The query-tier E2E: submit the gnp-256 workload, query its spanner
// over HTTP — single GETs and an NDJSON batch POST — and pin every
// answer against a locally built ground truth, then require the query
// metrics to show up in /metrics.
func TestServiceQueryEndToEnd(t *testing.T) {
	ref := gnp256GroundTruth(t)

	_, url, shutdown := startDaemon(t, Options{Builds: 1, QueryReplicas: 2, QueryCacheSources: 8})
	defer shutdown()

	body, _ := json.Marshal(gnp256Spec)
	resp, err := http.Post(url+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || view.State != StateDone {
		t.Fatalf("job: status %d state %q (%+v)", resp.StatusCode, view.State, view.Error)
	}

	// Single queries: a pass over varied pairs, each pinned bit-identical
	// (modulo the -1 wire encoding) to the reference BFS.
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		u, v := r.Intn(256), r.Intn(256)
		qr, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/query?u=%d&v=%d", url, view.ID, u, v))
		if err != nil {
			t.Fatal(err)
		}
		var ans queryAnswer
		if err := json.NewDecoder(qr.Body).Decode(&ans); err != nil {
			t.Fatal(err)
		}
		qr.Body.Close()
		if qr.StatusCode != http.StatusOK {
			t.Fatalf("query (%d,%d): status %d", u, v, qr.StatusCode)
		}
		if ans.Dist != wireDist(ref[u][v]) {
			t.Fatalf("query (%d,%d): dist %d, ground truth %d", u, v, ans.Dist, ref[u][v])
		}
		if ans.Alpha <= 1 || ans.Beta < 1 {
			t.Fatalf("query (%d,%d): implausible guarantee (%g, %d)", u, v, ans.Alpha, ans.Beta)
		}
	}

	// Batch: NDJSON in, NDJSON out, order preserved, answers pinned.
	var in bytes.Buffer
	queries := make([][2]int, 0, 300)
	for i := 0; i < 100; i++ { // hot sources: exercises the batch BFS path
		queries = append(queries, [2]int{i % 5, r.Intn(256)})
	}
	for i := 0; i < 200; i++ {
		queries = append(queries, [2]int{r.Intn(256), r.Intn(256)})
	}
	for _, q := range queries {
		fmt.Fprintf(&in, "{\"u\":%d,\"v\":%d}\n", q[0], q[1])
	}
	br, err := http.Post(url+"/v1/jobs/"+view.ID+"/query", "application/x-ndjson", &in)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Body.Close()
	if br.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", br.StatusCode)
	}
	if ct := br.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("batch content type %q", ct)
	}
	sc := bufio.NewScanner(br.Body)
	i := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ans queryAnswer
		if err := json.Unmarshal(line, &ans); err != nil {
			t.Fatalf("batch line %d: %v", i, err)
		}
		if i >= len(queries) {
			t.Fatal("batch answered more lines than queries")
		}
		q := queries[i]
		if ans.U != q[0] || ans.V != q[1] || ans.Dist != wireDist(ref[q[0]][q[1]]) {
			t.Fatalf("batch line %d: got (%d,%d)=%d, want (%d,%d)=%d",
				i, ans.U, ans.V, ans.Dist, q[0], q[1], ref[q[0]][q[1]])
		}
		i++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(queries) {
		t.Fatalf("batch answered %d lines, want %d", i, len(queries))
	}

	// The query counters surface on /metrics: 60 single + 300 batched
	// queries, one batch, and a non-empty latency summary.
	mr, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	met, _ := io.ReadAll(mr.Body)
	for _, want := range []string{
		"spannerd_queries_total 360",
		"spannerd_query_batches_total 1",
		"spannerd_query_seconds_count 61",
		"spannerd_query_seconds{quantile=\"0.5\"}",
		"spannerd_query_seconds{quantile=\"0.99\"}",
		"spannerd_query_cache_misses_total",
		"spannerd_query_source_bfs_total",
		"spannerd_query_cached_sources",
	} {
		if !strings.Contains(string(met), want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}
}

// Querying a job that hasn't finished building is 404 — the query tier
// exists only once a spanner does — and the same URL answers 200 after
// the build completes.
func TestServiceQueryUnfinishedJob(t *testing.T) {
	started := make(chan struct{})
	proceed := make(chan struct{})
	s := New(Options{Builds: 1, SchedWorkers: 2})
	s.beforeBuild = func(*Job) { close(started); <-proceed }
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	ts := srv.URL
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()

	resp, view := postJSON(t, ts+"/v1/jobs", JobSpec{
		Graph: GraphSpec{Type: "grid", Rows: 9, Cols: 9},
		Eps:   0.5, Kappa: 3, Rho: 0.49,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	<-started // the job is mid-build: running, but no spanner yet

	qr, err := http.Get(ts + "/v1/jobs/" + view.ID + "/query?u=0&v=80")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, qr.Body)
	qr.Body.Close()
	if qr.StatusCode != http.StatusNotFound {
		t.Errorf("query mid-build: status %d, want 404", qr.StatusCode)
	}

	proceed <- struct{}{}
	job := s.Job(view.ID)
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}
	if v := job.View(); v.State != StateDone {
		t.Fatalf("job finished %q", v.State)
	}
	qr2, err := http.Get(ts + "/v1/jobs/" + view.ID + "/query?u=0&v=80")
	if err != nil {
		t.Fatal(err)
	}
	defer qr2.Body.Close()
	if qr2.StatusCode != http.StatusOK {
		t.Errorf("query after build: status %d, want 200", qr2.StatusCode)
	}
}

// Bad query requests: unknown job 404, malformed or out-of-range
// vertices 400, malformed batch lines 400.
func TestServiceQueryBadRequests(t *testing.T) {
	_, url, shutdown := startDaemon(t, Options{})
	defer shutdown()

	resp, err := http.Get(url + "/v1/jobs/j999999/query?u=0&v=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}

	body, _ := json.Marshal(JobSpec{
		Graph: GraphSpec{Type: "grid", Rows: 5, Cols: 5},
		Eps:   0.5, Kappa: 3, Rho: 0.49,
	})
	jr, err := http.Post(url+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(jr.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if view.State != StateDone {
		t.Fatalf("job finished %q", view.State)
	}

	for name, qs := range map[string]string{
		"missing u":      "v=3",
		"non-numeric":    "u=zero&v=3",
		"negative":       "u=-1&v=3",
		"v out of range": "u=0&v=25",
	} {
		qr, err := http.Get(url + "/v1/jobs/" + view.ID + "/query?" + qs)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, qr.Body)
		qr.Body.Close()
		if qr.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, qr.StatusCode)
		}
	}

	for name, in := range map[string]string{
		"garbage line":  "{\"u\":0,\"v\":1}\nnot json\n",
		"missing field": "{\"u\":0}\n",
		"out of range":  "{\"u\":0,\"v\":99}\n",
	} {
		br, err := http.Post(url+"/v1/jobs/"+view.ID+"/query", "application/x-ndjson",
			strings.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, br.Body)
		br.Body.Close()
		if br.StatusCode != http.StatusBadRequest {
			t.Errorf("batch %s: status %d, want 400", name, br.StatusCode)
		}
	}
}

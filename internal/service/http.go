package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"nearspan/internal/delta"
	"nearspan/internal/graph"
	"nearspan/internal/protocols"
)

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/jobs             submit a job (JSON spec, or a raw edge
//	                          list with parameters in the query string);
//	                          202 with the job id, 429 queue full,
//	                          503 draining, 400 bad spec, 413 oversized
//	                          body. With ?wait=1
//	                          the response blocks until the job is
//	                          terminal and carries its full document
//	                          (failed jobs answer with their structured
//	                          status — 422 budget-exhausted, 408
//	                          timeout, ...).
//	GET  /v1/jobs             list all jobs (summaries).
//	GET  /v1/jobs/{id}        one job document.
//	DELETE /v1/jobs/{id}      request cancellation.
//	GET  /v1/jobs/{id}/events stream the per-step metrics as NDJSON
//	                          (or SSE with Accept: text/event-stream):
//	                          full replay, then live until terminal,
//	                          closing with a summary record.
//	GET  /v1/jobs/{id}/query  answer one distance query (?u=&v=) from the
//	                          job's spanner; 404 until the job is done,
//	                          400 on bad or out-of-range vertices. With
//	                          ?path=1 the answer also carries one exact
//	                          shortest path in the spanner.
//	POST /v1/jobs/{id}/query  batch queries: NDJSON lines {"u":..,"v":..}
//	                          in, NDJSON answers out, grouped by source
//	                          internally so hot sources share one BFS.
//	PATCH /v1/jobs/{id}/edges apply an edge delta: NDJSON lines
//	                          {"op":"insert"|"delete","u":..,"v":..}.
//	                          The spanner is rebuilt incrementally
//	                          (bit-identical to a from-scratch build of
//	                          the patched graph) and the query pool is
//	                          swapped atomically; 200 with the updated
//	                          job document, 404 until the job is done,
//	                          409 when the delta disagrees with the
//	                          graph, 503 while draining.
//	GET  /healthz             200 ok, 503 once draining (liveness: the
//	                          process is up and not shutting down).
//	GET  /readyz              readiness: 503 "recovering" until boot-time
//	                          journal replay completes, 503 "draining"
//	                          during shutdown, else 200 "ready". Load
//	                          balancers gate traffic on this, not
//	                          /healthz — a recovering daemon is alive
//	                          but not yet serving its restored jobs.
//	GET  /metrics             Prometheus text exposition.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/query", s.handleQuery)
	mux.HandleFunc("POST /v1/jobs/{id}/query", s.handleQueryBatch)
	mux.HandleFunc("PATCH /v1/jobs/{id}/edges", s.handleEdgesPatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds submission bodies; larger uploads are rejected
// with 413 rather than silently truncated.
const maxBodyBytes = 64 << 20

// parseSubmission decodes a submission: a JSON JobSpec, or — for any
// non-JSON content type — a raw edge-list body with the spanner
// parameters in the query string (the curl-friendly upload path).
func parseSubmission(w http.ResponseWriter, r *http.Request) (JobSpec, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return JobSpec{}, fmt.Errorf("read body: %w", err)
	}
	// JSON when declared as such — or when the content type is curl's
	// default form encoding (plain `curl -d '{...}'`) and the body looks
	// like JSON. Everything else is an edge-list upload.
	ct := r.Header.Get("Content-Type")
	isJSON := strings.HasPrefix(ct, "application/json") || ct == ""
	if !isJSON && strings.HasPrefix(ct, "application/x-www-form-urlencoded") {
		trimmed := strings.TrimLeft(string(body), " \t\r\n")
		isJSON = strings.HasPrefix(trimmed, "{")
	}
	if isJSON {
		var spec JobSpec
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return JobSpec{}, fmt.Errorf("decode job spec: %w", err)
		}
		return spec, nil
	}
	q := r.URL.Query()
	spec := JobSpec{
		Name:   q.Get("name"),
		Graph:  GraphSpec{Type: "edgelist", Edges: string(body)},
		Mode:   q.Get("mode"),
		Engine: q.Get("engine"),
	}
	parse := func(key string, dst *float64) error {
		if v := q.Get(key); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("query %s: %w", key, err)
			}
			*dst = f
		}
		return nil
	}
	parseInt := func(key string, dst *int) error {
		if v := q.Get(key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("query %s: %w", key, err)
			}
			*dst = n
		}
		return nil
	}
	if err := errors.Join(
		parse("eps", &spec.Eps),
		parse("target_eps_prime", &spec.TargetEpsPrime),
		parse("rho", &spec.Rho),
		parseInt("kappa", &spec.Kappa),
		parseInt("max_rounds", &spec.MaxRounds),
	); err != nil {
		return JobSpec{}, err
	}
	if v := q.Get("timeout_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return JobSpec{}, fmt.Errorf("query timeout_ms: %w", err)
		}
		spec.TimeoutMS = ms
	}
	return spec, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := parseSubmission(w, r)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		var bad *BadRequestError
		switch {
		case errors.As(err, &bad):
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
		case errors.Is(err, ErrDraining), errors.Is(err, ErrNotReady), errors.Is(err, ErrPersistence):
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		}
		return
	}

	if r.URL.Query().Get("wait") != "" {
		select {
		case <-job.Done():
			v := job.View()
			status := http.StatusOK
			if v.Error != nil {
				status = v.Error.HTTPStatus
			}
			writeJSON(w, status, v)
		case <-r.Context().Done():
			// The client went away; the job keeps building.
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{Jobs: views})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, job.View())
}

// eventRecord is one /events line: either a step metric or the closing
// summary.
type eventRecord struct {
	Phase           int    `json:"phase"`
	Step            string `json:"step"`
	Rounds          int    `json:"rounds"`
	Messages        int64  `json:"messages"`
	MaxRoundTraffic int64  `json:"max_round_traffic"`
}

type eventFinal struct {
	Done bool    `json:"done"`
	Job  JobView `json:"job"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	flusher, _ := w.(http.Flusher)
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	// The subscriber callback runs under the fan-out lock on the build
	// goroutine; it must never block on the client. It appends into a
	// local buffer and nudges the writer loop, which drains at whatever
	// pace the connection sustains — an unbounded buffer, but bounded in
	// practice by the build's step count (a few per phase).
	var (
		bufMu  sync.Mutex
		buf    []protocols.StepMetrics
		notify = make(chan struct{}, 1)
	)
	id := job.fan.Subscribe(func(sm protocols.StepMetrics) {
		bufMu.Lock()
		buf = append(buf, sm)
		bufMu.Unlock()
		select {
		case notify <- struct{}{}:
		default:
		}
	})
	defer job.fan.Unsubscribe(id)

	enc := json.NewEncoder(w)
	writeRecord := func(v any) bool {
		if sse {
			io.WriteString(w, "data: ")
		}
		if err := enc.Encode(v); err != nil {
			return false
		}
		if sse {
			io.WriteString(w, "\n")
		}
		return true
	}
	drain := func() bool {
		bufMu.Lock()
		pending := buf
		buf = nil
		bufMu.Unlock()
		for _, sm := range pending {
			rec := eventRecord{
				Phase:           sm.Phase,
				Step:            sm.Step,
				Rounds:          sm.Rounds,
				Messages:        sm.Messages,
				MaxRoundTraffic: sm.MaxRoundTraffic,
			}
			if !writeRecord(rec) {
				return false
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	for {
		if !drain() {
			return
		}
		select {
		case <-notify:
		case <-job.Done():
			// Flush whatever raced in between the last drain and the
			// terminal state, then close with the summary.
			if !drain() {
				return
			}
			writeRecord(eventFinal{Done: true, Job: job.View()})
			if flusher != nil {
				flusher.Flush()
			}
			return
		case <-r.Context().Done():
			return
		}
	}
}

// queryAnswer is one distance answer. Dist is -1 when the endpoints are
// disconnected in the spanner; alpha and beta restate the job's
// (1+eps', beta) guarantee so a client can bound the true graph
// distance from the spanner answer. Path (with ?path=1) is one exact
// shortest route in the spanner, endpoints inclusive, absent when
// disconnected.
type queryAnswer struct {
	U     int     `json:"u"`
	V     int     `json:"v"`
	Dist  int32   `json:"dist"`
	Alpha float64 `json:"alpha,omitempty"`
	Beta  int32   `json:"beta,omitempty"`
	Path  []int32 `json:"path,omitempty"`
}

// wireDist maps graph.Infinity to the JSON-friendly -1.
func wireDist(d int32) int32 {
	if d == graph.Infinity {
		return -1
	}
	return d
}

// queryJob resolves {id} to a job with a ready query pool, writing the
// error response itself when there isn't one. Jobs that are still
// queued, building, failed, or cancelled answer 404 — the query tier
// exists only once a spanner does.
func (s *Server) queryJob(w http.ResponseWriter, r *http.Request) *Job {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return nil
	}
	if job.QueryPool() == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "job has no spanner to query (not finished)"})
		return nil
	}
	return job
}

func parseVertex(s string, key string, n int) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("query %s: %v", key, err)
	}
	if v < 0 || v >= n {
		return 0, fmt.Errorf("query %s: vertex %d out of range [0,%d)", key, v, n)
	}
	return v, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	job := s.queryJob(w, r)
	if job == nil {
		return
	}
	n := job.GraphN()
	u, err := parseVertex(r.URL.Query().Get("u"), "u", n)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	v, err := parseVertex(r.URL.Query().Get("v"), "v", n)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	start := time.Now()
	var (
		d    int32
		path []int32
	)
	if r.URL.Query().Get("path") != "" {
		path, d = job.QueryPool().Path(u, v)
	} else {
		d = job.QueryPool().Dist(u, v)
	}
	s.met.observeQuery(1, false, time.Since(start))
	alpha, beta := job.Guarantee()
	writeJSON(w, http.StatusOK, queryAnswer{U: u, V: v, Dist: wireDist(d), Alpha: alpha, Beta: beta, Path: path})
}

// handleEdgesPatch applies one NDJSON edge-delta batch to a finished
// job (see Handler's route table for the contract).
func (s *Server) handleEdgesPatch(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	var batch delta.Batch
	for line := 1; ; line++ {
		var op struct {
			Op string `json:"op"`
			U  *int32 `json:"u"`
			V  *int32 `json:"v"`
		}
		if err := dec.Decode(&op); err == io.EOF {
			break
		} else if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("op %d: %v", line, err)})
			return
		}
		if op.U == nil || op.V == nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("op %d: missing u or v", line)})
			return
		}
		e := delta.Edge{U: *op.U, V: *op.V}
		switch op.Op {
		case "insert":
			batch.Insert = append(batch.Insert, e)
		case "delete":
			batch.Delete = append(batch.Delete, e)
		default:
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("op %d: unknown op %q (want insert|delete)", line, op.Op)})
			return
		}
	}
	if batch.Size() == 0 {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "empty delta: no operations"})
		return
	}
	if jerr := s.RebuildJob(job, &batch); jerr != nil {
		writeJSON(w, jerr.HTTPStatus, apiError{Error: jerr.Message})
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	job := s.queryJob(w, r)
	if job == nil {
		return
	}
	n := job.GraphN()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	var queries [][2]int
	for line := 1; ; line++ {
		var q struct {
			U *int `json:"u"`
			V *int `json:"v"`
		}
		if err := dec.Decode(&q); err == io.EOF {
			break
		} else if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("query %d: %v", line, err)})
			return
		}
		if q.U == nil || q.V == nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("query %d: missing u or v", line)})
			return
		}
		if *q.U < 0 || *q.U >= n || *q.V < 0 || *q.V >= n {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("query %d: vertex out of range [0,%d)", line, n)})
			return
		}
		queries = append(queries, [2]int{*q.U, *q.V})
	}
	start := time.Now()
	dists := job.QueryPool().PairsBatch(queries)
	s.met.observeQuery(len(queries), true, time.Since(start))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for i, q := range queries {
		enc.Encode(queryAnswer{U: q[0], V: q[1], Dist: wireDist(dists[i])})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.Draining():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case !s.Ready():
		http.Error(w, "recovering", http.StatusServiceUnavailable)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ready\n")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.met.render(s.QueueDepth(), s.Draining(), s.queryPoolStats(), s.persistSnapshotStats()))
}

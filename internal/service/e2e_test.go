package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"

	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/params"
)

// startDaemon boots the full daemon — server, listener, Run lifecycle —
// on a random port, exactly as cmd/spannerd does, and returns its base
// URL plus a shutdown function that drains it.
func startDaemon(t *testing.T, opts Options) (*Server, string, func()) {
	t.Helper()
	if opts.SchedWorkers == 0 {
		opts.SchedWorkers = 2 // private pool so shutdown is observable
	}
	s := New(opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- Run(ctx, s, l) }()
	url := "http://" + l.Addr().String()
	shutdown := func() {
		cancel()
		select {
		case err := <-runDone:
			if err != nil {
				t.Errorf("Run: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("daemon did not shut down within 30s")
		}
	}
	return s, url, shutdown
}

func postJSON(t *testing.T, url string, spec JobSpec) (*http.Response, JobView) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil && resp.StatusCode < 300 {
		t.Fatalf("decode response: %v", err)
	}
	return resp, v
}

// The daemon E2E: submit the golden gnp-256 workload as a distributed
// job over HTTP, stream its per-step events as NDJSON, and require the
// served spanner's fingerprint to be bit-identical to the committed
// golden fixture — the proof that the service path (queue, worker,
// shared runtime, fan-out) changes nothing about what gets built.
func TestServiceE2EGoldenFingerprint(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/golden_spanners.json")
	if err != nil {
		t.Fatal(err)
	}
	var entries []struct {
		Name  string  `json:"name"`
		Algo  string  `json:"algo"`
		Eps   float64 `json:"eps"`
		Kappa int     `json:"kappa"`
		Rho   float64 `json:"rho"`
		Edges int     `json:"edges"`
		Hash  string  `json:"hash"`
	}
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatal(err)
	}
	golden := entries[0]
	for _, e := range entries {
		if e.Name == "gnp-256" && e.Algo == "paper" && e.Kappa == 3 {
			golden = e
			break
		}
	}
	if golden.Name != "gnp-256" || golden.Algo != "paper" {
		t.Fatal("golden fixture is missing the gnp-256 paper entry")
	}

	_, url, shutdown := startDaemon(t, Options{Builds: 2})
	defer shutdown()

	resp, view := postJSON(t, url+"/v1/jobs", JobSpec{
		Name:  "golden-gnp-256",
		Graph: GraphSpec{Type: "gnp", N: 256, P: 16.0 / 256, Seed: 256, Connected: true},
		Eps:   golden.Eps, Kappa: golden.Kappa, Rho: golden.Rho,
		Mode: "distributed", Engine: "parallel",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if view.State != StateQueued && view.State != StateRunning {
		t.Fatalf("submit: state %q", view.State)
	}

	// Stream the events: every step metric as one NDJSON line, then the
	// closing summary record carrying the terminal job document.
	evResp, err := http.Get(url + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	if ct := evResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type %q", ct)
	}
	var (
		steps     []eventRecord
		final     eventFinal
		sawFinal  bool
		roundsSum int
	)
	sc := bufio.NewScanner(evResp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if probe.Done {
			if err := json.Unmarshal(line, &final); err != nil {
				t.Fatal(err)
			}
			sawFinal = true
			break
		}
		var rec eventRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		steps = append(steps, rec)
		roundsSum += rec.Rounds
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawFinal {
		t.Fatal("event stream ended without the final summary record")
	}
	if len(steps) == 0 {
		t.Fatal("event stream carried no step metrics")
	}
	if final.Job.State != StateDone {
		t.Fatalf("job finished %q (error: %+v)", final.Job.State, final.Job.Error)
	}
	res := final.Job.Result
	if res == nil {
		t.Fatal("done job carries no result")
	}
	if res.Edges != golden.Edges || res.Fingerprint != golden.Hash {
		t.Errorf("served spanner drifted from the golden fixture: got (m=%d, %s), golden (m=%d, %s)",
			res.Edges, res.Fingerprint, golden.Edges, golden.Hash)
	}
	if roundsSum != res.TotalRounds {
		t.Errorf("streamed step rounds sum to %d, result reports %d", roundsSum, res.TotalRounds)
	}
	if res.ArenaBytes <= 0 {
		t.Errorf("distributed result reports arena bytes %d, want > 0", res.ArenaBytes)
	}

	// The status endpoint agrees with the stream's summary.
	st, err := http.Get(url + "/v1/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var polled JobView
	if err := json.NewDecoder(st.Body).Decode(&polled); err != nil {
		t.Fatal(err)
	}
	if polled.State != StateDone || polled.Result == nil || polled.Result.Fingerprint != res.Fingerprint {
		t.Errorf("status poll disagrees with event summary: %+v", polled)
	}
}

// Eight simultaneous jobs across all three engines, submitted over
// HTTP, must produce spanners bit-identical to the same builds run
// sequentially through core.Build — the PR 3 Concurrent suite lifted to
// the HTTP layer. Run under -race in CI.
func TestServiceConcurrentJobsBitIdenticalToSequential(t *testing.T) {
	type workload struct {
		name string
		spec GraphSpec
		g    func() *graph.Graph
		eps  float64
		kap  int
		rho  float64
	}
	workloads := []workload{
		{"grid", GraphSpec{Type: "grid", Rows: 9, Cols: 9},
			func() *graph.Graph { return gen.Grid(9, 9) }, 1.0 / 3, 3, 0.49},
		{"gnp", GraphSpec{Type: "gnp", N: 90, P: 0.12, Seed: 7, Connected: true},
			func() *graph.Graph { return gen.GNP(90, 0.12, 7, true) }, 1.0 / 3, 3, 0.49},
		{"communities", GraphSpec{Type: "communities", K: 4, CommSize: 20, PIn: 0.4, POut: 0.01, Seed: 3},
			func() *graph.Graph { return gen.Communities(4, 20, 0.4, 0.01, 3) }, 0.5, 4, 0.45},
		{"torus", GraphSpec{Type: "torus", Rows: 8, Cols: 8},
			func() *graph.Graph { return gen.Torus(8, 8) }, 0.5, 4, 0.3},
	}
	engines := congest.Engines()

	// Sequential references, one per job, via core.Build directly.
	type ref struct {
		fingerprint string
		edges       int
		rounds      int
		messages    int64
	}
	refs := make([]ref, 8)
	for i := 0; i < 8; i++ {
		wl := workloads[i%len(workloads)]
		g := wl.g()
		p, err := params.New(wl.eps, wl.kap, wl.rho, g.N())
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Build(context.Background(), g, p,
			core.Options{Mode: core.ModeDistributed, Engine: engines[i%len(engines)]})
		if err != nil {
			t.Fatal(err)
		}
		m, fp := graph.Fingerprint(res.Spanner)
		refs[i] = ref{fingerprint: fp, edges: m, rounds: res.TotalRounds, messages: res.Messages}
	}

	_, url, shutdown := startDaemon(t, Options{Builds: 4, QueueDepth: 16, SchedWorkers: 4})
	defer shutdown()

	views := make([]JobView, 8)
	statuses := make([]int, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wl := workloads[i%len(workloads)]
			spec := JobSpec{
				Name:  fmt.Sprintf("concurrent-%d", i),
				Graph: wl.spec,
				Eps:   wl.eps, Kappa: wl.kap, Rho: wl.rho,
				Mode: "distributed", Engine: engines[i%len(engines)].String(),
			}
			body, err := json.Marshal(spec)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(url+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			if err := json.NewDecoder(resp.Body).Decode(&views[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < 8; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("job %d: wait status %d (%+v)", i, statuses[i], views[i].Error)
		}
		res := views[i].Result
		if res == nil {
			t.Fatalf("job %d finished %q without result", i, views[i].State)
		}
		if res.Fingerprint != refs[i].fingerprint || res.Edges != refs[i].edges {
			t.Errorf("job %d (%s/%s): served (m=%d, %s), sequential (m=%d, %s)",
				i, views[i].Name, views[i].Engine,
				res.Edges, res.Fingerprint, refs[i].edges, refs[i].fingerprint)
		}
		if res.TotalRounds != refs[i].rounds || res.Messages != refs[i].messages {
			t.Errorf("job %d: served metrics (%d rounds, %d msgs), sequential (%d, %d)",
				i, res.TotalRounds, res.Messages, refs[i].rounds, refs[i].messages)
		}
	}
}

// A raw edge-list upload (non-JSON content type, parameters in the
// query string) builds the same spanner as the equivalent generator
// submission.
func TestServiceEdgeListUpload(t *testing.T) {
	_, url, shutdown := startDaemon(t, Options{})
	defer shutdown()

	g := gen.Grid(9, 9)
	var sb bytes.Buffer
	fmt.Fprintf(&sb, "%d %d\n", g.N(), g.M())
	g.Edges(func(u, v int) { fmt.Fprintf(&sb, "%d %d\n", u, v) })

	resp, err := http.Post(
		url+"/v1/jobs?wait=1&eps=0.3333333333333333&kappa=3&rho=0.49&engine=sequential",
		"text/plain", &sb)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || v.State != StateDone {
		t.Fatalf("upload job: status %d state %q (%+v)", resp.StatusCode, v.State, v.Error)
	}

	p, err := params.New(1.0/3, 3, 0.49, g.N())
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Build(context.Background(), g, p, core.Options{Mode: core.ModeDistributed})
	if err != nil {
		t.Fatal(err)
	}
	_, fp := graph.Fingerprint(want.Spanner)
	if v.Result == nil || v.Result.Fingerprint != fp {
		t.Errorf("uploaded-edge-list spanner differs from the direct build")
	}
}

// Bad submissions are rejected at the door with 400 and a reason;
// unknown job ids are 404.
func TestServiceBadRequests(t *testing.T) {
	_, url, shutdown := startDaemon(t, Options{})
	defer shutdown()

	for name, spec := range map[string]JobSpec{
		"unknown graph type": {Graph: GraphSpec{Type: "klein-bottle", N: 8}, Eps: 0.5, Kappa: 3, Rho: 0.49},
		"missing eps":        {Graph: GraphSpec{Type: "path", N: 8}, Kappa: 3, Rho: 0.49},
		"bad mode":           {Graph: GraphSpec{Type: "path", N: 8}, Eps: 0.5, Kappa: 3, Rho: 0.49, Mode: "quantum"},
		"bad engine":         {Graph: GraphSpec{Type: "path", N: 8}, Eps: 0.5, Kappa: 3, Rho: 0.49, Engine: "warp"},
	} {
		resp, _ := postJSON(t, url+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	resp, err := http.Get(url + "/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

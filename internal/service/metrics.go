package service

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// metrics is the server's operational counter set, exported in the
// Prometheus text exposition format by /metrics. Everything is a plain
// atomic — no client library — because the surface is a handful of
// counters and gauges and the format is trivially stable text.
type metrics struct {
	active    atomic.Int64 // builds running right now (gauge)
	done      atomic.Int64 // jobs finished with a spanner
	failed    atomic.Int64 // jobs finished with an error
	cancelled atomic.Int64 // jobs cancelled (client or drain)
	rejected  atomic.Int64 // submissions shed (queue full, draining)

	steps      atomic.Int64 // protocol steps completed
	rounds     atomic.Int64 // simulated rounds executed (rate() = rounds/sec)
	messages   atomic.Int64 // simulated messages sent
	builds     atomic.Int64 // builds attempted (duration denominator)
	buildNanos atomic.Int64 // cumulative wall-clock build time

	arenaHighWater atomic.Int64 // largest per-build arena footprint seen
}

// highWater raises the arena high-water mark to b if larger.
func (m *metrics) highWater(b int64) {
	for {
		cur := m.arenaHighWater.Load()
		if b <= cur || m.arenaHighWater.CompareAndSwap(cur, b) {
			return
		}
	}
}

// render writes the exposition text. queueDepth and draining are
// point-in-time server state supplied by the caller.
func (m *metrics) render(queueDepth int, draining bool) string {
	var sb strings.Builder
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("spannerd_queue_depth", "Accepted jobs waiting for a build worker.", int64(queueDepth))
	gauge("spannerd_active_builds", "Builds running right now.", m.active.Load())
	d := int64(0)
	if draining {
		d = 1
	}
	gauge("spannerd_draining", "1 while the server is draining.", d)

	fmt.Fprintf(&sb, "# HELP spannerd_jobs_total Jobs by terminal state.\n# TYPE spannerd_jobs_total counter\n")
	fmt.Fprintf(&sb, "spannerd_jobs_total{state=\"done\"} %d\n", m.done.Load())
	fmt.Fprintf(&sb, "spannerd_jobs_total{state=\"failed\"} %d\n", m.failed.Load())
	fmt.Fprintf(&sb, "spannerd_jobs_total{state=\"cancelled\"} %d\n", m.cancelled.Load())
	fmt.Fprintf(&sb, "spannerd_jobs_total{state=\"rejected\"} %d\n", m.rejected.Load())

	counter("spannerd_steps_total", "Protocol steps completed across all builds.", m.steps.Load())
	counter("spannerd_rounds_total", "Simulated CONGEST rounds executed (rate() gives rounds/sec).", m.rounds.Load())
	counter("spannerd_messages_total", "Simulated messages sent across all builds.", m.messages.Load())
	gauge("spannerd_arena_high_water_bytes", "Largest per-build simulator arena footprint seen.", m.arenaHighWater.Load())

	fmt.Fprintf(&sb, "# HELP spannerd_build_seconds Cumulative build wall-clock time and count.\n# TYPE spannerd_build_seconds summary\n")
	fmt.Fprintf(&sb, "spannerd_build_seconds_sum %g\n", float64(m.buildNanos.Load())/1e9)
	fmt.Fprintf(&sb, "spannerd_build_seconds_count %d\n", m.builds.Load())
	return sb.String()
}

package service

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"

	"nearspan/internal/oracle"
)

// metrics is the server's operational counter set, exported in the
// Prometheus text exposition format by /metrics. Everything is a plain
// atomic — no client library — because the surface is a handful of
// counters and gauges and the format is trivially stable text.
type metrics struct {
	active    atomic.Int64 // builds running right now (gauge)
	done      atomic.Int64 // jobs finished with a spanner
	failed    atomic.Int64 // jobs finished with an error
	cancelled atomic.Int64 // jobs cancelled (client or drain)
	rejected  atomic.Int64 // submissions shed (queue full, draining)

	steps      atomic.Int64 // protocol steps completed
	rounds     atomic.Int64 // simulated rounds executed (rate() = rounds/sec)
	messages   atomic.Int64 // simulated messages sent
	builds     atomic.Int64 // builds attempted, rebuilds included (duration denominator)
	buildNanos atomic.Int64 // cumulative wall-clock build time

	rebuilds         atomic.Int64 // PATCH edge-delta rebuilds attempted
	rebuildFallbacks atomic.Int64 // rebuilds that fell back to a full build

	recoveredSnapshot   atomic.Int64 // boot recoveries served from a verified snapshot
	recoveredRebuild    atomic.Int64 // boot recoveries that rebuilt from journaled inputs
	recoveredRequeue    atomic.Int64 // interrupted jobs re-enqueued at boot
	recoveredTerminal   atomic.Int64 // failed/cancelled jobs restored at boot
	snapshotCorruptions atomic.Int64 // snapshots that failed verification at boot

	arenaHighWater atomic.Int64 // largest per-build arena footprint seen

	queries      atomic.Int64 // distance queries answered (single + batched)
	queryBatches atomic.Int64 // batch query requests served
	queryLat     latencyHist  // per-request query latency (p50/p99)
}

// latencyHist is a log2-bucketed latency histogram: bucket i counts
// observations whose nanosecond duration has bit length i, so observe
// is two atomic adds and quantiles resolve to within a factor of two —
// the right fidelity for an operational p50/p99 at query rates where a
// lock-free histogram must cost nanoseconds, not a mutex.
type latencyHist struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [40]atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	ns := uint64(max(d.Nanoseconds(), 0))
	b := min(bits.Len64(ns), len(h.buckets)-1)
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(ns))
}

// quantileSeconds returns the q-quantile (0 < q <= 1) in seconds as the
// upper bound of the bucket holding the q-th observation, or NaN with
// no observations.
func (h *latencyHist) quantileSeconds(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			return float64(uint64(1)<<uint(i)) / 1e9
		}
	}
	return float64(uint64(1)<<uint(len(h.buckets)-1)) / 1e9
}

// observeQuery records one query request: n answered queries in d.
func (m *metrics) observeQuery(n int, batch bool, d time.Duration) {
	m.queries.Add(int64(n))
	if batch {
		m.queryBatches.Add(1)
	}
	m.queryLat.observe(d)
}

// highWater raises the arena high-water mark to b if larger.
func (m *metrics) highWater(b int64) {
	for {
		cur := m.arenaHighWater.Load()
		if b <= cur || m.arenaHighWater.CompareAndSwap(cur, b) {
			return
		}
	}
}

// render writes the exposition text. queueDepth, draining, the
// aggregated query-pool counters, and the persistence state are
// point-in-time server state supplied by the caller.
func (m *metrics) render(queueDepth int, draining bool, qp oracle.PoolStats, ps persistStats) string {
	var sb strings.Builder
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("spannerd_queue_depth", "Accepted jobs waiting for a build worker.", int64(queueDepth))
	gauge("spannerd_active_builds", "Builds running right now.", m.active.Load())
	d := int64(0)
	if draining {
		d = 1
	}
	gauge("spannerd_draining", "1 while the server is draining.", d)

	fmt.Fprintf(&sb, "# HELP spannerd_jobs_total Jobs by terminal state.\n# TYPE spannerd_jobs_total counter\n")
	fmt.Fprintf(&sb, "spannerd_jobs_total{state=\"done\"} %d\n", m.done.Load())
	fmt.Fprintf(&sb, "spannerd_jobs_total{state=\"failed\"} %d\n", m.failed.Load())
	fmt.Fprintf(&sb, "spannerd_jobs_total{state=\"cancelled\"} %d\n", m.cancelled.Load())
	fmt.Fprintf(&sb, "spannerd_jobs_total{state=\"rejected\"} %d\n", m.rejected.Load())

	counter("spannerd_steps_total", "Protocol steps completed across all builds.", m.steps.Load())
	counter("spannerd_rounds_total", "Simulated CONGEST rounds executed (rate() gives rounds/sec).", m.rounds.Load())
	counter("spannerd_messages_total", "Simulated messages sent across all builds.", m.messages.Load())
	gauge("spannerd_arena_high_water_bytes", "Largest per-build simulator arena footprint seen.", m.arenaHighWater.Load())

	fmt.Fprintf(&sb, "# HELP spannerd_build_seconds Cumulative build wall-clock time and count.\n# TYPE spannerd_build_seconds summary\n")
	fmt.Fprintf(&sb, "spannerd_build_seconds_sum %g\n", float64(m.buildNanos.Load())/1e9)
	fmt.Fprintf(&sb, "spannerd_build_seconds_count %d\n", m.builds.Load())

	counter("spannerd_rebuilds_total", "Edge-delta rebuilds attempted (PATCH .../edges).", m.rebuilds.Load())
	counter("spannerd_rebuild_fallbacks_total",
		"Delta rebuilds whose dirty frontier exceeded the threshold and fell back to a full build.",
		m.rebuildFallbacks.Load())

	// Durability: how jobs came back at the last boot, and whether the
	// store is still writable (0 = healthy, 1 = degraded read-only).
	fmt.Fprintf(&sb, "# HELP spannerd_recoveries_total Jobs recovered at boot, by mechanism.\n# TYPE spannerd_recoveries_total counter\n")
	fmt.Fprintf(&sb, "spannerd_recoveries_total{kind=\"snapshot\"} %d\n", m.recoveredSnapshot.Load())
	fmt.Fprintf(&sb, "spannerd_recoveries_total{kind=\"rebuild\"} %d\n", m.recoveredRebuild.Load())
	fmt.Fprintf(&sb, "spannerd_recoveries_total{kind=\"requeue\"} %d\n", m.recoveredRequeue.Load())
	fmt.Fprintf(&sb, "spannerd_recoveries_total{kind=\"terminal\"} %d\n", m.recoveredTerminal.Load())
	counter("spannerd_snapshot_corruptions_total",
		"Snapshots that failed checksum or fingerprint verification at boot (each cost a rebuild).",
		m.snapshotCorruptions.Load())
	if ps.enabled {
		gauge("spannerd_journal_bytes", "Size of the durable job journal.", ps.journalBytes)
		ro := int64(0)
		if ps.readOnly {
			ro = 1
		}
		gauge("spannerd_persistence_readonly", "1 once a persistence write error degraded the store (submissions shed).", ro)
	}

	// Query tier: rate(spannerd_queries_total) is the served qps; the
	// source-cache hit rate is 1 - misses/queries.
	counter("spannerd_queries_total", "Distance queries answered (single and batched).", m.queries.Load())
	counter("spannerd_query_batches_total", "Batch query requests served.", m.queryBatches.Load())
	counter("spannerd_query_cache_misses_total",
		"Point queries that missed the source cache and ran a bidirectional BFS.", qp.Misses)
	counter("spannerd_query_source_bfs_total",
		"Full single-source BFS runs in query workspaces (cache fills, Sources, batch groups).", qp.SourceRuns)
	counter("spannerd_query_paths_total", "Path queries answered (bidirectional BFS with parent tracking).", qp.Paths)
	counter("spannerd_query_cache_fills_total", "Source-cache fills across all job pools.", qp.CacheFills)
	gauge("spannerd_query_cached_sources", "Sources resident in job query caches.", int64(qp.CachedSources))
	fmt.Fprintf(&sb, "# HELP spannerd_query_seconds Query request latency (log2-bucketed quantiles).\n# TYPE spannerd_query_seconds summary\n")
	for _, q := range []float64{0.5, 0.99} {
		if v := m.queryLat.quantileSeconds(q); !math.IsNaN(v) {
			fmt.Fprintf(&sb, "spannerd_query_seconds{quantile=%q} %g\n", fmt.Sprintf("%g", q), v)
		}
	}
	fmt.Fprintf(&sb, "spannerd_query_seconds_sum %g\n", float64(m.queryLat.sumNs.Load())/1e9)
	fmt.Fprintf(&sb, "spannerd_query_seconds_count %d\n", m.queryLat.count.Load())
	return sb.String()
}

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"time"

	"nearspan/internal/core"
	"nearspan/internal/delta"
	"nearspan/internal/graph"
)

// Boot-time recovery replays the journal into live server state. The
// invariant it restores is exactly what a crash-free daemon would
// show: every accepted job reappears under its original id — done jobs
// with their spanner, result document, and query pool; failed and
// cancelled jobs with their terminal error; jobs that were queued or
// mid-build when the process died re-enter the build queue and run to
// completion. Determinism makes this sound: the journal holds only
// inputs (spec + deltas) and expected outcomes (fingerprints), and the
// construction reproduces any spanner bit-identically from its inputs,
// so even a corrupt snapshot costs a rebuild, never a wrong answer.
//
// Recovery runs on its own goroutine so the HTTP listener can come up
// immediately: /healthz answers 200 (the process is alive) while
// /readyz answers 503 until replay completes — the signal a load
// balancer uses to keep traffic off a still-recovering instance.
// Submissions and patches shed with 503 until ready; job ids are
// allocated only after the journal's id space is known.

// journaledJob is one job's folded journal history.
type journaledJob struct {
	id        string
	spec      JobSpec
	submitted time.Time
	deltas    []deltaData
	done      *JobResult
	failed    *JobError
	finished  time.Time
}

func (s *Server) recoverLoop() {
	defer s.bg.Done()
	defer s.markReady()
	if s.recoverGate != nil {
		<-s.recoverGate
	}
	s.replayJournal()
}

func (s *Server) replayJournal() {
	byID := make(map[string]*journaledJob)
	var order []*journaledJob
	maxID := 0
	for _, rec := range s.st.Recovered() {
		at, _ := time.Parse(time.RFC3339Nano, rec.Time)
		switch rec.Type {
		case recAccepted:
			var d acceptedData
			if err := json.Unmarshal(rec.Data, &d); err != nil {
				continue
			}
			jj := &journaledJob{id: rec.Job, spec: d.Spec, submitted: at}
			byID[rec.Job] = jj
			order = append(order, jj)
			var n int
			if _, err := fmt.Sscanf(rec.Job, "j%d", &n); err == nil && n > maxID {
				maxID = n
			}
		case recDone:
			var d doneData
			if jj := byID[rec.Job]; jj != nil && json.Unmarshal(rec.Data, &d) == nil && d.Result != nil {
				jj.done = d.Result
				jj.finished = at
			}
		case recDelta:
			var d deltaData
			if jj := byID[rec.Job]; jj != nil && jj.done != nil && json.Unmarshal(rec.Data, &d) == nil && d.Result != nil {
				jj.deltas = append(jj.deltas, d)
				jj.finished = at
			}
		case recFailed:
			var d failedData
			if jj := byID[rec.Job]; jj != nil && json.Unmarshal(rec.Data, &d) == nil && d.Error != nil {
				jj.failed = d.Error
				jj.finished = at
			}
		}
	}
	s.mu.Lock()
	if s.nextID < maxID {
		s.nextID = maxID
	}
	s.mu.Unlock()
	for _, jj := range order {
		s.restoreJob(jj)
	}
}

func (s *Server) restoreJob(jj *journaledJob) {
	job, err := newJob(jj.id, jj.spec, s.opts.DefaultTimeout, s.opts.MaxTimeout, jj.submitted)
	if err != nil {
		// Specs are validated before they are journaled, so this means
		// the journal predates an incompatible spec change. The job
		// cannot even materialize a graph for its view; drop it.
		return
	}
	s.mu.Lock()
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()

	switch {
	case jj.failed != nil:
		job.restoreErr(jj.failed, jj.finished)
		if jj.failed.Kind == "cancelled" {
			s.met.cancelled.Add(1)
		} else {
			s.met.failed.Add(1)
		}
		s.met.recoveredTerminal.Add(1)
	case jj.done != nil:
		s.restoreDone(job, jj)
	default:
		// Queued or mid-build at the crash: run it again. The rebuilt
		// spanner is bit-identical to what the lost build would have
		// produced, so from the client's view the job merely took
		// longer.
		s.met.recoveredRequeue.Add(1)
		s.enqueueRecovered(job)
	}
}

// restoreDone brings a completed job back: the input graph is the
// journaled spec patched by every journaled delta, and the spanner
// comes from the snapshot when it verifies — or from a deterministic
// rebuild of the journaled inputs when it does not.
func (s *Server) restoreDone(job *Job, jj *journaledJob) {
	g := job.g
	res := jj.done
	for _, d := range jj.deltas {
		batch := &delta.Batch{Insert: edgeList(d.Insert), Delete: edgeList(d.Delete)}
		patched, err := delta.Apply(g, batch)
		if err != nil {
			job.restoreErr(&JobError{
				Kind:       "error",
				Message:    fmt.Sprintf("recovery: journaled delta %d does not apply: %v", d.Seq, err),
				HTTPStatus: 500,
			}, time.Now())
			s.met.failed.Add(1)
			return
		}
		g = patched
		res = d.Result
	}

	if spanner, err := s.st.LoadSnapshot(job.ID, res.Fingerprint); err == nil {
		job.restoreDone(g, res, s.poolFor(spanner), nil, jj.finished)
		s.met.recoveredSnapshot.Add(1)
		s.met.done.Add(1)
		return
	} else if !errors.Is(err, fs.ErrNotExist) {
		// A snapshot that exists but fails checksum or fingerprint
		// verification. (A missing file is the benign crash window
		// between journal record and snapshot install, not corruption.)
		s.met.snapshotCorruptions.Add(1)
	}

	// Deterministic rebuild from the journaled inputs, verified against
	// the journaled fingerprint, then re-snapshotted so the next boot is
	// fast again.
	res2, err := core.Build(s.buildCtx, g, job.p, s.buildOptions(job))
	if err != nil {
		// Interrupted (drain during boot) or failed: leave the job
		// failed in memory but journal nothing, so the next boot
		// retries the recovery.
		job.restoreErr(classifyErr(err), time.Now())
		s.met.failed.Add(1)
		return
	}
	m, fp := graph.Fingerprint(res2.Spanner)
	if fp != res.Fingerprint || m != res.Edges {
		job.restoreErr(&JobError{
			Kind: "error",
			Message: fmt.Sprintf("recovery: rebuilt spanner is (m=%d, %s), journal records (m=%d, %s)",
				m, fp, res.Edges, res.Fingerprint),
			HTTPStatus: 500,
		}, time.Now())
		s.met.failed.Add(1)
		return
	}
	s.st.WriteSnapshot(job.ID, fp, res2.Spanner)
	job.restoreDone(g, res, s.newPool(res2), res2, jj.finished)
	s.met.recoveredRebuild.Add(1)
	s.met.done.Add(1)
}

// enqueueRecovered feeds an interrupted job back into the build queue,
// yielding to a concurrent drain exactly like Submit does.
func (s *Server) enqueueRecovered(job *Job) {
	select {
	case <-s.drainCh:
		s.finishCancelled(job, "cancelled: server draining before recovered build restarted")
		return
	default:
	}
	select {
	case s.queue <- job:
	case <-s.drainCh:
		s.finishCancelled(job, "cancelled: server draining before recovered build restarted")
	}
}

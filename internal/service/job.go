package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/oracle"
	"nearspan/internal/params"
	"nearspan/internal/protocols"
)

// GraphSpec names a workload graph: either a deterministic generator
// (type + its parameters) or an uploaded edge list. Generators keep job
// submissions tiny and reproducible — the same spec always yields the
// bit-identical graph — while "edgelist" carries arbitrary topologies.
type GraphSpec struct {
	Type      string  `json:"type"` // gnp|grid|torus|path|cycle|hypercube|tree|communities|edgelist
	N         int     `json:"n,omitempty"`
	P         float64 `json:"p,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
	Connected bool    `json:"connected,omitempty"`
	Rows      int     `json:"rows,omitempty"`
	Cols      int     `json:"cols,omitempty"`
	Dim       int     `json:"dim,omitempty"`
	K         int     `json:"k,omitempty"`
	CommSize  int     `json:"comm_size,omitempty"`
	PIn       float64 `json:"p_in,omitempty"`
	POut      float64 `json:"p_out,omitempty"`
	// Edges is the whitespace edge-list text (header "n m", one "u v"
	// line per edge) for Type "edgelist".
	Edges string `json:"edges,omitempty"`
}

// build materializes the spec into a graph.
func (gs GraphSpec) build() (*graph.Graph, error) {
	switch gs.Type {
	case "gnp":
		if gs.N <= 0 {
			return nil, fmt.Errorf("gnp needs n > 0")
		}
		return gen.StreamGNP(gs.N, gs.P, gs.Seed, gs.Connected).Graph(), nil
	case "grid":
		if gs.Rows <= 0 || gs.Cols <= 0 {
			return nil, fmt.Errorf("grid needs rows > 0 and cols > 0")
		}
		return gen.StreamGrid(gs.Rows, gs.Cols).Graph(), nil
	case "torus":
		if gs.Rows <= 0 || gs.Cols <= 0 {
			return nil, fmt.Errorf("torus needs rows > 0 and cols > 0")
		}
		return gen.StreamTorus(gs.Rows, gs.Cols).Graph(), nil
	case "path":
		if gs.N <= 0 {
			return nil, fmt.Errorf("path needs n > 0")
		}
		return gen.Path(gs.N), nil
	case "cycle":
		if gs.N <= 0 {
			return nil, fmt.Errorf("cycle needs n > 0")
		}
		return gen.Cycle(gs.N), nil
	case "hypercube":
		if gs.Dim <= 0 {
			return nil, fmt.Errorf("hypercube needs dim > 0")
		}
		return gen.Hypercube(gs.Dim), nil
	case "tree":
		if gs.N <= 0 {
			return nil, fmt.Errorf("tree needs n > 0")
		}
		return gen.RandomTree(gs.N, gs.Seed), nil
	case "communities":
		if gs.K <= 0 || gs.CommSize <= 0 {
			return nil, fmt.Errorf("communities needs k > 0 and comm_size > 0")
		}
		return gen.StreamCommunities(gs.K, gs.CommSize, gs.PIn, gs.POut, gs.Seed).Graph(), nil
	case "edgelist":
		if gs.Edges == "" {
			return nil, fmt.Errorf("edgelist needs non-empty edges text")
		}
		return graph.ReadEdgeList(strings.NewReader(gs.Edges))
	case "":
		return nil, fmt.Errorf("missing graph type")
	default:
		return nil, fmt.Errorf("unknown graph type %q", gs.Type)
	}
}

// JobSpec is one build-job submission: the graph, the spanner
// parameters, the execution mode/engine, and the job's operational
// limits. The zero limits mean the server defaults apply.
type JobSpec struct {
	Name  string    `json:"name,omitempty"`
	Graph GraphSpec `json:"graph"`

	Eps            float64 `json:"eps,omitempty"`
	TargetEpsPrime float64 `json:"target_eps_prime,omitempty"`
	Kappa          int     `json:"kappa"`
	Rho            float64 `json:"rho"`

	Mode   string `json:"mode,omitempty"`   // centralized|distributed (default distributed)
	Engine string `json:"engine,omitempty"` // sequential|parallel|goroutine (default parallel)

	// TimeoutMS bounds the job's wall-clock build time; 0 applies the
	// server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxRounds bounds the job's simulated rounds (see
	// core.Options.RoundBudget); 0 means unlimited.
	MaxRounds int `json:"max_rounds,omitempty"`
}

// Job states, in lifecycle order. Terminal states are done, failed, and
// cancelled; rejected submissions (full queue, draining) never become
// jobs at all.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobResult summarizes a completed build. Fingerprint is
// graph.Fingerprint of the spanner — two builds agree bit for bit
// exactly when their fingerprints (and edge counts) agree. After a
// PATCH …/edges rebuild the document describes the latest spanner:
// Deltas counts the applied batches, Incremental reports whether the
// last rebuild took the frontier-scoped path or fell back to a full
// build, and BuildMS is the last (re)build's wall clock.
type JobResult struct {
	Edges       int    `json:"edges"`
	TotalRounds int    `json:"total_rounds"`
	Messages    int64  `json:"messages"`
	Fingerprint string `json:"fingerprint"`
	ArenaBytes  int64  `json:"arena_bytes"`
	BuildMS     int64  `json:"build_ms"`
	Deltas      int    `json:"deltas,omitempty"`
	Incremental bool   `json:"incremental,omitempty"`
}

// JobError is the structured terminal error of a failed or cancelled
// job. Kind is one of "bad-request", "timeout", "budget-exhausted",
// "cancelled", or "error"; HTTPStatus is the status a synchronous
// response for this failure carries (4xx for client-attributable
// failures — bad specs, exhausted budgets, expired deadlines).
type JobError struct {
	Kind       string     `json:"kind"`
	Message    string     `json:"message"`
	HTTPStatus int        `json:"http_status"`
	Budget     *BudgetErr `json:"budget,omitempty"`
}

// BudgetErr mirrors congest.ErrBudgetExhausted for the wire: the
// exhausted budget plus the live in-flight histogram at the cut.
type BudgetErr struct {
	MaxRounds int            `json:"max_rounds"`
	Pending   int            `json:"pending"`
	Active    int            `json:"active"`
	ByKind    map[string]int `json:"by_kind,omitempty"`
}

// buildPanicError wraps a panic recovered from a build worker so it
// flows through the ordinary error path into a terminal job record.
type buildPanicError struct {
	val   any
	stack string
}

func (e *buildPanicError) Error() string {
	return fmt.Sprintf("build panicked: %v\n%s", e.val, e.stack)
}

// classifyErr maps a build error to its structured form.
func classifyErr(err error) *JobError {
	var be *congest.ErrBudgetExhausted
	var pe *buildPanicError
	switch {
	case errors.As(err, &pe):
		return &JobError{Kind: "panic", Message: pe.Error(), HTTPStatus: 500}
	case errors.As(err, &be):
		wire := &BudgetErr{MaxRounds: be.MaxRounds, Pending: be.Pending, Active: be.Active}
		if len(be.ByKind) > 0 {
			wire.ByKind = make(map[string]int, len(be.ByKind))
			for k, n := range be.ByKind {
				wire.ByKind[strconv.Itoa(int(k))] = n
			}
		}
		return &JobError{Kind: "budget-exhausted", Message: err.Error(), HTTPStatus: 422, Budget: wire}
	case errors.Is(err, context.DeadlineExceeded):
		return &JobError{Kind: "timeout", Message: err.Error(), HTTPStatus: 408}
	case errors.Is(err, context.Canceled):
		return &JobError{Kind: "cancelled", Message: err.Error(), HTTPStatus: 409}
	default:
		return &JobError{Kind: "error", Message: err.Error(), HTTPStatus: 500}
	}
}

// Job is one submitted build: the validated inputs, the lifecycle
// state, the per-step metrics stream (buffered for replay and fanned
// out live to /events subscribers), and the terminal result or error.
type Job struct {
	ID   string
	Spec JobSpec

	g      *graph.Graph
	p      *params.Params
	mode   core.Mode
	engine congest.Engine

	// fan carries the job's OnStep stream to any number of subscribers
	// (event streams, metrics counters); its history doubles as the
	// replay buffer for late subscribers.
	fan protocols.StepFanout

	// patchMu serializes PATCH …/edges rebuilds: one delta applies at a
	// time, and each rebuild reads the state the previous one installed.
	// It is never held while answering queries — readers see either the
	// old snapshot or the new one, swapped atomically under mu.
	patchMu sync.Mutex

	mu         sync.Mutex
	state      string
	submitted  time.Time
	started    time.Time
	finished   time.Time
	result     *JobResult
	jobErr     *JobError
	pool       *oracle.Pool // query tier over the built spanner; set with result
	buildRes   *core.Result // retained build (with rebuild state) deltas replay against
	cancel     context.CancelFunc
	done       chan struct{} // closed on terminal state
	timeout    time.Duration // resolved wall-clock limit (0 = none)
	cancelSeen bool          // a client or the drain requested cancellation
}

// newJob validates spec against the server defaults and materializes
// the graph and parameter schedule. Validation errors are reported at
// submission time (HTTP 400), not at build time.
func newJob(id string, spec JobSpec, defaultTimeout, maxTimeout time.Duration, now time.Time) (*Job, error) {
	g, err := spec.Graph.build()
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	var p *params.Params
	switch {
	case spec.TargetEpsPrime > 0:
		p, err = params.FromTarget(spec.TargetEpsPrime, spec.Kappa, spec.Rho, g.N())
	case spec.Eps > 0:
		p, err = params.New(spec.Eps, spec.Kappa, spec.Rho, g.N())
	default:
		err = fmt.Errorf("set eps or target_eps_prime")
	}
	if err != nil {
		return nil, fmt.Errorf("params: %w", err)
	}

	mode := core.ModeDistributed
	switch spec.Mode {
	case "", "distributed":
	case "centralized":
		mode = core.ModeCentralized
	default:
		return nil, fmt.Errorf("unknown mode %q (want centralized|distributed)", spec.Mode)
	}
	engine := congest.EngineParallel
	if spec.Engine != "" {
		engine, err = congest.ParseEngine(spec.Engine)
		if err != nil {
			return nil, err
		}
	}
	if spec.MaxRounds < 0 {
		return nil, fmt.Errorf("max_rounds must be >= 0")
	}
	timeout := defaultTimeout
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	if maxTimeout > 0 && (timeout <= 0 || timeout > maxTimeout) {
		timeout = maxTimeout
	}

	return &Job{
		ID:        id,
		Spec:      spec,
		g:         g,
		p:         p,
		mode:      mode,
		engine:    engine,
		state:     StateQueued,
		submitted: now,
		timeout:   timeout,
		done:      make(chan struct{}),
	}, nil
}

// Done returns the channel closed when the job reaches a terminal
// state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cancel requests cancellation: a queued job is dropped when a worker
// picks it up; a running job's build context is cancelled, aborting at
// the next round boundary.
func (j *Job) Cancel() {
	j.mu.Lock()
	j.cancelSeen = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (j *Job) setRunning(cancel context.CancelFunc, now time.Time) (alreadyCancelled bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelSeen {
		return true
	}
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	return false
}

func (j *Job) finishOK(res *JobResult, pool *oracle.Pool, build *core.Result, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.result = res
	j.pool = pool
	j.buildRes = build
	j.finished = now
	close(j.done)
}

// QueryPool returns the job's distance-query pool, or nil while the job
// has not finished with a spanner (queued, running, failed, cancelled).
// After a delta rebuild it returns the pool over the latest spanner.
func (j *Job) QueryPool() *oracle.Pool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pool
}

// restoreDone installs a recovered terminal success without touching
// the job's lifecycle channel semantics: the job looks exactly like one
// that finished before the restart, except build may be nil (snapshot
// reload) — in which case the first PATCH takes the full-build path.
func (j *Job) restoreDone(g *graph.Graph, res *JobResult, pool *oracle.Pool, build *core.Result, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.g = g
	j.state = StateDone
	j.result = res
	j.pool = pool
	j.buildRes = build
	j.finished = finished
	close(j.done)
}

// restoreErr installs a recovered terminal failure.
func (j *Job) restoreErr(jerr *JobError, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if jerr.Kind == "cancelled" {
		j.state = StateCancelled
	} else {
		j.state = StateFailed
	}
	j.jobErr = jerr
	j.finished = finished
	close(j.done)
}

// graphSnapshot reads the job's current graph pointer (swapped on
// rebuild, so the read takes the lock).
func (j *Job) graphSnapshot() *graph.Graph {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.g
}

// rebuildBase snapshots the retained build a delta replays against
// (nil until the job is done). Callers hold patchMu across the whole
// read-rebuild-swap cycle, so the snapshot cannot go stale under them.
func (j *Job) rebuildBase() *core.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.buildRes
}

// swapSpanner atomically installs a rebuilt spanner: the patched graph,
// the updated result document, the fresh query pool, and the rebuild
// state the next delta chains from. The old pool is not closed — it
// owns no goroutines, and queries in flight on it finish against their
// (still immutable) old snapshot before it is collected.
func (j *Job) swapSpanner(g *graph.Graph, res *JobResult, pool *oracle.Pool, build *core.Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.g = g
	j.result = res
	j.pool = pool
	j.buildRes = build
}

// Guarantee returns the (alpha, beta) error bound every query answer
// carries: d_G <= answer <= alpha*d_G + beta.
func (j *Job) Guarantee() (alpha float64, beta int32) {
	return 1 + j.p.EpsPrime(), j.p.BetaInt()
}

// GraphN returns the job graph's vertex count (query bounds). Deltas
// never add or remove vertices, but the graph pointer itself is swapped
// on rebuild, so the read takes the lock.
func (j *Job) GraphN() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.g.N()
}

func (j *Job) finishErr(jerr *JobError, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if jerr.Kind == "cancelled" {
		j.state = StateCancelled
	} else {
		j.state = StateFailed
	}
	j.jobErr = jerr
	j.finished = now
	close(j.done)
}

// JobView is the wire form of a job — everything a status poll needs.
type JobView struct {
	ID        string `json:"id"`
	Name      string `json:"name,omitempty"`
	State     string `json:"state"`
	GraphN    int    `json:"graph_n"`
	GraphM    int    `json:"graph_m"`
	Mode      string `json:"mode"`
	Engine    string `json:"engine"`
	Submitted string `json:"submitted_at"`
	Started   string `json:"started_at,omitempty"`
	Finished  string `json:"finished_at,omitempty"`
	StepsSeen int    `json:"steps_seen"`

	Result *JobResult `json:"result,omitempty"`
	Error  *JobError  `json:"error,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		Name:      j.Spec.Name,
		State:     j.state,
		GraphN:    j.g.N(),
		GraphM:    j.g.M(),
		Mode:      j.mode.String(),
		Engine:    j.engine.String(),
		Submitted: j.submitted.UTC().Format(time.RFC3339Nano),
		Result:    j.result,
		Error:     j.jobErr,
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	v.StepsSeen = len(j.fan.Steps())
	return v
}

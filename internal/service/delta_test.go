package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/delta"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/params"
)

// sampleBatch builds a small delta that agrees with the given graph:
// the first k sampled edges deleted, k absent pairs
// inserted. Deterministic so the test's from-scratch reference patches
// the same edges.
func sampleBatch(t *testing.T, g *graph.Graph, k int) *delta.Batch {
	t.Helper()
	b := &delta.Batch{}
	g.Edges(func(u, v int) {
		if len(b.Delete) < k && u%7 == 3 {
			b.Delete = append(b.Delete, delta.Edge{U: int32(u), V: int32(v)})
		}
	})
	for u := 0; len(b.Insert) < k; u++ {
		v := (u + 97) % g.N()
		if u != v && !g.HasEdge(u, v) {
			b.Insert = append(b.Insert, delta.Edge{U: int32(min(u, v)), V: int32(max(u, v))})
		}
	}
	if err := b.Normalize(g.N()); err != nil {
		t.Fatal(err)
	}
	return b
}

// The delta E2E: submit the gnp-256 workload, PATCH an edge delta over
// HTTP, and require (1) the rebuilt spanner's fingerprint bit-identical
// to a from-scratch core.Build of the patched graph, (2) queries on the
// swapped pool pinned to the patched ground truth, including ?path=1
// walks that are genuine spanner paths, and (3) a second chained PATCH
// behaving the same.
func TestServiceDeltaPatchEndToEnd(t *testing.T) {
	_, url, shutdown := startDaemon(t, Options{Builds: 1, QueryReplicas: 2})
	defer shutdown()

	body, _ := json.Marshal(gnp256Spec)
	resp, err := http.Post(url+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.State != StateDone {
		t.Fatalf("job finished %q (%+v)", view.State, view.Error)
	}

	g := gen.GNP(256, 16.0/256, 256, true)
	p, err := params.New(1.0/3, 3, 0.49, g.N())
	if err != nil {
		t.Fatal(err)
	}

	patch := func(b *delta.Batch) JobView {
		t.Helper()
		var in bytes.Buffer
		for _, e := range b.Insert {
			fmt.Fprintf(&in, "{\"op\":\"insert\",\"u\":%d,\"v\":%d}\n", e.U, e.V)
		}
		for _, e := range b.Delete {
			fmt.Fprintf(&in, "{\"op\":\"delete\",\"u\":%d,\"v\":%d}\n", e.U, e.V)
		}
		req, _ := http.NewRequest(http.MethodPatch, url+"/v1/jobs/"+view.ID+"/edges", &in)
		pr, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer pr.Body.Close()
		var pv JobView
		if err := json.NewDecoder(pr.Body).Decode(&pv); err != nil {
			t.Fatal(err)
		}
		if pr.StatusCode != http.StatusOK {
			t.Fatalf("PATCH: status %d (%+v)", pr.StatusCode, pv.Error)
		}
		return pv
	}

	for round := 1; round <= 2; round++ {
		b := sampleBatch(t, g, 2+round)
		pv := patch(b)

		// From-scratch reference on the patched graph.
		g2, err := delta.Apply(g, b)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := core.Build(context.Background(), g2, p,
			core.Options{Mode: core.ModeDistributed, Engine: congest.EngineSequential})
		if err != nil {
			t.Fatal(err)
		}
		m, fp := graph.Fingerprint(ref.Spanner)
		if pv.Result == nil || pv.Result.Fingerprint != fp || pv.Result.Edges != m {
			t.Fatalf("round %d: PATCH result %+v, from-scratch fingerprint %s (%d edges)",
				round, pv.Result, fp, m)
		}
		if pv.Result.Deltas != round {
			t.Errorf("round %d: deltas %d", round, pv.Result.Deltas)
		}
		if pv.GraphM != g2.M() {
			t.Errorf("round %d: graph_m %d, want %d", round, pv.GraphM, g2.M())
		}

		// Queries answer from the swapped pool: distances pinned to the
		// patched spanner, paths walk real spanner edges.
		for u := 0; u < 256; u += 37 {
			lv := ref.Spanner.BFS(u)
			v := (u + 131) % 256
			qr, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/query?u=%d&v=%d&path=1", url, view.ID, u, v))
			if err != nil {
				t.Fatal(err)
			}
			var ans queryAnswer
			if err := json.NewDecoder(qr.Body).Decode(&ans); err != nil {
				t.Fatal(err)
			}
			qr.Body.Close()
			if ans.Dist != wireDist(lv[v]) {
				t.Fatalf("round %d: query (%d,%d)=%d, patched ground truth %d", round, u, v, ans.Dist, lv[v])
			}
			if ans.Dist >= 0 {
				if len(ans.Path) != int(ans.Dist)+1 || ans.Path[0] != int32(u) || ans.Path[len(ans.Path)-1] != int32(v) {
					t.Fatalf("round %d: query (%d,%d) path %v for dist %d", round, u, v, ans.Path, ans.Dist)
				}
				for i := 1; i < len(ans.Path); i++ {
					if !ref.Spanner.HasEdge(int(ans.Path[i-1]), int(ans.Path[i])) {
						t.Fatalf("round %d: path step %d-%d not a spanner edge", round, ans.Path[i-1], ans.Path[i])
					}
				}
			}
		}
		g = g2 // next round chains on the patched graph
	}

	// Rebuild counters surface on /metrics.
	mr, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	met, _ := io.ReadAll(mr.Body)
	if !strings.Contains(string(met), "spannerd_rebuilds_total 2") {
		t.Errorf("/metrics is missing spannerd_rebuilds_total 2")
	}
}

// PATCH error contract: unknown job 404, malformed NDJSON / empty batch
// 400, and a delta that disagrees with the graph 409 — which must leave
// the job's spanner untouched.
func TestServiceDeltaPatchBadRequests(t *testing.T) {
	_, url, shutdown := startDaemon(t, Options{})
	defer shutdown()

	do := func(id, body string) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPatch, url+"/v1/jobs/"+id+"/edges", strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := do("j999999", "{\"op\":\"insert\",\"u\":0,\"v\":1}\n"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}

	body, _ := json.Marshal(JobSpec{
		Graph: GraphSpec{Type: "grid", Rows: 5, Cols: 5},
		Eps:   0.5, Kappa: 3, Rho: 0.49,
	})
	jr, err := http.Post(url+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(jr.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if view.State != StateDone {
		t.Fatalf("job finished %q", view.State)
	}
	before := view.Result.Fingerprint

	for name, c := range map[string]struct {
		body string
		want int
	}{
		"garbage":        {"not json\n", http.StatusBadRequest},
		"missing v":      {"{\"op\":\"insert\",\"u\":0}\n", http.StatusBadRequest},
		"unknown op":     {"{\"op\":\"toggle\",\"u\":0,\"v\":2}\n", http.StatusBadRequest},
		"empty":          {"", http.StatusBadRequest},
		"out of range":   {"{\"op\":\"insert\",\"u\":0,\"v\":99}\n", http.StatusBadRequest},
		"self-loop":      {"{\"op\":\"insert\",\"u\":3,\"v\":3}\n", http.StatusBadRequest},
		"insert present": {"{\"op\":\"insert\",\"u\":0,\"v\":1}\n", http.StatusConflict},
		"delete absent":  {"{\"op\":\"delete\",\"u\":0,\"v\":24}\n", http.StatusConflict},
		"insert+delete":  {"{\"op\":\"insert\",\"u\":0,\"v\":7}\n{\"op\":\"delete\",\"u\":0,\"v\":7}\n", http.StatusBadRequest},
	} {
		if code := do(view.ID, c.body); code != c.want {
			t.Errorf("%s: status %d, want %d", name, code, c.want)
		}
	}

	// Every rejected patch left the spanner untouched.
	sr, err := http.Get(url + "/v1/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var after JobView
	if err := json.NewDecoder(sr.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	if after.Result.Fingerprint != before || after.Result.Deltas != 0 {
		t.Errorf("rejected patches mutated the job: %+v", after.Result)
	}
}

// The swap race: goroutines hammer the job's query pool while the main
// goroutine applies a chain of edge deltas. Under -race this pins the
// atomicity of the pool swap; functionally, every answer must equal the
// queried pair's distance in one of the chain's spanner snapshots —
// in-flight queries finish on the old snapshot, new ones see the new.
func TestServiceDeltaQueryDuringSwapRace(t *testing.T) {
	s := New(Options{Builds: 1, SchedWorkers: 2, QueryReplicas: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()

	job, err := s.Submit(JobSpec{
		Graph: GraphSpec{Type: "gnp", N: 200, P: 0.06, Seed: 9, Connected: true},
		Eps:   1.0 / 3, Kappa: 3, Rho: 0.49,
		Mode: "centralized",
	})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if st := job.State(); st != StateDone {
		t.Fatalf("job finished %q", st)
	}
	p, err := params.New(1.0/3, 3, 0.49, 200)
	if err != nil {
		t.Fatal(err)
	}

	const u, v = 3, 190
	// valid accumulates the u-v spanner distance of every snapshot in the
	// chain — each added BEFORE its swap, so whichever pool a hammer
	// goroutine lands on, its answer is already in the set.
	valid := map[int32]bool{job.QueryPool().Dist(u, v): true}
	var validMu sync.Mutex

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d := job.QueryPool().Dist(u, v)
				validMu.Lock()
				ok := valid[d]
				validMu.Unlock()
				if !ok {
					t.Errorf("query answered %d: not the distance of any snapshot", d)
					return
				}
			}
		}()
	}

	g := job.rebuildBase().Rebuild.Graph
	for step := 0; step < 6; step++ {
		b := sampleBatch(t, g, 2)
		g2, err := delta.Apply(g, b)
		if err != nil {
			t.Fatal(err)
		}
		// The rebuild is bit-identical to a from-scratch build on the
		// patched graph, so the reference spanner gives the next snapshot's
		// exact answer.
		ref, err := core.Build(context.Background(), g2, p, core.Options{Mode: core.ModeCentralized})
		if err != nil {
			t.Fatal(err)
		}
		validMu.Lock()
		valid[ref.Spanner.BFS(u)[v]] = true
		validMu.Unlock()
		if jerr := s.RebuildJob(job, b); jerr != nil {
			t.Fatalf("step %d: %+v", step, jerr)
		}
		g = g2
	}
	close(stop)
	wg.Wait()
}

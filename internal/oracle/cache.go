package oracle

import (
	"sync"
	"sync/atomic"
)

// sourceCache is the pool's shared source-level cache: one slot per
// vertex, directly indexed, so the hot read path is a single atomic
// pointer load — no hashing, no locks, no recency bookkeeping. Slots
// are filled at most once (sync.Once per slot), admission is bounded by
// a global capacity, and filled slots are never evicted: the spanner is
// immutable, so cached levels can never go stale. Sources that miss the
// capacity bound are simply computed in a replica workspace instead.
type sourceCache struct {
	slots    []cslot
	admitted atomic.Int32
	capacity int32
	fills    atomic.Int64
}

type cslot struct {
	once   sync.Once
	levels atomic.Pointer[[]int32]
}

// newSourceCache returns a cache over n vertices admitting at most
// capacity sources; capacity <= 0 disables caching entirely.
func newSourceCache(n, capacity int) *sourceCache {
	c := &sourceCache{capacity: int32(capacity)}
	if capacity > 0 {
		c.slots = make([]cslot, n)
	}
	return c
}

// get returns u's cached levels or nil. Lock-free: an atomic load plus
// a nil check.
func (c *sourceCache) get(u int) []int32 {
	if c.slots == nil {
		return nil
	}
	if p := c.slots[u].levels.Load(); p != nil {
		return *p
	}
	return nil
}

// fill admits u if capacity remains, computing its levels exactly once
// across concurrent callers (losers of the race block on the winner's
// sync.Once rather than duplicating the BFS). Returns the cached
// levels, or nil if u was not admitted — the caller then answers from
// its own workspace.
func (c *sourceCache) fill(u int, compute func(int) []int32) []int32 {
	if c.slots == nil {
		return nil
	}
	s := &c.slots[u]
	if p := s.levels.Load(); p != nil {
		return *p
	}
	if c.admitted.Load() >= c.capacity {
		return nil
	}
	s.once.Do(func() {
		// Re-check under the once: concurrent fills of distinct sources
		// race for the last capacity slots.
		if c.admitted.Add(1) > c.capacity {
			c.admitted.Add(-1)
			return
		}
		lv := compute(u)
		c.fills.Add(1)
		s.levels.Store(&lv)
	})
	if p := s.levels.Load(); p != nil {
		return *p
	}
	return nil
}

// cached returns the number of sources currently admitted.
func (c *sourceCache) cached() int {
	return int(c.admitted.Load())
}

package oracle

import (
	"sync"

	"nearspan/internal/graph"
)

// stamped is a dense level array with generation stamps: reset is O(1)
// (bump the generation), a slot whose stamp is stale reads as
// graph.Infinity. This replaces per-query map[int]int32 visited sets —
// after warmup a traversal touches only preallocated flat arrays.
type stamped struct {
	dist []int32
	gen  []uint32
	cur  uint32
}

func (s *stamped) init(n int) {
	s.dist = make([]int32, n)
	s.gen = make([]uint32, n)
	s.cur = 0
}

// reset invalidates every slot in O(1). On the (rare) generation wrap
// the stamp array is cleared so stale stamps can never alias the new
// generation.
func (s *stamped) reset() {
	s.cur++
	if s.cur == 0 {
		clear(s.gen)
		s.cur = 1
	}
}

// get returns the level of v in the current generation, or
// graph.Infinity if v was not reached.
func (s *stamped) get(v int32) int32 {
	if s.gen[v] != s.cur {
		return graph.Infinity
	}
	return s.dist[v]
}

func (s *stamped) set(v, d int32) {
	s.gen[v] = s.cur
	s.dist[v] = d
}

// replica is one BFS workspace over the shared immutable spanner CSR.
// The spanner itself is read lock-free by any number of replicas; the
// mutable state (two stamped level arrays and two frontier queues, all
// preallocated to n) belongs to exactly one query at a time, guarded by
// mu. After the lazy first-use allocation a query performs zero heap
// allocations.
type replica struct {
	mu sync.Mutex
	g  *graph.Graph

	fwd, bwd stamped // forward / backward level arrays
	qf, qb   []int32 // frontier queues (head-indexed, capacity n)
	// Parent vertices, parallel to fwd/bwd and validated by the same
	// generation stamps: pf[w] is the vertex that labeled w in the
	// forward expansion, pb[w] in the backward one. Recorded on every
	// label (one extra store) so any bidi run can reconstruct the route.
	pf, pb []int32
	ready  bool
}

// ensure performs the one-time workspace allocation. Deferred to first
// use so pools attached to every completed build job cost nothing until
// queried.
func (r *replica) ensure() {
	if r.ready {
		return
	}
	n := r.g.N()
	r.fwd.init(n)
	r.bwd.init(n)
	r.qf = make([]int32, 0, n)
	r.qb = make([]int32, 0, n)
	r.pf = make([]int32, n)
	r.pb = make([]int32, n)
	r.ready = true
}

// bfsFull runs a full single-source BFS from src into the fwd
// workspace; answers are read back through fwd.get (Infinity for
// unreached vertices).
func (r *replica) bfsFull(src int) {
	r.ensure()
	r.fwd.reset()
	q := r.qf[:0]
	r.fwd.set(int32(src), 0)
	q = append(q, int32(src))
	for head := 0; head < len(q); head++ {
		v := q[head]
		dv := r.fwd.dist[v]
		for _, w := range r.g.Neighbors(int(v)) {
			if r.fwd.gen[w] != r.fwd.cur {
				r.fwd.set(w, dv+1)
				q = append(q, w)
			}
		}
	}
	r.qf = q[:0]
}

// materialize copies the fwd workspace of the last bfsFull into a fresh
// dense level slice (Infinity for unreached vertices) — the cache-fill
// and Sources copy-out path.
func (r *replica) materialize() []int32 {
	out := make([]int32, r.g.N())
	for v := range out {
		out[v] = r.fwd.get(int32(v))
	}
	return out
}

// bidi returns the exact spanner BFS distance between u and v via
// bidirectional level-by-level expansion: the smaller frontier expands
// one full level at a time, and a vertex receiving its second label
// yields the candidate distA+distB. Once best <= depthA+depthB the
// candidate is exact: any shorter path would have a midpoint already
// labeled by both sides. Point queries explore O(sqrt) of what a full
// BFS touches on expander-like spanners, and answers are bit-identical
// to fwd-BFS levels (both are the exact distance in the spanner).
func (r *replica) bidi(u, v int) int32 {
	d, _ := r.bidiMeet(u, v)
	return d
}

// bidiMeet is the bidirectional expansion; it additionally returns the
// meeting vertex of the best candidate (-1 when disconnected or u == v),
// from which path reconstructs the route via the recorded parents.
func (r *replica) bidiMeet(u, v int) (int32, int32) {
	if u == v {
		return 0, -1
	}
	r.ensure()
	r.fwd.reset()
	r.bwd.reset()
	qf, qb := r.qf[:0], r.qb[:0]
	r.fwd.set(int32(u), 0)
	qf = append(qf, int32(u))
	r.bwd.set(int32(v), 0)
	qb = append(qb, int32(v))
	fStart, bStart := 0, 0 // current level = q[start:len]
	df, db := int32(0), int32(0)
	best := graph.Infinity
	meet := int32(-1)
	for fStart < len(qf) && bStart < len(qb) && best > df+db {
		if len(qf)-fStart <= len(qb)-bStart {
			end := len(qf)
			for i := fStart; i < end; i++ {
				x := qf[i]
				for _, w := range r.g.Neighbors(int(x)) {
					if r.fwd.gen[w] != r.fwd.cur {
						r.fwd.set(w, df+1)
						r.pf[w] = x
						qf = append(qf, w)
						if r.bwd.gen[w] == r.bwd.cur {
							if c := df + 1 + r.bwd.dist[w]; c < best {
								best = c
								meet = w
							}
						}
					}
				}
			}
			fStart = end
			df++
		} else {
			end := len(qb)
			for i := bStart; i < end; i++ {
				x := qb[i]
				for _, w := range r.g.Neighbors(int(x)) {
					if r.bwd.gen[w] != r.bwd.cur {
						r.bwd.set(w, db+1)
						r.pb[w] = x
						qb = append(qb, w)
						if r.fwd.gen[w] == r.fwd.cur {
							if c := db + 1 + r.fwd.dist[w]; c < best {
								best = c
								meet = w
							}
						}
					}
				}
			}
			bStart = end
			db++
		}
	}
	r.qf, r.qb = qf[:0], qb[:0]
	if best == graph.Infinity {
		meet = -1
	}
	return best, meet
}

// path returns one exact shortest u–v path in the spanner (inclusive of
// both endpoints, len = dist+1) and its length, reconstructed from the
// parents of a bidirectional run: forward parents walk the meet vertex
// back to u, backward parents walk it on to v. A nil path means the
// endpoints are disconnected.
func (r *replica) path(u, v int) ([]int32, int32) {
	if u == v {
		return []int32{int32(u)}, 0
	}
	d, meet := r.bidiMeet(u, v)
	if d == graph.Infinity {
		return nil, d
	}
	rev := make([]int32, 0, d)
	for x := meet; x != int32(u); x = r.pf[x] {
		rev = append(rev, x)
	}
	path := make([]int32, 0, d+1)
	path = append(path, int32(u))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	for x := meet; x != int32(v); {
		x = r.pb[x]
		path = append(path, x)
	}
	return path, d
}

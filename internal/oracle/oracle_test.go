package oracle

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"nearspan/internal/core"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/params"
)

func newTestOracle(t *testing.T) (*Oracle, *graph.Graph) {
	t.Helper()
	g := gen.GNP(200, 0.06, 11, true)
	o, err := New(g, Options{Eps: 1.0 / 3, Kappa: 3, Rho: 0.49})
	if err != nil {
		t.Fatal(err)
	}
	return o, g
}

func TestOracleGuarantee(t *testing.T) {
	o, g := newTestOracle(t)
	alpha, beta := o.Guarantee()
	for u := 0; u < g.N(); u += 7 {
		exact := g.BFS(u)
		approx := o.Sources(u)
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			if approx[v] < exact[v] {
				t.Fatalf("oracle underestimates %d-%d: %d < %d", u, v, approx[v], exact[v])
			}
			if float64(approx[v]) > alpha*float64(exact[v])+float64(beta) {
				t.Fatalf("oracle violates guarantee at %d-%d: %d vs (%.2f, %d) of %d",
					u, v, approx[v], alpha, beta, exact[v])
			}
		}
	}
}

func TestOracleDistMatchesSources(t *testing.T) {
	o, g := newTestOracle(t)
	lv := o.Sources(3)
	for v := 0; v < g.N(); v += 11 {
		if o.Dist(3, v) != lv[v] {
			t.Errorf("Dist(3,%d)=%d, Sources=%d", v, o.Dist(3, v), lv[v])
		}
	}
}

func TestOraclePairsBatch(t *testing.T) {
	o, g := newTestOracle(t)
	queries := [][2]int{{0, 5}, {0, 9}, {17, 3}, {0, 5}, {17, 100 % g.N()}}
	got := o.Pairs(queries)
	for i, q := range queries {
		if want := o.Dist(q[0], q[1]); got[i] != want {
			t.Errorf("query %v: %d, want %d", q, got[i], want)
		}
	}
}

func TestOracleCacheEviction(t *testing.T) {
	g := gen.Grid(8, 8)
	o, err := New(g, Options{Eps: 0.5, Kappa: 4, Rho: 0.45, CacheSources: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Touch more sources than the cache holds; answers stay correct.
	for src := 0; src < 10; src++ {
		d := o.Dist(src, 63)
		if d < g.Distance(src, 63) {
			t.Fatalf("underestimate after eviction: src %d", src)
		}
	}
	if len(o.cache) > 2 {
		t.Errorf("cache grew to %d entries, capacity 2", len(o.cache))
	}
}

// The cache is LRU, not FIFO: re-querying a resident source refreshes
// it, so the next eviction removes the colder entry.
func TestOracleCacheLRU(t *testing.T) {
	g := gen.Grid(8, 8)
	o, err := New(g, Options{Eps: 0.5, Kappa: 4, Rho: 0.45, CacheSources: 2})
	if err != nil {
		t.Fatal(err)
	}
	o.Dist(0, 63) // cache: [0]
	o.Dist(1, 63) // cache: [0, 1]
	o.Dist(0, 63) // hit refreshes 0 -> cache: [1, 0]
	o.Dist(2, 63) // evicts 1, not 0 -> cache: [0, 2]
	if _, ok := o.cache[0]; !ok {
		t.Error("LRU evicted the recently touched source 0")
	}
	if _, ok := o.cache[1]; ok {
		t.Error("LRU kept the least recently used source 1")
	}
	if _, ok := o.cache[2]; !ok {
		t.Error("newly queried source 2 not cached")
	}
	// Answers stay correct throughout.
	if o.Dist(1, 63) < g.Distance(1, 63) {
		t.Error("underestimate after LRU churn")
	}
}

func TestOracleFromSpanner(t *testing.T) {
	g := gen.Torus(8, 8)
	p, err := params.New(0.5, 4, 0.45, g.N())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Build(context.Background(), g, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := FromSpanner(g, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	if o.Dist(0, 36) < g.Distance(0, 36) {
		t.Error("FromSpanner oracle underestimates")
	}
	// Mismatched graph rejected.
	if _, err := FromSpanner(gen.Path(5), res, 4); err == nil {
		t.Error("graph/spanner size mismatch accepted")
	}
}

func TestOracleCloneIndependentCache(t *testing.T) {
	o, _ := newTestOracle(t)
	c := o.Clone()
	_ = o.Dist(0, 1)
	if len(c.cache) != 0 {
		t.Error("clone shares cache state")
	}
	if c.Dist(0, 1) != o.Dist(0, 1) {
		t.Error("clone answers differ")
	}
}

func TestOracleEdgeSavings(t *testing.T) {
	o, g := newTestOracle(t)
	if o.EdgeSavings() != g.M()-o.Spanner().M() {
		t.Error("EdgeSavings inconsistent")
	}
	if o.EdgeSavings() <= 0 {
		t.Error("expected savings on a dense graph")
	}
}

// Property: oracle answers are sandwiched between the exact distance and
// the guarantee for random graphs and parameters.
func TestPropOracleSandwich(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(60)
		g := gen.GNP(n, 4/float64(n), uint64(seed), true)
		o, err := New(g, Options{Eps: 0.25 + r.Float64()/2, Kappa: 3, Rho: 0.49})
		if err != nil {
			return false
		}
		alpha, beta := o.Guarantee()
		for i := 0; i < 20; i++ {
			u, v := r.Intn(n), r.Intn(n)
			exact := g.Distance(u, v)
			got := o.Dist(u, v)
			if got < exact || float64(got) > alpha*float64(exact)+float64(beta) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

package oracle

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/params"
)

// goldenSpanner builds the gnp-256 golden-fixture spanner (the workload
// pinned by testdata/golden_spanners.json) through core.Build.
func goldenSpanner(t *testing.T, mode core.Mode, eng congest.Engine) *graph.Graph {
	t.Helper()
	g := gen.GNP(256, 16.0/256, 256, true)
	p, err := params.New(1.0/3, 3, 0.49, g.N())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Build(context.Background(), g, p, core.Options{Mode: mode, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	return res.Spanner
}

// refLevels precomputes exact BFS levels for every vertex — the
// sequential reference every pool answer is pinned against.
func refLevels(h *graph.Graph) [][]int32 {
	out := make([][]int32, h.N())
	for v := 0; v < h.N(); v++ {
		out[v] = h.BFS(v)
	}
	return out
}

func TestPoolMatchesSequentialReference(t *testing.T) {
	h := goldenSpanner(t, core.ModeCentralized, congest.EngineSequential)
	ref := refLevels(h)
	for _, reps := range []int{1, 3} {
		pool := NewPool(h, PoolOptions{Replicas: reps, CacheSources: 8})
		for u := 0; u < h.N(); u += 5 {
			for v := 0; v < h.N(); v += 7 {
				if got := pool.Dist(u, v); got != ref[u][v] {
					t.Fatalf("replicas=%d: Dist(%d,%d)=%d, reference %d", reps, u, v, got, ref[u][v])
				}
			}
		}
		for u := 0; u < h.N(); u += 31 {
			lv := pool.Sources(u)
			for v := range lv {
				if lv[v] != ref[u][v] {
					t.Fatalf("replicas=%d: Sources(%d)[%d]=%d, reference %d", reps, u, v, lv[v], ref[u][v])
				}
			}
		}
		pool.Close()
	}
}

// Batch answers must be bit-identical to single-query answers whichever
// internal path a group takes (cached read, amortized full BFS, or
// per-pair bidirectional).
func TestPoolBatchMatchesSingle(t *testing.T) {
	h := goldenSpanner(t, core.ModeCentralized, congest.EngineSequential)
	pool := NewPool(h, PoolOptions{Replicas: 2, CacheSources: 4})
	r := rand.New(rand.NewSource(7))
	queries := make([][2]int, 0, 600)
	for i := 0; i < 200; i++ { // big groups: amortized full BFS
		queries = append(queries, [2]int{i % 8, r.Intn(h.N())})
	}
	for i := 0; i < 200; i++ { // singleton groups: bidirectional path
		queries = append(queries, [2]int{r.Intn(h.N()), r.Intn(h.N())})
	}
	for i := 0; i < 200; i++ { // repeat of the hot sources: cached reads
		queries = append(queries, [2]int{i % 8, r.Intn(h.N())})
	}
	got := pool.PairsBatch(queries)
	single := NewPool(h, PoolOptions{Replicas: 1, CacheSources: -1})
	for i, q := range queries {
		if want := single.Dist(q[0], q[1]); got[i] != want {
			t.Fatalf("batch[%d]=%v: %d, single %d", i, q, got[i], want)
		}
	}
}

// The concurrency suite: 8 goroutines fire mixed Dist / Sources /
// PairsBatch queries at one shared pool under -race, and every answer
// is pinned bit-identical to the sequential reference over the golden
// spanner. Run across replica counts straddling the goroutine count.
func TestPoolConcurrentMixedQueriesBitIdentical(t *testing.T) {
	h := goldenSpanner(t, core.ModeCentralized, congest.EngineSequential)
	ref := refLevels(h)
	n := h.N()
	for _, reps := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("replicas-%d", reps), func(t *testing.T) {
			pool := NewPool(h, PoolOptions{Replicas: reps, CacheSources: 16})
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(w)))
					for iter := 0; iter < 40; iter++ {
						switch iter % 3 {
						case 0:
							u, v := r.Intn(n), r.Intn(n)
							if got := pool.Dist(u, v); got != ref[u][v] {
								t.Errorf("worker %d: Dist(%d,%d)=%d, want %d", w, u, v, got, ref[u][v])
								return
							}
						case 1:
							u := r.Intn(n)
							lv := pool.Sources(u)
							for v := 0; v < n; v += 17 {
								if lv[v] != ref[u][v] {
									t.Errorf("worker %d: Sources(%d)[%d]=%d, want %d", w, u, v, lv[v], ref[u][v])
									return
								}
							}
						case 2:
							qs := make([][2]int, 24)
							for i := range qs {
								qs[i] = [2]int{r.Intn(n), r.Intn(n)}
							}
							got := pool.PairsBatch(qs)
							for i, q := range qs {
								if got[i] != ref[q[0]][q[1]] {
									t.Errorf("worker %d: batch %v=%d, want %d", w, q, got[i], ref[q[0]][q[1]])
									return
								}
							}
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// Path must return a genuine spanner walk: consecutive vertices joined
// by spanner edges, length exactly dist+1, endpoints in place, and the
// reported distance bit-identical to Dist / the BFS reference. Checked
// over the golden spanner and over sparse (often disconnected) graphs.
func TestPoolPathValid(t *testing.T) {
	check := func(t *testing.T, h *graph.Graph, pool *Pool, u, v int, want int32) {
		t.Helper()
		path, d := pool.Path(u, v)
		if d != want {
			t.Fatalf("Path(%d,%d) dist=%d, reference %d", u, v, d, want)
		}
		if want == graph.Infinity {
			if path != nil {
				t.Fatalf("Path(%d,%d): non-nil path %v for disconnected pair", u, v, path)
			}
			return
		}
		if len(path) != int(want)+1 {
			t.Fatalf("Path(%d,%d): len %d, want dist+1 = %d", u, v, len(path), want+1)
		}
		if path[0] != int32(u) || path[len(path)-1] != int32(v) {
			t.Fatalf("Path(%d,%d): endpoints %d..%d", u, v, path[0], path[len(path)-1])
		}
		for i := 1; i < len(path); i++ {
			if !h.HasEdge(int(path[i-1]), int(path[i])) {
				t.Fatalf("Path(%d,%d): step %d-%d is not a spanner edge", u, v, path[i-1], path[i])
			}
		}
	}
	t.Run("golden", func(t *testing.T) {
		h := goldenSpanner(t, core.ModeCentralized, congest.EngineSequential)
		ref := refLevels(h)
		pool := NewPool(h, PoolOptions{Replicas: 2, CacheSources: 4})
		r := rand.New(rand.NewSource(11))
		for i := 0; i < 400; i++ {
			u, v := r.Intn(h.N()), r.Intn(h.N())
			check(t, h, pool, u, v, ref[u][v])
		}
		check(t, h, pool, 17, 17, 0)
		if st := pool.Stats(); st.Paths != 401 {
			t.Errorf("Paths counter %d, want 401", st.Paths)
		}
	})
	t.Run("sparse", func(t *testing.T) {
		for seed := uint64(1); seed <= 8; seed++ {
			n := 50 + int(seed)*11
			g := gen.GNP(n, 2.0/float64(n), seed, false)
			pool := NewPool(g, PoolOptions{Replicas: 1, CacheSources: -1})
			for u := 0; u < n; u += 4 {
				lv := g.BFS(u)
				for v := 0; v < n; v += 3 {
					check(t, g, pool, u, v, lv[v])
				}
			}
		}
	})
}

// Property check for the bidirectional fast path: across random graphs
// (including disconnected ones), bidi must equal the full BFS distance
// for every sampled pair.
func TestPoolBidiMatchesBFS(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		n := 40 + int(seed)*13
		g := gen.GNP(n, 2.2/float64(n), seed, false) // sparse: often disconnected
		pool := NewPool(g, PoolOptions{Replicas: 1, CacheSources: -1})
		for u := 0; u < n; u += 3 {
			lv := g.BFS(u)
			for v := 0; v < n; v += 2 {
				if got := pool.Dist(u, v); got != lv[v] {
					t.Fatalf("seed %d: bidi(%d,%d)=%d, BFS %d", seed, u, v, got, lv[v])
				}
			}
		}
	}
}

// Answers are identical whichever engine built the spanner — the builds
// are bit-identical (golden fingerprints), so the query tier must not
// introduce any divergence of its own.
func TestPoolAnswersEngineIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed golden build in -short")
	}
	hc := goldenSpanner(t, core.ModeCentralized, congest.EngineSequential)
	hd := goldenSpanner(t, core.ModeDistributed, congest.EngineParallel)
	pc := NewPool(hc, PoolOptions{Replicas: 2})
	pd := NewPool(hd, PoolOptions{Replicas: 3})
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		u, v := r.Intn(hc.N()), r.Intn(hc.N())
		if pc.Dist(u, v) != pd.Dist(u, v) {
			t.Fatalf("engines disagree at (%d,%d): %d vs %d", u, v, pc.Dist(u, v), pd.Dist(u, v))
		}
	}
}

func TestPoolSourcesReturnsCopy(t *testing.T) {
	g := gen.Grid(8, 8)
	pool := NewPool(g, PoolOptions{Replicas: 1, CacheSources: 4})
	lv := pool.Sources(0)
	want := lv[63]
	lv[63] = -999
	if got := pool.Dist(0, 63); got != want {
		t.Errorf("mutating Sources result corrupted the cache: Dist=%d, want %d", got, want)
	}
	if again := pool.Sources(0); again[63] != want {
		t.Errorf("mutating Sources result corrupted later Sources: %d, want %d", again[63], want)
	}
}

// The legacy Oracle fix rides the same contract: Sources hands out a
// copy, not the cache's backing array.
func TestOracleSourcesReturnsCopy(t *testing.T) {
	g := gen.Grid(8, 8)
	o, err := New(g, Options{Eps: 0.5, Kappa: 4, Rho: 0.45})
	if err != nil {
		t.Fatal(err)
	}
	lv := o.Sources(0)
	want := lv[63]
	lv[63] = -999
	if got := o.Dist(0, 63); got != want {
		t.Errorf("mutating Sources result corrupted the cache: Dist=%d, want %d", got, want)
	}
}

func TestPoolSourceCacheBounds(t *testing.T) {
	g := gen.Grid(10, 10)
	pool := NewPool(g, PoolOptions{Replicas: 2, CacheSources: 3})
	for u := 0; u < 10; u++ {
		pool.Sources(u)
	}
	st := pool.Stats()
	if st.CachedSources > 3 {
		t.Errorf("cache admitted %d sources, capacity 3", st.CachedSources)
	}
	if st.CacheFills != int64(st.CachedSources) {
		t.Errorf("fills %d != cached %d", st.CacheFills, st.CachedSources)
	}
	// 10 Sources calls: 3 filled the cache, 7 ran uncached.
	if st.SourceRuns != 10 {
		t.Errorf("source runs %d, want 10", st.SourceRuns)
	}

	// Disabled cache: every point query is a miss, answers stay exact.
	nc := NewPool(g, PoolOptions{Replicas: 1, CacheSources: -1})
	if d := nc.Dist(0, 99); d != g.Distance(0, 99) {
		t.Errorf("uncached Dist=%d, want %d", d, g.Distance(0, 99))
	}
	if st := nc.Stats(); st.Misses != 1 || st.CachedSources != 0 {
		t.Errorf("disabled-cache stats %+v", st)
	}
}

// The pool owns no goroutines: a full create / query / close lifecycle
// must leave the goroutine count where it started.
func TestPoolLifecycleGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	g := gen.GNP(120, 0.08, 5, true)
	for i := 0; i < 3; i++ {
		pool := NewPool(g, PoolOptions{Replicas: 4, CacheSources: 8})
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for q := 0; q < 50; q++ {
					pool.Dist((w*q)%120, (w+q*13)%120)
				}
			}(w)
		}
		wg.Wait()
		pool.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("pool lifecycle leaked goroutines: %d -> %d", before, after)
	}
}

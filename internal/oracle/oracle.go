// Package oracle layers an approximate distance oracle over a
// near-additive spanner — the application that motivated near-additive
// spanners in the first place (almost-shortest-paths computation,
// [Elk01/Elk05], and distance oracles [TZ01/RTZ05] in the paper's
// citations).
//
// The oracle precomputes the spanner once and answers distance queries
// with BFS over H instead of G. Because H has O(β·n^{1+1/κ}) edges, a
// query costs O(|E_H|) instead of O(|E_G|) — on dense graphs an
// order-of-magnitude less traversal work — while every answer carries
// the paper's guarantee
//
//	d_G(u,v) <= Dist(u,v) <= (1+ε)·d_G(u,v) + β.
//
// For repeated queries from the same source the oracle caches BFS
// levels; Sources/Pairs batch APIs expose that reuse.
//
// Oracle is the single-threaded convenience API. For the high-QPS
// serving path — lock-free sharded reads, a shared source cache, batch
// grouping, and a bidirectional-BFS point-query fast path — see Pool.
package oracle

import (
	"cmp"
	"context"
	"fmt"
	"slices"

	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/graph"
	"nearspan/internal/params"
)

// Oracle answers approximate distance queries over a preprocessed graph.
// Not safe for concurrent use (the level cache is shared); clone one
// oracle per goroutine via Clone, or use Pool for concurrent serving.
type Oracle struct {
	g       *graph.Graph
	spanner *graph.Graph
	p       *params.Params

	cache      map[int]*lruEntry // BFS levels in the spanner, by source
	capacity   int
	head, tail *lruEntry // intrusive recency list: head = MRU, tail = LRU
}

// lruEntry is one cached source: its BFS levels plus intrusive recency
// links, so a cache hit relinks in O(1) instead of scanning a recency
// slice (the old order-slice made every hit linear in capacity).
type lruEntry struct {
	key        int
	levels     []int32
	prev, next *lruEntry
}

// Options configure the oracle.
type Options struct {
	// Eps, Kappa, Rho are the spanner parameters (see params.New).
	Eps   float64
	Kappa int
	Rho   float64
	// CacheSources bounds the per-source BFS cache (default 16).
	CacheSources int
	// Mode selects the spanner construction backend (zero =
	// centralized, the fast default). Both modes build the identical
	// spanner; distributed mode additionally exercises the real CONGEST
	// protocol stack during preprocessing.
	Mode core.Mode
	// Engine selects the CONGEST engine when Mode is distributed.
	Engine congest.Engine
}

// New preprocesses g into an oracle.
func New(g *graph.Graph, opts Options) (*Oracle, error) {
	p, err := params.New(opts.Eps, opts.Kappa, opts.Rho, g.N())
	if err != nil {
		return nil, err
	}
	res, err := core.Build(context.Background(), g, p, core.Options{Mode: opts.Mode, Engine: opts.Engine})
	if err != nil {
		return nil, err
	}
	capacity := opts.CacheSources
	if capacity <= 0 {
		capacity = 16
	}
	return &Oracle{
		g:        g,
		spanner:  res.Spanner,
		p:        p,
		cache:    make(map[int]*lruEntry, capacity),
		capacity: capacity,
	}, nil
}

// FromSpanner wraps an already-built spanner (e.g. from a distributed
// run) in an oracle.
func FromSpanner(g *graph.Graph, res *core.Result, cacheSources int) (*Oracle, error) {
	if res.Spanner.N() != g.N() {
		return nil, fmt.Errorf("oracle: spanner for n=%d, graph n=%d", res.Spanner.N(), g.N())
	}
	if cacheSources <= 0 {
		cacheSources = 16
	}
	return &Oracle{
		g:        g,
		spanner:  res.Spanner,
		p:        res.Params,
		cache:    make(map[int]*lruEntry, cacheSources),
		capacity: cacheSources,
	}, nil
}

// Spanner returns the underlying spanner.
func (o *Oracle) Spanner() *graph.Graph { return o.spanner }

// Guarantee returns the oracle's error bound (alpha, beta):
// answers satisfy d_G <= answer <= alpha*d_G + beta.
func (o *Oracle) Guarantee() (alpha float64, beta int32) {
	return 1 + o.p.EpsPrime(), o.p.BetaInt()
}

// EdgeSavings returns |E_G| - |E_H|, the per-query traversal saving.
func (o *Oracle) EdgeSavings() int { return o.g.M() - o.spanner.M() }

// Dist returns the approximate distance from u to v
// (graph.Infinity if disconnected).
func (o *Oracle) Dist(u, v int) int32 {
	return o.levels(u)[v]
}

// Sources returns the approximate distances from u to every vertex.
// The returned slice is the caller's to keep: it is a copy, not the
// cache's backing array, so mutating it cannot corrupt later answers.
func (o *Oracle) Sources(u int) []int32 {
	return slices.Clone(o.levels(u))
}

// Pairs answers a batch of queries, reusing per-source BFS work. The
// batch is grouped by source internally (a single index sort — no
// per-source map or slice churn), so callers need not sort; the result
// is allocated once up front.
func (o *Oracle) Pairs(queries [][2]int) []int32 {
	out := make([]int32, len(queries))
	idx := make([]int, len(queries))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		if c := cmp.Compare(queries[a][0], queries[b][0]); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	for i := 0; i < len(idx); {
		src := queries[idx[i]][0]
		lv := o.levels(src)
		for ; i < len(idx) && queries[idx[i]][0] == src; i++ {
			out[idx[i]] = lv[queries[idx[i]][1]]
		}
	}
	return out
}

// Clone returns an oracle sharing the immutable spanner but with its own
// cache, for concurrent use.
func (o *Oracle) Clone() *Oracle {
	return &Oracle{
		g:        o.g,
		spanner:  o.spanner,
		p:        o.p,
		cache:    make(map[int]*lruEntry, o.capacity),
		capacity: o.capacity,
	}
}

// levels returns the BFS level array for source u through the bounded
// LRU cache: a hit moves u to the most-recently-used position, a miss
// computes the BFS and evicts the least recently used source if the
// cache is full. LRU (rather than FIFO) keeps hot sources resident under
// the skewed query mixes the batch APIs see — repeated Pairs batches
// over a working set larger than one batch would otherwise evict their
// own sources between batches. The returned slice is cache-owned;
// exported callers copy (Sources) or read through it (Dist, Pairs).
func (o *Oracle) levels(u int) []int32 {
	if e, ok := o.cache[u]; ok {
		o.touch(e)
		return e.levels
	}
	if len(o.cache) >= o.capacity && o.tail != nil {
		evict := o.tail
		o.unlink(evict)
		delete(o.cache, evict.key)
	}
	e := &lruEntry{key: u, levels: o.spanner.BFS(u)}
	o.cache[u] = e
	o.pushFront(e)
	return e.levels
}

// touch moves e to the most-recently-used end of the recency list in
// O(1) via its intrusive links.
func (o *Oracle) touch(e *lruEntry) {
	if o.head == e {
		return
	}
	o.unlink(e)
	o.pushFront(e)
}

func (o *Oracle) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		o.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		o.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (o *Oracle) pushFront(e *lruEntry) {
	e.next = o.head
	if o.head != nil {
		o.head.prev = e
	}
	o.head = e
	if o.tail == nil {
		o.tail = e
	}
}

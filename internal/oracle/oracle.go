// Package oracle layers an approximate distance oracle over a
// near-additive spanner — the application that motivated near-additive
// spanners in the first place (almost-shortest-paths computation,
// [Elk01/Elk05], and distance oracles [TZ01/RTZ05] in the paper's
// citations).
//
// The oracle precomputes the spanner once and answers distance queries
// with BFS over H instead of G. Because H has O(β·n^{1+1/κ}) edges, a
// query costs O(|E_H|) instead of O(|E_G|) — on dense graphs an
// order-of-magnitude less traversal work — while every answer carries
// the paper's guarantee
//
//	d_G(u,v) <= Dist(u,v) <= (1+ε)·d_G(u,v) + β.
//
// For repeated queries from the same source the oracle caches BFS
// levels; Sources/Pairs batch APIs expose that reuse.
package oracle

import (
	"context"
	"fmt"

	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/graph"
	"nearspan/internal/params"
)

// Oracle answers approximate distance queries over a preprocessed graph.
// Not safe for concurrent use (the level cache is shared); clone one
// oracle per goroutine via Clone.
type Oracle struct {
	g       *graph.Graph
	spanner *graph.Graph
	p       *params.Params

	cache    map[int][]int32 // BFS levels in the spanner, by source
	capacity int
	order    []int // LRU order: least recently used first
}

// Options configure the oracle.
type Options struct {
	// Eps, Kappa, Rho are the spanner parameters (see params.New).
	Eps   float64
	Kappa int
	Rho   float64
	// CacheSources bounds the per-source BFS cache (default 16).
	CacheSources int
	// Mode selects the spanner construction backend (zero =
	// centralized, the fast default). Both modes build the identical
	// spanner; distributed mode additionally exercises the real CONGEST
	// protocol stack during preprocessing.
	Mode core.Mode
	// Engine selects the CONGEST engine when Mode is distributed.
	Engine congest.Engine
}

// New preprocesses g into an oracle.
func New(g *graph.Graph, opts Options) (*Oracle, error) {
	p, err := params.New(opts.Eps, opts.Kappa, opts.Rho, g.N())
	if err != nil {
		return nil, err
	}
	res, err := core.Build(context.Background(), g, p, core.Options{Mode: opts.Mode, Engine: opts.Engine})
	if err != nil {
		return nil, err
	}
	capacity := opts.CacheSources
	if capacity <= 0 {
		capacity = 16
	}
	return &Oracle{
		g:        g,
		spanner:  res.Spanner,
		p:        p,
		cache:    make(map[int][]int32, capacity),
		capacity: capacity,
	}, nil
}

// FromSpanner wraps an already-built spanner (e.g. from a distributed
// run) in an oracle.
func FromSpanner(g *graph.Graph, res *core.Result, cacheSources int) (*Oracle, error) {
	if res.Spanner.N() != g.N() {
		return nil, fmt.Errorf("oracle: spanner for n=%d, graph n=%d", res.Spanner.N(), g.N())
	}
	if cacheSources <= 0 {
		cacheSources = 16
	}
	return &Oracle{
		g:        g,
		spanner:  res.Spanner,
		p:        res.Params,
		cache:    make(map[int][]int32, cacheSources),
		capacity: cacheSources,
	}, nil
}

// Spanner returns the underlying spanner.
func (o *Oracle) Spanner() *graph.Graph { return o.spanner }

// Guarantee returns the oracle's error bound (alpha, beta):
// answers satisfy d_G <= answer <= alpha*d_G + beta.
func (o *Oracle) Guarantee() (alpha float64, beta int32) {
	return 1 + o.p.EpsPrime(), o.p.BetaInt()
}

// EdgeSavings returns |E_G| - |E_H|, the per-query traversal saving.
func (o *Oracle) EdgeSavings() int { return o.g.M() - o.spanner.M() }

// Dist returns the approximate distance from u to v
// (graph.Infinity if disconnected).
func (o *Oracle) Dist(u, v int) int32 {
	return o.levels(u)[v]
}

// Sources returns the approximate distances from u to every vertex. The
// returned slice is owned by the cache; callers must not modify it.
func (o *Oracle) Sources(u int) []int32 {
	return o.levels(u)
}

// Pairs answers a batch of queries, reusing per-source BFS work. The
// batch is grouped by source internally, so callers need not sort.
func (o *Oracle) Pairs(queries [][2]int) []int32 {
	out := make([]int32, len(queries))
	bySource := make(map[int][]int)
	for i, q := range queries {
		bySource[q[0]] = append(bySource[q[0]], i)
	}
	for src, idxs := range bySource {
		lv := o.levels(src)
		for _, i := range idxs {
			out[i] = lv[queries[i][1]]
		}
	}
	return out
}

// Clone returns an oracle sharing the immutable spanner but with its own
// cache, for concurrent use.
func (o *Oracle) Clone() *Oracle {
	return &Oracle{
		g:        o.g,
		spanner:  o.spanner,
		p:        o.p,
		cache:    make(map[int][]int32, o.capacity),
		capacity: o.capacity,
	}
}

// levels returns the BFS level array for source u through the bounded
// LRU cache: a hit moves u to the most-recently-used position, a miss
// computes the BFS and evicts the least recently used source if the
// cache is full. LRU (rather than FIFO) keeps hot sources resident under
// the skewed query mixes the batch APIs see — repeated Pairs batches
// over a working set larger than one batch would otherwise evict their
// own sources between batches. Capacity is small (default 16), so the
// slice-based recency list beats a linked structure.
func (o *Oracle) levels(u int) []int32 {
	if lv, ok := o.cache[u]; ok {
		o.touch(u)
		return lv
	}
	lv := o.spanner.BFS(u)
	if len(o.order) >= o.capacity {
		evict := o.order[0]
		o.order = o.order[1:]
		delete(o.cache, evict)
	}
	o.cache[u] = lv
	o.order = append(o.order, u)
	return lv
}

// touch moves u to the most-recently-used end of the recency list.
func (o *Oracle) touch(u int) {
	for i, x := range o.order {
		if x == u {
			copy(o.order[i:], o.order[i+1:])
			o.order[len(o.order)-1] = u
			return
		}
	}
}

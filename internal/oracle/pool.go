package oracle

import (
	"cmp"
	"runtime"
	"slices"
	"sync/atomic"

	"nearspan/internal/graph"
)

// PoolOptions configure a Pool.
type PoolOptions struct {
	// Replicas is the number of independent BFS workspaces; queries
	// beyond it queue on a replica lock (default GOMAXPROCS).
	Replicas int
	// CacheSources bounds the shared source-level cache (default 64;
	// negative disables it). Each cached source costs 4n bytes.
	CacheSources int
}

// Pool is the high-QPS read path over an immutable spanner: N replicas,
// each owning a preallocated flat BFS workspace, fan queries out over
// the shared CSR — the spanner is never written after build, so sharing
// it needs no synchronization at all. A shared, once-filled source
// cache answers queries for hot sources with a single atomic load plus
// an array read; point queries that miss it run a bidirectional BFS in
// a replica workspace; PairsBatch groups a batch by source so one BFS
// serves every query sharing it.
//
// All methods are safe for concurrent use, and answers are exact BFS
// distances in the spanner — bit-identical regardless of replica
// count, cache state, or whether a query went through Dist, Sources,
// or PairsBatch.
type Pool struct {
	g     *graph.Graph
	reps  []*replica
	next  atomic.Uint32
	cache *sourceCache

	// Slow-path counters only: the cached-read fast path carries zero
	// instrumentation so its cost stays at a few nanoseconds.
	misses     atomic.Int64 // point queries answered by bidirectional BFS
	sourceRuns atomic.Int64 // full single-source BFS runs in a workspace
	batches    atomic.Int64 // PairsBatch calls
	paths      atomic.Int64 // Path calls
}

// PoolStats is a point-in-time snapshot of a pool's counters.
type PoolStats struct {
	// Misses counts point queries that fell through the source cache to
	// a bidirectional BFS; the service derives the cache hit rate as
	// 1 - Misses/Queries with its own request counter.
	Misses int64
	// SourceRuns counts full single-source BFS executions (cache fills,
	// uncached Sources calls, and batch groups large enough to amortize
	// one).
	SourceRuns int64
	// Batches counts PairsBatch calls.
	Batches int64
	// Paths counts Path calls (each runs a bidirectional BFS).
	Paths int64
	// CacheFills and CachedSources describe the shared source cache.
	CacheFills    int64
	CachedSources int
}

// batchBFSAmortize is the group size at which PairsBatch switches from
// per-pair bidirectional BFS to one full BFS shared by the group.
const batchBFSAmortize = 4

// NewPool builds a query pool over an immutable spanner. The spanner
// must not be mutated afterwards (graph.Graph is immutable by
// construction). Workspace memory (4 level/stamp arrays per replica) is
// allocated lazily on each replica's first query, so attaching a pool
// to every completed build job is cheap until the job is queried.
func NewPool(spanner *graph.Graph, opts PoolOptions) *Pool {
	n := opts.Replicas
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	c := opts.CacheSources
	switch {
	case c == 0:
		c = 64
	case c < 0:
		c = 0
	}
	p := &Pool{g: spanner, reps: make([]*replica, n), cache: newSourceCache(spanner.N(), c)}
	for i := range p.reps {
		p.reps[i] = &replica{g: spanner}
	}
	return p
}

// Spanner returns the graph the pool answers queries over.
func (p *Pool) Spanner() *graph.Graph { return p.g }

// Replicas returns the number of replica workspaces.
func (p *Pool) Replicas() int { return len(p.reps) }

// Stats snapshots the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Misses:        p.misses.Load(),
		SourceRuns:    p.sourceRuns.Load(),
		Batches:       p.batches.Load(),
		Paths:         p.paths.Load(),
		CacheFills:    p.cache.fills.Load(),
		CachedSources: p.cache.cached(),
	}
}

// Close releases the replica workspaces and the source cache. The pool
// owns no goroutines, so Close is purely a memory release; using the
// pool after Close panics.
func (p *Pool) Close() {
	p.reps = nil
	p.cache = &sourceCache{}
}

// acquire hands out a replica: an atomic round-robin pick, then a
// TryLock cascade so a query never waits behind a busy replica while an
// idle one exists. Only when every replica is busy does it block.
func (p *Pool) acquire() *replica {
	i := int(p.next.Add(1) - 1)
	n := len(p.reps)
	for k := 0; k < n; k++ {
		r := p.reps[(i+k)%n]
		if r.mu.TryLock() {
			return r
		}
	}
	r := p.reps[i%n]
	r.mu.Lock()
	return r
}

// Dist returns the exact spanner distance from u to v (graph.Infinity
// if disconnected). Hot path: if either endpoint is a cached source the
// answer is one atomic load and one array read; otherwise a
// bidirectional BFS runs in a replica workspace with zero allocations
// after warmup.
func (p *Pool) Dist(u, v int) int32 {
	if lv := p.cache.get(u); lv != nil {
		return lv[v]
	}
	if lv := p.cache.get(v); lv != nil {
		return lv[u]
	}
	p.misses.Add(1)
	r := p.acquire()
	d := r.bidi(u, v)
	r.mu.Unlock()
	return d
}

// Path returns one exact shortest path from u to v in the spanner —
// both endpoints inclusive, len(path) = dist+1 — and its length. A nil
// path (distance graph.Infinity) means the endpoints are disconnected.
// The route is reconstructed from the parents a bidirectional BFS
// records in a replica workspace; the reported distance is bit-identical
// to Dist. The slice is the caller's to keep.
func (p *Pool) Path(u, v int) ([]int32, int32) {
	p.paths.Add(1)
	r := p.acquire()
	path, d := r.path(u, v)
	r.mu.Unlock()
	return path, d
}

// Sources returns the exact spanner distances from u to every vertex.
// The slice is the caller's to keep. The source is admitted to the
// shared cache if capacity remains, so subsequent queries from u hit
// the fast path.
func (p *Pool) Sources(u int) []int32 {
	if lv := p.cache.get(u); lv != nil {
		return slices.Clone(lv)
	}
	if lv := p.cache.fill(u, p.computeLevels); lv != nil {
		return slices.Clone(lv)
	}
	return p.computeLevels(u)
}

// computeLevels runs a full BFS from u in a replica workspace and
// materializes the dense level slice.
func (p *Pool) computeLevels(u int) []int32 {
	p.sourceRuns.Add(1)
	r := p.acquire()
	r.bfsFull(u)
	lv := r.materialize()
	r.mu.Unlock()
	return lv
}

// PairsBatch answers a batch of (u, v) queries, grouping by source to
// amortize BFS work: cached sources are read directly, groups of at
// least batchBFSAmortize queries share one full BFS in a workspace
// (admitting the source to the cache when capacity remains — batch
// sources are hot by definition), and stragglers fall back to the
// bidirectional point path. The result is allocated once up front, in
// query order.
func (p *Pool) PairsBatch(queries [][2]int) []int32 {
	p.batches.Add(1)
	out := make([]int32, len(queries))
	if len(queries) == 0 {
		return out
	}
	idx := make([]int, len(queries))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		if c := cmp.Compare(queries[a][0], queries[b][0]); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	for i := 0; i < len(idx); {
		src := queries[idx[i]][0]
		j := i
		for j < len(idx) && queries[idx[j]][0] == src {
			j++
		}
		group := idx[i:j]
		if lv := p.cache.get(src); lv != nil {
			for _, q := range group {
				out[q] = lv[queries[q][1]]
			}
		} else if len(group) >= batchBFSAmortize {
			if lv := p.cache.fill(src, p.computeLevels); lv != nil {
				for _, q := range group {
					out[q] = lv[queries[q][1]]
				}
			} else {
				p.sourceRuns.Add(1)
				r := p.acquire()
				r.bfsFull(src)
				for _, q := range group {
					out[q] = r.fwd.get(int32(queries[q][1]))
				}
				r.mu.Unlock()
			}
		} else {
			p.misses.Add(int64(len(group)))
			r := p.acquire()
			for _, q := range group {
				out[q] = r.bidi(src, queries[q][1])
			}
			r.mu.Unlock()
		}
		i = j
	}
	return out
}

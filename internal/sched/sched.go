// Package sched provides the shared execution runtime of the simulator
// stack: a bounded worker pool that multiplexes round-sized task batches
// from many concurrently running CONGEST simulators.
//
// Before this runtime existed every parallel-engine simulator owned a
// private GOMAXPROCS-sized worker pool, so N in-flight spanner builds
// cost N×GOMAXPROCS goroutines and fought each other for the same cores.
// A Runtime inverts that: the pool is process-wide (see Default) or
// per-batch (see New), simulators submit one batch per round, and the
// submitting goroutine always helps execute its own batch, so progress
// is guaranteed even when every worker is busy with other simulators —
// or when the runtime has been closed.
//
// Determinism is the caller's concern, not the scheduler's: congest
// shards write disjoint buffer regions, so any interleaving of task
// execution produces the identical round. The runtime only promises
// that Do returns after every task ran exactly once.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runtime is a shared pool of workers executing task batches. The zero
// value is not usable; construct with New or use Default. A Runtime also
// carries per-runtime instrumentation (SimulatorsCreated) so concurrent
// batches and parallel tests can make counting assertions without
// interfering with each other.
type Runtime struct {
	workers int
	jobs    chan *batch

	startOnce sync.Once // workers spawn lazily on the first Do
	started   bool
	lifetime  sync.WaitGroup

	mu        sync.RWMutex // guards jobs sends against Close
	closed    bool
	closeOnce sync.Once

	created atomic.Int64 // simulators constructed on this runtime
}

// New returns a runtime with the given number of workers (<= 0 means
// GOMAXPROCS). Workers are spawned lazily on the first Do, so a runtime
// that only ever serves sequential simulators costs no goroutines.
func New(workers int) *Runtime {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runtime{workers: workers, jobs: make(chan *batch, workers)}
}

var (
	defaultOnce sync.Once
	defaultRT   *Runtime
)

// Default returns the process-wide runtime, created on first use with
// GOMAXPROCS workers. Every simulator whose Options leave Runtime nil
// shares it, which is what makes concurrent builds share one bounded
// pool. The default runtime is never closed; its workers park on an
// empty channel between batches.
func Default() *Runtime {
	defaultOnce.Do(func() { defaultRT = New(0) })
	return defaultRT
}

// Workers returns the configured worker count.
func (r *Runtime) Workers() int { return r.workers }

// NoteSimulator records one simulator construction on this runtime.
func (r *Runtime) NoteSimulator() { r.created.Add(1) }

// SimulatorsCreated returns the number of simulators constructed on this
// runtime since it was created — the per-runtime replacement for the old
// package-global congest.Created counter, immune to concurrent batches
// running on other runtimes.
func (r *Runtime) SimulatorsCreated() int64 { return r.created.Load() }

// batch is one Do call: n tasks claimed off an atomic cursor by however
// many workers pick the batch up, plus the caller.
type batch struct {
	n       int32
	cursor  atomic.Int32
	pending atomic.Int32
	run     func(int)
	done    chan struct{}

	// The panic of the lowest task index, so a multi-task panic re-raises
	// deterministically on the caller regardless of scheduling.
	panicMu  sync.Mutex
	panicIdx int
	panicked any
}

func (b *batch) help() {
	for {
		i := b.cursor.Add(1) - 1
		if i >= b.n {
			return
		}
		b.runTask(int(i))
		if b.pending.Add(-1) == 0 {
			close(b.done)
		}
	}
}

// runTask isolates one task so a panicking task cannot take down a
// shared worker (which would kill the process): the panic is recorded
// and re-raised on the goroutine that called Do.
func (b *batch) runTask(i int) {
	defer func() {
		if rec := recover(); rec != nil {
			b.panicMu.Lock()
			if b.panicked == nil || i < b.panicIdx {
				b.panicked = rec
				b.panicIdx = i
			}
			b.panicMu.Unlock()
		}
	}()
	b.run(i)
}

// Do executes run(0..n-1), each exactly once, and returns when all calls
// have completed. Tasks run concurrently on the runtime's workers and on
// the calling goroutine itself; with k concurrent Do calls the total
// parallelism is bounded by workers + k. If a task panics, Do re-raises
// the panic of the lowest task index after the batch completes.
//
// Do must not be called from inside a task (the nested batch could then
// starve waiting for workers occupied by its ancestors), and must not
// race with Close. On a closed runtime Do still completes correctly,
// executed by the caller alone.
func (r *Runtime) Do(n int, run func(i int)) {
	if n <= 0 {
		return
	}
	b := &batch{n: int32(n), run: run, done: make(chan struct{})}
	b.pending.Store(int32(n))
	r.offer(b, n)
	b.help()
	<-b.done
	if b.panicked != nil {
		panic(b.panicked)
	}
}

// offer hands the batch to up to min(workers, n-1) idle workers (the
// caller executes too, hence n-1). Sends are non-blocking: a full queue
// means the workers are busy, and the caller makes progress alone rather
// than waiting for a slot.
func (r *Runtime) offer(b *batch, n int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return
	}
	r.start()
	for i := 0; i < n-1 && i < r.workers; i++ {
		select {
		case r.jobs <- b:
		default:
			return
		}
	}
}

// start spawns the workers; callers must hold at least the read lock so
// a concurrent Close cannot interleave.
func (r *Runtime) start() {
	r.startOnce.Do(func() {
		r.started = true
		r.lifetime.Add(r.workers)
		for w := 0; w < r.workers; w++ {
			go r.worker()
		}
	})
}

func (r *Runtime) worker() {
	defer r.lifetime.Done()
	for b := range r.jobs {
		b.help()
	}
}

// Close terminates the workers and waits for them to exit. It is
// idempotent and safe on a never-started runtime. Simulators attached to
// the runtime keep working after Close (Do degrades to caller-only
// execution), but the intended lifecycle is: stop the simulators, then
// close the runtime.
func (r *Runtime) Close() {
	r.closeOnce.Do(func() {
		r.mu.Lock()
		r.closed = true
		close(r.jobs)
		started := r.started
		r.mu.Unlock()
		if started {
			r.lifetime.Wait()
		}
	})
}

package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoRunsEveryTaskExactlyOnce(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	for _, n := range []int{0, 1, 3, 7, 64, 1000} {
		counts := make([]atomic.Int32, n)
		rt.Do(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d: task %d ran %d times", n, i, got)
			}
		}
	}
}

// Many goroutines submit batches concurrently: the runtime multiplexes
// them all on its bounded pool, each Do still runs its own tasks exactly
// once, and the caller-helps rule guarantees progress even with a
// 1-worker pool.
func TestConcurrentDoBatches(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rt := New(workers)
		var wg sync.WaitGroup
		for b := 0; b < 16; b++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var sum atomic.Int64
				rt.Do(100, func(i int) { sum.Add(int64(i)) })
				if got := sum.Load(); got != 4950 {
					t.Errorf("workers=%d: batch summed %d, want 4950", workers, got)
				}
			}()
		}
		wg.Wait()
		rt.Close()
	}
}

// The pool spawns lazily, is bounded by the configured worker count no
// matter how many batches run, and Close reclaims every goroutine.
func TestLifecycleStartOnceSurviveManyDieOnClose(t *testing.T) {
	base := runtime.NumGoroutine()
	rt := New(3)
	if got := runtime.NumGoroutine(); got != base {
		t.Errorf("workers spawned before first Do: %d -> %d", base, got)
	}
	for round := 0; round < 50; round++ {
		rt.Do(32, func(i int) {})
		if got := runtime.NumGoroutine(); got > base+3 {
			t.Fatalf("round %d: pool exceeded its bound: base %d, running %d", round, base, got)
		}
	}
	rt.Close()
	rt.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	got := runtime.NumGoroutine()
	for got > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		got = runtime.NumGoroutine()
	}
	if got > base {
		t.Errorf("Close leaked goroutines: base %d, after %d", base, got)
	}
}

// Close on a never-started runtime must not hang or leak.
func TestCloseWithoutStart(t *testing.T) {
	rt := New(2)
	rt.Close()
}

// A closed runtime still executes batches, caller-only.
func TestDoAfterCloseDegradesToCaller(t *testing.T) {
	rt := New(2)
	rt.Close()
	var sum atomic.Int64
	rt.Do(10, func(i int) { sum.Add(1) })
	if sum.Load() != 10 {
		t.Errorf("Do after Close ran %d/10 tasks", sum.Load())
	}
}

// A panicking task must not kill a shared worker; the panic of the
// lowest task index re-raises on the Do caller, deterministically.
func TestPanicRepropagatesToCaller(t *testing.T) {
	rt := New(2)
	defer rt.Close()
	func() {
		defer func() {
			if r := recover(); r != "task 3" {
				t.Errorf("recovered %v, want task 3", r)
			}
		}()
		rt.Do(8, func(i int) {
			if i >= 3 {
				panic("task " + string(rune('0'+i)))
			}
		})
		t.Error("Do returned instead of panicking")
	}()
	// The pool survives the panic and serves the next batch.
	var sum atomic.Int64
	rt.Do(4, func(i int) { sum.Add(1) })
	if sum.Load() != 4 {
		t.Errorf("pool broken after panic: ran %d/4 tasks", sum.Load())
	}
}

func TestSimulatorCounter(t *testing.T) {
	rt := New(1)
	defer rt.Close()
	if rt.SimulatorsCreated() != 0 {
		t.Fatal("fresh runtime has nonzero counter")
	}
	rt.NoteSimulator()
	rt.NoteSimulator()
	if got := rt.SimulatorsCreated(); got != 2 {
		t.Errorf("counter %d, want 2", got)
	}
}

func TestDefaultIsSingletonWithGOMAXPROCSWorkers(t *testing.T) {
	a, b := Default(), Default()
	if a != b {
		t.Error("Default returned distinct runtimes")
	}
	if a.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers %d, want GOMAXPROCS %d", a.Workers(), runtime.GOMAXPROCS(0))
	}
}

// Package stats provides the small table/format layer the experiment
// harness prints its results with: aligned text tables (the shape of the
// paper's Tables 1 and 2), CSV export, and a few numeric helpers.
package stats

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is an aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; short rows are padded with empty cells.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// CSV writes the table as comma-separated values (quoting cells that
// need it).
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		parts[i] = c
	}
	fmt.Fprintf(w, "%s\n", strings.Join(parts, ","))
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Itoa is strconv.Itoa, re-exported so harness code reads uniformly.
func Itoa(v int) string { return strconv.Itoa(v) }

// I64 formats an int64.
func I64(v int64) string { return strconv.FormatInt(v, 10) }

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// Sci formats a float in scientific notation with 2 significant
// decimals, the natural format for the paper's β values.
func Sci(v float64) string {
	return strconv.FormatFloat(v, 'e', 2, 64)
}

// Ratio formats a/b with 2 decimals, or "-" when b == 0.
func Ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return F(a/b, 2)
}

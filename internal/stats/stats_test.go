package stats

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := NewTable("T", "alg", "rounds", "edges")
	tb.Add("new", "123", "4567")
	tb.Add("baseline-with-long-name", "9", "1")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "T\n") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("line count %d: %q", len(lines), out)
	}
	// Column 2 aligned: positions of "rounds" and "123" and "9".
	hdrPos := strings.Index(lines[1], "rounds")
	row1Pos := strings.Index(lines[3], "123")
	if hdrPos != row1Pos {
		t.Errorf("misaligned columns: %d vs %d\n%s", hdrPos, row1Pos, out)
	}
}

func TestShortRowsPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Add("x")
	var sb strings.Builder
	tb.Render(&sb)
	if len(tb.Rows[0]) != 3 {
		t.Errorf("row not padded: %v", tb.Rows[0])
	}
}

func TestNotes(t *testing.T) {
	tb := NewTable("", "a")
	tb.Add("1")
	tb.Note("hello %d", 42)
	var sb strings.Builder
	tb.Render(&sb)
	if !strings.Contains(sb.String(), "note: hello 42") {
		t.Error("note missing")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "name", "value")
	tb.Add("plain", "1")
	tb.Add("with,comma", "2")
	tb.Add("with\"quote", "3")
	var sb strings.Builder
	tb.CSV(&sb)
	out := sb.String()
	want := "name,value\nplain,1\n\"with,comma\",2\n\"with\"\"quote\",3\n"
	if out != want {
		t.Errorf("CSV:\n%q\nwant\n%q", out, want)
	}
}

func TestFormatters(t *testing.T) {
	if Itoa(42) != "42" || I64(1<<40) != "1099511627776" {
		t.Error("int formatters broken")
	}
	if F(3.14159, 2) != "3.14" {
		t.Errorf("F = %q", F(3.14159, 2))
	}
	if Ratio(1, 0) != "-" {
		t.Error("Ratio by zero should be -")
	}
	if Ratio(3, 2) != "1.50" {
		t.Errorf("Ratio = %q", Ratio(3, 2))
	}
	if !strings.Contains(Sci(12345.0), "e+04") {
		t.Errorf("Sci = %q", Sci(12345.0))
	}
}

// Package trace renders algorithm structures as ASCII diagrams — the
// reproduction medium for the paper's illustrative Figures 1–5. All
// renderings target 2D grid graphs (vertex (r, c) has ID r*cols+c),
// where cluster growth, ruling-set separation, and added paths are
// visible at a glance.
package trace

import (
	"fmt"
	"strings"

	"nearspan/internal/cluster"
	"nearspan/internal/graph"
	"nearspan/internal/protocols"
)

// GridClusters renders cluster membership: each cluster gets a letter
// (cycling a–z), its center is uppercase, unclustered vertices are '.'.
func GridClusters(rows, cols int, col *cluster.Collection) string {
	letter := make(map[int]rune) // cluster index -> letter
	next := 0
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c > 0 {
				sb.WriteByte(' ')
			}
			idx := int(col.Of[v])
			if idx < 0 {
				sb.WriteByte('.')
				continue
			}
			ch, ok := letter[idx]
			if !ok {
				ch = rune('a' + next%26)
				letter[idx] = ch
				next++
			}
			if col.Clusters[idx].Center == v {
				ch = ch - 'a' + 'A'
			}
			sb.WriteRune(ch)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// GridMarks renders a vertex marking: marked vertices show their rune,
// others '.'.
func GridMarks(rows, cols int, marks map[int]rune) string {
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c > 0 {
				sb.WriteByte(' ')
			}
			if ch, ok := marks[v]; ok {
				sb.WriteRune(ch)
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// GridEdges renders which grid edges are present in h: vertices are 'o',
// horizontal edges '-', vertical edges '|', absent edges spaces. This is
// the Figure 2/4/5 view: the spanner's skeleton on the grid.
func GridEdges(rows, cols int, h *graph.Graph) string {
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			sb.WriteByte('o')
			if c+1 < cols {
				if h.HasEdge(v, v+1) {
					sb.WriteString("--")
				} else {
					sb.WriteString("  ")
				}
			}
		}
		sb.WriteByte('\n')
		if r+1 < rows {
			for c := 0; c < cols; c++ {
				v := r*cols + c
				if h.HasEdge(v, v+cols) {
					sb.WriteByte('|')
				} else {
					sb.WriteByte(' ')
				}
				if c+1 < cols {
					sb.WriteString("  ")
				}
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Legend returns a one-line legend for the cluster rendering.
func Legend() string {
	return "uppercase = cluster center, lowercase = member, '.' = unclustered"
}

// StepTable renders the per-step metrics stream of a construction as an
// aligned text table, one row per protocol session grouped by phase,
// with a subtotal row per phase and a grand total. This is the
// per-phase accounting view the paper's round analysis is stated in
// (rounds of Algorithm 1, ruling set, forest growth, and path climbs,
// phase by phase).
func StepTable(steps []protocols.StepMetrics) string {
	type row struct{ phase, step, rounds, messages, peak string }
	rows := []row{{"phase", "step", "rounds", "messages", "max/round"}}
	add := func(phase, step string, rounds int, msgs, peak int64) {
		rows = append(rows, row{phase, step,
			fmt.Sprintf("%d", rounds), fmt.Sprintf("%d", msgs), fmt.Sprintf("%d", peak)})
	}
	var totR int
	var totM, totP int64
	flushPhase := func(phase, r int, m, p int64) {
		add(fmt.Sprintf("%d", phase), "· phase total", r, m, p)
	}
	curPhase := -1
	var phR int
	var phM, phP int64
	for _, s := range steps {
		if s.Phase != curPhase {
			if curPhase >= 0 {
				flushPhase(curPhase, phR, phM, phP)
			}
			curPhase, phR, phM, phP = s.Phase, 0, 0, 0
		}
		add(fmt.Sprintf("%d", s.Phase), s.Step, s.Rounds, s.Messages, s.MaxRoundTraffic)
		phR += s.Rounds
		phM += s.Messages
		if s.MaxRoundTraffic > phP {
			phP = s.MaxRoundTraffic
		}
		totR += s.Rounds
		totM += s.Messages
		if s.MaxRoundTraffic > totP {
			totP = s.MaxRoundTraffic
		}
	}
	if curPhase >= 0 {
		flushPhase(curPhase, phR, phM, phP)
	}
	add("", "total", totR, totM, totP)

	w := [5]int{}
	for _, r := range rows {
		for i, c := range [5]string{r.phase, r.step, r.rounds, r.messages, r.peak} {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-*s  %-*s  %*s  %*s  %*s\n",
			w[0], r.phase, w[1], r.step, w[2], r.rounds, w[3], r.messages, w[4], r.peak)
	}
	return sb.String()
}

// Package trace renders algorithm structures as ASCII diagrams — the
// reproduction medium for the paper's illustrative Figures 1–5. All
// renderings target 2D grid graphs (vertex (r, c) has ID r*cols+c),
// where cluster growth, ruling-set separation, and added paths are
// visible at a glance.
package trace

import (
	"strings"

	"nearspan/internal/cluster"
	"nearspan/internal/graph"
)

// GridClusters renders cluster membership: each cluster gets a letter
// (cycling a–z), its center is uppercase, unclustered vertices are '.'.
func GridClusters(rows, cols int, col *cluster.Collection) string {
	letter := make(map[int]rune) // cluster index -> letter
	next := 0
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c > 0 {
				sb.WriteByte(' ')
			}
			idx := int(col.Of[v])
			if idx < 0 {
				sb.WriteByte('.')
				continue
			}
			ch, ok := letter[idx]
			if !ok {
				ch = rune('a' + next%26)
				letter[idx] = ch
				next++
			}
			if col.Clusters[idx].Center == v {
				ch = ch - 'a' + 'A'
			}
			sb.WriteRune(ch)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// GridMarks renders a vertex marking: marked vertices show their rune,
// others '.'.
func GridMarks(rows, cols int, marks map[int]rune) string {
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c > 0 {
				sb.WriteByte(' ')
			}
			if ch, ok := marks[v]; ok {
				sb.WriteRune(ch)
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// GridEdges renders which grid edges are present in h: vertices are 'o',
// horizontal edges '-', vertical edges '|', absent edges spaces. This is
// the Figure 2/4/5 view: the spanner's skeleton on the grid.
func GridEdges(rows, cols int, h *graph.Graph) string {
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			sb.WriteByte('o')
			if c+1 < cols {
				if h.HasEdge(v, v+1) {
					sb.WriteString("--")
				} else {
					sb.WriteString("  ")
				}
			}
		}
		sb.WriteByte('\n')
		if r+1 < rows {
			for c := 0; c < cols; c++ {
				v := r*cols + c
				if h.HasEdge(v, v+cols) {
					sb.WriteByte('|')
				} else {
					sb.WriteByte(' ')
				}
				if c+1 < cols {
					sb.WriteString("  ")
				}
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Legend returns a one-line legend for the cluster rendering.
func Legend() string {
	return "uppercase = cluster center, lowercase = member, '.' = unclustered"
}

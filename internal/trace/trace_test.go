package trace

import (
	"strings"
	"testing"

	"nearspan/internal/cluster"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/protocols"
)

func TestGridClusters(t *testing.T) {
	col, err := cluster.NewCollection(6, []cluster.Cluster{
		{Center: 0, Members: []int32{0, 1, 3}},
		{Center: 5, Members: []int32{5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := GridClusters(2, 3, col)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %q", out)
	}
	if lines[0] != "A a ." {
		t.Errorf("row 0 = %q", lines[0])
	}
	if lines[1] != "a . B" {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestGridMarks(t *testing.T) {
	out := GridMarks(2, 2, map[int]rune{0: 'R', 3: 'w'})
	want := "R .\n. w\n"
	if out != want {
		t.Errorf("got %q want %q", out, want)
	}
}

func TestGridEdgesFullGrid(t *testing.T) {
	g := gen.Grid(2, 3)
	out := GridEdges(2, 3, g)
	want := "o--o--o\n|  |  |\no--o--o\n"
	if out != want {
		t.Errorf("got:\n%q\nwant:\n%q", out, want)
	}
}

func TestGridEdgesPartial(t *testing.T) {
	b := graph.NewBuilder(4) // 2x2 grid vertices, only top edge
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	h := b.Build()
	out := GridEdges(2, 2, h)
	want := "o--o\n    \no  o\n"
	if out != want {
		t.Errorf("got:\n%q\nwant:\n%q", out, want)
	}
}

func TestLegendNonEmpty(t *testing.T) {
	if Legend() == "" {
		t.Error("empty legend")
	}
}

func TestStepTable(t *testing.T) {
	steps := []protocols.StepMetrics{
		{Phase: 0, Step: protocols.StepNearNeighbors, Rounds: 10, Messages: 100, MaxRoundTraffic: 20},
		{Phase: 0, Step: protocols.StepInterconnect, Rounds: 5, Messages: 30, MaxRoundTraffic: 9},
		{Phase: 1, Step: protocols.StepNearNeighbors, Rounds: 7, Messages: 40, MaxRoundTraffic: 8},
	}
	out := StepTable(steps)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 3 steps + 2 phase totals + grand total
	if len(lines) != 7 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	for _, want := range []string{"phase", "near-neighbors", "interconnect", "phase total", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Phase 0 subtotal: 15 rounds, 130 messages; grand total 22 / 170.
	if !strings.Contains(lines[3], "15") || !strings.Contains(lines[3], "130") {
		t.Errorf("phase 0 total row wrong: %q", lines[3])
	}
	if !strings.Contains(lines[6], "22") || !strings.Contains(lines[6], "170") {
		t.Errorf("grand total row wrong: %q", lines[6])
	}
}

func TestStepTableEmpty(t *testing.T) {
	out := StepTable(nil)
	if !strings.Contains(out, "total") {
		t.Errorf("empty table missing total row: %q", out)
	}
}

func TestManyClustersCycleLetters(t *testing.T) {
	n := 30
	clusters := make([]cluster.Cluster, n)
	for i := 0; i < n; i++ {
		clusters[i] = cluster.Cluster{Center: i, Members: []int32{int32(i)}}
	}
	col, err := cluster.NewCollection(n, clusters)
	if err != nil {
		t.Fatal(err)
	}
	out := GridClusters(5, 6, col)
	if !strings.Contains(out, "A") || !strings.Contains(out, "Z") {
		t.Errorf("letter cycling broken:\n%s", out)
	}
}

// Package gen generates the synthetic graph workloads used by the
// experiments. The paper proves worst-case bounds over all unweighted
// undirected graphs; the experiment suite samples structured families
// (grids, tori, bounded-degree random graphs, trees, community graphs)
// that stress different parts of the construction: diameter (number of
// interconnection hops), density (popularity detection), and cluster
// structure (superclustering depth).
//
// Every generator is deterministic given its seed.
package gen

import (
	"fmt"

	"nearspan/internal/graph"
	"nearspan/internal/rng"
)

// Path returns the path graph on n vertices: 0-1-2-...-(n-1).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		mustAdd(b, i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph on n vertices (n >= 3 for a proper cycle;
// smaller n degrades to a path).
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		mustAdd(b, i, i+1)
	}
	if n >= 3 {
		mustAdd(b, n-1, 0)
	}
	return b.Build()
}

// Star returns the star graph: vertex 0 adjacent to all others.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		mustAdd(b, 0, i)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mustAdd(b, i, j)
		}
	}
	return b.Build()
}

// Grid returns the rows×cols 2D grid graph. Vertex (r, c) has ID r*cols+c.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(b, id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				mustAdd(b, id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows×cols 2D torus (grid with wraparound). Requires
// rows, cols >= 3 to stay simple; smaller dimensions fall back to Grid.
func Torus(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		return Grid(rows, cols)
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			mustAdd(b, id(r, c), id(r, (c+1)%cols))
			mustAdd(b, id(r, c), id((r+1)%rows, c))
		}
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *graph.Graph {
	n := 1 << d
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << bit)
			if u > v {
				mustAdd(b, v, u)
			}
		}
	}
	return b.Build()
}

// CompleteBinaryTree returns a complete binary tree on n vertices with
// root 0 (children of v are 2v+1, 2v+2).
func CompleteBinaryTree(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		mustAdd(b, v, (v-1)/2)
	}
	return b.Build()
}

// RandomTree returns a uniform labeled random tree on n vertices built
// from a random Prüfer-like attachment: vertex i (i >= 1) attaches to a
// uniform vertex in [0, i).
func RandomTree(n int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		mustAdd(b, v, r.Intn(v))
	}
	return b.Build()
}

// GNP returns an Erdős–Rényi G(n, p) graph. If ensureConnected is true, a
// random spanning tree is added first so the result is connected (the
// spanner algorithms are defined per component; connected inputs make
// stretch verification simpler).
func GNP(n int, p float64, seed uint64, ensureConnected bool) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	// The only edges present before the pair sweep are the spanning-tree
	// edges; remembering each vertex's tree parent makes the per-pair
	// duplicate check O(1) without consulting the builder.
	parent := make([]int, n)
	for v := range parent {
		parent[v] = -1
	}
	if ensureConnected {
		for v := 1; v < n; v++ {
			parent[v] = r.Intn(v)
			mustAdd(b, v, parent[v])
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if parent[v] == u {
				continue
			}
			if r.Float64() < p {
				mustAdd(b, u, v)
			}
		}
	}
	return b.Build()
}

// RandomRegular returns a (near-)d-regular graph on n vertices via the
// pairing model with retry: d*n must be even. Pairings that would create
// loops or duplicate edges are re-drawn; after a bounded number of global
// retries the last partial matching is returned with the few conflicting
// stubs dropped, giving degrees in {d-1, d} — adequate for workload
// purposes and always terminating.
func RandomRegular(n, d int, seed uint64) (*graph.Graph, error) {
	if d >= n {
		return nil, fmt.Errorf("gen: RandomRegular degree %d >= n %d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: RandomRegular n*d must be even (n=%d d=%d)", n, d)
	}
	r := rng.New(seed)
	const maxAttempts = 50
	var best *graph.Builder
	for attempt := 0; attempt < maxAttempts; attempt++ {
		b := graph.NewBuilder(n)
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for k := 0; k < d; k++ {
				stubs = append(stubs, v)
			}
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || b.HasEdge(u, v) {
				ok = false
				continue // drop conflicting stub pair
			}
			mustAdd(b, u, v)
		}
		if ok {
			return b.Build(), nil
		}
		best = b
	}
	return best.Build(), nil
}

// PreferentialAttachment returns a Barabási–Albert-style graph: start from
// a clique on m+1 vertices; each new vertex attaches to m distinct
// existing vertices chosen proportionally to degree.
func PreferentialAttachment(n, m int, seed uint64) (*graph.Graph, error) {
	if m < 1 || m+1 > n {
		return nil, fmt.Errorf("gen: PreferentialAttachment needs 1 <= m < n (n=%d m=%d)", n, m)
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	// endpoint multiset: each edge contributes both endpoints, so sampling
	// uniformly from it is degree-proportional sampling.
	endpoints := make([]int, 0, 2*m*n)
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			mustAdd(b, u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	for v := m + 1; v < n; v++ {
		// Collect targets in draw order (not map order) so the endpoint
		// multiset — and therefore every later draw — is deterministic.
		chosen := make([]int, 0, m)
		for len(chosen) < m {
			u := endpoints[r.Intn(len(endpoints))]
			if u == v || containsInt(chosen, u) {
				continue
			}
			chosen = append(chosen, u)
		}
		for _, u := range chosen {
			mustAdd(b, v, u)
			endpoints = append(endpoints, u, v)
		}
	}
	return b.Build(), nil
}

// Caterpillar returns a path of length spineLen with legsPerSpine leaf
// vertices attached to each spine vertex. Spine IDs come first.
func Caterpillar(spineLen, legsPerSpine int) *graph.Graph {
	n := spineLen * (1 + legsPerSpine)
	b := graph.NewBuilder(n)
	for i := 0; i+1 < spineLen; i++ {
		mustAdd(b, i, i+1)
	}
	next := spineLen
	for i := 0; i < spineLen; i++ {
		for l := 0; l < legsPerSpine; l++ {
			mustAdd(b, i, next)
			next++
		}
	}
	return b.Build()
}

// Lollipop returns a clique on cliqueN vertices joined to a path of
// pathN vertices; the classic high-mixing-time shape. Clique IDs first.
func Lollipop(cliqueN, pathN int) *graph.Graph {
	n := cliqueN + pathN
	b := graph.NewBuilder(n)
	for u := 0; u < cliqueN; u++ {
		for v := u + 1; v < cliqueN; v++ {
			mustAdd(b, u, v)
		}
	}
	prev := 0
	for i := 0; i < pathN; i++ {
		mustAdd(b, prev, cliqueN+i)
		prev = cliqueN + i
	}
	return b.Build()
}

// Dumbbell returns two cliques of size cliqueN joined by a path of
// bridgeLen intermediate vertices.
func Dumbbell(cliqueN, bridgeLen int) *graph.Graph {
	n := 2*cliqueN + bridgeLen
	b := graph.NewBuilder(n)
	for u := 0; u < cliqueN; u++ {
		for v := u + 1; v < cliqueN; v++ {
			mustAdd(b, u, v)
			mustAdd(b, cliqueN+u, cliqueN+v)
		}
	}
	prev := 0
	for i := 0; i < bridgeLen; i++ {
		mustAdd(b, prev, 2*cliqueN+i)
		prev = 2*cliqueN + i
	}
	mustAdd(b, prev, cliqueN)
	return b.Build()
}

// Communities returns a planted-partition graph: k communities of size
// commSize, intra-community edge probability pIn, inter-community
// probability pOut, plus a spanning tree inside each community and one
// bridge edge between consecutive communities to guarantee connectivity.
func Communities(k, commSize int, pIn, pOut float64, seed uint64) *graph.Graph {
	n := k * commSize
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	comm := func(v int) int { return v / commSize }
	// Connectivity backbone: an in-community parent per vertex plus one
	// bridge between consecutive community anchors. As in GNP, tracking
	// the parents directly keeps the pair sweep free of builder lookups.
	parent := make([]int, n)
	for v := range parent {
		parent[v] = -1
	}
	for v := 0; v < n; v++ {
		if v%commSize != 0 {
			base := comm(v) * commSize
			parent[v] = base + r.Intn(v%commSize)
			mustAdd(b, v, parent[v])
		}
	}
	for c := 1; c < k; c++ {
		mustAdd(b, (c-1)*commSize, c*commSize)
	}
	isBridge := func(u, v int) bool { // u < v; bridges join consecutive anchors
		return u%commSize == 0 && v-u == commSize
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if parent[v] == u || isBridge(u, v) {
				continue
			}
			p := pOut
			if comm(u) == comm(v) {
				p = pIn
			}
			if r.Float64() < p {
				mustAdd(b, u, v)
			}
		}
	}
	return b.Build()
}

// RandomGeometric returns a random geometric graph: n points placed
// uniformly in the unit square, vertices within Euclidean distance
// radius connected. If ensureConnected is true, each vertex i >= 1 also
// links to its nearest earlier point, so the result is connected (the
// standard fix for sensor-network workloads). Vertex IDs are sorted by
// x-coordinate, which keeps IDs spatially correlated — the adversarial
// case for ID-based symmetry breaking.
func RandomGeometric(n int, radius float64, seed uint64, ensureConnected bool) *graph.Graph {
	r := rng.New(seed)
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{r.Float64(), r.Float64()}
	}
	// Sort by x for spatially-correlated IDs (insertion sort keeps the
	// generator dependency-free and deterministic).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && pts[j].x < pts[j-1].x; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	b := graph.NewBuilder(n)
	r2 := radius * radius
	dist2 := func(a, c pt) float64 {
		dx, dy := a.x-c.x, a.y-c.y
		return dx*dx + dy*dy
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pts[j].x-pts[i].x > radius {
				break // sorted by x: no farther j qualifies
			}
			if dist2(pts[i], pts[j]) <= r2 {
				mustAdd(b, i, j)
			}
		}
	}
	if ensureConnected {
		for i := 1; i < n; i++ {
			best, bestD := -1, 0.0
			for j := 0; j < i; j++ {
				d := dist2(pts[i], pts[j])
				if best < 0 || d < bestD {
					best, bestD = j, d
				}
			}
			// The radius sweep above added {i, best} already iff the pair
			// is within radius, so the distance itself is the dedupe test.
			if best >= 0 && bestD > r2 {
				mustAdd(b, i, best)
			}
		}
	}
	return b.Build()
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// mustAdd panics on builder errors. Generators construct edges they have
// just proven valid (in-range, non-duplicate), so an error here is a bug
// in the generator itself, not a runtime condition.
func mustAdd(b *graph.Builder, u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic("gen: internal error: " + err.Error())
	}
}

package gen

import (
	"testing"
	"testing/quick"

	"nearspan/internal/graph"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("Path(5): n=%d m=%d", g.N(), g.M())
	}
	if g.Diameter() != 4 {
		t.Errorf("Path(5) diameter=%d, want 4", g.Diameter())
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if g.M() != 6 {
		t.Fatalf("Cycle(6): m=%d, want 6", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("Cycle vertex %d degree %d, want 2", v, g.Degree(v))
		}
	}
	if g.Diameter() != 3 {
		t.Errorf("Cycle(6) diameter=%d, want 3", g.Diameter())
	}
	// Degenerate sizes fall back to paths.
	if Cycle(2).M() != 1 {
		t.Error("Cycle(2) should be a single edge")
	}
}

func TestStarAndComplete(t *testing.T) {
	s := Star(7)
	if s.Degree(0) != 6 || s.M() != 6 {
		t.Errorf("Star(7): deg(0)=%d m=%d", s.Degree(0), s.M())
	}
	k := Complete(6)
	if k.M() != 15 {
		t.Errorf("K6 m=%d, want 15", k.M())
	}
	if k.Diameter() != 1 {
		t.Errorf("K6 diameter=%d, want 1", k.Diameter())
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 5)
	if g.N() != 20 {
		t.Fatalf("Grid(4,5) n=%d", g.N())
	}
	// m = rows*(cols-1) + cols*(rows-1)
	if g.M() != 4*4+5*3 {
		t.Errorf("Grid(4,5) m=%d, want %d", g.M(), 4*4+5*3)
	}
	if g.Diameter() != 3+4 {
		t.Errorf("Grid(4,5) diameter=%d, want 7", g.Diameter())
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 4)
	if g.M() != 32 {
		t.Fatalf("Torus(4,4) m=%d, want 32", g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Errorf("torus vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
	if g.Diameter() != 4 {
		t.Errorf("Torus(4,4) diameter=%d, want 4", g.Diameter())
	}
	// Small dimensions degrade to grid rather than creating multi-edges.
	small := Torus(2, 5)
	if small.N() != 10 || !small.Connected() {
		t.Error("Torus(2,5) fallback broken")
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d", g.N(), g.M())
	}
	if g.Diameter() != 4 {
		t.Errorf("Q4 diameter=%d, want 4", g.Diameter())
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(15)
	if g.M() != 14 {
		t.Fatalf("tree m=%d, want 14", g.M())
	}
	if !g.Connected() {
		t.Error("tree not connected")
	}
	if g.Diameter() != 6 {
		t.Errorf("complete binary tree on 15: diameter=%d, want 6", g.Diameter())
	}
}

func TestRandomTree(t *testing.T) {
	g := RandomTree(50, 9)
	if g.M() != 49 || !g.Connected() {
		t.Errorf("RandomTree: m=%d connected=%v", g.M(), g.Connected())
	}
	// Determinism.
	h := RandomTree(50, 9)
	if !sameGraph(g, h) {
		t.Error("RandomTree not deterministic for equal seeds")
	}
	if sameGraph(g, RandomTree(50, 10)) {
		t.Error("different seeds produced identical trees (suspicious)")
	}
}

func TestGNP(t *testing.T) {
	g := GNP(60, 0.05, 3, true)
	if !g.Connected() {
		t.Error("GNP with ensureConnected should be connected")
	}
	if g.M() < 59 {
		t.Errorf("GNP m=%d below spanning tree size", g.M())
	}
	h := GNP(60, 0.05, 3, true)
	if !sameGraph(g, h) {
		t.Error("GNP not deterministic")
	}
	sparse := GNP(40, 0.0, 1, false)
	if sparse.M() != 0 {
		t.Errorf("GNP p=0 should have no edges, got %d", sparse.M())
	}
	dense := GNP(20, 1.0, 1, false)
	if dense.M() != 190 {
		t.Errorf("GNP p=1 should be complete, m=%d", dense.M())
	}
}

func TestRandomRegular(t *testing.T) {
	g, err := RandomRegular(100, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("n=%d", g.N())
	}
	degOK := 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if d > 4 {
			t.Errorf("vertex %d degree %d exceeds 4", v, d)
		}
		if d == 4 {
			degOK++
		}
	}
	if degOK < 90 {
		t.Errorf("only %d/100 vertices have full degree", degOK)
	}
	if _, err := RandomRegular(9, 3, 1); err == nil {
		t.Error("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 5, 1); err == nil {
		t.Error("d >= n accepted")
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g, err := PreferentialAttachment(200, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("PA graph should be connected")
	}
	// m = C(m+1,2) + (n-m-1)*m
	want := 6 + (200-4)*3
	if g.M() != want {
		t.Errorf("PA m=%d, want %d", g.M(), want)
	}
	h, _ := PreferentialAttachment(200, 3, 7)
	if !sameGraph(g, h) {
		t.Error("PreferentialAttachment not deterministic")
	}
	if _, err := PreferentialAttachment(3, 3, 1); err == nil {
		t.Error("m >= n accepted")
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(10, 3)
	if g.N() != 40 || g.M() != 39 {
		t.Fatalf("caterpillar: n=%d m=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Error("caterpillar not connected")
	}
	if g.Diameter() != 11 {
		t.Errorf("caterpillar diameter=%d, want 11", g.Diameter())
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(8, 12)
	if g.N() != 20 {
		t.Fatalf("n=%d", g.N())
	}
	if !g.Connected() {
		t.Error("lollipop not connected")
	}
	if g.Diameter() != 13 {
		t.Errorf("lollipop diameter=%d, want 13", g.Diameter())
	}
}

func TestDumbbell(t *testing.T) {
	g := Dumbbell(6, 5)
	if g.N() != 17 || !g.Connected() {
		t.Fatalf("dumbbell malformed: n=%d connected=%v", g.N(), g.Connected())
	}
	// Distance between the two clique interiors crosses the bridge.
	if d := g.Distance(1, 6+1); d != 8 {
		t.Errorf("cross-dumbbell distance=%d, want 8", d)
	}
}

func TestCommunities(t *testing.T) {
	g := Communities(4, 25, 0.3, 0.005, 11)
	if g.N() != 100 || !g.Connected() {
		t.Fatalf("communities: n=%d connected=%v", g.N(), g.Connected())
	}
	h := Communities(4, 25, 0.3, 0.005, 11)
	if !sameGraph(g, h) {
		t.Error("Communities not deterministic")
	}
}

// Property: all generators produce simple graphs (no self-loops or
// duplicate edges — guaranteed by the builder, so here we check the
// builders never panicked and vertex/edge counts are consistent).
func TestGeneratorsProduceSimpleConnectedGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", Path(30)},
		{"cycle", Cycle(30)},
		{"star", Star(30)},
		{"grid", Grid(5, 6)},
		{"torus", Torus(5, 6)},
		{"hypercube", Hypercube(5)},
		{"cbt", CompleteBinaryTree(31)},
		{"randomtree", RandomTree(30, 1)},
		{"gnp", GNP(30, 0.1, 1, true)},
		{"caterpillar", Caterpillar(6, 4)},
		{"lollipop", Lollipop(5, 10)},
		{"dumbbell", Dumbbell(5, 4)},
		{"communities", Communities(3, 10, 0.3, 0.02, 2)},
	}
	for _, c := range cases {
		if !c.g.Connected() {
			t.Errorf("%s: not connected", c.name)
		}
		sum := 0
		for v := 0; v < c.g.N(); v++ {
			sum += c.g.Degree(v)
		}
		if sum != 2*c.g.M() {
			t.Errorf("%s: handshake violated: sum deg=%d, 2m=%d", c.name, sum, 2*c.g.M())
		}
	}
}

func TestGNPSeedSensitivity(t *testing.T) {
	f := func(seed uint64) bool {
		g := GNP(25, 0.2, seed, true)
		h := GNP(25, 0.2, seed, true)
		return sameGraph(g, h)
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRandomGeometric(t *testing.T) {
	g := RandomGeometric(120, 0.12, 31, true)
	if g.N() != 120 {
		t.Fatalf("n=%d", g.N())
	}
	if !g.Connected() {
		t.Error("ensureConnected graph disconnected")
	}
	h := RandomGeometric(120, 0.12, 31, true)
	if !sameGraph(g, h) {
		t.Error("RandomGeometric not deterministic")
	}
	// Without the connectivity fix, a tiny radius yields isolated parts.
	sparse := RandomGeometric(100, 0.01, 7, false)
	if sparse.ComponentCount() < 2 {
		t.Error("expected a fragmented graph at tiny radius")
	}
	// Radius 1.5 covers the whole unit square: complete graph.
	full := RandomGeometric(20, 1.5, 7, false)
	if full.M() != 20*19/2 {
		t.Errorf("full radius m=%d, want %d", full.M(), 20*19/2)
	}
}

func sameGraph(g, h *graph.Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	same := true
	g.Edges(func(u, v int) {
		if !h.HasEdge(u, v) {
			same = false
		}
	})
	return same
}

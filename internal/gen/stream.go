package gen

import (
	"iter"

	"nearspan/internal/graph"
	"nearspan/internal/rng"
)

// EdgeStream is a generated graph whose edges exist only as a replayable
// sorted stream: exact vertex count, edge count, and per-vertex degrees,
// plus an Edges sequence that yields every edge normalized u < v in
// ascending (u, v) order, identically on every replay. Graph() feeds the
// stream straight into the CSR constructor, so building a 10⁷–10⁸-edge
// workload allocates the offsets and adjacency arrays once and nothing
// else — no materialized edge list, no builder seen-set, no per-vertex
// sort. Dedupe is structural: each Stream generator arranges its
// backbone (spanning-tree parents, bridges, lattice neighbors) so that
// every edge has exactly one emission point in the sweep.
//
// Stream generators are bit-identical to their materialized
// counterparts (property-tested across kinds, seeds, and sizes): they
// consume the shared RNG in exactly the same order, so
// StreamGNP(...).Graph() and GNP(...) fingerprint equal.
type EdgeStream struct {
	n, m int
	deg  []int32
	seq  iter.Seq2[int32, int32]
}

// N returns the number of vertices.
func (s *EdgeStream) N() int { return s.n }

// M returns the number of edges.
func (s *EdgeStream) M() int { return s.m }

// Degree returns the degree of v.
func (s *EdgeStream) Degree(v int) int { return int(s.deg[v]) }

// Edges returns the replayable sorted edge sequence.
func (s *EdgeStream) Edges() iter.Seq2[int32, int32] { return s.seq }

// Graph materializes the CSR form in a single replay of the stream.
func (s *EdgeStream) Graph() *graph.Graph {
	return graph.FromDegreeEdgeSeq(s.deg, s.seq)
}

// newEdgeStream runs the counting replay once to fix M and the degrees.
func newEdgeStream(n int, seq iter.Seq2[int32, int32]) *EdgeStream {
	s := &EdgeStream{n: n, deg: make([]int32, n), seq: seq}
	for u, v := range seq {
		s.deg[u]++
		s.deg[v]++
		s.m++
	}
	return s
}

// StreamGNP is the streaming form of GNP: the identical G(n, p) graph
// (same seed, same RNG consumption order) without materializing an edge
// list. Spanning-tree parents are drawn first, exactly as GNP draws
// them; the pair sweep then emits each tree edge at its lexicographic
// (parent, child) position without consuming randomness — the same
// backbone-parent dedupe GNP uses to skip the builder probe — and draws
// one Float64 per remaining pair, emitting it on success. Every edge
// therefore has exactly one emission point and the stream is ascending
// by construction.
func StreamGNP(n int, p float64, seed uint64, ensureConnected bool) *EdgeStream {
	r := rng.New(seed)
	parent := make([]int32, n)
	for v := range parent {
		parent[v] = -1
	}
	if ensureConnected {
		for v := 1; v < n; v++ {
			parent[v] = int32(r.Intn(v))
		}
	}
	state := *r // RNG state entering the pair sweep, copied per replay
	seq := func(yield func(int32, int32) bool) {
		r := state
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if int(parent[v]) == u {
					if !yield(int32(u), int32(v)) {
						return
					}
					continue
				}
				if r.Float64() < p {
					if !yield(int32(u), int32(v)) {
						return
					}
				}
			}
		}
	}
	return newEdgeStream(n, seq)
}

// StreamCommunities is the streaming form of Communities, bit-identical
// for the same seed. The connectivity backbone (in-community parents and
// consecutive-anchor bridges) is fixed before the sweep; the sweep emits
// backbone edges at their lexicographic positions without consuming
// randomness and draws per-pair otherwise, exactly as Communities does.
func StreamCommunities(k, commSize int, pIn, pOut float64, seed uint64) *EdgeStream {
	n := k * commSize
	r := rng.New(seed)
	parent := make([]int32, n)
	for v := range parent {
		parent[v] = -1
	}
	for v := 0; v < n; v++ {
		if v%commSize != 0 {
			base := (v / commSize) * commSize
			parent[v] = int32(base + r.Intn(v%commSize))
		}
	}
	state := *r
	seq := func(yield func(int32, int32) bool) {
		r := state
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if int(parent[v]) == u || (u%commSize == 0 && v-u == commSize) {
					if !yield(int32(u), int32(v)) {
						return
					}
					continue
				}
				p := pOut
				if u/commSize == v/commSize {
					p = pIn
				}
				if r.Float64() < p {
					if !yield(int32(u), int32(v)) {
						return
					}
				}
			}
		}
	}
	return newEdgeStream(n, seq)
}

// StreamGrid is the streaming form of Grid: each vertex emits its right
// and down neighbors, which is ascending order by construction.
func StreamGrid(rows, cols int) *EdgeStream {
	n := rows * cols
	seq := func(yield func(int32, int32) bool) {
		for u := 0; u < n; u++ {
			if u%cols+1 < cols && !yield(int32(u), int32(u+1)) {
				return
			}
			if u+cols < n && !yield(int32(u), int32(u+cols)) {
				return
			}
		}
	}
	return newEdgeStream(n, seq)
}

// StreamTorus is the streaming form of Torus (rows, cols >= 3; smaller
// dimensions fall back to StreamGrid, as Torus falls back to Grid). The
// four lattice neighbors of u that are larger than u — right (unless u
// is in the last column), the row's wraparound partner (when u is in
// column 0), down (unless u is in the last row), and the column's
// wraparound partner (when u is in row 0) — are emitted in that order,
// which is ascending because rows, cols >= 3.
func StreamTorus(rows, cols int) *EdgeStream {
	if rows < 3 || cols < 3 {
		return StreamGrid(rows, cols)
	}
	n := rows * cols
	seq := func(yield func(int32, int32) bool) {
		for u := 0; u < n; u++ {
			c := u % cols
			if c+1 < cols && !yield(int32(u), int32(u+1)) {
				return
			}
			if c == 0 && !yield(int32(u), int32(u+cols-1)) {
				return
			}
			if u+cols < n && !yield(int32(u), int32(u+cols)) {
				return
			}
			if u < cols && !yield(int32(u), int32(u+(rows-1)*cols)) {
				return
			}
		}
	}
	return newEdgeStream(n, seq)
}

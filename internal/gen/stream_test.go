package gen

import (
	"fmt"
	"testing"

	"nearspan/internal/graph"
)

// TestStreamMatchesMaterialized is the bit-identity property test for the
// streaming generators: over every generator kind, several seeds, and
// several sizes, the streamed CSR must fingerprint equal to the
// materialized builder path, and the stream's precomputed counts must
// match the graph it produces.
func TestStreamMatchesMaterialized(t *testing.T) {
	type tc struct {
		name string
		mat  func() *graph.Graph
		str  func() *EdgeStream
	}
	var cases []tc
	for _, seed := range []uint64{1, 7, 42, 9001} {
		for _, n := range []int{1, 2, 17, 64, 300} {
			seed, n := seed, n
			for _, conn := range []bool{false, true} {
				conn := conn
				cases = append(cases, tc{
					name: fmt.Sprintf("gnp/n=%d/seed=%d/conn=%v", n, seed, conn),
					mat:  func() *graph.Graph { return GNP(n, 8.0/float64(n), seed, conn) },
					str:  func() *EdgeStream { return StreamGNP(n, 8.0/float64(n), seed, conn) },
				})
			}
		}
		for _, kc := range [][2]int{{1, 1}, {3, 5}, {6, 16}} {
			k, cs, seed := kc[0], kc[1], seed
			cases = append(cases, tc{
				name: fmt.Sprintf("communities/k=%d/size=%d/seed=%d", k, cs, seed),
				mat:  func() *graph.Graph { return Communities(k, cs, 0.4, 0.02, seed) },
				str:  func() *EdgeStream { return StreamCommunities(k, cs, 0.4, 0.02, seed) },
			})
		}
	}
	for _, rc := range [][2]int{{1, 1}, {1, 5}, {2, 2}, {3, 3}, {4, 9}, {12, 12}} {
		rows, cols := rc[0], rc[1]
		cases = append(cases, tc{
			name: fmt.Sprintf("grid/%dx%d", rows, cols),
			mat:  func() *graph.Graph { return Grid(rows, cols) },
			str:  func() *EdgeStream { return StreamGrid(rows, cols) },
		})
		cases = append(cases, tc{
			name: fmt.Sprintf("torus/%dx%d", rows, cols),
			mat:  func() *graph.Graph { return Torus(rows, cols) },
			str:  func() *EdgeStream { return StreamTorus(rows, cols) },
		})
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := c.mat()
			s := c.str()
			if s.N() != want.N() || s.M() != want.M() {
				t.Fatalf("stream counts (n=%d, m=%d) != materialized (n=%d, m=%d)",
					s.N(), s.M(), want.N(), want.M())
			}
			got := s.Graph()
			wm, wh := graph.Fingerprint(want)
			gm, gh := graph.Fingerprint(got)
			if wm != gm || wh != gh {
				t.Fatalf("stream fingerprint (%d, %s) != materialized (%d, %s)", gm, gh, wm, wh)
			}
			for v := 0; v < want.N(); v++ {
				if s.Degree(v) != want.Degree(v) {
					t.Fatalf("vertex %d: stream degree %d != materialized %d", v, s.Degree(v), want.Degree(v))
				}
			}
		})
	}
}

// TestStreamReplayable checks that Edges yields the identical sequence on
// repeated iteration (the RNG snapshot is copied, not consumed) and that
// early termination of one replay does not disturb the next.
func TestStreamReplayable(t *testing.T) {
	s := StreamGNP(200, 0.05, 123, true)
	var first [][2]int32
	for u, v := range s.Edges() {
		first = append(first, [2]int32{u, v})
	}
	if len(first) != s.M() {
		t.Fatalf("replay yielded %d edges, M() = %d", len(first), s.M())
	}
	// Partial replay, then a full one.
	stop := 0
	for range s.Edges() {
		stop++
		if stop == 3 {
			break
		}
	}
	i := 0
	for u, v := range s.Edges() {
		if e := first[i]; e[0] != u || e[1] != v {
			t.Fatalf("replay edge %d = (%d, %d), want (%d, %d)", i, u, v, e[0], e[1])
		}
		i++
	}
	if i != len(first) {
		t.Fatalf("second replay yielded %d edges, first yielded %d", i, len(first))
	}
}

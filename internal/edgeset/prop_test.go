package edgeset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refModel is the map[Edge]bool reference the Set replaced; the property
// tests drive both through random interleavings of Add, AddSet (merge),
// Contains, and iteration, and demand observational equivalence.
type refModel map[[2]int32]bool

func (m refModel) add(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	k := [2]int32{int32(u), int32(v)}
	if m[k] {
		return false
	}
	m[k] = true
	return true
}

// TestPropSetMatchesMapModel: under a random operation sequence the Set
// agrees with the map model on every Add return, Contains probe, Len,
// and the full iterated edge list (which must also be sorted).
func TestPropSetMatchesMapModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		s := NewSet(n)
		ref := refModel{}
		ops := 1 + r.Intn(400)
		for i := 0; i < ops; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			switch r.Intn(4) {
			case 0, 1: // Add, biased to dominate
				if s.Add(u, v) != ref.add(u, v) {
					t.Logf("Add(%d,%d) disagrees with model", u, v)
					return false
				}
			case 2: // Contains
				if s.Contains(u, v) != ref[normKey(u, v)] {
					t.Logf("Contains(%d,%d) disagrees with model", u, v)
					return false
				}
			case 3: // merge a small random set in
				o := NewSet(n)
				oref := refModel{}
				for j := r.Intn(8); j > 0; j-- {
					a, b := r.Intn(n), r.Intn(n)
					if a != b {
						o.Add(a, b)
						oref.add(a, b)
					}
				}
				wantNew := 0
				for k := range oref {
					if !ref[k] {
						wantNew++
						ref[k] = true
					}
				}
				if got := s.AddSet(o); got != wantNew {
					t.Logf("AddSet added %d, model says %d", got, wantNew)
					return false
				}
			}
		}
		if s.Len() != len(ref) {
			t.Logf("Len=%d, model %d", s.Len(), len(ref))
			return false
		}
		// Iterated list: sorted, duplicate-free, exactly the model's set.
		var prev [2]int32 = [2]int32{-1, -1}
		seen := 0
		for u, v := range s.All() {
			k := [2]int32{u, v}
			if !ref[k] {
				t.Logf("iteration yields {%d,%d} not in model", u, v)
				return false
			}
			if u < prev[0] || (u == prev[0] && v <= prev[1]) {
				t.Logf("iteration unsorted at {%d,%d}", u, v)
				return false
			}
			prev = k
			seen++
		}
		return seen == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func normKey(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}

// TestPropAssignmentMatchesMapModel: Assignment under random
// Set/Get/Reset interleavings behaves like a fresh map per generation.
func TestPropAssignmentMatchesMapModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		a := NewAssignment(n)
		ref := map[int]int32{}
		for i := 0; i < 300; i++ {
			v := r.Intn(n)
			switch r.Intn(5) {
			case 0, 1:
				x := int32(r.Intn(200) - 100)
				a.Set(v, x)
				ref[v] = x
			case 2:
				gx, gok := a.Get(v)
				wx, wok := ref[v]
				if gok != wok || (gok && gx != wx) {
					return false
				}
			case 3:
				if a.Has(v) != (func() bool { _, ok := ref[v]; return ok })() {
					return false
				}
			case 4:
				if r.Intn(10) == 0 { // occasional generation clear
					a.Reset()
					ref = map[int]int32{}
				}
			}
			if a.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

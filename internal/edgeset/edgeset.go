// Package edgeset provides the columnar data plane of the spanner
// construction: flat, index-addressed stores for the two objects every
// phase mutates — the edge set of the spanner under construction (Set)
// and per-vertex cluster bookkeeping (Assignment).
//
// The construction only ever appends edges and merges clusters
// (Elkin–Matar, PODC 2019: the spanner has O(βn^{1+1/κ}) edges, built
// phase by phase), so neither store needs hashing or deletion. Compared
// to the map[Edge]bool / map[int]int idiom they replace, the stores keep
// determinism structurally — iteration order is (u, v) ascending by
// construction, not recovered by a global sort — and keep memory in a
// handful of compact int32 slices.
package edgeset

import (
	"fmt"
	"iter"
	"slices"

	"nearspan/internal/graph"
)

// tailLimit bounds the unsorted per-bucket tail scanned linearly on every
// duplicate check; beyond it the tail is sorted into a run. Spanner
// buckets are small (O(β) edges per vertex), so most buckets never grow
// past one run.
const tailLimit = 16

// Set is a deterministic, append-only accumulator of undirected edges
// over vertices [0, n). Edges are normalized to u < v and bucketed by u;
// each bucket holds a short unsorted tail plus a stack of sorted,
// mutually duplicate-free runs of geometrically decreasing sizes (the
// logarithmic method, as in graph.Builder). Add is O(1) amortized with
// an O(log² deg) membership probe; iteration is (u, v) ascending without
// any global sort, because buckets are visited in order and each bucket
// compacts to one sorted run.
//
// The zero value is unusable; construct with NewSet. Not safe for
// concurrent use.
type Set struct {
	buckets []bucket
	m       int
}

type bucket struct {
	runs [][]int32 // sorted, duplicate-free; sizes shrink left to right
	tail []int32   // recent, unsorted, at most tailLimit
}

// NewSet returns an empty edge set over n vertices.
func NewSet(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{buckets: make([]bucket, n)}
}

// N returns the vertex-universe size.
func (s *Set) N() int { return len(s.buckets) }

// Len returns the number of distinct edges added.
func (s *Set) Len() int { return s.m }

// Add inserts the undirected edge {u, v}, reporting whether it was new.
// Self-loops and out-of-range endpoints panic: every caller feeds
// adjacency-derived pairs, so a bad edge is a construction bug, not an
// input error.
func (s *Set) Add(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	if u == v || u < 0 || v >= len(s.buckets) {
		panic(fmt.Sprintf("edgeset: invalid edge {%d,%d} over n=%d", u, v, len(s.buckets)))
	}
	b := &s.buckets[u]
	w := int32(v)
	if b.contains(w) {
		return false
	}
	b.tail = append(b.tail, w)
	s.m++
	if len(b.tail) >= tailLimit {
		b.flush()
	}
	return true
}

// Contains reports whether {u, v} has been added.
func (s *Set) Contains(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	if u == v || u < 0 || v >= len(s.buckets) {
		return false
	}
	return s.buckets[u].contains(int32(v))
}

func (b *bucket) contains(w int32) bool {
	if slices.Contains(b.tail, w) {
		return true
	}
	for _, run := range b.runs {
		if _, ok := slices.BinarySearch(run, w); ok {
			return true
		}
	}
	return false
}

// flush turns the tail into a sorted run and restores the geometric
// run-size invariant. Add already rejected duplicates, so merges need no
// dedupe pass.
func (b *bucket) flush() {
	if len(b.tail) == 0 {
		return
	}
	run := b.tail
	slices.Sort(run)
	b.tail = nil
	b.runs = append(b.runs, run)
	for len(b.runs) >= 2 {
		a, c := b.runs[len(b.runs)-2], b.runs[len(b.runs)-1]
		if len(a) > 2*len(c) {
			break
		}
		b.runs = b.runs[:len(b.runs)-2]
		b.runs = append(b.runs, mergeRuns(a, c))
	}
}

func mergeRuns(a, c []int32) []int32 {
	out := make([]int32, 0, len(a)+len(c))
	i, j := 0, 0
	for i < len(a) && j < len(c) {
		if a[i] < c[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, c[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, c[j:]...)
}

// compact merges every bucket down to a single sorted run, making
// iteration a flat scan. Idempotent; Add remains valid afterwards.
func (s *Set) compact() {
	for i := range s.buckets {
		b := &s.buckets[i]
		b.flush()
		for len(b.runs) > 1 {
			a, c := b.runs[len(b.runs)-2], b.runs[len(b.runs)-1]
			b.runs = b.runs[:len(b.runs)-2]
			b.runs = append(b.runs, mergeRuns(a, c))
		}
	}
}

// All yields every edge as (u, v) with u < v, ascending by u then v —
// the canonical order, produced structurally rather than by sorting.
// The sequence snapshots the set as of the All call: iterate it before
// any further Add, or call All again to observe the additions.
func (s *Set) All() iter.Seq2[int32, int32] {
	s.compact()
	return func(yield func(u, v int32) bool) {
		for u := range s.buckets {
			b := &s.buckets[u]
			if len(b.runs) == 0 {
				continue
			}
			for _, v := range b.runs[0] {
				if !yield(int32(u), v) {
					return
				}
			}
		}
	}
}

// AddSet adds every edge of o, returning how many were new. Used where a
// protocol step accumulates edges locally (with step-local dedupe
// semantics) before the phase merges them into the spanner.
func (s *Set) AddSet(o *Set) int {
	added := 0
	for u, v := range o.All() {
		if s.Add(int(u), int(v)) {
			added++
		}
	}
	return added
}

// Graph freezes the set into a CSR graph over n = N() vertices. The
// emission is direct: bucket order yields edges sorted by (u, v), which
// fills every adjacency list in ascending order in one pass — no
// builder, no re-dedupe, no per-vertex sort.
func (s *Set) Graph() *graph.Graph {
	s.compact()
	return graph.FromSortedEdgeSeq(len(s.buckets), s.m, s.All())
}

// Assignment is a dense vertex-keyed map with O(1) clear: an int32 value
// slice stamped by a generation counter. It replaces the map[int]int /
// map[int]bool cluster bookkeeping (superclustering assignments, spanned
// sets, per-iteration seen-sets) with two flat slices that are never
// reallocated across phases.
//
// The zero value is unusable; construct with NewAssignment.
type Assignment struct {
	val []int32
	gen []uint32
	cur uint32
	n   int
}

// NewAssignment returns an empty assignment over vertices [0, n).
func NewAssignment(n int) *Assignment {
	if n < 0 {
		n = 0
	}
	return &Assignment{val: make([]int32, n), gen: make([]uint32, n), cur: 1}
}

// Reset clears the assignment in O(1) by bumping the generation.
func (a *Assignment) Reset() {
	a.cur++
	a.n = 0
	if a.cur == 0 { // generation wrap: restamp so stale entries cannot alias
		clear(a.gen)
		a.cur = 1
	}
}

// Set assigns value x to vertex v.
func (a *Assignment) Set(v int, x int32) {
	if a.gen[v] != a.cur {
		a.gen[v] = a.cur
		a.n++
	}
	a.val[v] = x
}

// Get returns v's assigned value and whether v is assigned.
func (a *Assignment) Get(v int) (int32, bool) {
	if a.gen[v] != a.cur {
		return 0, false
	}
	return a.val[v], true
}

// Has reports whether v is assigned.
func (a *Assignment) Has(v int) bool { return a.gen[v] == a.cur }

// Len returns the number of assigned vertices.
func (a *Assignment) Len() int { return a.n }

// Cap returns the vertex-universe size.
func (a *Assignment) Cap() int { return len(a.val) }

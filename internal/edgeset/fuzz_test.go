package edgeset

import "testing"

// FuzzSetSortedRunDedup feeds arbitrary byte streams as edge sequences
// into the sorted-run machinery (Add → tail → flush → geometric merges →
// compact) and cross-checks every observable against a map model. The
// vertex universe is kept small (n=17) so the fuzzer hammers duplicate
// handling, run merges, and bucket compaction rather than wandering a
// sparse key space.
func FuzzSetSortedRunDedup(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 2, 3})
	f.Add([]byte{5, 6, 6, 5, 5, 7, 5, 8, 5, 9, 5, 10, 5, 11, 5, 12, 5, 13, 5, 14, 5, 15, 5, 16, 5, 6})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 17
		s := NewSet(n)
		ref := map[[2]int32]bool{}
		for i := 0; i+1 < len(data); i += 2 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u == v {
				continue
			}
			k := normKey(u, v)
			wantNew := !ref[k]
			ref[k] = true
			if s.Add(u, v) != wantNew {
				t.Fatalf("Add(%d,%d): newness disagrees with model", u, v)
			}
			if !s.Contains(u, v) {
				t.Fatalf("Contains(%d,%d) false right after Add", u, v)
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("Len=%d, model %d", s.Len(), len(ref))
		}
		var prev [2]int32 = [2]int32{-1, -1}
		count := 0
		for u, v := range s.All() {
			if !ref[[2]int32{u, v}] {
				t.Fatalf("iteration yields {%d,%d} not in model", u, v)
			}
			if u < prev[0] || (u == prev[0] && v <= prev[1]) {
				t.Fatalf("iteration unsorted/duplicated at {%d,%d}", u, v)
			}
			prev = [2]int32{u, v}
			count++
		}
		if count != len(ref) {
			t.Fatalf("iterated %d edges, model %d", count, len(ref))
		}
		// CSR emission round-trips.
		g := s.Graph()
		if g.M() != len(ref) {
			t.Fatalf("emitted graph has %d edges, model %d", g.M(), len(ref))
		}
		for k := range ref {
			if !g.HasEdge(int(k[0]), int(k[1])) {
				t.Fatalf("emitted graph missing {%d,%d}", k[0], k[1])
			}
		}
	})
}

package edgeset

import (
	"testing"

	"nearspan/internal/graph"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(5)
	if s.Len() != 0 || s.N() != 5 {
		t.Fatalf("fresh set: Len=%d N=%d", s.Len(), s.N())
	}
	if !s.Add(3, 1) {
		t.Error("first add not new")
	}
	if s.Add(1, 3) {
		t.Error("normalized duplicate reported new")
	}
	if !s.Contains(1, 3) || !s.Contains(3, 1) {
		t.Error("Contains misses in either orientation")
	}
	if s.Contains(0, 2) {
		t.Error("Contains finds absent edge")
	}
	if s.Contains(1, 1) || s.Contains(-1, 2) || s.Contains(1, 99) {
		t.Error("Contains accepts invalid edges")
	}
	if s.Len() != 1 {
		t.Errorf("Len=%d after one distinct add", s.Len())
	}
}

func TestSetAddPanicsOnInvalid(t *testing.T) {
	for _, e := range [][2]int{{2, 2}, {-1, 3}, {0, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d,%d) did not panic", e[0], e[1])
				}
			}()
			NewSet(5).Add(e[0], e[1])
		}()
	}
}

// Iteration is (u, v) ascending regardless of insertion order, with no
// global sort — the determinism-without-sorting property core relies on.
func TestSetIterationCanonicalOrder(t *testing.T) {
	s := NewSet(100)
	// Insert in a scrambled order with enough volume to force flushes.
	for i := 97; i >= 0; i-- {
		for j := i + 1; j < 100; j += 7 {
			s.Add(j, i) // reversed orientation on purpose
		}
	}
	var prev [2]int32 = [2]int32{-1, -1}
	count := 0
	for u, v := range s.All() {
		if u >= v {
			t.Fatalf("edge {%d,%d} not normalized", u, v)
		}
		if u < prev[0] || (u == prev[0] && v <= prev[1]) {
			t.Fatalf("iteration out of order: {%d,%d} after {%d,%d}", u, v, prev[0], prev[1])
		}
		prev = [2]int32{u, v}
		count++
	}
	if count != s.Len() {
		t.Errorf("iterated %d edges, Len=%d", count, s.Len())
	}
}

func TestSetGraphMatchesBuilder(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}, {4, 0}}
	s := NewSet(5)
	b := graph.NewBuilder(5)
	for _, e := range edges {
		s.Add(e[0], e[1])
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	got, want := s.Graph(), b.Build()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("graph shape: got (%d,%d), want (%d,%d)", got.N(), got.M(), want.N(), want.M())
	}
	want.Edges(func(u, v int) {
		if !got.HasEdge(u, v) {
			t.Errorf("edge {%d,%d} missing from emitted CSR", u, v)
		}
	})
	for v := 0; v < got.N(); v++ {
		if got.Degree(v) != want.Degree(v) {
			t.Errorf("degree of %d: got %d, want %d", v, got.Degree(v), want.Degree(v))
		}
	}
	if got.MaxDegree() != want.MaxDegree() {
		t.Errorf("MaxDegree: got %d, want %d", got.MaxDegree(), want.MaxDegree())
	}
}

func TestSetAddAfterGraph(t *testing.T) {
	s := NewSet(4)
	s.Add(0, 1)
	g1 := s.Graph()
	if !s.Add(2, 3) {
		t.Error("Add after Graph broken")
	}
	if s.Add(0, 1) {
		t.Error("dedupe lost after compaction")
	}
	g2 := s.Graph()
	if g1.M() != 1 || g2.M() != 2 {
		t.Errorf("graphs have %d and %d edges, want 1 and 2", g1.M(), g2.M())
	}
}

func TestSetAddSet(t *testing.T) {
	a, b := NewSet(6), NewSet(6)
	a.Add(0, 1)
	a.Add(1, 2)
	b.Add(1, 2)
	b.Add(3, 4)
	b.Add(4, 5)
	if added := a.AddSet(b); added != 2 {
		t.Errorf("AddSet added %d, want 2 (one overlap)", added)
	}
	if a.Len() != 4 {
		t.Errorf("merged Len=%d, want 4", a.Len())
	}
}

func TestEmptySetGraph(t *testing.T) {
	g := NewSet(3).Graph()
	if g.N() != 3 || g.M() != 0 {
		t.Errorf("empty emission: n=%d m=%d", g.N(), g.M())
	}
}

func TestAssignment(t *testing.T) {
	a := NewAssignment(4)
	if a.Len() != 0 || a.Cap() != 4 {
		t.Fatalf("fresh assignment: Len=%d Cap=%d", a.Len(), a.Cap())
	}
	a.Set(2, 7)
	a.Set(0, -1)
	a.Set(2, 9) // overwrite, not a new entry
	if a.Len() != 2 {
		t.Errorf("Len=%d, want 2", a.Len())
	}
	if x, ok := a.Get(2); !ok || x != 9 {
		t.Errorf("Get(2)=(%d,%v)", x, ok)
	}
	if x, ok := a.Get(0); !ok || x != -1 {
		t.Errorf("Get(0)=(%d,%v): negative values must round-trip", x, ok)
	}
	if a.Has(1) {
		t.Error("Has(1) true without Set")
	}
	a.Reset()
	if a.Len() != 0 || a.Has(2) || a.Has(0) {
		t.Error("Reset did not clear")
	}
	if _, ok := a.Get(2); ok {
		t.Error("Get finds entry across Reset")
	}
	a.Set(3, 5)
	if x, ok := a.Get(3); !ok || x != 5 || a.Len() != 1 {
		t.Error("assignment unusable after Reset")
	}
}

// Generation wrap: after 2^32 resets the stamps must not alias stale
// entries. Simulated by forcing the counter near the wrap point.
func TestAssignmentGenerationWrap(t *testing.T) {
	a := NewAssignment(3)
	a.Set(1, 42)
	a.cur = ^uint32(0) // next Reset wraps
	a.gen[2] = ^uint32(0)
	a.Reset()
	if a.Has(1) || a.Has(2) {
		t.Error("stale entry visible after generation wrap")
	}
	a.Set(0, 1)
	if !a.Has(0) || a.Has(1) || a.Has(2) {
		t.Error("assignment inconsistent after wrap")
	}
}

package delta

import (
	"math/rand"
	"slices"
	"testing"

	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/protocols"
)

// randomCenters draws each vertex as a center with probability p.
func randomCenters(r *rand.Rand, n int, p float64) []int {
	var cs []int
	for v := 0; v < n; v++ {
		if r.Float64() < p {
			cs = append(cs, v)
		}
	}
	return cs
}

// requireNNEqual compares two NN tables row by row (keys, distances,
// ports, popularity) and the transcripts phase by phase.
func requireNNEqual(t *testing.T, tag string, n int, delta int32,
	got protocols.NNResult, gotT protocols.NNTranscript,
	want protocols.NNResult, wantT protocols.NNTranscript) {
	t.Helper()
	for v := 0; v < n; v++ {
		gk, gd, gp := got.Row(v)
		wk, wd, wp := want.Row(v)
		if !slices.Equal(gk, wk) || !slices.Equal(gd, wd) || !slices.Equal(gp, wp) {
			t.Fatalf("%s: vertex %d row differs:\n got  %v %v %v\n want %v %v %v",
				tag, v, gk, gd, gp, wk, wd, wp)
		}
		if got.Popular[v] != want.Popular[v] {
			t.Fatalf("%s: vertex %d popularity differs", tag, v)
		}
		for p := int32(1); p < delta; p++ {
			if !slices.Equal(gotT.ForwardsAt(v, p), wantT.ForwardsAt(v, p)) {
				t.Fatalf("%s: vertex %d forwards at phase %d differ: %v vs %v",
					tag, v, p, gotT.ForwardsAt(v, p), wantT.ForwardsAt(v, p))
			}
		}
	}
}

// DiffNN's spliced table and transcript must be bit-identical to a
// from-scratch central run on the patched graph — across random graphs,
// random deltas, random center sets, and center-set changes between the
// runs.
func TestDiffNNMatchesFromScratch(t *testing.T) {
	type workload struct {
		name string
		g    *graph.Graph
	}
	workloads := []workload{
		{"gnp", gen.GNP(150, 0.05, 11, true)},
		{"grid", gen.Grid(12, 12)},
		{"torus", gen.Torus(10, 10)},
	}
	for _, w := range workloads {
		for seed := int64(1); seed <= 6; seed++ {
			r := rand.New(rand.NewSource(seed))
			deg := 2 + r.Intn(4)
			dl := int32(2 + r.Intn(6))
			prevCenters := randomCenters(r, w.g.N(), 0.15)
			prevNN, prevT := protocols.CentralNearNeighborsRec(
				w.g, prevCenters, deg, dl, protocols.NewTranscriptRecorder(w.g.N()))

			b := randomBatch(r, w.g, 1+r.Intn(6))
			gNew, err := Apply(w.g, b)
			if err != nil {
				t.Fatalf("%s seed %d: %v", w.name, seed, err)
			}

			// Same centers, and a perturbed center set (some vertices
			// gain or lose centerhood between the runs).
			centerSets := [][]int{prevCenters}
			perturbed := slices.Clone(prevCenters)
			if len(perturbed) > 1 {
				perturbed = slices.Delete(perturbed, 0, 1)
			}
			extra := r.Intn(w.g.N())
			if !slices.Contains(perturbed, extra) {
				perturbed = append(perturbed, extra)
				slices.Sort(perturbed)
			}
			centerSets = append(centerSets, perturbed)

			for ci, centers := range centerSets {
				d, ok := DiffNN(gNew, &prevNN, &prevT, centers, prevCenters,
					b.Endpoints(), deg, dl, 0)
				if !ok {
					t.Fatalf("%s seed %d set %d: unexpected overflow", w.name, seed, ci)
				}
				wantNN, wantT := protocols.CentralNearNeighborsRec(
					gNew, centers, deg, dl, protocols.NewTranscriptRecorder(gNew.N()))
				tag := w.name
				requireNNEqual(t, tag, gNew.N(), dl, d.NN, d.Transcript, wantNN, wantT)
				if d.Tracked <= 0 || d.Tracked > gNew.N() {
					t.Fatalf("%s seed %d: implausible tracked count %d", tag, seed, d.Tracked)
				}
			}
		}
	}
}

// Rebuild state must chain: a second delta diffed against the first
// diff's spliced output equals a from-scratch run on the doubly patched
// graph.
func TestDiffNNChains(t *testing.T) {
	g0 := gen.GNP(130, 0.06, 23, true)
	deg, dl := 3, int32(5)
	for seed := int64(1); seed <= 4; seed++ {
		r := rand.New(rand.NewSource(100 + seed))
		centers := randomCenters(r, g0.N(), 0.2)
		nn, tr := protocols.CentralNearNeighborsRec(
			g0, centers, deg, dl, protocols.NewTranscriptRecorder(g0.N()))
		g := g0
		for step := 0; step < 3; step++ {
			b := randomBatch(r, g, 1+r.Intn(5))
			gNew, err := Apply(g, b)
			if err != nil {
				t.Fatal(err)
			}
			d, ok := DiffNN(gNew, &nn, &tr, centers, centers, b.Endpoints(), deg, dl, 0)
			if !ok {
				t.Fatalf("seed %d step %d: unexpected overflow", seed, step)
			}
			wantNN, wantT := protocols.CentralNearNeighborsRec(
				gNew, centers, deg, dl, protocols.NewTranscriptRecorder(gNew.N()))
			requireNNEqual(t, "chain", gNew.N(), dl, d.NN, d.Transcript, wantNN, wantT)
			g, nn, tr = gNew, d.NN, d.Transcript
		}
	}
}

// A tiny maxTracked must trip the overflow signal on a batch that
// perturbs more than one vertex.
func TestDiffNNOverflow(t *testing.T) {
	g := gen.Grid(8, 8)
	deg, dl := 3, int32(4)
	centers := []int{0, 9, 27, 45, 63}
	nn, tr := protocols.CentralNearNeighborsRec(
		g, centers, deg, dl, protocols.NewTranscriptRecorder(g.N()))
	b := &Batch{Delete: []Edge{{0, 1}, {8, 16}}}
	gNew, err := Apply(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := DiffNN(gNew, &nn, &tr, centers, centers, b.Endpoints(), deg, dl, 2); ok {
		t.Fatal("DiffNN did not report overflow with maxTracked=2")
	}
	if _, ok := DiffNN(gNew, &nn, &tr, centers, centers, b.Endpoints(), deg, dl, 0); !ok {
		t.Fatal("DiffNN overflowed with unlimited budget")
	}
}

package delta

import (
	"slices"

	"nearspan/internal/graph"
	"nearspan/internal/rng"
)

// RandomBatch samples a churn delta that agrees with g: k existing edges
// to delete (uniform over endpoints, then over their incident edges) and
// k absent pairs to insert. Deterministic in (g, k, seed) — the shared
// workload generator of the churn experiment, the delta benchmarks, and
// the CLI demo, so their deltas and hence their rebuild costs line up.
// The batch is returned normalized. k must leave the sample space room:
// it is capped at g.M() deletes.
func RandomBatch(g *graph.Graph, k int, seed uint64) *Batch {
	r := rng.New(seed)
	n := g.N()
	if k > g.M() {
		k = g.M()
	}
	b := &Batch{}
	for len(b.Delete) < k {
		u := r.Intn(n)
		nb := g.Neighbors(u)
		if len(nb) == 0 {
			continue
		}
		v := int(nb[r.Intn(len(nb))])
		e := Edge{U: int32(min(u, v)), V: int32(max(u, v))}
		if _, ok := slices.BinarySearchFunc(b.Delete, e, cmpEdge); !ok {
			b.Delete = append(b.Delete, e)
			slices.SortFunc(b.Delete, cmpEdge)
		}
	}
	for len(b.Insert) < k {
		u, v := r.Intn(n), r.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		e := Edge{U: int32(min(u, v)), V: int32(max(u, v))}
		if _, ok := slices.BinarySearchFunc(b.Insert, e, cmpEdge); !ok {
			b.Insert = append(b.Insert, e)
			slices.SortFunc(b.Insert, cmpEdge)
		}
	}
	// Already canonical, but Normalize also cross-checks the two lists.
	if err := b.Normalize(n); err != nil {
		panic("delta: RandomBatch produced an invalid batch: " + err.Error())
	}
	return b
}

// Package delta implements the edge-delta side of incremental spanner
// rebuilds: validated insert/delete batches, CSR graph patching, and the
// transcript-diff near-neighbors engine that recomputes Algorithm 1's
// table only on the dirty frontier a delta actually perturbs.
//
// The package deliberately knows nothing about the construction pipeline
// (internal/core orchestrates rebuilds and imports this package, not the
// other way around). Its contract is exact, not approximate: DiffNN's
// spliced table is bit-identical to what a from-scratch run of the
// near-neighbors protocol on the patched graph would produce — the
// property the golden-fingerprint rebuild guarantee rests on, and the
// one the randomized churn suite pins.
package delta

import (
	"fmt"
	"iter"
	"slices"

	"nearspan/internal/graph"
)

// Edge is one undirected edge of a delta batch.
type Edge struct {
	U, V int32
}

// Batch is an edge delta: edges to insert and edges to delete, applied
// atomically to a graph. Normalize before use; Apply normalizes
// implicitly.
type Batch struct {
	Insert []Edge
	Delete []Edge
}

// Size returns the total number of operations in the batch.
func (b *Batch) Size() int { return len(b.Insert) + len(b.Delete) }

// Normalize validates the batch against an n-vertex graph and brings it
// to canonical form: every edge u < v, each list sorted ascending and
// deduplicated. It rejects self-loops, out-of-range endpoints, and edges
// present in both lists (an insert+delete of the same edge is ambiguous,
// not a no-op: the batch is applied atomically, not sequentially).
func (b *Batch) Normalize(n int) error {
	norm := func(list []Edge, what string) ([]Edge, error) {
		for i, e := range list {
			if e.U == e.V {
				return nil, fmt.Errorf("delta: %s self-loop on vertex %d", what, e.U)
			}
			if e.U < 0 || e.V < 0 || int(e.U) >= n || int(e.V) >= n {
				return nil, fmt.Errorf("delta: %s edge {%d,%d} out of range [0,%d)", what, e.U, e.V, n)
			}
			if e.U > e.V {
				list[i] = Edge{U: e.V, V: e.U}
			}
		}
		slices.SortFunc(list, cmpEdge)
		return slices.Compact(list), nil
	}
	var err error
	if b.Insert, err = norm(b.Insert, "insert"); err != nil {
		return err
	}
	if b.Delete, err = norm(b.Delete, "delete"); err != nil {
		return err
	}
	for _, e := range b.Insert {
		if _, ok := slices.BinarySearchFunc(b.Delete, e, cmpEdge); ok {
			return fmt.Errorf("delta: edge {%d,%d} appears in both insert and delete", e.U, e.V)
		}
	}
	return nil
}

// Endpoints returns the sorted distinct endpoints touched by the batch —
// the seed set of the dirty frontier (a touched vertex's adjacency, and
// hence its port numbering and hearing stream, changed).
func (b *Batch) Endpoints() []int {
	out := make([]int, 0, 2*b.Size())
	for _, e := range b.Insert {
		out = append(out, int(e.U), int(e.V))
	}
	for _, e := range b.Delete {
		out = append(out, int(e.U), int(e.V))
	}
	slices.Sort(out)
	return slices.Compact(out)
}

func cmpEdge(a, c Edge) int {
	if a.U != c.U {
		return int(a.U) - int(c.U)
	}
	return int(a.V) - int(c.V)
}

// Apply normalizes b and produces the patched graph: g's edge set minus
// b.Delete plus b.Insert, as a fresh CSR. It rejects inserting an edge
// already present and deleting one that is not — a delta that disagrees
// with the graph it claims to patch is a caller bug, not a merge. g is
// not modified. The patched CSR is bit-identical to building the target
// edge set from scratch (both go through the same sorted-stream
// constructor), so fingerprints and port numberings agree.
func Apply(g *graph.Graph, b *Batch) (*graph.Graph, error) {
	if err := b.Normalize(g.N()); err != nil {
		return nil, err
	}
	for _, e := range b.Insert {
		if g.HasEdge(int(e.U), int(e.V)) {
			return nil, fmt.Errorf("delta: insert edge {%d,%d} already present", e.U, e.V)
		}
	}
	for _, e := range b.Delete {
		if !g.HasEdge(int(e.U), int(e.V)) {
			return nil, fmt.Errorf("delta: delete edge {%d,%d} not present", e.U, e.V)
		}
	}
	m := g.M() + len(b.Insert) - len(b.Delete)
	return graph.FromSortedEdgeSeq(g.N(), m, mergedEdges(g, b)), nil
}

// mergedEdges yields g's edges merged with the batch's sorted inserts,
// skipping its deletes, in ascending (u, v) order — the stream contract
// of graph.FromSortedEdgeSeq. The sequence is re-iterable.
func mergedEdges(g *graph.Graph, b *Batch) iter.Seq2[int32, int32] {
	return func(yield func(int32, int32) bool) {
		i, d := 0, 0
		alive := true
		g.Edges(func(u, v int) {
			if !alive {
				return
			}
			e := Edge{U: int32(u), V: int32(v)}
			for i < len(b.Insert) && cmpEdge(b.Insert[i], e) < 0 {
				if !yield(b.Insert[i].U, b.Insert[i].V) {
					alive = false
					return
				}
				i++
			}
			if d < len(b.Delete) && b.Delete[d] == e {
				d++
				return
			}
			if !yield(e.U, e.V) {
				alive = false
			}
		})
		if !alive {
			return
		}
		for ; i < len(b.Insert); i++ {
			if !yield(b.Insert[i].U, b.Insert[i].V) {
				return
			}
		}
	}
}

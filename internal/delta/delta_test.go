package delta

import (
	"math/rand"
	"testing"

	"nearspan/internal/gen"
	"nearspan/internal/graph"
)

// randomBatch draws k deletions from g's edges and k insertions of
// absent edges, deterministically from r.
func randomBatch(r *rand.Rand, g *graph.Graph, k int) *Batch {
	var edges []Edge
	g.Edges(func(u, v int) {
		edges = append(edges, Edge{U: int32(u), V: int32(v)})
	})
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	if k > len(edges) {
		k = len(edges)
	}
	b := &Batch{Delete: append([]Edge(nil), edges[:k]...)}
	n := g.N()
	for len(b.Insert) < k {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u == v || g.HasEdge(int(u), int(v)) {
			continue
		}
		e := Edge{U: min(u, v), V: max(u, v)}
		dup := false
		for _, x := range b.Insert {
			if x == e {
				dup = true
				break
			}
		}
		if !dup {
			b.Insert = append(b.Insert, e)
		}
	}
	return b
}

// fromScratch rebuilds the patched edge set without the merge path, as
// the independent reference for Apply.
func fromScratch(t *testing.T, g *graph.Graph, b *Batch) *graph.Graph {
	t.Helper()
	type pair = Edge
	drop := make(map[pair]bool, len(b.Delete))
	for _, e := range b.Delete {
		drop[e] = true
	}
	var edges []pair
	g.Edges(func(u, v int) {
		if e := (pair{U: int32(u), V: int32(v)}); !drop[e] {
			edges = append(edges, e)
		}
	})
	edges = append(edges, b.Insert...)
	gb := graph.NewBuilder(g.N())
	for _, e := range edges {
		if err := gb.AddEdge(int(e.U), int(e.V)); err != nil {
			t.Fatal(err)
		}
	}
	return gb.Build()
}

func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		b    Batch
	}{
		{"self-loop", Batch{Insert: []Edge{{3, 3}}}},
		{"out-of-range", Batch{Delete: []Edge{{0, 99}}}},
		{"negative", Batch{Insert: []Edge{{-1, 2}}}},
		{"both-lists", Batch{Insert: []Edge{{1, 2}}, Delete: []Edge{{2, 1}}}},
	}
	for _, c := range cases {
		if err := c.b.Normalize(10); err == nil {
			t.Errorf("%s: Normalize accepted invalid batch", c.name)
		}
	}
	b := Batch{Insert: []Edge{{5, 2}, {2, 5}, {1, 3}}}
	if err := b.Normalize(10); err != nil {
		t.Fatal(err)
	}
	if len(b.Insert) != 2 || b.Insert[0] != (Edge{1, 3}) || b.Insert[1] != (Edge{2, 5}) {
		t.Errorf("Normalize canonical form wrong: %v", b.Insert)
	}
}

func TestApplyRejectsDisagreement(t *testing.T) {
	g := gen.Grid(4, 4)
	if _, err := Apply(g, &Batch{Insert: []Edge{{0, 1}}}); err == nil {
		t.Error("Apply accepted insert of a present edge")
	}
	if _, err := Apply(g, &Batch{Delete: []Edge{{0, 15}}}); err == nil {
		t.Error("Apply accepted delete of an absent edge")
	}
}

// Apply's merged-stream CSR must be bit-identical (same fingerprint,
// same port numbering) to building the patched edge set from scratch.
func TestApplyMatchesFromScratch(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := gen.GNP(120, 0.08, uint64(seed), true)
		b := randomBatch(r, g, 1+r.Intn(12))
		got, err := Apply(g, b)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := fromScratch(t, g, b)
		gm, gh := graph.Fingerprint(got)
		wm, wh := graph.Fingerprint(want)
		if gm != wm || gh != wh {
			t.Fatalf("seed %d: patched graph differs: (%d,%s) vs (%d,%s)", seed, gm, gh, wm, wh)
		}
		for v := 0; v < got.N(); v++ {
			gn, wn := got.Neighbors(v), want.Neighbors(v)
			if len(gn) != len(wn) {
				t.Fatalf("seed %d: vertex %d degree differs", seed, v)
			}
			for i := range gn {
				if gn[i] != wn[i] {
					t.Fatalf("seed %d: vertex %d port %d differs", seed, v, i)
				}
			}
		}
	}
}

func TestEndpoints(t *testing.T) {
	b := &Batch{Insert: []Edge{{4, 7}}, Delete: []Edge{{2, 4}}}
	got := b.Endpoints()
	want := []int{2, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("Endpoints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Endpoints = %v, want %v", got, want)
		}
	}
}

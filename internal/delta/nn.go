package delta

import (
	"slices"

	"nearspan/internal/graph"
	"nearspan/internal/protocols"
)

// NNDiff is the outcome of one transcript-diff near-neighbors run: the
// spliced table (bit-identical to a from-scratch run on the patched
// graph), the patched-run transcript (so rebuilds chain), and the dirty
// frontier's size.
type NNDiff struct {
	NN         protocols.NNResult
	Transcript protocols.NNTranscript
	Tracked    int
}

// DiffNN recomputes Algorithm 1's output on the patched graph gNew by
// replaying only a dirty frontier against the previous run's forward
// transcript, instead of re-running the protocol over every vertex.
//
// The soundness of the frontier scoping rests on one structural fact of
// the protocol: the only state a vertex exports is its per-phase forward
// list (and, at phase 0, its center announcement). A vertex's hearings —
// and therefore its forwards and its stored Known/Via entries — are a
// pure function of its neighbor set and its neighbors' forwards. So a
// vertex whose neighborhood is unchanged and whose neighbors' forwards
// match the previous run hears exactly what it heard before, and its
// entire row can be spliced verbatim.
//
// The frontier is seeded with the delta endpoints (their adjacency, port
// numbering, and hearing stream changed) plus every neighbor of a vertex
// whose centerhood changed between the runs (its phase-0 announcement
// changed), and grows by one rule: when a tracked vertex's recomputed
// forward list for phase p differs from its transcript entry, its
// neighbors join the frontier at phase p+1 — exactly the vertices whose
// hearings the divergence can reach, exactly when it reaches them.
// Tracked vertices are replayed in full from their join phase, seeded
// with their previous row's entries of distance < join phase (entry
// distances equal the phase each entry was stored, so the prefix state
// is recoverable from the final row).
//
// prevNN, prevT, and prevCenters describe the previous run; centers is
// the patched run's center set. When the frontier exceeds maxTracked
// vertices (<= 0 means unlimited) the diff abandons and reports ok =
// false — the fallback-to-full signal.
func DiffNN(gNew *graph.Graph, prevNN *protocols.NNResult, prevT *protocols.NNTranscript,
	centers, prevCenters, seeds []int, deg int, delta int32, maxTracked int) (NNDiff, bool) {

	n := gNew.N()
	isC := make([]bool, n)
	for _, c := range centers {
		isC[c] = true
	}
	wasC := make([]bool, n)
	for _, c := range prevCenters {
		wasC[c] = true
	}

	tracked := make([]bool, n)
	joinPhase := make([]int32, n)
	var order []int32
	known := make([]map[int64]int32, n)
	via := make([]map[int64]int32, n)
	rows := make([][]protocols.ForwardSeg, n) // rebuilt transcript rows (tracked only)
	curList := make([][]int64, n)             // RLE state: list of the latest row segment
	prevFwd := make([][]int64, n)             // tracked forwards at the last processed phase
	nextFwd := make([][]int64, n)

	overflow := false
	join := func(v int, p int32) {
		if tracked[v] || overflow {
			return
		}
		tracked[v] = true
		joinPhase[v] = p
		order = append(order, int32(v))
		if maxTracked > 0 && len(order) > maxTracked {
			overflow = true
			return
		}
		// Seed the replay state with the prefix the vertex is known to
		// share with the previous run: stored entries of distance < p,
		// and transcript segments starting before p.
		keys, dist, ports := prevNN.Row(v)
		k := make(map[int64]int32)
		vi := make(map[int64]int32)
		for i, c := range keys {
			if dist[i] < p {
				k[c] = dist[i]
				vi[c] = ports[i]
			}
		}
		known[v], via[v] = k, vi
		segs := prevT.Segs[v]
		cut := 0
		for cut < len(segs) && segs[cut].From < p {
			cut++
		}
		rows[v] = slices.Clone(segs[:cut])
		if cut > 0 {
			curList[v] = segs[cut-1].IDs
		}
	}

	for _, v := range seeds {
		join(v, 1)
	}
	for v := 0; v < n && !overflow; v++ {
		if isC[v] != wasC[v] {
			for _, u := range gNew.Neighbors(v) {
				join(int(u), 1)
			}
		}
	}

	// liveUntil is the last phase at which any clean vertex can still
	// forward according to the transcript (delta = alive to the end). The
	// replay loop must run while clean waves are live or tracked vertices
	// still forward; past both, the network is dead and the loop stops.
	liveUntil := int32(0)
	for _, segs := range prevT.Segs {
		if len(segs) == 0 {
			continue
		}
		if last := segs[len(segs)-1]; len(last.IDs) > 0 {
			liveUntil = delta
			break
		} else if last.From-1 > liveUntil {
			liveUntil = last.From - 1
		}
	}

	type cand struct {
		id   int64
		port int32
	}
	var heard []cand
	var fwds []int64

	for p := int32(1); p <= delta && !overflow; p++ {
		if len(order) == 0 {
			break
		}
		anyFwd := false
		nProc := len(order) // joins during this phase start at p+1
		for oi := 0; oi < nProc && !overflow; oi++ {
			v := int(order[oi])
			if joinPhase[v] > p {
				continue
			}
			// Hearings: phase 1 hears announcements, later phases hear
			// what neighbors forwarded at p-1 — recomputed lists for
			// tracked neighbors already replaying, transcript entries for
			// everyone else.
			heard = heard[:0]
			if p == 1 {
				for pos, u := range gNew.Neighbors(v) {
					if isC[u] {
						heard = append(heard, cand{id: int64(u), port: int32(pos)})
					}
				}
			} else {
				for pos, u := range gNew.Neighbors(v) {
					var fl []int64
					if tracked[u] && joinPhase[u] < p {
						fl = prevFwd[u]
					} else {
						fl = prevT.ForwardsAt(int(u), p-1)
					}
					for _, c := range fl {
						if c != int64(v) {
							heard = append(heard, cand{id: c, port: int32(pos)})
						}
					}
				}
			}
			// Neighbors are scanned in ascending ID order, so a stable
			// sort by center ID leaves each center's first (= smallest
			// sender) hearing in front — the protocol's tie-break.
			slices.SortStableFunc(heard, func(a, b cand) int {
				switch {
				case a.id < b.id:
					return -1
				case a.id > b.id:
					return 1
				}
				return 0
			})
			fwds = fwds[:0]
			kv, vv := known[v], via[v]
			prevID := int64(-1)
			for _, h := range heard {
				if h.id == prevID {
					continue
				}
				prevID = h.id
				if len(fwds) < deg+1 && p < delta {
					fwds = append(fwds, h.id)
				}
				if _, ok := kv[h.id]; !ok && len(kv) < deg {
					kv[h.id] = p
					vv[h.id] = h.port
				}
			}
			if len(fwds) > 0 {
				anyFwd = true
			}
			if p < delta {
				if !slices.Equal(curList[v], fwds) {
					seg := protocols.ForwardSeg{From: p, IDs: slices.Clone(fwds)}
					rows[v] = append(rows[v], seg)
					curList[v] = seg.IDs
				}
				// Divergence from the transcript reaches the neighbors'
				// hearings one phase later: grow the frontier there.
				if !slices.Equal(fwds, prevT.ForwardsAt(v, p)) {
					for _, u := range gNew.Neighbors(v) {
						join(int(u), p+1)
					}
				}
			}
			nextFwd[v] = append(nextFwd[v][:0], fwds...)
		}
		for oi := 0; oi < nProc; oi++ {
			v := int(order[oi])
			if joinPhase[v] <= p {
				prevFwd[v], nextFwd[v] = nextFwd[v], prevFwd[v]
			}
		}
		if p > liveUntil && !anyFwd {
			break
		}
	}
	if overflow {
		return NNDiff{}, false
	}

	// Splice: clean rows verbatim from the previous table, tracked rows
	// from the replay state; popularity from the patched center set.
	off := make([]int32, n+1)
	total := 0
	for v := 0; v < n; v++ {
		if tracked[v] {
			total += len(known[v])
		} else {
			total += prevNN.Count(v)
		}
		off[v+1] = int32(total)
	}
	keys := make([]int64, total)
	dist := make([]int32, total)
	ports := make([]int32, total)
	popular := make([]bool, n)
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		run := keys[lo:hi]
		if tracked[v] {
			i := 0
			for c := range known[v] {
				run[i] = c
				i++
			}
			slices.Sort(run)
			for j, c := range run {
				dist[int(lo)+j] = known[v][c]
				ports[int(lo)+j] = via[v][c]
			}
		} else {
			pk, pd, pp := prevNN.Row(v)
			copy(run, pk)
			copy(dist[lo:hi], pd)
			copy(ports[lo:hi], pp)
		}
		popular[v] = isC[v] && int(hi-lo) >= deg
	}
	segs := make([][]protocols.ForwardSeg, n)
	for v := 0; v < n; v++ {
		if tracked[v] {
			segs[v] = rows[v]
		} else {
			segs[v] = prevT.Segs[v]
		}
	}
	return NNDiff{
		NN:         protocols.SpliceNNResult(off, keys, dist, ports, popular),
		Transcript: protocols.NNTranscript{Segs: segs},
		Tracked:    len(order),
	}, true
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"maps"
	"slices"

	"nearspan/internal/cluster"
	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/params"
	"nearspan/internal/protocols"
	"nearspan/internal/stats"
	"nearspan/internal/trace"
)

// FigureConfig is the small grid workload the figure reproductions
// render on. Parameters are chosen so phase 0 already superclusters
// (deg_0 = 2 on a degree-4 grid). Tails of TailLen degree-2 vertices
// hang off evenly spaced grid vertices: tail vertices are unpopular, and
// those beyond the phase-0 forest depth stay unsuperclustered, so the
// interconnection figures (5 and 6) have content.
type FigureConfig struct {
	Rows, Cols     int
	Tails, TailLen int
	Eps            float64
	Kappa          int
	Rho            float64
	// Engine, when nonzero, runs the figure build on the distributed
	// backend with that CONGEST engine (the report then includes the
	// measured rounds); zero keeps the fast centralized build. Both
	// produce the identical spanner, so every figure is unchanged.
	Engine congest.Engine
}

// DefaultFigureConfig returns the standard figure workload: deg_0 = 3,
// so the degree-4 grid interior is popular (superclusters form, Figures
// 1-4) while the degree-2 tails are not (U_0 is nonempty, Figures 5-6).
func DefaultFigureConfig() FigureConfig {
	return FigureConfig{Rows: 12, Cols: 12, Tails: 6, TailLen: 12, Eps: 1.0 / 3, Kappa: 5, Rho: 0.3}
}

// figureGraph builds the grid plus Tails paths of TailLen vertices
// hanging off evenly spaced grid vertices. Tail IDs start at Rows*Cols,
// so the grid renderings stay valid.
func figureGraph(fc FigureConfig) *graph.Graph {
	base := fc.Rows * fc.Cols
	b := graph.NewBuilder(base + fc.Tails*fc.TailLen)
	gg := gen.Grid(fc.Rows, fc.Cols)
	gg.Edges(func(u, v int) {
		if err := b.AddEdge(u, v); err != nil {
			panic(err)
		}
	})
	next := base
	for i := 0; i < fc.Tails; i++ {
		anchor := (i * base / fc.Tails) % base
		prev := anchor
		for j := 0; j < fc.TailLen; j++ {
			if err := b.AddEdge(prev, next); err != nil {
				panic(err)
			}
			prev = next
			next++
		}
	}
	return b.Build()
}

// Figures runs the structural experiments for the paper's Figures 1–8:
// each figure's claim is verified as an invariant, and Figures 1–5 are
// rendered on the grid.
func Figures(ctx context.Context, w io.Writer, fc FigureConfig) error {
	g := figureGraph(fc)
	p, err := params.New(fc.Eps, fc.Kappa, fc.Rho, g.N())
	if err != nil {
		return err
	}
	mode := core.ModeCentralized
	if fc.Engine != 0 {
		mode = core.ModeDistributed
	}
	res, err := core.Build(ctx, g, p, core.Options{Mode: mode, Engine: fc.Engine, KeepClusters: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure workload: %dx%d grid + %d tails of length %d, %s\n",
		fc.Rows, fc.Cols, fc.Tails, fc.TailLen, p)
	if mode == core.ModeDistributed {
		fmt.Fprintf(w, "built on the CONGEST %s engine: %d rounds, %d messages\n",
			fc.Engine, res.TotalRounds, res.Messages)
	}
	fmt.Fprintln(w)

	// Recompute phase-0 internals for the renderings.
	centers := res.P[0].Centers()
	nn := protocols.CentralNearNeighbors(g, centers, p.Deg[0], p.Delta[0])
	var popular []int
	for _, c := range centers {
		if nn.Popular[c] {
			popular = append(popular, c)
		}
	}
	rs := protocols.CentralRulingSet(g, popular, p.RulingSetQ(0), p.C, g.N())

	figure1(w, fc, res, popular, rs)
	figure2(w, g, fc, res)
	figure3(w, g, fc, p, popular, rs)
	figure4(w, g, p, res, rs)
	figure5(w, g, p, res, nn)
	figure6(w, g, p, res)
	figure78(w, g, p, res)
	return nil
}

// figure1 — superclusters grown around chosen popular centers; every
// popular center is covered (Lemma 2.4).
func figure1(w io.Writer, fc FigureConfig, res *core.Result, popular, rs []int) {
	fmt.Fprintf(w, "Figure 1 — superclustering of phase 0\n")
	fmt.Fprintf(w, "  popular centers |W_0| = %d, ruling set |RS_0| = %d, superclusters |P_1| = %d\n",
		len(popular), len(rs), res.P[1].Len())
	// Lemma 2.4: popular ⊆ superclustered (i.e. no popular center in U_0).
	inU := make(map[int]bool)
	for _, cl := range res.U[0].Clusters {
		inU[cl.Center] = true
	}
	violations := 0
	for _, c := range popular {
		if inU[c] {
			violations++
		}
	}
	fmt.Fprintf(w, "  Lemma 2.4 (all popular centers superclustered): violations = %d %s\n",
		violations, passFail(violations == 0))
	fmt.Fprintf(w, "  cluster map of P_1 (%s):\n%s\n",
		trace.Legend(), indent(trace.GridClusters(fc.Rows, fc.Cols, res.P[1])))
}

// figure2 — the BFS trees of new superclusters are in H.
func figure2(w io.Writer, g *graph.Graph, fc FigureConfig, res *core.Result) {
	fmt.Fprintf(w, "Figure 2 — supercluster tree paths added to H\n")
	// Every member of a P_1 cluster reaches its center inside H within
	// R_1 (Lemma 2.3 consequence).
	rad := cluster.MaxRadius(res.Spanner, res.P[1])
	fmt.Fprintf(w, "  Rad(P_1) in H = %d, bound R_1 = %d %s\n",
		rad, res.Params.R[1], passFail(rad >= 0 && rad <= res.Params.R[1]))
	fmt.Fprintf(w, "  spanner skeleton on the grid:\n%s\n",
		indent(trace.GridEdges(fc.Rows, fc.Cols, res.Spanner)))
}

// figure3 — δ-neighborhoods of ruling-set members are pairwise disjoint.
func figure3(w io.Writer, g *graph.Graph, fc FigureConfig, p *params.Params, popular, rs []int) {
	fmt.Fprintf(w, "Figure 3 — ruling set separation (phase 0)\n")
	sepOK, domOK := protocols.VerifyRulingSet(g, popular, rs, p.RulingSetQ(0), p.SuperclusterDepth(0))
	fmt.Fprintf(w, "  (2*delta+1)-separation: %s   (2/rho_hat)*delta-domination: %s\n",
		passFail(sepOK), passFail(domOK))
	// Disjoint delta-neighborhoods follow from separation > 2*delta.
	overlaps := 0
	for i, a := range rs {
		da := g.BFSBounded(a, p.Delta[0])
		for _, b := range rs[i+1:] {
			db := g.BFSBounded(b, p.Delta[0])
			for v := 0; v < g.N(); v++ {
				if da[v] <= p.Delta[0] && db[v] <= p.Delta[0] {
					overlaps++
					break
				}
			}
		}
	}
	fmt.Fprintf(w, "  pairwise delta-neighborhood overlaps: %d %s\n", overlaps, passFail(overlaps == 0))
	marks := make(map[int]rune)
	for _, c := range popular {
		marks[c] = 'w'
	}
	for _, c := range rs {
		marks[c] = 'R'
	}
	fmt.Fprintf(w, "  W_0 ('w') and RS_0 ('R') on the grid:\n%s\n",
		indent(trace.GridMarks(fc.Rows, fc.Cols, marks)))
}

// figure4 — forest root paths: superclustered centers are near their new
// center inside H.
func figure4(w io.Writer, g *graph.Graph, p *params.Params, res *core.Result, rs []int) {
	fmt.Fprintf(w, "Figure 4 — root paths of the supercluster forest\n")
	depth := p.SuperclusterDepth(0)
	worst, bad := int32(0), 0
	for _, cl := range res.P[1].Clusters {
		dh := res.Spanner.BFS(cl.Center)
		// Old centers absorbed into this supercluster: members that were
		// centers of P_0 (phase 0: all vertices are centers, so measure
		// over members).
		for _, m := range cl.Members {
			if dh[m] > worst {
				worst = dh[m]
			}
			if dh[m] > depth+p.R[0] || dh[m] < 0 {
				bad++
			}
		}
	}
	fmt.Fprintf(w, "  max d_H(new center, absorbed center) = %d, bound (2/rho_hat)*delta_0 = %d, violations = %d %s\n",
		worst, depth, bad, passFail(bad == 0))
	fmt.Fprintln(w)
}

// figure5 — interconnection paths: Lemma 2.14 on phase 0.
func figure5(w io.Writer, g *graph.Graph, p *params.Params, res *core.Result, nn protocols.NNResult) {
	fmt.Fprintf(w, "Figure 5 — interconnection of unsuperclustered clusters\n")
	checked, bad := 0, 0
	for _, cl := range res.U[0].Clusters {
		rc := cl.Center
		dG := g.BFSBounded(rc, p.Delta[0])
		dH := res.Spanner.BFS(rc)
		for v := 0; v < g.N(); v++ {
			if v != rc && dG[v] <= p.Delta[0] {
				checked++
				if dH[v] != dG[v] {
					bad++
				}
			}
		}
	}
	fmt.Fprintf(w, "  Lemma 2.14 shortest-path pairs checked = %d, violations = %d %s\n\n",
		checked, bad, passFail(bad == 0))
}

// figure6 — Lemma 2.15 / eq. 12: for neighboring clusters C in U_j,
// C' in U_i with j < i, every w in C has d_H(w, r_C') <= 2R_i + 1.
func figure6(w io.Writer, g *graph.Graph, p *params.Params, res *core.Result) {
	fmt.Fprintf(w, "Figure 6 — neighboring clusters across phases (Lemma 2.15)\n")
	phaseOf := make([]int, g.N())
	clusterOf := make([]*cluster.Cluster, g.N())
	for i, u := range res.U {
		for ci := range u.Clusters {
			cl := &u.Clusters[ci]
			for _, m := range cl.Members {
				phaseOf[m] = i
				clusterOf[m] = cl
			}
		}
	}
	type key struct{ center int }
	distH := make(map[key][]int32)
	checked, bad := 0, 0
	g.Edges(func(z, zp int) {
		j, i := phaseOf[z], phaseOf[zp]
		w1, w2 := z, zp
		if j == i {
			return
		}
		if j > i {
			j, i = i, j
			w1, w2 = zp, z
		}
		_ = w1
		cPrime := clusterOf[w2]
		dh, ok := distH[key{cPrime.Center}]
		if !ok {
			dh = res.Spanner.BFS(cPrime.Center)
			distH[key{cPrime.Center}] = dh
		}
		bound := 2*p.R[i] + 1
		// Lemma 2.15 bounds d_H(w, r_C') for every w in the *lower*-phase
		// cluster C.
		for _, w := range clusterOf[w1].Members {
			checked++
			if dh[w] > bound || dh[w] < 0 {
				bad++
			}
		}
	})
	fmt.Fprintf(w, "  member-to-neighboring-center pairs checked = %d, violations of 2R_i+1 = %d %s\n\n",
		checked, bad, passFail(bad == 0))
}

// figure78 — Figures 7 and 8: stretch by distance scale. Figure 7's
// segment argument bounds short-range stretch, Figure 8's segmentation
// gives the end-to-end bound; we report the measured stretch per
// distance bucket and check the final (1+eps', beta) bound.
func figure78(w io.Writer, g *graph.Graph, p *params.Params, res *core.Result) {
	fmt.Fprintf(w, "Figures 7 and 8 — stretch by distance scale\n")
	type bucket struct {
		pairs    int64
		worstAdd int32
		sumRatio float64
	}
	buckets := make(map[int]*bucket)
	bucketOf := func(d int32) int {
		b := 0
		for x := int32(1); x < d; x *= 2 {
			b++
		}
		return b
	}
	maxD := int32(0)
	for u := 0; u < g.N(); u++ {
		dg := g.BFS(u)
		dh := res.Spanner.BFS(u)
		for v := u + 1; v < g.N(); v++ {
			if dg[v] == graph.Infinity {
				continue
			}
			if dg[v] > maxD {
				maxD = dg[v]
			}
			bi := bucketOf(dg[v])
			bk := buckets[bi]
			if bk == nil {
				bk = &bucket{}
				buckets[bi] = bk
			}
			bk.pairs++
			if add := dh[v] - dg[v]; add > bk.worstAdd {
				bk.worstAdd = add
			}
			bk.sumRatio += float64(dh[v]) / float64(dg[v])
		}
	}
	t := stats.NewTable("  measured stretch by d_G bucket",
		"d_G range", "pairs", "worst additive", "mean ratio",
		fmt.Sprintf("bound (1+%.2f)d+%d ok", p.EpsPrime(), p.BetaInt()))
	keys := slices.Sorted(maps.Keys(buckets))
	allOK := true
	for _, k := range keys {
		bk := buckets[k]
		lo := int32(1)
		for i := 0; i < k; i++ {
			lo *= 2
		}
		hi := lo*2 - 1
		if k == 0 {
			lo, hi = 1, 1
		}
		// Bound check at the bucket's lower end (worst case for the
		// additive share).
		ok := float64(bk.worstAdd) <= p.EpsPrime()*float64(hi)+float64(p.BetaInt())+1e-9
		if !ok {
			allOK = false
		}
		t.Add(fmt.Sprintf("[%d,%d]", lo, hi), stats.I64(bk.pairs),
			stats.Itoa(int(bk.worstAdd)), stats.F(bk.sumRatio/float64(bk.pairs), 4),
			passFail(ok))
	}
	t.Render(w)
	fmt.Fprintf(w, "  Corollary 2.18 bound over all pairs: %s\n\n", passFail(allOK))
}

func passFail(ok bool) string {
	if ok {
		return "[PASS]"
	}
	return "[FAIL]"
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}

package experiments

import (
	"context"
	"fmt"
	"io"

	"nearspan/internal/core"
	"nearspan/internal/params"
	"nearspan/internal/trace"
)

// PhaseBreakdown reports the per-phase protocol-step metrics of the
// distributed construction on cfg's workload — the per-phase
// round/message accounting the paper's analysis (and the related
// distributed-spanner literature) states its bounds in. The breakdown
// comes from the persistent network runtime: one simulator serves every
// session, and each session records its own rounds, messages, and peak
// round traffic.
func PhaseBreakdown(ctx context.Context, w io.Writer, cfg Config) error {
	p, err := params.New(cfg.Eps, cfg.Kappa, cfg.Rho, cfg.N())
	if err != nil {
		return err
	}
	res, err := core.Build(ctx, cfg.Graph, p, core.Options{Mode: core.ModeDistributed, Engine: cfg.Engine})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "per-phase protocol steps [%s: n=%d m=%d] — %d rounds, %d messages total\n",
		cfg.Name, cfg.N(), cfg.Graph.M(), res.TotalRounds, res.Messages)
	if _, err := io.WriteString(w, trace.StepTable(res.Steps)); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

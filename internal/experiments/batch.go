package experiments

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// runConcurrently executes the tasks concurrently — bounded by
// GOMAXPROCS — and returns the first error in task order. It is how the
// experiment grids fan out over the shared execution runtime: every
// distributed build inside a task multiplexes its simulator rounds onto
// the same process-wide worker pool (sched.Default), so a fan-out of N
// tasks costs N coordinating goroutines, not N private pools. Tasks
// must be independent; callers collect results positionally and render
// them in input order so concurrent execution never changes the report.
//
// The first task failure cancels the siblings' context, so in-flight
// builds abort at their next round boundary instead of running to
// completion; tasks not yet started report the cancellation. The
// returned error is the first failure in task order (sibling
// cancellations it caused are not misreported as the cause).
func runConcurrently(ctx context.Context, tasks ...func(ctx context.Context) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, task := range tasks {
		wg.Add(1)
		go func(i int, task func(ctx context.Context) error) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			if errs[i] = task(ctx); errs[i] != nil {
				cancel()
			}
		}(i, task)
	}
	wg.Wait()
	// Prefer a genuine failure over the context errors it induced.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return first
}

package experiments

import (
	"context"
	"fmt"
	"io"

	"nearspan/internal/core"
	"nearspan/internal/params"
	"nearspan/internal/stats"
	"nearspan/internal/verify"
)

// Table1 regenerates the paper's Table 1: the comparison of
// deterministic CONGEST-model near-additive spanner algorithms. [Elk05]
// is reported analytically (its defining property is a super-linear
// round bound; see DESIGN.md §1.5); the paper's algorithm is reported
// both analytically and as measured on the workload. The per-workload
// builds and stretch verifications fan out concurrently over the shared
// execution runtime; rows render in configuration order.
func Table1(ctx context.Context, w io.Writer, cfgs []Config) error {
	type row struct {
		p   *params.Params
		res *core.Result
		rep verify.StretchReport
	}
	rows := make([]row, len(cfgs))
	tasks := make([]func(ctx context.Context) error, len(cfgs))
	for i := range cfgs {
		cfg := cfgs[i]
		tasks[i] = func(ctx context.Context) error {
			p, err := params.New(cfg.Eps, cfg.Kappa, cfg.Rho, cfg.N())
			if err != nil {
				return err
			}
			res, err := core.Build(ctx, cfg.Graph, p, core.Options{Mode: core.ModeDistributed, Engine: cfg.Engine})
			if err != nil {
				return err
			}
			rows[i] = row{p: p, res: res, rep: verify.Stretch(cfg.Graph, res.Spanner, 1+p.EpsPrime(), p.BetaInt())}
			return nil
		}
	}
	if err := runConcurrently(ctx, tasks...); err != nil {
		return err
	}

	for i, cfg := range cfgs {
		p, res, rep := rows[i].p, rows[i].res, rows[i].rep

		t := stats.NewTable(
			fmt.Sprintf("Table 1 — deterministic CONGEST algorithms [%s: n=%d m=%d eps=%.3g kappa=%d rho=%.2f]",
				cfg.Name, cfg.N(), cfg.Graph.M(), cfg.Eps, cfg.Kappa, cfg.Rho),
			"algorithm", "kind", "beta", "size (edges)", "running time (rounds)")

		betaE := BetaElk05(cfg.Eps, cfg.Kappa, cfg.Rho)
		t.Add("[Elk05]", "analytic",
			stats.Sci(betaE),
			stats.Sci(SizeBound(betaE, cfg.N(), cfg.Kappa)),
			stats.Sci(RoundsElk05(cfg.N(), cfg.Kappa)))

		betaN := BetaNew(cfg.Eps, cfg.Kappa, cfg.Rho)
		t.Add("New (paper bound)", "analytic",
			stats.Sci(betaN),
			stats.Sci(SizeBound(betaN, cfg.N(), cfg.Kappa)),
			stats.Sci(RoundsNew(cfg.Eps, cfg.Kappa, cfg.Rho, cfg.N())))

		t.Add("New (this repo)", "measured",
			stats.Itoa(int(p.BetaInt())),
			fmt.Sprintf("%d (of %d in G)", res.EdgeCount(), cfg.Graph.M()),
			stats.Itoa(res.TotalRounds))

		t.Note("analytic rows evaluate published bounds with O-constants = 1")
		t.Note("measured beta is the schedule's eps^-l (eq. 17); stretch verified: %v (worst additive %d, worst ratio %.3f)",
			rep.OK(), rep.WorstAdditive, rep.WorstRatio)
		t.Note("shape check: measured rounds (%d) vs Elk05's super-linear bound (%.0f) — ratio %s",
			res.TotalRounds, RoundsElk05(cfg.N(), cfg.Kappa),
			stats.Ratio(float64(res.TotalRounds), RoundsElk05(cfg.N(), cfg.Kappa)))
		t.Note("analytic crossover (New beats Elk05 in the worst-case bounds) at n* ~ %d; "+
			"measured rounds already beat the Elk05 bound here: %v",
			CrossoverN(cfg.Eps, cfg.Kappa, cfg.Rho),
			float64(res.TotalRounds) < RoundsElk05(cfg.N(), cfg.Kappa))
		t.Render(w)
		fmt.Fprintln(w)
	}
	return nil
}

package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"nearspan/internal/congest"
)

func TestTable1Runs(t *testing.T) {
	var sb strings.Builder
	if err := Table1(context.Background(), &sb, QuickConfigs()[:1]); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 1", "[Elk05]", "New (this repo)", "measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
	if strings.Contains(out, "stretch verified: false") {
		t.Error("Table 1 reports a stretch violation")
	}
}

func TestTable2Runs(t *testing.T) {
	var sb strings.Builder
	if err := Table2(context.Background(), &sb, QuickConfigs()[0]); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"[EP01]", "[TZ06]", "[Pet09]", "[ABP17]", "[DGP07]", "[DGPV08]",
		"[DGPV09]", "[Elk05]", "[EZ06]", "[Pet10]", "[EN17]",
		"New (this repo)", "EN17 (this repo)", "EP01 (this repo)", "BaswanaSen",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
	if !strings.Contains(out, "New=true EN17=true EP01=true BS=true") {
		t.Errorf("Table 2 stretch checks not all true:\n%s", out)
	}
}

func TestFiguresAllPass(t *testing.T) {
	var sb strings.Builder
	if err := Figures(context.Background(), &sb, DefaultFigureConfig()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "[FAIL]") {
		t.Errorf("figure experiment failed:\n%s", out)
	}
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figures 7 and 8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q section", want)
		}
	}
}

func TestPhaseBreakdownRuns(t *testing.T) {
	var sb strings.Builder
	if err := PhaseBreakdown(context.Background(), &sb, QuickConfigs()[0]); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"per-phase protocol steps", "near-neighbors", "ruling-set", "phase total", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
}

func TestClaimsRuns(t *testing.T) {
	var sb strings.Builder
	if err := Claims(context.Background(), &sb, QuickConfigs()[0]); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Radius growth", "Cluster decay", "Round budget", "Spanner size"} {
		if !strings.Contains(out, want) {
			t.Errorf("claims output missing %q", want)
		}
	}
}

func TestAblations(t *testing.T) {
	var sb strings.Builder
	if err := AblationA1(context.Background(), &sb, QuickConfigs()[0]); err != nil {
		t.Fatal(err)
	}
	if err := AblationA4(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ruling set (New)") {
		t.Error("A1 missing mechanism rows")
	}
	// A4 must demonstrate both findings: the deg+1 rule is clean, the
	// newly-learned rule breaks Lemma A.1, and the paper's literal
	// deg-budget rule breaks Theorem 2.1(2) on some workloads.
	counts := func(marker string) (int, int) {
		for _, l := range strings.Split(out, "\n") {
			if !strings.Contains(l, marker) {
				continue
			}
			var nums []int
			for _, f := range strings.Fields(l) {
				if v, err := strconv.Atoi(f); err == nil {
					nums = append(nums, v)
				}
			}
			if len(nums) >= 2 {
				return nums[len(nums)-2], nums[len(nums)-1]
			}
		}
		t.Fatalf("A4 row %q not found:\n%s", marker, out)
		return 0, 0
	}
	if d, e := counts("budget deg+1"); d != 0 || e != 0 {
		t.Errorf("deg+1 rule shows violations (%d, %d)", d, e)
	}
	if d, _ := counts("only newly-learned"); d == 0 {
		t.Error("newly-learned rule shows no Lemma A.1 deficits — finding 1 should reproduce")
	}
	if _, e := counts("budget deg (paper)"); e == 0 {
		t.Error("paper budget rule shows no Thm 2.1(2) violations — finding 2 should reproduce")
	}
}

func TestAnalyticFormulasSane(t *testing.T) {
	// The paper's qualitative ordering at moderate parameters:
	// beta_EP01 <= beta_EN17 <= beta_New (the derandomization cost), and
	// Elk05's rounds are super-linear while New's are sublinear for
	// large n.
	eps, kappa, rho := 0.1, 4, 0.45
	bEP := BetaEP01(eps, kappa)
	bEN := BetaEN17(eps, kappa, rho)
	bNew := BetaNew(eps, kappa, rho)
	if !(bEP <= bEN && bEN <= bNew) {
		t.Errorf("beta ordering violated: EP=%g EN=%g New=%g", bEP, bEN, bNew)
	}
	n := 1 << 20
	if RoundsElk05(n, kappa) <= float64(n) {
		t.Error("Elk05 rounds should be super-linear")
	}
	// The headline shape: New's rounds are sublinear in n and Elk05's
	// super-linear, so their ratio is monotone decreasing and crosses 1.
	r1 := RoundsNew(eps, kappa, rho, 1<<16) / RoundsElk05(1<<16, kappa)
	r2 := RoundsNew(eps, kappa, rho, 1<<24) / RoundsElk05(1<<24, kappa)
	if r2 >= r1 {
		t.Errorf("round ratio not decreasing: %g -> %g", r1, r2)
	}
	nStar := CrossoverN(eps, kappa, rho)
	if nStar <= 0 {
		t.Fatal("no crossover computed")
	}
	if RoundsNew(eps, kappa, rho, 4*nStar) >= RoundsElk05(4*nStar, kappa) {
		t.Errorf("New should beat Elk05 beyond the crossover n*=%d", nStar)
	}
}

func TestQuickSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke test skipped in -short mode")
	}
	var sb strings.Builder
	if err := Suite(context.Background(), &sb, QuickConfigs(), congest.EngineParallel); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "[FAIL]") {
		t.Error("suite contains failures")
	}
}

// The perf gate flags only gated families, true regressions, gated
// baseline rows that vanished from the fresh report, and go_maxprocs
// mismatches — and never fresh rows without a baseline.
func TestBenchGate(t *testing.T) {
	base := BenchReport{MaxProcs: 4, Benchmarks: []BenchResult{
		{Name: "engine/sequential/gnp-1024", NsPerOp: 100},
		{Name: "assembly/columnar/500k", NsPerOp: 100},
		{Name: "frontier/climb-path-16k", NsPerOp: 100},
		{Name: "build/centralized/gnp-1024", NsPerOp: 100},
	}}
	cur := BenchReport{MaxProcs: 4, Benchmarks: []BenchResult{
		{Name: "engine/sequential/gnp-1024", NsPerOp: 130}, // regression
		{Name: "assembly/columnar/500k", NsPerOp: 124},     // inside the 25% gate
		{Name: "frontier/climb-path-16k", NsPerOp: 40},     // improvement
		{Name: "frontier/ruling-path-16k", NsPerOp: 500},   // no baseline row: skipped
		{Name: "build/centralized/gnp-1024", NsPerOp: 900}, // ungated family
	}}
	msgs := BenchGate(base, cur, 0.25)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "engine/sequential/gnp-1024") {
		t.Errorf("BenchGate = %v, want exactly the engine regression", msgs)
	}
	if msgs := BenchGate(base, base, 0.25); len(msgs) != 0 {
		t.Errorf("identical reports flagged: %v", msgs)
	}

	// A gated baseline row missing from the fresh report fails the gate.
	lost := BenchReport{MaxProcs: 4, Benchmarks: cur.Benchmarks[1:]}
	msgs = BenchGate(base, lost, 0.25)
	found := false
	for _, m := range msgs {
		if strings.Contains(m, "engine/sequential/gnp-1024") && strings.Contains(m, "missing") {
			found = true
		}
	}
	if !found {
		t.Errorf("lost gated coverage not flagged: %v", msgs)
	}

	// Reports from different GOMAXPROCS are not comparable.
	other := cur
	other.MaxProcs = 1
	msgs = BenchGate(base, other, 0.25)
	found = false
	for _, m := range msgs {
		if strings.Contains(m, "go_maxprocs mismatch") {
			found = true
		}
	}
	if !found {
		t.Errorf("go_maxprocs mismatch not flagged: %v", msgs)
	}
}

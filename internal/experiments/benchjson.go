package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"slices"
	"testing"

	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/edgeset"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/params"
	"nearspan/internal/protocols"
	"nearspan/internal/rng"
)

// BenchResult is one benchmark's measurement in the machine-readable
// perf baseline (BENCH_core.json).
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// BenchReport is the document written by `cmd/experiments -bench-json`.
type BenchReport struct {
	GeneratedBy string        `json:"generated_by"`
	GoVersion   string        `json:"go_version"`
	MaxProcs    int           `json:"go_maxprocs"`
	Benchmarks  []BenchResult `json:"benchmarks"`
}

// BenchJSON runs the spanner-assembly and engine benchmarks through
// testing.Benchmark and writes the results as JSON — the perf trajectory
// artifact CI uploads on every run, so future changes have a
// machine-readable ns/op, B/op, allocs/op baseline to diff against
// instead of eyeballing bench logs.
//
// The assembly pair measures the columnar data plane against the
// pre-columnar map plane (kept here as a reference implementation) on
// the 500k-edge workload; the engine rows measure the full distributed
// construction per CONGEST engine.
func BenchJSON(w io.Writer) error {
	rep := BenchReport{
		GeneratedBy: "cmd/experiments -bench-json",
		GoVersion:   runtime.Version(),
		MaxProcs:    runtime.GOMAXPROCS(0),
	}
	record := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		rep.Benchmarks = append(rep.Benchmarks, BenchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	// --- Spanner assembly: map plane (reference) vs columnar plane ---
	const an = 100_000
	const am = 500_000
	stream := AssemblyWorkload(an, am)
	record("assembly/map-plane/500k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			AssembleMapPlane(an, stream)
		}
	})
	record("assembly/columnar/500k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			AssembleColumnar(an, stream)
		}
	})

	// --- Full distributed construction per engine ---
	g := gen.GNP(1024, 16.0/1024, 17, true)
	p, err := params.New(1.0/3, 3, 0.49, g.N())
	if err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	for _, eng := range congest.Engines() {
		record("engine/"+eng.String()+"/gnp-1024", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(context.Background(), g, p, core.Options{
					Mode: core.ModeDistributed, Engine: eng,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The centralized reference, which the assembly plane dominates.
	record("build/centralized/gnp-1024", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(context.Background(), g, p, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// AssemblyWorkload generates the spanner-assembly stream both the root
// BenchmarkSpannerAssembly and the bench-json baseline measure: random
// normalized pairs with ~20% re-emissions (the overlap between
// forest-path and interconnection climbs that the dedupe absorbs).
// One definition serves both so the committed baseline and the bench
// suite always measure the identical workload.
func AssemblyWorkload(n, m int) [][2]int32 {
	r := rng.New(0xA55E1B1E)
	out := make([][2]int32, 0, m+m/4)
	for len(out) < m {
		u := int32(r.Uint64() % uint64(n))
		v := int32(r.Uint64() % uint64(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		out = append(out, [2]int32{u, v})
		if len(out)%4 == 0 {
			out = append(out, out[int(r.Uint64()%uint64(len(out)))])
		}
	}
	return out
}

// AssembleMapPlane is the pre-columnar assembly pipeline, preserved as
// the benchmark reference: map[Edge]bool accumulation, a global key
// sort to recover determinism, then the re-deduping graph.Builder.
func AssembleMapPlane(n int, stream [][2]int32) *graph.Graph {
	h := make(map[protocols.Edge]bool)
	for _, e := range stream {
		h[protocols.Edge{U: e[0], V: e[1]}] = true
	}
	edges := make([]protocols.Edge, 0, len(h))
	for e := range h {
		edges = append(edges, e)
	}
	slices.SortFunc(edges, func(a, c protocols.Edge) int {
		if a.U != c.U {
			return int(a.U) - int(c.U)
		}
		return int(a.V) - int(c.V)
	})
	hb := graph.NewBuilder(n)
	for _, e := range edges {
		if err := hb.AddEdge(int(e.U), int(e.V)); err != nil {
			panic("experiments: map-plane assembly: " + err.Error())
		}
	}
	return hb.Build()
}

// AssembleColumnar is the current assembly pipeline: edgeset.Set
// accumulation with direct CSR emission.
func AssembleColumnar(n int, stream [][2]int32) *graph.Graph {
	h := edgeset.NewSet(n)
	for _, e := range stream {
		h.Add(int(e[0]), int(e[1]))
	}
	return h.Graph()
}

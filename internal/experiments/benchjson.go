package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"slices"
	"strings"
	"testing"
	"time"

	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/delta"
	"nearspan/internal/edgeset"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/oracle"
	"nearspan/internal/params"
	"nearspan/internal/protocols"
	"nearspan/internal/rng"
)

// BenchResult is one benchmark's measurement in the machine-readable
// perf baseline (BENCH_core.json).
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// BenchReport is the document written by `cmd/experiments -bench-json`.
type BenchReport struct {
	GeneratedBy string        `json:"generated_by"`
	GoVersion   string        `json:"go_version"`
	MaxProcs    int           `json:"go_maxprocs"`
	Benchmarks  []BenchResult `json:"benchmarks"`
}

// BenchJSON runs the spanner-assembly, engine, and frontier benchmarks
// through testing.Benchmark and writes the results as JSON — the perf
// trajectory artifact CI uploads on every run and gates against
// (BenchGate), so future changes have a machine-readable ns/op, B/op,
// allocs/op baseline to diff against instead of eyeballing bench logs.
// go_maxprocs records the GOMAXPROCS actually in effect (the
// `cmd/experiments -cpu` flag sets it), so parallel-engine rows can be
// interpreted on the hardware that produced them.
//
// The assembly pair measures the columnar data plane against the
// pre-columnar map plane (kept here as a reference implementation) on
// the 500k-edge workload; the engine rows measure the full distributed
// construction per CONGEST engine; the frontier rows measure the
// sparse-activity workloads whose round cost the frontier-driven
// stepper keeps at O(activity); the oracle rows measure the query tier
// on the 500k-edge graph — warm single-source reads against the
// pre-pool LRU oracle (kept as a reference implementation, like the map
// plane), batch throughput, bidirectional point queries with
// hand-measured p50/p99 rows, and replica scaling up to GOMAXPROCS
// (flat on a single hardware core; the scaling shows on multicore).
func BenchJSON(w io.Writer) error {
	rep := BenchReport{
		GeneratedBy: "cmd/experiments -bench-json",
		GoVersion:   runtime.Version(),
		MaxProcs:    runtime.GOMAXPROCS(0),
	}
	record := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		rep.Benchmarks = append(rep.Benchmarks, BenchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	// --- Spanner assembly: map plane (reference) vs columnar plane ---
	const an = 100_000
	const am = 500_000
	stream := AssemblyWorkload(an, am)
	record("assembly/map-plane/500k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			AssembleMapPlane(an, stream)
		}
	})
	record("assembly/columnar/500k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			AssembleColumnar(an, stream)
		}
	})

	// --- Full distributed construction per engine ---
	g := gen.GNP(1024, 16.0/1024, 17, true)
	p, err := params.New(1.0/3, 3, 0.49, g.N())
	if err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	for _, eng := range congest.Engines() {
		record("engine/"+eng.String()+"/gnp-1024", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(context.Background(), g, p, core.Options{
					Mode: core.ModeDistributed, Engine: eng,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The centralized reference, which the assembly plane dominates.
	record("build/centralized/gnp-1024", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(context.Background(), g, p, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// --- Sparse-activity (frontier) workloads ---
	// The frontier ≪ n regime the O(activity) round execution targets:
	// a single climb trace walking a 16k-vertex path (message-driven,
	// ~1 awake vertex per round) and a sparse-member ruling set on the
	// same path (fixed schedule; most windows move few or no waves).
	const fn = 16384
	fg, rt, start := FrontierClimbWorkload(fn)
	record("frontier/climb-path-16k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim, err := congest.NewUniform(fg, protocols.NewClimb(rt, start), congest.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.RunUntilQuiet(protocols.ClimbMaxRounds(1, fn)); err != nil {
				b.Fatal(err)
			}
			sim.Close()
		}
	})
	isMember, q, c := FrontierRulingWorkload()
	record("frontier/ruling-path-16k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim, err := congest.NewUniform(fg, protocols.NewRulingSet(isMember, q, c, fn),
				congest.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := sim.Run(protocols.RulingSetRounds(q, c, fn)); err != nil {
				b.Fatal(err)
			}
			sim.Close()
		}
	})

	// --- Oracle query tier on the 500k-edge assembly graph ---
	og := AssembleColumnar(an, stream)
	// The warm working set: 256 hot sources, cache capacity matching on
	// both sides. The legacy hit path pays an O(capacity) recency scan
	// per query, so its cost grows with the working set; the pool's
	// (atomic load + array index) does not — that gap is the point.
	const hot = 256
	qr := rng.New(0x0DDBA11)
	warmPairs := make([][2]int, 4096)
	for i := range warmPairs {
		warmPairs[i] = [2]int{int(qr.Uint64() % hot), int(qr.Uint64() % uint64(an))}
	}
	// Warm single-source reads: the pre-pool oracle's hit path (map
	// lookup + O(capacity) recency-slice memmove) against the pool's
	// (atomic pointer load + array index). Both loops walk warmPairs
	// with a plain wrapping counter so harness overhead (which the
	// single-digit-ns pool row is sensitive to) stays minimal and equal.
	legacy := newLegacyOracleLRU(og, hot)
	for s := 0; s < hot; s++ {
		legacy.levels(s)
	}
	record("oracle/warm-source/legacy-500k", func(b *testing.B) {
		b.ReportAllocs()
		j := 0
		for i := 0; i < b.N; i++ {
			q := warmPairs[j]
			if j++; j == len(warmPairs) {
				j = 0
			}
			benchSink = legacy.dist(q[0], q[1])
		}
	})
	pool := oracle.NewPool(og, oracle.PoolOptions{Replicas: 1, CacheSources: hot})
	for s := 0; s < hot; s++ {
		pool.Sources(s)
	}
	record("oracle/warm-source/pool-500k", func(b *testing.B) {
		b.ReportAllocs()
		j := 0
		for i := 0; i < b.N; i++ {
			q := warmPairs[j]
			if j++; j == len(warmPairs) {
				j = 0
			}
			benchSink = pool.Dist(q[0], q[1])
		}
	})

	// Batch throughput: 4096 queries over 16 hot sources per call, so
	// the grouped path answers most of the batch from shared BFS levels.
	batch := make([][2]int, 4096)
	for i := range batch {
		batch[i] = [2]int{int(qr.Uint64() % 16), int(qr.Uint64() % uint64(an))}
	}
	record("oracle/batch/pairs4096-500k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink = pool.PairsBatch(batch)[0]
		}
	})

	// Cold point queries: the bidirectional fast path in a preallocated
	// replica workspace, no source cache.
	point := oracle.NewPool(og, oracle.PoolOptions{Replicas: 1, CacheSources: -1})
	pointPairs := make([][2]int, 2048)
	for i := range pointPairs {
		pointPairs[i] = [2]int{int(qr.Uint64() % uint64(an)), int(qr.Uint64() % uint64(an))}
	}
	point.Dist(pointPairs[0][0], pointPairs[0][1]) // allocate the workspace
	record("oracle/point/bidi-500k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := pointPairs[i%len(pointPairs)]
			benchSink = point.Dist(q[0], q[1])
		}
	})

	// Point-query latency quantiles: testing.Benchmark only reports the
	// mean, so time each query by hand and emit the quantiles as
	// synthetic rows (NsPerOp = quantile, Iterations = sample count).
	lats := make([]int64, len(pointPairs))
	for i, q := range pointPairs {
		t0 := time.Now()
		benchSink = point.Dist(q[0], q[1])
		lats[i] = time.Since(t0).Nanoseconds()
	}
	slices.Sort(lats)
	for _, qt := range []struct {
		name string
		q    float64
	}{{"oracle/point/p50-500k", 0.5}, {"oracle/point/p99-500k", 0.99}} {
		idx := int(math.Ceil(qt.q*float64(len(lats)))) - 1
		rep.Benchmarks = append(rep.Benchmarks, BenchResult{
			Name:       qt.name,
			Iterations: len(lats),
			NsPerOp:    float64(lats[idx]),
		})
	}

	// Replica scaling: concurrent cold point queries at k replicas with
	// GOMAXPROCS pinned to k, for k = 1, 2, 4, ... up to the report's
	// MaxProcs. Near-linear qps scaling (ns/op dropping ~1/k) needs k
	// hardware cores; on fewer the rows record the flat ceiling.
	for k := 1; k <= rep.MaxProcs; k *= 2 {
		prev := runtime.GOMAXPROCS(k)
		sp := oracle.NewPool(og, oracle.PoolOptions{Replicas: k, CacheSources: -1})
		record(fmt.Sprintf("oracle/scaling/replicas-%d", k), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				r := rng.New(uint64(k)*0x9E3779B9 + 1)
				for pb.Next() {
					benchSink = sp.Dist(int(r.Uint64()%uint64(an)), int(r.Uint64()%uint64(an)))
				}
			})
		})
		sp.Close()
		runtime.GOMAXPROCS(prev)
	}

	// --- Scale regime: streaming generation and a lazy-arena build ---
	// The generator pair measures the streaming CSR path against the
	// materializing Builder path on the same 500k-edge GNP draw (both
	// yield the bit-identical graph; the streaming row is the one the
	// 10⁷-edge workloads use). The build row is the -scale 500k workload:
	// the full distributed construction on the parallel engine with a
	// fully lazy arena.
	const sn = 8192
	sprob := 2 * 500_000 / (float64(sn) * float64(sn-1))
	record("scale/gen/gnp-500k/builder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink = int32(gen.GNP(sn, sprob, 29, true).M())
		}
	})
	record("scale/gen/gnp-500k/stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink = int32(gen.StreamGNP(sn, sprob, 29, true).Graph().M())
		}
	})
	sg := gen.StreamGNP(4096, 2*500_000/(4096.0*4095.0), 1, true).Graph()
	sp2, err := params.New(1.0/3, 3, 0.49, sg.N())
	if err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	record("scale/build/parallel/gnp-4k-500k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(context.Background(), sg, sp2, core.Options{
				Mode: core.ModeDistributed, Engine: congest.EngineParallel,
				ArenaFraction: -1,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// --- Delta regime: incremental rebuild vs from-scratch on the
	// 10⁶-edge GNP workload. The full build is hand-timed as a single
	// synthetic row (one build is minutes of compute — testing.Benchmark
	// would just re-run it); the rebuild row replays an 8-operation
	// delta (0.0008% of the edges) against the retained state through
	// testing.Benchmark, asserting it stays on the incremental path.
	// The pair is the committed form of the tentpole perf claim: rebuild
	// ns/op must stay an order of magnitude under full-build ns/op.
	const dn = 65536
	dprob := 2 * 1_000_000 / (float64(dn) * float64(dn-1))
	dg := gen.StreamGNP(dn, dprob, 31, true).Graph()
	dp, err := params.New(1.0/3, 3, 0.34, dg.N())
	if err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	t0 := time.Now()
	dprev, err := core.Build(context.Background(), dg, dp, core.Options{KeepRebuildState: true})
	if err != nil {
		return fmt.Errorf("bench-json: delta full build: %w", err)
	}
	rep.Benchmarks = append(rep.Benchmarks, BenchResult{
		Name:       "delta/full-build/gnp-65k-1m",
		Iterations: 1,
		NsPerOp:    float64(time.Since(t0).Nanoseconds()),
	})
	db := delta.RandomBatch(dg, 4, 31)
	record("delta/rebuild/gnp-65k-1m-8ops", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := core.Rebuild(context.Background(), dprev, db, core.Options{KeepRebuildState: true})
			if err != nil {
				b.Fatal(err)
			}
			if !r.Incremental {
				b.Fatal("delta rebuild fell back to a full build")
			}
			benchSink = int32(r.Tracked)
		}
	})

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// benchSink defeats dead-code elimination in the query benchmarks.
var benchSink int32

// legacyOracleLRU replicates the pre-pool Oracle's query path, kept as
// the benchmark reference the same way AssembleMapPlane preserves the
// map plane: a map[int][]int32 level cache whose hit path pays a map
// lookup plus an O(capacity) recency-slice memmove per query.
type legacyOracleLRU struct {
	g        *graph.Graph
	cache    map[int][]int32
	capacity int
	order    []int
}

func newLegacyOracleLRU(g *graph.Graph, capacity int) *legacyOracleLRU {
	return &legacyOracleLRU{g: g, cache: make(map[int][]int32, capacity), capacity: capacity}
}

func (o *legacyOracleLRU) dist(u, v int) int32 { return o.levels(u)[v] }

func (o *legacyOracleLRU) levels(u int) []int32 {
	if lv, ok := o.cache[u]; ok {
		o.touch(u)
		return lv
	}
	lv := o.g.BFS(u)
	if len(o.order) >= o.capacity {
		evict := o.order[0]
		o.order = o.order[1:]
		delete(o.cache, evict)
	}
	o.cache[u] = lv
	o.order = append(o.order, u)
	return lv
}

func (o *legacyOracleLRU) touch(u int) {
	for i, x := range o.order {
		if x == u {
			copy(o.order[i:], o.order[i+1:])
			o.order[len(o.order)-1] = u
			return
		}
	}
}

// FrontierClimbWorkload builds the long-path climb workload shared by
// BenchmarkFrontier and the bench-json baseline: a single trace
// initiated at the far end of an n-vertex path walks parent pointers
// toward vertex 0, one hop per round, so the per-round frontier is ~1
// while n is large. One definition serves both so the committed baseline
// and the bench suite always measure the identical workload.
func FrontierClimbWorkload(n int) (*graph.Graph, *protocols.Routing, [][]int64) {
	g := gen.Path(n)
	parentPort := make([]int, n)
	for v := 0; v < n; v++ {
		parentPort[v] = -1
		if v > 0 {
			parentPort[v] = g.PortOf(v, v-1)
		}
	}
	start := make([][]int64, n)
	start[n-1] = []int64{-1}
	return g, protocols.NewForestRouting(parentPort, -1), start
}

// FrontierRulingWorkload returns the sparse-member ruling-set parameters
// of the frontier benchmark family (run on the FrontierClimbWorkload
// path graph). Shared between BenchmarkFrontier and the bench-json
// baseline for the same reason as the climb workload: one definition,
// identical measurement.
func FrontierRulingWorkload() (isMember func(v int) bool, q int32, c int) {
	return func(v int) bool { return v%64 == 0 }, 2, 3
}

// GatedPrefixes names the benchmark families the CI perf gate compares
// against the committed baseline. Rows outside these families are
// recorded but not gated: the one-off centralized reference, the
// oracle p50/p99 rows (single-pass tail quantiles — one GC pause moves
// the p99 past any reasonable gate), and the oracle scaling rows
// (parallel cost depends on the hardware core count, which the gate
// cannot normalize for). The mean-based oracle rows are gated like
// every other family.
var GatedPrefixes = []string{
	"assembly/", "engine/", "frontier/", "scale/", "delta/",
	"oracle/warm-source/", "oracle/batch/", "oracle/point/bidi-",
}

// LoadBenchReport reads a BenchReport previously written by BenchJSON.
func LoadBenchReport(r io.Reader) (BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return BenchReport{}, fmt.Errorf("bench report: %w", err)
	}
	return rep, nil
}

// gatedName reports whether a benchmark row belongs to a gated family.
func gatedName(name string) bool {
	for _, p := range GatedPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// BenchGate compares a fresh report against the committed baseline and
// returns one message per gate failure: a gated benchmark whose ns/op
// regressed by more than maxRegress (0.25 = +25%), a gated baseline row
// missing from the fresh report (silently lost coverage), or a
// go_maxprocs mismatch between the reports (engine rows measured at
// different parallelism are not comparable — rerun with -cpu matching
// the baseline). A fresh row without a baseline row is fine — a new
// benchmark cannot fail the gate before its baseline lands.
func BenchGate(baseline, current BenchReport, maxRegress float64) []string {
	var failures []string
	if baseline.MaxProcs != current.MaxProcs {
		failures = append(failures, fmt.Sprintf(
			"go_maxprocs mismatch: baseline %d, fresh %d — rerun with -cpu %d",
			baseline.MaxProcs, current.MaxProcs, baseline.MaxProcs))
	}
	fresh := make(map[string]BenchResult, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		fresh[b.Name] = b
	}
	for _, o := range baseline.Benchmarks {
		if !gatedName(o.Name) || o.NsPerOp <= 0 {
			continue
		}
		b, ok := fresh[o.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf(
				"%s: in baseline but missing from the fresh report — gated coverage lost", o.Name))
			continue
		}
		if b.NsPerOp > o.NsPerOp*(1+maxRegress) {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, gate %+.0f%%)",
				o.Name, b.NsPerOp, o.NsPerOp, 100*(b.NsPerOp/o.NsPerOp-1), 100*maxRegress))
		}
	}
	return failures
}

// AssemblyWorkload generates the spanner-assembly stream both the root
// BenchmarkSpannerAssembly and the bench-json baseline measure: random
// normalized pairs with ~20% re-emissions (the overlap between
// forest-path and interconnection climbs that the dedupe absorbs).
// One definition serves both so the committed baseline and the bench
// suite always measure the identical workload.
func AssemblyWorkload(n, m int) [][2]int32 {
	r := rng.New(0xA55E1B1E)
	out := make([][2]int32, 0, m+m/4)
	for len(out) < m {
		u := int32(r.Uint64() % uint64(n))
		v := int32(r.Uint64() % uint64(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		out = append(out, [2]int32{u, v})
		if len(out)%4 == 0 {
			out = append(out, out[int(r.Uint64()%uint64(len(out)))])
		}
	}
	return out
}

// AssembleMapPlane is the pre-columnar assembly pipeline, preserved as
// the benchmark reference: map[Edge]bool accumulation, a global key
// sort to recover determinism, then the re-deduping graph.Builder.
func AssembleMapPlane(n int, stream [][2]int32) *graph.Graph {
	h := make(map[protocols.Edge]bool)
	for _, e := range stream {
		h[protocols.Edge{U: e[0], V: e[1]}] = true
	}
	edges := make([]protocols.Edge, 0, len(h))
	for e := range h {
		edges = append(edges, e)
	}
	slices.SortFunc(edges, func(a, c protocols.Edge) int {
		if a.U != c.U {
			return int(a.U) - int(c.U)
		}
		return int(a.V) - int(c.V)
	})
	hb := graph.NewBuilder(n)
	for _, e := range edges {
		if err := hb.AddEdge(int(e.U), int(e.V)); err != nil {
			panic("experiments: map-plane assembly: " + err.Error())
		}
	}
	return hb.Build()
}

// AssembleColumnar is the current assembly pipeline: edgeset.Set
// accumulation with direct CSR emission.
func AssembleColumnar(n int, stream [][2]int32) *graph.Graph {
	h := edgeset.NewSet(n)
	for _, e := range stream {
		h.Add(int(e[0]), int(e[1]))
	}
	return h.Graph()
}

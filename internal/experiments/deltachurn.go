package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"nearspan/internal/core"
	"nearspan/internal/delta"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/params"
)

// DeltaChurnSpec parameterizes the incremental-rebuild workload behind
// `cmd/experiments -delta-churn`: one full build of a streamed GNP
// graph, then a chain of random edge-delta batches, each applied via
// core.Rebuild against the previous step's retained state. The point of
// the experiment is the paper-facing perf claim: a small delta replays
// only its dirty frontier, so a rebuild costs a fraction of a build —
// while producing the bit-identical spanner.
type DeltaChurnSpec struct {
	// TargetEdges is the approximate edge count (default 250 000).
	TargetEdges int
	// Steps is the length of the churn chain (default 8).
	Steps int
	// Ops is the number of delete+insert pairs per batch (default 8,
	// i.e. 16 operations per step).
	Ops int
	// Seed drives the generator and the churn stream (default 1).
	Seed uint64
	// Verify re-runs a from-scratch build on the final patched graph
	// and cross-checks its fingerprint against the chained rebuilds —
	// one extra full build.
	Verify bool
}

// DeltaChurnStep is one rebuild's measurements.
type DeltaChurnStep struct {
	Ops            int
	Tracked        int
	Incremental    bool
	RebuildSeconds float64
	Speedup        float64 // full-build seconds / rebuild seconds
}

// DeltaChurnResult is the churn chain's measurements.
type DeltaChurnResult struct {
	N, M             int
	BuildSeconds     float64
	Steps            []DeltaChurnStep
	FinalM           int
	FinalFingerprint string
	// Verified is set when Spec.Verify ran and the from-scratch build
	// of the final graph agreed bit for bit.
	Verified bool
}

func (s DeltaChurnSpec) withDefaults() DeltaChurnSpec {
	if s.TargetEdges <= 0 {
		s.TargetEdges = 250_000
	}
	if s.Steps <= 0 {
		s.Steps = 8
	}
	if s.Ops <= 0 {
		s.Ops = 8
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// deltaChurnParams is the parameter schedule the churn workloads share
// with the scale regime probes: eps 1/3, kappa 3, rho 0.34.
func deltaChurnParams(n int) (*params.Params, error) {
	return params.New(1.0/3, 3, 0.34, n)
}

// churnGraphN sizes the GNP vertex count so the expected edge count
// lands near the target at average degree ~32 (the scale workload's
// density).
func churnGraphN(targetEdges int) int {
	n := targetEdges / 16
	if n < 1024 {
		n = 1024
	}
	return n
}

// DeltaChurnRun executes the churn chain.
func DeltaChurnRun(ctx context.Context, spec DeltaChurnSpec) (DeltaChurnResult, error) {
	spec = spec.withDefaults()
	n := churnGraphN(spec.TargetEdges)
	prob := 2 * float64(spec.TargetEdges) / (float64(n) * float64(n-1))
	g := gen.StreamGNP(n, prob, spec.Seed, true).Graph()
	p, err := deltaChurnParams(g.N())
	if err != nil {
		return DeltaChurnResult{}, err
	}
	res := DeltaChurnResult{N: g.N(), M: g.M()}

	t0 := time.Now()
	prev, err := core.Build(ctx, g, p, core.Options{KeepRebuildState: true})
	if err != nil {
		return res, err
	}
	res.BuildSeconds = time.Since(t0).Seconds()

	cur := g
	for step := 0; step < spec.Steps; step++ {
		b := delta.RandomBatch(cur, spec.Ops, spec.Seed+uint64(step)*0x9E37)
		t1 := time.Now()
		next, err := core.Rebuild(ctx, prev, b, core.Options{KeepRebuildState: true})
		if err != nil {
			return res, fmt.Errorf("churn step %d: %w", step, err)
		}
		dt := time.Since(t1).Seconds()
		res.Steps = append(res.Steps, DeltaChurnStep{
			Ops:            b.Size(),
			Tracked:        next.Tracked,
			Incremental:    next.Incremental,
			RebuildSeconds: dt,
			Speedup:        res.BuildSeconds / dt,
		})
		prev = next
		cur = next.Rebuild.Graph
	}
	var fp string
	res.FinalM, fp = graph.Fingerprint(prev.Spanner)
	res.FinalFingerprint = fp

	if spec.Verify {
		ref, err := core.Build(ctx, cur, p, core.Options{})
		if err != nil {
			return res, fmt.Errorf("verify build: %w", err)
		}
		refM, refFP := graph.Fingerprint(ref.Spanner)
		if refM != res.FinalM || refFP != fp {
			return res, fmt.Errorf("churn chain diverged: rebuilt %s (%d edges), from-scratch %s (%d edges)",
				fp, res.FinalM, refFP, refM)
		}
		res.Verified = true
	}
	return res, nil
}

// WriteDeltaChurnReport renders the churn measurements.
func WriteDeltaChurnReport(w io.Writer, r DeltaChurnResult) {
	fmt.Fprintf(w, "delta churn: n=%d m=%d, full build %.2fs\n", r.N, r.M, r.BuildSeconds)
	for i, s := range r.Steps {
		mode := "incremental"
		if !s.Incremental {
			mode = "full-fallback"
		}
		fmt.Fprintf(w, "  step %d: %d ops -> %s, tracked %d, rebuild %.3fs (%.1fx vs full build)\n",
			i, s.Ops, mode, s.Tracked, s.RebuildSeconds, s.Speedup)
	}
	fmt.Fprintf(w, "final spanner: %d edges, fingerprint %s\n", r.FinalM, r.FinalFingerprint)
	if r.Verified {
		fmt.Fprintf(w, "verified: from-scratch build of the final graph is bit-identical\n")
	}
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"slices"
	"time"

	"nearspan/internal/baseline"
	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/params"
	"nearspan/internal/stats"
	"nearspan/internal/verify"
)

// AblationA1 compares the three superclustering mechanisms — exact scans
// (EP01), sampling (EN17), deterministic ruling sets (New) — on the same
// workload and parameters: the paper's central design trade (§2.1, "the
// additive term ... is slightly inferior to [EN17]" in exchange for
// determinism). The three constructions build and verify concurrently.
func AblationA1(ctx context.Context, w io.Writer, cfg Config) error {
	t := stats.NewTable(
		fmt.Sprintf("Ablation A1 — superclustering mechanism [%s]", cfg.Name),
		"mechanism", "R_1", "R_2", "beta", "edges", "worst add", "worst ratio", "deterministic")

	var (
		pNew                 *params.Params
		pEN                  *baseline.EN17Params
		pEP                  *baseline.EP01Params
		resNew               *core.Result
		resEN                *baseline.EN17Result
		resEP                *baseline.EP01Result
		repNew, repEN, repEP verify.StretchReport
	)
	err := runConcurrently(ctx,
		func(ctx context.Context) error {
			var err error
			if pNew, err = params.New(cfg.Eps, cfg.Kappa, cfg.Rho, cfg.N()); err != nil {
				return err
			}
			if resNew, err = core.Build(ctx, cfg.Graph, pNew, core.Options{}); err != nil {
				return err
			}
			repNew = verify.Stretch(cfg.Graph, resNew.Spanner, 1, 0)
			return nil
		},
		func(ctx context.Context) error {
			var err error
			if pEN, err = baseline.NewEN17Params(cfg.Eps, cfg.Kappa, cfg.Rho, cfg.N()); err != nil {
				return err
			}
			if resEN, err = baseline.BuildEN17(cfg.Graph, pEN, cfg.Seed); err != nil {
				return err
			}
			repEN = verify.Stretch(cfg.Graph, resEN.Spanner, 1, 0)
			return nil
		},
		func(ctx context.Context) error {
			var err error
			if pEP, err = baseline.NewEP01Params(cfg.Eps, cfg.Kappa, cfg.Rho, cfg.N()); err != nil {
				return err
			}
			if resEP, err = baseline.BuildEP01(cfg.Graph, pEP); err != nil {
				return err
			}
			repEP = verify.Stretch(cfg.Graph, resEP.Spanner, 1, 0)
			return nil
		})
	if err != nil {
		return err
	}

	r2 := func(r []int32) string {
		if len(r) > 2 {
			return stats.Itoa(int(r[2]))
		}
		return "-"
	}
	t.Add("ruling set (New)", stats.Itoa(int(pNew.R[1])), r2(pNew.R),
		stats.Itoa(int(pNew.BetaInt())), stats.Itoa(resNew.EdgeCount()),
		stats.Itoa(int(repNew.WorstAdditive)), stats.F(repNew.WorstRatio, 3), "yes")
	t.Add("sampling (EN17)", stats.Itoa(int(pEN.R[1])), r2(pEN.R),
		stats.Itoa(int(pEN.Beta())), stats.Itoa(resEN.Spanner.M()),
		stats.Itoa(int(repEN.WorstAdditive)), stats.F(repEN.WorstRatio, 3), "no")
	t.Add("exact scans (EP01)", stats.Itoa(int(pEP.R[1])), r2(pEP.R),
		stats.Itoa(int(pEP.Beta())), stats.Itoa(resEP.Spanner.M()),
		stats.Itoa(int(repEP.WorstAdditive)), stats.F(repEP.WorstRatio, 3), "yes (centralized)")
	t.Note("the ruling-set radii carry the (2/rho_hat) domination factor — the price of determinism the paper pays")
	t.Render(w)
	fmt.Fprintln(w)
	return nil
}

// AblationA2 shows the two-stage degree schedule (exponential then
// fixed): with kappa*rho >= 2 the boundary i0 is interior, and |P_i|
// collapses at rate deg_i per phase.
func AblationA2(ctx context.Context, w io.Writer) error {
	g := gen.GNP(700, 0.05, 99, true)
	p, err := params.New(0.5, 8, 0.3, g.N())
	if err != nil {
		return err
	}
	res, err := core.Build(ctx, g, p, core.Options{})
	if err != nil {
		return err
	}
	t := stats.NewTable(
		fmt.Sprintf("Ablation A2 — stage boundary (kappa=8, rho=0.3, i0=%d, l=%d)", p.I0, p.L),
		"phase", "stage", "deg_i", "|P_i|", "|P_i|*deg_i")
	for _, ph := range res.Phases {
		stage := "exponential"
		if ph.Index > p.I0 {
			stage = "fixed"
		}
		if ph.Index == p.L {
			stage = "concluding"
		}
		t.Add(stats.Itoa(ph.Index), stage, stats.Itoa(ph.Deg), stats.Itoa(ph.Clusters),
			stats.Itoa(ph.Deg*ph.Clusters))
	}
	t.Note("|P_i|*deg_i stays within O(n^{1+1/kappa}) = %.0f — the invariant behind Lemma 2.12", p.PredictedSize()/p.Beta())
	t.Render(w)
	fmt.Fprintln(w)
	return nil
}

// AblationA3 runs the identical distributed construction on all three
// CONGEST engines and reports the wall-clock cost of each execution
// strategy (goroutine-per-vertex model fidelity vs sharded parallelism),
// verifying output equality. The engine runs stay sequential on purpose:
// each row is a wall-clock measurement and must not share cores with a
// concurrent sibling.
func AblationA3(ctx context.Context, w io.Writer) error {
	g := gen.Torus(12, 12)
	p, err := params.New(0.5, 4, 0.45, g.N())
	if err != nil {
		return err
	}
	t := stats.NewTable("Ablation A3 — CONGEST engine comparison (torus-12, distributed mode)",
		"engine", "edges", "rounds", "messages", "wall clock")
	var edges []int
	for _, eng := range congest.Engines() {
		start := time.Now()
		res, err := core.Build(ctx, g, p, core.Options{Mode: core.ModeDistributed, Engine: eng})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		t.Add(eng.String(), stats.Itoa(res.EdgeCount()), stats.Itoa(res.TotalRounds),
			stats.I64(res.Messages), elapsed.Round(time.Millisecond).String())
		edges = append(edges, res.EdgeCount())
	}
	identical := true
	for _, e := range edges {
		if e != edges[0] {
			identical = false
		}
	}
	t.Note("outputs identical: %v", identical)
	t.Render(w)
	fmt.Fprintln(w)
	return nil
}

// AblationA4 quantifies the two Algorithm 1 subtleties this reproduction
// surfaced (see the NearNeighbors doc for the analysis):
//
//  1. Forwarding only newly-learned centers (a natural optimization of
//     the paper's "forward what you received" rule) breaks Lemma A.1's
//     counting guarantee.
//  2. The paper's forward budget of exactly deg_i messages per phase
//     lets a center's own announcement crowd out another center's on
//     the links back to it, violating Theorem 2.1(2) (an unpopular
//     center missing a center within delta); budget deg_i+1 repairs it.
//
// The ablation runs the three rules over a batch of random graphs plus
// the adversarial caterpillar and counts, for each rule: graphs with a
// Lemma A.1 deficit (some vertex knows fewer than min(deg, |Γ^δ∩S\{v}|)
// other centers) and graphs where an unpopular center misses or
// mis-measures a center within delta (Theorem 2.1(2) violations).
func AblationA4(ctx context.Context, w io.Writer) error {
	type rule struct {
		name      string
		reforward bool
		budget    int // extra slots over deg
		faithful  string
	}
	rules := []rule{
		{"forward only newly-learned", false, 0, "no (optimized)"},
		{"re-forward, budget deg (paper)", true, 0, "yes (literal)"},
		{"re-forward, budget deg+1 (this repo)", true, 1, "fixed"},
	}

	type workload struct {
		g       *graph.Graph
		centers []int
		deg     int
		delta   int32
	}
	var workloads []workload
	cat := gen.Caterpillar(12, 3)
	var catCenters []int
	for v := 0; v < cat.N(); v += 2 {
		catCenters = append(catCenters, v)
	}
	workloads = append(workloads, workload{cat, catCenters, 5, 4})
	for seed := uint64(1); seed <= 120; seed++ {
		g := gen.GNP(24+int(seed%20), 0.09, seed, true)
		var cs []int
		for v := 0; v < g.N(); v++ {
			if (uint64(v)+seed)%2 == 0 {
				cs = append(cs, v)
			}
		}
		workloads = append(workloads, workload{g, cs, 2 + int(seed%3), int32(2 + seed%2)})
	}

	t := stats.NewTable(
		fmt.Sprintf("Ablation A4 — Algorithm 1 forwarding rules over %d workloads", len(workloads)),
		"rule", "graphs w/ Lemma A.1 deficit", "graphs w/ Thm 2.1(2) violation", "faithfulness")
	for _, r := range rules {
		deficitGraphs, exactGraphs := 0, 0
		for _, wl := range workloads {
			if err := ctx.Err(); err != nil {
				return err
			}
			res := simulateNN(wl.g, wl.centers, wl.deg, wl.delta, r.reforward, wl.deg+r.budget)
			d, e := nnViolations(wl.g, wl.centers, wl.deg, wl.delta, res)
			if d > 0 {
				deficitGraphs++
			}
			if e > 0 {
				exactGraphs++
			}
		}
		t.Add(r.name, stats.Itoa(deficitGraphs), stats.Itoa(exactGraphs), r.faithful)
	}
	t.Note("a Lemma A.1 deficit vertex may misclassify itself as unpopular; a Thm 2.1(2) violation " +
		"makes the interconnection step skip a close pair, which Lemma 2.14's stretch argument relies on")
	t.Render(w)
	fmt.Fprintln(w)
	return nil
}

// nnKnown is the per-vertex knowledge of a simulated Algorithm 1 run.
type nnKnown struct {
	dist []map[int64]int32
}

// simulateNN runs the phase-level Algorithm 1 simulation under a
// configurable forwarding rule and budget.
func simulateNN(g *graph.Graph, centers []int, deg int, delta int32, reforward bool, budget int) nnKnown {
	n := g.N()
	known := make([]map[int64]int32, n)
	for v := range known {
		known[v] = make(map[int64]int32)
	}
	buffer := make([]map[int64]bool, n)
	for v := range buffer {
		buffer[v] = make(map[int64]bool)
	}
	for _, c := range centers {
		for _, u := range g.Neighbors(c) {
			if int(u) != c {
				buffer[u][int64(c)] = true
			}
		}
	}
	for p := int32(1); p <= delta; p++ {
		type fwd struct {
			v int
			c int64
		}
		var forwards []fwd
		for v := 0; v < n; v++ {
			if len(buffer[v]) == 0 {
				continue
			}
			ids := make([]int64, 0, len(buffer[v]))
			for c := range buffer[v] {
				ids = append(ids, c)
			}
			slices.Sort(ids)
			queued := 0
			for _, c := range ids {
				_, isKnown := known[v][c]
				if !isKnown && len(known[v]) < deg {
					known[v][c] = p
					if !reforward && p < delta {
						forwards = append(forwards, fwd{v, c})
					}
				}
				if reforward && queued < budget && p < delta {
					forwards = append(forwards, fwd{v, c})
					queued++
				}
			}
			buffer[v] = make(map[int64]bool)
		}
		for _, f := range forwards {
			for _, u := range g.Neighbors(f.v) {
				if int64(u) != f.c {
					buffer[u][f.c] = true
				}
			}
		}
		if len(forwards) == 0 {
			break
		}
	}
	return nnKnown{dist: known}
}

// nnViolations counts Lemma A.1 deficits and Theorem 2.1(2) violations
// of a simulated run against ground truth.
func nnViolations(g *graph.Graph, centers []int, deg int, delta int32, res nnKnown) (deficits, exactness int) {
	isC := make(map[int]bool, len(centers))
	for _, c := range centers {
		isC[c] = true
	}
	for v := 0; v < g.N(); v++ {
		dist := g.BFSBounded(v, delta)
		count := 0
		for u := 0; u < g.N(); u++ {
			if u != v && isC[u] && dist[u] <= delta {
				count++
			}
		}
		want := count
		if want > deg {
			want = deg
		}
		if len(res.dist[v]) < want {
			deficits++
		}
		// Theorem 2.1(2) applies to unpopular centers.
		if isC[v] && len(res.dist[v]) < deg {
			for u := 0; u < g.N(); u++ {
				if u == v || !isC[u] || dist[u] > delta {
					continue
				}
				if got, ok := res.dist[v][int64(u)]; !ok || got != dist[u] {
					exactness++
				}
			}
		}
	}
	return deficits, exactness
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"nearspan/internal/baseline"
	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/params"
	"nearspan/internal/stats"
)

// LongDistance reproduces the paper's motivating claim (§1): near-
// additive spanners "preserve large distances much more faithfully than
// the more traditional multiplicative spanners". On a high-diameter
// ring-of-communities workload it compares the additive error of the
// deterministic near-additive spanner against a (2κ−1)-multiplicative
// spanner per distance range: multiplicative error grows linearly with
// distance, near-additive error is capped by εd+β.
func LongDistance(ctx context.Context, w io.Writer) error {
	// 30 dense communities of 16 vertices arranged in a ring: diameter
	// is ~2·30/2 + intra hops, giving real long-distance structure.
	g := ringOfCommunities(30, 16, 0.5, 123)
	eps, kappa, rho := 1.0/3, 3, 0.49
	p, err := params.New(eps, kappa, rho, g.N())
	if err != nil {
		return err
	}
	resNew, err := core.Build(ctx, g, p, core.Options{})
	if err != nil {
		return err
	}
	// A fair comparison fixes the size budget: pick the multiplicative
	// stretch 2k-1 at the smallest k whose Baswana-Sen spanner is no
	// larger than ~1.25x the near-additive one. (Sparse multiplicative
	// spanners need large k — that is exactly the paper's point.)
	var bs *graph.Graph
	bsKappa := kappa
	for k := 2; k <= 16; k++ {
		cand, err := baseline.BuildBaswanaSen(g, k, 7)
		if err != nil {
			return err
		}
		bs, bsKappa = cand, k
		if float64(cand.M()) <= 1.25*float64(resNew.EdgeCount()) {
			break
		}
	}

	type agg struct {
		pairs             int64
		worstNew, worstBS int32
		sumNewR, sumBSR   float64
	}
	buckets := map[int]*agg{}
	maxBucket := 0
	for u := 0; u < g.N(); u++ {
		dg := g.BFS(u)
		dn := resNew.Spanner.BFS(u)
		db := bs.BFS(u)
		for v := u + 1; v < g.N(); v++ {
			d := dg[v]
			if d == graph.Infinity || d == 0 {
				continue
			}
			bi := 0
			for x := int32(1); x < d; x *= 2 {
				bi++
			}
			if bi > maxBucket {
				maxBucket = bi
			}
			a := buckets[bi]
			if a == nil {
				a = &agg{}
				buckets[bi] = a
			}
			a.pairs++
			if add := dn[v] - d; add > a.worstNew {
				a.worstNew = add
			}
			if add := db[v] - d; add > a.worstBS {
				a.worstBS = add
			}
			a.sumNewR += float64(dn[v]) / float64(d)
			a.sumBSR += float64(db[v]) / float64(d)
		}
	}

	t := stats.NewTable(
		fmt.Sprintf("Long-distance fidelity at matched size — ring of communities (n=%d m=%d diam=%d); New: %d edges, BaswanaSen(%d-mult): %d edges",
			g.N(), g.M(), g.Diameter(), resNew.EdgeCount(), 2*bsKappa-1, bs.M()),
		"d_G range", "pairs", "New worst add", "BS worst add", "New mean ratio", "BS mean ratio")
	for bi := 0; bi <= maxBucket; bi++ {
		a := buckets[bi]
		if a == nil {
			continue
		}
		lo := int32(math.Exp2(float64(bi-1))) + 1
		hi := int32(math.Exp2(float64(bi)))
		if bi == 0 {
			lo = 1
		}
		t.Add(fmt.Sprintf("[%d,%d]", lo, hi), stats.I64(a.pairs),
			stats.Itoa(int(a.worstNew)), stats.Itoa(int(a.worstBS)),
			stats.F(a.sumNewR/float64(a.pairs), 3), stats.F(a.sumBSR/float64(a.pairs), 3))
	}
	far := buckets[maxBucket]
	if far != nil {
		t.Note("measured: New reaches the farthest bucket with additive error <= %d using %d edges; "+
			"BaswanaSen needs %d edges (%.1fx) for additive error %d",
			far.worstNew, resNew.EdgeCount(), bs.M(),
			float64(bs.M())/float64(resNew.EdgeCount()), far.worstBS)
	}
	t.Note("guarantees at d = diam = %d: New additive error is capped by beta = %d independent of d "+
		"(plus eps'*d slack); the %d-multiplicative guarantee allows error %d and grows linearly in d — "+
		"the paper's asymptotic separation",
		g.Diameter(), p.BetaInt(), 2*bsKappa-1, (2*bsKappa-2)*int(g.Diameter()))
	t.Note("measured BS error stays small here because ring long paths are forced through cut bridges; " +
		"the guarantee separation is what downstream users can rely on")
	t.Render(w)
	fmt.Fprintln(w)
	return nil
}

// ringOfCommunities builds k dense communities of size s arranged in a
// cycle, adjacent communities joined by one bridge edge.
func ringOfCommunities(k, s int, pIn float64, seed uint64) *graph.Graph {
	base := gen.Communities(k, s, pIn, 0, seed)
	// gen.Communities chains communities linearly; close the ring.
	b := graph.NewBuilder(base.N())
	base.Edges(func(u, v int) {
		if err := b.AddEdge(u, v); err != nil {
			panic(err)
		}
	})
	last := (k - 1) * s
	if !b.HasEdge(0, last) {
		if err := b.AddEdge(0, last); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// RoundScaling measures how the distributed algorithm's round count
// grows with n at fixed parameters — the paper's headline is that it is
// low-polynomial (sublinear for ρ < 1/2 once β is fixed). The fitted
// exponent is reported alongside the schedule's dominant term. The
// engine selects the simulator execution strategy (zero = sequential);
// it changes only the wall clock, not the measured rounds — which is
// also why the n-grid can fan out concurrently over the shared runtime
// without perturbing any measurement.
func RoundScaling(ctx context.Context, w io.Writer, engine congest.Engine) error {
	eps, kappa, rho := 1.0/3, 3, 0.49
	ns := []int{128, 256, 512, 1024}
	t := stats.NewTable("Round scaling — measured CONGEST rounds vs n (gnp, eps=1/3, kappa=3, rho=0.49)",
		"n", "m", "rounds", "rounds/n", "edges kept")
	type point struct {
		m, rounds, kept int
	}
	points := make([]point, len(ns))
	tasks := make([]func(ctx context.Context) error, len(ns))
	for i := range ns {
		n := ns[i]
		tasks[i] = func(ctx context.Context) error {
			g := gen.GNP(n, math.Min(0.5, 16/float64(n)), uint64(n), true)
			p, err := params.New(eps, kappa, rho, n)
			if err != nil {
				return err
			}
			res, err := core.Build(ctx, g, p, core.Options{Mode: core.ModeDistributed, Engine: engine})
			if err != nil {
				return err
			}
			points[i] = point{m: g.M(), rounds: res.TotalRounds, kept: res.EdgeCount()}
			return nil
		}
	}
	if err := runConcurrently(ctx, tasks...); err != nil {
		return err
	}
	var logN, logR []float64
	for i, n := range ns {
		t.Add(stats.Itoa(n), stats.Itoa(points[i].m), stats.Itoa(points[i].rounds),
			stats.F(float64(points[i].rounds)/float64(n), 2), stats.Itoa(points[i].kept))
		logN = append(logN, math.Log(float64(n)))
		logR = append(logR, math.Log(float64(points[i].rounds)))
	}
	slope := fitSlope(logN, logR)
	t.Note("fitted growth exponent: rounds ~ n^%.2f (sublinear; schedule dominated by the ruling set's n^{1/c} windows, c=%d)",
		slope, int(math.Ceil(1/rho)))
	t.Render(w)
	fmt.Fprintln(w)
	return nil
}

// fitSlope returns the least-squares slope of y over x.
func fitSlope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

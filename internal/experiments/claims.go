package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"nearspan/internal/cluster"
	"nearspan/internal/core"
	"nearspan/internal/params"
	"nearspan/internal/stats"
)

// Claims runs the quantitative per-lemma experiments of DESIGN.md §3.3
// on one configuration: radius growth (Lemma 2.7 / eq. 6), cluster decay
// (Lemmas 2.10–2.11), per-phase rounds (Lemma 2.8 / Cor. 2.9), and size
// (Lemma 2.12 / Cor. 2.13).
func Claims(ctx context.Context, w io.Writer, cfg Config) error {
	p, err := params.New(cfg.Eps, cfg.Kappa, cfg.Rho, cfg.N())
	if err != nil {
		return err
	}
	res, err := core.Build(ctx, cfg.Graph, p, core.Options{Mode: core.ModeDistributed, Engine: cfg.Engine, KeepClusters: true})
	if err != nil {
		return err
	}
	rhoHat := 1 / float64(p.C)

	// --- Radius growth (Lemma 2.3, Lemma 2.7, eq. 6/8) ---
	tr := stats.NewTable(
		fmt.Sprintf("Radius growth [%s] — Lemma 2.3 and eq. (6)", cfg.Name),
		"phase", "R_i (schedule)", "(4/rho_hat)*eps^-(i-1)", "measured Rad(P_i)", "delta_i", "2*eps^-i")
	for i := 0; i <= p.L; i++ {
		measured := "-"
		if i < len(res.P) && res.P[i].Len() > 0 {
			measured = stats.Itoa(int(cluster.MaxRadius(res.Spanner, res.P[i])))
		}
		bound := "-"
		if i >= 1 {
			bound = stats.F(4/rhoHat*math.Pow(1/cfg.Eps, float64(i-1)), 1)
		}
		tr.Add(stats.Itoa(i), stats.Itoa(int(p.R[i])), bound, measured,
			stats.Itoa(int(p.Delta[i])), stats.F(2*math.Pow(1/cfg.Eps, float64(i)), 1))
	}
	tr.Note("eq. (6) bound applies under the guarantee preconditions (eps <= rho_hat/10); shown for shape")
	tr.Render(w)
	fmt.Fprintln(w)

	// --- Cluster decay (Lemmas 2.10 / 2.11) ---
	td := stats.NewTable(
		fmt.Sprintf("Cluster decay [%s] — Lemmas 2.10 and 2.11", cfg.Name),
		"phase", "deg_i", "|P_i|", "paper bound", "|W_i|", "|RS_i|", "|U_i|")
	n := float64(cfg.N())
	for _, ph := range res.Phases {
		var bound float64
		if ph.Index <= p.I0 {
			bound = math.Pow(n, 1-(math.Exp2(float64(ph.Index))-1)/float64(cfg.Kappa))
		} else {
			bound = math.Pow(n, 1+1/float64(cfg.Kappa)-float64(ph.Index-p.I0)*cfg.Rho)
		}
		td.Add(stats.Itoa(ph.Index), stats.Itoa(ph.Deg), stats.Itoa(ph.Clusters),
			stats.F(bound, 1), stats.Itoa(ph.Popular), stats.Itoa(ph.RulingSet),
			stats.Itoa(ph.Unclustered))
	}
	td.Note("bound: n^{1-(2^i-1)/kappa} in the exponential stage, n^{1+1/kappa-(i-i0)rho} afterwards")
	td.Render(w)
	fmt.Fprintln(w)

	// --- Rounds (Lemma 2.8, Corollary 2.9) ---
	trr := stats.NewTable(
		fmt.Sprintf("Round budget [%s] — Lemma 2.8 and Cor. 2.9", cfg.Name),
		"phase", "NN", "ruling set", "supercluster", "interconnect", "total",
		"paper O(delta_i*n^rho/rho)")
	for _, ph := range res.Phases {
		pred := float64(ph.Delta) * math.Pow(n, cfg.Rho) / cfg.Rho
		trr.Add(stats.Itoa(ph.Index), stats.Itoa(ph.RoundsNN), stats.Itoa(ph.RoundsRS),
			stats.Itoa(ph.RoundsSC), stats.Itoa(ph.RoundsIC), stats.Itoa(ph.Rounds()),
			stats.F(pred, 0))
	}
	predTotal := p.PredictedRounds()
	trr.Note("total measured rounds = %d; paper bound beta*n^rho/rho = %.0f; ratio %s",
		res.TotalRounds, predTotal, stats.Ratio(float64(res.TotalRounds), predTotal))
	trr.Render(w)
	fmt.Fprintln(w)

	// --- Size (Lemma 2.12, Corollary 2.13) ---
	ts := stats.NewTable(
		fmt.Sprintf("Spanner size [%s] — Lemma 2.12 and Cor. 2.13", cfg.Name),
		"phase", "edges SC", "edges IC", "paper O(n^{1+1/kappa}*delta_i)")
	for _, ph := range res.Phases {
		pred := math.Pow(n, 1+1/float64(cfg.Kappa)) * float64(ph.Delta)
		ts.Add(stats.Itoa(ph.Index), stats.Itoa(ph.EdgesSC), stats.Itoa(ph.EdgesIC), stats.F(pred, 0))
	}
	ts.Note("|E_H| = %d of %d edges in G; paper bound beta*n^{1+1/kappa} = %.0f; ratio %s",
		res.EdgeCount(), cfg.Graph.M(), p.PredictedSize(),
		stats.Ratio(float64(res.EdgeCount()), p.PredictedSize()))
	ts.Render(w)
	fmt.Fprintln(w)

	// --- Message complexity (not bounded explicitly in the paper; the
	// budgeted schedule implies <= 2m*(deg_i+1)*delta_i per phase) ---
	tm := stats.NewTable(
		fmt.Sprintf("Message complexity [%s]", cfg.Name),
		"phase", "messages", "budget 2m*(deg_i+1)*delta_i", "utilization")
	m2 := 2 * float64(cfg.Graph.M())
	for _, ph := range res.Phases {
		budget := m2 * float64(ph.Deg+1) * float64(ph.Delta)
		tm.Add(stats.Itoa(ph.Index), stats.I64(ph.Messages), stats.F(budget, 0),
			stats.Ratio(float64(ph.Messages), budget))
	}
	tm.Note("low utilization in late phases reflects the schedule ticking with few surviving clusters")
	tm.Render(w)
	fmt.Fprintln(w)
	return nil
}

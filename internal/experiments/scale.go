package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
	"nearspan/internal/params"
	"nearspan/internal/verify"
)

// ScaleSpec parameterizes one scale-regime workload: a streamed GNP
// graph near a target edge count, pushed through the full distributed
// construction with a lazily-grown message arena. This is the workload
// family behind `cmd/experiments -scale` and the build-tagged 10⁷-edge
// smoke test.
type ScaleSpec struct {
	// TargetEdges is the approximate edge count; the realized M lands
	// within sampling noise of it.
	TargetEdges int
	// Seed drives the generator (default 1 when zero).
	Seed uint64
	// Engine selects the CONGEST engine. EngineParallel is the engine
	// for this regime; callers pass it explicitly (the zero value is
	// the sequential engine, as everywhere else).
	Engine congest.Engine
	// ArenaFraction is passed through to the build; the scale default
	// (zero value here maps to -1) is fully lazy allocation.
	ArenaFraction float64
	// VerifySamples > 0 runs a sampled stretch verification from that
	// many BFS sources after the build.
	VerifySamples int
}

// ScaleResult is one scale workload's measurements.
type ScaleResult struct {
	N, M         int
	GenSeconds   float64
	BuildSeconds float64
	SpannerEdges int
	TotalRounds  int
	Messages     int64
	// ArenaBytes / ArenaWorstCase is the measured-arena headroom: how
	// far the lazily-grown footprint stayed below the legacy full
	// preallocation on the same topology.
	ArenaBytes     int64
	ArenaWorstCase int64
	// SysBytes is runtime.MemStats.Sys after the build — the memory
	// obtained from the OS, the process-level scale criterion.
	SysBytes uint64
	// SampledHash is the spanner's sampled fingerprint (1024 vertices,
	// the generator seed) — the cheap reproducibility check at sizes
	// where a full fingerprint is not worth the pass.
	SampledHash string
	// Verified / StretchOK report the sampled stretch check (only when
	// ScaleSpec.VerifySamples > 0).
	Verified  bool
	StretchOK bool
}

// ScaleN returns the vertex count the scale family uses for a target
// edge count: the smallest power of two that keeps the average degree
// under ~320. At 10⁷ edges this is n = 65536 (average degree ≈ 305).
func ScaleN(targetEdges int) int {
	n := 2
	for n*160 < targetEdges {
		n *= 2
	}
	return n
}

// ScaleRun generates the workload graph through the streaming path and
// runs the distributed construction, measuring wall time and memory.
func ScaleRun(ctx context.Context, spec ScaleSpec) (ScaleResult, error) {
	if spec.TargetEdges <= 0 {
		return ScaleResult{}, fmt.Errorf("scale: target edges must be positive, got %d", spec.TargetEdges)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	frac := spec.ArenaFraction
	if frac == 0 {
		frac = -1
	}

	n := ScaleN(spec.TargetEdges)
	p := 2 * float64(spec.TargetEdges) / (float64(n) * float64(n-1))

	t0 := time.Now()
	g := gen.StreamGNP(n, p, seed, true).Graph()
	genSec := time.Since(t0).Seconds()

	pr, err := params.New(1.0/3, 3, 0.49, n)
	if err != nil {
		return ScaleResult{}, fmt.Errorf("scale: %w", err)
	}
	t0 = time.Now()
	res, err := core.Build(ctx, g, pr, core.Options{
		Mode:          core.ModeDistributed,
		Engine:        spec.Engine,
		ArenaFraction: frac,
	})
	if err != nil {
		return ScaleResult{}, fmt.Errorf("scale: build: %w", err)
	}
	buildSec := time.Since(t0).Seconds()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	_, hash := graph.FingerprintSampled(res.Spanner, 1024, seed)

	out := ScaleResult{
		N: n, M: g.M(),
		GenSeconds:     genSec,
		BuildSeconds:   buildSec,
		SpannerEdges:   res.EdgeCount(),
		TotalRounds:    res.TotalRounds,
		Messages:       res.Messages,
		ArenaBytes:     res.ArenaBytes,
		ArenaWorstCase: res.ArenaBytesWorstCase,
		SysBytes:       ms.Sys,
		SampledHash:    hash,
	}
	if spec.VerifySamples > 0 {
		rep := verify.StretchSampled(g, res.Spanner,
			1+pr.EpsPrime(), pr.BetaInt(), spec.VerifySamples, seed)
		out.Verified = true
		out.StretchOK = rep.OK()
	}
	return out, nil
}

// WriteScaleReport renders a ScaleResult as the `-scale` text block.
func WriteScaleReport(w io.Writer, r ScaleResult) {
	fmt.Fprintf(w, "scale workload: gnp n=%d m=%d\n", r.N, r.M)
	fmt.Fprintf(w, "  generate      %8.2fs (streaming CSR)\n", r.GenSeconds)
	fmt.Fprintf(w, "  build         %8.2fs  rounds=%d messages=%d spanner-edges=%d\n",
		r.BuildSeconds, r.TotalRounds, r.Messages, r.SpannerEdges)
	ratio := 0.0
	if r.ArenaBytes > 0 {
		ratio = float64(r.ArenaWorstCase) / float64(r.ArenaBytes)
	}
	fmt.Fprintf(w, "  arena         %8.1f MiB measured vs %.1f MiB worst-case (%.1f x headroom)\n",
		float64(r.ArenaBytes)/(1<<20), float64(r.ArenaWorstCase)/(1<<20), ratio)
	fmt.Fprintf(w, "  process mem   %8.1f MiB (runtime Sys)\n", float64(r.SysBytes)/(1<<20))
	fmt.Fprintf(w, "  spanner hash  %s (sampled, 1024 vertices)\n", r.SampledHash)
	if r.Verified {
		fmt.Fprintf(w, "  stretch check %v (sampled)\n", r.StretchOK)
	}
}

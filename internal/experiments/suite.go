package experiments

import (
	"context"
	"fmt"
	"io"

	"nearspan/internal/congest"
)

// Suite runs the full experiment set — the content of EXPERIMENTS.md —
// writing the report to w. The engine is the suite-wide CONGEST engine
// selection (zero = sequential); it fills in for configs that do not set
// their own and drives the scaling experiments. Engine choice never
// changes a measured round count or spanner, only wall-clock time.
//
// Within each section the configuration grid fans out concurrently over
// the shared execution runtime (see runConcurrently); sections still
// run in order so the report reads top to bottom. Results are written
// as each section completes, so a cancelled context — the CLI wires it
// to SIGINT and -timeout — leaves every already-rendered section intact
// and returns ctx.Err() for the section in flight.
func Suite(ctx context.Context, w io.Writer, cfgs []Config, engine congest.Engine) error {
	for i := range cfgs {
		if cfgs[i].Engine == 0 {
			cfgs[i].Engine = engine
		}
	}
	fmt.Fprintf(w, "=== Near-Additive Spanners in Deterministic CONGEST — experiment report ===\n\n")

	fmt.Fprintf(w, "--- Table 1: deterministic CONGEST algorithms ---\n\n")
	if err := Table1(ctx, w, cfgs); err != nil {
		return fmt.Errorf("table 1: %w", err)
	}

	fmt.Fprintf(w, "--- Per-phase round breakdown (persistent-network sessions) ---\n\n")
	for _, cfg := range cfgs[:minInt(2, len(cfgs))] {
		if err := PhaseBreakdown(ctx, w, cfg); err != nil {
			return fmt.Errorf("phase breakdown(%s): %w", cfg.Name, err)
		}
	}

	fmt.Fprintf(w, "--- Table 2: near-additive spanner panorama ---\n\n")
	if err := Table2(ctx, w, cfgs[0]); err != nil {
		return fmt.Errorf("table 2: %w", err)
	}

	fmt.Fprintf(w, "--- Figures 1-8: structural experiments ---\n\n")
	fcfg := DefaultFigureConfig()
	fcfg.Engine = engine // nonzero: figure build runs on the distributed backend
	if err := Figures(ctx, w, fcfg); err != nil {
		return fmt.Errorf("figures: %w", err)
	}

	fmt.Fprintf(w, "--- Quantitative claims (Lemmas 2.3-2.12, Corollaries 2.9/2.13/2.18) ---\n\n")
	for _, cfg := range cfgs[:minInt(2, len(cfgs))] {
		if err := Claims(ctx, w, cfg); err != nil {
			return fmt.Errorf("claims(%s): %w", cfg.Name, err)
		}
	}

	fmt.Fprintf(w, "--- Long-distance fidelity (the paper's motivation) ---\n\n")
	if err := LongDistance(ctx, w); err != nil {
		return fmt.Errorf("long-distance: %w", err)
	}

	fmt.Fprintf(w, "--- Round scaling ---\n\n")
	if err := RoundScaling(ctx, w, engine); err != nil {
		return fmt.Errorf("round scaling: %w", err)
	}

	fmt.Fprintf(w, "--- Ablations ---\n\n")
	if err := AblationA1(ctx, w, cfgs[0]); err != nil {
		return fmt.Errorf("ablation A1: %w", err)
	}
	if err := AblationA2(ctx, w); err != nil {
		return fmt.Errorf("ablation A2: %w", err)
	}
	if err := AblationA3(ctx, w); err != nil {
		return fmt.Errorf("ablation A3: %w", err)
	}
	if err := AblationA4(ctx, w); err != nil {
		return fmt.Errorf("ablation A4: %w", err)
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"nearspan/internal/baseline"
	"nearspan/internal/core"
	"nearspan/internal/graph"
	"nearspan/internal/params"
	"nearspan/internal/stats"
	"nearspan/internal/verify"
)

// Table2 regenerates the paper's Table 2 (Appendix B): the panorama of
// near-additive spanner constructions. Four rows are measured from the
// implementations in this repository (New, EN17, EP01, Baswana–Sen as
// the multiplicative reference), built and verified concurrently on the
// shared execution runtime; the remaining rows evaluate their published
// bounds at the experiment's parameters (O-constants = 1).
func Table2(ctx context.Context, w io.Writer, cfg Config) error {
	n, kappa, rho, eps := cfg.N(), cfg.Kappa, cfg.Rho, cfg.Eps
	lg := math.Log2(float64(n))
	lk := logc(float64(kappa))

	t := stats.NewTable(
		fmt.Sprintf("Table 2 — near-additive spanner panorama [%s: n=%d m=%d eps=%.3g kappa=%d rho=%.2f]",
			cfg.Name, n, cfg.Graph.M(), eps, kappa, rho),
		"authors", "model", "source", "stretch", "size", "time")

	addAnalytic := func(name, model string, beta, size, time float64, timeNote string) {
		ts := stats.Sci(time)
		if time < 0 {
			ts = timeNote
		}
		t.Add(name, model, "analytic",
			fmt.Sprintf("(1+eps, %s)", stats.Sci(beta)),
			stats.Sci(size), ts)
	}

	// Centralized constructions.
	betaEP := BetaEP01(eps, kappa)
	addAnalytic("[EP01]", "centralized det", betaEP, SizeBound(betaEP, n, kappa),
		float64(n)*float64(cfg.Graph.M()), "")
	betaTZ := math.Pow(1/eps, float64(kappa))
	addAnalytic("[TZ06]", "centralized rand", betaTZ, math.Pow(float64(n), 1+1/float64(kappa)),
		float64(cfg.Graph.M())*math.Pow(float64(n), 1/float64(kappa)), "")
	betaPet09 := math.Pow(math.Log2(lg+2)/eps, math.Log2(lg+2))
	addAnalytic("[Pet09]", "centralized rand", betaPet09, (1+eps)*float64(n), -1, "NA")
	betaABP := math.Pow(lk/eps, lk-1)
	addAnalytic("[ABP17]", "centralized rand", betaABP,
		math.Pow(lk/eps, 0.75*lk)*math.Pow(float64(n), 1+1/float64(kappa)), -1, "NA")

	// LOCAL-model constructions.
	addAnalytic("[DGP07]", "LOCAL det", 8/eps*lg, math.Pow(float64(n), 1.5), lg/eps, "")
	addAnalytic("[DGPV08]", "LOCAL det", 2, math.Pow(float64(n), 1.5)/eps, 1/eps, "")
	betaDGPV := math.Pow(1/eps, float64(kappa)-2)
	addAnalytic("[DGPV09]", "LOCAL det", betaDGPV,
		math.Pow(1/eps, float64(kappa)-1)*math.Pow(float64(n), 1+1/float64(kappa)), 1, "")

	// CONGEST constructions (analytic).
	betaE := BetaElk05(eps, kappa, rho)
	addAnalytic("[Elk05]", "CONGEST det", betaE, SizeBound(betaE, n, kappa), RoundsElk05(n, kappa), "")
	addAnalytic("[EZ06]", "CONGEST rand", betaE, math.Pow(float64(n), 1+1/float64(kappa)),
		math.Pow(float64(n), rho), "")
	phi := (1 + math.Sqrt(5)) / 2
	ePet := math.Log(float64(kappa))/math.Log(phi) + 1/rho
	betaPet10 := math.Pow((lk+1/rho)/eps, ePet)
	addAnalytic("[Pet10]", "CONGEST rand", betaPet10,
		math.Pow(float64(n), 1+1/float64(kappa))*math.Pow(lk/eps, phi),
		math.Pow(float64(n), rho)*lg, "")
	betaEN := BetaEN17(eps, kappa, rho)
	addAnalytic("[EN17]", "CONGEST rand", betaEN, SizeBound(betaEN, n, kappa),
		RoundsEN17(eps, kappa, rho, n), "")
	betaNew := BetaNew(eps, kappa, rho)
	addAnalytic("New (paper)", "CONGEST det", betaNew, SizeBound(betaNew, n, kappa),
		RoundsNew(eps, kappa, rho, n), "")

	// Measured rows: the four constructions build and verify
	// concurrently; rows are added in the table's fixed order below.
	var (
		res                         *core.Result
		resEN                       *baseline.EN17Result
		resEP                       *baseline.EP01Result
		bs                          *graph.Graph
		repNew, repEN, repEP, repBS verify.StretchReport
	)
	err := runConcurrently(ctx,
		func(ctx context.Context) error {
			p, err := params.New(eps, kappa, rho, n)
			if err != nil {
				return err
			}
			if res, err = core.Build(ctx, cfg.Graph, p, core.Options{Mode: core.ModeDistributed, Engine: cfg.Engine}); err != nil {
				return err
			}
			repNew = verify.Stretch(cfg.Graph, res.Spanner, 1+p.EpsPrime(), p.BetaInt())
			return nil
		},
		func(ctx context.Context) error {
			pEN, err := baseline.NewEN17Params(eps, kappa, rho, n)
			if err != nil {
				return err
			}
			if resEN, err = baseline.BuildEN17(cfg.Graph, pEN, cfg.Seed); err != nil {
				return err
			}
			repEN = verify.Stretch(cfg.Graph, resEN.Spanner, 1+resEN.EpsPrime, resEN.Beta)
			return nil
		},
		func(ctx context.Context) error {
			pEP, err := baseline.NewEP01Params(eps, kappa, rho, n)
			if err != nil {
				return err
			}
			if resEP, err = baseline.BuildEP01(cfg.Graph, pEP); err != nil {
				return err
			}
			repEP = verify.Stretch(cfg.Graph, resEP.Spanner, 1+resEP.EpsPrime, resEP.Beta)
			return nil
		},
		func(ctx context.Context) error {
			var err error
			if bs, err = baseline.BuildBaswanaSen(cfg.Graph, kappa, cfg.Seed); err != nil {
				return err
			}
			repBS = verify.Stretch(cfg.Graph, bs, float64(2*kappa-1), 0)
			return nil
		})
	if err != nil {
		return err
	}
	t.Add("New (this repo)", "CONGEST det", "measured",
		fmt.Sprintf("(%.3f, %d)", repNew.WorstRatio, repNew.WorstAdditive),
		stats.Itoa(res.EdgeCount()), stats.Itoa(res.TotalRounds))
	t.Add("EN17 (this repo)", "CONGEST rand", "measured",
		fmt.Sprintf("(%.3f, %d)", repEN.WorstRatio, repEN.WorstAdditive),
		stats.Itoa(resEN.Spanner.M()), stats.Itoa(resEN.ScheduledRounds)+" (scheduled)")
	t.Add("EP01 (this repo)", "centralized det", "measured",
		fmt.Sprintf("(%.3f, %d)", repEP.WorstRatio, repEP.WorstAdditive),
		stats.Itoa(resEP.Spanner.M()), "-")
	t.Add(fmt.Sprintf("BaswanaSen (%d-mult)", 2*kappa-1), "centralized rand", "measured",
		fmt.Sprintf("(%.3f, %d)", repBS.WorstRatio, repBS.WorstAdditive),
		stats.Itoa(bs.M()), "-")

	t.Note("analytic rows evaluate published bounds with O-constants = 1 at this workload's parameters")
	t.Note("measured stretch cells report (worst ratio, worst additive) over all connected pairs")
	t.Note("stretch bounds verified: New=%v EN17=%v EP01=%v BS=%v",
		repNew.OK(), repEN.OK(), repEP.OK(), repBS.OK())
	t.Note("on this low-diameter workload the multiplicative spanner keeps %dx more edges; "+
		"the long-distance fidelity comparison (the paper's motivation) is the dedicated "+
		"high-diameter experiment below", bs.M()/maxInt(1, res.EdgeCount()))
	t.Render(w)
	fmt.Fprintln(w)
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index): Table 1
// (deterministic CONGEST algorithms), Table 2 (the near-additive spanner
// panorama), structural experiments for Figures 1–8, the quantitative
// per-lemma claims of §2.4, and the ablations.
//
// Measured rows come from the implementations in this repository;
// analytic rows evaluate the cited papers' published bounds with their
// O-constants set to 1 (documented in every table note). The paper being
// a theory paper, "running time" is CONGEST rounds.
package experiments

import (
	"math"

	"nearspan/internal/congest"
	"nearspan/internal/gen"
	"nearspan/internal/graph"
)

// Config is one experiment configuration: a workload graph plus the
// shared parameter triple.
type Config struct {
	Name  string
	Graph *graph.Graph
	Eps   float64
	Kappa int
	Rho   float64
	Seed  uint64
	// Engine selects the CONGEST simulator engine for this workload's
	// distributed builds (zero = sequential). Engines differ only in
	// wall clock, never in measured rounds or spanner output.
	Engine congest.Engine
}

// N returns the workload size.
func (c Config) N() int { return c.Graph.N() }

// DefaultConfigs is the standard experiment suite: a dense random graph
// (rich superclustering structure), a community graph (popularity
// contrast), a torus (sparse, symmetric — the regime where the spanner
// keeps everything), and a near-regular graph.
func DefaultConfigs() []Config {
	rr, err := gen.RandomRegular(512, 12, 77)
	if err != nil {
		panic("experiments: default workload: " + err.Error())
	}
	return []Config{
		{Name: "gnp-600", Graph: gen.GNP(600, 0.03, 41, true), Eps: 1.0 / 3, Kappa: 3, Rho: 0.49, Seed: 1},
		{Name: "comm-500", Graph: gen.Communities(10, 50, 0.25, 0.002, 42), Eps: 1.0 / 3, Kappa: 3, Rho: 0.49, Seed: 2},
		{Name: "regular-512", Graph: rr, Eps: 0.5, Kappa: 4, Rho: 0.45, Seed: 3},
		{Name: "torus-24", Graph: gen.Torus(24, 24), Eps: 0.5, Kappa: 4, Rho: 0.45, Seed: 4},
	}
}

// QuickConfigs is a reduced suite for benchmarks and smoke runs.
func QuickConfigs() []Config {
	return []Config{
		{Name: "gnp-300", Graph: gen.GNP(300, 0.05, 41, true), Eps: 1.0 / 3, Kappa: 3, Rho: 0.49, Seed: 1},
		{Name: "comm-240", Graph: gen.Communities(6, 40, 0.3, 0.004, 42), Eps: 1.0 / 3, Kappa: 3, Rho: 0.49, Seed: 2},
	}
}

// --- Analytic bounds of the compared papers (O-constants = 1) ---

// logc is log base 2, clamped below at 1 so exponents like (log κ)
// stay meaningful for small κ.
func logc(x float64) float64 {
	v := math.Log2(x)
	if v < 1 {
		return 1
	}
	return v
}

// BetaEP01 is Elkin–Peleg's existential additive term
// (log κ / ε)^{log κ}.
func BetaEP01(eps float64, kappa int) float64 {
	lk := logc(float64(kappa))
	return math.Pow(lk/eps, lk)
}

// BetaElk05 is the additive term of the prior deterministic CONGEST
// algorithm [Elk05]: (κ/ε)^{log κ} · (1/ρ)^{1/ρ}.
func BetaElk05(eps float64, kappa int, rho float64) float64 {
	return math.Pow(float64(kappa)/eps, logc(float64(kappa))) * math.Pow(1/rho, 1/rho)
}

// BetaEN17 is the additive term of the randomized CONGEST algorithm
// [EN17]: ((log κρ + ρ⁻¹)/ε)^{log κρ + ρ⁻¹}.
func BetaEN17(eps float64, kappa int, rho float64) float64 {
	e := logc(float64(kappa)*rho) + 1/rho
	return math.Pow(e/eps, e)
}

// BetaNew is the paper's additive term (eq. 1):
// ((log κρ + ρ⁻¹)/(ρ·ε))^{log κρ + ρ⁻¹}.
func BetaNew(eps float64, kappa int, rho float64) float64 {
	e := logc(float64(kappa)*rho) + 1/rho
	return math.Pow(e/(rho*eps), e)
}

// RoundsElk05 is [Elk05]'s running time n^{1+1/(2κ)}.
func RoundsElk05(n, kappa int) float64 {
	return math.Pow(float64(n), 1+1/(2*float64(kappa)))
}

// RoundsEN17 is [EN17]'s running time n^ρ·ρ⁻¹·β·log n.
func RoundsEN17(eps float64, kappa int, rho float64, n int) float64 {
	return math.Pow(float64(n), rho) / rho * BetaEN17(eps, kappa, rho) * math.Log2(float64(n))
}

// RoundsNew is the paper's running time bound β·n^ρ·ρ⁻¹.
func RoundsNew(eps float64, kappa int, rho float64, n int) float64 {
	return BetaNew(eps, kappa, rho) * math.Pow(float64(n), rho) / rho
}

// SizeBound is the shared near-additive size shape β·n^{1+1/κ}.
func SizeBound(beta float64, n, kappa int) float64 {
	return beta * math.Pow(float64(n), 1+1/float64(kappa))
}

// CrossoverN returns the n beyond which the paper's round bound beats
// [Elk05]'s super-linear one: solving β·n^ρ/ρ = n^{1+1/(2κ)} gives
// n* = (β/ρ)^{1/(1+1/(2κ)−ρ)}.
func CrossoverN(eps float64, kappa int, rho float64) int {
	exp := 1 + 1/(2*float64(kappa)) - rho
	if exp <= 0 {
		return -1
	}
	return int(math.Ceil(math.Pow(BetaNew(eps, kappa, rho)/rho, 1/exp)))
}

// Benchmarks regenerating the paper's evaluation artifacts — one bench
// per table and figure (DESIGN.md §3), plus component benchmarks for the
// protocol stack. Run with:
//
//	go test -bench=. -benchmem
package nearspan_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"nearspan"
	"nearspan/internal/congest"
	"nearspan/internal/core"
	"nearspan/internal/experiments"
	"nearspan/internal/gen"
	"nearspan/internal/params"
	"nearspan/internal/protocols"
)

// --- Tables ---

// BenchmarkTable1DeterministicCONGEST regenerates Table 1: the
// deterministic CONGEST comparison (measured New vs analytic Elk05).
func BenchmarkTable1DeterministicCONGEST(b *testing.B) {
	cfgs := experiments.QuickConfigs()[:1]
	for i := 0; i < b.N; i++ {
		if err := experiments.Table1(context.Background(), io.Discard, cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Panorama regenerates Table 2: the near-additive spanner
// panorama with four measured rows.
func BenchmarkTable2Panorama(b *testing.B) {
	cfg := experiments.QuickConfigs()[0]
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2(context.Background(), io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures ---

// figureBench runs the full figure suite once per iteration; individual
// figure benches below isolate each figure's dominant computation.
func BenchmarkFiguresSuite(b *testing.B) {
	fc := experiments.DefaultFigureConfig()
	for i := 0; i < b.N; i++ {
		if err := experiments.Figures(context.Background(), io.Discard, fc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1Superclustering measures phase-0 superclustering
// (Algorithm 1 + ruling set + forest) on the figure grid.
func BenchmarkFigure1Superclustering(b *testing.B) {
	g := gen.Grid(12, 12)
	p, err := params.New(1.0/3, 8, 0.3, g.N())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(context.Background(), g, p, core.Options{KeepClusters: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2ForestTrees measures the supercluster BFS forest on
// the simulator (the structure Figure 2 adds to H).
func BenchmarkFigure2ForestTrees(b *testing.B) {
	g := gen.Grid(12, 12)
	isRoot := func(v int) bool { return v%12 == 0 }
	for i := 0; i < b.N; i++ {
		sim, err := congest.NewUniform(g, protocols.NewBFSForest(isRoot, 8), congest.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(protocols.ForestRounds(8)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3RulingSetSeparation measures the deterministic ruling
// set whose separation Figure 3 illustrates.
func BenchmarkFigure3RulingSetSeparation(b *testing.B) {
	g := gen.Grid(12, 12)
	member := func(v int) bool { return true }
	q, c := int32(2), 4
	rounds := protocols.RulingSetRounds(q, c, g.N())
	for i := 0; i < b.N; i++ {
		sim, err := congest.NewUniform(g, protocols.NewRulingSet(member, q, c, g.N()), congest.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(rounds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4SuperclusterPaths measures forest-path climbing (the
// paths Figure 4 adds to H).
func BenchmarkFigure4SuperclusterPaths(b *testing.B) {
	g := gen.Grid(12, 12)
	dist, _, parent := g.MultiBFS([]int{0, 77, 143}, 10)
	parentPort := make([]int, g.N())
	start := make([][]int64, g.N())
	for v := 0; v < g.N(); v++ {
		parentPort[v] = -1
		if parent[v] >= 0 {
			parentPort[v] = g.PortOf(v, int(parent[v]))
		}
		if dist[v] == 10 {
			start[v] = []int64{-1}
		}
	}
	rt := protocols.NewForestRouting(parentPort, -1)
	for i := 0; i < b.N; i++ {
		sim, err := congest.NewUniform(g, protocols.NewClimb(rt, start), congest.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.RunUntilQuiet(protocols.ClimbMaxRounds(1, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Interconnection measures Algorithm 1 plus the
// interconnection traces (the paths Figure 5 adds to H).
func BenchmarkFigure5Interconnection(b *testing.B) {
	g := gen.Grid(12, 12)
	isCenter := func(v int) bool { return true }
	deg, delta := 12, int32(3)
	rounds := protocols.NearNeighborsRounds(deg, delta)
	for i := 0; i < b.N; i++ {
		sim, err := congest.NewUniform(g, protocols.NewNearNeighbors(isCenter, deg, delta), congest.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(rounds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6NeighboringClusters measures the cross-phase
// neighboring-cluster distance verification (Lemma 2.15).
func BenchmarkFigure6NeighboringClusters(b *testing.B) {
	g := gen.GNP(150, 0.08, 3, true)
	p, err := params.New(1.0/3, 3, 0.49, g.N())
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Build(context.Background(), g, p, core.Options{KeepClusters: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The verification work: one BFS in H per U-cluster center.
		for _, u := range res.U {
			for _, cl := range u.Clusters {
				_ = res.Spanner.BFS(cl.Center)
			}
		}
	}
}

// BenchmarkFigure7SegmentStretch measures short-range stretch
// verification (the per-segment bound of Figure 7).
func BenchmarkFigure7SegmentStretch(b *testing.B) {
	g := gen.GNP(150, 0.08, 3, true)
	res, err := nearspan.BuildSpanner(g, nearspan.Config{Eps: 1.0 / 3, Kappa: 3, Rho: 0.49})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nearspan.VerifyStretchSampled(g, res.Spanner, 1+res.Params.EpsPrime(),
			res.Params.BetaInt(), 25, 1)
	}
}

// BenchmarkFigure8EndToEndStretch measures the full all-pairs stretch
// verification (the end-to-end bound of Figure 8 / Corollary 2.18).
func BenchmarkFigure8EndToEndStretch(b *testing.B) {
	g := gen.GNP(150, 0.08, 3, true)
	res, err := nearspan.BuildSpanner(g, nearspan.Config{Eps: 1.0 / 3, Kappa: 3, Rho: 0.49})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nearspan.VerifyStretch(g, res.Spanner, 1+res.Params.EpsPrime(), res.Params.BetaInt())
	}
}

// --- Construction scaling ---

func benchBuild(b *testing.B, n int, mode core.Mode) {
	g := gen.GNP(n, 16/float64(n), uint64(n), true)
	p, err := params.New(1.0/3, 3, 0.49, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(context.Background(), g, p, core.Options{Mode: mode}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildCentralized256(b *testing.B)  { benchBuild(b, 256, core.ModeCentralized) }
func BenchmarkBuildCentralized1024(b *testing.B) { benchBuild(b, 1024, core.ModeCentralized) }
func BenchmarkBuildCentralized4096(b *testing.B) { benchBuild(b, 4096, core.ModeCentralized) }
func BenchmarkBuildDistributed256(b *testing.B)  { benchBuild(b, 256, core.ModeDistributed) }
func BenchmarkBuildDistributed1024(b *testing.B) { benchBuild(b, 1024, core.ModeDistributed) }

// --- CONGEST engine micro-benchmarks ---

func benchEngine(b *testing.B, engine congest.Engine) {
	g := gen.Torus(16, 16)
	isCenter := func(v int) bool { return v%4 == 0 }
	rounds := protocols.NearNeighborsRounds(6, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := congest.NewUniform(g, protocols.NewNearNeighbors(isCenter, 6, 8),
			congest.Options{Engine: engine})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(rounds); err != nil {
			b.Fatal(err)
		}
		sim.Close()
	}
}

func BenchmarkEngineSequential(b *testing.B) { benchEngine(b, congest.EngineSequential) }
func BenchmarkEngineGoroutine(b *testing.B)  { benchEngine(b, congest.EngineGoroutine) }
func BenchmarkEngineParallel(b *testing.B)   { benchEngine(b, congest.EngineParallel) }

// --- Sparse-activity (frontier) benchmarks ---

// BenchmarkFrontier measures the simulator on frontier ≪ n workloads:
// the long-path climb (message-driven, frontier ~1) and a large-n
// ruling set with a sparse member set (fixed schedule; most windows move
// few or no waves, so the message plane — not the program work — is
// what the round cost must scale with).
func BenchmarkFrontier(b *testing.B) {
	const n = 16384
	g, rt, start := experiments.FrontierClimbWorkload(n)
	for _, eng := range []congest.Engine{congest.EngineSequential, congest.EngineParallel} {
		b.Run("climb-path-16k/"+eng.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim, err := congest.NewUniform(g, protocols.NewClimb(rt, start),
					congest.Options{Engine: eng})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.RunUntilQuiet(protocols.ClimbMaxRounds(1, n)); err != nil {
					b.Fatal(err)
				}
				sim.Close()
			}
		})
	}
	isMember, q, c := experiments.FrontierRulingWorkload()
	rounds := protocols.RulingSetRounds(q, c, n)
	b.Run("ruling-path-16k/sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim, err := congest.NewUniform(g, protocols.NewRulingSet(isMember, q, c, n),
				congest.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := sim.Run(rounds); err != nil {
				b.Fatal(err)
			}
			sim.Close()
		}
	})
}

// --- Persistent network runtime ---

// BenchmarkNetworkReuse quantifies what the persistent network runtime
// removes: the per-step simulator construction (O(m·B) message arenas +
// twin table) and engine pool start/teardown that the pre-session world
// paid for every protocol step. "per-step-sim" builds and closes a
// fresh simulator for each of the three fixed-schedule protocol steps
// of a phase; "persistent-network" attaches the same three steps as
// sessions to one long-lived network (constructed outside the timed
// loop, as core.Build constructs one per spanner build). Compare
// allocations per op between the two modes on each engine.
func BenchmarkNetworkReuse(b *testing.B) {
	g := gen.Torus(24, 24)
	isCenter := func(v int) bool { return v%3 == 0 }
	deg, delta := 4, int32(4)
	q, c := int32(2), 3

	for _, eng := range congest.Engines() {
		opts := congest.Options{Engine: eng}
		b.Run("per-step-sim/"+eng.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runs := []struct {
					factory func(v int) congest.Program
					rounds  int
				}{
					{protocols.NewNearNeighbors(isCenter, deg, delta), protocols.NearNeighborsRounds(deg, delta)},
					{protocols.NewRulingSet(isCenter, q, c, g.N()), protocols.RulingSetRounds(q, c, g.N())},
					{protocols.NewBFSForest(func(v int) bool { return v == 0 }, 6), protocols.ForestRounds(6)},
				}
				for _, r := range runs {
					sim, err := congest.NewUniform(g, r.factory, opts)
					if err != nil {
						b.Fatal(err)
					}
					if err := sim.Run(r.rounds); err != nil {
						b.Fatal(err)
					}
					sim.Close()
				}
			}
		})
		b.Run("persistent-network/"+eng.String(), func(b *testing.B) {
			net, err := protocols.NewNetwork(g, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer net.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := protocols.RunNearNeighbors(context.Background(), net, i, isCenter, deg, delta); err != nil {
					b.Fatal(err)
				}
				if _, _, err := protocols.RunRulingSet(context.Background(), net, i, isCenter, q, c, g.N()); err != nil {
					b.Fatal(err)
				}
				if _, _, err := protocols.RunForest(context.Background(), net, i, func(v int) bool { return v == 0 }, 6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- CONGEST engine comparison on the full construction ---

// BenchmarkEngineComparison runs the complete distributed construction
// on each engine over the three workload shapes the Table 1/Table 2
// harness cares about: GNP (dense superclustering), grid (sparse,
// symmetric), and preferential attachment (degree-skewed — the shard
// work-stealing stress case). On multi-core hardware the parallel
// engine's wall clock should beat sequential; outputs are identical by
// construction (asserted in the test suite, not here).
func BenchmarkEngineComparison(b *testing.B) {
	pa, err := gen.PreferentialAttachment(1024, 3, 9)
	if err != nil {
		b.Fatal(err)
	}
	workloads := []struct {
		name string
		g    *nearspan.Graph
	}{
		{"gnp-1024", gen.GNP(1024, 16.0/1024, 17, true)},
		{"grid-1024", gen.Grid(32, 32)},
		{"pa-1024", pa},
	}
	for _, wl := range workloads {
		p, err := params.New(1.0/3, 3, 0.49, wl.g.N())
		if err != nil {
			b.Fatal(err)
		}
		for _, eng := range congest.Engines() {
			b.Run(wl.name+"/"+eng.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Build(context.Background(), wl.g, p, core.Options{
						Mode: core.ModeDistributed, Engine: eng,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Shared execution runtime ---

// BenchmarkBatchBuild compares a sequential loop of distributed builds
// against BuildBatch fanning the same eight jobs over the shared
// execution runtime. Each build runs the single-threaded sequential
// engine, so the batch's win is pure cross-build concurrency: on an
// N-core runner the batch should approach min(N, 8)x. Outputs are
// bit-identical either way (asserted in the test suite, not here).
func BenchmarkBatchBuild(b *testing.B) {
	cfg := nearspan.Config{Eps: 1.0 / 3, Kappa: 3, Rho: 0.49, Mode: nearspan.DistributedMode}
	var jobs []nearspan.BuildJob
	for i := 0; i < 8; i++ {
		jobs = append(jobs, nearspan.BuildJob{
			Name:   fmt.Sprintf("gnp-%d", i),
			Graph:  gen.GNP(256, 16.0/256, uint64(10+i), true),
			Config: cfg,
		})
	}
	b.Run("sequential-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, j := range jobs {
				if _, err := nearspan.BuildSpanner(j.Graph, j.Config); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch-8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			outs, err := nearspan.BuildBatch(context.Background(), jobs, nearspan.BatchOptions{})
			if err != nil {
				b.Fatal(err)
			}
			for _, out := range outs {
				if out.Err != nil {
					b.Fatal(out.Err)
				}
			}
		}
	})
}

// --- Ablation benches ---

// BenchmarkAblationRulingSetVsSampling compares the deterministic
// superclustering selection against EN17-style sampling (ablation A1's
// runtime face).
func BenchmarkAblationRulingSetVsSampling(b *testing.B) {
	cfg := experiments.QuickConfigs()[0]
	b.Run("ruling-set", func(b *testing.B) {
		p, err := params.New(cfg.Eps, cfg.Kappa, cfg.Rho, cfg.N())
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(context.Background(), cfg.Graph, p, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sampling-en17", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nearspan.BuildEN17(cfg.Graph, cfg.Eps, cfg.Kappa, cfg.Rho, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
}

module nearspan

go 1.24

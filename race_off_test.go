//go:build !race

package nearspan_test

// raceEnabled reports whether the race detector is compiled in; the
// alloc-regression guards only run without it (instrumentation changes
// allocation counts).
const raceEnabled = false
